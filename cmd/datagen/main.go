// Command datagen emits the synthetic UCI-equivalent data sets used by the
// experiment harness (ionosphere, ecoli, pima, abalone) as CSV.
//
// Usage:
//
//	datagen -name pima -seed 7 -out pima.csv
//	datagen -name all -out .          # writes <name>.csv per data set
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"

	"condensation/internal/datagen"
	"condensation/internal/dataset"
	"condensation/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name      = fs.String("name", "", "data set: ionosphere, ecoli, pima, abalone, or all")
		seed      = fs.Uint64("seed", 1, "random seed")
		out       = fs.String("out", "-", "output CSV file, directory (with -name all), or \"-\" for stdout")
		logLevel  = fs.String("log-level", "warn", "log level: debug, info, warn, error, or off")
		logFormat = fs.String("log-format", "text", "log format: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := telemetry.NewLogger(stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	if *name == "" {
		fs.Usage()
		return fmt.Errorf("-name is required")
	}

	if *name == "all" {
		if *out == "-" {
			return fmt.Errorf("-name all needs -out to be a directory")
		}
		for _, n := range datagen.Names() {
			path := filepath.Join(*out, n+".csv")
			if err := writeOne(n, *seed, path, stdout); err != nil {
				return err
			}
			log.Info("wrote data set", slog.String("file", path))
		}
		return nil
	}
	return writeOne(*name, *seed, *out, stdout)
}

func writeOne(name string, seed uint64, out string, stdout io.Writer) error {
	ds, err := datagen.ByName(name, seed)
	if err != nil {
		return err
	}
	w := stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return dataset.WriteCSV(w, ds)
}
