package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"condensation/internal/dataset"
)

func TestRunSingleToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-name", "ecoli", "-seed", "3"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.ReadCSV(&stdout, "ecoli", dataset.Classification)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 336 {
		t.Errorf("emitted %d records, want 336", ds.Len())
	}
}

func TestRunSingleToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pima.csv")
	if err := run([]string{"-name", "pima", "-out", path}, &bytes.Buffer{}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "pregnancies,") {
		t.Errorf("header: %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestRunAll(t *testing.T) {
	dir := t.TempDir()
	var stderr bytes.Buffer
	if err := run([]string{"-name", "all", "-out", dir}, &bytes.Buffer{}, &stderr); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ionosphere", "ecoli", "pima", "abalone"} {
		if _, err := os.Stat(filepath.Join(dir, name+".csv")); err != nil {
			t.Errorf("%s.csv missing: %v", name, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-name", "bogus"},
		{"-name", "all"}, // all needs a directory
		{"-name", "pima", "-out", "/nonexistent/dir/out.csv"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
