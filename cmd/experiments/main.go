// Command experiments regenerates the paper's evaluation: every figure
// panel (5a–8b), the ablation studies, and the baseline comparisons, as
// aligned text tables or CSV.
//
// Usage:
//
//	experiments -fig all                 # all eight figure panels
//	experiments -fig 5a -reps 5          # one panel, more averaging
//	experiments -study ablation-split    # a named ablation/baseline study
//	experiments -fig all -format csv     # machine-readable output
//
// Studies: ablation-split, ablation-synthesis, ablation-leftover,
// perturbation, kanon, attack, clustering.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"condensation/internal/core"
	"condensation/internal/datagen"
	"condensation/internal/experiments"
	"condensation/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig     = fs.String("fig", "", "figure panel to regenerate (5a..8b) or \"all\"")
		study   = fs.String("study", "", "named study: ablation-split, ablation-synthesis, ablation-leftover, perturbation, kanon, attack, clustering, tree, assoc, scaling, fidelity, naivebayes, linreg")
		ds      = fs.String("dataset", "pima", "data set for -study runs")
		seed    = fs.Uint64("seed", 7, "random seed")
		sizes   = fs.String("sizes", "", "comma-separated group sizes (default per-experiment)")
		reps    = fs.Int("reps", 3, "repetitions to average per point")
		format  = fs.String("format", "text", "output format: text or csv")
		knnK    = fs.Int("knn", 1, "nearest-neighbour classifier k")
		initial = fs.Float64("initial", 0.25, "dynamic mode: initial static fraction")
		search  = fs.String("search", "auto", "static neighbour search: auto, scan-sort, quickselect, or kdtree")
		par     = fs.Int("par", 0, "worker goroutines for experiment cells, synthesis, and classifier scoring (0 = all CPUs; results are identical for every setting)")

		logLevel  = fs.String("log-level", "info", "log level: debug, info, warn, error, or off")
		logFormat = fs.String("log-format", "text", "log format: text or json")
		logEvery  = fs.Int("log-every", 0, "progress cadence in completed experiment cells (0 = a tenth of the grid)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := telemetry.NewLogger(stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	if (*fig == "") == (*study == "") {
		fs.Usage()
		return fmt.Errorf("exactly one of -fig or -study is required")
	}
	searchBackend, err := core.ParseNeighborSearch(*search)
	if err != nil {
		return err
	}

	cfg := experiments.Config{
		Seed:            *seed,
		Repetitions:     *reps,
		ClassifierK:     *knnK,
		InitialFraction: *initial,
		Search:          searchBackend,
		Parallelism:     *par,
		Logger:          log,
		LogEvery:        *logEvery,
	}
	if *sizes != "" {
		parsed, err := parseSizes(*sizes)
		if err != nil {
			return err
		}
		cfg.GroupSizes = parsed
	}

	emit := func(t *experiments.Table) error {
		switch *format {
		case "text":
			if err := t.Render(stdout); err != nil {
				return err
			}
			_, err := fmt.Fprintln(stdout)
			return err
		case "csv":
			return t.CSV(stdout)
		default:
			return fmt.Errorf("unknown -format %q", *format)
		}
	}

	if *fig != "" {
		ids := []string{*fig}
		if *fig == "all" {
			ids = experiments.FigureIDs()
		}
		for _, id := range ids {
			table, err := experiments.RunFigure(id, cfg)
			if err != nil {
				return err
			}
			if err := emit(table); err != nil {
				return err
			}
		}
		return nil
	}

	data, err := datagen.ByName(*ds, *seed)
	if err != nil {
		return err
	}
	var table *experiments.Table
	switch *study {
	case "ablation-split":
		table, err = experiments.SplitAxisAblation(data, cfg)
	case "ablation-synthesis":
		table, err = experiments.SynthesisAblation(data, cfg)
	case "ablation-leftover":
		table, err = experiments.LeftoverAblation(data, cfg)
	case "perturbation":
		table, err = experiments.PerturbationComparison(data, []float64{0.25, 0.5, 1, 2}, cfg)
	case "kanon":
		table, err = experiments.KAnonymityComparison(data, cfg)
	case "attack":
		table, err = experiments.AttackStudy(data, cfg)
	case "clustering":
		table, err = experiments.ClusteringStudy(data, max(2, data.NumClasses()), cfg)
	case "tree":
		table, err = experiments.TreeStudy(data, cfg)
	case "assoc":
		table, err = experiments.AssociationStudy(data, 4, 0.15, 0.7, cfg)
	case "scaling":
		table, err = experiments.ScalingStudy(20, nil, cfg)
	case "fidelity":
		table, err = experiments.FidelityStudy(*ds, cfg)
	case "naivebayes":
		table, err = experiments.NaiveBayesStudy(data, cfg)
	case "linreg":
		table, err = experiments.LinRegStudy(data, cfg)
	default:
		return fmt.Errorf("unknown -study %q", *study)
	}
	if err != nil {
		return err
	}
	return emit(table)
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad group size %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no group sizes in %q", s)
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
