package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFigureText(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-fig", "6b", "-sizes", "5,10", "-reps", "1"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "Figure 6b") || !strings.Contains(out, "static_mu") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunFigureCSV(t *testing.T) {
	var stdout bytes.Buffer
	err := run([]string{"-fig", "6b", "-sizes", "5", "-reps", "1", "-format", "csv"}, &stdout, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "k,avg_group_size") {
		t.Errorf("csv output:\n%s", stdout.String())
	}
}

func TestRunStudies(t *testing.T) {
	// Ecoli is the smallest data set; keep parameters tiny.
	for _, study := range []string{"ablation-split", "ablation-synthesis", "ablation-leftover", "kanon", "attack", "clustering"} {
		var stdout bytes.Buffer
		err := run([]string{"-study", study, "-dataset", "ecoli", "-sizes", "10", "-reps", "1"},
			&stdout, &bytes.Buffer{})
		if err != nil {
			t.Fatalf("%s: %v", study, err)
		}
		if stdout.Len() == 0 {
			t.Errorf("%s: no output", study)
		}
	}
}

func TestRunPerturbationStudy(t *testing.T) {
	var stdout bytes.Buffer
	err := run([]string{"-study", "perturbation", "-dataset", "ecoli", "-sizes", "10", "-reps", "1"},
		&stdout, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "perturbation") {
		t.Errorf("output:\n%s", stdout.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                 // neither -fig nor -study
		{"-fig", "5a", "-study", "attack"}, // both
		{"-fig", "99z"},                    // unknown figure
		{"-study", "bogus"},                // unknown study
		{"-study", "attack", "-dataset", "bogus"},
		{"-fig", "6b", "-sizes", "zero"}, // bad sizes
		{"-fig", "6b", "-sizes", "-3"},   // negative size
		{"-fig", "6b", "-sizes", "5", "-reps", "1", "-format", "bogus"},
		{"-fig", "6b", "-log-level", "bogus"},
		{"-fig", "6b", "-log-format", "bogus"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes(" 2, 5 ,10 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 2 || got[2] != 10 {
		t.Errorf("parseSizes = %v", got)
	}
	if _, err := parseSizes(""); err == nil {
		t.Error("empty sizes accepted")
	}
	if _, err := parseSizes(","); err == nil {
		t.Error("only separators accepted")
	}
}

func TestRunMiningStudies(t *testing.T) {
	for _, study := range []string{"tree", "assoc"} {
		var stdout bytes.Buffer
		err := run([]string{"-study", study, "-dataset", "ecoli", "-sizes", "10", "-reps", "1"},
			&stdout, &bytes.Buffer{})
		if err != nil {
			t.Fatalf("%s: %v", study, err)
		}
		if stdout.Len() == 0 {
			t.Errorf("%s: no output", study)
		}
	}
}

func TestRunScalingAndFidelity(t *testing.T) {
	var stdout bytes.Buffer
	if err := run([]string{"-study", "fidelity", "-dataset", "ecoli", "-sizes", "10", "-reps", "1"}, &stdout, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if stdout.Len() == 0 {
		t.Error("fidelity: no output")
	}
}
