package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeDaemon serves canned condenserd responses for the -watch probes.
func fakeDaemon(t *testing.T, degraded bool) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		status, code := "ok", http.StatusOK
		if degraded {
			status, code = "degraded", http.StatusOK
		}
		w.WriteHeader(code)
		w.Write([]byte(`{"status":"` + status + `","go_version":"go1.23.0",` +
			`"vcs_revision":"abcdef0123456789","uptime_seconds":42.5,` +
			`"k":10,"shards":4,"groups":12,"records":360}`))
	})
	mux.HandleFunc("/v1/health/rules", func(w http.ResponseWriter, r *http.Request) {
		state := "ok"
		if degraded {
			state = "degraded"
		}
		w.Write([]byte(`{"status":"` + state + `","rules":[` +
			`{"name":"ks_drift","description":"d","state":"` + state + `",` +
			`"detail":"ks 0.02 -> 0.17","since":"2026-08-07T00:00:00Z",` +
			`"last_transition":"2026-08-07T00:00:00Z","transitions":1,"alerts":1}]}`))
	})
	mux.HandleFunc("/v1/history", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"capacity":360,"recorded":5,"windows":[` +
			`{"seq":4,"start":"2026-08-07T10:00:00Z","end":"2026-08-07T10:00:10Z",` +
			`"counters":{"condense_stream_records_total":{"value":300,"delta":100}},` +
			`"gauges":{"condense_groups":12},` +
			`"histograms":{"http_request_seconds{path=\"/v1/records\"}":` +
			`{"count":3,"count_delta":1,"sum":0.03,"sum_delta":0.01,"p50":0.01,"p95":0.02,"p99":0.02}}},` +
			`{"seq":5,"start":"2026-08-07T10:00:10Z","end":"2026-08-07T10:00:20Z",` +
			`"counters":{"condense_stream_records_total":{"value":360,"delta":60}},` +
			`"gauges":{"condense_groups":12},` +
			`"histograms":{"http_request_seconds{path=\"/v1/records\"}":` +
			`{"count":3,"count_delta":0,"sum":0.03,"sum_delta":0,"p50":null,"p95":null,"p99":null}}}]}`))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestWatchReport(t *testing.T) {
	ts := fakeDaemon(t, true)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-watch", ts.URL}, nil, &stdout, &stderr); err != nil {
		t.Fatalf("run -watch: %v (stderr %q)", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"degraded",         // overall status from /healthz
		"rev abcdef012345", // truncated revision
		"shards=4",         // build identity line
		"360 records",      // live counts
		"ks_drift",         // rule table
		"alerts=1",
		"+100",   // window 4 ingest delta
		"+60",    // window 5 ingest delta
		"20.0ms", // window 4 p95
	} {
		if !strings.Contains(out, want) {
			t.Errorf("watch report missing %q:\n%s", want, out)
		}
	}
	// Window 5 had no ingest traffic: its p95 renders as "-", not 0.0ms.
	dashed := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "+60") && strings.HasSuffix(strings.TrimSpace(line), "-") {
			dashed = true
		}
	}
	if !dashed {
		t.Errorf("watch report does not dash out empty quantiles:\n%s", out)
	}
}

// TestWatchReportDisabled: a daemon running with -scrape-every 0 answers
// 404 on both observability endpoints; the report degrades gracefully.
func TestWatchReportDisabled(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok","go_version":"go1.23.0","uptime_seconds":1,` +
			`"k":5,"shards":1,"groups":0,"records":0}`))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"not enabled"}`, http.StatusNotFound)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var stdout bytes.Buffer
	if err := run([]string{"-watch", ts.URL}, nil, &stdout, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "health watchdog not enabled") ||
		!strings.Contains(out, "flight recorder not enabled") {
		t.Errorf("disabled report = %q, want both not-enabled notices", out)
	}
}

// TestWatchReportUnreachable: a dead daemon is an error, not a panic.
func TestWatchReportUnreachable(t *testing.T) {
	var stdout bytes.Buffer
	err := run([]string{"-watch", "http://127.0.0.1:1"}, nil, &stdout, &bytes.Buffer{})
	if err == nil {
		t.Fatal("probing an unreachable daemon succeeded")
	}
}
