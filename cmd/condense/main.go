// Command condense anonymizes a CSV data set with the condensation
// approach: it reads records (attributes plus a final class/target
// column), condenses them into groups of at least k records, synthesizes
// anonymized records from the group statistics, and writes the anonymized
// CSV. A condensation report goes to standard error.
//
// Usage:
//
//	condense -in data.csv -out anon.csv -k 20 [flags]
//
// Flags:
//
//	-in file        input CSV with a header row (required; "-" for stdin)
//	-out file       output CSV (required; "-" for stdout)
//	-k int          indistinguishability level (default 10)
//	-task string    "classification" or "regression" (default classification)
//	-mode string    "static" or "dynamic" (default static)
//	-synthesis string  "uniform" (paper) or "gaussian" (default uniform)
//	-seed uint      random seed (default 1)
//	-initial float  dynamic mode: initial static fraction (default 0.25)
//	-search string  neighbour search: auto, scan-sort, quickselect, kdtree
//	-precision string  routing index arithmetic: float64 or float32
//	-par int        static distance-sweep parallelism (0 = all CPUs)
//	-audit          print a per-class privacy-audit report (JSON) to stderr
//	-trace-out file write a Chrome trace of the condensation pipeline
//	-watch url      probe a running condenserd and print a one-shot
//	                health/trend report instead of condensing (-watch-last
//	                bounds the flight-recorder windows shown)
//	-bundle url     fetch a diagnostics bundle (tar.gz) from a running
//	                condenserd instead of condensing; -bundle-out names
//	                the destination file (default condense-bundle.tar.gz)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"condensation/internal/audit"
	"condensation/internal/core"
	"condensation/internal/dataset"
	"condensation/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "condense: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("condense", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in        = fs.String("in", "", "input CSV file (\"-\" for stdin)")
		out       = fs.String("out", "", "output CSV file (\"-\" for stdout)")
		k         = fs.Int("k", 10, "indistinguishability level (minimum group size)")
		task      = fs.String("task", "classification", "task: classification or regression")
		mode      = fs.String("mode", "static", "condensation mode: static or dynamic")
		synthesis = fs.String("synthesis", "uniform", "synthesis distribution: uniform or gaussian")
		seed      = fs.Uint64("seed", 1, "random seed")
		initial   = fs.Float64("initial", 0.25, "dynamic mode: fraction condensed statically up front")
		search    = fs.String("search", "auto", "static neighbour search: auto, scan-sort, quickselect, or kdtree")
		precision = fs.String("precision", "float64", "routing index arithmetic: float64, or float32 (prune in single precision, re-verify in float64; identical output)")
		par       = fs.Int("par", 0, "static distance-sweep parallelism (0 = all CPUs)")
		stats     = fs.String("stats", "", "optional file to write the per-class condensation statistics (the paper's H sets) to")
		logLevel  = fs.String("log-level", "warn", "log level: debug, info, warn, error, or off")
		logFormat = fs.String("log-format", "text", "log format: text or json")
		auditFlag = fs.Bool("audit", false, "print a per-class privacy-audit report (JSON) to stderr")
		traceOut  = fs.String("trace-out", "", "write a Chrome trace-event file of the condensation pipeline")
		watch     = fs.String("watch", "", "probe a running condenserd at this base URL and print a one-shot health/trend report (no -in/-out needed)")
		watchLast = fs.Int("watch-last", 10, "flight-recorder windows to show in the -watch report")
		bundle    = fs.String("bundle", "", "fetch a diagnostics bundle (GET /debug/bundle) from a running condenserd at this base URL and write it to -bundle-out (no -in/-out needed)")
		bundleOut = fs.String("bundle-out", "condense-bundle.tar.gz", "destination file for the -bundle download")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := telemetry.NewLogger(stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	if *watch != "" {
		return watchReport(stdout, *watch, *watchLast)
	}
	if *bundle != "" {
		return fetchBundle(stderr, *bundle, *bundleOut)
	}
	if *in == "" || *out == "" {
		fs.Usage()
		return fmt.Errorf("both -in and -out are required")
	}

	var dsTask dataset.Task
	switch *task {
	case "classification":
		dsTask = dataset.Classification
	case "regression":
		dsTask = dataset.Regression
	default:
		return fmt.Errorf("unknown -task %q", *task)
	}

	var condenseMode core.Mode
	switch *mode {
	case "static":
		condenseMode = core.ModeStatic
	case "dynamic":
		condenseMode = core.ModeDynamic
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	var synthMode core.Synthesis
	switch *synthesis {
	case "uniform":
		synthMode = core.SynthesisUniform
	case "gaussian":
		synthMode = core.SynthesisGaussian
	default:
		return fmt.Errorf("unknown -synthesis %q", *synthesis)
	}
	searchBackend, err := core.ParseNeighborSearch(*search)
	if err != nil {
		return err
	}
	indexPrecision, err := core.ParseIndexPrecision(*precision)
	if err != nil {
		return err
	}
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		// A one-shot pipeline run: sample everything.
		tracer = telemetry.NewTracer(0, 1)
	}
	condenser, err := core.NewCondenser(*k,
		core.WithSeed(*seed),
		core.WithMode(condenseMode),
		core.WithSynthesis(synthMode),
		core.WithInitialFraction(*initial),
		core.WithNeighborSearch(searchBackend),
		core.WithIndexPrecision(indexPrecision),
		core.WithParallelism(*par),
		core.WithTracer(tracer))
	if err != nil {
		return err
	}

	reader := stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		reader = f
	}
	ds, err := dataset.ReadCSV(reader, *in, dsTask)
	if err != nil {
		return err
	}
	log.Debug("read input",
		slog.String("file", *in),
		slog.Int("records", ds.Len()),
		slog.Int("dim", ds.Dim()))

	anon, report, err := condenser.Anonymize(ds)
	if err != nil {
		return err
	}
	log.Debug("condensed",
		slog.Int("groups", report.TotalGroups()),
		slog.Float64("avg_group_size", report.AvgGroupSize()))

	if *stats != "" {
		byClass := make(map[int]*core.Condensation, len(report.Classes))
		for _, cr := range report.Classes {
			byClass[cr.Label] = cr.Cond
		}
		f, err := os.Create(*stats)
		if err != nil {
			return err
		}
		if _, err := core.WriteClassCondensations(f, byClass); err != nil {
			f.Close()
			return fmt.Errorf("writing statistics: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote condensation statistics to %s\n", *stats)
	}

	writer := stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		writer = f
	}
	if err := dataset.WriteCSV(writer, anon); err != nil {
		return err
	}

	fmt.Fprintf(stderr, "condensed %d records into %d groups (avg size %.1f, mode %s, k=%d)\n",
		report.TotalRecords(), report.TotalGroups(), report.AvgGroupSize(), condenseMode, *k)
	for _, cr := range report.Classes {
		label := fmt.Sprintf("class %d", cr.Label)
		if cr.Label < 0 {
			label = "all records"
		}
		fmt.Fprintf(stderr, "  %s: %d records, %d groups, min group %d\n",
			label, cr.Records, cr.Groups, cr.MinGroupSize)
	}
	if *auditFlag {
		if err := printAudit(stderr, ds, report, *seed); err != nil {
			return fmt.Errorf("audit: %w", err)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := tracer.WriteChromeTrace(f, 0); err != nil {
			f.Close()
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote pipeline trace to %s (%d spans)\n", *traceOut, tracer.Len())
	}
	return nil
}

// printAudit writes one privacy-audit report per condensed class to w as
// indented JSON. The original records are at hand here (unlike the
// server's reservoir), so the KS comparison uses every record of the
// class. Static condensation folds sub-k remainders into their nearest
// group, so the leftover count is always zero for this command.
func printAudit(w io.Writer, ds *dataset.Dataset, report *core.Report, seed uint64) error {
	byClass := ds.ByClass()
	for _, cr := range report.Classes {
		originals := ds.Records()
		if cr.Label >= 0 {
			idx := byClass[cr.Label]
			sub, err := ds.Subset(idx)
			if err != nil {
				return err
			}
			originals = sub.Records()
		}
		rep, err := audit.Compute(cr.Cond, audit.Config{Original: originals, SynthSeed: seed})
		if err != nil {
			return err
		}
		label := fmt.Sprintf("class %d", cr.Label)
		if cr.Label < 0 {
			label = "all records"
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "privacy audit (%s):\n%s\n", label, out)
	}
	return nil
}
