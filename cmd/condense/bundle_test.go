package main

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeBundleDaemon serves a minimal but structurally valid diagnostics
// bundle on /debug/bundle.
func fakeBundleDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/bundle", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/gzip")
		gz := gzip.NewWriter(w)
		tw := tar.NewWriter(gz)
		body := []byte(`{"status":"ok"}`)
		tw.WriteHeader(&tar.Header{Name: "healthz.json", Mode: 0o644, Size: int64(len(body))})
		tw.Write(body)
		tw.Close()
		gz.Close()
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestBundleFetch(t *testing.T) {
	ts := fakeBundleDaemon(t)
	out := filepath.Join(t.TempDir(), "diag.tar.gz")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-bundle", ts.URL, "-bundle-out", out}, nil, &stdout, &stderr); err != nil {
		t.Fatalf("run -bundle: %v (stderr %q)", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "wrote diagnostics bundle to "+out) {
		t.Errorf("no confirmation on stderr: %q", stderr.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("downloaded bundle is not gzip: %v", err)
	}
	tr := tar.NewReader(gz)
	hdr, err := tr.Next()
	if err != nil {
		t.Fatalf("downloaded bundle is not a tar: %v", err)
	}
	if hdr.Name != "healthz.json" {
		t.Errorf("first entry %q, want healthz.json", hdr.Name)
	}
	if _, err := io.ReadAll(tr); err != nil {
		t.Fatal(err)
	}
}

func TestBundleFetchErrors(t *testing.T) {
	// A daemon without the endpoint: the status line surfaces.
	ts := httptest.NewServer(http.NotFoundHandler())
	t.Cleanup(ts.Close)
	out := filepath.Join(t.TempDir(), "diag.tar.gz")
	err := run([]string{"-bundle", ts.URL, "-bundle-out", out}, nil, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("404 fetch error = %v, want the status surfaced", err)
	}
	if _, serr := os.Stat(out); serr == nil {
		t.Error("a failed fetch left a bundle file behind")
	}

	// An unreachable daemon fails cleanly too.
	if err := run([]string{"-bundle", "http://127.0.0.1:1", "-bundle-out", out}, nil, io.Discard, io.Discard); err == nil {
		t.Fatal("unreachable daemon did not error")
	}
}
