package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"condensation/internal/core"
	"condensation/internal/datagen"
	"condensation/internal/dataset"
)

// writeInput writes a small classification CSV and returns its path.
func writeInput(t *testing.T) string {
	t.Helper()
	ds := datagen.TwoGaussians(1, 40, 3, 8)
	path := filepath.Join(t.TempDir(), "in.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	in := writeInput(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	var stderr bytes.Buffer
	err := run([]string{"-in", in, "-out", out, "-k", "5", "-seed", "3"},
		strings.NewReader(""), &bytes.Buffer{}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	anon, err := dataset.ReadCSV(f, "anon", dataset.Classification)
	if err != nil {
		t.Fatal(err)
	}
	if anon.Len() != 80 {
		t.Errorf("anonymized %d records, want 80", anon.Len())
	}
	if !strings.Contains(stderr.String(), "condensed 80 records") {
		t.Errorf("report missing: %q", stderr.String())
	}
}

func TestRunDynamicGaussian(t *testing.T) {
	in := writeInput(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	err := run([]string{"-in", in, "-out", out, "-k", "4", "-mode", "dynamic", "-synthesis", "gaussian"},
		strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunStdinStdout(t *testing.T) {
	ds := datagen.TwoGaussians(2, 10, 2, 8)
	var input bytes.Buffer
	if err := dataset.WriteCSV(&input, ds); err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	err := run([]string{"-in", "-", "-out", "-", "-k", "2"}, &input, &stdout, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(stdout.String(), "x0,x1,class") {
		t.Errorf("stdout header: %q", strings.SplitN(stdout.String(), "\n", 2)[0])
	}
}

func TestRunFlagErrors(t *testing.T) {
	in := writeInput(t)
	silent := func() (*bytes.Buffer, *bytes.Buffer) { return &bytes.Buffer{}, &bytes.Buffer{} }
	cases := [][]string{
		{},
		{"-in", in},
		{"-in", in, "-out", "x.csv", "-task", "bogus"},
		{"-in", in, "-out", "x.csv", "-mode", "bogus"},
		{"-in", in, "-out", "x.csv", "-synthesis", "bogus"},
		{"-in", "/nonexistent/file.csv", "-out", "x.csv"},
		{"-in", in, "-out", "x.csv", "-log-level", "bogus"},
		{"-in", in, "-out", "x.csv", "-log-format", "bogus"},
	}
	for _, args := range cases {
		o, e := silent()
		if err := run(args, strings.NewReader(""), o, e); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunRegressionTask(t *testing.T) {
	ds := datagen.Abalone(3)
	sub, err := ds.Subset(seq(200))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "reg.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, sub); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := filepath.Join(t.TempDir(), "out.csv")
	err = run([]string{"-in", path, "-out", out, "-task", "regression", "-k", "10"},
		strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestRunAuditFlag: -audit prints one JSON privacy report per class with
// the size invariant intact and full-sample KS distances.
func TestRunAuditFlag(t *testing.T) {
	in := writeInput(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	var stderr bytes.Buffer
	err := run([]string{"-in", in, "-out", out, "-k", "5", "-audit"},
		strings.NewReader(""), &bytes.Buffer{}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	got := stderr.String()
	if n := strings.Count(got, "privacy audit (class "); n != 2 {
		t.Fatalf("want 2 per-class audit reports, got %d:\n%s", n, got)
	}
	for _, want := range []string{
		`"k_violations": 0`,
		`"k_satisfied": true`,
		`"ks"`,
		`"original_sample": 40`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("audit output missing %q:\n%s", want, got)
		}
	}
}

// TestRunTraceOutFlag: -trace-out writes a Chrome trace of the static
// pipeline without changing the anonymized output.
func TestRunTraceOutFlag(t *testing.T) {
	in := writeInput(t)
	dir := t.TempDir()
	plainOut := filepath.Join(dir, "plain.csv")
	tracedOut := filepath.Join(dir, "traced.csv")
	tracePath := filepath.Join(dir, "trace.json")
	if err := run([]string{"-in", in, "-out", plainOut, "-k", "5", "-seed", "2"},
		strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	if err := run([]string{"-in", in, "-out", tracedOut, "-k", "5", "-seed", "2", "-trace-out", tracePath},
		strings.NewReader(""), &bytes.Buffer{}, &stderr); err != nil {
		t.Fatal(err)
	}
	plain, err := os.ReadFile(plainOut)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := os.ReadFile(tracedOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, traced) {
		t.Error("tracing changed the anonymized output")
	}
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	for _, want := range []string{`"traceEvents"`, "static.condense"} {
		if !strings.Contains(string(trace), want) {
			t.Errorf("trace file missing %q", want)
		}
	}
	if !strings.Contains(stderr.String(), "wrote pipeline trace") {
		t.Errorf("stderr missing trace confirmation: %q", stderr.String())
	}
}

func TestRunStatsOutput(t *testing.T) {
	in := writeInput(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "out.csv")
	statsPath := filepath.Join(dir, "h.bin")
	err := run([]string{"-in", in, "-out", out, "-k", "5", "-stats", statsPath},
		strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	byClass, err := core.ReadClassCondensations(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(byClass) != 2 {
		t.Fatalf("%d classes in statistics file", len(byClass))
	}
	total := 0
	for _, cond := range byClass {
		total += cond.TotalCount()
	}
	if total != 80 {
		t.Errorf("statistics cover %d records, want 80", total)
	}
}
