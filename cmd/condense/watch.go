package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"text/tabwriter"
	"time"

	"condensation/internal/telemetry"
)

// watchClient bounds every probe: a watch report is a health check, and a
// health check that hangs is itself an answer.
var watchClient = &http.Client{Timeout: 10 * time.Second}

// watchHealth mirrors the fields of the server's /healthz body the report
// prints.
type watchHealth struct {
	Status        string  `json:"status"`
	GoVersion     string  `json:"go_version"`
	VCSRevision   string  `json:"vcs_revision"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	K             int     `json:"k"`
	Shards        int     `json:"shards"`
	Groups        int     `json:"groups"`
	Records       int     `json:"records"`
}

// watchRules mirrors /v1/health/rules.
type watchRules struct {
	Status string                 `json:"status"`
	Rules  []telemetry.RuleStatus `json:"rules"`
}

// watchHistory mirrors /v1/history.
type watchHistory struct {
	Capacity int                `json:"capacity"`
	Recorded uint64             `json:"recorded"`
	Windows  []telemetry.Window `json:"windows"`
}

// watchGet fetches base+path and decodes the JSON body into v. A 404
// (feature disabled on the daemon) returns errDisabled so the report can
// say so instead of failing.
var errDisabled = fmt.Errorf("not enabled on the daemon")

func watchGet(base, path string, v interface{}) error {
	resp, err := watchClient.Get(strings.TrimRight(base, "/") + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return errDisabled
	}
	// /healthz answers 503 with a full body when failing — still a report.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// watchReport probes a running condenserd and prints a one-shot health
// and trend report: build identity, watchdog rule states, and the last
// few flight-recorder windows as an ingest/group/latency table.
func watchReport(w io.Writer, base string, last int) error {
	var health watchHealth
	if err := watchGet(base, "/healthz", &health); err != nil {
		return fmt.Errorf("probing %s: %w", base, err)
	}
	rev := health.VCSRevision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		rev = "unknown"
	}
	fmt.Fprintf(w, "condenserd %s: %s\n", base, health.Status)
	fmt.Fprintf(w, "  %s rev %s, up %s, k=%d shards=%d: %d records in %d groups\n",
		health.GoVersion, rev, (time.Duration(health.UptimeSeconds) * time.Second).String(),
		health.K, health.Shards, health.Records, health.Groups)

	var rules watchRules
	switch err := watchGet(base, "/v1/health/rules", &rules); err {
	case nil:
		fmt.Fprintf(w, "health rules (%s):\n", rules.Status)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, r := range rules.Rules {
			fmt.Fprintf(tw, "  %s\t%s\talerts=%d\t%s\n", r.State, r.Name, r.Alerts, r.Detail)
		}
		tw.Flush()
	case errDisabled:
		fmt.Fprintln(w, "health watchdog not enabled (-scrape-every 0)")
	default:
		return err
	}

	var hist watchHistory
	switch err := watchGet(base, fmt.Sprintf("/v1/history?last=%d", last), &hist); err {
	case nil:
		fmt.Fprintf(w, "flight recorder: %d window(s) recorded, showing %d (ring holds %d)\n",
			hist.Recorded, len(hist.Windows), hist.Capacity)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  seq\tend\t+records\tgroups\tingest p95\n")
		for _, win := range hist.Windows {
			fmt.Fprintf(tw, "  %d\t%s\t%s\t%s\t%s\n",
				win.Seq, win.End.Format("15:04:05"),
				watchCounterDelta(win, "condense_stream_records_total"),
				watchGauge(win, "condense_groups"),
				watchQuantile(win, `http_request_seconds{path="/v1/records"}`))
		}
		tw.Flush()
	case errDisabled:
		fmt.Fprintln(w, "flight recorder not enabled (-scrape-every 0)")
	default:
		return err
	}
	return nil
}

// watchCounterDelta renders a counter family's summed per-window delta,
// or "-" when the family is absent. Summing folds a sharded daemon's
// shard="i" series into one stream-wide figure.
func watchCounterDelta(win telemetry.Window, family string) string {
	var sum uint64
	found := false
	for id, c := range win.Counters {
		if id == family || strings.HasPrefix(id, family+"{") {
			sum += c.Delta
			found = true
		}
	}
	if !found {
		return "-"
	}
	return fmt.Sprintf("+%d", sum)
}

// watchGauge renders a gauge family's sum, or "-" when absent.
func watchGauge(win telemetry.Window, family string) string {
	var sum float64
	found := false
	for id, g := range win.Gauges {
		if id == family || strings.HasPrefix(id, family+"{") {
			sum += float64(g)
			found = true
		}
	}
	if !found {
		return "-"
	}
	return fmt.Sprintf("%.0f", sum)
}

// watchQuantile renders a histogram's windowed p95, or "-" for windows
// without traffic.
func watchQuantile(win telemetry.Window, series string) string {
	h, ok := win.Histograms[series]
	if !ok || math.IsNaN(float64(h.P95)) {
		return "-"
	}
	return fmt.Sprintf("%.1fms", float64(h.P95)*1000)
}
