package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

// fetchBundle downloads a one-shot diagnostics bundle (GET /debug/bundle)
// from a running condenserd and writes the tar.gz to path — the one
// command an operator needs before attaching a bundle to a bug report. It
// reuses the watch probe's bounded client: a diagnostics fetch that hangs
// is itself a diagnosis.
func fetchBundle(stderr io.Writer, base, path string) error {
	url := strings.TrimRight(base, "/") + "/debug/bundle"
	resp, err := watchClient.Get(url)
	if err != nil {
		return fmt.Errorf("probing %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /debug/bundle: %s", resp.Status)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	n, err := io.Copy(f, resp.Body)
	if err != nil {
		f.Close()
		return fmt.Errorf("downloading bundle: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote diagnostics bundle to %s (%d bytes)\n", path, n)
	return nil
}
