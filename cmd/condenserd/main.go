// Command condenserd runs the condensation HTTP service: a data-collection
// endpoint that ingests records incrementally (the paper's dynamic
// setting), retains only per-group aggregate statistics, and serves
// anonymized snapshots, statistics, and binary checkpoints.
//
// Usage:
//
//	condenserd -addr :8080 -dim 7 -k 25
//	condenserd -addr :8080 -dim 7 -k 25 -search kdtree -par 8
//	condenserd -addr :8080 -resume checkpoint.bin
//	condenserd -addr :8080 -dim 7 -debug-addr localhost:6060
//
// Endpoints: POST /v1/records, GET /v1/snapshot, GET /v1/stats,
// GET /v1/checkpoint, GET /healthz, GET /metrics, GET /debug/vars
// (see internal/server). With -debug-addr set, net/http/pprof profiling
// endpoints are served on that separate (ideally loopback-only) address.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"condensation/internal/core"
	"condensation/internal/server"
	"condensation/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, func(addr string, h http.Handler) error {
		srv := &http.Server{
			Addr:              addr,
			Handler:           h,
			ReadHeaderTimeout: 10 * time.Second,
		}
		return srv.ListenAndServe()
	}); err != nil {
		fmt.Fprintf(os.Stderr, "condenserd: %v\n", err)
		os.Exit(1)
	}
}

// run builds the server and hands it to serve; serve is injected so tests
// can intercept the handler instead of binding a port.
func run(args []string, stderr io.Writer, serve func(addr string, h http.Handler) error) error {
	fs := flag.NewFlagSet("condenserd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		dim       = fs.Int("dim", 0, "record dimensionality (required unless -resume)")
		k         = fs.Int("k", 10, "indistinguishability level")
		seed      = fs.Uint64("seed", 1, "random seed for split-axis decisions")
		batch     = fs.Int("batch", 10000, "maximum records per POST")
		search    = fs.String("search", "auto", "neighbour-search backend: auto, scan-sort, quickselect, or kdtree")
		parallel  = fs.Int("par", 0, "worker goroutines for batch routing and static sweeps (≤ 0 means NumCPU)")
		resume    = fs.String("resume", "", "checkpoint file to restore state from")
		logLevel  = fs.String("log-level", "info", "log level: debug, info, warn, error, or off")
		logFormat = fs.String("log-format", "text", "log format: text or json")
		debugAddr = fs.String("debug-addr", "", "optional separate listen address for net/http/pprof (keep it loopback-only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := telemetry.NewLogger(stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	reg := telemetry.NewRegistry()

	cfg := server.Config{Dim: *dim, MaxBatch: *batch, Telemetry: reg, Logger: log}
	condenserK, condenserOpts := *k, core.Options{}
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			return err
		}
		cond, err := core.ReadCondensation(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("restoring %s: %w", *resume, err)
		}
		cfg.Initial = cond
		// The checkpoint's k and options are authoritative when resuming.
		condenserK, condenserOpts = cond.K(), cond.Options()
		log.Info("restored checkpoint",
			slog.String("file", *resume),
			slog.Int("records", cond.TotalCount()),
			slog.Int("groups", cond.NumGroups()),
			slog.Int("k", cond.K()),
			slog.Int("dim", cond.Dim()))
	} else if *dim < 1 {
		fs.Usage()
		return fmt.Errorf("-dim is required when not resuming from a checkpoint")
	}
	searchBackend, err := core.ParseNeighborSearch(*search)
	if err != nil {
		return fmt.Errorf("-search: %w", err)
	}
	condenser, err := core.NewCondenser(condenserK,
		core.WithSeed(*seed), core.WithOptions(condenserOpts),
		core.WithNeighborSearch(searchBackend),
		core.WithParallelism(*parallel),
		core.WithTelemetry(reg))
	if err != nil {
		return err
	}
	cfg.Condenser = condenser

	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	if *debugAddr != "" {
		go serveDebug(*debugAddr, log)
	}
	log.Info("condenserd listening", slog.String("addr", *addr))
	return serve(*addr, s)
}

// serveDebug exposes the net/http/pprof profiling handlers on their own
// address, so profiling never shares a listener with the data-collection
// API and stays off unless explicitly requested.
func serveDebug(addr string, log *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Info("pprof listening", slog.String("addr", addr))
	if err := srv.ListenAndServe(); err != nil {
		log.Error("pprof server stopped", slog.String("error", err.Error()))
	}
}
