// Command condenserd runs the condensation HTTP service: a data-collection
// endpoint that ingests records incrementally (the paper's dynamic
// setting), retains only per-group aggregate statistics, and serves
// anonymized snapshots, statistics, and binary checkpoints.
//
// Usage:
//
//	condenserd -addr :8080 -dim 7 -k 25
//	condenserd -addr :8080 -dim 7 -k 25 -search kdtree -par 8
//	condenserd -addr :8080 -dim 7 -k 25 -shards 4
//	condenserd -addr :8080 -resume checkpoint.bin
//	condenserd -addr :8080 -dim 7 -debug-addr localhost:6060
//	condenserd -addr :8080 -dim 7 -trace-sample 100 -trace-out trace.json
//
// Endpoints: POST /v1/records, POST /v1/explain, GET /v1/snapshot,
// GET /v1/stats, GET /v1/audit, GET /v1/checkpoint, GET /v1/history,
// GET /v1/events, GET /v1/groups, GET /v1/groups/{id},
// GET /v1/health/rules, GET /healthz, GET /metrics, GET /debug/vars,
// GET /debug/trace, GET /debug/bundle (see internal/server). With
// -debug-addr set, net/http/pprof profiling endpoints are served on that
// separate (ideally loopback-only) address.
//
// Reads are generation-versioned: the engine's mutation generation
// (reported on /healthz) keys caches of group snapshots, synthesized
// bodies, stats, audit reports, and encoded checkpoints, so repeated
// reads of unchanged state replay prepared bytes instead of recloning
// groups. GET /v1/checkpoint serves a strong ETag: "<generation>" and
// answers If-None-Match with 304, so replica-style pollers re-download
// only after a write; cache effectiveness is exported as
// condense_read_cache_{hits,misses}_total{cache=...} on /metrics.
//
// A background auditor recomputes the privacy-audit report (group-size
// invariant, SSE ratio, KS distances — see internal/audit) every
// -audit-every and publishes it to /metrics; -audit-every 0 disables it.
// With -trace-sample N > 0, 1 in N requests records a pipeline span tree,
// exported live on /debug/trace and written as a Chrome trace-event file
// to -trace-out on shutdown (SIGINT/SIGTERM shut the server down
// gracefully).
//
// A flight recorder scrapes the metrics registry every -scrape-every
// (default 10s) on its own goroutine, keeping the last -history windows
// of counter deltas, gauge values, and windowed latency quantiles in a
// ring served from /v1/history. After each scrape a health watchdog
// evaluates trend rules (k-violations, KS drift, SSE degradation, ingest
// latency regression, shard imbalance) and drives /healthz and
// /v1/health/rules through ok → degraded → failing, logging every
// transition and counting escalations in condense_alerts_total{rule}. On
// shutdown, -history-out writes the buffered windows plus final rule
// states and a closing audit as JSON.
//
// A group-lifecycle journal (ring capacity -journal, default 4096; 0
// disables it) records structured explainability events — group creation,
// splits with parent→child lineage, router rebuilds, speculation
// fallbacks, read-cache invalidations, watchdog transitions — served from
// /v1/events. Per-group diagnostics (size, birth generation, lineage,
// centroid drift, covariance condition number) are on /v1/groups and
// /v1/groups/{id}; POST /v1/explain dry-runs routing for a record without
// ingesting it. Every response carries an X-Request-Id (accepted from the
// client or minted), echoed in error envelopes and ingest log lines.
// GET /debug/bundle streams a one-shot tar.gz diagnostics snapshot;
// -bundle-out writes the same bundle on shutdown, through the same
// error-checked artifact path as -trace-out and -history-out.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"condensation/internal/audit"
	"condensation/internal/core"
	"condensation/internal/server"
	"condensation/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, listenAndServe); err != nil {
		fmt.Fprintf(os.Stderr, "condenserd: %v\n", err)
		os.Exit(1)
	}
}

// listenAndServe serves h on addr until the context is cancelled (the
// signal path), then drains in-flight requests with a bounded graceful
// shutdown so post-serve work (the -trace-out write) still runs.
func listenAndServe(ctx context.Context, addr string, h http.Handler) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutCtx)
	}
}

// run builds the server and hands it to serve; serve is injected so tests
// can intercept the handler instead of binding a port.
func run(args []string, stderr io.Writer, serve func(ctx context.Context, addr string, h http.Handler) error) error {
	fs := flag.NewFlagSet("condenserd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		dim         = fs.Int("dim", 0, "record dimensionality (required unless -resume)")
		k           = fs.Int("k", 10, "indistinguishability level")
		shards      = fs.Int("shards", 1, "independent condenser shards (1 = single unsharded engine)")
		seed        = fs.Uint64("seed", 1, "random seed for split-axis decisions")
		batch       = fs.Int("batch", 10000, "maximum records per POST")
		search      = fs.String("search", "auto", "neighbour-search backend: auto, scan-sort, quickselect, or kdtree")
		precision   = fs.String("precision", "float64", "routing index arithmetic: float64, or float32 (prune in single precision, re-verify in float64; identical output)")
		parallel    = fs.Int("par", 0, "worker goroutines for batch routing and static sweeps (≤ 0 means NumCPU)")
		resume      = fs.String("resume", "", "checkpoint file to restore state from")
		logLevel    = fs.String("log-level", "info", "log level: debug, info, warn, error, or off")
		logFormat   = fs.String("log-format", "text", "log format: text or json")
		debugAddr   = fs.String("debug-addr", "", "optional separate listen address for net/http/pprof (keep it loopback-only)")
		auditEvery  = fs.Duration("audit-every", 30*time.Second, "privacy-audit recompute cadence (0 disables the background auditor)")
		auditSample = fs.Int("audit-sample", 0, "reservoir capacity of original records kept for KS audits (0 = default, negative disables)")
		traceSample = fs.Int("trace-sample", 0, "record a span tree for 1 in N requests (0 disables tracing)")
		traceBuffer = fs.Int("trace-buffer", 0, "completed spans kept in the trace ring (0 = default)")
		traceOut    = fs.String("trace-out", "", "write the recorded spans as a Chrome trace-event file on shutdown (implies -trace-sample 1 if unset)")
		scrapeEvery = fs.Duration("scrape-every", 10*time.Second, "flight-recorder scrape cadence (0 disables the recorder, the health watchdog, /v1/history, and /v1/health/rules)")
		historyCap  = fs.Int("history", 0, "flight-recorder ring capacity in windows (0 = default 360)")
		historyOut  = fs.String("history-out", "", "write the recorded windows, health-rule states, and a final audit as JSON on shutdown (re-enables the default -scrape-every if it was 0)")
		journalCap  = fs.Int("journal", 4096, "group-lifecycle journal ring capacity in events (0 disables the journal, /v1/events, and the bundle's journal entry)")
		bundleOut   = fs.String("bundle-out", "", "write a one-shot diagnostics bundle (tar.gz; same content as GET /debug/bundle) on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := telemetry.NewLogger(stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	reg := telemetry.NewRegistry()
	var tracer *telemetry.Tracer
	if *traceOut != "" && *traceSample <= 0 {
		// Asking for a trace file means asking for spans.
		*traceSample = 1
	}
	if *traceSample > 0 {
		tracer = telemetry.NewTracer(*traceBuffer, *traceSample)
	}

	if *shards < 1 {
		return fmt.Errorf("-shards must be ≥ 1, got %d", *shards)
	}
	if *historyOut != "" && *scrapeEvery <= 0 {
		// Asking for a history file means asking for scrapes.
		*scrapeEvery = 10 * time.Second
	}
	var rec *telemetry.Recorder
	var wd *telemetry.Watchdog
	if *scrapeEvery > 0 {
		rec = telemetry.NewRecorder(reg, *historyCap)
		wd = telemetry.NewWatchdog(reg, log, server.HealthRules(*shards)...)
	}
	var jr *telemetry.Journal
	if *journalCap > 0 {
		jr = telemetry.NewJournal(*journalCap)
	}
	cfg := server.Config{
		Dim: *dim, Shards: *shards, MaxBatch: *batch,
		Telemetry: reg, Logger: log,
		Tracer:      tracer,
		AuditSample: *auditSample,
		AuditSeed:   *seed,
		Recorder:    rec,
		Watchdog:    wd,
		Journal:     jr,
	}
	condenserK, condenserOpts := *k, core.Options{}
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			return err
		}
		cond, err := core.ReadCondensation(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("restoring %s: %w", *resume, err)
		}
		cfg.Initial = cond
		// The checkpoint's k and options are authoritative when resuming.
		condenserK, condenserOpts = cond.K(), cond.Options()
		log.Info("restored checkpoint",
			slog.String("file", *resume),
			slog.Int("records", cond.TotalCount()),
			slog.Int("groups", cond.NumGroups()),
			slog.Int("k", cond.K()),
			slog.Int("dim", cond.Dim()))
	} else if *dim < 1 {
		fs.Usage()
		return fmt.Errorf("-dim is required when not resuming from a checkpoint")
	}
	searchBackend, err := core.ParseNeighborSearch(*search)
	if err != nil {
		return fmt.Errorf("-search: %w", err)
	}
	indexPrecision, err := core.ParseIndexPrecision(*precision)
	if err != nil {
		return fmt.Errorf("-precision: %w", err)
	}
	condenser, err := core.NewCondenser(condenserK,
		core.WithSeed(*seed), core.WithOptions(condenserOpts),
		core.WithNeighborSearch(searchBackend),
		core.WithIndexPrecision(indexPrecision),
		core.WithParallelism(*parallel),
		core.WithTelemetry(reg),
		core.WithTracer(tracer))
	if err != nil {
		return err
	}
	cfg.Condenser = condenser

	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	if *debugAddr != "" {
		go serveDebug(*debugAddr, log)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var wg sync.WaitGroup
	bgCtx, cancelBG := context.WithCancel(ctx)
	if *auditEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			auditLoop(bgCtx, s, *auditEvery, log)
		}()
	}
	if rec != nil {
		// The scraper goroutine owns every scrape: the ingest path never
		// pays for recording, and the watchdog re-evaluates right after
		// each window lands.
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec.Run(bgCtx, *scrapeEvery, func(telemetry.Window) { wd.Evaluate(rec) })
		}()
	}

	log.Info("condenserd listening", slog.String("addr", *addr))
	serveErr := serve(ctx, *addr, s)
	cancelBG()
	wg.Wait()

	// Every shutdown artifact goes through one error-checked writer: all
	// are attempted even if one fails, each outcome is logged, and the
	// first failure surfaces as the process exit error (unless serving
	// itself already failed).
	var artifacts []shutdownArtifact
	if *historyOut != "" && rec != nil {
		artifacts = append(artifacts, shutdownArtifact{
			kind: "history", path: *historyOut,
			write: func(w io.Writer) error { return renderHistory(w, s, rec, wd, log) },
		})
	}
	if *traceOut != "" && tracer != nil {
		artifacts = append(artifacts, shutdownArtifact{
			kind: "trace", path: *traceOut,
			write: func(w io.Writer) error { return tracer.WriteChromeTrace(w, 0) },
		})
	}
	if *bundleOut != "" {
		artifacts = append(artifacts, shutdownArtifact{
			kind: "bundle", path: *bundleOut, write: s.WriteBundle,
		})
	}
	if err := writeShutdownArtifacts(artifacts, log); err != nil && serveErr == nil {
		serveErr = err
	}
	return serveErr
}

// shutdownArtifact is one file the graceful-shutdown path owes the
// operator: a kind for logging, a destination path, and a renderer that
// streams the artifact into the created file.
type shutdownArtifact struct {
	kind  string
	path  string
	write func(io.Writer) error
}

// writeShutdownArtifacts writes each artifact through writeArtifactFile,
// logs every outcome, and returns the first failure (later artifacts are
// still attempted — a failing trace write must not cost the history file).
func writeShutdownArtifacts(artifacts []shutdownArtifact, log *slog.Logger) error {
	var first error
	for _, a := range artifacts {
		if err := writeArtifactFile(a.path, a.write); err != nil {
			log.Error("writing "+a.kind+" file",
				slog.String("file", a.path),
				slog.String("error", err.Error()))
			if first == nil {
				first = err
			}
			continue
		}
		log.Info("wrote "+a.kind+" file", slog.String("file", a.path))
	}
	return first
}

// writeArtifactFile creates path and streams write into it, surfacing
// every failure point: create, render, and close (the close error matters
// — it is where a full disk shows up for buffered writes).
func writeArtifactFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// auditLoop recomputes the privacy audit on a fixed cadence until the
// context is cancelled. Each pass publishes its gauges to the registry
// (so /metrics stays fresh between /v1/audit calls) and logs a one-line
// summary; failures are logged and the loop keeps going.
func auditLoop(ctx context.Context, s *server.Server, every time.Duration, log *slog.Logger) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rep, err := s.Audit()
			if err != nil {
				log.Error("privacy audit failed", slog.String("error", err.Error()))
				continue
			}
			log.Info("privacy audit",
				slog.Int("records", rep.Records),
				slog.Int("groups", rep.Groups),
				slog.Int("k_violations", rep.KViolations),
				slog.Float64("sse_ratio", rep.SSERatio),
				slog.Int("degenerate_groups", rep.DegenerateGroups))
		}
	}
}

// historyDump is the -history-out file layout: the buffered windows, the
// watchdog's final rule states, and one last audit report — the black box
// a post-mortem opens after SIGTERM.
type historyDump struct {
	Status  string                 `json:"status"`
	Rules   []telemetry.RuleStatus `json:"rules,omitempty"`
	Audit   *audit.Report          `json:"audit,omitempty"`
	Windows []telemetry.Window     `json:"windows"`
}

// renderHistory takes one final scrape (so the file covers work done
// after the last ticker fire), re-evaluates the watchdog, runs a closing
// audit, and streams everything to w as JSON. Audit failures (e.g. an
// empty condensation) degrade to an audit-less file rather than losing
// the windows.
func renderHistory(w io.Writer, s *server.Server, rec *telemetry.Recorder, wd *telemetry.Watchdog, log *slog.Logger) error {
	rep, err := s.Audit()
	if err != nil {
		log.Warn("final audit failed", slog.String("error", err.Error()))
		rep = nil
	}
	rec.Scrape()
	wd.Evaluate(rec)
	overall, rules := wd.Status()
	dump := historyDump{
		Status:  overall.String(),
		Rules:   rules,
		Audit:   rep,
		Windows: rec.Windows(0),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}

// serveDebug exposes the net/http/pprof profiling handlers on their own
// address, so profiling never shares a listener with the data-collection
// API and stays off unless explicitly requested.
func serveDebug(addr string, log *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Info("pprof listening", slog.String("addr", addr))
	if err := srv.ListenAndServe(); err != nil {
		log.Error("pprof server stopped", slog.String("error", err.Error()))
	}
}
