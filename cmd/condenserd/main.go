// Command condenserd runs the condensation HTTP service: a data-collection
// endpoint that ingests records incrementally (the paper's dynamic
// setting), retains only per-group aggregate statistics, and serves
// anonymized snapshots, statistics, and binary checkpoints.
//
// Usage:
//
//	condenserd -addr :8080 -dim 7 -k 25
//	condenserd -addr :8080 -resume checkpoint.bin
//
// Endpoints: POST /v1/records, GET /v1/snapshot, GET /v1/stats,
// GET /v1/checkpoint, GET /healthz (see internal/server).
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"condensation/internal/core"
	"condensation/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, func(addr string, h http.Handler) error {
		srv := &http.Server{
			Addr:              addr,
			Handler:           h,
			ReadHeaderTimeout: 10 * time.Second,
		}
		return srv.ListenAndServe()
	}); err != nil {
		fmt.Fprintf(os.Stderr, "condenserd: %v\n", err)
		os.Exit(1)
	}
}

// run builds the server and hands it to serve; serve is injected so tests
// can intercept the handler instead of binding a port.
func run(args []string, stderr io.Writer, serve func(addr string, h http.Handler) error) error {
	fs := flag.NewFlagSet("condenserd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr   = fs.String("addr", ":8080", "listen address")
		dim    = fs.Int("dim", 0, "record dimensionality (required unless -resume)")
		k      = fs.Int("k", 10, "indistinguishability level")
		seed   = fs.Uint64("seed", 1, "random seed for split-axis decisions")
		batch  = fs.Int("batch", 10000, "maximum records per POST")
		resume = fs.String("resume", "", "checkpoint file to restore state from")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := server.Config{Dim: *dim, MaxBatch: *batch}
	condenserK, condenserOpts := *k, core.Options{}
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			return err
		}
		cond, err := core.ReadCondensation(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("restoring %s: %w", *resume, err)
		}
		cfg.Initial = cond
		// The checkpoint's k and options are authoritative when resuming.
		condenserK, condenserOpts = cond.K(), cond.Options()
		fmt.Fprintf(stderr, "restored %d records in %d groups (k=%d, dim=%d) from %s\n",
			cond.TotalCount(), cond.NumGroups(), cond.K(), cond.Dim(), *resume)
	} else if *dim < 1 {
		fs.Usage()
		return fmt.Errorf("-dim is required when not resuming from a checkpoint")
	}
	condenser, err := core.NewCondenser(condenserK,
		core.WithSeed(*seed), core.WithOptions(condenserOpts))
	if err != nil {
		return err
	}
	cfg.Condenser = condenser

	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "condenserd listening on %s\n", *addr)
	return serve(*addr, s)
}
