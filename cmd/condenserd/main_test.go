package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"condensation/internal/core"
	"condensation/internal/mat"
	"condensation/internal/rng"
)

// capture runs run() with a serve function that records the handler
// instead of listening.
func capture(t *testing.T, args []string) (http.Handler, error) {
	t.Helper()
	var handler http.Handler
	err := run(args, &bytes.Buffer{}, func(addr string, h http.Handler) error {
		handler = h
		return nil
	})
	return handler, err
}

func TestRunFresh(t *testing.T) {
	h, err := capture(t, []string{"-dim", "3", "-k", "5"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

func TestRunResume(t *testing.T) {
	// Build and persist a condensation, then resume from it.
	r := rng.New(1)
	recs := make([]mat.Vector, 30)
	for i := range recs {
		recs[i] = mat.Vector{r.Norm(), r.Norm()}
	}
	cond, err := core.Static(recs, 5, r, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cond.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	h, err := capture(t, []string{"-resume", path})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Records int `json:"records"`
		K       int `json:"k"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Records != 30 || stats.K != 5 {
		t.Errorf("resumed stats %+v", stats)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                          // no dim, no resume
		{"-dim", "0"},               // bad dim
		{"-dim", "2", "-k", "0"},    // bad k
		{"-resume", "/nonexistent"}, // missing checkpoint
	}
	for _, args := range cases {
		if _, err := capture(t, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunResumeCorruptCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, []string{"-resume", path}); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
}

func TestRunMetricsWired(t *testing.T) {
	h, err := capture(t, []string{"-dim", "2", "-k", "3", "-log-level", "off"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/records", "application/json",
		bytes.NewReader([]byte(`{"records":[[1,2],[3,4],[5,6],[7,8]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"http_request_seconds_bucket",
		"condense_stream_records_total 4",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestRunBadLogFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-dim", "2", "-log-level", "chatty"},
		{"-dim", "2", "-log-format", "xml"},
	} {
		if _, err := capture(t, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunSearchFlag covers the routing-backend and parallelism flags: every
// backend name serves identically (the backends are exact, so even the
// ingested state agrees), and unknown names are rejected before listening.
func TestRunSearchFlag(t *testing.T) {
	for _, backend := range []string{"auto", "scan-sort", "quickselect", "kdtree"} {
		h, err := capture(t, []string{"-dim", "2", "-k", "3", "-search", backend, "-par", "2"})
		if err != nil {
			t.Fatalf("-search %s: %v", backend, err)
		}
		ts := httptest.NewServer(h)
		resp, err := http.Post(ts.URL+"/v1/records", "application/json",
			bytes.NewReader([]byte(`{"records":[[1,2],[3,4],[5,6],[7,8]]}`)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ts.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("-search %s: ingest status %d", backend, resp.StatusCode)
		}
	}
	if _, err := capture(t, []string{"-dim", "2", "-search", "ball-tree"}); err == nil {
		t.Error("unknown -search backend accepted")
	}
}
