package main

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"condensation/internal/core"
	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/telemetry"
)

// capture runs run() with a serve function that records the handler
// instead of listening.
func capture(t *testing.T, args []string) (http.Handler, error) {
	t.Helper()
	var handler http.Handler
	err := run(args, &bytes.Buffer{}, func(ctx context.Context, addr string, h http.Handler) error {
		handler = h
		return nil
	})
	return handler, err
}

// serveWith runs run() with a serve function that exercises the handler
// through a live httptest server while run's background machinery (the
// audit loop, the trace writer) is active.
func serveWith(t *testing.T, args []string, body func(ts *httptest.Server)) error {
	t.Helper()
	return run(args, &bytes.Buffer{}, func(ctx context.Context, addr string, h http.Handler) error {
		ts := httptest.NewServer(h)
		defer ts.Close()
		body(ts)
		return nil
	})
}

func TestRunFresh(t *testing.T) {
	h, err := capture(t, []string{"-dim", "3", "-k", "5"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

func TestRunResume(t *testing.T) {
	// Build and persist a condensation, then resume from it.
	r := rng.New(1)
	recs := make([]mat.Vector, 30)
	for i := range recs {
		recs[i] = mat.Vector{r.Norm(), r.Norm()}
	}
	cond, err := core.Static(recs, 5, r, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cond.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	h, err := capture(t, []string{"-resume", path})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Records int `json:"records"`
		K       int `json:"k"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Records != 30 || stats.K != 5 {
		t.Errorf("resumed stats %+v", stats)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                          // no dim, no resume
		{"-dim", "0"},               // bad dim
		{"-dim", "2", "-k", "0"},    // bad k
		{"-resume", "/nonexistent"}, // missing checkpoint
	}
	for _, args := range cases {
		if _, err := capture(t, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunResumeCorruptCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, []string{"-resume", path}); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
}

func TestRunMetricsWired(t *testing.T) {
	h, err := capture(t, []string{"-dim", "2", "-k", "3", "-log-level", "off"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/records", "application/json",
		bytes.NewReader([]byte(`{"records":[[1,2],[3,4],[5,6],[7,8]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"http_request_seconds_bucket",
		"condense_stream_records_total 4",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestRunBadLogFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-dim", "2", "-log-level", "chatty"},
		{"-dim", "2", "-log-format", "xml"},
	} {
		if _, err := capture(t, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunAuditLoop: with a short -audit-every, the background auditor
// publishes the audit gauges to /metrics without anyone hitting /v1/audit.
func TestRunAuditLoop(t *testing.T) {
	err := serveWith(t, []string{"-dim", "2", "-k", "4", "-log-level", "off", "-audit-every", "20ms"},
		func(ts *httptest.Server) {
			resp, err := http.Post(ts.URL+"/v1/records", "application/json",
				bytes.NewReader([]byte(`{"records":[[1,2],[3,4],[5,6],[7,8],[2,1],[4,3],[6,5],[8,7]]}`)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			deadline := time.Now().Add(5 * time.Second)
			for {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Fatal(err)
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if strings.Contains(string(body), "condense_audit_runs_total") &&
					strings.Contains(string(body), "condense_audit_k_violations_total 0") {
					return
				}
				if time.Now().After(deadline) {
					t.Fatalf("audit loop never published metrics; /metrics:\n%s", body)
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunTraceOut: -trace-out implies sampling, records request spans, and
// writes a Chrome trace-event file once serve returns.
func TestRunTraceOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	err := serveWith(t, []string{"-dim", "2", "-k", "3", "-log-level", "off",
		"-audit-every", "0", "-trace-out", path},
		func(ts *httptest.Server) {
			resp, err := http.Post(ts.URL+"/v1/records", "application/json",
				bytes.NewReader([]byte(`{"records":[[1,2],[3,4],[5,6],[7,8]]}`)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			// The live endpoint serves the same spans before shutdown.
			resp, err = http.Get(ts.URL + "/debug/trace")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("/debug/trace status %d", resp.StatusCode)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"http /v1/records", "dynamic.add_batch"} {
		if !names[want] {
			t.Errorf("trace file missing %q span (got %v)", want, names)
		}
	}
}

// TestRunSearchFlag covers the routing-backend and parallelism flags: every
// backend name serves identically (the backends are exact, so even the
// ingested state agrees), and unknown names are rejected before listening.
func TestRunSearchFlag(t *testing.T) {
	for _, backend := range []string{"auto", "scan-sort", "quickselect", "kdtree"} {
		h, err := capture(t, []string{"-dim", "2", "-k", "3", "-search", backend, "-par", "2"})
		if err != nil {
			t.Fatalf("-search %s: %v", backend, err)
		}
		ts := httptest.NewServer(h)
		resp, err := http.Post(ts.URL+"/v1/records", "application/json",
			bytes.NewReader([]byte(`{"records":[[1,2],[3,4],[5,6],[7,8]]}`)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ts.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("-search %s: ingest status %d", backend, resp.StatusCode)
		}
	}
	if _, err := capture(t, []string{"-dim", "2", "-search", "ball-tree"}); err == nil {
		t.Error("unknown -search backend accepted")
	}
}

// TestRunShards covers the -shards flag: a sharded daemon reports its
// shard count on /healthz, advances every shard's stream counter, holds
// k_violations at 0, and rejects nonsensical shard counts before
// listening.
func TestRunShards(t *testing.T) {
	h, err := capture(t, []string{"-dim", "2", "-k", "4", "-shards", "4", "-log-level", "off"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	records := make([][]float64, 200)
	r := rng.New(3)
	for i := range records {
		records[i] = []float64{r.Norm(), r.Norm()}
	}
	body, err := json.Marshal(map[string]interface{}{"records": records})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/records", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Shards  int `json:"shards"`
		Records int `json:"records"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health.Shards != 4 || health.Records != 200 {
		t.Fatalf("healthz %+v", health)
	}

	resp, err = http.Get(ts.URL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		KViolations int `json:"k_violations"`
	}
	err = json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.KViolations != 0 {
		t.Fatalf("k_violations = %d", rep.KViolations)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := `condense_stream_records_total{shard="` + strconv.Itoa(i) + `"}`
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %s", want)
		}
	}

	if _, err := capture(t, []string{"-dim", "2", "-shards", "0"}); err == nil {
		t.Error("-shards 0 accepted")
	}
}

// TestRunScraper: the background scraper fills /v1/history, the watchdog
// serves /v1/health/rules, and -scrape-every 0 turns both off.
func TestRunScraper(t *testing.T) {
	err := serveWith(t, []string{"-dim", "2", "-k", "4", "-log-level", "off",
		"-audit-every", "0", "-scrape-every", "20ms"},
		func(ts *httptest.Server) {
			resp, err := http.Post(ts.URL+"/v1/records", "application/json",
				bytes.NewReader([]byte(`{"records":[[1,2],[3,4],[5,6],[7,8],[2,1],[4,3],[6,5],[8,7]]}`)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			deadline := time.Now().Add(5 * time.Second)
			for {
				resp, err := http.Get(ts.URL + "/v1/history")
				if err != nil {
					t.Fatal(err)
				}
				var hist struct {
					Windows []struct {
						Seq uint64 `json:"seq"`
					} `json:"windows"`
				}
				err = json.NewDecoder(resp.Body).Decode(&hist)
				resp.Body.Close()
				if err != nil {
					t.Fatal(err)
				}
				if len(hist.Windows) >= 2 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("scraper never recorded two windows")
				}
				time.Sleep(10 * time.Millisecond)
			}
			resp, err = http.Get(ts.URL + "/v1/health/rules")
			if err != nil {
				t.Fatal(err)
			}
			var rules struct {
				Status string `json:"status"`
				Rules  []struct {
					Name string `json:"name"`
				} `json:"rules"`
			}
			err = json.NewDecoder(resp.Body).Decode(&rules)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if rules.Status != "ok" || len(rules.Rules) == 0 {
				t.Errorf("health rules = %q with %d rules, want ok with rules", rules.Status, len(rules.Rules))
			}
		})
	if err != nil {
		t.Fatal(err)
	}

	// -scrape-every 0: both endpoints are 404, /healthz still ok.
	err = serveWith(t, []string{"-dim", "2", "-k", "4", "-log-level", "off",
		"-audit-every", "0", "-scrape-every", "0"},
		func(ts *httptest.Server) {
			for _, path := range []string{"/v1/history", "/v1/health/rules"} {
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNotFound {
					t.Errorf("GET %s with scraping off = %d, want 404", path, resp.StatusCode)
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunHistoryOut: graceful shutdown flushes the windows, rule states,
// and a final audit to the -history-out file.
func TestRunHistoryOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.json")
	err := serveWith(t, []string{"-dim", "2", "-k", "3", "-log-level", "off",
		"-audit-every", "0", "-scrape-every", "20ms", "-history-out", path},
		func(ts *httptest.Server) {
			resp, err := http.Post(ts.URL+"/v1/records", "application/json",
				bytes.NewReader([]byte(`{"records":[[1,2],[3,4],[5,6],[7,8]]}`)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			time.Sleep(50 * time.Millisecond)
		})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("history file not written: %v", err)
	}
	var doc struct {
		Status string `json:"status"`
		Rules  []struct {
			Name string `json:"name"`
		} `json:"rules"`
		Audit *struct {
			Records int `json:"records"`
		} `json:"audit"`
		Windows []struct {
			Seq uint64 `json:"seq"`
		} `json:"windows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("history file not valid JSON: %v", err)
	}
	if doc.Status != "ok" || len(doc.Rules) == 0 {
		t.Errorf("history file status = %q with %d rules, want ok with rules", doc.Status, len(doc.Rules))
	}
	if doc.Audit == nil || doc.Audit.Records != 4 {
		t.Errorf("history file audit = %+v, want a final audit over 4 records", doc.Audit)
	}
	if len(doc.Windows) == 0 {
		t.Error("history file has no windows (final flush scrape missing)")
	}
	// -history-out alone re-enables scraping.
	path2 := filepath.Join(t.TempDir(), "history2.json")
	err = serveWith(t, []string{"-dim", "2", "-k", "3", "-log-level", "off",
		"-audit-every", "0", "-scrape-every", "0", "-history-out", path2},
		func(ts *httptest.Server) {
			resp, err := http.Get(ts.URL + "/v1/history")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("/v1/history with -history-out = %d, want 200", resp.StatusCode)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path2); err != nil {
		t.Errorf("history file not written when -history-out implied scraping: %v", err)
	}
}

// TestRunBundleOut: -bundle-out writes a valid tar.gz diagnostics bundle
// through the unified shutdown-artifact path, and /v1/events serves the
// default-enabled lifecycle journal while the daemon runs.
func TestRunBundleOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bundle.tar.gz")
	err := serveWith(t, []string{"-dim", "2", "-k", "3", "-log-level", "off",
		"-audit-every", "0", "-scrape-every", "0", "-bundle-out", path},
		func(ts *httptest.Server) {
			resp, err := http.Post(ts.URL+"/v1/records", "application/json",
				bytes.NewReader([]byte(`{"records":[[1,2],[3,4],[5,6],[7,8]]}`)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			er, err := http.Get(ts.URL + "/v1/events")
			if err != nil {
				t.Fatal(err)
			}
			er.Body.Close()
			if er.StatusCode != http.StatusOK {
				t.Errorf("/v1/events with the default journal = %d, want 200", er.StatusCode)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("bundle file not written: %v", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("bundle is not gzip: %v", err)
	}
	tr := tar.NewReader(gz)
	names := map[string]bool{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("bundle tar: %v", err)
		}
		names[hdr.Name] = true
	}
	for _, want := range []string{"healthz.json", "metrics.prom", "audit.json", "journal.json"} {
		if !names[want] {
			t.Errorf("bundle is missing %s (has %v)", want, names)
		}
	}

	// -journal 0 disables the journal: /v1/events 404s and the bundle
	// omits its entry.
	err = serveWith(t, []string{"-dim", "2", "-k", "3", "-log-level", "off",
		"-audit-every", "0", "-scrape-every", "0", "-journal", "0"},
		func(ts *httptest.Server) {
			resp, err := http.Get(ts.URL + "/v1/events")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Errorf("/v1/events with -journal 0 = %d, want 404", resp.StatusCode)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWriteShutdownArtifacts: a failing artifact is logged, surfaces as
// the returned error, and does not stop later artifacts from landing.
func TestWriteShutdownArtifacts(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.txt")
	log, err := telemetry.NewLogger(io.Discard, "off", "text")
	if err != nil {
		t.Fatal(err)
	}
	werr := writeShutdownArtifacts([]shutdownArtifact{
		{kind: "broken", path: filepath.Join(dir, "no-such-dir", "x"),
			write: func(io.Writer) error { return nil }},
		{kind: "good", path: good,
			write: func(w io.Writer) error { _, err := w.Write([]byte("ok")); return err }},
	}, log)
	if werr == nil {
		t.Fatal("first artifact's create failure not returned")
	}
	if data, err := os.ReadFile(good); err != nil || string(data) != "ok" {
		t.Fatalf("later artifact not written after earlier failure: %v %q", err, data)
	}
}
