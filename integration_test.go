package condensation

import (
	"bytes"
	"math"
	"testing"

	"condensation/internal/assoc"
	"condensation/internal/core"
	"condensation/internal/datagen"
	"condensation/internal/dataset"
	"condensation/internal/discretize"
	"condensation/internal/knn"
	"condensation/internal/metrics"
	"condensation/internal/privacy"
	"condensation/internal/rng"
	"condensation/internal/stream"
	"condensation/internal/tree"
)

// TestPipelineClassification exercises the full paper pipeline end to end
// on every classification data set: generate → split → anonymize → train
// unmodified classifier → score, checking the headline claims.
func TestPipelineClassification(t *testing.T) {
	for _, name := range []string{"ionosphere", "ecoli", "pima"} {
		name := name
		t.Run(name, func(t *testing.T) {
			ds, err := datagen.ByName(name, 99)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(100)
			train, test, err := ds.TrainTestSplit(0.75, r.Split())
			if err != nil {
				t.Fatal(err)
			}

			clf, err := knn.NewClassifier(train, 1)
			if err != nil {
				t.Fatal(err)
			}
			preds, err := clf.PredictAll(test)
			if err != nil {
				t.Fatal(err)
			}
			origAcc, err := metrics.Accuracy(preds, test.Labels)
			if err != nil {
				t.Fatal(err)
			}

			anon, report, err := core.Anonymize(train, core.AnonymizeConfig{K: 10, Mode: core.ModeStatic}, r.Split())
			if err != nil {
				t.Fatal(err)
			}
			if anon.Len() != train.Len() {
				t.Fatalf("anonymized %d records, want %d", anon.Len(), train.Len())
			}
			aclf, err := knn.NewClassifier(anon, 1)
			if err != nil {
				t.Fatal(err)
			}
			apreds, err := aclf.PredictAll(test)
			if err != nil {
				t.Fatal(err)
			}
			anonAcc, err := metrics.Accuracy(apreds, test.Labels)
			if err != nil {
				t.Fatal(err)
			}

			// The paper's claim: anonymized accuracy is comparable. Allow
			// a modest absolute drop.
			if anonAcc < origAcc-0.1 {
				t.Errorf("anonymized accuracy %.4f vs original %.4f: degradation exceeds 0.1", anonAcc, origAcc)
			}

			// Covariance structure survives.
			mu, err := metrics.CovarianceCompatibility(train.X, anon.X)
			if err != nil {
				t.Fatal(err)
			}
			if mu < 0.95 {
				t.Errorf("µ = %.4f, want ≥ 0.95", mu)
			}

			// Groups respect k except for classes smaller than k.
			counts := train.ClassCounts()
			for _, cr := range report.Classes {
				if counts[cr.Label] >= 10 && cr.MinGroupSize < 10 {
					t.Errorf("class %d min group %d < k", cr.Label, cr.MinGroupSize)
				}
			}
		})
	}
}

// TestPipelineRegression is the Abalone counterpart: within-one-year
// accuracy on anonymized data stays within range of the original.
func TestPipelineRegression(t *testing.T) {
	ds, err := datagen.ByName("abalone", 101)
	if err != nil {
		t.Fatal(err)
	}
	// A subset keeps the test fast; the full set runs in the bench suite.
	idx := make([]int, 1200)
	for i := range idx {
		idx[i] = i
	}
	sub, err := ds.Subset(idx)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(102)
	train, test, err := sub.TrainTestSplit(0.75, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	score := func(tr *dataset.Dataset) float64 {
		reg, err := knn.NewRegressor(tr, 1)
		if err != nil {
			t.Fatal(err)
		}
		preds, err := reg.PredictAll(test)
		if err != nil {
			t.Fatal(err)
		}
		acc, err := metrics.WithinTolerance(preds, test.Targets, 1)
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	origAcc := score(train)
	anon, _, err := core.Anonymize(train, core.AnonymizeConfig{K: 10, Mode: core.ModeStatic}, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	anonAcc := score(anon)
	if anonAcc < origAcc-0.12 {
		t.Errorf("anonymized within-one-year %.4f vs original %.4f", anonAcc, origAcc)
	}
}

// TestPipelineDynamicStream runs the stream deployment end to end: static
// seed, stream the rest, audit, synthesize, classify.
func TestPipelineDynamicStream(t *testing.T) {
	ds := datagen.TwoGaussians(103, 300, 4, 8)
	r := rng.New(104)
	const k = 8

	// Per-class streams, as the paper's classification setting implies.
	byClass := ds.ByClass()
	anon := &dataset.Dataset{Task: dataset.Classification, Attrs: ds.Attrs, ClassNames: ds.ClassNames}
	for label, idx := range byClass {
		recs := make([]int, len(idx))
		copy(recs, idx)
		sub, err := ds.Subset(recs)
		if err != nil {
			t.Fatal(err)
		}
		base, err := core.Static(sub.X[:50], k, r.Split(), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		dyn, err := core.NewDynamic(base, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		driver, err := stream.NewDriver(dyn)
		if err != nil {
			t.Fatal(err)
		}
		if err := driver.Feed(stream.Shuffled(sub.X[50:], r.Split())); err != nil {
			t.Fatal(err)
		}
		cond := driver.Condensation()
		audit, err := privacy.AuditGroups(cond.Groups(), k)
		if err != nil {
			t.Fatal(err)
		}
		if !audit.Satisfied() {
			t.Fatalf("class %d: audit violated: %+v", label, audit)
		}
		if audit.MaxSize >= 2*k {
			t.Fatalf("class %d: group of size %d ≥ 2k survived", label, audit.MaxSize)
		}
		synth, err := cond.Synthesize(r.Split())
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range synth {
			if err := anon.Append(x, label, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if anon.Len() != ds.Len() {
		t.Fatalf("streamed anonymization produced %d records, want %d", anon.Len(), ds.Len())
	}
	clf, err := knn.NewClassifier(anon, 1)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := clf.PredictAll(ds)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := metrics.Accuracy(preds, ds.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("stream-anonymized accuracy %.4f on separable data", acc)
	}
}

// TestPipelineMining runs the discretize→Apriori pipeline on original and
// anonymized Ecoli and demands substantial rule agreement.
func TestPipelineMining(t *testing.T) {
	ds := datagen.Ecoli(105)
	r := rng.New(106)
	mine := func(records *dataset.Dataset) []assoc.Rule {
		dz, err := discretize.EquiDepth(records.X, 3)
		if err != nil {
			t.Fatal(err)
		}
		txs, err := dz.ItemsAll(records.X)
		if err != nil {
			t.Fatal(err)
		}
		freq, err := assoc.Apriori(txs, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		rules, err := assoc.Rules(freq, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		return rules
	}
	origRules := mine(ds)
	if len(origRules) == 0 {
		t.Fatal("no rules mined from original data; mining study would be vacuous")
	}
	anon, _, err := core.Anonymize(ds, core.AnonymizeConfig{K: 10, Mode: core.ModeStatic}, r)
	if err != nil {
		t.Fatal(err)
	}
	anonRules := mine(anon)
	if j := assoc.RuleSetJaccard(origRules, anonRules); j < 0.4 {
		t.Errorf("rule-set Jaccard %.3f, want ≥ 0.4", j)
	}
}

// TestPipelineTree runs the unmodified decision tree on anonymized data.
func TestPipelineTree(t *testing.T) {
	ds := datagen.Pima(107)
	r := rng.New(108)
	train, test, err := ds.TrainTestSplit(0.75, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	fit := func(tr *dataset.Dataset) float64 {
		c, err := tree.Train(tr, tree.Options{MaxDepth: 6, MinLeaf: 10})
		if err != nil {
			t.Fatal(err)
		}
		acc, err := c.Accuracy(test)
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	origAcc := fit(train)
	anon, _, err := core.Anonymize(train, core.AnonymizeConfig{K: 15, Mode: core.ModeStatic}, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	anonAcc := fit(anon)
	if anonAcc < origAcc-0.1 {
		t.Errorf("tree on anonymized data %.4f vs original %.4f", anonAcc, origAcc)
	}
}

// TestPipelineCheckpoint round-trips a condensation through the binary
// format and verifies synthesized output equivalence.
func TestPipelineCheckpoint(t *testing.T) {
	ds := datagen.Ecoli(109)
	cond, err := core.Static(ds.X, 12, rng.New(110), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cond.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.ReadCondensation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := cond.Synthesize(rng.New(111))
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Synthesize(rng.New(111))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].Equal(b[i], 0) {
			t.Fatal("synthesis differs after checkpoint round trip")
		}
	}
}

// TestMomentPreservationEndToEnd checks the quantitative heart of the
// method: per-group means are exact, and global covariance error shrinks
// as group sizes shrink.
func TestMomentPreservationEndToEnd(t *testing.T) {
	ds := datagen.Pima(112)
	var prevErr float64 = -1
	for _, k := range []int{100, 25, 5} {
		cond, err := core.Static(ds.X, k, rng.New(113), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		synth, err := cond.Synthesize(rng.New(114))
		if err != nil {
			t.Fatal(err)
		}
		mu, err := metrics.CovarianceCompatibility(ds.X, synth)
		if err != nil {
			t.Fatal(err)
		}
		errNow := 1 - mu
		if prevErr >= 0 && errNow > prevErr+0.02 {
			t.Errorf("k=%d: covariance error %.4f grew vs larger k (%.4f)", k, errNow, prevErr)
		}
		prevErr = errNow
		if math.IsNaN(mu) {
			t.Fatal("µ is NaN")
		}
	}
}

// TestPipelineShardedStream runs the sharded deployment end to end: a
// 4-shard engine fed through the generic stream driver, the merged
// condensation audited for the k-invariant, reproduced bit for bit on a
// second engine, then synthesized and classified.
func TestPipelineShardedStream(t *testing.T) {
	ds := datagen.TwoGaussians(115, 400, 4, 8)
	const k, shards = 8, 4

	run := func(t *testing.T) (*core.Sharded, *core.Condensation) {
		t.Helper()
		condenser, err := core.NewCondenser(k, core.WithSeed(116))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := condenser.Sharded(len(ds.Attrs), shards)
		if err != nil {
			t.Fatal(err)
		}
		driver, err := stream.NewDriver(eng)
		if err != nil {
			t.Fatal(err)
		}
		driver.BatchSize = 64
		if err := driver.Feed(stream.Shuffled(ds.X, rng.New(117))); err != nil {
			t.Fatal(err)
		}
		if driver.Seen() != ds.Len() {
			t.Fatalf("driver saw %d records, want %d", driver.Seen(), ds.Len())
		}
		return eng, driver.Condensation()
	}

	eng, cond := run(t)
	audit, err := privacy.AuditGroups(cond.Groups(), k)
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Satisfied() || audit.MaxSize >= 2*k {
		t.Fatalf("merged audit violated: %+v", audit)
	}
	for i := 0; i < eng.NumShards(); i++ {
		sa, err := privacy.AuditGroups(eng.Shard(i).Groups(), k)
		if err != nil {
			t.Fatal(err)
		}
		if !sa.Satisfied() {
			t.Fatalf("shard %d audit violated: %+v", i, sa)
		}
	}

	_, cond2 := run(t)
	var a, b bytes.Buffer
	if _, err := cond.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := cond2.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("sharded stream pipeline is not reproducible")
	}

	synth, err := cond.Synthesize(rng.New(118))
	if err != nil {
		t.Fatal(err)
	}
	if len(synth) != ds.Len() {
		t.Fatalf("synthesized %d records, want %d", len(synth), ds.Len())
	}
	mu, err := metrics.CovarianceCompatibility(ds.X, synth)
	if err != nil {
		t.Fatal(err)
	}
	if mu < 0.95 {
		t.Errorf("µ = %.4f after sharded streaming, want ≥ 0.95", mu)
	}
}
