package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"condensation/internal/audit"
	"condensation/internal/core"
	"condensation/internal/telemetry"
)

// observed bundles the pieces an observability test drives directly.
type observed struct {
	ts  *httptest.Server
	s   *Server
	reg *telemetry.Registry
	rec *telemetry.Recorder
	wd  *telemetry.Watchdog
	log *bytes.Buffer
}

// newObservedServer builds a server with the full observability stack
// attached: registry, flight recorder, and a watchdog running the
// standard rule set for the shard count. The scrape loop is NOT started —
// tests call rec.Scrape/wd.Evaluate themselves to drive windows
// deterministically.
func newObservedServer(t *testing.T, shards int) observed {
	t.Helper()
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(reg, 64)
	var logbuf bytes.Buffer
	logger, err := telemetry.NewLogger(&logbuf, "info", "text")
	if err != nil {
		t.Fatal(err)
	}
	wd := telemetry.NewWatchdog(reg, logger, HealthRules(shards)...)
	condenser, err := core.NewCondenser(5, core.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Dim: 2, Condenser: condenser, Shards: shards,
		Telemetry: reg, Recorder: rec, Watchdog: wd,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	testServers[ts.URL] = s
	t.Cleanup(func() {
		delete(testServers, ts.URL)
		ts.Close()
	})
	return observed{ts: ts, s: s, reg: reg, rec: rec, wd: wd, log: &logbuf}
}

// historyBody mirrors the /v1/history response.
type historyBody struct {
	Capacity int                `json:"capacity"`
	Recorded uint64             `json:"recorded"`
	Windows  []telemetry.Window `json:"windows"`
}

// rulesBody mirrors the /v1/health/rules response.
type rulesBody struct {
	Status string                 `json:"status"`
	Rules  []telemetry.RuleStatus `json:"rules"`
}

func TestHistoryEndpoint(t *testing.T) {
	o := newObservedServer(t, 1)
	postRecords(t, o.ts, genRecords(1, 100))
	for i := 0; i < 3; i++ {
		o.rec.Scrape()
	}

	var hist historyBody
	if resp := getJSON(t, o.ts.URL+"/v1/history", &hist); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/history = %d", resp.StatusCode)
	}
	if len(hist.Windows) != 3 || hist.Recorded != 3 || hist.Capacity != 64 {
		t.Fatalf("history = %d windows, recorded %d, capacity %d; want 3/3/64",
			len(hist.Windows), hist.Recorded, hist.Capacity)
	}
	w := hist.Windows[0]
	if w.Counters[`http_requests_total{path="/v1/records",code="2xx"}`].Value != 1 {
		t.Errorf("first window is missing the ingest request count: %v", w.Counters)
	}
	if _, ok := w.Histograms[`http_request_seconds{path="/v1/records"}`]; !ok {
		t.Errorf("first window is missing the ingest latency histogram")
	}

	// ?last trims, ?series filters down to the selected families.
	var trimmed historyBody
	getJSON(t, o.ts.URL+"/v1/history?last=2&series=condense_groups", &trimmed)
	if len(trimmed.Windows) != 2 {
		t.Fatalf("last=2 returned %d windows", len(trimmed.Windows))
	}
	for _, w := range trimmed.Windows {
		if len(w.Counters) != 0 || len(w.Histograms) != 0 {
			t.Errorf("series filter leaked other families: %v %v", w.Counters, w.Histograms)
		}
		if _, ok := w.Gauges["condense_groups"]; !ok {
			t.Errorf("series filter dropped the requested gauge: %v", w.Gauges)
		}
	}

	if resp := getJSON(t, o.ts.URL+"/v1/history?last=x", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad last = %d, want 400", resp.StatusCode)
	}
}

// TestHistorySeriesValidation: a ?series selector matching nothing in the
// live registry used to silently return empty windows — exactly what
// "nothing was recorded" looks like. It is a 400 naming the unknown
// selectors now; selectors matching registered series (bare-name or
// labelled-family form) still pass.
func TestHistorySeriesValidation(t *testing.T) {
	o := newObservedServer(t, 1)
	postRecords(t, o.ts, genRecords(1, 60))
	o.rec.Scrape()

	for _, tc := range []struct {
		name    string
		query   string
		status  int
		wantErr string
	}{
		{"bare gauge name", "series=condense_groups", http.StatusOK, ""},
		{"labelled family by bare name", "series=http_requests_total", http.StatusOK, ""},
		{"exact labelled id", `series=http_request_seconds{path="/v1/records"}`, http.StatusOK, ""},
		{"two known selectors", "series=condense_groups,condense_groups_formed_total", http.StatusOK, ""},
		{"typo", "series=condense_gruops", http.StatusBadRequest, "condense_gruops"},
		{"known plus unknown", "series=condense_groups,no_such_series", http.StatusBadRequest, "no_such_series"},
		{"two unknown", "series=nope_a,nope_b", http.StatusBadRequest, "nope_a, nope_b"},
		{"label block on wrong family", `series=condense_groups{shard="0"}`, http.StatusBadRequest, "condense_groups{"},
		{"empty selector list", "series=", http.StatusOK, ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get(o.ts.URL + "/v1/history?" + (&url.Values{}).Encode() + rawQuery(tc.query))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d\n%s", resp.StatusCode, tc.status, body)
			}
			if tc.status == http.StatusBadRequest {
				var env errorResponse
				if err := json.Unmarshal(body, &env); err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(env.Error, "unknown series selector") ||
					!strings.Contains(env.Error, tc.wantErr) {
					t.Fatalf("error %q does not name %q", env.Error, tc.wantErr)
				}
			}
		})
	}
}

// rawQuery percent-encodes just the selector value of a "series=..."
// query so labelled ids (quotes, braces) survive the URL.
func rawQuery(q string) string {
	k, v, _ := strings.Cut(q, "=")
	return k + "=" + url.QueryEscape(v)
}

// TestObservabilityDisabled: without a recorder/watchdog the new
// endpoints 404 (like /debug/trace without a tracer) and /healthz still
// answers ok.
func TestObservabilityDisabled(t *testing.T) {
	ts := newTestServer(t, 5)
	for _, path := range []string{"/v1/history", "/v1/health/rules"} {
		if resp := getJSON(t, ts.URL+path, nil); resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without recorder = %d, want 404", path, resp.StatusCode)
		}
	}
	var health struct {
		Status string `json:"status"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz without watchdog = %d %q, want 200 ok", resp.StatusCode, health.Status)
	}
}

// TestWatchdogDriftScenario is the acceptance scenario: injected audit
// moments drive the ks_drift rule ok → degraded and back, and the
// transition is visible in /healthz, /v1/health/rules,
// condense_alerts_total, and the structured log.
func TestWatchdogDriftScenario(t *testing.T) {
	o := newObservedServer(t, 1)
	ks := o.reg.Gauge(audit.MetricKSMean)

	step := func(v float64, n int) {
		for i := 0; i < n; i++ {
			ks.Set(v)
			o.rec.Scrape()
			o.wd.Evaluate(o.rec)
		}
	}

	healthStatus := func() (int, string) {
		var h struct {
			Status string `json:"status"`
		}
		resp := getJSON(t, o.ts.URL+"/healthz", &h)
		return resp.StatusCode, h.Status
	}

	// Stable baseline: a healthy KS mean, all rules ok.
	step(0.02, 6)
	if code, status := healthStatus(); code != http.StatusOK || status != "ok" {
		t.Fatalf("baseline healthz = %d %q, want 200 ok", code, status)
	}

	// Synthetic drift: the KS mean rises past the trend threshold.
	step(0.17, 6)
	if code, status := healthStatus(); code != http.StatusOK || status != "degraded" {
		t.Fatalf("drifted healthz = %d %q, want 200 degraded", code, status)
	}
	var rules rulesBody
	getJSON(t, o.ts.URL+"/v1/health/rules", &rules)
	if rules.Status != "degraded" {
		t.Errorf("rules status = %q, want degraded", rules.Status)
	}
	found := false
	for _, r := range rules.Rules {
		if r.Name == "ks_drift" {
			found = true
			if r.State.String() != "degraded" || r.Alerts != 1 || r.Transitions != 1 {
				t.Errorf("ks_drift status = %+v, want degraded with 1 alert", r)
			}
		}
	}
	if !found {
		t.Fatalf("ks_drift rule missing from %v", rules.Rules)
	}
	metrics := getBody(t, o.ts.URL+"/metrics")
	if !strings.Contains(metrics, `condense_alerts_total{rule="ks_drift"} 1`) {
		t.Errorf("metrics missing the ks_drift alert count")
	}
	if !strings.Contains(metrics, "condense_health_state 1") {
		t.Errorf("metrics missing the degraded health-state gauge")
	}
	logged := o.log.String()
	if !strings.Contains(logged, "health rule transition") ||
		!strings.Contains(logged, "rule=ks_drift") ||
		!strings.Contains(logged, "to=degraded") {
		t.Errorf("transition not in the structured log: %q", logged)
	}

	// The stream settles at the new level: the trend flattens and the rule
	// recovers, but the alert stays counted.
	step(0.17, 12)
	if code, status := healthStatus(); code != http.StatusOK || status != "ok" {
		t.Fatalf("recovered healthz = %d %q, want 200 ok", code, status)
	}
	if !strings.Contains(o.log.String(), "to=ok") {
		t.Errorf("recovery transition not logged")
	}
	metrics = getBody(t, o.ts.URL+"/metrics")
	if !strings.Contains(metrics, `condense_alerts_total{rule="ks_drift"} 1`) {
		t.Errorf("alert counter lost on recovery")
	}
}

// TestShardObservability: a shards=4 server populates the per-shard load
// gauges, the imbalance ratio, and (after an audit) the per-shard audit
// gauges, and the windows carry the family for the imbalance rule.
func TestShardObservability(t *testing.T) {
	o := newObservedServer(t, 4)
	postRecords(t, o.ts, genRecords(7, 400))
	o.rec.Scrape()
	o.wd.Evaluate(o.rec)
	if _, err := o.s.Audit(); err != nil {
		t.Fatal(err)
	}

	metrics := getBody(t, o.ts.URL+"/metrics")
	var perShard int
	for i := 0; i < 4; i++ {
		if strings.Contains(metrics, fmt.Sprintf(`condense_shard_records{shard="%d"}`, i)) {
			perShard++
		}
	}
	if perShard != 4 {
		t.Errorf("found %d/4 condense_shard_records series", perShard)
	}
	if !strings.Contains(metrics, "condense_shard_imbalance_ratio") {
		t.Errorf("metrics missing the imbalance ratio gauge")
	}
	for _, name := range []string{
		`condense_audit_records{shard="0"}`,
		`condense_audit_min_group_size{shard="3"}`,
		`condense_audit_leftover_ratio{shard="1"}`,
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("metrics missing per-shard audit series %s", name)
		}
	}

	// The recorded window carries the family the imbalance rule reads.
	w, ok := o.rec.LastWindow()
	if !ok {
		t.Fatal("no window recorded")
	}
	var total float64
	for i := 0; i < 4; i++ {
		v, ok := w.Gauges[fmt.Sprintf(`condense_shard_records{shard="%d"}`, i)]
		if !ok {
			t.Fatalf("window missing shard %d records gauge", i)
		}
		total += float64(v)
	}
	if total != 400 {
		t.Errorf("per-shard records sum to %g, want 400", total)
	}

	// The standard rule set includes shard_imbalance only when sharded.
	var rules rulesBody
	getJSON(t, o.ts.URL+"/v1/health/rules", &rules)
	hasImbalance := func(rs []telemetry.RuleStatus) bool {
		for _, r := range rs {
			if r.Name == "shard_imbalance" {
				return true
			}
		}
		return false
	}
	if !hasImbalance(rules.Rules) {
		t.Errorf("sharded rule set missing shard_imbalance: %v", rules.Rules)
	}
	single := newObservedServer(t, 1)
	var singleRules rulesBody
	getJSON(t, single.ts.URL+"/v1/health/rules", &singleRules)
	if hasImbalance(singleRules.Rules) {
		t.Errorf("single-shard rule set includes shard_imbalance")
	}
}

func TestBuildInfoMetrics(t *testing.T) {
	o := newObservedServer(t, 2)
	metrics := getBody(t, o.ts.URL+"/metrics")
	if !strings.Contains(metrics, `condense_build_info{go_version="go`) ||
		!strings.Contains(metrics, `shards="2"`) {
		t.Errorf("metrics missing condense_build_info with go version and shard labels:\n%s",
			firstLines(metrics, 30))
	}
	if !strings.Contains(metrics, "condense_uptime_seconds") {
		t.Errorf("metrics missing condense_uptime_seconds")
	}
	var vars map[string]interface{}
	getJSON(t, o.ts.URL+"/debug/vars", &vars)
	up, ok := vars["condense_uptime_seconds"].(float64)
	if !ok || up < 0 {
		t.Errorf("debug/vars uptime = %v, want a non-negative number", vars["condense_uptime_seconds"])
	}
}

// TestObserveOnlyCheckpoint: an aggressively scraped server must produce
// a byte-identical checkpoint to an unobserved one over the same stream —
// the recorder and watchdog are observe-only.
func TestObserveOnlyCheckpoint(t *testing.T) {
	records := genRecords(3, 600)

	plain := newTestServer(t, 5)
	postRecords(t, plain, records)

	o := newObservedServer(t, 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				o.rec.Scrape()
				o.wd.Evaluate(o.rec)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	// Ingest in small batches so scrapes interleave with live ingestion.
	for lo := 0; lo < len(records); lo += 50 {
		postRecords(t, o.ts, records[lo:lo+50])
	}
	close(stop)
	wg.Wait()

	a := getBody(t, plain.URL+"/v1/checkpoint")
	b := getBody(t, o.ts.URL+"/v1/checkpoint")
	if a != b {
		t.Fatalf("checkpoint bytes differ with the recorder enabled (%d vs %d bytes)", len(a), len(b))
	}
}

// getBody fetches a URL and returns the body as a string.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// firstLines truncates s to its first n lines for readable failures.
func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
