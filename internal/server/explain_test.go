package server

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"condensation/internal/core"
	"condensation/internal/telemetry"
)

// newExplainServer builds a server with the lifecycle journal attached
// (plus any extra config the caller mutates in).
func newExplainServer(t *testing.T, shards int, mutate func(*Config)) (*httptest.Server, *telemetry.Journal) {
	t.Helper()
	jr := telemetry.NewJournal(512)
	condenser, err := core.NewCondenser(5, core.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Dim: 2, Condenser: condenser, Shards: shards, Journal: jr}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	testServers[ts.URL] = s
	t.Cleanup(func() {
		delete(testServers, ts.URL)
		ts.Close()
	})
	return ts, jr
}

func TestEventsEndpoint(t *testing.T) {
	ts, _ := newExplainServer(t, 1, nil)
	postRecords(t, ts, genRecords(71, 120))

	var er eventsResponse
	if resp := getJSON(t, ts.URL+"/v1/events", &er); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/events: %d", resp.StatusCode)
	}
	if er.Capacity != 512 || er.Recorded == 0 || len(er.Events) == 0 {
		t.Fatalf("events response %+v", er)
	}
	kinds := map[string]int{}
	for _, e := range er.Events {
		kinds[e.Type]++
	}
	if kinds[telemetry.EventGroupCreated] == 0 || kinds[telemetry.EventSplit] == 0 {
		t.Fatalf("120 records recorded no creations or splits: %v", kinds)
	}

	var filtered eventsResponse
	getJSON(t, ts.URL+"/v1/events?type=split&last=2", &filtered)
	if len(filtered.Events) > 2 {
		t.Fatalf("last=2 returned %d events", len(filtered.Events))
	}
	for _, e := range filtered.Events {
		if e.Type != telemetry.EventSplit {
			t.Fatalf("type=split returned %q", e.Type)
		}
	}

	for path, want := range map[string]int{
		"/v1/events?type=splitz":  http.StatusBadRequest,
		"/v1/events?last=-1":      http.StatusBadRequest,
		"/v1/events?last=bogus":   http.StatusBadRequest,
		"/v1/events?type=split,x": http.StatusBadRequest,
	} {
		if resp := getJSON(t, ts.URL+path, nil); resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestEventsDisabled(t *testing.T) {
	ts := newTestServer(t, 5) // no journal configured
	resp := getJSON(t, ts.URL+"/v1/events", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("journal-less /v1/events: status %d, want 404", resp.StatusCode)
	}
}

func TestGroupsEndpoints(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ts, _ := newExplainServer(t, shards, nil)
			postRecords(t, ts, genRecords(73, 150))

			var gr groupsResponse
			if resp := getJSON(t, ts.URL+"/v1/groups", &gr); resp.StatusCode != http.StatusOK {
				t.Fatalf("GET /v1/groups: %d", resp.StatusCode)
			}
			if len(gr.Groups) == 0 {
				t.Fatal("no groups after 150 records")
			}
			ids := map[uint64]bool{}
			for _, gi := range gr.Groups {
				if gi.ID == 0 || ids[gi.ID] {
					t.Fatalf("bad or duplicate id in %+v", gi)
				}
				ids[gi.ID] = true
			}

			var det core.GroupDetail
			first := gr.Groups[0]
			url := fmt.Sprintf("%s/v1/groups/%d", ts.URL, first.ID)
			if resp := getJSON(t, url, &det); resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: %d", url, resp.StatusCode)
			}
			if det.ID != first.ID || det.Size != first.Size || len(det.Centroid) != 2 {
				t.Fatalf("detail %+v does not match summary %+v", det, first)
			}

			if resp := getJSON(t, ts.URL+"/v1/groups/999999999", nil); resp.StatusCode != http.StatusNotFound {
				t.Fatalf("unknown id: status %d, want 404", resp.StatusCode)
			}
			if resp := getJSON(t, ts.URL+"/v1/groups/banana", nil); resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("malformed id: status %d, want 400", resp.StatusCode)
			}
		})
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts, _ := newExplainServer(t, 1, nil)
	postRecords(t, ts, genRecords(79, 100))

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/explain", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}

	resp, body := post(`{"record": [0.25, -0.5], "top": 3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/explain: %d\n%s", resp.StatusCode, body)
	}
	var ex core.Explanation
	if err := json.Unmarshal(body, &ex); err != nil {
		t.Fatal(err)
	}
	if ex.Outcome != core.ExplainAbsorb && ex.Outcome != core.ExplainSplit {
		t.Fatalf("outcome %q on a populated engine", ex.Outcome)
	}
	if ex.Routed == nil || len(ex.Candidates) == 0 || len(ex.Candidates) > 3 {
		t.Fatalf("explanation %+v", ex)
	}
	if ex.Routed.ID != ex.Candidates[0].ID {
		t.Fatal("routed is not the first candidate")
	}

	for body, want := range map[string]int{
		`{"record": [1.0]}`:                  http.StatusBadRequest, // wrong dim
		`{}`:                                 http.StatusBadRequest, // no record
		`{"record": [1, 2], "extra": true}`:  http.StatusBadRequest, // unknown field
		`not json`:                           http.StatusBadRequest,
		`{"record": [1e308, 1e308], "x":[]}`: http.StatusBadRequest,
	} {
		if resp, b := post(body); resp.StatusCode != want {
			t.Errorf("POST %s: status %d, want %d\n%s", body, resp.StatusCode, want, b)
		}
	}
	if resp := getJSON(t, ts.URL+"/v1/explain", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/explain: status %d, want 405", resp.StatusCode)
	}
}

func TestRequestIDEchoAndMint(t *testing.T) {
	ts, _ := newExplainServer(t, 1, nil)

	// A valid client id is echoed verbatim.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/stats", nil)
	req.Header.Set("X-Request-ID", "client-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-abc-123" {
		t.Fatalf("echoed request id %q, want client-abc-123", got)
	}

	// No id (and an invalid one) gets a fresh mint, distinct per request.
	minted := map[string]bool{}
	for _, hdr := range []string{"", "has space", strings.Repeat("x", 200)} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/stats", nil)
		if hdr != "" {
			req.Header.Set("X-Request-ID", hdr)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-ID")
		if id == "" || id == hdr {
			t.Fatalf("invalid client id %q was not replaced (got %q)", hdr, id)
		}
		if minted[id] {
			t.Fatalf("request id %q minted twice", id)
		}
		minted[id] = true
	}

	// Error envelopes carry the id for correlation.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/groups/banana", nil)
	req.Header.Set("X-Request-ID", "corr-404")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.RequestID != "corr-404" {
		t.Fatalf("error envelope request_id %q, want corr-404", env.RequestID)
	}
}

func TestBundleEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(reg, 16)
	wd := telemetry.NewWatchdog(reg, nil, HealthRules(1)...)
	tr := telemetry.NewTracer(0, 1)
	ts, _ := newExplainServer(t, 1, func(cfg *Config) {
		cfg.Telemetry = reg
		cfg.Recorder = rec
		cfg.Watchdog = wd
		cfg.Tracer = tr
	})
	postRecords(t, ts, genRecords(83, 80))
	rec.Scrape()

	resp, err := http.Get(ts.URL + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/bundle: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/gzip" {
		t.Fatalf("bundle content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	names := bundleEntries(t, raw)
	want := []string{
		"audit.json", "buildinfo.txt", "goroutines.txt", "health_rules.json",
		"healthz.json", "heap.pprof", "history.json", "journal.json",
		"metrics.prom", "trace.json",
	}
	if !equalStrings(names, want) {
		t.Fatalf("bundle entries %v, want %v", names, want)
	}

	// The journal entry must decode back to real events.
	var er eventsResponse
	if err := json.Unmarshal(bundleEntry(t, raw, "journal.json"), &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Events) == 0 {
		t.Fatal("bundle journal.json has no events")
	}
}

// TestBundleMinimal: with every optional subsystem off, the bundle still
// ships the unconditional entries and nothing else.
func TestBundleMinimal(t *testing.T) {
	ts := newTestServer(t, 5)
	resp, err := http.Get(ts.URL + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	names := bundleEntries(t, raw)
	want := []string{
		"audit.json", "buildinfo.txt", "goroutines.txt",
		"healthz.json", "heap.pprof", "metrics.prom",
	}
	if !equalStrings(names, want) {
		t.Fatalf("minimal bundle entries %v, want %v", names, want)
	}
}

func bundleEntries(t *testing.T, raw []byte) []string {
	t.Helper()
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	tr := tar.NewReader(gz)
	var names []string
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, hdr.Name)
	}
	sort.Strings(names)
	return names
}

func bundleEntry(t *testing.T, raw []byte, name string) []byte {
	t.Helper()
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if hdr.Name == name {
			b, err := io.ReadAll(tr)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
	}
	t.Fatalf("bundle has no entry %q", name)
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
