// Package server exposes a dynamic condensation over HTTP: records are
// POSTed as they are collected, only the per-group aggregate statistics
// are retained in memory, and anonymized snapshots can be synthesized at
// any time. It is the deployment shape the paper's dynamic setting
// implies — a data-collection endpoint that can publish privacy-preserving
// data continuously — built on net/http and the core package.
//
// Endpoints (all JSON unless noted):
//
//	POST /v1/records    {"records": [[...], ...]}     add stream records
//	GET  /v1/snapshot   ?seed=N                       synthesize anonymized records
//	GET  /v1/stats                                    condensation statistics + audit
//	GET  /v1/audit                                    anonymization-quality report
//	GET  /v1/checkpoint                               binary condensation state (octet-stream)
//	GET  /v1/history    ?last=N&series=a,b            flight-recorder windows (when recording on)
//	GET  /v1/health/rules                             watchdog rule states (when watchdog on)
//	GET  /v1/events     ?last=N&type=a,b              group-lifecycle journal (when journal on)
//	GET  /v1/groups                                   per-group lifecycle summaries
//	GET  /v1/groups/{id}                              one group's diagnostics detail
//	POST /v1/explain    {"record": [...], "top": M}   routing dry-run, side-effect-free
//	GET  /healthz                                     build info, uptime, live counts, health state
//	GET  /metrics                                     Prometheus text exposition
//	GET  /debug/vars                                  expvar-style JSON metrics
//	GET  /debug/trace   ?last=N                       Chrome trace-event JSON (when tracing on)
//	GET  /debug/bundle                                one-shot diagnostics tar.gz
//
// Every endpoint runs behind telemetry middleware recording request
// counts, an in-flight gauge, status-class counters, and a latency
// histogram per endpoint, and behind request-ID middleware: a client's
// X-Request-ID is accepted (or one is minted), echoed on the response,
// attached to trace spans, and stamped into error envelopes. Error
// responses use one JSON envelope: {"error": "...", "request_id": "..."}.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"condensation/internal/audit"
	"condensation/internal/core"
	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/telemetry"
)

// Config configures a condensation server.
type Config struct {
	// Engine is the condenser engine to serve. When set it is used as-is
	// (the server attaches its telemetry registry and tracer) and Dim,
	// Condenser, Shards, Initial, and the deprecated fields are ignored.
	// When nil, the server constructs an engine from the fields below.
	Engine core.Engine
	// Dim is the record dimensionality.
	Dim int
	// Condenser supplies the condensation configuration (k, options,
	// seed). Required unless the deprecated K/Options/Seed fields are set.
	Condenser *core.Condenser
	// Shards is the number of independent condenser shards the server
	// builds when Engine is nil. 0 and 1 both mean a single unsharded
	// engine guarded by the server's own lock — the exact pre-sharding
	// serving path; ≥ 2 builds a core.Sharded whose per-shard locks
	// replace the server's write lock, so concurrent batches only contend
	// when they route to the same shard.
	Shards int
	// K is the indistinguishability level.
	//
	// Deprecated: set Condenser instead; K is consulted only when
	// Condenser is nil.
	K int
	// Options tunes condensation behaviour.
	//
	// Deprecated: set Condenser instead.
	Options core.Options
	// Seed seeds the server's split-axis randomness.
	//
	// Deprecated: set Condenser instead.
	Seed uint64
	// MaxBatch bounds the records accepted per POST (default 10000).
	MaxBatch int
	// Initial optionally seeds the server with an existing condensation
	// (e.g. loaded from a checkpoint); its dim/k/options take precedence
	// over Dim and over a nil Condenser's defaults.
	Initial *core.Condensation
	// Telemetry receives the server's HTTP metrics and, through the
	// dynamic condenser, the engine's stage timers and group counters. Nil
	// means the server creates a private registry, so /metrics always
	// serves.
	Telemetry *telemetry.Registry
	// Logger receives structured request-independent events (startup,
	// ingest summaries). Nil means logging is off.
	Logger *slog.Logger
	// Tracer optionally records sampled request/ingest spans, served as
	// Chrome trace-event JSON from /debug/trace. Nil disables tracing (and
	// the /debug/trace endpoint answers 404).
	Tracer *telemetry.Tracer
	// AuditSample bounds the reservoir of original records retained (inside
	// the trusted collection boundary only) for the audit's marginal KS
	// comparison. 0 means the default 2048; negative disables the reservoir,
	// in which case audits omit the KS block.
	AuditSample int
	// AuditSeed seeds the audit's private synthesis draw and the reservoir
	// sampler (default 1). Independent of the engine's seed.
	AuditSeed uint64
	// Recorder optionally attaches a flight recorder (built over the same
	// registry as Telemetry). The server serves its windows from
	// /v1/history and registers a collector refreshing uptime and per-shard
	// load gauges at each scrape; the caller owns the scrape loop. Nil
	// disables the endpoint (404), like a nil Tracer does /debug/trace.
	Recorder *telemetry.Recorder
	// Watchdog optionally attaches a health watchdog (evaluated by the
	// caller's scrape loop). The server serves its rule states from
	// /v1/health/rules and folds its overall severity into /healthz. Nil
	// disables the endpoint and leaves /healthz always "ok".
	Watchdog *telemetry.Watchdog
	// Journal optionally attaches a group-lifecycle journal: the engine
	// records foundings/splits/rebuilds into it, the read cache records
	// invalidations, the watchdog records rule transitions, and the server
	// serves the ring from /v1/events. Nil disables the endpoint (404) and
	// all recording, like a nil Tracer does /debug/trace.
	Journal *telemetry.Journal
}

// defaultAuditSample is the reservoir capacity when Config.AuditSample is 0.
const defaultAuditSample = 2048

// Server is a thread-safe condensation HTTP service over a core.Engine.
// For an engine that does not synchronize itself (core.Dynamic), ingestion
// takes the server's write lock and read handlers share an RLock, so reads
// never queue behind each other — only behind an in-flight batch ingest.
// An engine that synchronizes itself (core.Sharded) bypasses the server's
// lock entirely: concurrent batches then contend per shard, not per
// server, which is the point of sharding.
type Server struct {
	mu       sync.RWMutex
	eng      core.Engine
	synced   bool // eng.Synchronized(): skip the server's own lock
	k        int
	dim      int
	maxBatch int
	mux      *http.ServeMux
	reg      *telemetry.Registry
	log      *slog.Logger
	start    time.Time
	inFlight *telemetry.Gauge
	tr       *telemetry.Tracer
	rec      *telemetry.Recorder
	wd       *telemetry.Watchdog
	jr       *telemetry.Journal

	// Request-ID minting state: a per-process prefix plus an atomic
	// counter, so a minted id is one AppendUint into a stack buffer — the
	// read hot path budgets two allocations for the whole middleware (the
	// id string and its header slice).
	reqPrefix string
	reqSeq    atomic.Uint64

	// Derived gauges refreshed by collect(): uptime always; the per-shard
	// load family and imbalance ratio only at NumShards ≥ 2.
	uptime       *telemetry.Gauge
	shardRecords []*telemetry.Gauge
	shardGroups  []*telemetry.Gauge
	shardSplits  []*telemetry.Gauge
	imbalance    *telemetry.Gauge

	// reservoir samples original records for the audit's KS comparison;
	// auditSeed seeds the audit's private synthesis draw.
	reservoir *audit.Reservoir
	auditSeed uint64

	// cache memoizes derived read artifacts per engine generation —
	// encoded checkpoint/stats/snapshot bodies and audit reports — so
	// repeated reads of unchanged state serve stored bytes instead of
	// re-cloning and re-encoding O(state). The cm* pairs count hit/miss
	// outcomes per artifact kind.
	cache        readCache
	cmSnapshot   cacheMetrics
	cmStats      cacheMetrics
	cmAudit      cacheMetrics
	cmCheckpoint cacheMetrics

	// Build identity, read once at construction (ReadBuildInfo walks the
	// embedded module table — too expensive to redo per /healthz probe).
	buildRevision, buildTime string
}

// New builds a server.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 10000
	}
	eng := cfg.Engine
	if eng == nil {
		condenser := cfg.Condenser
		if condenser == nil {
			// Legacy configuration path: assemble a facade from the deprecated
			// positional fields, honouring the checkpoint's k/options when
			// resuming.
			k, opts := cfg.K, cfg.Options
			if cfg.Initial != nil {
				k, opts = cfg.Initial.K(), cfg.Initial.Options()
			}
			var err error
			condenser, err = core.NewCondenser(k,
				core.WithSeed(cfg.Seed), core.WithOptions(opts))
			if err != nil {
				return nil, err
			}
		}
		var err error
		switch {
		case cfg.Shards > 1 && cfg.Initial != nil:
			eng, err = condenser.ShardedFrom(cfg.Initial, cfg.Shards)
		case cfg.Shards > 1:
			eng, err = condenser.Sharded(cfg.Dim, cfg.Shards)
		case cfg.Initial != nil:
			eng, err = condenser.DynamicFrom(cfg.Initial)
		default:
			eng, err = condenser.Dynamic(cfg.Dim)
		}
		if err != nil {
			return nil, err
		}
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	eng.SetTelemetry(reg)
	eng.SetTracer(cfg.Tracer)
	eng.SetJournal(cfg.Journal)
	sampleCap := cfg.AuditSample
	if sampleCap == 0 {
		sampleCap = defaultAuditSample
	}
	if sampleCap < 0 {
		sampleCap = 0
	}
	auditSeed := cfg.AuditSeed
	if auditSeed == 0 {
		auditSeed = 1
	}
	s := &Server{
		eng:       eng,
		synced:    eng.Synchronized(),
		k:         eng.K(),
		dim:       eng.Dim(),
		maxBatch:  cfg.MaxBatch,
		mux:       http.NewServeMux(),
		reg:       reg,
		log:       cfg.Logger,
		start:     time.Now(),
		inFlight:  reg.Gauge("http_in_flight"),
		tr:        cfg.Tracer,
		rec:       cfg.Recorder,
		wd:        cfg.Watchdog,
		jr:        cfg.Journal,
		reservoir: audit.NewReservoir(sampleCap, auditSeed),
		auditSeed: auditSeed,
	}
	s.reqPrefix = "r" + strconv.FormatInt(time.Now().UnixNano(), 36) + "-"
	s.cache.jr = cfg.Journal
	// The watchdog stamps its rule-transition journal events with the
	// engine generation they were observed at.
	s.wd.SetJournal(cfg.Journal, eng.Generation)
	s.buildRevision, s.buildTime = buildVCS()
	s.cmSnapshot = newCacheMetrics(reg, "synthesis")
	s.cmStats = newCacheMetrics(reg, "stats")
	s.cmAudit = newCacheMetrics(reg, "audit")
	s.cmCheckpoint = newCacheMetrics(reg, "checkpoint")
	if s.log == nil {
		s.log = telemetry.Nop()
	}
	s.initObservability()
	s.route("/v1/records", s.handleRecords)
	s.route("/v1/snapshot", s.handleSnapshot)
	s.route("/v1/stats", s.handleStats)
	s.route("/v1/audit", s.handleAudit)
	s.route("/v1/checkpoint", s.handleCheckpoint)
	s.route("/v1/history", s.handleHistory)
	s.route("/v1/health/rules", s.handleHealthRules)
	s.route("/v1/events", s.handleEvents)
	// The exact path lists all groups; the subtree serves one group by id.
	// Both register one route-table pattern each, so metric cardinality
	// stays bounded by the table, never by how many group ids clients probe.
	s.route("/v1/groups", s.handleGroups)
	s.route("/v1/groups/", s.handleGroupByID)
	s.route("/v1/explain", s.handleExplain)
	s.route("/healthz", s.handleHealth)
	s.route("/metrics", s.handleMetrics)
	s.route("/debug/vars", s.handleVars)
	s.route("/debug/trace", s.handleTrace)
	s.route("/debug/bundle", s.handleBundle)
	return s, nil
}

// Engine returns the engine the server serves — for wiring the same
// engine into other drivers (a stream feeder, a background auditor), not
// for bypassing the server's locking: callers must respect Synchronized.
func (s *Server) Engine() core.Engine { return s.eng }

// lock/unlock bracket engine writes and rlock/runlock engine reads. For a
// self-synchronizing engine they are no-ops — the engine's per-shard
// locks already order writes and reads — so the server never stacks a
// global lock on top of a sharded engine.
func (s *Server) lock() {
	if !s.synced {
		s.mu.Lock()
	}
}

func (s *Server) unlock() {
	if !s.synced {
		s.mu.Unlock()
	}
}

func (s *Server) rlock() {
	if !s.synced {
		s.mu.RLock()
	}
}

func (s *Server) runlock() {
	if !s.synced {
		s.mu.RUnlock()
	}
}

// The read handlers below share one discipline for generation-keyed
// memoization: read the generation, probe the cache, and on a miss build
// the artifact and re-read the generation before installing. For a
// non-synchronized engine the server's read lock excludes writers, so the
// re-read always matches and every miss installs. For a self-synchronized
// engine (rlock is a no-op) writers run concurrently, and a changed
// generation means the artifact may straddle a mutation — it is then
// served fresh but neither cached nor stamped with an ETag, after one
// retry. Stores of a stale generation are refused by the cache itself, so
// a slow build can never clobber a newer entry.

// route registers a handler behind the telemetry middleware: per-endpoint
// request counter by status class, latency histogram, and the shared
// in-flight gauge. The path label is the registered pattern, so metric
// cardinality is bounded by the route table, never by client input.
func (s *Server) route(path string, h http.HandlerFunc) {
	requests2xx := s.reg.Counter("http_requests_total", "path", path, "code", "2xx")
	requests4xx := s.reg.Counter("http_requests_total", "path", path, "code", "4xx")
	requests5xx := s.reg.Counter("http_requests_total", "path", path, "code", "5xx")
	latency := s.reg.Histogram("http_request_seconds", nil, "path", path)
	spanName := "http " + path
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		s.inFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		// Request-ID correlation: accept the client's X-Request-ID or mint
		// one, and echo it on the response up front. Handlers, error
		// envelopes, and log lines read it back from the response header —
		// never from a request context, which would cost a context and
		// request copy on the read hot path.
		id := r.Header.Get("X-Request-ID")
		if !validRequestID(id) {
			id = s.mintRequestID()
		}
		sw.Header()["X-Request-Id"] = []string{id}
		// The request span is the root of this request's trace tree; the
		// span-carrying context flows into the handler so engine spans
		// (dynamic.add_batch and children) nest under it.
		ctx, span := s.tr.Start(r.Context(), spanName)
		if span != nil {
			span.SetAttr("request_id", id)
			r = r.WithContext(ctx)
		}
		// Deferred so a panicking handler (recovered per-connection by
		// net/http) still decrements the in-flight gauge and is counted.
		defer func() {
			s.inFlight.Add(-1)
			latency.ObserveSince(t0)
			span.SetAttrInt("status", sw.status)
			span.End()
			switch {
			case sw.status >= 500:
				requests5xx.Inc()
			case sw.status >= 400:
				requests4xx.Inc()
			default:
				requests2xx.Inc()
			}
		}()
		h(sw, r)
	})
}

// validRequestID reports whether a client-supplied X-Request-ID is safe to
// echo: non-empty, bounded, and visible ASCII only (no header injection,
// no control characters in log lines).
func validRequestID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= 0x20 || id[i] >= 0x7f {
			return false
		}
	}
	return true
}

// mintRequestID generates a process-unique request id: the per-process
// prefix plus an atomic sequence number, rendered into a stack buffer so
// minting costs exactly one allocation (the returned string).
func (s *Server) mintRequestID() string {
	var buf [32]byte
	b := append(buf[:0], s.reqPrefix...)
	b = strconv.AppendUint(b, s.reqSeq.Add(1), 36)
	return string(b)
}

// requestID reads back the id the middleware stamped on this response.
func requestID(w http.ResponseWriter) string {
	if v := w.Header()["X-Request-Id"]; len(v) > 0 {
		return v[0]
	}
	return ""
}

// statusWriter captures the response status for the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// recordsRequest is the POST /v1/records body.
type recordsRequest struct {
	Records [][]float64 `json:"records"`
}

// recordsResponse confirms ingestion: the records accepted by this
// request plus the engine's cumulative group and split counts after it.
type recordsResponse struct {
	Accepted int `json:"accepted"`
	Groups   int `json:"groups"`
	Splits   int `json:"splits"`
}

// errorResponse is the uniform error body. RequestID carries the
// correlation id the middleware stamped on the response, so a client
// reporting a failure can quote the id a trace span or log line carries.
type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// Shared Content-Type header values for prepared-body responses. Header
// maps hold these slices directly (keys are already in canonical form),
// so the hot path writes headers without allocating; nothing may mutate
// them.
var (
	headerJSON  = []string{"application/json"}
	headerOctet = []string{"application/octet-stream"}
)

// writePrepared serves a prepared body: headers come from the values
// rendered at build time, the bytes are written as-is. With Content-Length
// declared up front, a mid-stream write failure reaches the client as a
// detectably short body, never a silently truncated stream.
func writePrepared(w http.ResponseWriter, contentType []string, b *respBody) {
	h := w.Header()
	h["Content-Type"] = contentType
	h["Content-Length"] = b.cl
	_, _ = w.Write(b.data)
}

// queryParams parses the URL query once per request, skipping the parse
// entirely for the common bare-path poll. The nil url.Values Get/Has
// behave as "absent", which is exactly right.
func queryParams(r *http.Request) url.Values {
	if r.URL.RawQuery == "" {
		return nil
	}
	return r.URL.Query()
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding of our own response structs cannot fail.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error(), RequestID: requestID(w)})
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req recordsRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if len(req.Records) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no records in request"))
		return
	}
	if len(req.Records) > s.maxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d exceeds limit %d", len(req.Records), s.maxBatch))
		return
	}
	// Validate the whole batch before admitting any of it, so a bad row
	// cannot leave a half-ingested batch.
	records := make([]mat.Vector, len(req.Records))
	for i, row := range req.Records {
		if len(row) != s.dim {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("record %d has dimension %d, want %d", i, len(row), s.dim))
			return
		}
		v := mat.Vector(row)
		if !v.IsFinite() {
			writeError(w, http.StatusBadRequest, fmt.Errorf("record %d has non-finite values", i))
			return
		}
		records[i] = v
	}

	// Ingest through the batch engine: records are speculatively routed in
	// parallel and applied sequentially, bit-identical to a record-by-record
	// Add loop but holding the write lock for far less wall-clock time. The
	// request context still bounds the apply phase: if the client
	// disconnects or the deadline passes mid-batch, ingestion stops at a
	// record boundary instead of holding the lock for the full batch.
	t0 := time.Now()
	s.lock()
	err := s.eng.AddBatchContext(r.Context(), records)
	groups := s.eng.NumGroups()
	splits := s.eng.Splits()
	s.unlock()
	s.log.Debug("ingested batch",
		slog.String("request_id", requestID(w)),
		slog.Int("records", len(records)),
		slog.Int("groups", groups),
		slog.Duration("elapsed", time.Since(t0)),
		slog.Any("err", err))
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// 499-style: the client is gone or out of time; the write is
			// best-effort.
			writeError(w, http.StatusRequestTimeout, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// Feed the audit reservoir outside the engine lock: a uniform sample of
	// the accepted originals, retained only for the audit's marginal-KS
	// comparison and never served.
	s.reservoir.OfferAll(records)
	writeJSON(w, http.StatusOK, recordsResponse{Accepted: len(records), Groups: groups, Splits: splits})
}

// snapshotResponse carries a synthesized anonymized data set.
type snapshotResponse struct {
	Records [][]float64 `json:"records"`
	Groups  int         `json:"groups"`
	K       int         `json:"k"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	seed := uint64(1)
	if q := queryParams(r).Get("seed"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad seed %q", q))
			return
		}
		seed = v
	}
	body, err := s.snapshotBody(seed)
	if err != nil {
		if errors.Is(err, errNoRecords) {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writePrepared(w, headerJSON, body)
}

// errNoRecords is the empty-engine snapshot refusal, mapped to 409.
var errNoRecords = errors.New("no records condensed yet")

// snapshotBody returns the encoded /v1/snapshot body for one synthesis
// seed, memoized per (generation, seed): synthesis is a pure function of
// the retained moments and the seed, so a generation-stable body can be
// replayed byte for byte until the next write. A miss synthesizes into
// row headers that share the flat per-group slabs SynthesizeGrouped
// carves its points from — preallocated from the known record count, no
// per-row copying — and encodes once into a reusable byte slice.
func (s *Server) snapshotBody(seed uint64) (*respBody, error) {
	for attempt := 0; ; attempt++ {
		s.rlock()
		gen := s.eng.Generation()
		if b, ok := s.cache.snapshotAt(gen, seed); ok {
			s.runlock()
			s.cmSnapshot.hits.Inc()
			return b, nil
		}
		cond := s.eng.Condensation()
		stable := s.eng.Generation() == gen
		s.runlock()
		s.cmSnapshot.misses.Inc()
		if cond.TotalCount() == 0 {
			return nil, errNoRecords
		}
		grouped, err := cond.SynthesizeGrouped(rng.New(seed))
		if err != nil {
			return nil, err
		}
		resp := snapshotResponse{
			Records: make([][]float64, 0, cond.TotalCount()),
			Groups:  cond.NumGroups(),
			K:       cond.K(),
		}
		for _, g := range grouped {
			for _, x := range g {
				resp.Records = append(resp.Records, x)
			}
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(resp); err != nil {
			return nil, err
		}
		body := newRespBody(buf.Bytes())
		if stable {
			s.cache.storeSnapshot(gen, seed, body)
			return body, nil
		}
		if attempt >= 1 {
			return body, nil
		}
	}
}

// statsResponse summarizes the live condensation. ByShard is present only
// when the request asked for the per-shard breakdown.
type statsResponse struct {
	Dim          int          `json:"dim"`
	K            int          `json:"k"`
	Shards       int          `json:"shards"`
	Groups       int          `json:"groups"`
	Records      int          `json:"records"`
	Splits       int          `json:"splits"`
	MinGroupSize int          `json:"min_group_size"`
	MaxGroupSize int          `json:"max_group_size"`
	AvgGroupSize float64      `json:"avg_group_size"`
	KSatisfied   bool         `json:"k_satisfied"`
	ByShard      []shardStats `json:"by_shard,omitempty"`
}

// shardStats is one shard's block of the per-shard breakdown.
type shardStats struct {
	Shard        int     `json:"shard"`
	Groups       int     `json:"groups"`
	Records      int     `json:"records"`
	MinGroupSize int     `json:"min_group_size"`
	MaxGroupSize int     `json:"max_group_size"`
	AvgGroupSize float64 `json:"avg_group_size"`
	KSatisfied   bool    `json:"k_satisfied"`
}

// shardParam parses the optional ?shard=i selector: (index, true, nil)
// when a valid shard was requested, (0, false, nil) when absent, an error
// when malformed or out of range.
func (s *Server) shardParam(q url.Values) (int, bool, error) {
	v := q.Get("shard")
	if v == "" {
		return 0, false, nil
	}
	i, err := strconv.Atoi(v)
	if err != nil {
		return 0, false, fmt.Errorf("bad shard %q", v)
	}
	if i < 0 || i >= s.eng.NumShards() {
		return 0, false, fmt.Errorf("shard %d out of range [0,%d)", i, s.eng.NumShards())
	}
	return i, true, nil
}

// byShardParam reports whether the request asked for the per-shard
// breakdown (?by_shard, ?by_shard=1, ?by_shard=true).
func byShardParam(q url.Values) bool {
	if !q.Has("by_shard") {
		return false
	}
	v := q.Get("by_shard")
	return v == "" || v == "1" || v == "true"
}

// shardStatsFromSizes summarizes one shard from its live per-group
// record counts alone — the moments-only size audit behind /v1/stats.
// The k ≤ n(G) ≤ 2k−1 size invariant is fully checkable from the counts,
// so no group statistics are cloned. An empty shard reports KSatisfied:
// it holds no records whose indistinguishability could be violated.
func shardStatsFromSizes(i, k int, sizes []int) shardStats {
	st := shardStats{Shard: i, Groups: len(sizes), KSatisfied: true}
	if len(sizes) == 0 {
		return st
	}
	st.MinGroupSize = sizes[0]
	for _, n := range sizes {
		st.Records += n
		if n < st.MinGroupSize {
			st.MinGroupSize = n
		}
		if n > st.MaxGroupSize {
			st.MaxGroupSize = n
		}
	}
	st.AvgGroupSize = float64(st.Records) / float64(len(sizes))
	st.KSatisfied = st.MinGroupSize >= k
	return st
}

// statsLive assembles the stats response from live size data alone: one
// ShardGroupSizes sweep per shard into a reused buffer, no group cloning
// or snapshotting. Caller holds the read lock.
func (s *Server) statsLive(byShard bool) statsResponse {
	resp := statsResponse{
		Dim:    s.dim,
		K:      s.k,
		Shards: s.eng.NumShards(),
		Splits: s.eng.Splits(),
	}
	var sizes []int
	for i := 0; i < resp.Shards; i++ {
		sizes = s.eng.ShardGroupSizes(i, sizes)
		st := shardStatsFromSizes(i, s.k, sizes)
		resp.Groups += st.Groups
		resp.Records += st.Records
		if st.Groups > 0 {
			if resp.MinGroupSize == 0 || st.MinGroupSize < resp.MinGroupSize {
				resp.MinGroupSize = st.MinGroupSize
			}
			if st.MaxGroupSize > resp.MaxGroupSize {
				resp.MaxGroupSize = st.MaxGroupSize
			}
		}
		if byShard {
			resp.ByShard = append(resp.ByShard, st)
		}
	}
	if resp.Groups > 0 {
		resp.AvgGroupSize = float64(resp.Records) / float64(resp.Groups)
		resp.KSatisfied = resp.MinGroupSize >= s.k
	}
	return resp
}

// statsBody returns the encoded /v1/stats body (merged, optionally with
// the per-shard breakdown), memoized per generation.
func (s *Server) statsBody(byShard bool) (*respBody, error) {
	for attempt := 0; ; attempt++ {
		s.rlock()
		gen := s.eng.Generation()
		if b, ok := s.cache.statsAt(gen, byShard); ok {
			s.runlock()
			s.cmStats.hits.Inc()
			return b, nil
		}
		resp := s.statsLive(byShard)
		stable := s.eng.Generation() == gen
		s.runlock()
		s.cmStats.misses.Inc()
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(resp); err != nil {
			return nil, err
		}
		body := newRespBody(buf.Bytes())
		if stable {
			s.cache.storeStats(gen, byShard, body)
			return body, nil
		}
		if attempt >= 1 {
			return body, nil
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	q := queryParams(r)
	shard, hasShard, err := s.shardParam(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if hasShard {
		// One shard's view alone, for per-shard dashboards and smoke
		// checks — cheap enough (a size sweep) to always serve live.
		s.rlock()
		sizes := s.eng.ShardGroupSizes(shard, nil)
		s.runlock()
		writeJSON(w, http.StatusOK, shardStatsFromSizes(shard, s.k, sizes))
		return
	}
	body, err := s.statsBody(byShardParam(q))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writePrepared(w, headerJSON, body)
}

// checkpointBody returns the prepared checkpoint of the current state and
// whether its bytes are proven to be exactly the state at one generation
// (and therefore cached and stamped with that generation's ETag). An
// uncacheable body — a concurrent writer moved the engine mid-build on
// both attempts — carries no validator.
func (s *Server) checkpointBody() (body *respBody, cacheable bool, err error) {
	for attempt := 0; ; attempt++ {
		s.rlock()
		gen := s.eng.Generation()
		if b, ok := s.cache.checkpointAt(gen); ok {
			s.runlock()
			s.cmCheckpoint.hits.Inc()
			return b, true, nil
		}
		cond := s.eng.Condensation()
		stable := s.eng.Generation() == gen
		s.runlock()
		s.cmCheckpoint.misses.Inc()
		var buf bytes.Buffer
		if _, err := cond.WriteTo(&buf); err != nil {
			return nil, false, err
		}
		if stable {
			b := newCheckpointBody(buf.Bytes(), gen)
			s.cache.storeCheckpoint(gen, b)
			return b, true, nil
		}
		if attempt >= 1 {
			return newRespBody(buf.Bytes()), false, nil
		}
	}
}

// etagMatch reports whether an If-None-Match header matches the given
// entity tag, per RFC 9110 §13.1.2: "*" matches any representation, the
// field is a comma-separated list, and comparison is weak — a W/ prefix
// on either side is ignored, which is what If-None-Match specifies.
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	etag = strings.TrimPrefix(etag, "W/")
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		if cand == "*" || strings.TrimPrefix(cand, "W/") == etag {
			return true
		}
	}
	return false
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	body, cacheable, err := s.checkpointBody()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if cacheable {
		// The generation names this exact byte stream, so it is a valid
		// strong ETag: replica-style pollers send it back and pay one
		// header round-trip while the state is unchanged. "Etag" is the
		// canonical form net/http uses for this header.
		w.Header()["Etag"] = body.etagH
		if etagMatch(r.Header.Get("If-None-Match"), body.etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	writePrepared(w, headerOctet, body)
}

// healthResponse is the GET /healthz body: build identity plus live
// condensation counts, so probes and humans see the same picture.
type healthResponse struct {
	Status        string  `json:"status"`
	GoVersion     string  `json:"go_version"`
	VCSRevision   string  `json:"vcs_revision,omitempty"`
	VCSTime       string  `json:"vcs_time,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Dim           int     `json:"dim"`
	K             int     `json:"k"`
	Shards        int     `json:"shards"`
	Groups        int     `json:"groups"`
	Records       int     `json:"records"`
	// Generation is the engine's mutation generation — the version key
	// behind the checkpoint ETag, exposed so replicas can cheaply probe
	// "did anything change" before fetching.
	Generation uint64 `json:"generation"`
}

// buildVCS reads the VCS revision and commit time stamped into the binary
// by the Go toolchain, when present (test binaries and plain `go run`
// builds may not carry them).
func buildVCS() (revision, vcsTime string) {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "", ""
	}
	for _, kv := range info.Settings {
		switch kv.Key {
		case "vcs.revision":
			revision = kv.Value
		case "vcs.time":
			vcsTime = kv.Value
		}
	}
	return revision, vcsTime
}

// healthSnapshot assembles the /healthz body and its HTTP status — shared
// by the probe handler and the diagnostics bundle.
func (s *Server) healthSnapshot() (healthResponse, int) {
	s.rlock()
	groups := s.eng.NumGroups()
	records := s.eng.TotalCount()
	s.runlock()
	// The watchdog's worst rule state becomes the probe answer: degraded
	// stays 200 (the service works, someone should look), failing turns
	// 503 so orchestrators stop routing to it.
	sev := s.wd.State()
	status := http.StatusOK
	if sev == telemetry.SevFailing {
		status = http.StatusServiceUnavailable
	}
	return healthResponse{
		Status:        sev.String(),
		GoVersion:     runtime.Version(),
		VCSRevision:   s.buildRevision,
		VCSTime:       s.buildTime,
		UptimeSeconds: s.uptimeSeconds(),
		Dim:           s.dim,
		K:             s.k,
		Shards:        s.eng.NumShards(),
		Groups:        groups,
		Records:       records,
		Generation:    s.eng.Generation(),
	}, status
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	resp, status := s.healthSnapshot()
	writeJSON(w, status, resp)
}

// uptimeSeconds is the seconds since construction — the value /healthz
// reports and collect mirrors into the condense_uptime_seconds gauge.
func (s *Server) uptimeSeconds() float64 { return time.Since(s.start).Seconds() }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	// Refresh derived gauges so a direct Prometheus scrape (no flight
	// recorder running) still sees live uptime and shard loads.
	s.collect()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	s.collect()
	w.Header().Set("Content-Type", "application/json")
	_ = s.reg.WriteJSON(w)
}

// Audit runs one anonymization-quality pass over a snapshot of the live
// condensation (taken under the read lock) and publishes the result into
// the server's metrics registry, so /v1/audit and /metrics always agree.
// It is what the /v1/audit handler and condenserd's background auditor
// both call. The computation is memoized per (generation, reservoir
// offer count) — the complete input key of the deterministic audit — so
// a periodic auditor over an idle engine replays the cached report; the
// publish still runs per call, preserving the watchdog's view of audit
// cadence, and the republished numbers are identical to a recompute.
func (s *Server) Audit() (*audit.Report, error) {
	e, err := s.auditPass()
	if err != nil {
		return nil, err
	}
	s.publishAudit(e)
	return e.merged, nil
}

// publishAudit publishes one audit pass: the merged report, and on a
// sharded engine each shard's privacy-critical slice under shard="i"
// labels so the watchdog and dashboards can see which shard is
// degrading, not just that the merged numbers moved.
func (s *Server) publishAudit(e *auditEntry) {
	e.merged.Publish(s.reg)
	for i, sr := range e.shards {
		sr.PublishShard(s.reg, i)
	}
}

// auditPass returns the audit computation for the current (generation,
// reservoir) state, computing and caching it on a miss. The reservoir's
// offer count extends the memo key because the reservoir is fed after
// the engine lock is released — the same generation can front two
// different KS baselines while a batch's offers are still draining.
func (s *Server) auditPass() (*auditEntry, error) {
	for attempt := 0; ; attempt++ {
		s.rlock()
		gen := s.eng.Generation()
		seen := s.reservoir.Seen()
		if e, ok := s.cache.auditAt(gen, seen); ok {
			s.runlock()
			s.cmAudit.hits.Inc()
			return e, nil
		}
		cond := s.eng.Condensation()
		var shardConds []*core.Condensation
		if n := s.eng.NumShards(); n >= 2 {
			shardConds = make([]*core.Condensation, n)
			for i := range shardConds {
				shardConds[i] = s.eng.Shard(i)
			}
		}
		sample := s.reservoir.Sample()
		stable := s.eng.Generation() == gen && s.reservoir.Seen() == seen
		s.runlock()
		s.cmAudit.misses.Inc()
		// Leftovers only arise when a static bootstrap folded sub-k
		// remainders into nearest groups; the engine's counter carries
		// that count forward.
		leftovers := int(s.reg.Counter("condense_leftover_records_total").Value())
		rep, err := audit.Compute(cond, audit.Config{
			Original:  sample,
			SynthSeed: s.auditSeed,
			Leftovers: leftovers,
		})
		if err != nil {
			return nil, err
		}
		e := &auditEntry{reservoirSeen: seen, merged: rep}
		for _, sc := range shardConds {
			sr, err := audit.Compute(sc, audit.Config{SynthSeed: s.auditSeed})
			if err != nil {
				return nil, err
			}
			e.shards = append(e.shards, sr)
		}
		if stable {
			s.cache.storeAudit(gen, e)
			return e, nil
		}
		if attempt >= 1 {
			return e, nil
		}
	}
}

// auditShard audits one shard's snapshot in isolation: the same pooled
// group-moment metrics, but without the KS block (the reservoir samples
// the whole stream, not one shard's slice of it), without the bootstrap
// leftover count, and without publishing to the registry — the published
// condense_audit_* series describe the merged state only.
func (s *Server) auditShard(i int) (*audit.Report, error) {
	s.rlock()
	cond := s.eng.Shard(i)
	s.runlock()
	return audit.Compute(cond, audit.Config{SynthSeed: s.auditSeed})
}

// shardAudit is one shard's entry in the by_shard audit array.
type shardAudit struct {
	Shard int `json:"shard"`
	*audit.Report
}

// auditByShardResponse is the merged audit report plus the per-shard
// breakdown.
type auditByShardResponse struct {
	*audit.Report
	ByShard []shardAudit `json:"by_shard"`
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	q := queryParams(r)
	shard, hasShard, err := s.shardParam(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if hasShard {
		rep, err := s.auditShard(shard)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, shardAudit{Shard: shard, Report: rep})
		return
	}
	e, err := s.auditPass()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.publishAudit(e)
	if !byShardParam(q) {
		writeJSON(w, http.StatusOK, e.merged)
		return
	}
	resp := auditByShardResponse{Report: e.merged}
	for i := 0; i < s.eng.NumShards(); i++ {
		// The memoized pass carries per-shard reports on a sharded
		// engine; a single-shard engine computes its one shard live.
		sr := (*audit.Report)(nil)
		if i < len(e.shards) {
			sr = e.shards[i]
		} else {
			var err error
			sr, err = s.auditShard(i)
			if err != nil {
				writeError(w, http.StatusInternalServerError, err)
				return
			}
		}
		resp.ByShard = append(resp.ByShard, shardAudit{Shard: i, Report: sr})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if s.tr == nil {
		writeError(w, http.StatusNotFound, errors.New("tracing not enabled (start with -trace-sample > 0)"))
		return
	}
	last := 0
	if q := r.URL.Query().Get("last"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad last %q", q))
			return
		}
		last = v
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.tr.WriteChromeTrace(w, last)
}
