// Package server exposes a dynamic condensation over HTTP: records are
// POSTed as they are collected, only the per-group aggregate statistics
// are retained in memory, and anonymized snapshots can be synthesized at
// any time. It is the deployment shape the paper's dynamic setting
// implies — a data-collection endpoint that can publish privacy-preserving
// data continuously — built on net/http and the core package.
//
// Endpoints (all JSON unless noted):
//
//	POST /v1/records    {"records": [[...], ...]}     add stream records
//	GET  /v1/snapshot   ?seed=N                       synthesize anonymized records
//	GET  /v1/stats                                    condensation statistics + audit
//	GET  /v1/checkpoint                               binary condensation state (octet-stream)
//	GET  /healthz                                     liveness probe
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"condensation/internal/core"
	"condensation/internal/mat"
	"condensation/internal/privacy"
	"condensation/internal/rng"
)

// Config configures a condensation server.
type Config struct {
	// Dim is the record dimensionality.
	Dim int
	// Condenser supplies the condensation configuration (k, options,
	// seed). Required unless the deprecated K/Options/Seed fields are set.
	Condenser *core.Condenser
	// K is the indistinguishability level.
	//
	// Deprecated: set Condenser instead; K is consulted only when
	// Condenser is nil.
	K int
	// Options tunes condensation behaviour.
	//
	// Deprecated: set Condenser instead.
	Options core.Options
	// Seed seeds the server's split-axis randomness.
	//
	// Deprecated: set Condenser instead.
	Seed uint64
	// MaxBatch bounds the records accepted per POST (default 10000).
	MaxBatch int
	// Initial optionally seeds the server with an existing condensation
	// (e.g. loaded from a checkpoint); its dim/k/options take precedence
	// over Dim and over a nil Condenser's defaults.
	Initial *core.Condensation
}

// Server is a thread-safe condensation HTTP service.
type Server struct {
	mu       sync.Mutex
	dyn      *core.Dynamic
	k        int
	dim      int
	maxBatch int
	mux      *http.ServeMux
}

// New builds a server.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 10000
	}
	condenser := cfg.Condenser
	if condenser == nil {
		// Legacy configuration path: assemble a facade from the deprecated
		// positional fields, honouring the checkpoint's k/options when
		// resuming.
		k, opts := cfg.K, cfg.Options
		if cfg.Initial != nil {
			k, opts = cfg.Initial.K(), cfg.Initial.Options()
		}
		var err error
		condenser, err = core.NewCondenser(k,
			core.WithSeed(cfg.Seed), core.WithOptions(opts))
		if err != nil {
			return nil, err
		}
	}
	var dyn *core.Dynamic
	var err error
	if cfg.Initial != nil {
		dyn, err = condenser.DynamicFrom(cfg.Initial)
	} else {
		dyn, err = condenser.Dynamic(cfg.Dim)
	}
	if err != nil {
		return nil, err
	}
	s := &Server{
		dyn:      dyn,
		k:        dyn.K(),
		dim:      dyn.Dim(),
		maxBatch: cfg.MaxBatch,
		mux:      http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/records", s.handleRecords)
	s.mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// recordsRequest is the POST /v1/records body.
type recordsRequest struct {
	Records [][]float64 `json:"records"`
}

// recordsResponse confirms ingestion.
type recordsResponse struct {
	Accepted int `json:"accepted"`
	Groups   int `json:"groups"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding of our own response structs cannot fail.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req recordsRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if len(req.Records) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no records in request"))
		return
	}
	if len(req.Records) > s.maxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d exceeds limit %d", len(req.Records), s.maxBatch))
		return
	}
	// Validate the whole batch before admitting any of it, so a bad row
	// cannot leave a half-ingested batch.
	records := make([]mat.Vector, len(req.Records))
	for i, row := range req.Records {
		if len(row) != s.dim {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("record %d has dimension %d, want %d", i, len(row), s.dim))
			return
		}
		v := mat.Vector(row)
		if !v.IsFinite() {
			writeError(w, http.StatusBadRequest, fmt.Errorf("record %d has non-finite values", i))
			return
		}
		records[i] = v
	}

	// Ingest under the request context: if the client disconnects or the
	// request deadline passes mid-batch, ingestion stops at a record
	// boundary instead of holding the lock for the full batch.
	s.mu.Lock()
	err := s.dyn.AddAllContext(r.Context(), records)
	groups := s.dyn.NumGroups()
	s.mu.Unlock()
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// 499-style: the client is gone or out of time; the write is
			// best-effort.
			writeError(w, http.StatusRequestTimeout, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, recordsResponse{Accepted: len(records), Groups: groups})
}

// snapshotResponse carries a synthesized anonymized data set.
type snapshotResponse struct {
	Records [][]float64 `json:"records"`
	Groups  int         `json:"groups"`
	K       int         `json:"k"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	seed := uint64(1)
	if q := r.URL.Query().Get("seed"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad seed %q", q))
			return
		}
		seed = v
	}
	s.mu.Lock()
	cond := s.dyn.Condensation()
	s.mu.Unlock()
	if cond.TotalCount() == 0 {
		writeError(w, http.StatusConflict, errors.New("no records condensed yet"))
		return
	}
	synth, err := cond.Synthesize(rng.New(seed))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := snapshotResponse{Groups: cond.NumGroups(), K: cond.K()}
	for _, x := range synth {
		resp.Records = append(resp.Records, []float64(x))
	}
	writeJSON(w, http.StatusOK, resp)
}

// statsResponse summarizes the live condensation.
type statsResponse struct {
	Dim          int     `json:"dim"`
	K            int     `json:"k"`
	Groups       int     `json:"groups"`
	Records      int     `json:"records"`
	MinGroupSize int     `json:"min_group_size"`
	MaxGroupSize int     `json:"max_group_size"`
	AvgGroupSize float64 `json:"avg_group_size"`
	KSatisfied   bool    `json:"k_satisfied"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	s.mu.Lock()
	cond := s.dyn.Condensation()
	s.mu.Unlock()
	resp := statsResponse{Dim: cond.Dim(), K: cond.K(), Groups: cond.NumGroups(), Records: cond.TotalCount()}
	if cond.NumGroups() > 0 {
		audit, err := privacy.AuditGroups(cond.Groups(), cond.K())
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		resp.MinGroupSize = audit.MinSize
		resp.MaxGroupSize = audit.MaxSize
		resp.AvgGroupSize = audit.MeanSize
		resp.KSatisfied = audit.Satisfied()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	s.mu.Lock()
	cond := s.dyn.Condensation()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := cond.WriteTo(w); err != nil {
		// Headers are already sent; nothing more we can do than drop the
		// connection, which the client sees as a truncated body.
		return
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}
