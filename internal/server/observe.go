package server

import (
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"

	"condensation/internal/audit"
	"condensation/internal/telemetry"
)

// Observability metric names owned by the server: build identity, uptime,
// and the per-shard load family the watchdog's imbalance rule watches.
const (
	// MetricBuildInfo is a constant-1 gauge whose labels carry the build
	// identity (go version, VCS revision, shard count) — the Prometheus
	// idiom for joining dashboards on "which binary is this".
	MetricBuildInfo = "condense_build_info"
	// MetricUptime is the seconds since the server was constructed,
	// refreshed at every metrics read and recorder scrape.
	MetricUptime = "condense_uptime_seconds"
	// MetricShardRecords/Groups/Splits are per-shard live counts under
	// shard="i" labels, published only at NumShards ≥ 2 (matching the
	// engine's labeling convention) and refreshed by the collector.
	MetricShardRecords = "condense_shard_records"
	MetricShardGroups  = "condense_shard_groups"
	MetricShardSplits  = "condense_shard_splits"
	// MetricShardImbalance is max/mean of per-shard record counts — 1.0 is
	// perfectly balanced, N means one shard carries everything.
	MetricShardImbalance = "condense_shard_imbalance_ratio"
	// MetricReadCacheHits/Misses count generation-keyed read-cache
	// outcomes, one series per cache="..." kind: the engine's snapshot
	// cache plus the server's synthesis/stats/audit/checkpoint memos. A
	// hit served previously materialized state; a miss rebuilt it. The
	// names match the engine's (internal/core registers the snapshot
	// series), so the whole read path shares one family.
	MetricReadCacheHits   = "condense_read_cache_hits_total"
	MetricReadCacheMisses = "condense_read_cache_misses_total"
)

// initObservability resolves the build-info, uptime, and per-shard load
// gauges once at construction (so the series exist before the first
// scrape) and hooks the server's collector into the flight recorder.
func (s *Server) initObservability() {
	rev := s.buildRevision
	if rev == "" {
		rev = "unknown"
	}
	s.reg.Gauge(MetricBuildInfo,
		"go_version", runtime.Version(),
		"vcs_revision", rev,
		"shards", strconv.Itoa(s.eng.NumShards()),
	).Set(1)
	s.uptime = s.reg.Gauge(MetricUptime)
	if n := s.eng.NumShards(); n >= 2 {
		s.shardRecords = make([]*telemetry.Gauge, n)
		s.shardGroups = make([]*telemetry.Gauge, n)
		s.shardSplits = make([]*telemetry.Gauge, n)
		for i := 0; i < n; i++ {
			label := strconv.Itoa(i)
			s.shardRecords[i] = s.reg.Gauge(MetricShardRecords, "shard", label)
			s.shardGroups[i] = s.reg.Gauge(MetricShardGroups, "shard", label)
			s.shardSplits[i] = s.reg.Gauge(MetricShardSplits, "shard", label)
		}
		s.imbalance = s.reg.Gauge(MetricShardImbalance)
	}
	s.collect()
	s.rec.AddCollector(s.collect)
}

// collect refreshes the derived gauges — uptime and, on a sharded engine,
// the per-shard load family plus the max/mean imbalance ratio. It runs at
// every recorder scrape (on the scraper goroutine) and at every direct
// /metrics and /debug/vars read, never on the ingest path.
func (s *Server) collect() {
	s.uptime.Set(s.uptimeSeconds())
	if s.shardRecords == nil {
		return
	}
	var total, max float64
	for i := range s.shardRecords {
		records, groups, splits := s.eng.ShardCounts(i)
		r := float64(records)
		s.shardRecords[i].Set(r)
		s.shardGroups[i].Set(float64(groups))
		s.shardSplits[i].Set(float64(splits))
		total += r
		if r > max {
			max = r
		}
	}
	ratio := 0.0
	if total > 0 {
		ratio = max / (total / float64(len(s.shardRecords)))
	}
	s.imbalance.Set(ratio)
}

// HealthRules is the standard watchdog rule set for a condensation server
// with the given shard count — the rules condenserd installs. Thresholds
// are intentionally generous: the watchdog is a trend detector for silent
// privacy/performance erosion, not a latency SLO enforcer.
func HealthRules(shards int) []telemetry.Rule {
	rules := []telemetry.Rule{
		telemetry.CounterNonzeroRule("k_violations", audit.MetricKViolations,
			"any audited group below k records breaks the paper's indistinguishability contract"),
		telemetry.TrendRule("ks_drift", audit.MetricKSMean, 12, 0.10, 0.05,
			"mean marginal KS distance between original and synthesized data trending up — stream drift the condensation is not absorbing"),
		telemetry.TrendRule("sse_degradation", audit.MetricSSERatio, 12, 0.15, 0.02,
			"within-group SSE over total SSE trending up — groups are getting looser, eroding utility"),
		telemetry.LatencyRegressionRule("ingest_latency",
			`http_request_seconds{path="/v1/records"}`, 4,
			"windowed ingest p95 regressed vs the startup baseline in two consecutive trafficked windows"),
	}
	if shards >= 2 {
		rules = append(rules, telemetry.ImbalanceRule("shard_imbalance",
			MetricShardRecords, 2, 4, 1000,
			"max/mean of per-shard record counts — a hot shard serializes what sharding was meant to parallelize"))
	}
	return rules
}

// historyResponse is the GET /v1/history body: recorded windows oldest
// first, plus the ring geometry so clients know the retention horizon.
type historyResponse struct {
	Capacity int                `json:"capacity"`
	Recorded uint64             `json:"recorded"`
	Windows  []telemetry.Window `json:"windows"`
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if s.rec == nil {
		writeError(w, http.StatusNotFound,
			errors.New("flight recorder not enabled (start with -scrape-every > 0)"))
		return
	}
	last := 0
	if q := r.URL.Query().Get("last"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad last %q", q))
			return
		}
		last = v
	}
	var selectors []string
	if q := r.URL.Query().Get("series"); q != "" {
		// Validate the selectors against the live registry before filtering:
		// a selector matching no registered series used to silently return
		// empty windows, which reads exactly like "nothing was recorded".
		// Naming the unknown selectors instead turns a typo into a 400.
		selectors = strings.Split(q, ",")
		if unknown := s.unknownSelectors(selectors); len(unknown) > 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("unknown series selector(s): %s", strings.Join(unknown, ", ")))
			return
		}
	}
	windows := s.rec.Windows(last)
	if selectors != nil {
		for i, win := range windows {
			windows[i] = telemetry.FilterWindow(win, selectors)
		}
	}
	writeJSON(w, http.StatusOK, historyResponse{
		Capacity: s.rec.Capacity(),
		Recorded: s.rec.Seq(),
		Windows:  windows,
	})
}

// unknownSelectors returns the history selectors matching no series in the
// live registry, using exactly FilterWindow's match semantics: a selector
// matches a series whose id equals it (bare name or full name{labels}
// form) or whose id is the selector name followed by a label block.
func (s *Server) unknownSelectors(selectors []string) []string {
	snap := s.reg.Snapshot()
	var unknown []string
	for _, sel := range selectors {
		found := false
		for i := range snap {
			id := snap[i].ID()
			if id == sel || strings.HasPrefix(id, sel+"{") {
				found = true
				break
			}
		}
		if !found {
			unknown = append(unknown, sel)
		}
	}
	return unknown
}

// healthRulesResponse is the GET /v1/health/rules body.
type healthRulesResponse struct {
	Status string                 `json:"status"`
	Rules  []telemetry.RuleStatus `json:"rules"`
}

func (s *Server) handleHealthRules(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if s.wd == nil {
		writeError(w, http.StatusNotFound,
			errors.New("health watchdog not enabled (start with -scrape-every > 0)"))
		return
	}
	overall, rules := s.wd.Status()
	writeJSON(w, http.StatusOK, healthRulesResponse{Status: overall.String(), Rules: rules})
}
