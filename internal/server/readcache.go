package server

import (
	"fmt"
	"strconv"
	"sync"

	"condensation/internal/audit"
	"condensation/internal/telemetry"
)

// respBody is a fully prepared response: the encoded bytes plus
// header-ready values rendered once at build time, so serving a cache
// hit assigns header slices instead of re-formatting strings on every
// request. The slices are shared across responses and must never be
// mutated.
type respBody struct {
	data  []byte
	cl    []string // {"<len(data)>"} — Content-Length, preformatted
	etag  string   // `"<generation>"`; checkpoints only
	etagH []string // {etag} — ETag header value, preformatted
}

// newRespBody prepares an encoded body for serving.
func newRespBody(data []byte) *respBody {
	return &respBody{data: data, cl: []string{strconv.Itoa(len(data))}}
}

// newCheckpointBody prepares an encoded checkpoint for serving under its
// generation's strong validator.
func newCheckpointBody(data []byte, gen uint64) *respBody {
	b := newRespBody(data)
	b.etag = `"` + strconv.FormatUint(gen, 10) + `"`
	b.etagH = []string{b.etag}
	return b
}

// readCache memoizes the server's derived read artifacts — encoded
// checkpoint bytes, encoded stats bodies, synthesized snapshot bodies,
// and audit reports — keyed by the engine's mutation generation. The
// cache retains one generation only: the first store or probe at a newer
// generation drops everything from the older one, so memory stays
// bounded by the artifacts of the current state. Entries are immutable
// once stored (byte slices are handed to clients as-is and never
// written again), which is what makes serving them without copying safe.
//
// Stores carry the generation their artifact was built from and are
// refused when the cache has already advanced past it — a slow reader
// finishing a build of generation g after a writer moved the engine to
// g+n must not regress the cache, or later probes at g+n would serve
// stale bytes under a fresh ETag.
type readCache struct {
	mu  sync.Mutex
	gen uint64
	// valid distinguishes "empty cache" from "cache at generation 0" —
	// a freshly constructed engine legitimately serves generation 0.
	valid bool
	// jr, when set, records one cache_invalidation journal event each time
	// a generation step drops prepared artifacts. The journal has its own
	// lock and never calls back into the cache, so recording under mu is
	// safe.
	jr *telemetry.Journal

	checkpoint   *respBody
	statsMerged  *respBody
	statsByShard *respBody
	snapshots    map[uint64]*respBody // by synthesis seed
	audits       *auditEntry
}

// maxSnapshotSeeds bounds the per-generation synthesis memo: clients are
// expected to poll a few fixed seeds, but seeds come from the URL, so an
// adversarial seed sweep must not grow memory without bound. When the map
// fills, it resets rather than evicts — simple, and the whole map dies at
// the next write anyway.
const maxSnapshotSeeds = 32

// auditEntry is one generation's memoized audit pass: the merged report
// plus the per-shard reports a sharded Audit() publishes alongside it.
// reservoirSeen extends the key: the audit reads the KS reservoir, which
// is fed after the engine lock is released, so the same generation can
// legitimately produce two different reports if the reservoir advanced
// in between.
type auditEntry struct {
	reservoirSeen int
	merged        *audit.Report
	shards        []*audit.Report
}

// step advances the cache to generation gen, dropping every entry from an
// older generation, and reports whether the cache now holds gen. A false
// return means gen is older than what the cache has moved on to — the
// caller must neither read nor store. Caller holds mu.
func (c *readCache) step(gen uint64) bool {
	if !c.valid || gen > c.gen {
		if c.jr != nil && c.valid && gen > c.gen && c.holdsArtifacts() {
			c.jr.Record(telemetry.JournalEvent{
				Type:       telemetry.EventCacheInvalidation,
				Shard:      telemetry.JournalShardNone,
				Generation: gen,
				Detail:     fmt.Sprintf("read cache dropped generation %d artifacts (engine at %d)", c.gen, gen),
			})
		}
		c.gen, c.valid = gen, true
		c.checkpoint = nil
		c.statsMerged = nil
		c.statsByShard = nil
		c.snapshots = nil
		c.audits = nil
		return true
	}
	return gen == c.gen
}

// holdsArtifacts reports whether any prepared artifact is cached — an
// invalidation that drops nothing is not worth a journal entry.
func (c *readCache) holdsArtifacts() bool {
	return c.checkpoint != nil || c.statsMerged != nil || c.statsByShard != nil ||
		len(c.snapshots) > 0 || c.audits != nil
}

// checkpointAt returns the prepared checkpoint for generation gen, if
// cached.
func (c *readCache) checkpointAt(gen uint64) (*respBody, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.step(gen) || c.checkpoint == nil {
		return nil, false
	}
	return c.checkpoint, true
}

// storeCheckpoint caches the prepared checkpoint built from generation
// gen, unless the cache has already advanced past it.
func (c *readCache) storeCheckpoint(gen uint64, b *respBody) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.step(gen) {
		c.checkpoint = b
	}
}

// statsAt returns the prepared stats body (merged or by-shard variant)
// for generation gen, if cached.
func (c *readCache) statsAt(gen uint64, byShard bool) (*respBody, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.step(gen) {
		return nil, false
	}
	b := c.statsMerged
	if byShard {
		b = c.statsByShard
	}
	return b, b != nil
}

// storeStats caches one variant of the prepared stats body for generation
// gen.
func (c *readCache) storeStats(gen uint64, byShard bool, b *respBody) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.step(gen) {
		return
	}
	if byShard {
		c.statsByShard = b
	} else {
		c.statsMerged = b
	}
}

// snapshotAt returns the prepared synthesis body for (gen, seed), if
// cached.
func (c *readCache) snapshotAt(gen, seed uint64) (*respBody, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.step(gen) {
		return nil, false
	}
	b, ok := c.snapshots[seed]
	return b, ok
}

// storeSnapshot caches the prepared synthesis body for (gen, seed).
func (c *readCache) storeSnapshot(gen, seed uint64, b *respBody) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.step(gen) {
		return
	}
	if len(c.snapshots) >= maxSnapshotSeeds {
		c.snapshots = nil
	}
	if c.snapshots == nil {
		c.snapshots = make(map[uint64]*respBody)
	}
	c.snapshots[seed] = b
}

// auditAt returns the memoized audit pass for (gen, reservoirSeen), if
// cached.
func (c *readCache) auditAt(gen uint64, reservoirSeen int) (*auditEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.step(gen) || c.audits == nil || c.audits.reservoirSeen != reservoirSeen {
		return nil, false
	}
	return c.audits, true
}

// storeAudit caches one audit pass for (gen, reservoirSeen).
func (c *readCache) storeAudit(gen uint64, e *auditEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.step(gen) {
		c.audits = e
	}
}

// cacheMetrics is one memo's hit/miss counter pair under its cache="kind"
// labels. Handles are nil-safe, so the zero value records nothing.
type cacheMetrics struct {
	hits   *telemetry.Counter
	misses *telemetry.Counter
}

// newCacheMetrics resolves the counter pair for one cache kind.
func newCacheMetrics(reg *telemetry.Registry, kind string) cacheMetrics {
	return cacheMetrics{
		hits:   reg.Counter(MetricReadCacheHits, "cache", kind),
		misses: reg.Counter(MetricReadCacheMisses, "cache", kind),
	}
}
