package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"condensation/internal/audit"
	"condensation/internal/core"
)

// newShardedServer builds a test server over a freshly constructed sharded
// engine with the given shard count.
func newShardedServer(t *testing.T, k, shards int) *httptest.Server {
	t.Helper()
	condenser, err := core.NewCondenser(k, core.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Dim: 2, Condenser: condenser, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	testServers[ts.URL] = s
	t.Cleanup(func() {
		delete(testServers, ts.URL)
		ts.Close()
	})
	return ts
}

func getJSON(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// TestShardedServerEndpoints exercises the sharded HTTP surface end to
// end: splits in the ingest response, shard counts in health and stats,
// the ?shard= and ?by_shard breakdowns on stats and audit, and the
// per-shard engine metric labels.
func TestShardedServerEndpoints(t *testing.T) {
	const k, shards = 5, 4
	ts := newShardedServer(t, k, shards)
	resp := postRecords(t, ts, genRecords(1, 800))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	var rr recordsResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Accepted != 800 || rr.Groups < shards || rr.Splits < 1 {
		t.Fatalf("ingest response %+v", rr)
	}

	var hr healthResponse
	getJSON(t, ts.URL+"/healthz", &hr)
	if hr.Shards != shards || hr.Records != 800 {
		t.Fatalf("health %+v", hr)
	}

	var sr statsResponse
	getJSON(t, ts.URL+"/v1/stats?by_shard", &sr)
	if sr.Shards != shards || sr.Records != 800 || sr.Splits != rr.Splits || !sr.KSatisfied {
		t.Fatalf("stats %+v", sr)
	}
	if len(sr.ByShard) != shards {
		t.Fatalf("by_shard has %d entries, want %d", len(sr.ByShard), shards)
	}
	sum := 0
	for i, st := range sr.ByShard {
		if st.Shard != i || st.Records == 0 || !st.KSatisfied {
			t.Fatalf("shard block %d: %+v", i, st)
		}
		sum += st.Records
	}
	if sum != 800 {
		t.Fatalf("per-shard records sum to %d, want 800", sum)
	}

	var one shardStats
	getJSON(t, ts.URL+"/v1/stats?shard=2", &one)
	if one.Shard != 2 || one.Records != sr.ByShard[2].Records {
		t.Fatalf("?shard=2 returned %+v, want %+v", one, sr.ByShard[2])
	}
	if resp := getJSON(t, ts.URL+"/v1/stats?shard=9", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?shard=9 status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/stats?shard=x", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?shard=x status %d, want 400", resp.StatusCode)
	}

	var ar auditByShardResponse
	getJSON(t, ts.URL+"/v1/audit?by_shard", &ar)
	if ar.Report == nil || ar.KViolations != 0 || ar.Records != 800 {
		t.Fatalf("merged audit %+v", ar.Report)
	}
	if len(ar.ByShard) != shards {
		t.Fatalf("audit by_shard has %d entries, want %d", len(ar.ByShard), shards)
	}
	for i, sa := range ar.ByShard {
		if sa.Shard != i || sa.KViolations != 0 || sa.Records == 0 {
			t.Fatalf("shard audit %d: %+v", i, sa.Report)
		}
		if sa.KS != nil {
			t.Fatalf("shard audit %d carries a KS block; per-shard audits must omit it", i)
		}
	}
	var sa shardAudit
	getJSON(t, ts.URL+"/v1/audit?shard=1", &sa)
	if sa.Shard != 1 || sa.Records != ar.ByShard[1].Records {
		t.Fatalf("?shard=1 audit %+v", sa.Report)
	}

	metricsResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metricsResp.Body.Close()
	body, err := io.ReadAll(metricsResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shards; i++ {
		if want := fmt.Sprintf(`condense_stream_records_total{shard="%d"}`, i); !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %s", want)
		}
	}
}

// TestShardedServerDeterministic is the serving-level reproducibility
// contract: two sharded servers with the same configuration fed the same
// records serve byte-identical checkpoints, and concurrent multi-client
// ingest never breaks the per-shard k-invariant.
func TestShardedServerDeterministic(t *testing.T) {
	checkpoint := func(t *testing.T, ts *httptest.Server) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/checkpoint")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	records := genRecords(7, 600)
	a := newShardedServer(t, 4, 4)
	b := newShardedServer(t, 4, 4)
	for _, ts := range []*httptest.Server{a, b} {
		if resp := postRecords(t, ts, records); resp.StatusCode != http.StatusOK {
			t.Fatalf("POST status %d", resp.StatusCode)
		}
	}
	if !bytes.Equal(checkpoint(t, a), checkpoint(t, b)) {
		t.Fatal("same configuration and records produced different checkpoints")
	}

	// Concurrent clients: ordering across requests is up to the network,
	// so the exact state is not pinned — but the privacy invariant is.
	c := newShardedServer(t, 4, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				postRecords(t, c, genRecords(uint64(100+w*10+i), 80))
			}
		}(w)
	}
	wg.Wait()
	var rep audit.Report
	getJSON(t, c.URL+"/v1/audit", &rep)
	if rep.Records != 4*5*80 || rep.KViolations != 0 {
		t.Fatalf("after concurrent ingest: %d records, %d k-violations", rep.Records, rep.KViolations)
	}
}

// TestConfigEngine injects a pre-built engine: the server must serve it
// as-is, honouring its dimensionality and locking contract.
func TestConfigEngine(t *testing.T) {
	condenser, err := core.NewCondenser(3, core.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := condenser.Sharded(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Dim/Shards/K in the config must be ignored in favour of the engine.
	s, err := New(Config{Engine: eng, Dim: 99, Shards: 7, K: 55})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	if resp := postRecords(t, ts, [][]float64{{1, 2, 3}, {4, 5, 6}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	var hr healthResponse
	getJSON(t, ts.URL+"/healthz", &hr)
	if hr.Dim != 3 || hr.K != 3 || hr.Shards != 2 || hr.Records != 2 {
		t.Fatalf("health %+v", hr)
	}
	if eng.TotalCount() != 2 {
		t.Fatalf("injected engine holds %d records, want 2", eng.TotalCount())
	}
}
