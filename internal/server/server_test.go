package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"condensation/internal/core"
	"condensation/internal/rng"
)

func newTestServer(t *testing.T, k int) *httptest.Server {
	t.Helper()
	s, err := New(Config{Dim: 2, K: k, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func postRecords(t *testing.T, ts *httptest.Server, records [][]float64) *http.Response {
	t.Helper()
	body, err := json.Marshal(map[string]interface{}{"records": records})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/records", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func genRecords(seed uint64, n int) [][]float64 {
	r := rng.New(seed)
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{r.Norm(), r.Norm()}
	}
	return out
}

func TestIngestAndStats(t *testing.T) {
	ts := newTestServer(t, 5)
	resp := postRecords(t, ts, genRecords(1, 60))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	var rr recordsResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Accepted != 60 || rr.Groups < 1 {
		t.Errorf("response %+v", rr)
	}

	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var sr statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Records != 60 || sr.K != 5 || sr.Dim != 2 {
		t.Errorf("stats %+v", sr)
	}
	if sr.MaxGroupSize >= 10 {
		t.Errorf("max group size %d ≥ 2k", sr.MaxGroupSize)
	}
}

func TestSnapshot(t *testing.T) {
	ts := newTestServer(t, 4)
	postRecords(t, ts, genRecords(2, 40))

	resp, err := http.Get(ts.URL + "/v1/snapshot?seed=9")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	var sr snapshotResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Records) != 40 {
		t.Errorf("snapshot has %d records, want 40", len(sr.Records))
	}
	for i, rec := range sr.Records {
		if len(rec) != 2 {
			t.Fatalf("record %d has dimension %d", i, len(rec))
		}
	}

	// Same seed → identical snapshot (determinism across HTTP).
	resp2, err := http.Get(ts.URL + "/v1/snapshot?seed=9")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var sr2 snapshotResponse
	if err := json.NewDecoder(resp2.Body).Decode(&sr2); err != nil {
		t.Fatal(err)
	}
	for i := range sr.Records {
		for j := range sr.Records[i] {
			if sr.Records[i][j] != sr2.Records[i][j] {
				t.Fatal("snapshots with identical seeds differ")
			}
		}
	}
}

func TestSnapshotEmptyConflict(t *testing.T) {
	ts := newTestServer(t, 3)
	resp, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("empty snapshot status %d, want 409", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t, 3)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"no records", `{"records": []}`, http.StatusBadRequest},
		{"wrong dim", `{"records": [[1]]}`, http.StatusBadRequest},
		{"non finite", `{"records": [[1, 1e999]]}`, http.StatusBadRequest},
		{"unknown field", `{"record": [[1,2]]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/records", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestBatchLimit(t *testing.T) {
	s, err := New(Config{Dim: 2, K: 2, Seed: 1, MaxBatch: 5})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	body, _ := json.Marshal(map[string]interface{}{"records": genRecords(3, 6)})
	resp, err := http.Post(ts.URL+"/v1/records", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch status %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t, 3)
	for _, path := range []string{"/v1/records", "/v1/snapshot", "/v1/stats", "/v1/checkpoint"} {
		method := http.MethodGet
		if path != "/v1/records" {
			method = http.MethodPost
		}
		req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader([]byte("{}")))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d", method, path, resp.StatusCode)
		}
	}
}

func TestHealth(t *testing.T) {
	ts := newTestServer(t, 3)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ts := newTestServer(t, 4)
	postRecords(t, ts, genRecords(4, 50))

	resp, err := http.Get(ts.URL + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}
	cond, err := core.ReadCondensation(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if cond.TotalCount() != 50 || cond.K() != 4 {
		t.Errorf("checkpoint: %d records, k=%d", cond.TotalCount(), cond.K())
	}

	// A new server seeded from the checkpoint carries the state forward.
	s2, err := New(Config{Seed: 9, Initial: cond})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	statsResp, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var sr statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Records != 50 {
		t.Errorf("restored server has %d records, want 50", sr.Records)
	}
}

func TestConcurrentIngest(t *testing.T) {
	ts := newTestServer(t, 5)
	const workers, perWorker = 8, 25
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			body, _ := json.Marshal(map[string]interface{}{"records": genRecords(uint64(w+10), perWorker)})
			resp, err := http.Post(ts.URL+"/v1/records", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var sr statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Records != workers*perWorker {
		t.Errorf("after concurrent ingest: %d records, want %d", sr.Records, workers*perWorker)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0, K: 2}); err == nil {
		t.Error("dim=0 accepted")
	}
	if _, err := New(Config{Dim: 2, K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestIngestCancelledContext verifies the ingestion path honours the
// request context: a pre-cancelled request admits no records.
func TestIngestCancelledContext(t *testing.T) {
	s, err := New(Config{Dim: 2, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]interface{}{"records": genRecords(8, 40)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/records", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestTimeout {
		t.Errorf("status = %d, want %d", rec.Code, http.StatusRequestTimeout)
	}
	// Nothing must have been condensed.
	statsReq := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	statsRec := httptest.NewRecorder()
	s.ServeHTTP(statsRec, statsReq)
	var sr statsResponse
	if err := json.NewDecoder(statsRec.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Records != 0 {
		t.Errorf("%d records condensed under a cancelled context, want 0", sr.Records)
	}
}

// TestConfigCondenser exercises the facade-based configuration path.
func TestConfigCondenser(t *testing.T) {
	c, err := core.NewCondenser(4, core.WithSeed(9), core.WithSynthesis(core.SynthesisGaussian))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Dim: 2, Condenser: c})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	if resp := postRecords(t, ts, genRecords(9, 30)); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var sr statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.K != 4 || sr.Records != 30 {
		t.Errorf("stats %+v, want k=4 records=30", sr)
	}
}
