package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"condensation/internal/core"
	"condensation/internal/mat"
	"condensation/internal/rng"
)

func newTestServer(t *testing.T, k int) *httptest.Server {
	t.Helper()
	s, err := New(Config{Dim: 2, K: k, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	testServers[ts.URL] = s
	t.Cleanup(func() {
		delete(testServers, ts.URL)
		ts.Close()
	})
	return ts
}

func postRecords(t *testing.T, ts *httptest.Server, records [][]float64) *http.Response {
	t.Helper()
	body, err := json.Marshal(map[string]interface{}{"records": records})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/records", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func genRecords(seed uint64, n int) [][]float64 {
	r := rng.New(seed)
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{r.Norm(), r.Norm()}
	}
	return out
}

func TestIngestAndStats(t *testing.T) {
	ts := newTestServer(t, 5)
	resp := postRecords(t, ts, genRecords(1, 60))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	var rr recordsResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Accepted != 60 || rr.Groups < 1 {
		t.Errorf("response %+v", rr)
	}

	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var sr statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Records != 60 || sr.K != 5 || sr.Dim != 2 {
		t.Errorf("stats %+v", sr)
	}
	if sr.MaxGroupSize >= 10 {
		t.Errorf("max group size %d ≥ 2k", sr.MaxGroupSize)
	}
}

func TestSnapshot(t *testing.T) {
	ts := newTestServer(t, 4)
	postRecords(t, ts, genRecords(2, 40))

	resp, err := http.Get(ts.URL + "/v1/snapshot?seed=9")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	var sr snapshotResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Records) != 40 {
		t.Errorf("snapshot has %d records, want 40", len(sr.Records))
	}
	for i, rec := range sr.Records {
		if len(rec) != 2 {
			t.Fatalf("record %d has dimension %d", i, len(rec))
		}
	}

	// Same seed → identical snapshot (determinism across HTTP).
	resp2, err := http.Get(ts.URL + "/v1/snapshot?seed=9")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var sr2 snapshotResponse
	if err := json.NewDecoder(resp2.Body).Decode(&sr2); err != nil {
		t.Fatal(err)
	}
	for i := range sr.Records {
		for j := range sr.Records[i] {
			if sr.Records[i][j] != sr2.Records[i][j] {
				t.Fatal("snapshots with identical seeds differ")
			}
		}
	}
}

func TestSnapshotEmptyConflict(t *testing.T) {
	ts := newTestServer(t, 3)
	resp, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("empty snapshot status %d, want 409", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t, 3)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"no records", `{"records": []}`, http.StatusBadRequest},
		{"wrong dim", `{"records": [[1]]}`, http.StatusBadRequest},
		{"non finite", `{"records": [[1, 1e999]]}`, http.StatusBadRequest},
		{"unknown field", `{"record": [[1,2]]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/records", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestBatchLimit(t *testing.T) {
	s, err := New(Config{Dim: 2, K: 2, Seed: 1, MaxBatch: 5})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	body, _ := json.Marshal(map[string]interface{}{"records": genRecords(3, 6)})
	resp, err := http.Post(ts.URL+"/v1/records", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch status %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t, 3)
	for _, path := range []string{"/v1/records", "/v1/snapshot", "/v1/stats", "/v1/checkpoint"} {
		method := http.MethodGet
		if path != "/v1/records" {
			method = http.MethodPost
		}
		req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader([]byte("{}")))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d", method, path, resp.StatusCode)
		}
	}
}

func TestHealth(t *testing.T) {
	ts := newTestServer(t, 3)
	postRecords(t, ts, genRecords(5, 20))
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("healthz content type %q", ct)
	}
	var hr healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" {
		t.Errorf("status %q", hr.Status)
	}
	if hr.GoVersion == "" {
		t.Error("missing go_version")
	}
	if hr.UptimeSeconds < 0 {
		t.Errorf("uptime %g", hr.UptimeSeconds)
	}
	if hr.Records != 20 || hr.K != 3 || hr.Dim != 2 || hr.Groups < 1 {
		t.Errorf("health counts %+v", hr)
	}
}

// TestErrorEnvelope pins every 4xx path to the JSON error envelope with
// the right status code: bad JSON, wrong method, dimension mismatch, and
// the cancelled-context 408.
func TestErrorEnvelope(t *testing.T) {
	ts := newTestServer(t, 3)
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		cancel bool
		want   int
	}{
		{name: "bad json", method: http.MethodPost, path: "/v1/records", body: `{"records": [[1,`, want: http.StatusBadRequest},
		{name: "empty batch", method: http.MethodPost, path: "/v1/records", body: `{"records": []}`, want: http.StatusBadRequest},
		{name: "dimension mismatch", method: http.MethodPost, path: "/v1/records", body: `{"records": [[1,2,3]]}`, want: http.StatusBadRequest},
		{name: "non-finite record", method: http.MethodPost, path: "/v1/records", body: `{"records": [[1, 1e999]]}`, want: http.StatusBadRequest},
		{name: "wrong method records", method: http.MethodGet, path: "/v1/records", want: http.StatusMethodNotAllowed},
		{name: "wrong method snapshot", method: http.MethodPost, path: "/v1/snapshot", want: http.StatusMethodNotAllowed},
		{name: "wrong method stats", method: http.MethodPost, path: "/v1/stats", want: http.StatusMethodNotAllowed},
		{name: "wrong method metrics", method: http.MethodPost, path: "/metrics", want: http.StatusMethodNotAllowed},
		{name: "wrong method healthz", method: http.MethodPost, path: "/healthz", want: http.StatusMethodNotAllowed},
		{name: "bad snapshot seed", method: http.MethodGet, path: "/v1/snapshot?seed=banana", want: http.StatusBadRequest},
		{name: "cancelled context", method: http.MethodPost, path: "/v1/records", body: `{"records": [[1,2]]}`, cancel: true, want: http.StatusRequestTimeout},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.cancel {
				// A cancelled client context would abort the client side
				// before the response arrives; go through the handler
				// directly instead.
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body)).WithContext(ctx)
				rec := httptest.NewRecorder()
				serverFromTS(t, ts).ServeHTTP(rec, req)
				assertEnvelope(t, rec.Code, rec.Header().Get("Content-Type"), rec.Body.Bytes(), tc.want)
				return
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var body bytes.Buffer
			if _, err := body.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			assertEnvelope(t, resp.StatusCode, resp.Header.Get("Content-Type"), body.Bytes(), tc.want)
			if tc.want == http.StatusMethodNotAllowed && resp.Header.Get("Allow") == "" {
				t.Error("405 without an Allow header")
			}
		})
	}
}

// assertEnvelope checks one error response: expected status, JSON content
// type, and a non-empty {"error": ...} body.
func assertEnvelope(t *testing.T, status int, contentType string, body []byte, want int) {
	t.Helper()
	if status != want {
		t.Errorf("status %d, want %d", status, want)
	}
	if !strings.HasPrefix(contentType, "application/json") {
		t.Errorf("content type %q, want application/json", contentType)
	}
	var env errorResponse
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("body is not the JSON envelope: %v\n%s", err, body)
	}
	if env.Error == "" {
		t.Error("empty error message in envelope")
	}
}

// testServers maps httptest servers back to their Server for direct
// handler invocation (cancelled-context cases).
var testServers = map[string]*Server{}

func serverFromTS(t *testing.T, ts *httptest.Server) *Server {
	t.Helper()
	s, ok := testServers[ts.URL]
	if !ok {
		t.Fatal("no Server registered for test server")
	}
	return s
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, 5)
	postRecords(t, ts, genRecords(6, 60))
	if resp, err := http.Get(ts.URL + "/v1/snapshot"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	for _, want := range []string{
		`# TYPE http_request_seconds histogram`,
		`http_request_seconds_bucket{path="/v1/records",le="+Inf"}`,
		`http_requests_total{path="/v1/records",code="2xx"} 1`,
		`# TYPE condense_stage_seconds histogram`,
		`condense_stage_seconds_count{stage="neighbor_search",backend="centroid-scan"}`,
		`condense_stage_seconds_count{stage="eigen"}`,
		`condense_stage_seconds_count{stage="synthesis"}`,
		`condense_groups_formed_total`,
		`condense_split_events_total`,
		`condense_stream_records_total 60`,
		`condense_groups `,
		`http_in_flight`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestDebugVarsEndpoint(t *testing.T) {
	ts := newTestServer(t, 4)
	postRecords(t, ts, genRecords(6, 20))
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/vars status %d", resp.StatusCode)
	}
	var vars map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("debug/vars is not JSON: %v", err)
	}
	if vars["condense_stream_records_total"] != float64(20) {
		t.Errorf("condense_stream_records_total = %v", vars["condense_stream_records_total"])
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ts := newTestServer(t, 4)
	postRecords(t, ts, genRecords(4, 50))

	resp, err := http.Get(ts.URL + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}
	cond, err := core.ReadCondensation(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if cond.TotalCount() != 50 || cond.K() != 4 {
		t.Errorf("checkpoint: %d records, k=%d", cond.TotalCount(), cond.K())
	}

	// A new server seeded from the checkpoint carries the state forward.
	s2, err := New(Config{Seed: 9, Initial: cond})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	statsResp, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var sr statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Records != 50 {
		t.Errorf("restored server has %d records, want 50", sr.Records)
	}
}

func TestConcurrentIngest(t *testing.T) {
	ts := newTestServer(t, 5)
	const workers, perWorker = 8, 25
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			body, _ := json.Marshal(map[string]interface{}{"records": genRecords(uint64(w+10), perWorker)})
			resp, err := http.Post(ts.URL+"/v1/records", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var sr statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Records != workers*perWorker {
		t.Errorf("after concurrent ingest: %d records, want %d", sr.Records, workers*perWorker)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0, K: 2}); err == nil {
		t.Error("dim=0 accepted")
	}
	if _, err := New(Config{Dim: 2, K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestIngestCancelledContext verifies the ingestion path honours the
// request context: a pre-cancelled request admits no records.
func TestIngestCancelledContext(t *testing.T) {
	s, err := New(Config{Dim: 2, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]interface{}{"records": genRecords(8, 40)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/records", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestTimeout {
		t.Errorf("status = %d, want %d", rec.Code, http.StatusRequestTimeout)
	}
	// Nothing must have been condensed.
	statsReq := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	statsRec := httptest.NewRecorder()
	s.ServeHTTP(statsRec, statsReq)
	var sr statsResponse
	if err := json.NewDecoder(statsRec.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Records != 0 {
		t.Errorf("%d records condensed under a cancelled context, want 0", sr.Records)
	}
}

// TestConfigCondenser exercises the facade-based configuration path.
func TestConfigCondenser(t *testing.T) {
	c, err := core.NewCondenser(4, core.WithSeed(9), core.WithSynthesis(core.SynthesisGaussian))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Dim: 2, Condenser: c})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	if resp := postRecords(t, ts, genRecords(9, 30)); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var sr statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.K != 4 || sr.Records != 30 {
		t.Errorf("stats %+v, want k=4 records=30", sr)
	}
}

// TestBatchIngestMatchesSequential pins the server's batch ingest to the
// engine's determinism contract: the checkpoint after a POSTed batch is
// byte-identical to a local condenser fed the same records one at a time.
func TestBatchIngestMatchesSequential(t *testing.T) {
	ts := newTestServer(t, 5)
	records := genRecords(77, 400)
	if resp := postRecords(t, ts, records); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	c, err := core.NewCondenser(5, core.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.Dynamic(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetNeighborSearch(core.SearchScanSort); err != nil {
		t.Fatal(err)
	}
	for _, row := range records {
		if err := ref.Add(mat.Vector(row)); err != nil {
			t.Fatal(err)
		}
	}
	var want bytes.Buffer
	if _, err := ref.Condensation().WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("server batch-ingested checkpoint differs from sequential Add loop")
	}
}

// TestConcurrentReadsAndWrites hammers the server with interleaved batch
// POSTs and read-only GETs. Under -race this proves the RWMutex discipline:
// reads share the lock among themselves and exclude in-flight ingests.
func TestConcurrentReadsAndWrites(t *testing.T) {
	ts := newTestServer(t, 4)
	postRecords(t, ts, genRecords(50, 40)) // non-empty so snapshot serves

	const writers, readers, rounds = 4, 6, 10
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < rounds; i++ {
				body, _ := json.Marshal(map[string]interface{}{"records": genRecords(uint64(100+w*rounds+i), 50)})
				resp, err := http.Post(ts.URL+"/v1/records", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("POST status %d", resp.StatusCode)
					return
				}
			}
			errs <- nil
		}(w)
	}
	paths := []string{"/v1/stats", "/healthz", "/v1/snapshot?seed=3", "/v1/checkpoint"}
	for g := 0; g < readers; g++ {
		go func(g int) {
			for i := 0; i < rounds; i++ {
				resp, err := http.Get(ts.URL + paths[(g+i)%len(paths)])
				if err != nil {
					errs <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("GET %s status %d", paths[(g+i)%len(paths)], resp.StatusCode)
					return
				}
			}
			errs <- nil
		}(g)
	}
	for i := 0; i < writers+readers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var sr statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if want := 40 + writers*rounds*50; sr.Records != want {
		t.Errorf("after concurrent load: %d records, want %d", sr.Records, want)
	}
}
