package server

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"condensation/internal/telemetry"
)

// WriteBundle writes a one-shot diagnostics snapshot of the live server as
// a tar.gz stream: health, metrics, the flight-recorder ring, health-rule
// states, an audit pass, recent trace spans, the lifecycle journal tail,
// goroutine and heap profiles, and build info — everything a bug report
// against a live daemon needs, in one artifact. Entries for disabled
// subsystems (no recorder, no tracer, no journal) are omitted; an entry
// whose renderer fails ships its error text instead, so one broken
// subsystem never blocks the rest of the bundle.
//
// The snapshot is assembled through the same read-locked paths the
// individual endpoints use, so taking a bundle under concurrent ingest is
// safe and observe-only.
func (s *Server) WriteBundle(w io.Writer) error {
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	now := time.Now()
	add := func(name string, fill func(io.Writer) error) error {
		var buf bytes.Buffer
		if err := fill(&buf); err != nil {
			buf.Reset()
			fmt.Fprintf(&buf, "error: %v\n", err)
		}
		hdr := &tar.Header{Name: name, Mode: 0o644, Size: int64(buf.Len()), ModTime: now}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		_, err := tw.Write(buf.Bytes())
		return err
	}
	asJSON := func(v func() (interface{}, error)) func(io.Writer) error {
		return func(w io.Writer) error {
			body, err := v()
			if err != nil {
				return err
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(body)
		}
	}

	entries := []struct {
		name string
		fill func(io.Writer) error
	}{
		{"healthz.json", asJSON(func() (interface{}, error) {
			resp, _ := s.healthSnapshot()
			return resp, nil
		})},
		{"metrics.prom", func(w io.Writer) error {
			s.collect()
			return s.reg.WritePrometheus(w)
		}},
		{"audit.json", asJSON(func() (interface{}, error) {
			e, err := s.auditPass()
			if err != nil {
				return nil, err
			}
			return e.merged, nil
		})},
		{"buildinfo.txt", func(w io.Writer) error {
			info, ok := debug.ReadBuildInfo()
			if !ok {
				return errors.New("no build info embedded in binary")
			}
			_, err := io.WriteString(w, info.String())
			return err
		}},
		{"goroutines.txt", func(w io.Writer) error {
			return pprof.Lookup("goroutine").WriteTo(w, 1)
		}},
		{"heap.pprof", func(w io.Writer) error {
			return pprof.Lookup("heap").WriteTo(w, 0)
		}},
	}
	if s.rec != nil {
		entries = append(entries, struct {
			name string
			fill func(io.Writer) error
		}{"history.json", asJSON(func() (interface{}, error) {
			return historyResponse{
				Capacity: s.rec.Capacity(),
				Recorded: s.rec.Seq(),
				Windows:  s.rec.Windows(0),
			}, nil
		})})
	}
	if s.wd != nil {
		entries = append(entries, struct {
			name string
			fill func(io.Writer) error
		}{"health_rules.json", asJSON(func() (interface{}, error) {
			overall, rules := s.wd.Status()
			return healthRulesResponse{Status: overall.String(), Rules: rules}, nil
		})})
	}
	if s.tr != nil {
		entries = append(entries, struct {
			name string
			fill func(io.Writer) error
		}{"trace.json", func(w io.Writer) error {
			return s.tr.WriteChromeTrace(w, 0)
		}})
	}
	if s.jr != nil {
		entries = append(entries, struct {
			name string
			fill func(io.Writer) error
		}{"journal.json", asJSON(func() (interface{}, error) {
			events := s.jr.Events(0)
			if events == nil {
				events = []telemetry.JournalEvent{}
			}
			return eventsResponse{
				Capacity: s.jr.Capacity(),
				Recorded: s.jr.Seq(),
				Dropped:  s.jr.Dropped(),
				Events:   events,
			}, nil
		})})
	}

	for _, e := range entries {
		if err := add(e.name, e.fill); err != nil {
			return err
		}
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}

func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/gzip")
	h.Set("Content-Disposition", `attachment; filename="condense-bundle.tar.gz"`)
	// The bundle streams straight to the client; a mid-stream failure
	// reaches them as a truncated (and therefore invalid) gzip stream,
	// which every unpacker rejects loudly.
	_ = s.WriteBundle(w)
}
