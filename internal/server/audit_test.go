package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"condensation/internal/audit"
	"condensation/internal/telemetry"
)

// auditBody decodes a /v1/audit response.
func auditBody(t *testing.T, resp *http.Response) *audit.Report {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("/v1/audit status %d: %s", resp.StatusCode, body)
	}
	var rep audit.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("decoding audit report: %v", err)
	}
	return &rep
}

func TestAuditEmpty(t *testing.T) {
	ts := newTestServer(t, 5)
	resp, err := http.Get(ts.URL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	rep := auditBody(t, resp)
	if rep.Groups != 0 || rep.Records != 0 || !rep.KSatisfied {
		t.Fatalf("pre-ingest audit = %+v", rep)
	}
}

func TestAuditAfterIngest(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := New(Config{Dim: 2, K: 5, Seed: 1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	testServers[ts.URL] = s
	defer delete(testServers, ts.URL)

	if resp := postRecords(t, ts, genRecords(7, 400)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	rep := auditBody(t, resp)
	if rep.Records != 400 {
		t.Errorf("audited %d records, want 400", rep.Records)
	}
	if rep.KViolations != 0 || !rep.KSatisfied {
		t.Errorf("k-violations = %d on a healthy stream", rep.KViolations)
	}
	if len(rep.GroupSizeHist) == 0 {
		t.Error("group-size histogram empty")
	}
	if rep.SSERatio <= 0 || rep.SSERatio >= 1 {
		t.Errorf("sse_ratio = %v, want in (0,1)", rep.SSERatio)
	}
	if rep.KS == nil {
		t.Fatal("KS block missing (reservoir should have sampled the batch)")
	}
	if rep.KS.OriginalSample != 400 {
		t.Errorf("KS original sample = %d, want 400", rep.KS.OriginalSample)
	}
	if len(rep.KS.PerAttribute) != 2 {
		t.Errorf("KS per-attribute = %v", rep.KS.PerAttribute)
	}

	// The same numbers must appear as Prometheus series on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	metrics := string(body)
	for _, want := range []string{
		"condense_audit_runs_total 1",
		"condense_audit_k_violations_total 0",
		"condense_audit_records 400",
		"condense_audit_sse_ratio ",
		"condense_audit_group_size_count ",
		"condense_audit_cond_number_count ",
		"condense_audit_ks_mean ",
		`condense_audit_ks_distance{attr="0"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if got := reg.Gauge("condense_audit_sse_ratio").Value(); got != rep.SSERatio {
		t.Errorf("gauge sse_ratio %v != report %v", got, rep.SSERatio)
	}
	if got := reg.Gauge("condense_audit_groups").Value(); got != float64(rep.Groups) {
		t.Errorf("gauge groups %v != report %v", got, rep.Groups)
	}
}

// TestAuditObserveOnly: running audits does not perturb the condensation
// or the synthesized snapshot stream.
func TestAuditObserveOnly(t *testing.T) {
	plain := newTestServer(t, 4)
	audited := newTestServer(t, 4)

	records := genRecords(3, 200)
	postRecords(t, plain, records)
	postRecords(t, audited, records)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(audited.URL + "/v1/audit")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	a, err := http.Get(plain.URL + "/v1/snapshot?seed=9")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Body.Close()
	b, err := http.Get(audited.URL + "/v1/snapshot?seed=9")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Body.Close()
	ba, _ := io.ReadAll(a.Body)
	bb, _ := io.ReadAll(b.Body)
	if string(ba) != string(bb) {
		t.Fatal("audited server synthesized a different snapshot")
	}
}

func TestAuditSampleDisabled(t *testing.T) {
	s, err := New(Config{Dim: 2, K: 4, Seed: 1, AuditSample: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	testServers[ts.URL] = s
	defer delete(testServers, ts.URL)
	postRecords(t, ts, genRecords(5, 100))
	resp, err := http.Get(ts.URL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	rep := auditBody(t, resp)
	if rep.KS != nil {
		t.Fatalf("KS block present with reservoir disabled: %+v", rep.KS)
	}
	if rep.Records != 100 {
		t.Errorf("records = %d", rep.Records)
	}
}

func TestTraceEndpoint(t *testing.T) {
	// Disabled: 404.
	off := newTestServer(t, 4)
	resp, err := http.Get(off.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace endpoint without tracer: status %d, want 404", resp.StatusCode)
	}

	// Enabled at 1-in-1: requests leave spans, exported as Chrome JSON.
	tr := telemetry.NewTracer(256, 1)
	s, err := New(Config{Dim: 2, K: 4, Seed: 1, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	testServers[ts.URL] = s
	defer delete(testServers, ts.URL)

	postRecords(t, ts, genRecords(2, 150))
	resp, err = http.Get(ts.URL + "/debug/trace?last=100")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace content-type %q", ct)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace output not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"http /v1/records", "dynamic.add_batch", "dynamic.speculate", "dynamic.apply"} {
		if !names[want] {
			t.Errorf("trace missing %q span (got %v)", want, names)
		}
	}

	// Bad ?last.
	resp, err = http.Get(ts.URL + "/debug/trace?last=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad last: status %d, want 400", resp.StatusCode)
	}
}
