package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"condensation/internal/core"
	"condensation/internal/mat"
	"condensation/internal/telemetry"
)

// This file serves the explainability layer: the group-lifecycle journal
// (/v1/events), per-group diagnostics (/v1/groups, /v1/groups/{id}), and
// the routing dry-run (/v1/explain). All of it is read-only against the
// engine — explain in particular is proven side-effect-free, so operators
// can probe a live daemon under ingest without perturbing its state.

// eventsResponse is the GET /v1/events body: the journal tail oldest
// first, plus the ring geometry so clients know the retention horizon.
type eventsResponse struct {
	Capacity int                      `json:"capacity"`
	Recorded uint64                   `json:"recorded"`
	Dropped  uint64                   `json:"dropped"`
	Events   []telemetry.JournalEvent `json:"events"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if s.jr == nil {
		writeError(w, http.StatusNotFound,
			errors.New("lifecycle journal not enabled (start with -journal > 0)"))
		return
	}
	q := queryParams(r)
	last := 0
	if v := q.Get("last"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad last %q", v))
			return
		}
		last = n
	}
	var types []string
	if v := q.Get("type"); v != "" {
		types = strings.Split(v, ",")
		for _, t := range types {
			if !validEventType(t) {
				writeError(w, http.StatusBadRequest, fmt.Errorf("unknown event type %q", t))
				return
			}
		}
	}
	events := s.jr.Events(last, types...)
	if events == nil {
		events = []telemetry.JournalEvent{}
	}
	writeJSON(w, http.StatusOK, eventsResponse{
		Capacity: s.jr.Capacity(),
		Recorded: s.jr.Seq(),
		Dropped:  s.jr.Dropped(),
		Events:   events,
	})
}

// validEventType guards the ?type= filter against typos: a filter naming
// no known event kind would silently return nothing, the same trap the
// history selector validation closes.
func validEventType(t string) bool {
	switch t {
	case telemetry.EventGroupCreated, telemetry.EventSplit,
		telemetry.EventIndexRebuild, telemetry.EventSpecFallback,
		telemetry.EventCacheInvalidation, telemetry.EventWatchdogTransition:
		return true
	}
	return false
}

// groupsResponse is the GET /v1/groups body.
type groupsResponse struct {
	Generation uint64           `json:"generation"`
	Groups     []core.GroupInfo `json:"groups"`
}

func (s *Server) handleGroups(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	s.rlock()
	gen := s.eng.Generation()
	infos := s.eng.GroupInfos(nil)
	s.runlock()
	if infos == nil {
		infos = []core.GroupInfo{}
	}
	writeJSON(w, http.StatusOK, groupsResponse{Generation: gen, Groups: infos})
}

func (s *Server) handleGroupByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/groups/")
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad group id %q", raw))
		return
	}
	s.rlock()
	det, ok := s.eng.GroupByID(id)
	s.runlock()
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no live group with id %d (retired by a split, or never allocated)", id))
		return
	}
	writeJSON(w, http.StatusOK, det)
}

// explainRequest is the POST /v1/explain body.
type explainRequest struct {
	// Record is the stream record to dry-run routing for; it is never
	// ingested.
	Record []float64 `json:"record"`
	// Top bounds the reported candidate list (0 means the default).
	Top int `json:"top"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req explainRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if req.Record == nil {
		writeError(w, http.StatusBadRequest, errors.New("no record in request"))
		return
	}
	s.rlock()
	ex, err := s.eng.Explain(mat.Vector(req.Record), req.Top)
	s.runlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, ex)
}
