package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"condensation/internal/telemetry"
)

// getWith fetches a URL with optional headers and returns the response
// (body fully read and closed) plus its bytes.
func getWith(t *testing.T, url string, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func testCheckpointETagFlow(t *testing.T, shards int) {
	reg := telemetry.NewRegistry()
	s, err := New(Config{Dim: 2, K: 4, Seed: 1, Shards: shards, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	postRecords(t, ts, genRecords(3, 60))

	hits := reg.Counter(MetricReadCacheHits, "cache", "checkpoint")

	resp, body := getWith(t, ts.URL+"/v1/checkpoint", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" || etag[0] != '"' {
		t.Fatalf("checkpoint ETag %q, want a quoted generation", etag)
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(body)) {
		t.Fatalf("Content-Length %q, body is %d bytes", cl, len(body))
	}

	// Unchanged state: the exact bytes replay, the cache serves them, and
	// a conditional poller pays only a header round-trip.
	h0 := hits.Value()
	resp2, body2 := getWith(t, ts.URL+"/v1/checkpoint", nil)
	if resp2.Header.Get("ETag") != etag || !bytes.Equal(body, body2) {
		t.Fatal("unchanged state served different checkpoint bytes or ETag")
	}
	if hits.Value() <= h0 {
		t.Error("second checkpoint fetch did not hit the read cache")
	}
	for _, inm := range []string{etag, "*", `"zzz", ` + etag, "W/" + etag} {
		resp3, body3 := getWith(t, ts.URL+"/v1/checkpoint", map[string]string{"If-None-Match": inm})
		if resp3.StatusCode != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: status %d, want 304", inm, resp3.StatusCode)
		}
		if len(body3) != 0 {
			t.Fatalf("If-None-Match %q: 304 carried %d body bytes", inm, len(body3))
		}
		if resp3.Header.Get("ETag") != etag {
			t.Fatalf("304 must repeat the ETag, got %q", resp3.Header.Get("ETag"))
		}
	}
	if resp4, _ := getWith(t, ts.URL+"/v1/checkpoint", map[string]string{"If-None-Match": `"not-it"`}); resp4.StatusCode != http.StatusOK {
		t.Fatalf("non-matching If-None-Match: status %d, want 200", resp4.StatusCode)
	}

	// A write moves the generation: the old validator no longer matches
	// and the fresh body arrives under a new ETag.
	postRecords(t, ts, genRecords(4, 8))
	resp5, body5 := getWith(t, ts.URL+"/v1/checkpoint", map[string]string{"If-None-Match": etag})
	if resp5.StatusCode != http.StatusOK {
		t.Fatalf("post-write conditional fetch: status %d, want 200", resp5.StatusCode)
	}
	if resp5.Header.Get("ETag") == etag {
		t.Error("ETag did not change after a write")
	}
	if bytes.Equal(body5, body) {
		t.Error("checkpoint bytes did not change after a write")
	}
}

func TestCheckpointETagFlow(t *testing.T)        { testCheckpointETagFlow(t, 0) }
func TestCheckpointETagFlowSharded(t *testing.T) { testCheckpointETagFlow(t, 4) }

// truncWriter accepts n body bytes then fails, simulating a client that
// vanishes mid-response.
type truncWriter struct {
	header http.Header
	status int
	limit  int
	wrote  int
	failed bool
}

func (w *truncWriter) Header() http.Header { return w.header }
func (w *truncWriter) WriteHeader(s int)   { w.status = s }
func (w *truncWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	if w.failed {
		return 0, errors.New("connection reset")
	}
	room := w.limit - w.wrote
	if len(p) <= room {
		w.wrote += len(p)
		return len(p), nil
	}
	w.wrote += room
	w.failed = true
	return room, errors.New("connection reset")
}

// TestCheckpointTruncationDetectable is the regression test for silent
// checkpoint truncation: the handler must declare Content-Length before
// the first body byte, so a mid-stream write failure leaves the client
// with fewer bytes than declared — detectable — rather than a cleanly
// terminated short stream.
func TestCheckpointTruncationDetectable(t *testing.T) {
	s, err := New(Config{Dim: 2, K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	postRecords(t, ts, genRecords(5, 80))

	w := &truncWriter{header: make(http.Header), limit: 64}
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/checkpoint", nil))
	if w.status != http.StatusOK {
		t.Fatalf("status %d", w.status)
	}
	if !w.failed {
		t.Fatalf("checkpoint fit in %d bytes; shrink the limit", w.limit)
	}
	declared, err := strconv.Atoi(w.header.Get("Content-Length"))
	if err != nil {
		t.Fatalf("Content-Length %q not declared: %v", w.header.Get("Content-Length"), err)
	}
	if declared <= w.wrote {
		t.Fatalf("declared %d bytes but %d were written — truncation would be silent", declared, w.wrote)
	}
}

func TestSnapshotMemoized(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := New(Config{Dim: 2, K: 4, Seed: 1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	postRecords(t, ts, genRecords(6, 50))

	hits := reg.Counter(MetricReadCacheHits, "cache", "synthesis")
	misses := reg.Counter(MetricReadCacheMisses, "cache", "synthesis")

	resp1, body1 := getWith(t, ts.URL+"/v1/snapshot?seed=5", nil)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp1.StatusCode)
	}
	if cl := resp1.Header.Get("Content-Length"); cl != strconv.Itoa(len(body1)) {
		t.Fatalf("Content-Length %q, body is %d bytes", cl, len(body1))
	}
	m1, h1 := misses.Value(), hits.Value()

	_, body2 := getWith(t, ts.URL+"/v1/snapshot?seed=5", nil)
	if !bytes.Equal(body1, body2) {
		t.Fatal("memoized snapshot differs from the synthesized one")
	}
	if hits.Value() != h1+1 || misses.Value() != m1 {
		t.Errorf("repeat fetch: hits %d->%d misses %d->%d, want one hit, no miss",
			h1, hits.Value(), m1, misses.Value())
	}

	// A different seed is a different memo entry (fresh synthesis), and a
	// write invalidates every seed's entry.
	_, body3 := getWith(t, ts.URL+"/v1/snapshot?seed=6", nil)
	if bytes.Equal(body1, body3) {
		t.Error("different seeds returned identical synthesis")
	}
	if misses.Value() != m1+1 {
		t.Errorf("new seed should miss: misses %d->%d", m1, misses.Value())
	}
	postRecords(t, ts, genRecords(7, 4))
	_, body4 := getWith(t, ts.URL+"/v1/snapshot?seed=5", nil)
	if bytes.Equal(body1, body4) {
		t.Error("snapshot unchanged after a write")
	}
}

func TestStatsMemoizedAndHealthGeneration(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := New(Config{Dim: 2, K: 4, Seed: 1, Shards: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	postRecords(t, ts, genRecords(8, 64))

	hits := reg.Counter(MetricReadCacheHits, "cache", "stats")

	_, body1 := getWith(t, ts.URL+"/v1/stats", nil)
	h0 := hits.Value()
	_, body2 := getWith(t, ts.URL+"/v1/stats", nil)
	if !bytes.Equal(body1, body2) {
		t.Fatal("memoized stats body differs")
	}
	if hits.Value() != h0+1 {
		t.Errorf("repeat stats fetch: hits %d->%d, want +1", h0, hits.Value())
	}
	// The by-shard variant is its own entry and must agree with the
	// merged numbers.
	_, byShard := getWith(t, ts.URL+"/v1/stats?by_shard", nil)
	var sr statsResponse
	if err := json.Unmarshal(byShard, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Records != 64 || len(sr.ByShard) != 2 {
		t.Fatalf("by_shard stats %+v", sr)
	}
	var shardRecords int
	for _, st := range sr.ByShard {
		shardRecords += st.Records
	}
	if shardRecords != sr.Records {
		t.Errorf("per-shard records sum to %d, merged says %d", shardRecords, sr.Records)
	}

	_, hb := getWith(t, ts.URL+"/healthz", nil)
	var hr healthResponse
	if err := json.Unmarshal(hb, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Generation != 64 {
		t.Errorf("healthz generation %d after 64 records, want 64", hr.Generation)
	}
	postRecords(t, ts, genRecords(9, 3))
	_, hb2 := getWith(t, ts.URL+"/healthz", nil)
	var hr2 healthResponse
	if err := json.Unmarshal(hb2, &hr2); err != nil {
		t.Fatal(err)
	}
	if hr2.Generation != 67 {
		t.Errorf("healthz generation %d after 67 records, want 67", hr2.Generation)
	}
	_, body3 := getWith(t, ts.URL+"/v1/stats", nil)
	if bytes.Equal(body1, body3) {
		t.Error("stats unchanged after a write")
	}
}

func TestAuditMemoized(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := New(Config{Dim: 2, K: 4, Seed: 1, Shards: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	postRecords(t, ts, genRecords(10, 72))

	hits := reg.Counter(MetricReadCacheHits, "cache", "audit")
	runs := reg.Counter("condense_audit_runs_total")
	rep1, err := s.Audit()
	if err != nil {
		t.Fatal(err)
	}
	h0, r0 := hits.Value(), runs.Value()
	rep2, err := s.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep1 != rep2 {
		t.Error("unchanged state recomputed the audit report")
	}
	if hits.Value() != h0+1 {
		t.Errorf("repeat audit: hits %d->%d, want +1", h0, hits.Value())
	}
	// Publishing still happens per call, so the watchdog's run counter
	// keeps its cadence even on memo hits.
	if runs.Value() <= r0 {
		t.Error("memoized audit skipped publishing")
	}
	// New records move the generation and the reservoir: recompute.
	postRecords(t, ts, genRecords(11, 6))
	rep3, err := s.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep3 == rep1 {
		t.Error("audit not recomputed after a write")
	}
}

// FuzzEtagMatch fuzzes the If-None-Match comparison against the
// invariants RFC 9110 §13.1.2 pins down, seeded with the conditional-GET
// cases TestCheckpointETag drives over HTTP.
func FuzzEtagMatch(f *testing.F) {
	etag := `"42"`
	for _, seed := range [][2]string{
		{etag, etag},             // exact match
		{"*", etag},              // wildcard
		{`"zzz", ` + etag, etag}, // list member
		{"W/" + etag, etag},      // weak comparison
		{`"not-it"`, etag},       // no match
		{"", etag},               // empty header
		{" W/\"a\" , \"b\"", `"b"`},
		{`"a,b"`, `"a,b"`}, // comma inside the opaque tag
		{"W/", "W/"},
	} {
		f.Add(seed[0], seed[1])
	}
	f.Fuzz(func(t *testing.T, header, etag string) {
		got := etagMatch(header, etag)

		// An empty header never matches anything.
		if header == "" && got {
			t.Fatalf("etagMatch(%q, %q) = true for an empty header", header, etag)
		}
		// A lone "*" matches every representation.
		if header == "*" && !got {
			t.Fatalf("etagMatch(*, %q) = false", etag)
		}
		// Self-match: a comma-free, space-trimmed tag always matches a
		// header consisting of exactly itself (weak comparison makes W/
		// prefixes irrelevant).
		if etag != "" && !strings.Contains(etag, ",") && strings.TrimSpace(etag) == etag {
			if !etagMatch(etag, etag) {
				t.Fatalf("etagMatch(%q, %q) = false for self", etag, etag)
			}
		}
		// Weak comparison ignores one W/ prefix on the etag: adding it to
		// an unprefixed tag never changes the verdict.
		if !strings.HasPrefix(etag, "W/") && got != etagMatch(header, "W/"+etag) {
			t.Fatalf("etagMatch(%q, %q) != etagMatch(%q, W/%q)", header, etag, header, etag)
		}
		// Appending a list member never un-matches an already matching
		// header.
		if got && !etagMatch(header+`, "other"`, etag) {
			t.Fatalf("appending a member to %q lost the match on %q", header, etag)
		}
	})
}
