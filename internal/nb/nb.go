// Package nb implements a Gaussian naive Bayes classifier with two
// training paths:
//
//   - Train fits the classifier on records, like any other learner — the
//     "unmodified algorithm on anonymized data" path of the paper;
//   - FromGroups fits it *directly from condensed group statistics*,
//     with no synthesis step at all. The class-conditional means and
//     variances a Gaussian NB needs are exactly the first two moments the
//     condensation retains per group (and merging groups is exact), so
//     this path demonstrates that the paper's H set is itself a queryable
//     mining substrate for moment-based algorithms — the anonymized
//     records are only needed for algorithms that want actual points.
//
// The two paths produce identical models up to floating-point round-off
// when FromGroups receives the condensation of the training records,
// which the tests assert.
package nb

import (
	"errors"
	"fmt"
	"math"

	"condensation/internal/dataset"
	"condensation/internal/mat"
	"condensation/internal/stats"
)

// varianceFloor keeps degenerate (zero-variance) attributes from
// producing infinite log-densities; it acts like a tiny measurement jitter.
const varianceFloor = 1e-9

// Classifier is a fitted Gaussian naive Bayes model.
type Classifier struct {
	dim     int
	priors  []float64    // per class; zero for absent classes
	means   []mat.Vector // per class
	vars    []mat.Vector // per class, floored
	present []bool       // class has training mass
}

// Train fits the classifier on a classification data set.
func Train(train *dataset.Dataset) (*Classifier, error) {
	if train.Task != dataset.Classification {
		return nil, fmt.Errorf("nb: needs a classification data set, got %v", train.Task)
	}
	if err := train.Validate(); err != nil {
		return nil, fmt.Errorf("nb: training data: %w", err)
	}
	if train.Len() == 0 {
		return nil, errors.New("nb: empty training data")
	}
	// Build per-class moment groups, then defer to the statistics path —
	// one code path to test, and the equivalence is by construction.
	classGroups := make(map[int][]*stats.Group)
	byClass := train.ByClass()
	for label, idx := range byClass {
		g := stats.NewGroup(train.Dim())
		for _, i := range idx {
			if err := g.Add(train.X[i]); err != nil {
				return nil, err
			}
		}
		classGroups[label] = []*stats.Group{g}
	}
	return FromGroups(train.NumClasses(), classGroups)
}

// FromGroups fits the classifier directly from per-class condensed group
// statistics: the groups of each class are merged (exactly) and the class
// mean, per-attribute variance, and prior follow from the merged moments.
// numClasses fixes the label space; classes without groups get zero prior
// and never win Predict.
func FromGroups(numClasses int, classGroups map[int][]*stats.Group) (*Classifier, error) {
	if numClasses < 1 {
		return nil, fmt.Errorf("nb: %d classes", numClasses)
	}
	if len(classGroups) == 0 {
		return nil, errors.New("nb: no group statistics")
	}
	dim := 0
	for _, groups := range classGroups {
		for _, g := range groups {
			if dim == 0 {
				dim = g.Dim()
			}
			if g.Dim() != dim {
				return nil, fmt.Errorf("nb: mixed group dimensions %d and %d", dim, g.Dim())
			}
		}
	}
	if dim == 0 {
		return nil, errors.New("nb: all classes have empty group lists")
	}
	c := &Classifier{
		dim:     dim,
		priors:  make([]float64, numClasses),
		means:   make([]mat.Vector, numClasses),
		vars:    make([]mat.Vector, numClasses),
		present: make([]bool, numClasses),
	}
	var total int
	counts := make([]int, numClasses)
	for label, groups := range classGroups {
		if label < 0 || label >= numClasses {
			return nil, fmt.Errorf("nb: label %d outside [0,%d)", label, numClasses)
		}
		if len(groups) == 0 {
			continue
		}
		merged := stats.NewGroup(dim)
		for _, g := range groups {
			if err := merged.Merge(g); err != nil {
				return nil, fmt.Errorf("nb: class %d: %w", label, err)
			}
		}
		if merged.N() == 0 {
			continue
		}
		mean, err := merged.Mean()
		if err != nil {
			return nil, err
		}
		variance := make(mat.Vector, dim)
		for j := 0; j < dim; j++ {
			v, err := merged.Variance(j)
			if err != nil {
				return nil, err
			}
			if v < varianceFloor {
				v = varianceFloor
			}
			variance[j] = v
		}
		c.means[label] = mean
		c.vars[label] = variance
		c.present[label] = true
		counts[label] = merged.N()
		total += merged.N()
	}
	if total == 0 {
		return nil, errors.New("nb: no training mass")
	}
	for label := range c.priors {
		c.priors[label] = float64(counts[label]) / float64(total)
	}
	return c, nil
}

// Dim returns the attribute dimensionality.
func (c *Classifier) Dim() int { return c.dim }

// LogPosterior returns the unnormalized log posterior of class label for
// record x, or -Inf for absent classes.
func (c *Classifier) LogPosterior(label int, x mat.Vector) (float64, error) {
	if label < 0 || label >= len(c.priors) {
		return 0, fmt.Errorf("nb: label %d outside [0,%d)", label, len(c.priors))
	}
	if len(x) != c.dim {
		return 0, fmt.Errorf("nb: query dimension %d, want %d", len(x), c.dim)
	}
	if !c.present[label] {
		return math.Inf(-1), nil
	}
	score := math.Log(c.priors[label])
	mean, variance := c.means[label], c.vars[label]
	for j, v := range x {
		dev := v - mean[j]
		score += -0.5*math.Log(2*math.Pi*variance[j]) - dev*dev/(2*variance[j])
	}
	return score, nil
}

// Predict returns the maximum-posterior class for x.
func (c *Classifier) Predict(x mat.Vector) (int, error) {
	if len(x) != c.dim {
		return 0, fmt.Errorf("nb: query dimension %d, want %d", len(x), c.dim)
	}
	if !x.IsFinite() {
		return 0, errors.New("nb: query has non-finite values")
	}
	best, bestScore := -1, math.Inf(-1)
	for label := range c.priors {
		if !c.present[label] {
			continue
		}
		score, err := c.LogPosterior(label, x)
		if err != nil {
			return 0, err
		}
		if score > bestScore {
			best, bestScore = label, score
		}
	}
	if best < 0 {
		return 0, errors.New("nb: no trained classes")
	}
	return best, nil
}

// PredictAll classifies every record of a data set, in order.
func (c *Classifier) PredictAll(test *dataset.Dataset) ([]int, error) {
	out := make([]int, test.Len())
	for i, x := range test.X {
		l, err := c.Predict(x)
		if err != nil {
			return nil, fmt.Errorf("nb: record %d: %w", i, err)
		}
		out[i] = l
	}
	return out, nil
}

// Accuracy is a convenience scorer.
func (c *Classifier) Accuracy(test *dataset.Dataset) (float64, error) {
	preds, err := c.PredictAll(test)
	if err != nil {
		return 0, err
	}
	if len(preds) == 0 {
		return 0, errors.New("nb: empty test data")
	}
	correct := 0
	for i, p := range preds {
		if p == test.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(preds)), nil
}
