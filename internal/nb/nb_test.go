package nb

import (
	"math"
	"testing"

	"condensation/internal/core"
	"condensation/internal/datagen"
	"condensation/internal/dataset"
	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/stats"
)

func separable(seed uint64, perClass int) *dataset.Dataset {
	r := rng.New(seed)
	ds := &dataset.Dataset{
		Task:       dataset.Classification,
		Attrs:      []string{"x", "y"},
		ClassNames: []string{"a", "b"},
	}
	for i := 0; i < perClass; i++ {
		ds.X = append(ds.X, mat.Vector{r.Norm(), r.Norm()})
		ds.Labels = append(ds.Labels, 0)
		ds.X = append(ds.X, mat.Vector{6 + r.Norm(), 6 + r.Norm()})
		ds.Labels = append(ds.Labels, 1)
	}
	return ds
}

func TestTrainSeparable(t *testing.T) {
	train := separable(1, 100)
	test := separable(2, 30)
	c, err := Train(train)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := c.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.99 {
		t.Errorf("accuracy %g on separable data", acc)
	}
}

// The headline equivalence: a classifier fitted from the condensation's
// group statistics (no synthesis!) matches one fitted on raw records,
// because merging groups reproduces the per-class moments exactly.
func TestFromGroupsMatchesTrainExactly(t *testing.T) {
	train := separable(3, 60)
	direct, err := Train(train)
	if err != nil {
		t.Fatal(err)
	}
	// Condense each class and hand the group statistics over.
	classGroups := make(map[int][]*stats.Group)
	r := rng.New(4)
	for label, idx := range train.ByClass() {
		recs := make([]mat.Vector, len(idx))
		for i, ri := range idx {
			recs[i] = train.X[ri]
		}
		cond, err := core.Static(recs, 10, r.Split(), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		classGroups[label] = cond.Groups()
	}
	fromStats, err := FromGroups(train.NumClasses(), classGroups)
	if err != nil {
		t.Fatal(err)
	}
	// Compare model predictions and log-posteriors on a probe grid.
	probe := separable(5, 40)
	for i, x := range probe.X {
		pd, err := direct.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := fromStats.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if pd != ps {
			t.Fatalf("record %d: direct predicts %d, statistics-path predicts %d", i, pd, ps)
		}
		for label := 0; label < 2; label++ {
			ld, err := direct.LogPosterior(label, x)
			if err != nil {
				t.Fatal(err)
			}
			ls, err := fromStats.LogPosterior(label, x)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(ld-ls) > 1e-6*(1+math.Abs(ld)) {
				t.Fatalf("log-posterior differs: %g vs %g", ld, ls)
			}
		}
	}
}

func TestNBOnAnonymizedPima(t *testing.T) {
	ds := datagen.Pima(6)
	r := rng.New(7)
	train, test, err := ds.TrainTestSplit(0.75, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	orig, err := Train(train)
	if err != nil {
		t.Fatal(err)
	}
	origAcc, err := orig.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	anon, _, err := core.Anonymize(train, core.AnonymizeConfig{K: 15, Mode: core.ModeStatic}, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	anonClf, err := Train(anon)
	if err != nil {
		t.Fatal(err)
	}
	anonAcc, err := anonClf.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if anonAcc < origAcc-0.08 {
		t.Errorf("NB on anonymized %.4f vs original %.4f", anonAcc, origAcc)
	}
}

func TestZeroVarianceAttribute(t *testing.T) {
	ds := &dataset.Dataset{
		Task:   dataset.Classification,
		X:      []mat.Vector{{1, 0}, {1, 1}, {1, 10}, {1, 11}},
		Labels: []int{0, 0, 1, 1},
	}
	c, err := Train(ds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Predict(mat.Vector{1, 10.5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("Predict = %d, want 1", got)
	}
}

func TestAbsentClassNeverWins(t *testing.T) {
	groups := map[int][]*stats.Group{}
	g := stats.NewGroup(1)
	for _, v := range []float64{1, 2, 3} {
		if err := g.Add(mat.Vector{v}); err != nil {
			t.Fatal(err)
		}
	}
	groups[0] = []*stats.Group{g}
	c, err := FromGroups(3, groups) // classes 1, 2 absent
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Predict(mat.Vector{2})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("Predict = %d, want 0", got)
	}
	lp, err := c.LogPosterior(1, mat.Vector{2})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(lp, -1) {
		t.Errorf("absent class log posterior = %g, want -Inf", lp)
	}
}

func TestTrainErrors(t *testing.T) {
	reg := &dataset.Dataset{Task: dataset.Regression, X: []mat.Vector{{1}}, Targets: []float64{1}}
	if _, err := Train(reg); err == nil {
		t.Error("regression data accepted")
	}
	empty := &dataset.Dataset{Task: dataset.Classification}
	if _, err := Train(empty); err == nil {
		t.Error("empty data accepted")
	}
	bad := separable(8, 3)
	bad.Labels = bad.Labels[:2]
	if _, err := Train(bad); err == nil {
		t.Error("invalid data accepted")
	}
}

func TestFromGroupsErrors(t *testing.T) {
	if _, err := FromGroups(0, nil); err == nil {
		t.Error("0 classes accepted")
	}
	if _, err := FromGroups(2, map[int][]*stats.Group{}); err == nil {
		t.Error("no groups accepted")
	}
	g1 := stats.NewGroup(1)
	g2 := stats.NewGroup(2)
	_ = g1.Add(mat.Vector{1})
	_ = g2.Add(mat.Vector{1, 2})
	if _, err := FromGroups(2, map[int][]*stats.Group{0: {g1}, 1: {g2}}); err == nil {
		t.Error("mixed dimensions accepted")
	}
	if _, err := FromGroups(1, map[int][]*stats.Group{5: {g1}}); err == nil {
		t.Error("out-of-range label accepted")
	}
	emptyGroups := map[int][]*stats.Group{0: {}}
	if _, err := FromGroups(1, emptyGroups); err == nil {
		t.Error("all-empty group lists accepted")
	}
}

func TestPredictErrors(t *testing.T) {
	c, err := Train(separable(9, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict(mat.Vector{1}); err == nil {
		t.Error("wrong dimension accepted")
	}
	if _, err := c.Predict(mat.Vector{1, math.NaN()}); err == nil {
		t.Error("NaN query accepted")
	}
	if _, err := c.LogPosterior(99, mat.Vector{1, 2}); err == nil {
		t.Error("bad label accepted")
	}
	if c.Dim() != 2 {
		t.Errorf("Dim = %d", c.Dim())
	}
}
