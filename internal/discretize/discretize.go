// Package discretize converts numeric records into categorical bins,
// enabling itemset-style mining (association rules) on the same data the
// condensation approach anonymizes. The paper's discussion of the
// perturbation approach notes that multi-variate reconstruction is only
// feasible for sparse categorical data such as market baskets; the
// condensation route needs no such special case — the anonymized numeric
// records are simply discretized like the originals and any categorical
// algorithm runs on them.
package discretize

import (
	"errors"
	"fmt"
	"sort"

	"condensation/internal/mat"
)

// Discretizer maps each numeric attribute to a bin index using fitted
// per-attribute cut points: value v falls in bin i when
// cuts[i−1] < v ≤ cuts[i] (bin 0 has no lower bound, the last bin no
// upper bound).
type Discretizer struct {
	// cuts[j] holds the ascending interior cut points of attribute j;
	// len(cuts[j]) + 1 is the bin count.
	cuts [][]float64
}

// EquiWidth fits a discretizer with bins of equal value range per
// attribute. Constant attributes get a single bin.
func EquiWidth(records []mat.Vector, bins int) (*Discretizer, error) {
	if err := validate(records, bins); err != nil {
		return nil, err
	}
	d := len(records[0])
	dz := &Discretizer{cuts: make([][]float64, d)}
	for j := 0; j < d; j++ {
		lo, hi := records[0][j], records[0][j]
		for _, x := range records[1:] {
			if x[j] < lo {
				lo = x[j]
			}
			if x[j] > hi {
				hi = x[j]
			}
		}
		if hi == lo {
			dz.cuts[j] = nil // one bin
			continue
		}
		width := (hi - lo) / float64(bins)
		cuts := make([]float64, bins-1)
		for b := range cuts {
			cuts[b] = lo + width*float64(b+1)
		}
		dz.cuts[j] = cuts
	}
	return dz, nil
}

// EquiDepth fits a discretizer with (approximately) equal record counts
// per bin, using sample quantiles as cut points. Duplicate quantiles (from
// heavily tied data) are collapsed, so some attributes may end with fewer
// bins than requested.
func EquiDepth(records []mat.Vector, bins int) (*Discretizer, error) {
	if err := validate(records, bins); err != nil {
		return nil, err
	}
	d := len(records[0])
	dz := &Discretizer{cuts: make([][]float64, d)}
	col := make([]float64, len(records))
	for j := 0; j < d; j++ {
		for i, x := range records {
			col[i] = x[j]
		}
		sort.Float64s(col)
		var cuts []float64
		for b := 1; b < bins; b++ {
			q := col[(b*len(col))/bins]
			if len(cuts) == 0 || q > cuts[len(cuts)-1] {
				cuts = append(cuts, q)
			}
		}
		dz.cuts[j] = cuts
	}
	return dz, nil
}

func validate(records []mat.Vector, bins int) error {
	if len(records) == 0 {
		return errors.New("discretize: no records")
	}
	if bins < 2 {
		return fmt.Errorf("discretize: %d bins, need ≥ 2", bins)
	}
	d := len(records[0])
	if d == 0 {
		return errors.New("discretize: zero-dimensional records")
	}
	for i, x := range records {
		if len(x) != d {
			return fmt.Errorf("discretize: record %d has dimension %d, want %d", i, len(x), d)
		}
		if !x.IsFinite() {
			return fmt.Errorf("discretize: record %d has non-finite values", i)
		}
	}
	return nil
}

// Dim returns the number of attributes the discretizer was fitted on.
func (dz *Discretizer) Dim() int { return len(dz.cuts) }

// Bins returns the bin count of attribute j.
func (dz *Discretizer) Bins(j int) int { return len(dz.cuts[j]) + 1 }

// MaxBins returns the largest per-attribute bin count — useful for
// computing dense item identifiers.
func (dz *Discretizer) MaxBins() int {
	max := 1
	for j := range dz.cuts {
		if b := dz.Bins(j); b > max {
			max = b
		}
	}
	return max
}

// Bin returns the bin index of value v on attribute j via binary search:
// the smallest i with v ≤ cuts[i], or the last bin when v exceeds every
// cut — implementing the documented (cuts[i−1], cuts[i]] intervals.
func (dz *Discretizer) Bin(j int, v float64) int {
	return sort.SearchFloat64s(dz.cuts[j], v)
}

// Transform maps a record to its per-attribute bin indices.
func (dz *Discretizer) Transform(x mat.Vector) ([]int, error) {
	if len(x) != len(dz.cuts) {
		return nil, fmt.Errorf("discretize: record dimension %d, want %d", len(x), len(dz.cuts))
	}
	out := make([]int, len(x))
	for j, v := range x {
		out[j] = dz.Bin(j, v)
	}
	return out, nil
}

// TransformAll maps every record to bin indices.
func (dz *Discretizer) TransformAll(records []mat.Vector) ([][]int, error) {
	out := make([][]int, len(records))
	for i, x := range records {
		t, err := dz.Transform(x)
		if err != nil {
			return nil, fmt.Errorf("discretize: record %d: %w", i, err)
		}
		out[i] = t
	}
	return out, nil
}

// Items converts a record into a transaction of dense item identifiers:
// item = attribute · maxBins + bin. All attributes contribute one item, so
// a transaction always has Dim() items.
func (dz *Discretizer) Items(x mat.Vector) ([]int, error) {
	binsPer := dz.MaxBins()
	bins, err := dz.Transform(x)
	if err != nil {
		return nil, err
	}
	items := make([]int, len(bins))
	for j, b := range bins {
		items[j] = j*binsPer + b
	}
	return items, nil
}

// ItemsAll converts every record into a transaction.
func (dz *Discretizer) ItemsAll(records []mat.Vector) ([][]int, error) {
	out := make([][]int, len(records))
	for i, x := range records {
		items, err := dz.Items(x)
		if err != nil {
			return nil, fmt.Errorf("discretize: record %d: %w", i, err)
		}
		out[i] = items
	}
	return out, nil
}
