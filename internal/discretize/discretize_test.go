package discretize

import (
	"math"
	"testing"

	"condensation/internal/mat"
	"condensation/internal/rng"
)

func TestEquiWidthBins(t *testing.T) {
	recs := []mat.Vector{{0}, {10}, {5}, {2.5}}
	dz, err := EquiWidth(recs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dz.Dim() != 1 || dz.Bins(0) != 4 {
		t.Fatalf("Dim=%d Bins=%d", dz.Dim(), dz.Bins(0))
	}
	cases := map[float64]int{0: 0, 2.4: 0, 2.6: 1, 5.0: 1, 5.1: 2, 7.6: 3, 10: 3, 99: 3, -5: 0}
	for v, want := range cases {
		if got := dz.Bin(0, v); got != want {
			t.Errorf("Bin(%g) = %d, want %d", v, got, want)
		}
	}
}

func TestEquiWidthConstantAttribute(t *testing.T) {
	recs := []mat.Vector{{7, 1}, {7, 2}, {7, 3}}
	dz, err := EquiWidth(recs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dz.Bins(0) != 1 {
		t.Errorf("constant attribute has %d bins, want 1", dz.Bins(0))
	}
	if dz.Bins(1) != 3 {
		t.Errorf("varying attribute has %d bins, want 3", dz.Bins(1))
	}
}

func TestEquiDepthBalanced(t *testing.T) {
	r := rng.New(1)
	recs := make([]mat.Vector, 1000)
	for i := range recs {
		recs[i] = mat.Vector{r.Exp(1)} // heavily skewed
	}
	dz, err := EquiDepth(recs, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, dz.Bins(0))
	for _, x := range recs {
		counts[dz.Bin(0, x[0])]++
	}
	for b, c := range counts {
		if c < 150 || c > 350 {
			t.Errorf("equi-depth bin %d holds %d of 1000 records", b, c)
		}
	}
}

func TestEquiDepthTiedData(t *testing.T) {
	recs := []mat.Vector{{1}, {1}, {1}, {1}, {2}}
	dz, err := EquiDepth(recs, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Ties collapse cuts; bin count must still be at least 1 and at most 4.
	if b := dz.Bins(0); b < 1 || b > 4 {
		t.Errorf("Bins = %d", b)
	}
}

func TestValidation(t *testing.T) {
	if _, err := EquiWidth(nil, 3); err == nil {
		t.Error("empty records accepted")
	}
	if _, err := EquiWidth([]mat.Vector{{1}}, 1); err == nil {
		t.Error("1 bin accepted")
	}
	if _, err := EquiWidth([]mat.Vector{{}}, 3); err == nil {
		t.Error("zero-dim accepted")
	}
	if _, err := EquiWidth([]mat.Vector{{1, 2}, {1}}, 3); err == nil {
		t.Error("ragged accepted")
	}
	if _, err := EquiDepth([]mat.Vector{{math.NaN()}}, 3); err == nil {
		t.Error("NaN accepted")
	}
}

func TestTransform(t *testing.T) {
	recs := []mat.Vector{{0, 0}, {10, 100}}
	dz, err := EquiWidth(recs, 2)
	if err != nil {
		t.Fatal(err)
	}
	bins, err := dz.Transform(mat.Vector{7, 20})
	if err != nil {
		t.Fatal(err)
	}
	if bins[0] != 1 || bins[1] != 0 {
		t.Errorf("Transform = %v, want [1 0]", bins)
	}
	if _, err := dz.Transform(mat.Vector{1}); err == nil {
		t.Error("wrong dimension accepted")
	}
}

func TestTransformAll(t *testing.T) {
	recs := []mat.Vector{{0}, {10}}
	dz, err := EquiWidth(recs, 2)
	if err != nil {
		t.Fatal(err)
	}
	all, err := dz.TransformAll(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0][0] != 0 || all[1][0] != 1 {
		t.Errorf("TransformAll = %v", all)
	}
}

func TestItemsDistinctAcrossAttributes(t *testing.T) {
	recs := []mat.Vector{{0, 0}, {10, 10}}
	dz, err := EquiWidth(recs, 2)
	if err != nil {
		t.Fatal(err)
	}
	items, err := dz.Items(mat.Vector{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Both attributes are in bin 0, but the item ids must differ.
	if items[0] == items[1] {
		t.Errorf("Items = %v, want distinct ids per attribute", items)
	}
	all, err := dz.ItemsAll(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("ItemsAll returned %d transactions", len(all))
	}
}

func TestMaxBins(t *testing.T) {
	recs := []mat.Vector{{7, 0}, {7, 10}}
	dz, err := EquiWidth(recs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dz.MaxBins() != 5 {
		t.Errorf("MaxBins = %d, want 5", dz.MaxBins())
	}
}
