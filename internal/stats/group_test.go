package stats

import (
	"math"
	"testing"
	"testing/quick"

	"condensation/internal/mat"
	"condensation/internal/rng"
)

func records2D() []mat.Vector {
	return []mat.Vector{
		{1, 2}, {3, 4}, {5, 0}, {-1, 2}, {2, 2},
	}
}

func TestNewGroupBadDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGroup(0) did not panic")
		}
	}()
	NewGroup(0)
}

func TestGroupAddAndMean(t *testing.T) {
	g := NewGroup(2)
	for _, x := range records2D() {
		if err := g.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	if g.N() != 5 {
		t.Fatalf("N = %d, want 5", g.N())
	}
	mean, err := g.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if !mean.Equal(mat.Vector{2, 2}, 1e-12) {
		t.Errorf("Mean = %v, want [2 2]", mean)
	}
}

func TestGroupAddDimensionMismatch(t *testing.T) {
	g := NewGroup(2)
	if err := g.Add(mat.Vector{1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestGroupAddNonFinite(t *testing.T) {
	g := NewGroup(2)
	if err := g.Add(mat.Vector{1, math.NaN()}); err == nil {
		t.Error("NaN record accepted")
	}
	if g.N() != 0 {
		t.Error("failed Add mutated the group")
	}
}

func TestGroupEmptyMeanCovariance(t *testing.T) {
	g := NewGroup(2)
	if _, err := g.Mean(); err == nil {
		t.Error("mean of empty group accepted")
	}
	if _, err := g.Covariance(); err == nil {
		t.Error("covariance of empty group accepted")
	}
	if _, err := g.Variance(0); err == nil {
		t.Error("variance of empty group accepted")
	}
}

// The paper's Observation 2 formula must agree with the numerically stable
// centred covariance.
func TestGroupCovarianceMatchesCentered(t *testing.T) {
	recs := records2D()
	g, err := FromRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Covariance()
	if err != nil {
		t.Fatal(err)
	}
	want, err := CovarianceMatrix(recs)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-10) {
		t.Errorf("sum-form covariance:\n%v\ncentred covariance:\n%v", got, want)
	}
}

func TestGroupCovarianceSingleRecord(t *testing.T) {
	g, err := FromRecords([]mat.Vector{{3, -1}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := g.Covariance()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(mat.New(2, 2), 1e-12) {
		t.Errorf("covariance of single record = %v, want zero", c)
	}
}

// Large-mean regime: the sum-of-products form suffers cancellation; verify
// the implementation floors negative variances instead of returning them.
func TestGroupCovarianceLargeMeanCancellation(t *testing.T) {
	g := NewGroup(1)
	base := 1e9
	for i := 0; i < 100; i++ {
		if err := g.Add(mat.Vector{base + float64(i%2)}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := g.Variance(0)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 {
		t.Errorf("variance %g < 0 under cancellation", v)
	}
	c, err := g.Covariance()
	if err != nil {
		t.Fatal(err)
	}
	if c.At(0, 0) < 0 {
		t.Errorf("covariance diagonal %g < 0 under cancellation", c.At(0, 0))
	}
}

func TestGroupMergeEqualsBulk(t *testing.T) {
	recs := records2D()
	g1, _ := FromRecords(recs[:2])
	g2, _ := FromRecords(recs[2:])
	if err := g1.Merge(g2); err != nil {
		t.Fatal(err)
	}
	bulk, _ := FromRecords(recs)
	if g1.N() != bulk.N() {
		t.Fatalf("merged N = %d, want %d", g1.N(), bulk.N())
	}
	if !g1.FirstOrderSums().Equal(bulk.FirstOrderSums(), 1e-12) {
		t.Error("merged Fs differs from bulk Fs")
	}
	if !g1.SecondOrderSums().Equal(bulk.SecondOrderSums(), 1e-12) {
		t.Error("merged Sc differs from bulk Sc")
	}
}

func TestGroupMergeDimensionMismatch(t *testing.T) {
	if err := NewGroup(2).Merge(NewGroup(3)); err == nil {
		t.Error("merge of mismatched dims accepted")
	}
}

func TestGroupCloneIndependent(t *testing.T) {
	g, _ := FromRecords(records2D())
	c := g.Clone()
	if err := c.Add(mat.Vector{100, 100}); err != nil {
		t.Fatal(err)
	}
	if g.N() == c.N() {
		t.Error("Clone shares state with original")
	}
}

func TestFromRecordsEmpty(t *testing.T) {
	if _, err := FromRecords(nil); err == nil {
		t.Error("FromRecords(nil) accepted")
	}
}

func TestFromMomentsValidation(t *testing.T) {
	fs := mat.Vector{1, 2}
	sc := mat.New(2, 2)
	if _, err := FromMoments(0, fs, sc); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := FromMoments(1, mat.Vector{}, mat.New(0, 0)); err == nil {
		t.Error("empty moments accepted")
	}
	if _, err := FromMoments(1, fs, mat.New(3, 3)); err == nil {
		t.Error("shape mismatch accepted")
	}
	bad := mat.New(2, 2)
	bad.Set(0, 0, math.Inf(1))
	if _, err := FromMoments(1, fs, bad); err == nil {
		t.Error("non-finite moments accepted")
	}
	g, err := FromMoments(3, fs, sc)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.Dim() != 2 {
		t.Errorf("FromMoments N=%d Dim=%d", g.N(), g.Dim())
	}
}

func TestFromMomentsCopiesInputs(t *testing.T) {
	fs := mat.Vector{1, 2}
	sc := mat.New(2, 2)
	g, err := FromMoments(1, fs, sc)
	if err != nil {
		t.Fatal(err)
	}
	fs[0] = 99
	sc.Set(0, 0, 99)
	if g.FirstOrderSums()[0] == 99 || g.SecondOrderSums().At(0, 0) == 99 {
		t.Error("FromMoments aliases caller data")
	}
}

func TestGroupEigenPSD(t *testing.T) {
	g, _ := FromRecords(records2D())
	e, err := g.Eigen()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range e.Values {
		if v < 0 {
			t.Errorf("clamped eigenvalue λ[%d] = %g < 0", i, v)
		}
	}
	c, _ := g.Covariance()
	if math.Abs(e.Values.Sum()-c.Trace()) > 1e-9*(1+c.Trace()) {
		t.Errorf("eigen sum %g != trace %g", e.Values.Sum(), c.Trace())
	}
}

func TestGroupBinaryRoundTrip(t *testing.T) {
	g, _ := FromRecords(records2D())
	data, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var h Group
	if err := h.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.Dim() != g.Dim() {
		t.Fatalf("round trip N=%d Dim=%d, want N=%d Dim=%d", h.N(), h.Dim(), g.N(), g.Dim())
	}
	if !h.FirstOrderSums().Equal(g.FirstOrderSums(), 0) {
		t.Error("Fs not preserved")
	}
	if !h.SecondOrderSums().Equal(g.SecondOrderSums(), 0) {
		t.Error("Sc not preserved")
	}
}

func TestGroupUnmarshalRejectsGarbage(t *testing.T) {
	var g Group
	if err := g.UnmarshalBinary(nil); err == nil {
		t.Error("nil accepted")
	}
	if err := g.UnmarshalBinary(make([]byte, 40)); err == nil {
		t.Error("bad magic accepted")
	}
	good, _ := FromRecords(records2D())
	data, _ := good.MarshalBinary()
	if err := g.UnmarshalBinary(data[:len(data)-1]); err == nil {
		t.Error("truncated encoding accepted")
	}
}

func TestGroupString(t *testing.T) {
	g := NewGroup(2)
	if s := g.String(); s == "" {
		t.Error("empty String()")
	}
	_ = g.Add(mat.Vector{1, 1})
	if s := g.String(); s == "" {
		t.Error("empty String() for nonempty group")
	}
}

// Property: Add order does not change the statistics (addition is
// commutative up to floating-point round-off).
func TestGroupAddOrderInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.IntN(20)
		recs := make([]mat.Vector, n)
		for i := range recs {
			recs[i] = mat.Vector{r.Uniform(-5, 5), r.Uniform(-5, 5), r.Uniform(-5, 5)}
		}
		g1, err := FromRecords(recs)
		if err != nil {
			return false
		}
		perm := r.Perm(n)
		g2 := NewGroup(3)
		for _, idx := range perm {
			if err := g2.Add(recs[idx]); err != nil {
				return false
			}
		}
		return g1.FirstOrderSums().Equal(g2.FirstOrderSums(), 1e-9) &&
			g1.SecondOrderSums().Equal(g2.SecondOrderSums(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the covariance from group moments is PSD after eigen clamping
// and symmetric by construction.
func TestGroupCovarianceSymmetricProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.IntN(30)
		g := NewGroup(4)
		for i := 0; i < n; i++ {
			x := mat.Vector{r.Norm(), r.Norm() * 3, r.Uniform(-1, 1), r.Norm() + 5}
			if err := g.Add(x); err != nil {
				return false
			}
		}
		c, err := g.Covariance()
		if err != nil {
			return false
		}
		return c.IsSymmetric(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: MeanInto is bit-identical to Mean for arbitrary groups, so the
// dynamic engine's in-place cached centroids can never diverge from
// freshly-computed ones.
func TestGroupMeanIntoMatchesMean(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		d := 1 + r.IntN(6)
		n := 1 + r.IntN(40)
		g := NewGroup(d)
		for i := 0; i < n; i++ {
			x := make(mat.Vector, d)
			for j := range x {
				x[j] = r.Uniform(-1e6, 1e6)
			}
			if err := g.Add(x); err != nil {
				return false
			}
		}
		want, err := g.Mean()
		if err != nil {
			return false
		}
		got := make(mat.Vector, d)
		if err := g.MeanInto(got); err != nil {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGroupMeanIntoErrors(t *testing.T) {
	g := NewGroup(3)
	if err := g.MeanInto(make(mat.Vector, 2)); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if err := g.MeanInto(make(mat.Vector, 3)); err == nil {
		t.Error("empty group accepted")
	}
}

func BenchmarkGroupAdd34(b *testing.B) {
	g := NewGroup(34)
	x := make(mat.Vector, 34)
	for i := range x {
		x[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Add(x); err != nil {
			b.Fatal(err)
		}
	}
}
