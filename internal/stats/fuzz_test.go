package stats

import (
	"testing"

	"condensation/internal/mat"
)

// FuzzGroupUnmarshal throws arbitrary bytes at the binary decoder: it must
// either reject the input or produce a structurally consistent group —
// never panic.
func FuzzGroupUnmarshal(f *testing.F) {
	good, err := FromRecords([]mat.Vector{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		f.Fatal(err)
	}
	seed, err := good.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, 20))
	f.Add(seed[:len(seed)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		var g Group
		if err := g.UnmarshalBinary(data); err != nil {
			return
		}
		if g.Dim() <= 0 {
			t.Fatalf("accepted group with dimension %d", g.Dim())
		}
		// Every accepted group must round-trip identically.
		out, err := g.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var h Group
		if err := h.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if h.Dim() != g.Dim() || h.N() != g.N() {
			t.Fatalf("round trip changed shape: %v vs %v", h, g)
		}
	})
}
