package stats

import (
	"math"
	"testing"

	"condensation/internal/mat"
)

func TestMeanVector(t *testing.T) {
	m, err := MeanVector([]mat.Vector{{1, 2}, {3, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(mat.Vector{2, 4}, 1e-12) {
		t.Errorf("MeanVector = %v", m)
	}
}

func TestMeanVectorErrors(t *testing.T) {
	if _, err := MeanVector(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := MeanVector([]mat.Vector{{1}, {1, 2}}); err == nil {
		t.Error("ragged input accepted")
	}
}

func TestCovarianceMatrixKnown(t *testing.T) {
	// Two perfectly correlated attributes.
	recs := []mat.Vector{{0, 0}, {1, 2}, {2, 4}}
	c, err := CovarianceMatrix(recs)
	if err != nil {
		t.Fatal(err)
	}
	// var(x) = 2/3, var(y) = 8/3, cov = 4/3.
	want := mat.FromRows([][]float64{{2.0 / 3, 4.0 / 3}, {4.0 / 3, 8.0 / 3}})
	if !c.Equal(want, 1e-12) {
		t.Errorf("CovarianceMatrix = %v, want %v", c, want)
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("Pearson = %g, want 1", r)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Pearson(x, neg)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("Pearson = %g, want -1", r)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("Pearson with constant sample = %g, want 0", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson(nil, nil); err == nil {
		t.Error("empty samples accepted")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if got := StdDev(nil); got != 0 {
		t.Errorf("StdDev(nil) = %g", got)
	}
}
