// Package stats implements the condensed-unit aggregate statistics at the
// heart of the condensation approach: for a group G of d-dimensional
// records it maintains
//
//	Fs_j(G)  — the first-order sums  Σ x_j          (one per attribute),
//	Sc_ij(G) — the second-order sums Σ x_i·x_j      (one per attribute pair),
//	n(G)     — the record count,
//
// exactly the triple (Sc(G), Fs(G), n(G)) the paper stores per group. The
// group mean and covariance follow from the paper's Observations 1 and 2:
//
//	mean_j = Fs_j/n
//	cov_ij = Sc_ij/n − Fs_i·Fs_j/n²
//
// The representation is additive: adding a record, merging two groups, and
// building a group from raw records are all exact integer-count sum
// updates, which is what makes the dynamic (streaming) maintenance of
// Section 3 of the paper possible without retaining any raw records.
package stats

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"condensation/internal/mat"
)

// Group is the aggregate statistics of one condensed group. The zero value
// is unusable; construct with NewGroup or FromMoments.
type Group struct {
	dim int
	n   int
	fs  mat.Vector  // first-order sums, length dim
	sc  *mat.Matrix // second-order sums, dim×dim symmetric
}

// NewGroup returns an empty group over d-dimensional records.
func NewGroup(d int) *Group {
	if d <= 0 {
		panic(fmt.Sprintf("stats: non-positive dimension %d", d))
	}
	return &Group{dim: d, fs: mat.NewVector(d), sc: mat.New(d, d)}
}

// FromRecords builds a group from raw records.
func FromRecords(records []mat.Vector) (*Group, error) {
	if len(records) == 0 {
		return nil, errors.New("stats: FromRecords with no records")
	}
	g := NewGroup(len(records[0]))
	for i, x := range records {
		if err := g.Add(x); err != nil {
			return nil, fmt.Errorf("stats: record %d: %w", i, err)
		}
	}
	return g, nil
}

// FromMoments builds a group directly from a count, first-order sums, and
// second-order sums. The split procedure of the dynamic algorithm uses this
// to materialize the two child groups from derived moments (Equation 3 of
// the paper). The inputs are copied.
func FromMoments(n int, fs mat.Vector, sc *mat.Matrix) (*Group, error) {
	d := len(fs)
	if d == 0 {
		return nil, errors.New("stats: FromMoments with empty first-order sums")
	}
	if n <= 0 {
		return nil, fmt.Errorf("stats: FromMoments with non-positive count %d", n)
	}
	if sc.Rows() != d || sc.Cols() != d {
		return nil, fmt.Errorf("stats: FromMoments shape mismatch: fs %d, sc %dx%d", d, sc.Rows(), sc.Cols())
	}
	if !fs.IsFinite() || !sc.IsFinite() {
		return nil, errors.New("stats: FromMoments with non-finite moments")
	}
	return &Group{dim: d, n: n, fs: fs.Clone(), sc: sc.Clone().Symmetrize()}, nil
}

// Dim returns the attribute dimensionality d.
func (g *Group) Dim() int { return g.dim }

// N returns n(G), the number of condensed records.
func (g *Group) N() int { return g.n }

// Add folds one record into the group: Fs += x, Sc += x·xᵀ, n += 1.
func (g *Group) Add(x mat.Vector) error {
	if len(x) != g.dim {
		return fmt.Errorf("stats: record dimension %d, group dimension %d", len(x), g.dim)
	}
	if !x.IsFinite() {
		return errors.New("stats: record has non-finite values")
	}
	for i, xi := range x {
		g.fs[i] += xi
		row := g.sc.Row(i)
		for j, xj := range x {
			row[j] += xi * xj
		}
	}
	g.n++
	return nil
}

// Merge folds the other group's statistics into g. Merging is exact: the
// result is identical to having added all underlying records to g.
func (g *Group) Merge(other *Group) error {
	if other.dim != g.dim {
		return fmt.Errorf("stats: merge dimension mismatch %d != %d", other.dim, g.dim)
	}
	g.fs.AddScaled(1, other.fs)
	for i := 0; i < g.dim; i++ {
		row, orow := g.sc.Row(i), other.sc.Row(i)
		for j := range row {
			row[j] += orow[j]
		}
	}
	g.n += other.n
	return nil
}

// Clone returns an independent deep copy of g.
func (g *Group) Clone() *Group {
	return &Group{dim: g.dim, n: g.n, fs: g.fs.Clone(), sc: g.sc.Clone()}
}

// FirstOrderSums returns a copy of Fs(G).
func (g *Group) FirstOrderSums() mat.Vector { return g.fs.Clone() }

// SecondOrderSums returns a copy of Sc(G).
func (g *Group) SecondOrderSums() *mat.Matrix { return g.sc.Clone() }

// Mean returns the group centroid Y(G) = Fs(G)/n(G) (Observation 1 /
// Equation 2 of the paper). It returns an error on an empty group.
func (g *Group) Mean() (mat.Vector, error) {
	if g.n == 0 {
		return nil, errors.New("stats: mean of empty group")
	}
	return g.fs.Scale(1 / float64(g.n)), nil
}

// MeanInto writes the group centroid into dst without allocating. It is
// the streaming hot path's update primitive: the dynamic engine folds a
// record into a group and refreshes its cached centroid in place, so
// steady-state ingestion performs no per-record allocation. The computed
// values are bit-identical to Mean() — both scale Fs by the same
// reciprocal — so cached and freshly-allocated centroids never diverge.
func (g *Group) MeanInto(dst mat.Vector) error {
	if len(dst) != g.dim {
		return fmt.Errorf("stats: destination dimension %d, group dimension %d", len(dst), g.dim)
	}
	if g.n == 0 {
		return errors.New("stats: mean of empty group")
	}
	inv := 1 / float64(g.n)
	for i, f := range g.fs {
		dst[i] = inv * f
	}
	return nil
}

// Covariance returns the population covariance matrix C(G) with entries
// C_ij = Sc_ij/n − Fs_i·Fs_j/n² (Observation 2 of the paper). The matrix is
// exactly symmetric; tiny negative diagonal entries arising from floating-
// point cancellation are floored at zero.
func (g *Group) Covariance() (*mat.Matrix, error) {
	if g.n == 0 {
		return nil, errors.New("stats: covariance of empty group")
	}
	n := float64(g.n)
	c := mat.New(g.dim, g.dim)
	for i := 0; i < g.dim; i++ {
		for j := i; j < g.dim; j++ {
			v := g.sc.At(i, j)/n - g.fs[i]*g.fs[j]/(n*n)
			if i == j && v < 0 {
				v = 0
			}
			c.Set(i, j, v)
			c.Set(j, i, v)
		}
	}
	return c, nil
}

// Variance returns the population variance of attribute j.
func (g *Group) Variance(j int) (float64, error) {
	if j < 0 || j >= g.dim {
		return 0, fmt.Errorf("stats: attribute %d out of range [0,%d)", j, g.dim)
	}
	if g.n == 0 {
		return 0, errors.New("stats: variance of empty group")
	}
	n := float64(g.n)
	v := g.sc.At(j, j)/n - g.fs[j]*g.fs[j]/(n*n)
	if v < 0 {
		v = 0
	}
	return v, nil
}

// Eigen returns the eigendecomposition C(G) = P Λ Pᵀ of the group
// covariance (Equation 1 of the paper), with eigenvalues clamped to be
// non-negative, ordered λ₁ ≥ … ≥ λ_d.
func (g *Group) Eigen() (mat.Eigen, error) {
	return g.EigenWith(nil)
}

// EigenWith is Eigen drawing the eigensolver's working storage from s (nil
// allocates locally) — bit-identical results, amortized workspaces for
// callers that decompose many groups, such as the dynamic split path.
func (g *Group) EigenWith(s *mat.EigenScratch) (mat.Eigen, error) {
	c, err := g.Covariance()
	if err != nil {
		return mat.Eigen{}, err
	}
	e, err := mat.SymEigenWith(c, s)
	if err != nil {
		return mat.Eigen{}, err
	}
	return e.ClampPSD(), nil
}

// groupMagic identifies the binary encoding of a Group.
const groupMagic = 0x434e4447 // "CNDG"

// MarshalBinary encodes the group as a portable little-endian byte stream:
// magic, dim, n, Fs, then the upper triangle of Sc.
func (g *Group) MarshalBinary() ([]byte, error) {
	tri := g.dim * (g.dim + 1) / 2
	buf := make([]byte, 0, 4+8+8+8*g.dim+8*tri)
	buf = binary.LittleEndian.AppendUint32(buf, groupMagic)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(g.dim))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(g.n))
	for _, x := range g.fs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	for i := 0; i < g.dim; i++ {
		for j := i; j < g.dim; j++ {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(g.sc.At(i, j)))
		}
	}
	return buf, nil
}

// UnmarshalBinary decodes a byte stream produced by MarshalBinary.
func (g *Group) UnmarshalBinary(data []byte) error {
	if len(data) < 20 {
		return errors.New("stats: truncated group encoding")
	}
	if binary.LittleEndian.Uint32(data[:4]) != groupMagic {
		return errors.New("stats: bad group encoding magic")
	}
	dim := int(binary.LittleEndian.Uint64(data[4:12]))
	n := int(binary.LittleEndian.Uint64(data[12:20]))
	if dim <= 0 || dim > 1<<20 {
		return fmt.Errorf("stats: implausible dimension %d in encoding", dim)
	}
	tri := dim * (dim + 1) / 2
	want := 20 + 8*dim + 8*tri
	if len(data) != want {
		return fmt.Errorf("stats: group encoding length %d, want %d", len(data), want)
	}
	fs := mat.NewVector(dim)
	off := 20
	for i := range fs {
		fs[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
		off += 8
	}
	sc := mat.New(dim, dim)
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
			off += 8
			sc.Set(i, j, v)
			sc.Set(j, i, v)
		}
	}
	g.dim, g.n, g.fs, g.sc = dim, n, fs, sc
	return nil
}

// String summarizes the group for logs and debugging.
func (g *Group) String() string {
	mean := "∅"
	if g.n > 0 {
		m, _ := g.Mean()
		mean = fmt.Sprintf("%.4g", []float64(m))
	}
	return fmt.Sprintf("Group{d=%d n=%d mean=%s}", g.dim, g.n, mean)
}
