package stats

import (
	"errors"
	"math"

	"condensation/internal/mat"
)

// MeanVector returns the per-attribute mean of a set of records.
func MeanVector(records []mat.Vector) (mat.Vector, error) {
	if len(records) == 0 {
		return nil, errors.New("stats: MeanVector of no records")
	}
	d := len(records[0])
	mean := mat.NewVector(d)
	for _, x := range records {
		if len(x) != d {
			return nil, errors.New("stats: ragged records")
		}
		mean.AddScaled(1, x)
	}
	return mean.Scale(1 / float64(len(records))), nil
}

// CovarianceMatrix returns the population covariance matrix of a set of
// records, computed in the numerically stable centred form
// (1/n)·Σ (x−µ)(x−µ)ᵀ. This is the reference implementation the Group
// sum-of-products form is tested against.
func CovarianceMatrix(records []mat.Vector) (*mat.Matrix, error) {
	mean, err := MeanVector(records)
	if err != nil {
		return nil, err
	}
	d := len(mean)
	c := mat.New(d, d)
	for _, x := range records {
		dev := x.Sub(mean)
		for i, di := range dev {
			row := c.Row(i)
			for j, dj := range dev {
				row[j] += di * dj
			}
		}
	}
	return c.Scale(1 / float64(len(records))), nil
}

// Pearson returns the Pearson correlation coefficient between two
// equal-length samples. It returns 0 when either sample has zero variance.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: Pearson length mismatch")
	}
	if len(x) == 0 {
		return 0, errors.New("stats: Pearson of empty samples")
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// StdDev returns the population standard deviation of a sample, or 0 for a
// sample of fewer than one element.
func StdDev(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	n := float64(len(x))
	var sum float64
	for _, v := range x {
		sum += v
	}
	mean := sum / n
	var ss float64
	for _, v := range x {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / n)
}
