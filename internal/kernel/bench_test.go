package kernel

import (
	"math/rand/v2"
	"testing"
)

func benchArena(rows, dim int) ([]float64, []float64) {
	r := rand.New(rand.NewPCG(21, 22))
	flat := make([]float64, rows*dim)
	for i := range flat {
		flat[i] = r.NormFloat64()
	}
	q := make([]float64, dim)
	for i := range q {
		q[i] = r.NormFloat64()
	}
	return flat, q
}

func BenchmarkKernelSweep(b *testing.B) {
	flat, q := benchArena(800, 8)
	dist := make([]float64, 800)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sweep(dist, q, flat)
	}
}

func BenchmarkKernelArgminFlat(b *testing.B) {
	flat, q := benchArena(800, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ArgminFlat(q, flat)
	}
}

func BenchmarkKernelArgminBatch(b *testing.B) {
	flat, _ := benchArena(800, 8)
	r := rand.New(rand.NewPCG(23, 24))
	qs := make([][]float64, 1024)
	for i := range qs {
		qs[i] = make([]float64, 8)
		for j := range qs[i] {
			qs[i][j] = r.NormFloat64()
		}
	}
	ids := make([]int, len(qs))
	ds := make([]float64, len(qs))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ArgminBatch(ids, ds, qs, flat, 8)
	}
}

func BenchmarkKernelMinF32(b *testing.B) {
	flat, q := benchArena(800, 8)
	flat32 := make([]float32, len(flat))
	for i, x := range flat {
		flat32[i] = float32(x)
	}
	q32 := make([]float32, len(q))
	for i, x := range q {
		q32[i] = float32(x)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MinF32(q32, flat32)
	}
}

func BenchmarkKernelMinCollectF32(b *testing.B) {
	flat, q := benchArena(800, 8)
	flat32 := make([]float32, len(flat))
	for i, x := range flat {
		flat32[i] = float32(x)
	}
	q32 := make([]float32, len(q))
	for i, x := range q {
		q32[i] = float32(x)
	}
	margin := MarginF32(8, 4)
	cand := make([]int, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, cand = MinCollectF32(q32, flat32, 2*margin, cand[:0])
	}
}
