// Package kernel holds the cache-blocked, bounds-check-eliminated distance
// kernels behind the condensation hot loops: one-query-vs-block and
// block-vs-block squared-distance sweeps over a flat row-major []float64
// coordinate arena (the knn.CentroidIndex arena layout), and the argmin /
// top-k reductions that every caller's lexicographic (distance, id)
// tie-break contract rests on.
//
// Bit-identity contract: every float64 kernel accumulates each squared
// distance with a SINGLE accumulator in ascending index order — the exact
// operation order of mat.Vector.DistSq — so results are byte-identical to
// the scalar loops they replace. Unrolling only reorders the independent
// subtract/multiply steps, never the additions into the accumulator.
// Early-exit pruning abandons a row only when its partial sum already
// EXCEEDS the incumbent best (strictly); a monotone non-decreasing partial
// sum then proves the full distance exceeds it too, so no row that could
// win — or tie and win on id — is ever skipped, and the winner's distance
// is always the fully accumulated value.
//
// The package is dependency-free on purpose: callers pass mat.Vector
// values through the ~[]float64 generic constraints or as plain slices.
package kernel

import (
	"math"
	"sort"
)

// DistSq returns the squared Euclidean distance between a and b,
// bit-identical to mat.Vector.DistSq. The slices must have equal length.
func DistSq(a, b []float64) float64 {
	if len(a) == 8 && len(b) == 8 {
		return distSq8(a, b)
	}
	return distSqGeneric(a, b)
}

// distSq8 is the fully unrolled dim-8 specialization (the benchmark and
// paper-experiment dimensionality). Single accumulator, ascending order.
func distSq8(a, b []float64) float64 {
	_ = a[7]
	_ = b[7]
	d0 := a[0] - b[0]
	s := d0 * d0
	d1 := a[1] - b[1]
	s += d1 * d1
	d2 := a[2] - b[2]
	s += d2 * d2
	d3 := a[3] - b[3]
	s += d3 * d3
	d4 := a[4] - b[4]
	s += d4 * d4
	d5 := a[5] - b[5]
	s += d5 * d5
	d6 := a[6] - b[6]
	s += d6 * d6
	d7 := a[7] - b[7]
	s += d7 * d7
	return s
}

// distSqGeneric is the any-dimension path, unrolled by four. The double
// bound in the loop condition lets the compiler drop the checks on both
// slices.
func distSqGeneric(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("kernel: dimension mismatch")
	}
	var s float64
	i := 0
	for ; i+3 < len(a) && i+3 < len(b); i += 4 {
		d0 := a[i] - b[i]
		s += d0 * d0
		d1 := a[i+1] - b[i+1]
		s += d1 * d1
		d2 := a[i+2] - b[i+2]
		s += d2 * d2
		d3 := a[i+3] - b[i+3]
		s += d3 * d3
	}
	for ; i < len(a) && i < len(b); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// distSqBound accumulates DistSq(a, b) but abandons once the partial sum
// strictly exceeds bound, returning (partial, false). When it returns
// (d, true), d is the bit-exact full distance. Abandoning on strict
// excess keeps exact ties alive for the caller's id tie-break.
func distSqBound(a, b []float64, bound float64) (float64, bool) {
	if len(a) != len(b) {
		panic("kernel: dimension mismatch")
	}
	var s float64
	i := 0
	for ; i+3 < len(a) && i+3 < len(b); i += 4 {
		d0 := a[i] - b[i]
		s += d0 * d0
		d1 := a[i+1] - b[i+1]
		s += d1 * d1
		d2 := a[i+2] - b[i+2]
		s += d2 * d2
		d3 := a[i+3] - b[i+3]
		s += d3 * d3
		if s > bound {
			return s, false
		}
	}
	for ; i < len(a) && i < len(b); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	if s > bound {
		return s, false
	}
	return s, true
}

// Sweep fills dist[i] with DistSq(q, row i of block), where block is a
// flat row-major arena of len(dist) rows of len(q) contiguous
// coordinates. Bit-identical to a gather loop over the same points.
func Sweep[Q ~[]float64](dist []float64, q Q, block []float64) {
	d := len(q)
	if len(block) != len(dist)*d {
		panic("kernel: arena size mismatch")
	}
	if d == 8 {
		q0, q1, q2, q3, q4, q5, q6, q7 := q[0], q[1], q[2], q[3], q[4], q[5], q[6], q[7]
		for i := range dist {
			r := block[i*8 : i*8+8]
			_ = r[7]
			d0 := r[0] - q0
			s := d0 * d0
			d1 := r[1] - q1
			s += d1 * d1
			d2 := r[2] - q2
			s += d2 * d2
			d3 := r[3] - q3
			s += d3 * d3
			d4 := r[4] - q4
			s += d4 * d4
			d5 := r[5] - q5
			s += d5 * d5
			d6 := r[6] - q6
			s += d6 * d6
			d7 := r[7] - q7
			s += d7 * d7
			dist[i] = s
		}
		return
	}
	for i := range dist {
		dist[i] = distSqGeneric(block[i*d:i*d+d], q)
	}
}

// ArgminFlat scans the rows of a flat arena for the nearest row to q,
// returning (row, distance) with ties broken toward the lower row index —
// the same answer as a strict `<` ascending scan of the gathered points.
// Returns (-1, +Inf) for an empty arena. Rows whose partial sum exceeds
// the incumbent best are abandoned early; the winner's distance is always
// the full bit-exact accumulation.
func ArgminFlat[Q ~[]float64](q Q, block []float64) (int, float64) {
	return argminFlatFrom(q, block, 0, -1, inf())
}

// ArgminFlatIDs folds the rows of a flat arena into an incumbent
// (bestID, bestD) under the lexicographic (distance, id) order, with row
// i of block carrying external identity ids[i]. It is bit-identical to
//
//	for i, id := range ids {
//	    d := DistSq(q, row i)
//	    if d < bestD || (d == bestD && id < bestID) { bestID, bestD = id, d }
//	}
//
// and is the kernel behind the CentroidIndex leaf scan and the AddBatch
// changed-group fold.
func ArgminFlatIDs[Q ~[]float64](q Q, block []float64, ids []int, bestID int, bestD float64) (int, float64) {
	d := len(q)
	if len(block) != len(ids)*d {
		panic("kernel: arena size mismatch")
	}
	if d == 8 {
		// Hand-inlined distSqBound with the query hoisted into locals:
		// at dim 8 the call boundary and the per-row query reloads are
		// the scan's dominant cost. One prune check at the halfway point.
		q0, q1, q2, q3, q4, q5, q6, q7 := q[0], q[1], q[2], q[3], q[4], q[5], q[6], q[7]
		for i, id := range ids {
			r := block[i*8 : i*8+8]
			_ = r[7]
			d0 := r[0] - q0
			s := d0 * d0
			d1 := r[1] - q1
			s += d1 * d1
			d2 := r[2] - q2
			s += d2 * d2
			d3 := r[3] - q3
			s += d3 * d3
			if s > bestD {
				continue
			}
			d4 := r[4] - q4
			s += d4 * d4
			d5 := r[5] - q5
			s += d5 * d5
			d6 := r[6] - q6
			s += d6 * d6
			d7 := r[7] - q7
			s += d7 * d7
			if s < bestD || (s == bestD && id < bestID) {
				bestID, bestD = id, s
			}
		}
		return bestID, bestD
	}
	for i, id := range ids {
		dd, ok := distSqBound(block[i*d:i*d+d], q, bestD)
		if !ok {
			continue
		}
		if dd < bestD || (dd == bestD && id < bestID) {
			bestID, bestD = id, dd
		}
	}
	return bestID, bestD
}

// ArgminIndexed is the gather form of ArgminFlatIDs for point sets that
// are not arena-backed (dirty lists, leftover centroids): it folds
// points[ids[i]] with identity ids[i] into the incumbent under the same
// lexicographic (distance, id) order.
func ArgminIndexed[Q ~[]float64, S ~[]float64](q Q, points []S, ids []int, bestID int, bestD float64) (int, float64) {
	for _, id := range ids {
		dd, ok := distSqBound(points[id], q, bestD)
		if !ok {
			continue
		}
		if dd < bestD || (dd == bestD && id < bestID) {
			bestID, bestD = id, dd
		}
	}
	return bestID, bestD
}

// argminFlatFrom folds arena rows with identities base, base+1, ... into
// the incumbent. Because row order IS id order here, an exact tie can
// never displace the incumbent, so the strict bound prune is complete.
func argminFlatFrom[Q ~[]float64](q Q, block []float64, base, bestID int, bestD float64) (int, float64) {
	d := len(q)
	rows := len(block) / d
	if len(block) != rows*d {
		panic("kernel: arena size mismatch")
	}
	if d == 8 {
		// Same hand-inlined form as ArgminFlatIDs; here row order is id
		// order, so the final strict `<` is the complete update condition.
		q0, q1, q2, q3, q4, q5, q6, q7 := q[0], q[1], q[2], q[3], q[4], q[5], q[6], q[7]
		for i := 0; i < rows; i++ {
			r := block[i*8 : i*8+8]
			_ = r[7]
			d0 := r[0] - q0
			s := d0 * d0
			d1 := r[1] - q1
			s += d1 * d1
			d2 := r[2] - q2
			s += d2 * d2
			d3 := r[3] - q3
			s += d3 * d3
			if s > bestD {
				continue
			}
			d4 := r[4] - q4
			s += d4 * d4
			d5 := r[5] - q5
			s += d5 * d5
			d6 := r[6] - q6
			s += d6 * d6
			d7 := r[7] - q7
			s += d7 * d7
			if s < bestD {
				bestID, bestD = base+i, s
			}
		}
		return bestID, bestD
	}
	for i := 0; i < rows; i++ {
		dd, ok := distSqBound(block[i*d:i*d+d], q, bestD)
		if ok && dd < bestD {
			bestID, bestD = base+i, dd
		}
	}
	return bestID, bestD
}

// argminBatchTileRows bounds how many arena rows a block-vs-block tile
// spans: 256 rows × 8 dims × 8 bytes = 16 KiB, small enough that the tile
// stays cache-resident while every query in the batch sweeps it.
const argminBatchTileRows = 256

// ArgminBatch is the block-vs-block sweep: for each query qs[i] it writes
// the (row, distance) of the nearest arena row into bestIDs[i] /
// bestDs[i], with ties toward the lower row. The arena is walked in
// row-major tiles so a tile is reused across all queries while cache-hot;
// because tiles are folded in ascending row order, each query's answer is
// bit-identical to an independent ArgminFlat scan.
func ArgminBatch[S ~[]float64](bestIDs []int, bestDs []float64, qs []S, block []float64, dim int) {
	rows := len(block) / dim
	if len(block) != rows*dim {
		panic("kernel: arena size mismatch")
	}
	for i := range bestIDs {
		bestIDs[i], bestDs[i] = -1, inf()
	}
	for lo := 0; lo < rows; lo += argminBatchTileRows {
		hi := lo + argminBatchTileRows
		if hi > rows {
			hi = rows
		}
		tile := block[lo*dim : hi*dim]
		for i, q := range qs {
			bestIDs[i], bestDs[i] = argminFlatFrom(q, tile, lo, bestIDs[i], bestDs[i])
		}
	}
}

// TopK arranges order so that its first k entries are the positions of
// the k smallest (dist[pos], ids[pos]) keys in ascending lexicographic
// order. It is the quickselect + sort reduction the static condensation
// backends use; ids carries the tie-breaking identity of each position
// (e.g. the alive record id). k larger than len(order) selects everything.
func TopK(order []int, dist []float64, ids []int, k int) {
	if k < len(order) {
		quickselect(order, dist, ids, k)
		order = order[:k]
	}
	sort.Slice(order, func(a, b int) bool {
		return lessByDist(dist, ids, order[a], order[b])
	})
}

// lessByDist is the lexicographic (distance, id) order over positions.
func lessByDist(dist []float64, ids []int, a, b int) bool {
	if dist[a] != dist[b] {
		return dist[a] < dist[b]
	}
	return ids[a] < ids[b]
}

// quickselect partitions order so its first k entries hold the k smallest
// keys (in arbitrary order), by median-of-three Lomuto partitioning.
func quickselect(order []int, dist []float64, ids []int, k int) {
	lo, hi := 0, len(order)
	for hi-lo > 1 {
		p := partition(order, dist, ids, lo, hi)
		switch {
		case p == k:
			return
		case p < k:
			lo = p + 1
		default:
			hi = p
		}
	}
}

// partition picks a median-of-three pivot, moves it to the end, and
// partitions [lo, hi) around it, returning the pivot's final position.
func partition(order []int, dist []float64, ids []int, lo, hi int) int {
	mid := lo + (hi-lo)/2
	last := hi - 1
	if lessByDist(dist, ids, order[mid], order[lo]) {
		order[mid], order[lo] = order[lo], order[mid]
	}
	if lessByDist(dist, ids, order[last], order[lo]) {
		order[last], order[lo] = order[lo], order[last]
	}
	if lessByDist(dist, ids, order[last], order[mid]) {
		order[last], order[mid] = order[mid], order[last]
	}
	order[mid], order[last] = order[last], order[mid]
	pivot := order[last]
	store := lo
	for i := lo; i < last; i++ {
		if lessByDist(dist, ids, order[i], pivot) {
			order[i], order[store] = order[store], order[i]
			store++
		}
	}
	order[store], order[last] = order[last], order[store]
	return store
}

// inf is the fold identity for argmin incumbents.
func inf() float64 {
	return math.Inf(1)
}
