package kernel

// Float32 pruning kernels. The float32 index mode stores a shadow copy of
// the routing arena in float32 and runs the O(G·d) sweep in single
// precision; exactness is recovered by collecting every row whose f32
// distance could round down to the true f64 minimum and re-verifying just
// those candidates in float64. Both passes below compute each row's f32
// distance with the identical operation order, so a row's distance is a
// single well-defined value across the min pass and the collect pass.

// F32Ulp is the unit roundoff of float32 (2⁻²⁴): every f32 operation's
// relative error bound, and the base of the pruning safety margin.
const F32Ulp = 1.0 / (1 << 24)

// MarginF32 bounds |d32 − d64| for a squared distance over dim
// coordinates with magnitudes ≤ maxAbs, where d32 is the float32-computed
// distance of f32-rounded inputs and d64 the exact float64 one. Each
// coordinate conversion contributes ≤ u·maxAbs, the subtract/multiply
// each ≤ u relative, and the dim-term summation compounds ≤ dim·u
// relative — so a per-term bound of (32u)·maxAbs² and a summation bound
// of (4·dim·u)·(dim·maxAbs²) cover it with room to spare:
//
//	margin = u · maxAbs² · (4·dim² + 32·dim)
//
// The constants are deliberately loose (×4 over the tight first-order
// bound); the margin only widens the candidate set, never affects the
// exact f64 answer.
func MarginF32(dim int, maxAbs float64) float64 {
	d := float64(dim)
	return F32Ulp * maxAbs * maxAbs * (4*d*d + 32*d)
}

// distSqF32 is the float32 squared distance: single accumulator,
// ascending index order, so both f32 passes agree bit-for-bit.
func distSqF32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("kernel: dimension mismatch")
	}
	var s float32
	i := 0
	for ; i+3 < len(a) && i+3 < len(b); i += 4 {
		d0 := a[i] - b[i]
		s += d0 * d0
		d1 := a[i+1] - b[i+1]
		s += d1 * d1
		d2 := a[i+2] - b[i+2]
		s += d2 * d2
		d3 := a[i+3] - b[i+3]
		s += d3 * d3
	}
	for ; i < len(a) && i < len(b); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// MinF32 returns the minimum float32 squared distance from q to the rows
// of a flat float32 arena. An empty arena returns +Inf. Rows whose partial
// sum already exceeds the incumbent minimum are abandoned early: float32
// partial sums of squares are non-decreasing under IEEE round-to-nearest
// (adding a non-negative term never rounds below the representable
// incumbent sum), so an abandoned row's full distance provably cannot be
// the minimum — the returned value is exactly the full-accumulation min.
func MinF32(q []float32, block []float32) float32 {
	d := len(q)
	rows := len(block) / d
	if len(block) != rows*d {
		panic("kernel: arena size mismatch")
	}
	min := float32Inf()
	if d == 8 {
		q0, q1, q2, q3, q4, q5, q6, q7 := q[0], q[1], q[2], q[3], q[4], q[5], q[6], q[7]
		for i := 0; i < rows; i++ {
			r := block[i*8 : i*8+8]
			_ = r[7]
			d0 := r[0] - q0
			s := d0 * d0
			d1 := r[1] - q1
			s += d1 * d1
			d2 := r[2] - q2
			s += d2 * d2
			d3 := r[3] - q3
			s += d3 * d3
			if s > min {
				continue
			}
			d4 := r[4] - q4
			s += d4 * d4
			d5 := r[5] - q5
			s += d5 * d5
			d6 := r[6] - q6
			s += d6 * d6
			d7 := r[7] - q7
			s += d7 * d7
			if s < min {
				min = s
			}
		}
		return min
	}
	for i := 0; i < rows; i++ {
		if dd := distSqF32(block[i*d:i*d+d], q); dd < min {
			min = dd
		}
	}
	return min
}

// CollectWithinF32 appends to cand the indices of every arena row whose
// float32 squared distance, widened to float64, is ≤ thr, in ascending
// row order, and returns the extended slice. With thr = min32 + 2·margin
// the result provably contains every row whose exact f64 distance equals
// the true minimum (see MarginF32), so an exact f64 re-verification of
// the candidates reproduces the full-precision lexicographic argmin.
// Rows are abandoned once their monotone partial sum exceeds thr (see
// MinF32); collected rows always carry the full-accumulation distance.
func CollectWithinF32(q []float32, block []float32, thr float64, cand []int) []int {
	d := len(q)
	rows := len(block) / d
	if len(block) != rows*d {
		panic("kernel: arena size mismatch")
	}
	if d == 8 {
		q0, q1, q2, q3, q4, q5, q6, q7 := q[0], q[1], q[2], q[3], q[4], q[5], q[6], q[7]
		for i := 0; i < rows; i++ {
			r := block[i*8 : i*8+8]
			_ = r[7]
			d0 := r[0] - q0
			s := d0 * d0
			d1 := r[1] - q1
			s += d1 * d1
			d2 := r[2] - q2
			s += d2 * d2
			d3 := r[3] - q3
			s += d3 * d3
			if float64(s) > thr {
				continue
			}
			d4 := r[4] - q4
			s += d4 * d4
			d5 := r[5] - q5
			s += d5 * d5
			d6 := r[6] - q6
			s += d6 * d6
			d7 := r[7] - q7
			s += d7 * d7
			if float64(s) <= thr {
				cand = append(cand, i)
			}
		}
		return cand
	}
	for i := 0; i < rows; i++ {
		if float64(distSqF32(block[i*d:i*d+d], q)) <= thr {
			cand = append(cand, i)
		}
	}
	return cand
}

// MinCollectF32 fuses the min sweep and the candidate collection into a
// single pass over the arena: it returns the exact full-accumulation
// float32 minimum, plus — appended to cand in ascending row order — every
// row whose distance, widened to float64, is ≤ the running minimum so far
// + slack. The running minimum only decreases during the sweep, so the
// collected set is a superset of {rows ≤ final-min + slack}: it still
// contains every row that could achieve the exact float64 minimum (see
// MarginF32 with slack = 2·margin), and the exact re-verification pass
// simply discards the extras. Rows whose monotone partial sum already
// exceeds the current threshold are abandoned (see MinF32): they can
// neither be collected nor improve the minimum.
func MinCollectF32(q []float32, block []float32, slack float64, cand []int) (float32, []int) {
	d := len(q)
	rows := len(block) / d
	if len(block) != rows*d {
		panic("kernel: arena size mismatch")
	}
	min := float32Inf()
	thr := float64(min)
	if d == 8 {
		q0, q1, q2, q3, q4, q5, q6, q7 := q[0], q[1], q[2], q[3], q[4], q[5], q[6], q[7]
		for i := 0; i < rows; i++ {
			r := block[i*8 : i*8+8]
			_ = r[7]
			d0 := r[0] - q0
			s := d0 * d0
			d1 := r[1] - q1
			s += d1 * d1
			d2 := r[2] - q2
			s += d2 * d2
			d3 := r[3] - q3
			s += d3 * d3
			if float64(s) > thr {
				continue
			}
			d4 := r[4] - q4
			s += d4 * d4
			d5 := r[5] - q5
			s += d5 * d5
			d6 := r[6] - q6
			s += d6 * d6
			d7 := r[7] - q7
			s += d7 * d7
			if float64(s) <= thr {
				cand = append(cand, i)
			}
			if s < min {
				min = s
				thr = float64(min) + slack
			}
		}
		return min, cand
	}
	for i := 0; i < rows; i++ {
		s := distSqF32(block[i*d:i*d+d], q)
		if float64(s) <= thr {
			cand = append(cand, i)
		}
		if s < min {
			min = s
			thr = float64(min) + slack
		}
	}
	return min, cand
}

// float32Inf avoids importing math for a constant.
func float32Inf() float32 {
	return float32(inf())
}
