package kernel

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

// refDistSq is the scalar reference: mat.Vector.DistSq's exact loop.
func refDistSq(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func randVec(r *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = r.NormFloat64() * 3
	}
	return v
}

// randBlock returns n rows of dimension d both as a flat arena and as a
// gathered point set, with deliberate exact duplicates so argmin ties are
// exercised.
func randBlock(r *rand.Rand, n, d int) ([]float64, [][]float64) {
	flat := make([]float64, 0, n*d)
	pts := make([][]float64, n)
	for i := range pts {
		var row []float64
		if i > 0 && r.IntN(4) == 0 {
			row = append([]float64(nil), pts[r.IntN(i)]...)
		} else {
			row = randVec(r, d)
		}
		pts[i] = row
		flat = append(flat, row...)
	}
	return flat, pts
}

func TestDistSqMatchesReference(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for _, d := range []int{1, 2, 3, 4, 5, 7, 8, 9, 12, 16, 31, 40} {
		for trial := 0; trial < 50; trial++ {
			a, b := randVec(r, d), randVec(r, d)
			got, want := DistSq(a, b), refDistSq(a, b)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("d=%d: DistSq=%x ref=%x", d, got, want)
			}
		}
	}
}

func TestSweepMatchesDistSq(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for _, d := range []int{1, 3, 8, 11} {
		flat, pts := randBlock(r, 57, d)
		q := randVec(r, d)
		dist := make([]float64, len(pts))
		Sweep(dist, q, flat)
		for i, p := range pts {
			if math.Float64bits(dist[i]) != math.Float64bits(refDistSq(q, p)) {
				t.Fatalf("d=%d row=%d: sweep mismatch", d, i)
			}
		}
	}
}

func TestArgminFlatMatchesScan(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	for _, d := range []int{1, 8, 9} {
		for trial := 0; trial < 30; trial++ {
			flat, pts := randBlock(r, 1+r.IntN(80), d)
			q := randVec(r, d)
			if trial%5 == 0 {
				// Query equal to an arena row: exact zero-distance ties.
				q = append([]float64(nil), pts[r.IntN(len(pts))]...)
			}
			wantID, wantD := -1, math.Inf(1)
			for i, p := range pts {
				if dd := refDistSq(q, p); dd < wantD {
					wantID, wantD = i, dd
				}
			}
			gotID, gotD := ArgminFlat(q, flat)
			if gotID != wantID || math.Float64bits(gotD) != math.Float64bits(wantD) {
				t.Fatalf("d=%d: got (%d,%v) want (%d,%v)", d, gotID, gotD, wantID, wantD)
			}
		}
	}
	if id, dd := ArgminFlat([]float64{1, 2}, nil); id != -1 || !math.IsInf(dd, 1) {
		t.Fatalf("empty arena: got (%d,%v)", id, dd)
	}
}

func TestArgminFlatIDsMatchesFold(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	for _, d := range []int{2, 8} {
		for trial := 0; trial < 40; trial++ {
			flat, pts := randBlock(r, 1+r.IntN(60), d)
			ids := make([]int, len(pts))
			for i := range ids {
				ids[i] = r.IntN(40) // duplicates and arbitrary order on purpose
			}
			q := randVec(r, d)
			if trial%4 == 0 {
				q = append([]float64(nil), pts[r.IntN(len(pts))]...)
			}
			seedID, seedD := 17, refDistSq(q, pts[0]) // a live incumbent
			wantID, wantD := seedID, seedD
			for i, p := range pts {
				dd := refDistSq(q, p)
				if dd < wantD || (dd == wantD && ids[i] < wantID) {
					wantID, wantD = ids[i], dd
				}
			}
			gotID, gotD := ArgminFlatIDs(q, flat, ids, seedID, seedD)
			if gotID != wantID || math.Float64bits(gotD) != math.Float64bits(wantD) {
				t.Fatalf("d=%d: got (%d,%v) want (%d,%v)", d, gotID, gotD, wantID, wantD)
			}
		}
	}
}

func TestArgminIndexedMatchesFold(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 10))
	_, pts := randBlock(r, 50, 8)
	for trial := 0; trial < 30; trial++ {
		ids := make([]int, r.IntN(len(pts)))
		for i := range ids {
			ids[i] = r.IntN(len(pts))
		}
		q := randVec(r, 8)
		wantID, wantD := -1, math.Inf(1)
		for _, id := range ids {
			dd := refDistSq(q, pts[id])
			if dd < wantD || (dd == wantD && id < wantID) {
				wantID, wantD = id, dd
			}
		}
		gotID, gotD := ArgminIndexed(q, pts, ids, -1, math.Inf(1))
		if gotID != wantID || math.Float64bits(gotD) != math.Float64bits(wantD) {
			t.Fatalf("got (%d,%v) want (%d,%v)", gotID, gotD, wantID, wantD)
		}
	}
}

func TestArgminBatchMatchesPerQuery(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 12))
	for _, rows := range []int{1, 7, 255, 256, 257, 700} {
		flat, _ := randBlock(r, rows, 8)
		qs := make([][]float64, 33)
		for i := range qs {
			qs[i] = randVec(r, 8)
		}
		// Some queries equal to arena rows for exact ties.
		copy(qs[0], flat[:8])
		ids := make([]int, len(qs))
		ds := make([]float64, len(qs))
		ArgminBatch(ids, ds, qs, flat, 8)
		for i, q := range qs {
			wantID, wantD := ArgminFlat(q, flat)
			if ids[i] != wantID || math.Float64bits(ds[i]) != math.Float64bits(wantD) {
				t.Fatalf("rows=%d q=%d: got (%d,%v) want (%d,%v)", rows, i, ids[i], ds[i], wantID, wantD)
			}
		}
	}
}

func TestTopKMatchesSort(t *testing.T) {
	r := rand.New(rand.NewPCG(13, 14))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.IntN(120)
		dist := make([]float64, n)
		ids := make([]int, n)
		for i := range dist {
			dist[i] = float64(r.IntN(12)) // heavy exact ties
			ids[i] = r.IntN(200)
		}
		k := 1 + r.IntN(n+3) // sometimes k > n
		order := make([]int, n)
		want := make([]int, n)
		for i := range order {
			order[i], want[i] = i, i
		}
		sort.SliceStable(want, func(a, b int) bool {
			return lessByDist(dist, ids, want[a], want[b])
		})
		TopK(order, dist, ids, k)
		top := k
		if top > n {
			top = n
		}
		for i := 0; i < top; i++ {
			g, w := order[i], want[i]
			if dist[g] != dist[w] || ids[g] != ids[w] {
				t.Fatalf("k=%d pos=%d: got key (%v,%d) want (%v,%d)", k, i, dist[g], ids[g], dist[w], ids[w])
			}
		}
	}
}

// TestF32CollectContainsExactArgmin is the safety-margin property test:
// for adversarial near-tie arenas the f32 candidate set must contain
// every row achieving the exact f64 minimum, so the f64 re-verification
// of candidates reproduces the full-precision lexicographic argmin.
func TestF32CollectContainsExactArgmin(t *testing.T) {
	r := rand.New(rand.NewPCG(15, 16))
	for trial := 0; trial < 300; trial++ {
		d := 1 + r.IntN(12)
		n := 2 + r.IntN(60)
		scale := math.Pow(10, float64(r.IntN(7)-3))
		pts := make([][]float64, n)
		maxAbs := 0.0
		base := randVec(r, d)
		for i := range pts {
			p := make([]float64, d)
			for j := range p {
				// Cluster tightly around base so f32 rounding collides
				// distances that f64 still separates.
				p[j] = (base[j] + r.NormFloat64()*1e-7) * scale
				if a := math.Abs(p[j]); a > maxAbs {
					maxAbs = a
				}
			}
			pts[i] = p
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = (base[j] + r.NormFloat64()*1e-7) * scale
			if a := math.Abs(q[j]); a > maxAbs {
				maxAbs = a
			}
		}
		flat32 := make([]float32, 0, n*d)
		for _, p := range pts {
			for _, x := range p {
				flat32 = append(flat32, float32(x))
			}
		}
		q32 := make([]float32, d)
		for j, x := range q {
			q32[j] = float32(x)
		}
		min32 := MinF32(q32, flat32)
		margin := MarginF32(d, maxAbs)
		cand := CollectWithinF32(q32, flat32, float64(min32)+2*margin, nil)

		// The fused single-pass kernel must find the identical minimum and
		// a candidate superset of the two-pass collection.
		fusedMin, fusedCand := MinCollectF32(q32, flat32, 2*margin, nil)
		if math.Float32bits(fusedMin) != math.Float32bits(min32) {
			t.Fatalf("trial %d: MinCollectF32 min %v, MinF32 %v", trial, fusedMin, min32)
		}
		inFused := make(map[int]bool, len(fusedCand))
		for _, id := range fusedCand {
			inFused[id] = true
		}
		for _, id := range cand {
			if !inFused[id] {
				t.Fatalf("trial %d: row %d within final threshold but missing from fused candidates", trial, id)
			}
		}

		wantID, wantD := -1, math.Inf(1)
		for i, p := range pts {
			if dd := refDistSq(q, p); dd < wantD {
				wantID, wantD = i, dd
			}
		}
		inCand := false
		gotID, gotD := -1, math.Inf(1)
		for _, id := range cand {
			dd := refDistSq(q, pts[id])
			if dd < gotD {
				gotID, gotD = id, dd
			}
			if id == wantID {
				inCand = true
			}
		}
		if !inCand {
			t.Fatalf("trial %d: exact argmin %d missing from %d candidates (margin %v)", trial, wantID, len(cand), margin)
		}
		if gotID != wantID || math.Float64bits(gotD) != math.Float64bits(wantD) {
			t.Fatalf("trial %d: candidate re-verify picked (%d,%v), exact (%d,%v)", trial, gotID, gotD, wantID, wantD)
		}
	}
}
