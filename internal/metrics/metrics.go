// Package metrics implements the quality measures of the paper's
// evaluation: classification accuracy (with a confusion matrix and derived
// scores), regression accuracy within a tolerance (the Abalone
// "age predicted within one year" measure), and the covariance
// compatibility coefficient µ — the statistical correlation between the
// covariance-matrix entries of the original and the anonymized data.
package metrics

import (
	"errors"
	"fmt"
	"math"

	"condensation/internal/dataset"
	"condensation/internal/mat"
	"condensation/internal/stats"
)

// Accuracy returns the fraction of predictions matching the truth.
func Accuracy(pred, truth []int) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("metrics: %d predictions for %d truths", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, errors.New("metrics: empty prediction set")
	}
	correct := 0
	for i := range pred {
		if pred[i] == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred)), nil
}

// ConfusionMatrix counts prediction outcomes: entry [t][p] is the number
// of records of true class t predicted as class p.
type ConfusionMatrix struct {
	counts [][]int
}

// NewConfusionMatrix tallies a confusion matrix over numClasses classes.
func NewConfusionMatrix(pred, truth []int, numClasses int) (*ConfusionMatrix, error) {
	if len(pred) != len(truth) {
		return nil, fmt.Errorf("metrics: %d predictions for %d truths", len(pred), len(truth))
	}
	if numClasses < 1 {
		return nil, fmt.Errorf("metrics: %d classes", numClasses)
	}
	cm := &ConfusionMatrix{counts: make([][]int, numClasses)}
	for i := range cm.counts {
		cm.counts[i] = make([]int, numClasses)
	}
	for i := range pred {
		if truth[i] < 0 || truth[i] >= numClasses || pred[i] < 0 || pred[i] >= numClasses {
			return nil, fmt.Errorf("metrics: record %d has labels (%d, %d) outside [0,%d)", i, truth[i], pred[i], numClasses)
		}
		cm.counts[truth[i]][pred[i]]++
	}
	return cm, nil
}

// At returns the count of true class t predicted as class p.
func (cm *ConfusionMatrix) At(t, p int) int { return cm.counts[t][p] }

// NumClasses returns the number of classes tallied.
func (cm *ConfusionMatrix) NumClasses() int { return len(cm.counts) }

// Accuracy returns the trace fraction of the confusion matrix.
func (cm *ConfusionMatrix) Accuracy() float64 {
	var correct, total int
	for t, row := range cm.counts {
		for p, n := range row {
			total += n
			if t == p {
				correct += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// PrecisionRecallF1 returns the per-class precision, recall, and F1 for
// class c. Undefined ratios (zero denominators) are reported as 0.
func (cm *ConfusionMatrix) PrecisionRecallF1(c int) (precision, recall, f1 float64) {
	var tp, fp, fn int
	for t, row := range cm.counts {
		for p, n := range row {
			switch {
			case t == c && p == c:
				tp += n
			case t != c && p == c:
				fp += n
			case t == c && p != c:
				fn += n
			}
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

// MacroF1 returns the unweighted mean F1 across classes.
func (cm *ConfusionMatrix) MacroF1() float64 {
	if len(cm.counts) == 0 {
		return 0
	}
	var sum float64
	for c := range cm.counts {
		_, _, f1 := cm.PrecisionRecallF1(c)
		sum += f1
	}
	return sum / float64(len(cm.counts))
}

// WithinTolerance returns the fraction of predictions within tol of the
// truth — the paper's Abalone measure with tol = 1 year.
func WithinTolerance(pred, truth []float64, tol float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("metrics: %d predictions for %d truths", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, errors.New("metrics: empty prediction set")
	}
	if tol < 0 {
		return 0, fmt.Errorf("metrics: negative tolerance %g", tol)
	}
	hits := 0
	for i := range pred {
		if math.Abs(pred[i]-truth[i]) <= tol {
			hits++
		}
	}
	return float64(hits) / float64(len(pred)), nil
}

// RMSE returns the root-mean-square error of predictions.
func RMSE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("metrics: %d predictions for %d truths", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, errors.New("metrics: empty prediction set")
	}
	var ss float64
	for i := range pred {
		d := pred[i] - truth[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(pred))), nil
}

// MAE returns the mean absolute error of predictions.
func MAE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("metrics: %d predictions for %d truths", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, errors.New("metrics: empty prediction set")
	}
	var sum float64
	for i := range pred {
		sum += math.Abs(pred[i] - truth[i])
	}
	return sum / float64(len(pred)), nil
}

// CovarianceCompatibility computes the paper's statistical compatibility
// coefficient µ between two data sets: the Pearson correlation between the
// paired covariance-matrix entries (o_ij, p_ij) of the original and the
// perturbed data, taken over the dimension pairs i ≤ j (each unordered
// pair counted once; the matrices are symmetric, so counting both
// triangles would only re-weight, not change, perfect agreement). µ = 1
// means the covariance structures are identical up to scale; µ = −1 means
// they are perfectly anti-correlated.
func CovarianceCompatibility(original, perturbed []mat.Vector) (float64, error) {
	co, err := stats.CovarianceMatrix(original)
	if err != nil {
		return 0, fmt.Errorf("metrics: original covariance: %w", err)
	}
	cp, err := stats.CovarianceMatrix(perturbed)
	if err != nil {
		return 0, fmt.Errorf("metrics: perturbed covariance: %w", err)
	}
	return CovarianceMatrixCompatibility(co, cp)
}

// CovarianceMatrixCompatibility computes µ directly from two covariance
// matrices.
func CovarianceMatrixCompatibility(co, cp *mat.Matrix) (float64, error) {
	if co.Rows() != cp.Rows() || co.Cols() != cp.Cols() {
		return 0, fmt.Errorf("metrics: covariance shapes %dx%d vs %dx%d",
			co.Rows(), co.Cols(), cp.Rows(), cp.Cols())
	}
	if co.Rows() != co.Cols() {
		return 0, fmt.Errorf("metrics: non-square covariance %dx%d", co.Rows(), co.Cols())
	}
	d := co.Rows()
	var os, ps []float64
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			os = append(os, co.At(i, j))
			ps = append(ps, cp.At(i, j))
		}
	}
	return stats.Pearson(os, ps)
}

// ClassificationAccuracyOn fits-and-scores in one call: predictions from
// pred are compared with test's labels.
func ClassificationAccuracyOn(test *dataset.Dataset, pred []int) (float64, error) {
	if test.Task != dataset.Classification {
		return 0, fmt.Errorf("metrics: data set task %v", test.Task)
	}
	return Accuracy(pred, test.Labels)
}
