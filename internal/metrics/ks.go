package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"condensation/internal/mat"
)

// KolmogorovSmirnov returns the two-sample KS statistic — the maximum
// absolute difference between the empirical CDFs of a and b. 0 means
// identical empirical distributions, 1 means disjoint supports. The paper
// evaluates second-order fidelity through µ; the KS statistic complements
// it with a per-marginal distributional check that is sensitive to shape
// differences the covariance cannot see (the uniform-vs-Gaussian
// synthesis ablation, for example).
func KolmogorovSmirnov(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, errors.New("metrics: KS of empty sample")
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	for _, x := range as {
		if math.IsNaN(x) {
			return 0, errors.New("metrics: KS sample contains NaN")
		}
	}
	for _, x := range bs {
		if math.IsNaN(x) {
			return 0, errors.New("metrics: KS sample contains NaN")
		}
	}
	sort.Float64s(as)
	sort.Float64s(bs)
	var i, j int
	var d float64
	for i < len(as) && j < len(bs) {
		x := math.Min(as[i], bs[j])
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d, nil
}

// MeanMarginalKS returns the mean two-sample KS statistic across the
// attributes of two record sets — an aggregate marginal-fidelity score
// for anonymized data (0 = every marginal preserved exactly).
func MeanMarginalKS(original, anonymized []mat.Vector) (float64, error) {
	if len(original) == 0 || len(anonymized) == 0 {
		return 0, errors.New("metrics: empty record set")
	}
	d := len(original[0])
	if len(anonymized[0]) != d {
		return 0, fmt.Errorf("metrics: dimension mismatch %d vs %d", d, len(anonymized[0]))
	}
	colA := make([]float64, len(original))
	colB := make([]float64, len(anonymized))
	var total float64
	for j := 0; j < d; j++ {
		for i, x := range original {
			if len(x) != d {
				return 0, fmt.Errorf("metrics: ragged original record %d", i)
			}
			colA[i] = x[j]
		}
		for i, x := range anonymized {
			if len(x) != d {
				return 0, fmt.Errorf("metrics: ragged anonymized record %d", i)
			}
			colB[i] = x[j]
		}
		ks, err := KolmogorovSmirnov(colA, colB)
		if err != nil {
			return 0, err
		}
		total += ks
	}
	return total / float64(d), nil
}
