package metrics

import (
	"math"
	"testing"

	"condensation/internal/mat"
	"condensation/internal/rng"
)

func TestAccuracy(t *testing.T) {
	got, err := Accuracy([]int{1, 0, 1, 1}, []int{1, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.75 {
		t.Errorf("Accuracy = %g, want 0.75", got)
	}
}

func TestAccuracyErrors(t *testing.T) {
	if _, err := Accuracy([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Accuracy(nil, nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestConfusionMatrix(t *testing.T) {
	cm, err := NewConfusionMatrix([]int{0, 1, 1, 0}, []int{0, 1, 0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cm.At(0, 0) != 2 || cm.At(0, 1) != 1 || cm.At(1, 1) != 1 || cm.At(1, 0) != 0 {
		t.Errorf("counts wrong: [[%d %d][%d %d]]", cm.At(0, 0), cm.At(0, 1), cm.At(1, 0), cm.At(1, 1))
	}
	if cm.Accuracy() != 0.75 {
		t.Errorf("Accuracy = %g", cm.Accuracy())
	}
	if cm.NumClasses() != 2 {
		t.Errorf("NumClasses = %d", cm.NumClasses())
	}
}

func TestConfusionMatrixErrors(t *testing.T) {
	if _, err := NewConfusionMatrix([]int{0}, []int{0, 1}, 2); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewConfusionMatrix([]int{0}, []int{0}, 0); err == nil {
		t.Error("zero classes accepted")
	}
	if _, err := NewConfusionMatrix([]int{5}, []int{0}, 2); err == nil {
		t.Error("out-of-range prediction accepted")
	}
	if _, err := NewConfusionMatrix([]int{0}, []int{-1}, 2); err == nil {
		t.Error("negative truth accepted")
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	// truth:  0 0 0 1 1
	// pred:   0 0 1 1 0
	cm, err := NewConfusionMatrix([]int{0, 0, 1, 1, 0}, []int{0, 0, 0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, r, f1 := cm.PrecisionRecallF1(0)
	if math.Abs(p-2.0/3) > 1e-12 || math.Abs(r-2.0/3) > 1e-12 || math.Abs(f1-2.0/3) > 1e-12 {
		t.Errorf("class 0: P=%g R=%g F1=%g", p, r, f1)
	}
	p, r, f1 = cm.PrecisionRecallF1(1)
	if math.Abs(p-0.5) > 1e-12 || math.Abs(r-0.5) > 1e-12 || math.Abs(f1-0.5) > 1e-12 {
		t.Errorf("class 1: P=%g R=%g F1=%g", p, r, f1)
	}
	if macro := cm.MacroF1(); math.Abs(macro-(2.0/3+0.5)/2) > 1e-12 {
		t.Errorf("MacroF1 = %g", macro)
	}
}

func TestPrecisionRecallF1UndefinedIsZero(t *testing.T) {
	cm, err := NewConfusionMatrix([]int{0, 0}, []int{0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, r, f1 := cm.PrecisionRecallF1(1) // class 1 never appears
	if p != 0 || r != 0 || f1 != 0 {
		t.Errorf("absent class: P=%g R=%g F1=%g", p, r, f1)
	}
}

func TestWithinTolerance(t *testing.T) {
	got, err := WithinTolerance([]float64{1, 2, 3}, []float64{1.5, 4, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("WithinTolerance = %g, want 2/3", got)
	}
}

func TestWithinToleranceErrors(t *testing.T) {
	if _, err := WithinTolerance([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := WithinTolerance(nil, nil, 1); err == nil {
		t.Error("empty accepted")
	}
	if _, err := WithinTolerance([]float64{1}, []float64{1}, -1); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestRMSEAndMAE(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 2, 6}
	rmse, err := RMSE(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rmse-math.Sqrt(3)) > 1e-12 {
		t.Errorf("RMSE = %g, want √3", rmse)
	}
	mae, err := MAE(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if mae != 1 {
		t.Errorf("MAE = %g, want 1", mae)
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Error("RMSE empty accepted")
	}
	if _, err := MAE([]float64{1}, nil); err == nil {
		t.Error("MAE mismatch accepted")
	}
}

func TestCovarianceCompatibilityIdentical(t *testing.T) {
	r := rng.New(1)
	recs := make([]mat.Vector, 100)
	for i := range recs {
		base := r.Norm()
		recs[i] = mat.Vector{base, 2 * base, r.Norm()}
	}
	mu, err := CovarianceCompatibility(recs, recs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mu-1) > 1e-12 {
		t.Errorf("µ(identical) = %g, want 1", mu)
	}
}

func TestCovarianceCompatibilityNegated(t *testing.T) {
	// Flipping the sign of the second attribute negates the off-diagonal
	// covariance while keeping variances, so µ drops below 1.
	r := rng.New(2)
	orig := make([]mat.Vector, 200)
	flip := make([]mat.Vector, 200)
	for i := range orig {
		base := r.Norm()
		noise := 0.1 * r.Norm()
		orig[i] = mat.Vector{base, base + noise}
		flip[i] = mat.Vector{base, -base - noise}
	}
	mu, err := CovarianceCompatibility(orig, flip)
	if err != nil {
		t.Fatal(err)
	}
	if mu > 0.5 {
		t.Errorf("µ(anti-correlated) = %g, want well below 1", mu)
	}
}

func TestCovarianceCompatibilitySimilar(t *testing.T) {
	// Two independent samples from the same distribution should score a
	// very high µ.
	draw := func(seed uint64) []mat.Vector {
		r := rng.New(seed)
		out := make([]mat.Vector, 2000)
		for i := range out {
			b := r.Norm()
			out[i] = mat.Vector{b, b + 0.5*r.Norm(), r.Norm() - b}
		}
		return out
	}
	mu, err := CovarianceCompatibility(draw(3), draw(4))
	if err != nil {
		t.Fatal(err)
	}
	if mu < 0.98 {
		t.Errorf("µ(same distribution) = %g, want > 0.98", mu)
	}
}

func TestCovarianceMatrixCompatibilityErrors(t *testing.T) {
	if _, err := CovarianceMatrixCompatibility(mat.New(2, 2), mat.New(3, 3)); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := CovarianceMatrixCompatibility(mat.New(2, 3), mat.New(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
}

func TestCovarianceCompatibilityErrors(t *testing.T) {
	if _, err := CovarianceCompatibility(nil, nil); err == nil {
		t.Error("empty original accepted")
	}
	recs := []mat.Vector{{1, 2}, {3, 4}}
	if _, err := CovarianceCompatibility(recs, nil); err == nil {
		t.Error("empty perturbed accepted")
	}
}
