package metrics

import (
	"math"
	"testing"

	"condensation/internal/mat"
	"condensation/internal/rng"
)

func TestKSIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	d, err := KolmogorovSmirnov(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("KS(a,a) = %g, want 0", d)
	}
}

func TestKSDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	d, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("KS(disjoint) = %g, want 1", d)
	}
}

func TestKSKnownValue(t *testing.T) {
	// a = {1,2}, b = {2,3}: after 1, Fa=.5, Fb=0 → D=.5; after 2, 1 vs .5
	// → .5; after 3, 1 vs 1.
	d, err := KolmogorovSmirnov([]float64{1, 2}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5) > 1e-12 {
		t.Errorf("KS = %g, want 0.5", d)
	}
}

func TestKSSameDistribution(t *testing.T) {
	r := rng.New(1)
	a := make([]float64, 3000)
	b := make([]float64, 3000)
	for i := range a {
		a[i] = r.Norm()
		b[i] = r.Norm()
	}
	d, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.06 {
		t.Errorf("KS for same distribution = %g, want small", d)
	}
}

func TestKSShiftDetected(t *testing.T) {
	r := rng.New(2)
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = r.Norm()
		b[i] = r.Norm() + 1
	}
	d, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.3 {
		t.Errorf("KS for unit shift = %g, want large", d)
	}
}

func TestKSErrors(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, []float64{1}); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := KolmogorovSmirnov([]float64{math.NaN()}, []float64{1}); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := KolmogorovSmirnov([]float64{1}, []float64{math.NaN()}); err == nil {
		t.Error("NaN in second sample accepted")
	}
}

func TestKSDoesNotMutateInputs(t *testing.T) {
	a := []float64{3, 1, 2}
	b := []float64{2, 1}
	if _, err := KolmogorovSmirnov(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0] != 3 || b[0] != 2 {
		t.Error("KS sorted the caller's slices")
	}
}

func TestMeanMarginalKS(t *testing.T) {
	r := rng.New(3)
	orig := make([]mat.Vector, 500)
	same := make([]mat.Vector, 500)
	shifted := make([]mat.Vector, 500)
	for i := range orig {
		orig[i] = mat.Vector{r.Norm(), r.Uniform(0, 1)}
		same[i] = mat.Vector{r.Norm(), r.Uniform(0, 1)}
		shifted[i] = mat.Vector{r.Norm() + 2, r.Uniform(0, 1)}
	}
	low, err := MeanMarginalKS(orig, same)
	if err != nil {
		t.Fatal(err)
	}
	high, err := MeanMarginalKS(orig, shifted)
	if err != nil {
		t.Fatal(err)
	}
	if low > 0.1 {
		t.Errorf("same-distribution mean KS = %g", low)
	}
	if high < 0.3 {
		t.Errorf("shifted mean KS = %g, want large", high)
	}
	if high <= low {
		t.Error("shifted KS not larger than same-distribution KS")
	}
}

func TestMeanMarginalKSErrors(t *testing.T) {
	if _, err := MeanMarginalKS(nil, nil); err == nil {
		t.Error("empty accepted")
	}
	a := []mat.Vector{{1, 2}}
	if _, err := MeanMarginalKS(a, []mat.Vector{{1}}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	ragged := []mat.Vector{{1, 2}, {3}}
	if _, err := MeanMarginalKS(ragged, a); err == nil {
		t.Error("ragged original accepted")
	}
	if _, err := MeanMarginalKS(a, ragged); err == nil {
		t.Error("ragged anonymized accepted")
	}
}
