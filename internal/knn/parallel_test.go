package knn

import (
	"reflect"
	"testing"

	"condensation/internal/dataset"
	"condensation/internal/rng"
)

// regressionData draws a 1-D noisy linear regression set.
func regressionData(seed uint64, n int) *dataset.Dataset {
	r := rng.New(seed)
	ds := &dataset.Dataset{Task: dataset.Regression, Attrs: []string{"x", "y"}}
	for i := 0; i < n; i++ {
		x := r.Uniform(0, 10)
		ds.X = append(ds.X, []float64{x, x + r.Norm()})
		ds.Targets = append(ds.Targets, 2*x)
	}
	return ds
}

// TestPredictAllParallelEquivalence proves the sweep determinism: the
// chunked parallel sweep must return exactly what a per-point Predict
// loop returns, at every worker count, above and below the parallel
// cutoff.
func TestPredictAllParallelEquivalence(t *testing.T) {
	train := twoClassData(50, 100)
	for _, n := range []int{predictParallelCutoff / 2, 4 * predictParallelCutoff} {
		test := twoClassData(51, n/2)
		clf, err := NewClassifier(train, 3)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]int, test.Len())
		for i, x := range test.X {
			if want[i], err = clf.Predict(x); err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range []int{0, 1, 2, 8} {
			clf.SetParallelism(p)
			got, err := clf.PredictAll(test)
			if err != nil {
				t.Fatalf("parallelism %d: %v", p, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("n=%d parallelism %d: PredictAll differs from Predict loop", test.Len(), p)
			}
		}
	}
}

// TestRegressorPredictAllParallelEquivalence is the regression-side twin.
func TestRegressorPredictAllParallelEquivalence(t *testing.T) {
	train := regressionData(52, 150)
	test := regressionData(53, 3*predictParallelCutoff)
	reg, err := NewRegressor(train, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, test.Len())
	for i, x := range test.X {
		if want[i], err = reg.Predict(x); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []int{0, 1, 8} {
		reg.SetParallelism(p)
		got, err := reg.PredictAll(test)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("parallelism %d: PredictAll differs from Predict loop", p)
		}
	}
}

// TestPredictAllScratchReuse pins the allocation fix: a sequential
// PredictAll sweep must not allocate per prediction beyond the output
// slice — the vote counter and neighbour buffer are reused across the
// whole chunk.
func TestPredictAllScratchReuse(t *testing.T) {
	train := twoClassData(54, 200)
	test := twoClassData(55, 2*predictParallelCutoff)
	clf, err := NewClassifier(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	clf.SetParallelism(1)
	avg := testing.AllocsPerRun(5, func() {
		if _, err := clf.PredictAll(test); err != nil {
			t.Fatal(err)
		}
	})
	// Output slice + one scratch (votes + first neighbour buffer growth)
	// per sweep; generous bound far below one alloc per prediction.
	if avg > 16 {
		t.Errorf("PredictAll allocates %.0f times per sweep of %d predictions; scratch is not being reused",
			avg, test.Len())
	}
}

// TestNearestIntoReusesBuffer pins the buffer contract of the KD-tree
// query used by the sweeps.
func TestNearestIntoReusesBuffer(t *testing.T) {
	train := twoClassData(56, 80)
	tree, err := NewKDTree(train.X)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tree.Nearest(train.X[3], 5)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Neighbor, 0, 8)
	got, err := tree.NearestInto(train.X[3], 5, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("NearestInto = %v, want %v", got, want)
	}
	if cap(buf) >= 6 && &buf[:1][0] != &got[:1][0] {
		t.Error("NearestInto did not reuse the provided buffer")
	}
}
