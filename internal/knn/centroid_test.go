package knn

import (
	"testing"
	"testing/quick"

	"condensation/internal/mat"
	"condensation/internal/rng"
)

// scanNearestLex is the reference the index must match exactly: a linear
// scan in id order keeping the strictly-smaller distance, whose winner is
// the lexicographic (distance, id) minimum.
func scanNearestLex(points []mat.Vector, q mat.Vector) (int, float64) {
	best, bestD := -1, 0.0
	for i, p := range points {
		if d := q.DistSq(p); best == -1 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// Property: under arbitrary interleavings of Add, Update, and Nearest the
// index answers every query exactly as the id-order linear scan does,
// including distance ties (coordinates are drawn from a small integer grid
// so exact ties are common).
func TestCentroidIndexMatchesScan(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		dim := 1 + r.IntN(4)
		n := 1 + r.IntN(60)
		mirror := make([]mat.Vector, 0, n)
		grid := func() mat.Vector {
			x := make(mat.Vector, dim)
			for j := range x {
				x[j] = float64(r.IntN(5)) // small grid → frequent exact ties
			}
			return x
		}
		for i := 0; i < n; i++ {
			mirror = append(mirror, grid())
		}
		idx, err := NewCentroidIndex(dim, mirror)
		if err != nil {
			return false
		}
		for step := 0; step < 150; step++ {
			switch r.IntN(3) {
			case 0: // add
				p := grid()
				mirror = append(mirror, p.Clone())
				id, err := idx.Add(p)
				if err != nil || id != len(mirror)-1 {
					return false
				}
			case 1: // update
				id := r.IntN(len(mirror))
				p := grid()
				copy(mirror[id], p)
				if len(p) != dim {
					return false
				}
				if err := idx.Update(id, p); err != nil {
					return false
				}
			default: // query
				q := grid()
				wantID, wantD := scanNearestLex(mirror, q)
				gotID, gotD := idx.Nearest(q)
				if gotID != wantID || gotD != wantD {
					return false
				}
			}
		}
		return idx.Len() == len(mirror)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCentroidIndexEmpty(t *testing.T) {
	idx, err := NewCentroidIndex(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id, _ := idx.Nearest(mat.Vector{0, 0}); id != -1 {
		t.Errorf("Nearest on empty index = %d, want -1", id)
	}
	if _, err := idx.Add(mat.Vector{1, 2}); err != nil {
		t.Fatal(err)
	}
	if id, d := idx.Nearest(mat.Vector{1, 2}); id != 0 || d != 0 {
		t.Errorf("Nearest = (%d, %g), want (0, 0)", id, d)
	}
}

func TestCentroidIndexErrors(t *testing.T) {
	if _, err := NewCentroidIndex(0, nil); err == nil {
		t.Error("dim=0 accepted")
	}
	if _, err := NewCentroidIndex(2, []mat.Vector{{1}}); err == nil {
		t.Error("mismatched initial centroid accepted")
	}
	idx, err := NewCentroidIndex(2, []mat.Vector{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Add(mat.Vector{1}); err == nil {
		t.Error("wrong-dimension Add accepted")
	}
	if err := idx.Update(0, mat.Vector{1}); err == nil {
		t.Error("wrong-dimension Update accepted")
	}
	if err := idx.Update(5, mat.Vector{1, 2}); err == nil {
		t.Error("out-of-range Update accepted")
	}
	if err := idx.Update(-1, mat.Vector{1, 2}); err == nil {
		t.Error("negative Update accepted")
	}
}

// The index does not alias caller storage: mutating the vectors passed to
// the constructor, Add, or Update afterwards must not change answers.
func TestCentroidIndexCopiesInputs(t *testing.T) {
	p := mat.Vector{1, 1}
	idx, err := NewCentroidIndex(2, []mat.Vector{p})
	if err != nil {
		t.Fatal(err)
	}
	p[0] = 100
	if _, d := idx.Nearest(mat.Vector{1, 1}); d != 0 {
		t.Error("constructor aliased caller storage")
	}
	q := mat.Vector{5, 5}
	if _, err := idx.Add(q); err != nil {
		t.Fatal(err)
	}
	q[0] = -100
	if id, d := idx.Nearest(mat.Vector{5, 5}); id != 1 || d != 0 {
		t.Errorf("Add aliased caller storage: (%d, %g)", id, d)
	}
}

// After enough updates to trigger threshold rebuilds, answers stay exact.
func TestCentroidIndexRebuild(t *testing.T) {
	r := rng.New(11)
	dim := 3
	mirror := make([]mat.Vector, 0, 400)
	for i := 0; i < 400; i++ {
		x := make(mat.Vector, dim)
		for j := range x {
			x[j] = r.Norm() * 10
		}
		mirror = append(mirror, x)
	}
	idx, err := NewCentroidIndex(dim, mirror)
	if err != nil {
		t.Fatal(err)
	}
	if idx.root < 0 {
		t.Fatal("large initial set did not build a tree")
	}
	for step := 0; step < 2000; step++ {
		id := r.IntN(len(mirror))
		p := mat.Vector{r.Norm() * 10, r.Norm() * 10, r.Norm() * 10}
		copy(mirror[id], p)
		if err := idx.Update(id, p); err != nil {
			t.Fatal(err)
		}
		if step%50 == 0 {
			q := mat.Vector{r.Norm() * 10, r.Norm() * 10, r.Norm() * 10}
			wantID, wantD := scanNearestLex(mirror, q)
			gotID, gotD := idx.Nearest(q)
			if gotID != wantID || gotD != wantD {
				t.Fatalf("step %d: Nearest = (%d, %g), want (%d, %g)", step, gotID, gotD, wantID, wantD)
			}
		}
	}
	if len(idx.dirty) >= len(mirror) {
		t.Error("dirty list never compacted by rebuilds")
	}
}
