package knn

import (
	"testing"

	"condensation/internal/mat"
	"condensation/internal/rng"
)

func dynPoints(seed uint64, n, d int) []mat.Vector {
	r := rng.New(seed)
	out := make([]mat.Vector, n)
	for i := range out {
		v := make(mat.Vector, d)
		for j := range v {
			v[j] = r.Norm()
		}
		out[i] = v
	}
	return out
}

// bruteAlive is the reference: linear scan over the live subset with the
// same (distance, index) ordering the tree promises.
func bruteAlive(points []mat.Vector, dead map[int]bool, query mat.Vector, k int) []Neighbor {
	var all []Neighbor
	for i, p := range points {
		if dead[i] {
			continue
		}
		all = append(all, Neighbor{Index: i, DistSq: query.DistSq(p)})
	}
	for i := 1; i < len(all); i++ {
		for j := i; j > 0; j-- {
			a, b := all[j-1], all[j]
			if b.DistSq < a.DistSq || (b.DistSq == a.DistSq && b.Index < a.Index) {
				all[j-1], all[j] = b, a
			} else {
				break
			}
		}
	}
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func TestDynamicKDTreeMatchesBruteForceUnderDeletion(t *testing.T) {
	points := dynPoints(1, 200, 3)
	tree, err := NewDynamicKDTree(points)
	if err != nil {
		t.Fatal(err)
	}
	dead := make(map[int]bool)
	r := rng.New(2)
	query := mat.Vector{0.1, -0.2, 0.3}
	// Interleave queries and deletions; deletions eventually trigger the
	// 50% rebuild several times over.
	for round := 0; round < 180; round++ {
		got, err := tree.NearestAlive(query, 5)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteAlive(points, dead, query, 5)
		if len(got) != len(want) {
			t.Fatalf("round %d: %d neighbours, want %d", round, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d neighbour %d: got %+v, want %+v", round, i, got[i], want[i])
			}
		}
		// Delete one live point at random.
		var live []int
		for i := range points {
			if !dead[i] {
				live = append(live, i)
			}
		}
		victim := live[r.IntN(len(live))]
		if err := tree.Delete(victim); err != nil {
			t.Fatal(err)
		}
		dead[victim] = true
		if tree.Len() != len(live)-1 {
			t.Fatalf("round %d: Len = %d, want %d", round, tree.Len(), len(live)-1)
		}
	}
}

func TestDynamicKDTreeDeleteErrors(t *testing.T) {
	tree, err := NewDynamicKDTree(dynPoints(3, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Delete(-1); err == nil {
		t.Error("negative index accepted")
	}
	if err := tree.Delete(10); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := tree.Delete(4); err != nil {
		t.Fatal(err)
	}
	if err := tree.Delete(4); err == nil {
		t.Error("double delete accepted")
	}
}

func TestDynamicKDTreeExhaustion(t *testing.T) {
	points := dynPoints(4, 33, 2)
	tree, err := NewDynamicKDTree(points)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if err := tree.Delete(i); err != nil {
			t.Fatalf("deleting %d: %v", i, err)
		}
	}
	if tree.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tree.Len())
	}
	if _, err := tree.NearestAlive(points[0], 1); err == nil {
		t.Error("query against empty tree accepted")
	}
}

func TestDynamicKDTreeValidation(t *testing.T) {
	if _, err := NewDynamicKDTree(nil); err == nil {
		t.Error("empty point set accepted")
	}
	if _, err := NewDynamicKDTree([]mat.Vector{{}}); err == nil {
		t.Error("zero-dimensional points accepted")
	}
	if _, err := NewDynamicKDTree([]mat.Vector{{1, 2}, {3}}); err == nil {
		t.Error("ragged points accepted")
	}
	tree, err := NewDynamicKDTree(dynPoints(5, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.NearestAlive(mat.Vector{1}, 1); err == nil {
		t.Error("wrong-dimension query accepted")
	}
	if _, err := tree.NearestAlive(mat.Vector{1, 2}, 0); err == nil {
		t.Error("k = 0 accepted")
	}
	if got, err := tree.NearestAlive(mat.Vector{0, 0}, 100); err != nil || len(got) != 8 {
		t.Errorf("oversized k: got %d neighbours, err %v; want all 8", len(got), err)
	}
}
