package knn

import (
	"fmt"
	"sort"

	"condensation/internal/kernel"
	"condensation/internal/mat"
)

// dynNode is one node of a DynamicKDTree. Unlike the static kdNode it
// carries a parent pointer and a live-descendant count so that deletions
// can tombstone a point in O(depth) and searches can prune fully-dead
// subtrees.
type dynNode struct {
	idx         int // index into the backing points
	axis        int
	left, right *dynNode
	parent      *dynNode
	alive       int // live points in this subtree, including this node
	dead        bool
}

// DynamicKDTree is an exact nearest-neighbour index that supports point
// deletion. Deletions are tombstones: the node stays in place but is
// skipped as a candidate, and per-subtree live counts let the search prune
// entirely-dead subtrees. Once fewer than half of the points indexed at the
// last (re)build remain alive, the tree is rebuilt over the survivors, so a
// workload that deletes all n points pays O(n log n) total rebuild cost.
//
// It exists for the condensation construction of Figure 1, which repeatedly
// asks "k nearest among the records not yet grouped" and then removes the
// group it just formed.
type DynamicKDTree struct {
	points  []mat.Vector
	dim     int
	root    *dynNode
	nodes   []*dynNode // point index -> its node (nil once dead)
	alive   int
	rebuilt int // alive count at the last (re)build
}

// NewDynamicKDTree builds a deletable KD-tree over the given points. The
// points slice is retained (not copied); callers must not mutate it.
func NewDynamicKDTree(points []mat.Vector) (*DynamicKDTree, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("knn: empty point set")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("knn: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("knn: point %d has dimension %d, want %d", i, len(p), dim)
		}
		if !p.IsFinite() {
			return nil, fmt.Errorf("knn: point %d has non-finite values", i)
		}
	}
	t := &DynamicKDTree{
		points: points,
		dim:    dim,
		nodes:  make([]*dynNode, len(points)),
	}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(idx, 0, nil)
	t.alive = len(points)
	t.rebuilt = len(points)
	return t, nil
}

// build recursively constructs a balanced subtree by median splits.
func (t *DynamicKDTree) build(idx []int, depth int, parent *dynNode) *dynNode {
	if len(idx) == 0 {
		return nil
	}
	axis := depth % t.dim
	sort.Slice(idx, func(a, b int) bool {
		return t.points[idx[a]][axis] < t.points[idx[b]][axis]
	})
	mid := len(idx) / 2
	node := &dynNode{idx: idx[mid], axis: axis, parent: parent, alive: len(idx)}
	t.nodes[idx[mid]] = node
	node.left = t.build(idx[:mid], depth+1, node)
	node.right = t.build(idx[mid+1:], depth+1, node)
	return node
}

// Len returns the number of live (undeleted) points.
func (t *DynamicKDTree) Len() int { return t.alive }

// Dim returns the dimensionality of the indexed points.
func (t *DynamicKDTree) Dim() int { return t.dim }

// Delete tombstones the point with the given index. Deleting an
// out-of-range or already-deleted index is an error. When fewer than half
// of the points present at the last rebuild remain, the tree is compacted.
func (t *DynamicKDTree) Delete(idx int) error {
	if idx < 0 || idx >= len(t.points) {
		return fmt.Errorf("knn: delete index %d out of range [0,%d)", idx, len(t.points))
	}
	node := t.nodes[idx]
	if node == nil {
		return fmt.Errorf("knn: point %d already deleted", idx)
	}
	node.dead = true
	t.nodes[idx] = nil
	for n := node; n != nil; n = n.parent {
		n.alive--
	}
	t.alive--
	if t.alive > 0 && t.alive*2 < t.rebuilt {
		t.rebuild()
	}
	return nil
}

// rebuild compacts the tree over the surviving points, preserving their
// original indices.
func (t *DynamicKDTree) rebuild() {
	idx := make([]int, 0, t.alive)
	for i, n := range t.nodes {
		if n != nil {
			idx = append(idx, i)
		}
	}
	for i := range t.nodes {
		t.nodes[i] = nil
	}
	t.root = t.build(idx, 0, nil)
	t.rebuilt = t.alive
}

// NearestAlive returns the k nearest live points to the query, ordered by
// ascending distance with ties broken by ascending point index. If fewer
// than k live points remain, all of them are returned.
func (t *DynamicKDTree) NearestAlive(query mat.Vector, k int) ([]Neighbor, error) {
	if len(query) != t.dim {
		return nil, fmt.Errorf("knn: query dimension %d, index dimension %d", len(query), t.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("knn: k = %d, must be ≥ 1", k)
	}
	if t.alive == 0 {
		return nil, fmt.Errorf("knn: all points deleted")
	}
	if k > t.alive {
		k = t.alive
	}
	h := make(neighborHeap, 0, k)
	t.search(t.root, query, k, &h)
	sortNeighbors(h)
	return h, nil
}

// search walks the tree, skipping tombstoned nodes as candidates, pruning
// subtrees with no live points, and pruning half-spaces that cannot beat
// the current k-th best distance.
func (t *DynamicKDTree) search(node *dynNode, query mat.Vector, k int, h *neighborHeap) {
	if node == nil || node.alive == 0 {
		return
	}
	p := t.points[node.idx]
	if !node.dead {
		d := kernel.DistSq(query, p)
		if len(*h) < k {
			h.push(Neighbor{Index: node.idx, DistSq: d})
		} else if d < (*h)[0].DistSq {
			h.replaceRoot(Neighbor{Index: node.idx, DistSq: d})
		}
	}
	diff := query[node.axis] - p[node.axis]
	near, far := node.left, node.right
	if diff > 0 {
		near, far = far, near
	}
	t.search(near, query, k, h)
	if len(*h) < k || diff*diff < (*h)[0].DistSq {
		t.search(far, query, k, h)
	}
}
