package knn

import (
	"fmt"

	"condensation/internal/dataset"
	"condensation/internal/mat"
)

// Classifier is a k-nearest-neighbour classifier. The paper uses the
// simplest variant (1-NN: "the class label of the closest record ... is
// used for the classification process"); K is configurable because the
// evaluation also refers to a k-nearest-neighbour classifier.
type Classifier struct {
	k      int
	tree   *KDTree
	labels []int
}

// NewClassifier fits a k-NN classifier on a classification data set. The
// training records are indexed but not copied.
func NewClassifier(train *dataset.Dataset, k int) (*Classifier, error) {
	if train.Task != dataset.Classification {
		return nil, fmt.Errorf("knn: classifier needs a classification data set, got %v", train.Task)
	}
	if err := train.Validate(); err != nil {
		return nil, fmt.Errorf("knn: training data: %w", err)
	}
	if k < 1 {
		return nil, fmt.Errorf("knn: k = %d, must be ≥ 1", k)
	}
	tree, err := NewKDTree(train.X)
	if err != nil {
		return nil, err
	}
	return &Classifier{k: k, tree: tree, labels: append([]int(nil), train.Labels...)}, nil
}

// Predict returns the majority class among the k nearest training records.
// Ties break toward the class of the nearer neighbour (the first
// encountered in ascending-distance order), which makes 1-NN behaviour a
// strict special case.
func (c *Classifier) Predict(x mat.Vector) (int, error) {
	nbrs, err := c.tree.Nearest(x, c.k)
	if err != nil {
		return 0, err
	}
	votes := make(map[int]int, c.k)
	best, bestVotes := c.labels[nbrs[0].Index], 0
	for _, nb := range nbrs {
		l := c.labels[nb.Index]
		votes[l]++
		if votes[l] > bestVotes {
			best, bestVotes = l, votes[l]
		}
	}
	return best, nil
}

// PredictAll classifies every record of a data set, returning the
// predicted labels in order.
func (c *Classifier) PredictAll(test *dataset.Dataset) ([]int, error) {
	out := make([]int, test.Len())
	for i, x := range test.X {
		l, err := c.Predict(x)
		if err != nil {
			return nil, fmt.Errorf("knn: record %d: %w", i, err)
		}
		out[i] = l
	}
	return out, nil
}

// Regressor is a k-nearest-neighbour regressor predicting the mean target
// of the k nearest training records. The paper's Abalone experiment
// predicts abalone age this way and scores the fraction of predictions
// within one year.
type Regressor struct {
	k       int
	tree    *KDTree
	targets []float64
}

// NewRegressor fits a k-NN regressor on a regression data set.
func NewRegressor(train *dataset.Dataset, k int) (*Regressor, error) {
	if train.Task != dataset.Regression {
		return nil, fmt.Errorf("knn: regressor needs a regression data set, got %v", train.Task)
	}
	if err := train.Validate(); err != nil {
		return nil, fmt.Errorf("knn: training data: %w", err)
	}
	if k < 1 {
		return nil, fmt.Errorf("knn: k = %d, must be ≥ 1", k)
	}
	tree, err := NewKDTree(train.X)
	if err != nil {
		return nil, err
	}
	return &Regressor{k: k, tree: tree, targets: append([]float64(nil), train.Targets...)}, nil
}

// Predict returns the mean target of the k nearest training records.
func (r *Regressor) Predict(x mat.Vector) (float64, error) {
	nbrs, err := r.tree.Nearest(x, r.k)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, nb := range nbrs {
		sum += r.targets[nb.Index]
	}
	return sum / float64(len(nbrs)), nil
}

// PredictAll predicts every record of a data set, in order.
func (r *Regressor) PredictAll(test *dataset.Dataset) ([]float64, error) {
	out := make([]float64, test.Len())
	for i, x := range test.X {
		y, err := r.Predict(x)
		if err != nil {
			return nil, fmt.Errorf("knn: record %d: %w", i, err)
		}
		out[i] = y
	}
	return out, nil
}
