package knn

import (
	"fmt"

	"condensation/internal/dataset"
	"condensation/internal/mat"
	"condensation/internal/par"
)

// predictParallelCutoff is the test-set size below which PredictAll stays
// single-threaded: each prediction is a microsecond-scale tree query, so
// fanning out a handful of them costs more than it saves.
const predictParallelCutoff = 64

// Classifier is a k-nearest-neighbour classifier. The paper uses the
// simplest variant (1-NN: "the class label of the closest record ... is
// used for the classification process"); K is configurable because the
// evaluation also refers to a k-nearest-neighbour classifier.
//
// The fitted classifier is immutable and safe for concurrent use; only
// SetParallelism mutates it and must happen before sharing.
type Classifier struct {
	k          int
	tree       *KDTree
	labels     []int
	numClasses int
	par        int
}

// NewClassifier fits a k-NN classifier on a classification data set. The
// training records are indexed but not copied.
func NewClassifier(train *dataset.Dataset, k int) (*Classifier, error) {
	if train.Task != dataset.Classification {
		return nil, fmt.Errorf("knn: classifier needs a classification data set, got %v", train.Task)
	}
	if err := train.Validate(); err != nil {
		return nil, fmt.Errorf("knn: training data: %w", err)
	}
	if k < 1 {
		return nil, fmt.Errorf("knn: k = %d, must be ≥ 1", k)
	}
	tree, err := NewKDTree(train.X)
	if err != nil {
		return nil, err
	}
	numClasses := 0
	for _, l := range train.Labels {
		if l+1 > numClasses {
			numClasses = l + 1
		}
	}
	return &Classifier{k: k, tree: tree, labels: append([]int(nil), train.Labels...), numClasses: numClasses}, nil
}

// SetParallelism bounds the worker goroutines PredictAll fans the test
// sweep across; values < 1 (the default) mean runtime.NumCPU(). The tree
// is read-only during prediction and every output slot is written by
// exactly one worker, so the predictions are identical for every setting.
func (c *Classifier) SetParallelism(p int) { c.par = p }

// predictScratch holds one worker's reusable buffers: the vote counter
// (indexed by class label — the per-call map this replaces dominated the
// allocation profile) and the neighbour buffer for the tree query.
type predictScratch struct {
	votes []int
	nbrs  []Neighbor
}

// predictInto classifies one record using the worker's scratch buffers.
func (c *Classifier) predictInto(x mat.Vector, s *predictScratch) (int, error) {
	nbrs, err := c.tree.NearestInto(x, c.k, s.nbrs)
	if err != nil {
		return 0, err
	}
	s.nbrs = nbrs
	for i := range s.votes {
		s.votes[i] = 0
	}
	best, bestVotes := c.labels[nbrs[0].Index], 0
	for _, nb := range nbrs {
		l := c.labels[nb.Index]
		s.votes[l]++
		if s.votes[l] > bestVotes {
			best, bestVotes = l, s.votes[l]
		}
	}
	return best, nil
}

// Predict returns the majority class among the k nearest training records.
// Ties break toward the class of the nearer neighbour (the first
// encountered in ascending-distance order), which makes 1-NN behaviour a
// strict special case.
func (c *Classifier) Predict(x mat.Vector) (int, error) {
	s := predictScratch{votes: make([]int, c.numClasses)}
	return c.predictInto(x, &s)
}

// PredictAll classifies every record of a data set, returning the
// predicted labels in order. The sweep is chunked across the configured
// parallelism (SetParallelism); each worker reuses one scratch counter
// and neighbour buffer across its whole chunk, so the per-prediction
// allocation cost of the sequential path is gone too.
func (c *Classifier) PredictAll(test *dataset.Dataset) ([]int, error) {
	out := make([]int, test.Len())
	workers := par.Workers(c.par)
	if len(test.X) < predictParallelCutoff {
		workers = 1
	}
	err := par.RunChunks(len(test.X), workers, func(lo, hi int) error {
		s := predictScratch{votes: make([]int, c.numClasses)}
		for i := lo; i < hi; i++ {
			l, err := c.predictInto(test.X[i], &s)
			if err != nil {
				return fmt.Errorf("knn: record %d: %w", i, err)
			}
			out[i] = l
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Regressor is a k-nearest-neighbour regressor predicting the mean target
// of the k nearest training records. The paper's Abalone experiment
// predicts abalone age this way and scores the fraction of predictions
// within one year.
type Regressor struct {
	k       int
	tree    *KDTree
	targets []float64
	par     int
}

// NewRegressor fits a k-NN regressor on a regression data set.
func NewRegressor(train *dataset.Dataset, k int) (*Regressor, error) {
	if train.Task != dataset.Regression {
		return nil, fmt.Errorf("knn: regressor needs a regression data set, got %v", train.Task)
	}
	if err := train.Validate(); err != nil {
		return nil, fmt.Errorf("knn: training data: %w", err)
	}
	if k < 1 {
		return nil, fmt.Errorf("knn: k = %d, must be ≥ 1", k)
	}
	tree, err := NewKDTree(train.X)
	if err != nil {
		return nil, err
	}
	return &Regressor{k: k, tree: tree, targets: append([]float64(nil), train.Targets...)}, nil
}

// SetParallelism bounds the worker goroutines PredictAll fans the test
// sweep across; values < 1 (the default) mean runtime.NumCPU().
func (r *Regressor) SetParallelism(p int) { r.par = p }

// predictInto predicts one record reusing the given neighbour buffer.
func (r *Regressor) predictInto(x mat.Vector, nbrs []Neighbor) (float64, []Neighbor, error) {
	nbrs, err := r.tree.NearestInto(x, r.k, nbrs)
	if err != nil {
		return 0, nbrs, err
	}
	var sum float64
	for _, nb := range nbrs {
		sum += r.targets[nb.Index]
	}
	return sum / float64(len(nbrs)), nbrs, nil
}

// Predict returns the mean target of the k nearest training records.
func (r *Regressor) Predict(x mat.Vector) (float64, error) {
	y, _, err := r.predictInto(x, nil)
	return y, err
}

// PredictAll predicts every record of a data set, in order. Like the
// classifier's sweep, it is chunked across the configured parallelism
// with a per-worker neighbour buffer, and its output is identical for
// every worker count.
func (r *Regressor) PredictAll(test *dataset.Dataset) ([]float64, error) {
	out := make([]float64, test.Len())
	workers := par.Workers(r.par)
	if len(test.X) < predictParallelCutoff {
		workers = 1
	}
	err := par.RunChunks(len(test.X), workers, func(lo, hi int) error {
		var nbrs []Neighbor
		for i := lo; i < hi; i++ {
			y, buf, err := r.predictInto(test.X[i], nbrs)
			if err != nil {
				return fmt.Errorf("knn: record %d: %w", i, err)
			}
			nbrs = buf
			out[i] = y
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
