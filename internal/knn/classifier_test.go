package knn

import (
	"math"
	"testing"

	"condensation/internal/dataset"
	"condensation/internal/mat"
	"condensation/internal/rng"
)

func twoClassData(seed uint64, perClass int) *dataset.Dataset {
	r := rng.New(seed)
	ds := &dataset.Dataset{
		Name:       "two",
		Attrs:      []string{"x", "y"},
		ClassNames: []string{"a", "b"},
		Task:       dataset.Classification,
	}
	for i := 0; i < perClass; i++ {
		ds.X = append(ds.X, mat.Vector{r.Norm(), r.Norm()})
		ds.Labels = append(ds.Labels, 0)
		ds.X = append(ds.X, mat.Vector{8 + r.Norm(), 8 + r.Norm()})
		ds.Labels = append(ds.Labels, 1)
	}
	return ds
}

func TestClassifierSeparableData(t *testing.T) {
	train := twoClassData(1, 50)
	test := twoClassData(2, 20)
	for _, k := range []int{1, 3, 5} {
		c, err := NewClassifier(train, k)
		if err != nil {
			t.Fatal(err)
		}
		preds, err := c.PredictAll(test)
		if err != nil {
			t.Fatal(err)
		}
		correct := 0
		for i, p := range preds {
			if p == test.Labels[i] {
				correct++
			}
		}
		if correct != test.Len() {
			t.Errorf("k=%d: %d/%d correct on separable data", k, correct, test.Len())
		}
	}
}

func TestClassifier1NNExactPoint(t *testing.T) {
	train := twoClassData(3, 10)
	c, err := NewClassifier(train, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Querying an exact training point must return its own label.
	for i, x := range train.X {
		got, err := c.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if got != train.Labels[i] {
			// An exact duplicate with a different label may legitimately
			// win the tie; only fail when the point is unique.
			dup := false
			for j, y := range train.X {
				if j != i && y.Equal(x, 0) {
					dup = true
				}
			}
			if !dup {
				t.Errorf("training point %d predicted %d, want %d", i, got, train.Labels[i])
			}
		}
	}
}

func TestClassifierMajorityVote(t *testing.T) {
	ds := &dataset.Dataset{
		Task:   dataset.Classification,
		X:      []mat.Vector{{0}, {1}, {2}, {10}},
		Labels: []int{0, 0, 0, 1},
	}
	c, err := NewClassifier(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Predict(mat.Vector{1.4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("majority vote = %d, want 0", got)
	}
}

func TestClassifierErrors(t *testing.T) {
	train := twoClassData(4, 5)
	if _, err := NewClassifier(train, 0); err == nil {
		t.Error("k=0 accepted")
	}
	reg := &dataset.Dataset{Task: dataset.Regression, X: []mat.Vector{{1}}, Targets: []float64{1}}
	if _, err := NewClassifier(reg, 1); err == nil {
		t.Error("regression data accepted by classifier")
	}
	bad := twoClassData(5, 3)
	bad.Labels = bad.Labels[:2]
	if _, err := NewClassifier(bad, 1); err == nil {
		t.Error("invalid training data accepted")
	}
	c, err := NewClassifier(train, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict(mat.Vector{1}); err == nil {
		t.Error("wrong query dimension accepted")
	}
}

func TestRegressorLinearData(t *testing.T) {
	r := rng.New(6)
	train := &dataset.Dataset{Task: dataset.Regression, Attrs: []string{"x"}}
	for i := 0; i < 200; i++ {
		x := r.Uniform(0, 10)
		train.X = append(train.X, mat.Vector{x})
		train.Targets = append(train.Targets, 3*x+1)
	}
	reg, err := NewRegressor(train, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{1, 5, 9} {
		got, err := reg.Predict(mat.Vector{q})
		if err != nil {
			t.Fatal(err)
		}
		want := 3*q + 1
		if math.Abs(got-want) > 0.5 {
			t.Errorf("Predict(%g) = %g, want ≈ %g", q, got, want)
		}
	}
}

func TestRegressorPredictAll(t *testing.T) {
	train := &dataset.Dataset{
		Task:    dataset.Regression,
		X:       []mat.Vector{{0}, {1}, {2}},
		Targets: []float64{0, 10, 20},
	}
	reg, err := NewRegressor(train, 1)
	if err != nil {
		t.Fatal(err)
	}
	test := &dataset.Dataset{
		Task:    dataset.Regression,
		X:       []mat.Vector{{0.1}, {1.9}},
		Targets: []float64{0, 0},
	}
	got, err := reg.PredictAll(test)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 20 {
		t.Errorf("PredictAll = %v, want [0 20]", got)
	}
}

func TestRegressorErrors(t *testing.T) {
	train := &dataset.Dataset{Task: dataset.Regression, X: []mat.Vector{{1}}, Targets: []float64{1}}
	if _, err := NewRegressor(train, 0); err == nil {
		t.Error("k=0 accepted")
	}
	cls := twoClassData(7, 3)
	if _, err := NewRegressor(cls, 1); err == nil {
		t.Error("classification data accepted by regressor")
	}
	reg, err := NewRegressor(train, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Predict(mat.Vector{1, 2}); err == nil {
		t.Error("wrong query dimension accepted")
	}
}

func TestRegressorAveragesK(t *testing.T) {
	train := &dataset.Dataset{
		Task:    dataset.Regression,
		X:       []mat.Vector{{0}, {0.1}, {100}},
		Targets: []float64{2, 4, 1000},
	}
	reg, err := NewRegressor(train, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reg.Predict(mat.Vector{0.05})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("2-NN mean = %g, want 3", got)
	}
}
