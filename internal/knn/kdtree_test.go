package knn

import (
	"testing"
	"testing/quick"

	"condensation/internal/mat"
	"condensation/internal/rng"
)

func randomPoints(seed uint64, n, d int) []mat.Vector {
	r := rng.New(seed)
	out := make([]mat.Vector, n)
	for i := range out {
		p := make(mat.Vector, d)
		for j := range p {
			p[j] = r.Uniform(-10, 10)
		}
		out[i] = p
	}
	return out
}

func TestKDTreeBuildErrors(t *testing.T) {
	if _, err := NewKDTree(nil); err == nil {
		t.Error("empty point set accepted")
	}
	if _, err := NewKDTree([]mat.Vector{{}}); err == nil {
		t.Error("zero-dimensional points accepted")
	}
	if _, err := NewKDTree([]mat.Vector{{1, 2}, {1}}); err == nil {
		t.Error("ragged points accepted")
	}
}

func TestKDTreeNearestSingle(t *testing.T) {
	pts := []mat.Vector{{0, 0}, {5, 5}, {1, 1}}
	tree, err := NewKDTree(pts)
	if err != nil {
		t.Fatal(err)
	}
	nbrs, err := tree.Nearest(mat.Vector{0.9, 0.9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 1 || nbrs[0].Index != 2 {
		t.Errorf("Nearest = %+v, want index 2", nbrs)
	}
}

func TestKDTreeNearestMatchesBrute(t *testing.T) {
	for _, d := range []int{1, 2, 3, 7} {
		pts := randomPoints(uint64(d), 200, d)
		tree, err := NewKDTree(pts)
		if err != nil {
			t.Fatal(err)
		}
		queries := randomPoints(uint64(d)+100, 50, d)
		for _, k := range []int{1, 3, 10} {
			for qi, q := range queries {
				got, err := tree.Nearest(q, k)
				if err != nil {
					t.Fatal(err)
				}
				want, err := BruteNearest(pts, q, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("d=%d k=%d query %d: %d results, want %d", d, k, qi, len(got), len(want))
				}
				for i := range got {
					// Indices may differ under exact distance ties;
					// distances must agree exactly.
					if got[i].DistSq != want[i].DistSq {
						t.Fatalf("d=%d k=%d query %d: dist[%d] = %g, want %g",
							d, k, qi, i, got[i].DistSq, want[i].DistSq)
					}
				}
			}
		}
	}
}

func TestKDTreeNearestOrdering(t *testing.T) {
	pts := randomPoints(5, 100, 3)
	tree, err := NewKDTree(pts)
	if err != nil {
		t.Fatal(err)
	}
	nbrs, err := tree.Nearest(mat.Vector{0, 0, 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i].DistSq < nbrs[i-1].DistSq {
			t.Fatalf("results not sorted: %v", nbrs)
		}
	}
}

func TestKDTreeKLargerThanN(t *testing.T) {
	pts := randomPoints(6, 5, 2)
	tree, err := NewKDTree(pts)
	if err != nil {
		t.Fatal(err)
	}
	nbrs, err := tree.Nearest(mat.Vector{0, 0}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 5 {
		t.Errorf("k > n returned %d results, want 5", len(nbrs))
	}
}

func TestKDTreeQueryErrors(t *testing.T) {
	tree, err := NewKDTree(randomPoints(7, 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Nearest(mat.Vector{0}, 1); err == nil {
		t.Error("wrong query dimension accepted")
	}
	if _, err := tree.Nearest(mat.Vector{0, 0}, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestKDTreeDuplicatePoints(t *testing.T) {
	pts := []mat.Vector{{1, 1}, {1, 1}, {1, 1}, {2, 2}}
	tree, err := NewKDTree(pts)
	if err != nil {
		t.Fatal(err)
	}
	nbrs, err := tree.Nearest(mat.Vector{1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, nb := range nbrs {
		if nb.DistSq != 0 {
			t.Errorf("duplicate query found non-zero distance %g", nb.DistSq)
		}
	}
}

func TestKDTreeAccessors(t *testing.T) {
	tree, err := NewKDTree(randomPoints(8, 9, 4))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 9 || tree.Dim() != 4 {
		t.Errorf("Len=%d Dim=%d", tree.Len(), tree.Dim())
	}
}

func TestBruteNearestErrors(t *testing.T) {
	if _, err := BruteNearest(nil, mat.Vector{1}, 1); err == nil {
		t.Error("empty points accepted")
	}
	pts := randomPoints(9, 4, 2)
	if _, err := BruteNearest(pts, mat.Vector{1}, 1); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := BruteNearest(pts, mat.Vector{1, 2}, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

// Property: the k-th nearest distance from the tree equals brute force for
// random configurations.
func TestKDTreeBruteEquivalenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.IntN(60)
		pts := randomPoints(seed+1, n, 3)
		tree, err := NewKDTree(pts)
		if err != nil {
			return false
		}
		q := mat.Vector{r.Uniform(-10, 10), r.Uniform(-10, 10), r.Uniform(-10, 10)}
		k := 1 + r.IntN(n)
		got, err := tree.Nearest(q, k)
		if err != nil {
			return false
		}
		want, err := BruteNearest(pts, q, k)
		if err != nil {
			return false
		}
		for i := range got {
			if got[i].DistSq != want[i].DistSq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKDTreeNearest(b *testing.B) {
	pts := randomPoints(10, 4000, 8)
	tree, err := NewKDTree(pts)
	if err != nil {
		b.Fatal(err)
	}
	q := mat.Vector{0, 0, 0, 0, 0, 0, 0, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Nearest(q, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBruteNearest(b *testing.B) {
	pts := randomPoints(11, 4000, 8)
	q := mat.Vector{0, 0, 0, 0, 0, 0, 0, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BruteNearest(pts, q, 5); err != nil {
			b.Fatal(err)
		}
	}
}
