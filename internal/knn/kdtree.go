// Package knn implements nearest-neighbour classification and regression —
// the unmodified data mining algorithm the paper runs on condensed
// (anonymized) data to demonstrate that condensation needs no
// problem-specific algorithm redesign.
//
// Two search backends are provided: exact brute force, and an exact
// KD-tree that is asymptotically faster in low-to-moderate dimension. Both
// return identical results; the KD-tree simply prunes.
package knn

import (
	"container/heap"
	"fmt"
	"sort"

	"condensation/internal/mat"
)

// kdNode is one node of a KD-tree over record indices.
type kdNode struct {
	idx         int // index into the backing points
	axis        int
	left, right *kdNode
}

// KDTree is an exact nearest-neighbour index over a fixed point set.
type KDTree struct {
	points []mat.Vector
	root   *kdNode
	dim    int
}

// NewKDTree builds a balanced KD-tree by recursive median splits. The
// points slice is retained (not copied); callers must not mutate it.
func NewKDTree(points []mat.Vector) (*KDTree, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("knn: empty point set")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("knn: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("knn: point %d has dimension %d, want %d", i, len(p), dim)
		}
		if !p.IsFinite() {
			return nil, fmt.Errorf("knn: point %d has non-finite values", i)
		}
	}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	t := &KDTree{points: points, dim: dim}
	t.root = t.build(idx, 0)
	return t, nil
}

// build recursively constructs the subtree for the given indices.
func (t *KDTree) build(idx []int, depth int) *kdNode {
	if len(idx) == 0 {
		return nil
	}
	axis := depth % t.dim
	sort.Slice(idx, func(a, b int) bool {
		return t.points[idx[a]][axis] < t.points[idx[b]][axis]
	})
	mid := len(idx) / 2
	node := &kdNode{idx: idx[mid], axis: axis}
	node.left = t.build(idx[:mid], depth+1)
	node.right = t.build(idx[mid+1:], depth+1)
	return node
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.points) }

// Dim returns the dimensionality of the indexed points.
func (t *KDTree) Dim() int { return t.dim }

// Neighbor is one nearest-neighbour result.
type Neighbor struct {
	// Index identifies the point in the training order.
	Index int
	// DistSq is the squared Euclidean distance to the query.
	DistSq float64
}

// neighborHeap is a max-heap on DistSq, so the current worst of the best-k
// sits at the root and can be evicted in O(log k).
type neighborHeap []Neighbor

func (h neighborHeap) Len() int            { return len(h) }
func (h neighborHeap) Less(i, j int) bool  { return h[i].DistSq > h[j].DistSq }
func (h neighborHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *neighborHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Nearest returns the k nearest indexed points to the query, ordered by
// ascending distance. If fewer than k points are indexed, all are
// returned.
func (t *KDTree) Nearest(query mat.Vector, k int) ([]Neighbor, error) {
	if len(query) != t.dim {
		return nil, fmt.Errorf("knn: query dimension %d, index dimension %d", len(query), t.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("knn: k = %d, must be ≥ 1", k)
	}
	if k > len(t.points) {
		k = len(t.points)
	}
	h := make(neighborHeap, 0, k+1)
	t.search(t.root, query, k, &h)
	out := make([]Neighbor, len(h))
	copy(out, h)
	sort.Slice(out, func(a, b int) bool { return out[a].DistSq < out[b].DistSq })
	return out, nil
}

// search walks the tree, pruning subtrees whose bounding half-space cannot
// contain a point closer than the current k-th best.
func (t *KDTree) search(node *kdNode, query mat.Vector, k int, h *neighborHeap) {
	if node == nil {
		return
	}
	p := t.points[node.idx]
	d := query.DistSq(p)
	if h.Len() < k {
		heap.Push(h, Neighbor{Index: node.idx, DistSq: d})
	} else if d < (*h)[0].DistSq {
		(*h)[0] = Neighbor{Index: node.idx, DistSq: d}
		heap.Fix(h, 0)
	}

	diff := query[node.axis] - p[node.axis]
	near, far := node.left, node.right
	if diff > 0 {
		near, far = far, near
	}
	t.search(near, query, k, h)
	// Visit the far side only if the splitting plane is closer than the
	// current k-th best distance (or the heap is not yet full).
	if h.Len() < k || diff*diff < (*h)[0].DistSq {
		t.search(far, query, k, h)
	}
}

// BruteNearest performs exact k-nearest-neighbour search by linear scan —
// the reference implementation the KD-tree is tested against, and the
// faster choice for very small training sets.
func BruteNearest(points []mat.Vector, query mat.Vector, k int) ([]Neighbor, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("knn: empty point set")
	}
	if len(query) != len(points[0]) {
		return nil, fmt.Errorf("knn: query dimension %d, points dimension %d", len(query), len(points[0]))
	}
	if k < 1 {
		return nil, fmt.Errorf("knn: k = %d, must be ≥ 1", k)
	}
	if k > len(points) {
		k = len(points)
	}
	h := make(neighborHeap, 0, k+1)
	for i, p := range points {
		d := query.DistSq(p)
		if h.Len() < k {
			heap.Push(&h, Neighbor{Index: i, DistSq: d})
		} else if d < h[0].DistSq {
			h[0] = Neighbor{Index: i, DistSq: d}
			heap.Fix(&h, 0)
		}
	}
	out := make([]Neighbor, len(h))
	copy(out, h)
	sort.Slice(out, func(a, b int) bool { return out[a].DistSq < out[b].DistSq })
	return out, nil
}
