// Package knn implements nearest-neighbour classification and regression —
// the unmodified data mining algorithm the paper runs on condensed
// (anonymized) data to demonstrate that condensation needs no
// problem-specific algorithm redesign.
//
// Two search backends are provided: exact brute force, and an exact
// KD-tree that is asymptotically faster in low-to-moderate dimension. Both
// return identical results; the KD-tree simply prunes.
package knn

import (
	"fmt"
	"sort"

	"condensation/internal/kernel"
	"condensation/internal/mat"
)

// kdNode is one node of a KD-tree over record indices.
type kdNode struct {
	idx         int // index into the backing points
	axis        int
	left, right *kdNode
}

// KDTree is an exact nearest-neighbour index over a fixed point set.
type KDTree struct {
	points []mat.Vector
	root   *kdNode
	dim    int
}

// NewKDTree builds a balanced KD-tree by recursive median splits. The
// points slice is retained (not copied); callers must not mutate it.
func NewKDTree(points []mat.Vector) (*KDTree, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("knn: empty point set")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("knn: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("knn: point %d has dimension %d, want %d", i, len(p), dim)
		}
		if !p.IsFinite() {
			return nil, fmt.Errorf("knn: point %d has non-finite values", i)
		}
	}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	t := &KDTree{points: points, dim: dim}
	t.root = t.build(idx, 0)
	return t, nil
}

// build recursively constructs the subtree for the given indices.
func (t *KDTree) build(idx []int, depth int) *kdNode {
	if len(idx) == 0 {
		return nil
	}
	axis := depth % t.dim
	sort.Slice(idx, func(a, b int) bool {
		return t.points[idx[a]][axis] < t.points[idx[b]][axis]
	})
	mid := len(idx) / 2
	node := &kdNode{idx: idx[mid], axis: axis}
	node.left = t.build(idx[:mid], depth+1)
	node.right = t.build(idx[mid+1:], depth+1)
	return node
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.points) }

// Dim returns the dimensionality of the indexed points.
func (t *KDTree) Dim() int { return t.dim }

// Neighbor is one nearest-neighbour result.
type Neighbor struct {
	// Index identifies the point in the training order.
	Index int
	// DistSq is the squared Euclidean distance to the query.
	DistSq float64
}

// neighborHeap is a max-heap on DistSq, so the current worst of the best-k
// sits at the root and can be evicted in O(log k). The sift operations are
// hand-rolled rather than going through container/heap, whose interface
// methods box one Neighbor per push — a per-visited-node allocation in
// what is the innermost loop of every experiment.
type neighborHeap []Neighbor

// push appends x and restores the heap invariant (sift up).
func (h *neighborHeap) push(x Neighbor) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].DistSq >= s[i].DistSq {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

// replaceRoot overwrites the current worst neighbour and restores the
// invariant (sift down).
func (h neighborHeap) replaceRoot(x Neighbor) {
	h[0] = x
	i := 0
	for {
		largest := i
		if l := 2*i + 1; l < len(h) && h[l].DistSq > h[largest].DistSq {
			largest = l
		}
		if r := 2*i + 2; r < len(h) && h[r].DistSq > h[largest].DistSq {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}

// sortNeighbors orders results by ascending distance, breaking exact ties
// by training index so the ordering is deterministic. Insertion sort: k is
// small and, unlike sort.Slice, it allocates nothing.
func sortNeighbors(ns []Neighbor) {
	for i := 1; i < len(ns); i++ {
		x := ns[i]
		j := i - 1
		for j >= 0 && (ns[j].DistSq > x.DistSq || (ns[j].DistSq == x.DistSq && ns[j].Index > x.Index)) {
			ns[j+1] = ns[j]
			j--
		}
		ns[j+1] = x
	}
}

// Nearest returns the k nearest indexed points to the query, ordered by
// ascending distance. If fewer than k points are indexed, all are
// returned.
func (t *KDTree) Nearest(query mat.Vector, k int) ([]Neighbor, error) {
	return t.NearestInto(query, k, nil)
}

// NearestInto is Nearest with a caller-provided buffer: the result reuses
// buf's backing array when it has capacity, so a caller sweeping many
// queries (one scratch buffer per worker) performs no per-query
// allocation. buf's contents are overwritten; pass the previous return
// value on the next call.
func (t *KDTree) NearestInto(query mat.Vector, k int, buf []Neighbor) ([]Neighbor, error) {
	if len(query) != t.dim {
		return nil, fmt.Errorf("knn: query dimension %d, index dimension %d", len(query), t.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("knn: k = %d, must be ≥ 1", k)
	}
	if k > len(t.points) {
		k = len(t.points)
	}
	h := neighborHeap(buf[:0])
	t.search(t.root, query, k, &h)
	sortNeighbors(h)
	return h, nil
}

// search walks the tree, pruning subtrees whose bounding half-space cannot
// contain a point closer than the current k-th best.
func (t *KDTree) search(node *kdNode, query mat.Vector, k int, h *neighborHeap) {
	if node == nil {
		return
	}
	p := t.points[node.idx]
	d := kernel.DistSq(query, p)
	if len(*h) < k {
		h.push(Neighbor{Index: node.idx, DistSq: d})
	} else if d < (*h)[0].DistSq {
		h.replaceRoot(Neighbor{Index: node.idx, DistSq: d})
	}

	diff := query[node.axis] - p[node.axis]
	near, far := node.left, node.right
	if diff > 0 {
		near, far = far, near
	}
	t.search(near, query, k, h)
	// Visit the far side only if the splitting plane is closer than the
	// current k-th best distance (or the heap is not yet full).
	if len(*h) < k || diff*diff < (*h)[0].DistSq {
		t.search(far, query, k, h)
	}
}

// BruteNearest performs exact k-nearest-neighbour search by linear scan —
// the reference implementation the KD-tree is tested against, and the
// faster choice for very small training sets.
func BruteNearest(points []mat.Vector, query mat.Vector, k int) ([]Neighbor, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("knn: empty point set")
	}
	if len(query) != len(points[0]) {
		return nil, fmt.Errorf("knn: query dimension %d, points dimension %d", len(query), len(points[0]))
	}
	if k < 1 {
		return nil, fmt.Errorf("knn: k = %d, must be ≥ 1", k)
	}
	if k > len(points) {
		k = len(points)
	}
	h := make(neighborHeap, 0, k)
	for i, p := range points {
		d := kernel.DistSq(query, p)
		if len(h) < k {
			h.push(Neighbor{Index: i, DistSq: d})
		} else if d < h[0].DistSq {
			h.replaceRoot(Neighbor{Index: i, DistSq: d})
		}
	}
	sortNeighbors(h)
	return h, nil
}
