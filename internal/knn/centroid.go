package knn

import (
	"fmt"
	"math"

	"condensation/internal/kernel"
	"condensation/internal/mat"
)

// CentroidIndex is an exact nearest-neighbour index over a small, mutable
// point set — the condensed-group centroids of the dynamic maintenance
// algorithm. Unlike the static KDTree, its points move (every absorbed
// record drifts one group mean) and new points appear (every split adds a
// group), so the index combines three mechanisms:
//
//   - a bounding-box tree whose leaf coordinates are kept CURRENT: an
//     in-tree update writes the moved point's coordinates straight into
//     its leaf slot, so candidate distances are always exact. Only the
//     node bounding boxes go stale; the search compensates by pruning
//     with a drift-inflated radius — a subtree is skipped only when even
//     a point that drifted the maximum accumulated ε outside its box
//     could not beat the current best. Drift loosens pruning, never
//     correctness.
//   - a tombstone for any point that moved far (a group split relocates
//     its centroid by a large jump): the point leaves the tree by having
//     its leaf slot overwritten with +Inf coordinates — it then loses
//     every distance comparison without the scan loop ever branching on
//     a liveness flag — and joins a small "dirty" list answered by linear
//     scan, so one big jump cannot blow up ε for everyone else. Points
//     born after the last rebuild live on the same dirty list.
//   - a threshold rebuild that re-files every point into reused buffers,
//     emptying the dirty list and resetting ε.
//
// Every query returns the lexicographic (distance, id) minimum — precisely
// the answer a single linear scan in id order produces — which is what
// lets the dynamic engine swap this index in without changing a single
// routed record.
//
// The tree splits each node's longest box extent at the median and stores
// points in leaf buckets laid out contiguously in build order, so a leaf
// scan is a sequential sweep of a flat coordinate array. Box pruning holds
// up in the moderate dimensionalities of condensation workloads (≈5–60
// attributes), where classic splitting-plane kd pruning decays into a full
// scan. The tree is a flat arena of nodes, and every rebuild reuses all
// storage, so steady-state maintenance (update, rebuild, query) allocates
// nothing.
//
// CentroidIndex is not safe for concurrent mutation, but any number of
// goroutines may call Nearest concurrently between mutations — queries
// are read-only.
type CentroidIndex struct {
	dim    int
	points []mat.Vector // current positions, owned copies
	dirty  []int        // ids not answerable from the tree, scanned linearly
	inTree []bool       // id -> answerable from the tree

	drift   []float64 // id -> position drift accumulated since it was filed
	eps     float64   // max drift over in-tree points (search inflation)
	budget  float64   // per-point drift cap before tombstoning, from box scale
	updates int       // in-tree updates since the last rebuild

	// The tree, all storage reused across rebuilds.
	nodes []ctNode  // arena, built depth-first
	boxes []float64 // per node: dim mins then dim maxes, 2*dim*arena-index
	flat  []float64 // leaf coordinates, contiguous in build order, kept current
	perm  []int     // point ids in build order: leaf i covers perm[lo:hi]
	slot  []int     // id -> build-order position in perm/flat
	root  int       // arena index of the root, -1 when no tree
}

// ctNode is one arena node of the tree: a leaf owns the points perm[lo:hi]
// (coordinates flat[lo*dim:hi*dim]); an internal node owns two children.
type ctNode struct {
	left, right int // arena indices, -1 on a leaf
	lo, hi      int // leaf bucket bounds in perm
}

// centroidRebuildMin is the dirty-list length below which a dirty-driven
// rebuild is never triggered: for tiny indexes the linear scan is at least
// as fast as any tree, so rebuilding would be pure overhead.
const centroidRebuildMin = 16

// ctLeafSize is the maximum leaf bucket size: leaves are contiguous flat
// sweeps and internal boxes cost a distance test per visit, so leaves are
// kept fat enough that box tests don't dominate the visit budget. The
// kernel's pruned leaf sweep runs at a few cycles per row, which moves
// the balance point up to fat 64-row leaves.
const ctLeafSize = 64

// ctBudgetShrink divides the root box diagonal to set the per-point drift
// budget: drifts up to diagonal/ctBudgetShrink ride in the tree (inflating
// search radii by at most that much), larger jumps tombstone.
const ctBudgetShrink = 128

// NewCentroidIndex builds an index over copies of the given centroids
// (later in-place mutation of the caller's vectors does not corrupt it).
// An empty initial set is allowed; points are then supplied via Add.
func NewCentroidIndex(dim int, centroids []mat.Vector) (*CentroidIndex, error) {
	if dim < 1 {
		return nil, fmt.Errorf("knn: centroid dimension %d, must be ≥ 1", dim)
	}
	c := &CentroidIndex{dim: dim, root: -1}
	for i, p := range centroids {
		if len(p) != dim {
			return nil, fmt.Errorf("knn: centroid %d has dimension %d, want %d", i, len(p), dim)
		}
		c.points = append(c.points, p.Clone())
		c.dirty = append(c.dirty, i)
		c.inTree = append(c.inTree, false)
		c.drift = append(c.drift, 0)
	}
	c.maybeRebuild()
	return c, nil
}

// Len returns the number of indexed centroids.
func (c *CentroidIndex) Len() int { return len(c.points) }

// Dim returns the dimensionality of the indexed centroids.
func (c *CentroidIndex) Dim() int { return c.dim }

// Add appends a new centroid (copied) and returns its id. Ids are dense
// and stable: the i-th Add (counting initial centroids) owns id i forever.
func (c *CentroidIndex) Add(p mat.Vector) (int, error) {
	if len(p) != c.dim {
		return 0, fmt.Errorf("knn: centroid has dimension %d, want %d", len(p), c.dim)
	}
	id := len(c.points)
	c.points = append(c.points, p.Clone())
	c.inTree = append(c.inTree, false)
	c.dirty = append(c.dirty, id)
	c.drift = append(c.drift, 0)
	c.maybeRebuild()
	return id, nil
}

// Update records that centroid id has moved to p (copied). A move within
// the drift budget keeps the point in its tree leaf with its coordinates
// rewritten in place — distances stay exact, only its node boxes go stale
// by at most the accumulated drift, which searches inflate pruning by —
// while a large jump tombstones it onto the linear-scanned dirty list
// until the next rebuild.
func (c *CentroidIndex) Update(id int, p mat.Vector) error {
	if id < 0 || id >= len(c.points) {
		return fmt.Errorf("knn: centroid id %d out of range [0,%d)", id, len(c.points))
	}
	if len(p) != c.dim {
		return fmt.Errorf("knn: centroid has dimension %d, want %d", len(p), c.dim)
	}
	if c.inTree[id] {
		fp := c.flat[c.slot[id]*c.dim:]
		fp = fp[:c.dim]
		moved := c.drift[id] + math.Sqrt(p.DistSq(fp))
		if moved > c.budget {
			c.inTree[id] = false
			c.dirty = append(c.dirty, id)
			for j := range fp {
				fp[j] = math.Inf(1) // loses every comparison from now on
			}
		} else {
			c.drift[id] = moved
			if moved > c.eps {
				c.eps = moved
			}
			copy(fp, p)
		}
		c.updates++
	}
	copy(c.points[id], p)
	c.maybeRebuild()
	return nil
}

// maybeRebuild rebuilds the tree over current positions when enough has
// changed to matter: the dirty list has outgrown an eighth of the point
// set, or two updates per point have accumulated, enough that
// re-tightening the boxes (and resetting the drift inflation ε) pays for
// the build — centroid moves shrink as groups fill, so the boxes stay
// nearly tight for a long time and rebuilding more eagerly costs more in
// builds than it saves in pruning. Both triggers are floored so tiny
// indexes, where the linear scan wins anyway, never rebuild. Rebuilding
// re-files every point into reused buffers.
func (c *CentroidIndex) maybeRebuild() {
	n := len(c.points)
	dirtyTrigger := len(c.dirty) >= centroidRebuildMin && 8*len(c.dirty) >= n
	updateTrigger := c.updates >= 4*centroidRebuildMin && c.updates >= 2*n
	if !dirtyTrigger && !updateTrigger {
		return
	}
	if cap(c.perm) < n {
		c.perm = make([]int, n)
		c.slot = make([]int, n)
		c.flat = make([]float64, n*c.dim)
	}
	c.perm, c.slot, c.flat = c.perm[:n], c.slot[:n], c.flat[:n*c.dim]
	for i := range c.perm {
		c.perm[i] = i
	}
	c.nodes = c.nodes[:0]
	c.boxes = c.boxes[:0]
	c.root = c.buildTree(0, n)
	// buildTree partitioned perm into leaf buckets; lay the coordinates
	// out contiguously in that order so leaf scans sweep flat memory.
	for i, id := range c.perm {
		c.slot[id] = i
		copy(c.flat[i*c.dim:], c.points[id])
	}
	c.dirty = c.dirty[:0]
	for i := range c.inTree {
		c.inTree[i] = true
	}
	for i := range c.drift {
		c.drift[i] = 0
	}
	c.eps = 0
	c.updates = 0
	// Drift budget from the data's own scale: the root box diagonal.
	var diagSq float64
	rootBox := c.boxes[:2*c.dim]
	for j := 0; j < c.dim; j++ {
		e := rootBox[c.dim+j] - rootBox[j]
		diagSq += e * e
	}
	c.budget = math.Sqrt(diagSq) / ctBudgetShrink
}

// buildTree appends the subtree over perm[lo:hi] to the arena and returns
// its root's arena index: the node's bounding box is computed over its
// points' current positions, and the box's longest extent is median-split
// until buckets fit in a leaf.
func (c *CentroidIndex) buildTree(lo, hi int) int {
	ni := len(c.nodes)
	c.nodes = append(c.nodes, ctNode{left: -1, right: -1, lo: lo, hi: hi})
	// Bounding box over the bucket: dim mins, then dim maxes.
	b := len(c.boxes)
	first := c.points[c.perm[lo]]
	c.boxes = append(c.boxes, first...)
	c.boxes = append(c.boxes, first...)
	box := c.boxes[b : b+2*c.dim]
	for _, id := range c.perm[lo+1 : hi] {
		for j, v := range c.points[id] {
			if v < box[j] {
				box[j] = v
			}
			if v > box[c.dim+j] {
				box[c.dim+j] = v
			}
		}
	}
	if hi-lo <= ctLeafSize {
		return ni
	}
	axis, extent := 0, box[c.dim]-box[0]
	for j := 1; j < c.dim; j++ {
		if e := box[c.dim+j] - box[j]; e > extent {
			axis, extent = j, e
		}
	}
	mid := (lo + hi) / 2
	c.selectByAxis(c.perm[lo:hi], mid-lo, axis)
	left := c.buildTree(lo, mid)
	right := c.buildTree(mid, hi)
	c.nodes[ni].left, c.nodes[ni].right = left, right
	return ni
}

// selectByAxis partially sorts perm so perm[want] holds the element of
// rank want by current coordinate along axis (Hoare quickselect with
// median-of-three pivots; expected O(len)).
func (c *CentroidIndex) selectByAxis(perm []int, want, axis int) {
	key := func(i int) float64 { return c.points[perm[i]][axis] }
	lo, hi := 0, len(perm)-1
	for lo < hi {
		// Median-of-three pivot: order lo, mid, hi, then use the middle.
		mid := lo + (hi-lo)/2
		if key(mid) < key(lo) {
			perm[mid], perm[lo] = perm[lo], perm[mid]
		}
		if key(hi) < key(lo) {
			perm[hi], perm[lo] = perm[lo], perm[hi]
		}
		if key(hi) < key(mid) {
			perm[hi], perm[mid] = perm[mid], perm[hi]
		}
		pivot := key(mid)
		i, j := lo, hi
		for i <= j {
			for key(i) < pivot {
				i++
			}
			for key(j) > pivot {
				j--
			}
			if i <= j {
				perm[i], perm[j] = perm[j], perm[i]
				i++
				j--
			}
		}
		if want <= j {
			hi = j
		} else if want >= i {
			lo = i
		} else {
			return
		}
	}
}

// ctQuery is the running state of one Nearest search: the lexicographic
// best so far, plus the drift-inflated pruning bound (sqrt(bestD)+ε)²,
// recomputed only when the best improves.
type ctQuery struct {
	q        mat.Vector
	best     int
	bestD    float64
	eps      float64
	inflated float64 // subtrees with boxDist above this cannot win
}

// improve folds candidate (id, d) into the lexicographic best; callers
// may pre-filter on d <= bestD since anything above cannot win.
func (s *ctQuery) improve(id int, d float64) {
	if d < s.bestD {
		s.bestD, s.best = d, id
		if s.eps > 0 {
			r := math.Sqrt(d) + s.eps
			s.inflated = r * r
		} else {
			s.inflated = d
		}
	} else if d == s.bestD && id < s.best {
		s.best = id
	}
}

// Nearest returns the id of the centroid nearest to q and its squared
// distance, breaking exact distance ties by the smaller id — the same
// answer a linear scan in id order gives. It returns id −1 on an empty
// index.
func (c *CentroidIndex) Nearest(q mat.Vector) (int, float64) {
	s := ctQuery{q: q, best: -1, bestD: math.Inf(1), eps: c.eps, inflated: math.Inf(1)}
	if c.root >= 0 {
		c.treeSearch(c.root, &s)
	}
	// Dirty points live outside the tree until the next rebuild; fold
	// them in with the gather argmin kernel under the same (distance, id)
	// lexicographic order as the inline scan it replaced.
	s.best, s.bestD = kernel.ArgminIndexed(q, c.points, c.dirty, s.best, s.bestD)
	return s.best, s.bestD
}

// boxDist returns the squared distance from q to node ni's bounding box
// (zero inside the box) — a lower bound on the build-time distance to any
// point of the subtree; points may since have drifted up to ε closer,
// which the caller's inflated bound accounts for. The loop runs straight
// through all dims: an early bound exit costs more in per-dim branches
// than the few saved flops for the handful of dims a box has.
func (c *CentroidIndex) boxDist(ni int, q mat.Vector) float64 {
	box := c.boxes[ni*2*c.dim:]
	lo, hi := box[:len(q)], box[c.dim:c.dim+len(q)]
	var s float64
	for j, v := range q {
		if l := lo[j]; v < l {
			d := l - v
			s += d * d
		} else if h := hi[j]; v > h {
			d := v - h
			s += d * d
		}
	}
	return s
}

// treeSearch descends the tree for the live point minimizing the
// lexicographic (squared distance, id) key, nearer child first, pruning
// subtrees whose box cannot hold a point within the drift-inflated best
// radius. Leaf coordinates are current (and +Inf for tombstones), so
// candidate distances are exact with no liveness branch. A subtree is
// still visited when its box bound exactly equals the inflated bound
// (≤, not <): an equal-distance lower-id point may sit exactly on the
// boundary, and routing equivalence needs the lowest id.
func (c *CentroidIndex) treeSearch(ni int, s *ctQuery) {
	node := &c.nodes[ni]
	if node.left < 0 {
		// One fused kernel sweep over the leaf's contiguous arena rows,
		// with perm carrying each row's centroid id. Tombstone rows are
		// +Inf coordinates, so their distances are +Inf and never win —
		// exactly as in the scalar loop this replaces. The drift-inflated
		// bound is only consulted at internal nodes, so refreshing it once
		// after the leaf (instead of per improvement) changes nothing.
		id, d := kernel.ArgminFlatIDs(s.q, c.flat[node.lo*c.dim:node.hi*c.dim], c.perm[node.lo:node.hi], s.best, s.bestD)
		if d < s.bestD {
			s.improve(id, d)
		} else {
			s.best = id // equal distance, lower id
		}
		return
	}
	dl, dr := c.boxDist(node.left, s.q), c.boxDist(node.right, s.q)
	if dl <= dr {
		if dl <= s.inflated {
			c.treeSearch(node.left, s)
		}
		if dr <= s.inflated {
			c.treeSearch(node.right, s)
		}
	} else {
		if dr <= s.inflated {
			c.treeSearch(node.right, s)
		}
		if dl <= s.inflated {
			c.treeSearch(node.left, s)
		}
	}
}
