package linreg

import (
	"math"
	"testing"

	"condensation/internal/core"
	"condensation/internal/datagen"
	"condensation/internal/dataset"
	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/stats"
)

func linearData(seed uint64, n int, noise float64) *dataset.Dataset {
	r := rng.New(seed)
	ds := &dataset.Dataset{Task: dataset.Regression, Attrs: []string{"a", "b"}}
	for i := 0; i < n; i++ {
		x := mat.Vector{r.Uniform(-3, 3), r.Uniform(0, 5)}
		y := 2*x[0] - 0.5*x[1] + 7 + noise*r.Norm()
		ds.X = append(ds.X, x)
		ds.Targets = append(ds.Targets, y)
	}
	return ds
}

func TestTrainExactRecovery(t *testing.T) {
	ds := linearData(1, 200, 0)
	m, err := Train(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-2) > 1e-8 || math.Abs(m.Coef[1]+0.5) > 1e-8 || math.Abs(m.Intercept-7) > 1e-8 {
		t.Errorf("fit %v + %g, want [2 -0.5] + 7", m.Coef, m.Intercept)
	}
	r2, err := m.R2(ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2-1) > 1e-10 {
		t.Errorf("R² = %g, want 1", r2)
	}
}

func TestTrainNoisyData(t *testing.T) {
	ds := linearData(2, 2000, 0.5)
	m, err := Train(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-2) > 0.05 || math.Abs(m.Intercept-7) > 0.1 {
		t.Errorf("noisy fit %v + %g", m.Coef, m.Intercept)
	}
	r2, err := m.R2(ds)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.9 {
		t.Errorf("R² = %g", r2)
	}
}

// The statistics-direct path must match the record path exactly: the
// normal equations are built from the same moments.
func TestFromGroupsMatchesTrainExactly(t *testing.T) {
	ds := linearData(3, 150, 0.3)
	direct, err := Train(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Jointly condense (features ‖ target) at k=10, keep the group stats.
	d := ds.Dim()
	joint := make([]mat.Vector, ds.Len())
	for i, x := range ds.X {
		row := make(mat.Vector, d+1)
		copy(row, x)
		row[d] = ds.Targets[i]
		joint[i] = row
	}
	cond, err := core.Static(joint, 10, rng.New(4), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fromStats, err := FromGroups(cond.Groups(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !fromStats.Coef.Equal(direct.Coef, 1e-8) {
		t.Errorf("coef %v vs %v", fromStats.Coef, direct.Coef)
	}
	if math.Abs(fromStats.Intercept-direct.Intercept) > 1e-8 {
		t.Errorf("intercept %g vs %g", fromStats.Intercept, direct.Intercept)
	}
}

func TestRidgeStabilizesCollinear(t *testing.T) {
	// Two identical features: plain OLS is singular, ridge resolves it.
	r := rng.New(5)
	ds := &dataset.Dataset{Task: dataset.Regression, Attrs: []string{"a", "a2"}}
	for i := 0; i < 100; i++ {
		v := r.Uniform(-1, 1)
		ds.X = append(ds.X, mat.Vector{v, v})
		ds.Targets = append(ds.Targets, 3*v)
	}
	if _, err := Train(ds, Options{}); err == nil {
		t.Log("plain OLS survived collinearity (numerically lucky) — acceptable")
	}
	m, err := Train(ds, Options{Ridge: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Predict(mat.Vector{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.5) > 1e-3 {
		t.Errorf("ridge prediction %g, want 1.5", got)
	}
}

func TestLinRegOnAnonymizedAbalone(t *testing.T) {
	ds, err := datagen.ByName("abalone", 6)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	train, test, err := ds.TrainTestSplit(0.75, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	orig, err := Train(train, Options{})
	if err != nil {
		t.Fatal(err)
	}
	origR2, err := orig.R2(test)
	if err != nil {
		t.Fatal(err)
	}
	anon, _, err := core.Anonymize(train, core.AnonymizeConfig{K: 20, Mode: core.ModeStatic}, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	anonModel, err := Train(anon, Options{})
	if err != nil {
		t.Fatal(err)
	}
	anonR2, err := anonModel.R2(test)
	if err != nil {
		t.Fatal(err)
	}
	if origR2 < 0.5 {
		t.Fatalf("original R² = %g; abalone generator not linearly predictable", origR2)
	}
	if anonR2 < origR2-0.1 {
		t.Errorf("anonymized R² %.4f vs original %.4f", anonR2, origR2)
	}
}

func TestTrainErrors(t *testing.T) {
	cls := &dataset.Dataset{Task: dataset.Classification, X: []mat.Vector{{1}}, Labels: []int{0}}
	if _, err := Train(cls, Options{}); err == nil {
		t.Error("classification data accepted")
	}
	empty := &dataset.Dataset{Task: dataset.Regression}
	if _, err := Train(empty, Options{}); err == nil {
		t.Error("empty data accepted")
	}
	bad := linearData(8, 5, 0)
	bad.Targets = bad.Targets[:3]
	if _, err := Train(bad, Options{}); err == nil {
		t.Error("invalid data accepted")
	}
}

func TestFromGroupsErrors(t *testing.T) {
	if _, err := FromGroups(nil, Options{}); err == nil {
		t.Error("no groups accepted")
	}
	g1 := stats.NewGroup(1) // joint dim 1: no features
	_ = g1.Add(mat.Vector{1})
	if _, err := FromGroups([]*stats.Group{g1}, Options{}); err == nil {
		t.Error("joint dimension 1 accepted")
	}
	g2 := stats.NewGroup(3)
	_ = g2.Add(mat.Vector{1, 2, 3})
	if _, err := FromGroups([]*stats.Group{g2}, Options{Ridge: -1}); err == nil {
		t.Error("negative ridge accepted")
	}
	g3 := stats.NewGroup(2)
	mixed := []*stats.Group{g2, g3}
	_ = g3.Add(mat.Vector{1, 2})
	if _, err := FromGroups(mixed, Options{}); err == nil {
		t.Error("mixed dimensions accepted")
	}
}

func TestPredictErrors(t *testing.T) {
	m, err := Train(linearData(9, 20, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(mat.Vector{1}); err == nil {
		t.Error("wrong dimension accepted")
	}
	if _, err := m.Predict(mat.Vector{1, math.NaN()}); err == nil {
		t.Error("NaN query accepted")
	}
	cls := &dataset.Dataset{Task: dataset.Classification, X: []mat.Vector{{1, 2}}, Labels: []int{0}}
	if _, err := m.R2(cls); err == nil {
		t.Error("R2 on classification data accepted")
	}
	empty := &dataset.Dataset{Task: dataset.Regression}
	if _, err := m.R2(empty); err == nil {
		t.Error("R2 on empty data accepted")
	}
}

func TestR2ConstantTarget(t *testing.T) {
	ds := &dataset.Dataset{
		Task:    dataset.Regression,
		X:       []mat.Vector{{1}, {2}, {3}},
		Targets: []float64{5, 5, 5},
	}
	m, err := Train(ds, Options{Ridge: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.R2(ds)
	if err != nil {
		t.Fatal(err)
	}
	if r2 != 1 && !math.IsInf(r2, -1) {
		// A perfect fit of the constant yields 1; any residual yields −Inf
		// by the documented convention.
		if math.Abs(r2-1) > 1e-6 {
			t.Errorf("R² on constant target = %g", r2)
		}
	}
}
