// Package linreg implements ordinary least squares linear regression with
// two training paths, mirroring package nb for the regression case:
//
//   - Train fits on records (the "unmodified algorithm on anonymized
//     data" route of the paper);
//   - FromGroups fits *directly from condensed group statistics* of
//     jointly condensed (features ‖ target) records — the normal
//     equations need exactly Σx, Σxxᵀ, Σxy, Σy and n, all of which are
//     entries of the merged (Fs, Sc, n) triple, so the fit from the H set
//     is bit-for-bit the fit from the raw records.
//
// The intercept is always included. A tiny ridge term can be supplied for
// collinear designs.
package linreg

import (
	"errors"
	"fmt"
	"math"

	"condensation/internal/dataset"
	"condensation/internal/mat"
	"condensation/internal/stats"
)

// Model is a fitted linear model y ≈ intercept + coef·x.
type Model struct {
	// Intercept is the bias term.
	Intercept float64
	// Coef holds one coefficient per feature.
	Coef mat.Vector
}

// Options tunes the fit.
type Options struct {
	// Ridge adds λ·I to the normal-equation matrix (features only, not
	// the intercept), stabilizing collinear designs. 0 = plain OLS.
	Ridge float64
}

// Train fits the model on a regression data set.
func Train(train *dataset.Dataset, opts Options) (*Model, error) {
	if train.Task != dataset.Regression {
		return nil, fmt.Errorf("linreg: needs a regression data set, got %v", train.Task)
	}
	if err := train.Validate(); err != nil {
		return nil, fmt.Errorf("linreg: training data: %w", err)
	}
	if train.Len() == 0 {
		return nil, errors.New("linreg: empty training data")
	}
	// Build the joint moment group and defer to the statistics path, so
	// the record path and the statistics path are one implementation.
	d := train.Dim()
	g := stats.NewGroup(d + 1)
	joint := make(mat.Vector, d+1)
	for i, x := range train.X {
		copy(joint, x)
		joint[d] = train.Targets[i]
		if err := g.Add(joint); err != nil {
			return nil, err
		}
	}
	return FromGroups([]*stats.Group{g}, opts)
}

// FromGroups fits the model from condensed group statistics of jointly
// condensed records whose final attribute is the regression target (the
// layout core.Anonymize uses for regression data). The groups are merged
// exactly and the normal equations are assembled from the merged moments.
func FromGroups(groups []*stats.Group, opts Options) (*Model, error) {
	if len(groups) == 0 {
		return nil, errors.New("linreg: no group statistics")
	}
	if opts.Ridge < 0 {
		return nil, fmt.Errorf("linreg: negative ridge %g", opts.Ridge)
	}
	jointDim := groups[0].Dim()
	if jointDim < 2 {
		return nil, fmt.Errorf("linreg: joint dimension %d needs at least one feature plus the target", jointDim)
	}
	merged := stats.NewGroup(jointDim)
	for i, g := range groups {
		if err := merged.Merge(g); err != nil {
			return nil, fmt.Errorf("linreg: group %d: %w", i, err)
		}
	}
	if merged.N() == 0 {
		return nil, errors.New("linreg: no training mass")
	}
	d := jointDim - 1 // feature count
	fs := merged.FirstOrderSums()
	sc := merged.SecondOrderSums()
	n := float64(merged.N())

	// Augmented normal equations over [x, 1]:
	//   [ Σxxᵀ + λI   Σx ] [coef]      [ Σxy ]
	//   [ Σxᵀ         n  ] [b   ]  =   [ Σy  ]
	a := mat.New(d+1, d+1)
	b := make(mat.Vector, d+1)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			a.Set(i, j, sc.At(i, j))
		}
		a.Set(i, i, a.At(i, i)+opts.Ridge)
		a.Set(i, d, fs[i])
		a.Set(d, i, fs[i])
		b[i] = sc.At(i, d) // Σ x_i·y
	}
	a.Set(d, d, n)
	b[d] = fs[d] // Σy

	sol, err := mat.SolveSPD(a, b)
	if err != nil {
		return nil, fmt.Errorf("linreg: singular design (consider Options.Ridge): %w", err)
	}
	return &Model{Intercept: sol[d], Coef: sol[:d].Clone()}, nil
}

// Predict returns the model's estimate for x.
func (m *Model) Predict(x mat.Vector) (float64, error) {
	if len(x) != len(m.Coef) {
		return 0, fmt.Errorf("linreg: query dimension %d, want %d", len(x), len(m.Coef))
	}
	if !x.IsFinite() {
		return 0, errors.New("linreg: query has non-finite values")
	}
	return m.Intercept + m.Coef.Dot(x), nil
}

// PredictAll estimates every record of a data set, in order.
func (m *Model) PredictAll(test *dataset.Dataset) ([]float64, error) {
	out := make([]float64, test.Len())
	for i, x := range test.X {
		y, err := m.Predict(x)
		if err != nil {
			return nil, fmt.Errorf("linreg: record %d: %w", i, err)
		}
		out[i] = y
	}
	return out, nil
}

// R2 returns the coefficient of determination on a test set (1 = perfect,
// 0 = no better than the mean, negative = worse than the mean).
func (m *Model) R2(test *dataset.Dataset) (float64, error) {
	if test.Task != dataset.Regression {
		return 0, fmt.Errorf("linreg: R2 needs regression data, got %v", test.Task)
	}
	if test.Len() == 0 {
		return 0, errors.New("linreg: empty test data")
	}
	preds, err := m.PredictAll(test)
	if err != nil {
		return 0, err
	}
	var meanY float64
	for _, y := range test.Targets {
		meanY += y
	}
	meanY /= float64(test.Len())
	var ssRes, ssTot float64
	for i, y := range test.Targets {
		r := y - preds[i]
		ssRes += r * r
		t := y - meanY
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1, nil
		}
		return math.Inf(-1), nil
	}
	return 1 - ssRes/ssTot, nil
}
