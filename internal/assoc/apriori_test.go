package assoc

import (
	"math"
	"reflect"
	"testing"

	"condensation/internal/rng"
)

// classic market-basket toy: {1,2} co-occur strongly.
func basketData() [][]int {
	return [][]int{
		{1, 2, 3},
		{1, 2},
		{1, 2, 4},
		{1, 3},
		{2, 4},
		{1, 2, 3},
	}
}

func supportOf(frequent []Frequent, items ...int) (float64, bool) {
	want := ItemSet(items)
	for _, f := range frequent {
		if reflect.DeepEqual(f.Items, want) {
			return f.Support, true
		}
	}
	return 0, false
}

func TestAprioriKnownSupports(t *testing.T) {
	freq, err := Apriori(basketData(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		items []int
		sup   float64
	}{
		{[]int{1}, 5.0 / 6},
		{[]int{2}, 5.0 / 6},
		{[]int{1, 2}, 4.0 / 6},
	}
	for _, tc := range cases {
		got, ok := supportOf(freq, tc.items...)
		if !ok {
			t.Errorf("itemset %v not found", tc.items)
			continue
		}
		if math.Abs(got-tc.sup) > 1e-12 {
			t.Errorf("support(%v) = %g, want %g", tc.items, got, tc.sup)
		}
	}
	// {3} has support 1/2 exactly — included at minSupport 0.5.
	if _, ok := supportOf(freq, 3); !ok {
		t.Error("itemset {3} at exactly minSupport excluded")
	}
	// {4} has support 1/3 — excluded.
	if _, ok := supportOf(freq, 4); ok {
		t.Error("itemset {4} below minSupport included")
	}
}

func TestAprioriDownwardClosure(t *testing.T) {
	freq, err := Apriori(basketData(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Every subset of a frequent itemset must itself be frequent.
	index := map[string]bool{}
	for _, f := range freq {
		index[f.Items.key()] = true
	}
	for _, f := range freq {
		if len(f.Items) < 2 {
			continue
		}
		for skip := range f.Items {
			var sub ItemSet
			for i, it := range f.Items {
				if i != skip {
					sub = append(sub, it)
				}
			}
			if !index[sub.key()] {
				t.Errorf("frequent %v has infrequent subset %v", f.Items, sub)
			}
		}
	}
}

func TestAprioriMatchesBruteForce(t *testing.T) {
	r := rng.New(1)
	const nTx, nItems = 60, 6
	txs := make([][]int, nTx)
	for i := range txs {
		for item := 0; item < nItems; item++ {
			if r.Bool(0.4) {
				txs[i] = append(txs[i], item)
			}
		}
	}
	const minSup = 0.2
	freq, err := Apriori(txs, minSup)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, f := range freq {
		got[f.Items.key()] = f.Support
	}
	// Brute force over all 2^6−1 itemsets.
	for mask := 1; mask < 1<<nItems; mask++ {
		var set ItemSet
		for item := 0; item < nItems; item++ {
			if mask&(1<<item) != 0 {
				set = append(set, item)
			}
		}
		count := 0
		for _, tx := range txs {
			if containsAll(tx, set) {
				count++
			}
		}
		sup := float64(count) / nTx
		if sup >= minSup {
			if g, ok := got[set.key()]; !ok {
				t.Errorf("missing frequent set %v (support %g)", set, sup)
			} else if math.Abs(g-sup) > 1e-12 {
				t.Errorf("support(%v) = %g, want %g", set, g, sup)
			}
		} else if _, ok := got[set.key()]; ok {
			t.Errorf("infrequent set %v reported", set)
		}
	}
}

func TestAprioriDuplicateItemsInTransaction(t *testing.T) {
	freq, err := Apriori([][]int{{1, 1, 1}, {1}}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sup, ok := supportOf(freq, 1)
	if !ok || sup != 1 {
		t.Errorf("support(1) = %g, want 1 (duplicates collapse)", sup)
	}
}

func TestAprioriErrors(t *testing.T) {
	if _, err := Apriori(nil, 0.5); err == nil {
		t.Error("no transactions accepted")
	}
	if _, err := Apriori([][]int{{1}}, 0); err == nil {
		t.Error("minSupport 0 accepted")
	}
	if _, err := Apriori([][]int{{1}}, 1.5); err == nil {
		t.Error("minSupport > 1 accepted")
	}
}

func TestRulesConfidenceAndLift(t *testing.T) {
	freq, err := Apriori(basketData(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := Rules(freq, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	// Rule {1} ⇒ {2}: support 4/6, antecedent 5/6, confidence 0.8,
	// lift = 0.8 / (5/6) = 0.96.
	found := false
	for _, r := range rules {
		if reflect.DeepEqual(r.Antecedent, ItemSet{1}) && reflect.DeepEqual(r.Consequent, ItemSet{2}) {
			found = true
			if math.Abs(r.Confidence-0.8) > 1e-12 {
				t.Errorf("confidence = %g, want 0.8", r.Confidence)
			}
			if math.Abs(r.Lift-0.96) > 1e-12 {
				t.Errorf("lift = %g, want 0.96", r.Lift)
			}
		}
		if r.Confidence < 0.7 {
			t.Errorf("rule %v below confidence threshold", r)
		}
	}
	if !found {
		t.Error("rule {1} => {2} not generated")
	}
}

func TestRulesSortedByConfidence(t *testing.T) {
	freq, err := Apriori(basketData(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := Rules(freq, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence {
			t.Fatal("rules not sorted by confidence")
		}
	}
}

func TestRulesErrors(t *testing.T) {
	if _, err := Rules(nil, 0); err == nil {
		t.Error("confidence 0 accepted")
	}
	if _, err := Rules(nil, 2); err == nil {
		t.Error("confidence 2 accepted")
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{Antecedent: ItemSet{1}, Consequent: ItemSet{2}, Support: 0.5, Confidence: 0.8, Lift: 1.2}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestRuleSetJaccard(t *testing.T) {
	a := []Rule{{Antecedent: ItemSet{1}, Consequent: ItemSet{2}}}
	b := []Rule{{Antecedent: ItemSet{1}, Consequent: ItemSet{2}}, {Antecedent: ItemSet{3}, Consequent: ItemSet{4}}}
	if got := RuleSetJaccard(a, a); got != 1 {
		t.Errorf("Jaccard(a,a) = %g", got)
	}
	if got := RuleSetJaccard(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Jaccard(a,b) = %g, want 0.5", got)
	}
	if got := RuleSetJaccard(nil, nil); got != 1 {
		t.Errorf("Jaccard(∅,∅) = %g, want 1", got)
	}
	if got := RuleSetJaccard(a, nil); got != 0 {
		t.Errorf("Jaccard(a,∅) = %g, want 0", got)
	}
}

func TestContainsAll(t *testing.T) {
	if !containsAll([]int{1, 3, 5}, []int{1, 5}) {
		t.Error("subset not found")
	}
	if containsAll([]int{1, 3, 5}, []int{2}) {
		t.Error("non-member found")
	}
	if !containsAll([]int{1}, nil) {
		t.Error("empty set not contained")
	}
}
