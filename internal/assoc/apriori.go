// Package assoc implements Apriori frequent-itemset mining and
// association-rule generation. Together with package discretize it forms
// the third "existing data mining algorithm" of the experiment harness:
// the paper cites association-rule mining as a problem that needed a
// bespoke privacy-preserving redesign under the perturbation approach
// ([9], [16] in the paper), whereas under condensation the standard
// Apriori runs unchanged on anonymized records.
package assoc

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ItemSet is a sorted set of item identifiers.
type ItemSet []int

// key renders the set as a map key.
func (s ItemSet) key() string {
	var sb strings.Builder
	for i, it := range s {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", it)
	}
	return sb.String()
}

// contains reports whether the sorted transaction contains every item of
// the sorted set.
func containsAll(transaction, set []int) bool {
	i := 0
	for _, item := range set {
		for i < len(transaction) && transaction[i] < item {
			i++
		}
		if i >= len(transaction) || transaction[i] != item {
			return false
		}
		i++
	}
	return true
}

// Frequent is a frequent itemset with its support (fraction of
// transactions containing it).
type Frequent struct {
	Items   ItemSet
	Support float64
}

// Apriori mines all itemsets with support ≥ minSupport using the classic
// level-wise algorithm: frequent k-itemsets are joined into (k+1)-item
// candidates, pruned by the downward-closure property, and counted with
// one pass over the transactions per level. Transactions are sets of item
// identifiers; duplicates within a transaction are ignored.
func Apriori(transactions [][]int, minSupport float64) ([]Frequent, error) {
	if len(transactions) == 0 {
		return nil, errors.New("assoc: no transactions")
	}
	if minSupport <= 0 || minSupport > 1 {
		return nil, fmt.Errorf("assoc: minimum support %g outside (0, 1]", minSupport)
	}
	// Normalize: sort and deduplicate each transaction.
	norm := make([][]int, len(transactions))
	for i, tx := range transactions {
		t := append([]int(nil), tx...)
		sort.Ints(t)
		norm[i] = dedupSorted(t)
	}
	n := float64(len(norm))
	minCount := int(minSupport*n + 1e-9)
	if float64(minCount) < minSupport*n {
		minCount++
	}
	if minCount < 1 {
		minCount = 1
	}

	// Level 1: count single items.
	counts := map[int]int{}
	for _, tx := range norm {
		for _, item := range tx {
			counts[item]++
		}
	}
	var out []Frequent
	var current []ItemSet
	for item, c := range counts {
		if c >= minCount {
			current = append(current, ItemSet{item})
			out = append(out, Frequent{Items: ItemSet{item}, Support: float64(c) / n})
		}
	}
	sortSets(current)

	for len(current) > 0 {
		candidates := join(current)
		if len(candidates) == 0 {
			break
		}
		// Prune candidates with an infrequent subset (downward closure).
		freq := map[string]bool{}
		for _, s := range current {
			freq[s.key()] = true
		}
		var pruned []ItemSet
		for _, cand := range candidates {
			if allSubsetsFrequent(cand, freq) {
				pruned = append(pruned, cand)
			}
		}
		// Count supports in one pass.
		candCount := make([]int, len(pruned))
		for _, tx := range norm {
			for ci, cand := range pruned {
				if containsAll(tx, cand) {
					candCount[ci]++
				}
			}
		}
		current = current[:0]
		for ci, cand := range pruned {
			if candCount[ci] >= minCount {
				current = append(current, cand)
				out = append(out, Frequent{Items: cand, Support: float64(candCount[ci]) / n})
			}
		}
		sortSets(current)
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a].Items) != len(out[b].Items) {
			return len(out[a].Items) < len(out[b].Items)
		}
		return less(out[a].Items, out[b].Items)
	})
	return out, nil
}

// dedupSorted removes duplicates from a sorted slice in place.
func dedupSorted(t []int) []int {
	if len(t) == 0 {
		return t
	}
	w := 1
	for i := 1; i < len(t); i++ {
		if t[i] != t[w-1] {
			t[w] = t[i]
			w++
		}
	}
	return t[:w]
}

// join produces (k+1)-item candidates from sorted k-itemsets sharing a
// (k−1)-prefix — the standard Apriori-gen join.
func join(sets []ItemSet) []ItemSet {
	var out []ItemSet
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			a, b := sets[i], sets[j]
			if !samePrefix(a, b) {
				break // sets are sorted, so later j cannot share the prefix either
			}
			cand := make(ItemSet, len(a)+1)
			copy(cand, a)
			cand[len(a)] = b[len(b)-1]
			out = append(out, cand)
		}
	}
	return out
}

// samePrefix reports whether two equal-length sorted sets agree on all but
// the last item, with a's last item below b's.
func samePrefix(a, b ItemSet) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return a[len(a)-1] < b[len(b)-1]
}

// allSubsetsFrequent checks that every (k−1)-subset of cand is frequent.
func allSubsetsFrequent(cand ItemSet, freq map[string]bool) bool {
	sub := make(ItemSet, len(cand)-1)
	for skip := range cand {
		sub = sub[:0]
		for i, item := range cand {
			if i != skip {
				sub = append(sub, item)
			}
		}
		if !freq[sub.key()] {
			return false
		}
	}
	return true
}

func sortSets(sets []ItemSet) {
	sort.Slice(sets, func(a, b int) bool { return less(sets[a], sets[b]) })
}

func less(a, b ItemSet) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Rule is an association rule X ⇒ Y with its quality measures.
type Rule struct {
	Antecedent ItemSet
	Consequent ItemSet
	Support    float64
	Confidence float64
	Lift       float64
}

// String renders the rule.
func (r Rule) String() string {
	return fmt.Sprintf("%v => %v (sup %.3f, conf %.3f, lift %.2f)",
		[]int(r.Antecedent), []int(r.Consequent), r.Support, r.Confidence, r.Lift)
}

// Rules generates all association rules with confidence ≥ minConfidence
// from a frequent-itemset collection, splitting each itemset of size ≥ 2
// into every antecedent/consequent partition with a single-item
// consequent (the standard compact rule form).
func Rules(frequent []Frequent, minConfidence float64) ([]Rule, error) {
	if minConfidence <= 0 || minConfidence > 1 {
		return nil, fmt.Errorf("assoc: minimum confidence %g outside (0, 1]", minConfidence)
	}
	support := map[string]float64{}
	for _, f := range frequent {
		support[f.Items.key()] = f.Support
	}
	var out []Rule
	for _, f := range frequent {
		if len(f.Items) < 2 {
			continue
		}
		for skip, consItem := range f.Items {
			ante := make(ItemSet, 0, len(f.Items)-1)
			for i, item := range f.Items {
				if i != skip {
					ante = append(ante, item)
				}
			}
			anteSup, ok := support[ante.key()]
			if !ok || anteSup == 0 {
				continue // antecedent below the support floor
			}
			conf := f.Support / anteSup
			if conf < minConfidence {
				continue
			}
			cons := ItemSet{consItem}
			lift := 0.0
			if consSup, ok := support[cons.key()]; ok && consSup > 0 {
				lift = conf / consSup
			}
			out = append(out, Rule{
				Antecedent: ante,
				Consequent: cons,
				Support:    f.Support,
				Confidence: conf,
				Lift:       lift,
			})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Confidence != out[b].Confidence {
			return out[a].Confidence > out[b].Confidence
		}
		return out[a].String() < out[b].String()
	})
	return out, nil
}

// RuleSetJaccard measures how similar two mined rule sets are: the
// Jaccard index of their (antecedent ⇒ consequent) signatures. Used by
// the experiment harness to compare rules mined from original vs
// anonymized data — 1 means the anonymized data yields exactly the same
// rules.
func RuleSetJaccard(a, b []Rule) float64 {
	sig := func(r Rule) string { return r.Antecedent.key() + "=>" + r.Consequent.key() }
	setA := map[string]bool{}
	for _, r := range a {
		setA[sig(r)] = true
	}
	setB := map[string]bool{}
	for _, r := range b {
		setB[sig(r)] = true
	}
	if len(setA) == 0 && len(setB) == 0 {
		return 1
	}
	inter := 0
	for s := range setA {
		if setB[s] {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	return float64(inter) / float64(union)
}
