package kanon

import (
	"math"
	"testing"
	"testing/quick"

	"condensation/internal/mat"
	"condensation/internal/rng"
)

func randomRecords(seed uint64, n, d int) []mat.Vector {
	r := rng.New(seed)
	out := make([]mat.Vector, n)
	for i := range out {
		x := make(mat.Vector, d)
		for j := range x {
			x[j] = r.Uniform(-5, 5)
		}
		out[i] = x
	}
	return out
}

func TestMondrianMinimumSize(t *testing.T) {
	recs := randomRecords(1, 100, 3)
	for _, k := range []int{1, 2, 5, 10, 33} {
		parts, err := Mondrian(recs, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		total := 0
		for i, p := range parts {
			if p.Size() < k {
				t.Errorf("k=%d: partition %d has %d < k records", k, i, p.Size())
			}
			total += p.Size()
		}
		if total != len(recs) {
			t.Errorf("k=%d: partitions cover %d records, want %d", k, total, len(recs))
		}
	}
}

func TestMondrianCoversEachRecordOnce(t *testing.T) {
	recs := randomRecords(2, 60, 2)
	parts, err := Mondrian(recs, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(recs))
	for _, p := range parts {
		for _, i := range p.Indices {
			if seen[i] {
				t.Fatalf("record %d in multiple partitions", i)
			}
			seen[i] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("record %d not covered", i)
		}
	}
}

func TestMondrianBoxesContainMembers(t *testing.T) {
	recs := randomRecords(3, 80, 4)
	parts, err := Mondrian(recs, 6)
	if err != nil {
		t.Fatal(err)
	}
	for pi, p := range parts {
		for _, i := range p.Indices {
			for j := range recs[i] {
				if recs[i][j] < p.Min[j] || recs[i][j] > p.Max[j] {
					t.Fatalf("partition %d does not contain its member %d on axis %d", pi, i, j)
				}
			}
		}
	}
}

func TestMondrianK1SplitsFully(t *testing.T) {
	recs := randomRecords(4, 16, 2)
	parts, err := Mondrian(recs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With k=1 and continuous data, cuts continue until singleton
	// partitions (ties aside).
	if len(parts) != 16 {
		t.Errorf("%d partitions for k=1, want 16", len(parts))
	}
}

func TestMondrianConstantData(t *testing.T) {
	recs := []mat.Vector{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	parts, err := Mondrian(recs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 {
		t.Errorf("%d partitions of constant data, want 1 (no axis to cut)", len(parts))
	}
}

func TestMondrianErrors(t *testing.T) {
	if _, err := Mondrian(nil, 2); err == nil {
		t.Error("empty records accepted")
	}
	if _, err := Mondrian(randomRecords(5, 4, 2), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Mondrian([]mat.Vector{{}}, 1); err == nil {
		t.Error("zero-dimensional records accepted")
	}
	if _, err := Mondrian([]mat.Vector{{1, 2}, {1}}, 1); err == nil {
		t.Error("ragged records accepted")
	}
	if _, err := Mondrian([]mat.Vector{{math.NaN()}}, 1); err == nil {
		t.Error("NaN records accepted")
	}
}

func TestGeneralize(t *testing.T) {
	recs := randomRecords(6, 40, 3)
	parts, err := Mondrian(recs, 5)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := Generalize(recs, parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(gen) != len(recs) {
		t.Fatalf("%d generalized records, want %d", len(gen), len(recs))
	}
	// All members of one partition share the same published value.
	for _, p := range parts {
		first := gen[p.Indices[0]]
		for _, i := range p.Indices[1:] {
			if !gen[i].Equal(first, 0) {
				t.Fatalf("partition members published differently")
			}
		}
	}
}

func TestGeneralizeBadPartitions(t *testing.T) {
	recs := randomRecords(7, 4, 2)
	bad := []Partition{{Indices: []int{0, 1, 9}, Min: mat.Vector{0, 0}, Max: mat.Vector{1, 1}}}
	if _, err := Generalize(recs, bad); err == nil {
		t.Error("out-of-range index accepted")
	}
	dup := []Partition{
		{Indices: []int{0, 1}, Min: mat.Vector{0, 0}, Max: mat.Vector{1, 1}},
		{Indices: []int{1, 2, 3}, Min: mat.Vector{0, 0}, Max: mat.Vector{1, 1}},
	}
	if _, err := Generalize(recs, dup); err == nil {
		t.Error("duplicated coverage accepted")
	}
	missing := []Partition{{Indices: []int{0, 1}, Min: mat.Vector{0, 0}, Max: mat.Vector{1, 1}}}
	if _, err := Generalize(recs, missing); err == nil {
		t.Error("uncovered record accepted")
	}
}

func TestNCPBoundsAndMonotonicity(t *testing.T) {
	recs := randomRecords(8, 200, 3)
	var prev float64 = -1
	for _, k := range []int{2, 5, 20, 100} {
		parts, err := Mondrian(recs, k)
		if err != nil {
			t.Fatal(err)
		}
		ncp, err := NCP(recs, parts)
		if err != nil {
			t.Fatal(err)
		}
		if ncp < 0 || ncp > 1 {
			t.Errorf("k=%d: NCP = %g outside [0,1]", k, ncp)
		}
		if ncp < prev {
			t.Errorf("k=%d: NCP %g decreased from %g — larger classes must lose more information", k, ncp, prev)
		}
		prev = ncp
	}
}

func TestNCPErrors(t *testing.T) {
	if _, err := NCP(nil, nil); err == nil {
		t.Error("empty inputs accepted")
	}
}

func TestPartitionCentroid(t *testing.T) {
	p := Partition{Min: mat.Vector{0, -2}, Max: mat.Vector{4, 2}}
	if !p.Centroid().Equal(mat.Vector{2, 0}, 0) {
		t.Errorf("Centroid = %v", p.Centroid())
	}
}

// Property: every Mondrian partitioning satisfies k-anonymity and exact
// coverage for random inputs.
func TestMondrianProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.IntN(100)
		k := 1 + r.IntN(10)
		recs := randomRecords(seed+1, n, 1+r.IntN(4))
		parts, err := Mondrian(recs, k)
		if err != nil {
			return false
		}
		total := 0
		for _, p := range parts {
			if p.Size() < k {
				return false
			}
			total += p.Size()
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
