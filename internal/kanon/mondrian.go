// Package kanon implements a multidimensional k-anonymity baseline in the
// spirit of Samarati & Sweeney's model, using Mondrian-style greedy median
// partitioning over numeric attributes. The condensation paper positions
// k-anonymity as the alternative indistinguishability model whose reliance
// on domain generalization hierarchies limits it; for numeric data the
// standard hierarchy-free variant is multidimensional range generalization,
// which is what this package provides as a comparison point.
//
// Each equivalence class (partition) holds at least k records; a record is
// published as its class's bounding box (or, for distance-based mining, the
// class centroid). Information loss is quantified by the normalized
// certainty penalty (NCP).
package kanon

import (
	"errors"
	"fmt"
	"sort"

	"condensation/internal/mat"
)

// Partition is one k-anonymous equivalence class: the records it contains
// and its attribute-aligned bounding box.
type Partition struct {
	// Indices identifies the member records in the original order.
	Indices []int
	// Min and Max bound the members per attribute.
	Min, Max mat.Vector
}

// Size returns the number of member records.
func (p *Partition) Size() int { return len(p.Indices) }

// Centroid returns the box mid-point, the published representative for
// distance-based mining.
func (p *Partition) Centroid() mat.Vector {
	c := make(mat.Vector, len(p.Min))
	for j := range c {
		c[j] = (p.Min[j] + p.Max[j]) / 2
	}
	return c
}

// Mondrian partitions the records into equivalence classes of at least k
// members using greedy top-down median cuts: at each step the attribute
// with the widest range (normalized by the global range) is cut at its
// median, as long as both sides keep at least k records.
func Mondrian(records []mat.Vector, k int) ([]Partition, error) {
	if len(records) == 0 {
		return nil, errors.New("kanon: no records")
	}
	if k < 1 {
		return nil, fmt.Errorf("kanon: k = %d, must be ≥ 1", k)
	}
	d := len(records[0])
	if d == 0 {
		return nil, errors.New("kanon: zero-dimensional records")
	}
	for i, x := range records {
		if len(x) != d {
			return nil, fmt.Errorf("kanon: record %d has dimension %d, want %d", i, len(x), d)
		}
		if !x.IsFinite() {
			return nil, fmt.Errorf("kanon: record %d has non-finite values", i)
		}
	}
	globalMin, globalMax := bounds(records, allIndices(len(records)))
	var out []Partition
	var recurse func(idx []int)
	recurse = func(idx []int) {
		axis, ok := chooseAxis(records, idx, globalMin, globalMax)
		if ok {
			left, right := medianSplit(records, idx, axis)
			if len(left) >= k && len(right) >= k {
				recurse(left)
				recurse(right)
				return
			}
		}
		lo, hi := bounds(records, idx)
		out = append(out, Partition{Indices: idx, Min: lo, Max: hi})
	}
	recurse(allIndices(len(records)))
	return out, nil
}

// chooseAxis picks the attribute with the widest normalized range in the
// partition. ok is false when every attribute is constant (nothing to cut).
func chooseAxis(records []mat.Vector, idx []int, globalMin, globalMax mat.Vector) (int, bool) {
	lo, hi := bounds(records, idx)
	best, bestSpread, ok := 0, 0.0, false
	for j := range lo {
		denom := globalMax[j] - globalMin[j]
		if denom == 0 {
			continue
		}
		spread := (hi[j] - lo[j]) / denom
		if spread > bestSpread {
			best, bestSpread, ok = j, spread, true
		}
	}
	return best, ok
}

// medianSplit cuts the partition at the median of the chosen attribute.
// Records equal to the median go left until the left side holds half the
// records, keeping the split balanced under ties.
func medianSplit(records []mat.Vector, idx []int, axis int) (left, right []int) {
	sorted := append([]int(nil), idx...)
	sort.SliceStable(sorted, func(a, b int) bool {
		return records[sorted[a]][axis] < records[sorted[b]][axis]
	})
	mid := len(sorted) / 2
	return sorted[:mid], sorted[mid:]
}

// bounds returns the per-attribute min and max over the indexed records.
func bounds(records []mat.Vector, idx []int) (lo, hi mat.Vector) {
	d := len(records[idx[0]])
	lo = records[idx[0]].Clone()
	hi = records[idx[0]].Clone()
	for _, i := range idx[1:] {
		for j := 0; j < d; j++ {
			if v := records[i][j]; v < lo[j] {
				lo[j] = v
			} else if v > hi[j] {
				hi[j] = v
			}
		}
	}
	return lo, hi
}

func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Generalize publishes every record as its partition's centroid, returning
// the generalized records in the original order.
func Generalize(records []mat.Vector, parts []Partition) ([]mat.Vector, error) {
	out := make([]mat.Vector, len(records))
	for pi := range parts {
		c := parts[pi].Centroid()
		for _, i := range parts[pi].Indices {
			if i < 0 || i >= len(records) {
				return nil, fmt.Errorf("kanon: partition %d references record %d of %d", pi, i, len(records))
			}
			if out[i] != nil {
				return nil, fmt.Errorf("kanon: record %d appears in multiple partitions", i)
			}
			out[i] = c.Clone()
		}
	}
	for i, x := range out {
		if x == nil {
			return nil, fmt.Errorf("kanon: record %d not covered by any partition", i)
		}
	}
	return out, nil
}

// NCP returns the normalized certainty penalty of a partitioning: the
// record-weighted mean over partitions of the sum of per-attribute range
// fractions. 0 means no generalization (point classes); d·1 would mean
// every class spans the full data range on every attribute. The value is
// normalized by d to lie in [0, 1].
func NCP(records []mat.Vector, parts []Partition) (float64, error) {
	if len(records) == 0 || len(parts) == 0 {
		return 0, errors.New("kanon: empty records or partitions")
	}
	globalMin, globalMax := bounds(records, allIndices(len(records)))
	d := len(globalMin)
	var weighted float64
	var total int
	for _, p := range parts {
		var sum float64
		for j := 0; j < d; j++ {
			denom := globalMax[j] - globalMin[j]
			if denom == 0 {
				continue
			}
			sum += (p.Max[j] - p.Min[j]) / denom
		}
		weighted += sum / float64(d) * float64(p.Size())
		total += p.Size()
	}
	return weighted / float64(total), nil
}
