package stream

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"condensation/internal/core"
	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/telemetry"
)

func records(seed uint64, n int) []mat.Vector {
	r := rng.New(seed)
	out := make([]mat.Vector, n)
	for i := range out {
		out[i] = mat.Vector{r.Norm(), r.Norm()}
	}
	return out
}

func newDynamic(t *testing.T, k int) *core.Dynamic {
	t.Helper()
	dyn, err := core.NewDynamicEmpty(2, k, core.Options{}, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	return dyn
}

func TestDriverFeedAndSeen(t *testing.T) {
	d, err := NewDriver(newDynamic(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Feed(records(1, 50)); err != nil {
		t.Fatal(err)
	}
	if d.Seen() != 50 {
		t.Errorf("Seen = %d, want 50", d.Seen())
	}
	if got := d.Condensation().TotalCount(); got != 50 {
		t.Errorf("TotalCount = %d, want 50", got)
	}
}

func TestDriverSnapshots(t *testing.T) {
	d, err := NewDriver(newDynamic(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	d.SnapshotEvery = 10
	if err := d.Feed(records(2, 35)); err != nil {
		t.Fatal(err)
	}
	snaps := d.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("%d snapshots, want 3", len(snaps))
	}
	for i, s := range snaps {
		if s.Seen != (i+1)*10 {
			t.Errorf("snapshot %d Seen = %d", i, s.Seen)
		}
		if s.Groups < 1 || s.AvgGroupSize <= 0 {
			t.Errorf("snapshot %d degenerate: %+v", i, s)
		}
	}
}

func TestDriverSnapshotsDisabled(t *testing.T) {
	d, err := NewDriver(newDynamic(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Feed(records(3, 20)); err != nil {
		t.Fatal(err)
	}
	if len(d.Snapshots()) != 0 {
		t.Error("snapshots recorded with SnapshotEvery = 0")
	}
}

func TestDriverFeedContextCancelled(t *testing.T) {
	d, err := NewDriver(newDynamic(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := d.FeedContext(ctx, records(10, 20)); !errors.Is(err, context.Canceled) {
		t.Fatalf("FeedContext on cancelled context: err = %v, want context.Canceled", err)
	}
	if d.Seen() != 0 {
		t.Errorf("Seen = %d after pre-cancelled feed, want 0", d.Seen())
	}
	// A live context resumes feeding on the same driver.
	if err := d.FeedContext(context.Background(), records(10, 20)); err != nil {
		t.Fatal(err)
	}
	if d.Seen() != 20 {
		t.Errorf("Seen = %d after resumed feed, want 20", d.Seen())
	}
}

func TestNewDriverNil(t *testing.T) {
	if _, err := NewDriver(nil); err == nil {
		t.Error("nil condenser accepted")
	}
}

func TestDriverFeedBadRecord(t *testing.T) {
	d, err := NewDriver(newDynamic(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Feed([]mat.Vector{{1}}); err == nil {
		t.Error("wrong-dimension record accepted")
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	orig := records(4, 20)
	sh := Shuffled(orig, rng.New(5))
	if len(sh) != len(orig) {
		t.Fatal("length changed")
	}
	used := make([]bool, len(orig))
	for _, x := range sh {
		found := false
		for i, o := range orig {
			if !used[i] && o.Equal(x, 0) {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Fatal("shuffled output is not a permutation")
		}
	}
	// The input order must be untouched.
	again := records(4, 20)
	for i := range orig {
		if !orig[i].Equal(again[i], 0) {
			t.Fatal("Shuffled mutated its input")
		}
	}
}

func TestDrifted(t *testing.T) {
	orig := records(6, 11)
	dr, err := Drifted(orig, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if dr[0][0] != orig[0][0] {
		t.Error("first record shifted")
	}
	if got := dr[10][0] - orig[10][0]; got != 10 {
		t.Errorf("last record shift = %g, want 10", got)
	}
	if got := dr[5][0] - orig[5][0]; got != 5 {
		t.Errorf("middle record shift = %g, want 5", got)
	}
	// Untouched attribute.
	if dr[7][1] != orig[7][1] {
		t.Error("drift leaked into other attribute")
	}
}

func TestDriftedErrors(t *testing.T) {
	if _, err := Drifted(nil, 0, 1); err == nil {
		t.Error("empty records accepted")
	}
	if _, err := Drifted(records(7, 3), 5, 1); err == nil {
		t.Error("out-of-range attribute accepted")
	}
}

func TestDriftedSingleRecord(t *testing.T) {
	dr, err := Drifted(records(8, 1), 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(dr) != 1 {
		t.Fatal("length changed")
	}
}

// Integration: dynamic condensation keeps group sizes in [k, 2k) even
// under concept drift.
func TestDriftStreamKeepsInvariants(t *testing.T) {
	k := 4
	dyn := newDynamic(t, k)
	d, err := NewDriver(dyn)
	if err != nil {
		t.Fatal(err)
	}
	drifted, err := Drifted(records(9, 300), 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Feed(drifted); err != nil {
		t.Fatal(err)
	}
	for i, g := range d.Condensation().Groups() {
		if g.N() >= 2*k {
			t.Errorf("group %d has %d ≥ 2k records under drift", i, g.N())
		}
	}
}

func TestDriverTelemetry(t *testing.T) {
	d, err := NewDriver(newDynamic(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	d.SetTelemetry(reg)
	if err := d.Feed(records(5, 40)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("stream_records_total").Value(); got != 40 {
		t.Errorf("stream_records_total = %d, want 40", got)
	}
	if got := reg.Gauge("stream_records_per_second").Value(); got <= 0 {
		t.Errorf("stream_records_per_second = %g, want > 0", got)
	}
	// 40 records at k=3 must have grown groups from zero.
	if got := reg.Gauge("stream_group_churn").Value(); got < 1 {
		t.Errorf("stream_group_churn = %g, want ≥ 1", got)
	}

	// A second Feed that adds no groups reports zero churn for that call.
	before := d.Condensation().NumGroups()
	if err := d.Feed(records(6, 1)); err != nil {
		t.Fatal(err)
	}
	wantChurn := float64(d.Condensation().NumGroups() - before)
	if got := reg.Gauge("stream_group_churn").Value(); got != wantChurn {
		t.Errorf("churn after 1-record feed = %g, want %g", got, wantChurn)
	}
}

func TestDriverLogger(t *testing.T) {
	d, err := NewDriver(newDynamic(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	log, err := telemetry.NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	d.SetLogger(log)
	d.SnapshotEvery = 10
	if err := d.Feed(records(7, 30)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(buf.String()), "\n") + 1
	if lines != 3 {
		t.Errorf("%d progress lines, want 3 (every 10 of 30 records):\n%s", lines, buf.String())
	}
	if !strings.Contains(buf.String(), `"msg":"stream progress"`) {
		t.Errorf("missing progress message: %s", buf.String())
	}
}

// TestDriverBatchedFeedEquivalence: feeding with any BatchSize produces the
// identical condensation, seen count, and snapshot sequence as per-record
// feeding — batching is a pure throughput knob.
func TestDriverBatchedFeedEquivalence(t *testing.T) {
	stream := records(7, 500)

	feed := func(batch int) (*Driver, []byte) {
		t.Helper()
		d, err := NewDriver(newDynamic(t, 4))
		if err != nil {
			t.Fatal(err)
		}
		d.SnapshotEvery = 64
		d.BatchSize = batch
		if err := d.Feed(stream); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := d.Condensation().WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return d, buf.Bytes()
	}

	ref, want := feed(0)
	for _, batch := range []int{2, 50, 64, 100, 1000} {
		d, got := feed(batch)
		if !bytes.Equal(got, want) {
			t.Errorf("BatchSize=%d: condensation differs from per-record feed", batch)
		}
		if d.Seen() != ref.Seen() {
			t.Errorf("BatchSize=%d: seen %d, want %d", batch, d.Seen(), ref.Seen())
		}
		gotSnaps, wantSnaps := d.Snapshots(), ref.Snapshots()
		if len(gotSnaps) != len(wantSnaps) {
			t.Fatalf("BatchSize=%d: %d snapshots, want %d", batch, len(gotSnaps), len(wantSnaps))
		}
		for i := range gotSnaps {
			if gotSnaps[i] != wantSnaps[i] {
				t.Errorf("BatchSize=%d: snapshot %d = %+v, want %+v", batch, i, gotSnaps[i], wantSnaps[i])
			}
		}
	}
}

// A cancelled context stops a batched feed at a record boundary and keeps
// the delivered count honest.
func TestDriverBatchedFeedCancelled(t *testing.T) {
	d, err := NewDriver(newDynamic(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	d.BatchSize = 32
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := d.FeedContext(ctx, records(9, 100)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d.Seen() != d.Condensation().TotalCount() {
		t.Errorf("seen %d but condensed %d", d.Seen(), d.Condensation().TotalCount())
	}
	if err := d.Feed(records(9, 100)); err != nil {
		t.Fatal(err)
	}
}
