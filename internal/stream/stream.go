// Package stream drives the dynamic condensation of Section 3 of the paper
// over simulated record streams: it feeds records to a core.Dynamic one at
// a time, optionally interleaving snapshot callbacks, and can simulate
// concept drift by re-ordering or shifting the stream. It exists so the
// dynamic experiments and the streaming example share one tested driver.
package stream

import (
	"context"
	"errors"
	"fmt"

	"condensation/internal/core"
	"condensation/internal/mat"
	"condensation/internal/rng"
)

// Snapshot reports the condenser state after a prefix of the stream.
type Snapshot struct {
	// Seen is the number of stream records delivered so far.
	Seen int
	// Groups is the group count at this point.
	Groups int
	// AvgGroupSize is the mean group size at this point.
	AvgGroupSize float64
}

// Driver streams records into a dynamic condenser.
type Driver struct {
	dyn *core.Dynamic
	// Every n records, the driver records a Snapshot (0 disables).
	SnapshotEvery int
	snapshots     []Snapshot
	seen          int
}

// NewDriver wraps a dynamic condenser.
func NewDriver(dyn *core.Dynamic) (*Driver, error) {
	if dyn == nil {
		return nil, errors.New("stream: nil dynamic condenser")
	}
	return &Driver{dyn: dyn}, nil
}

// Feed streams the records in order. It is FeedContext with a background
// context; long streams that must be abortable should use FeedContext.
func (d *Driver) Feed(records []mat.Vector) error {
	return d.FeedContext(context.Background(), records)
}

// FeedContext streams the records in order until the context is done, at
// which point it stops with the context's error. Records fed before
// cancellation stay condensed and counted; the driver can keep feeding
// afterwards with a live context.
func (d *Driver) FeedContext(ctx context.Context, records []mat.Vector) error {
	for i, x := range records {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("stream: cancelled at record %d: %w", i, err)
		}
		if err := d.dyn.Add(x); err != nil {
			return fmt.Errorf("stream: record %d: %w", i, err)
		}
		d.seen++
		if d.SnapshotEvery > 0 && d.seen%d.SnapshotEvery == 0 {
			d.takeSnapshot()
		}
	}
	return nil
}

func (d *Driver) takeSnapshot() {
	snap := d.dyn.Condensation()
	d.snapshots = append(d.snapshots, Snapshot{
		Seen:         d.seen,
		Groups:       snap.NumGroups(),
		AvgGroupSize: snap.AverageGroupSize(),
	})
}

// Snapshots returns the recorded snapshots in stream order.
func (d *Driver) Snapshots() []Snapshot { return append([]Snapshot(nil), d.snapshots...) }

// Seen returns the number of records streamed so far.
func (d *Driver) Seen() int { return d.seen }

// Condensation snapshots the current groups.
func (d *Driver) Condensation() *core.Condensation { return d.dyn.Condensation() }

// Shuffled returns a shuffled copy of records — the i.i.d. stream order
// used by the paper's dynamic experiments.
func Shuffled(records []mat.Vector, r *rng.Source) []mat.Vector {
	out := make([]mat.Vector, len(records))
	copy(out, records)
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Drifted returns a copy of records with a linearly growing shift applied
// along the given attribute — a simple concept-drift stream for stressing
// dynamic maintenance beyond the paper's i.i.d. setting. The first record
// is unshifted; the last is shifted by maxShift.
func Drifted(records []mat.Vector, attr int, maxShift float64) ([]mat.Vector, error) {
	if len(records) == 0 {
		return nil, errors.New("stream: no records")
	}
	if attr < 0 || attr >= len(records[0]) {
		return nil, fmt.Errorf("stream: attribute %d out of range [0,%d)", attr, len(records[0]))
	}
	out := make([]mat.Vector, len(records))
	denom := float64(len(records) - 1)
	if denom == 0 {
		denom = 1
	}
	for i, x := range records {
		y := x.Clone()
		y[attr] += maxShift * float64(i) / denom
		out[i] = y
	}
	return out, nil
}
