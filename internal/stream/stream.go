// Package stream drives the dynamic condensation of Section 3 of the paper
// over simulated record streams: it feeds records to any core.Engine (a
// single core.Dynamic or a core.Sharded), optionally interleaving snapshot
// callbacks, and can simulate concept drift by re-ordering or shifting the
// stream. It exists so the dynamic experiments and the streaming example
// share one tested driver.
package stream

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"condensation/internal/core"
	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/telemetry"
)

// Snapshot reports the condenser state after a prefix of the stream.
type Snapshot struct {
	// Seen is the number of stream records delivered so far.
	Seen int
	// Groups is the group count at this point.
	Groups int
	// AvgGroupSize is the mean group size at this point.
	AvgGroupSize float64
}

// Driver streams records into a condenser engine.
type Driver struct {
	eng core.Engine
	// Every n records, the driver records a Snapshot (0 disables).
	SnapshotEvery int
	// BatchSize > 1 feeds the condenser through its batch engine
	// (core.Dynamic.AddBatch) in chunks of at most BatchSize records, each
	// chunk cut at the next snapshot boundary so the snapshot cadence is
	// exactly that of per-record feeding. The condensation produced is
	// bit-identical either way; batching only raises throughput. Values
	// ≤ 1 feed record by record.
	BatchSize int
	snapshots []Snapshot
	seen      int

	log     *slog.Logger
	rate    *telemetry.Gauge // records/sec over the last Feed call
	churn   *telemetry.Gauge // net group-count change over the last Feed call
	records *telemetry.Counter
	tr      *telemetry.Tracer
}

// NewDriver wraps a condenser engine. Existing call sites passing a
// *core.Dynamic keep compiling — Dynamic implements core.Engine — and a
// *core.Sharded drops in the same way.
func NewDriver(eng core.Engine) (*Driver, error) {
	if eng == nil {
		return nil, errors.New("stream: nil condenser engine")
	}
	return &Driver{eng: eng, log: telemetry.Nop()}, nil
}

// SetTelemetry attaches a metrics registry: each Feed/FeedContext call
// then updates a records-per-second gauge and a group-churn gauge (net
// groups gained over the call), and counts the records it delivered.
// This instruments the driver itself; attach the same registry to the
// condenser (core.WithTelemetry) for the engine-level stage timers.
func (d *Driver) SetTelemetry(reg *telemetry.Registry) {
	d.rate = reg.Gauge("stream_records_per_second")
	d.churn = reg.Gauge("stream_group_churn")
	d.records = reg.Counter("stream_records_total")
}

// SetTracer attaches a span tracer: each Feed/FeedContext call then
// records a sampled "stream.feed" span (with per-snapshot children), and
// the condenser's ingest spans nest under it when the same tracer is
// attached to the condenser (core.WithTracer). A nil tracer disables the
// driver's spans. Observe-only, like SetTelemetry.
func (d *Driver) SetTracer(tr *telemetry.Tracer) { d.tr = tr }

// SetLogger attaches a structured logger: the driver then emits one
// progress line per recorded snapshot (so SnapshotEvery doubles as the
// logging cadence). A nil logger silences it again.
func (d *Driver) SetLogger(log *slog.Logger) {
	if log == nil {
		log = telemetry.Nop()
	}
	d.log = log
}

// Feed streams the records in order. It is FeedContext with a background
// context; long streams that must be abortable should use FeedContext.
func (d *Driver) Feed(records []mat.Vector) error {
	return d.FeedContext(context.Background(), records)
}

// FeedContext streams the records in order until the context is done, at
// which point it stops with the context's error. Records fed before
// cancellation stay condensed and counted; the driver can keep feeding
// afterwards with a live context.
func (d *Driver) FeedContext(ctx context.Context, records []mat.Vector) error {
	ctx, span := d.tr.Start(ctx, "stream.feed")
	span.SetAttrInt("records", len(records))
	defer span.End()
	t0 := time.Now()
	groups0 := d.eng.NumGroups()
	delivered := 0
	defer func() {
		// Gauges reflect the call that just finished, whether it completed
		// or was cancelled mid-batch; delivered records stay counted.
		d.records.Add(delivered)
		d.churn.Set(float64(d.eng.NumGroups() - groups0))
		if elapsed := time.Since(t0).Seconds(); elapsed > 0 {
			d.rate.Set(float64(delivered) / elapsed)
		}
	}()
	if d.BatchSize > 1 {
		return d.feedBatched(ctx, records, t0, &delivered, groups0)
	}
	for i, x := range records {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("stream: cancelled at record %d: %w", i, err)
		}
		if err := d.eng.Add(x); err != nil {
			return fmt.Errorf("stream: record %d: %w", i, err)
		}
		d.seen++
		delivered++
		if d.SnapshotEvery > 0 && d.seen%d.SnapshotEvery == 0 {
			d.takeSnapshot(ctx, t0, delivered, groups0)
		}
	}
	return nil
}

// feedBatched is the BatchSize > 1 body of FeedContext: it cuts the stream
// into chunks that never cross a snapshot boundary and ingests each
// through the condenser's batch engine.
func (d *Driver) feedBatched(ctx context.Context, records []mat.Vector, t0 time.Time, delivered *int, groups0 int) error {
	for lo := 0; lo < len(records); {
		hi := lo + d.BatchSize
		if hi > len(records) {
			hi = len(records)
		}
		if d.SnapshotEvery > 0 {
			// End the chunk at the next snapshot boundary so batching never
			// skips or delays a snapshot.
			if next := lo + d.SnapshotEvery - d.seen%d.SnapshotEvery; next < hi {
				hi = next
			}
		}
		before := d.eng.TotalCount()
		err := d.eng.AddBatchContext(ctx, records[lo:hi])
		applied := d.eng.TotalCount() - before
		d.seen += applied
		*delivered += applied
		if err != nil {
			return fmt.Errorf("stream: batch at record %d: %w", lo, err)
		}
		if d.SnapshotEvery > 0 && d.seen%d.SnapshotEvery == 0 {
			d.takeSnapshot(ctx, t0, *delivered, groups0)
		}
		lo = hi
	}
	return nil
}

func (d *Driver) takeSnapshot(ctx context.Context, feedStart time.Time, delivered, groups0 int) {
	_, span := d.tr.Start(ctx, "stream.snapshot")
	defer span.End()
	snap := d.eng.Condensation()
	span.SetAttrInt("seen", d.seen)
	span.SetAttrInt("groups", snap.NumGroups())
	d.snapshots = append(d.snapshots, Snapshot{
		Seen:         d.seen,
		Groups:       snap.NumGroups(),
		AvgGroupSize: snap.AverageGroupSize(),
	})
	rate := 0.0
	if elapsed := time.Since(feedStart).Seconds(); elapsed > 0 {
		rate = float64(delivered) / elapsed
	}
	// Refresh the feed gauges mid-call so a concurrent flight-recorder
	// scrape sees live throughput during a long Feed, not the values left
	// over from the previous call; the Feed-end defer still records the
	// final figures.
	d.rate.Set(rate)
	d.churn.Set(float64(snap.NumGroups() - groups0))
	d.log.Info("stream progress",
		slog.Int("seen", d.seen),
		slog.Int("groups", snap.NumGroups()),
		slog.Float64("avg_group_size", snap.AverageGroupSize()),
		slog.Float64("records_per_sec", rate))
}

// Snapshots returns the recorded snapshots in stream order.
func (d *Driver) Snapshots() []Snapshot { return append([]Snapshot(nil), d.snapshots...) }

// Seen returns the number of records streamed so far.
func (d *Driver) Seen() int { return d.seen }

// Condensation snapshots the current groups.
func (d *Driver) Condensation() *core.Condensation { return d.eng.Condensation() }

// Shuffled returns a shuffled copy of records — the i.i.d. stream order
// used by the paper's dynamic experiments.
func Shuffled(records []mat.Vector, r *rng.Source) []mat.Vector {
	out := make([]mat.Vector, len(records))
	copy(out, records)
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Drifted returns a copy of records with a linearly growing shift applied
// along the given attribute — a simple concept-drift stream for stressing
// dynamic maintenance beyond the paper's i.i.d. setting. The first record
// is unshifted; the last is shifted by maxShift.
func Drifted(records []mat.Vector, attr int, maxShift float64) ([]mat.Vector, error) {
	if len(records) == 0 {
		return nil, errors.New("stream: no records")
	}
	if attr < 0 || attr >= len(records[0]) {
		return nil, fmt.Errorf("stream: attribute %d out of range [0,%d)", attr, len(records[0]))
	}
	out := make([]mat.Vector, len(records))
	denom := float64(len(records) - 1)
	if denom == 0 {
		denom = 1
	}
	for i, x := range records {
		y := x.Clone()
		y[attr] += maxShift * float64(i) / denom
		out[i] = y
	}
	return out, nil
}
