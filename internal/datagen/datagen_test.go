package datagen

import (
	"math"
	"testing"

	"condensation/internal/dataset"
	"condensation/internal/knn"
	"condensation/internal/rng"
	"condensation/internal/stats"
)

func TestIonosphereShape(t *testing.T) {
	ds := Ionosphere(1)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 351 || ds.Dim() != 34 {
		t.Errorf("shape %dx%d, want 351x34", ds.Len(), ds.Dim())
	}
	counts := ds.ClassCounts()
	if counts[0] != 225 || counts[1] != 126 {
		t.Errorf("class counts %v, want [225 126]", counts)
	}
	for i, x := range ds.X {
		if x.Min() < -1 || x.Max() > 1 {
			t.Fatalf("record %d outside [-1,1]: min %g max %g", i, x.Min(), x.Max())
		}
	}
}

func TestEcoliShape(t *testing.T) {
	ds := Ecoli(2)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 336 || ds.Dim() != 7 {
		t.Errorf("shape %dx%d, want 336x7", ds.Len(), ds.Dim())
	}
	if ds.NumClasses() != 8 {
		t.Errorf("%d classes, want 8", ds.NumClasses())
	}
	counts := ds.ClassCounts()
	want := []int{143, 77, 52, 35, 20, 5, 2, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("class %d count %d, want %d", i, counts[i], want[i])
		}
	}
}

func TestPimaShape(t *testing.T) {
	ds := Pima(3)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 768 || ds.Dim() != 8 {
		t.Errorf("shape %dx%d, want 768x8", ds.Len(), ds.Dim())
	}
	counts := ds.ClassCounts()
	// Label flips move a few borderline records across classes; the split
	// must stay near 500/268.
	if counts[0] < 460 || counts[0] > 540 || counts[0]+counts[1] != 768 {
		t.Errorf("class counts %v, want ≈ [500 268]", counts)
	}
	// Clinical plausibility: glucose mean in a sane band, ages ≥ 21.
	var glucose float64
	for i, x := range ds.X {
		glucose += x[1]
		if x[7] < 21 {
			t.Fatalf("record %d age %g < 21", i, x[7])
		}
	}
	glucose /= float64(ds.Len())
	if glucose < 100 || glucose > 140 {
		t.Errorf("mean glucose %g outside [100, 140]", glucose)
	}
}

func TestAbaloneShape(t *testing.T) {
	ds := Abalone(4)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 4177 || ds.Dim() != 7 {
		t.Errorf("shape %dx%d, want 4177x7", ds.Len(), ds.Dim())
	}
	for i, y := range ds.Targets {
		if y < 1 || y > 29 || y != math.Round(y) {
			t.Fatalf("target %d = %g, want integer ring count in [1, 29]", i, y)
		}
	}
}

func TestAbaloneAttributesCorrelated(t *testing.T) {
	// The original abalone measurements are correlated > 0.9; the latent
	// size factor must reproduce strong correlation between, e.g., length
	// and diameter.
	ds := Abalone(5)
	var lengths, diams []float64
	for _, x := range ds.X {
		lengths = append(lengths, x[0])
		diams = append(diams, x[1])
	}
	r, err := stats.Pearson(lengths, diams)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.9 {
		t.Errorf("corr(length, diameter) = %g, want > 0.9", r)
	}
}

func TestAbaloneRingsDependOnSize(t *testing.T) {
	ds := Abalone(6)
	var lengths, rings []float64
	for i, x := range ds.X {
		lengths = append(lengths, x[0])
		rings = append(rings, ds.Targets[i])
	}
	r, err := stats.Pearson(lengths, rings)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.5 {
		t.Errorf("corr(length, rings) = %g, want > 0.5", r)
	}
}

func TestIonosphereCorrelationStructure(t *testing.T) {
	// Good returns are built from smooth factors: adjacent pulses must
	// correlate strongly, which is what condensation preserves and the
	// per-dimension perturbation baseline destroys.
	ds := Ionosphere(7)
	var a, b []float64
	for i, x := range ds.X {
		if ds.Labels[i] != 0 {
			continue
		}
		a = append(a, x[10])
		b = append(b, x[11])
	}
	r, err := stats.Pearson(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) < 0.4 {
		t.Errorf("corr(pulse10, pulse11 | good) = %g, want |r| > 0.4", r)
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		a, err := ByName(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ByName(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		if a.Len() != b.Len() {
			t.Fatalf("%s: lengths differ", name)
		}
		for i := range a.X {
			if !a.X[i].Equal(b.X[i], 0) {
				t.Fatalf("%s: record %d differs across identical seeds", name, i)
			}
		}
	}
}

func TestSeedsChangeData(t *testing.T) {
	a := Pima(1)
	b := Pima(2)
	same := 0
	for i := range a.X {
		if a.X[i].Equal(b.X[i], 0) {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d identical records across different seeds", same)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("adult", 1); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestTwoGaussians(t *testing.T) {
	ds := TwoGaussians(8, 50, 3, 6)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 100 || ds.Dim() != 3 || ds.NumClasses() != 2 {
		t.Errorf("shape %dx%d classes %d", ds.Len(), ds.Dim(), ds.NumClasses())
	}
}

// Every classification data set must be learnable: a 1-NN classifier on a
// train/test split should beat the majority-class baseline by a clear
// margin, or the condensation experiments would be measuring noise.
func TestDatasetsAreLearnable(t *testing.T) {
	for _, name := range []string{"ionosphere", "ecoli", "pima"} {
		ds, err := ByName(name, 9)
		if err != nil {
			t.Fatal(err)
		}
		train, test, err := ds.TrainTestSplit(0.75, rng.New(10))
		if err != nil {
			t.Fatal(err)
		}
		clf, err := knn.NewClassifier(train, 1)
		if err != nil {
			t.Fatal(err)
		}
		preds, err := clf.PredictAll(test)
		if err != nil {
			t.Fatal(err)
		}
		correct := 0
		for i, p := range preds {
			if p == test.Labels[i] {
				correct++
			}
		}
		acc := float64(correct) / float64(test.Len())
		counts := ds.ClassCounts()
		maxCount := 0
		for _, c := range counts {
			if c > maxCount {
				maxCount = c
			}
		}
		majority := float64(maxCount) / float64(ds.Len())
		if acc <= majority {
			t.Errorf("%s: 1-NN accuracy %.3f does not beat majority baseline %.3f", name, acc, majority)
		}
	}
}

// The regression data set must be predictable within one year well above
// chance.
func TestAbaloneIsPredictable(t *testing.T) {
	ds := Abalone(11)
	train, test, err := ds.TrainTestSplit(0.75, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	reg, err := knn.NewRegressor(train, 5)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := reg.PredictAll(test)
	if err != nil {
		t.Fatal(err)
	}
	within := 0
	for i, p := range preds {
		if math.Abs(p-test.Targets[i]) <= 1 {
			within++
		}
	}
	frac := float64(within) / float64(test.Len())
	if frac < 0.3 {
		t.Errorf("within-one-year accuracy %.3f, want ≥ 0.3", frac)
	}
}

func TestNamesAndTasks(t *testing.T) {
	if len(Names()) != 4 {
		t.Fatalf("Names() = %v", Names())
	}
	for _, name := range Names() {
		ds, err := ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		wantTask := dataset.Classification
		if name == "abalone" {
			wantTask = dataset.Regression
		}
		if ds.Task != wantTask {
			t.Errorf("%s task = %v, want %v", name, ds.Task, wantTask)
		}
		if ds.Name != name {
			t.Errorf("dataset name %q, want %q", ds.Name, name)
		}
	}
}
