// Package datagen generates the synthetic stand-ins for the four UCI data
// sets of the paper's evaluation (Ionosphere, Ecoli, Pima Indian Diabetes,
// Abalone). The build environment is offline, so the original files cannot
// be fetched; instead each generator reproduces the published cardinality,
// dimensionality, and class structure of its data set, and the qualitative
// geometry that drives the paper's narrative:
//
//   - correlated attributes (the condensation approach's whole point is
//     preserving inter-attribute correlations, so every generator builds
//     records from shared latent factors),
//   - locality (classes form compact regions so fixed-size groups are
//     small spatial localities),
//   - anomalies (Ionosphere's noisy radar returns and Pima's label noise
//     are modelled explicitly, so the paper's observed noise-reduction
//     effect of condensation has something to act on).
//
// All generators are deterministic functions of their seed.
package datagen

import (
	"fmt"
	"math"

	"condensation/internal/dataset"
	"condensation/internal/mat"
	"condensation/internal/rng"
)

// factorModel draws records as mean + Σ_f z_f·loading_f + ε, a low-rank
// Gaussian factor model. Shared latent factors z_f induce inter-attribute
// correlations; ε is per-attribute noise.
type factorModel struct {
	mean     mat.Vector
	loadings []mat.Vector // one loading vector per latent factor
	noise    mat.Vector   // per-attribute noise standard deviation
}

// draw samples one record from the model.
func (m factorModel) draw(r *rng.Source) mat.Vector {
	x := m.mean.Clone()
	for _, load := range m.loadings {
		x.AddScaled(r.Norm(), load)
	}
	for j := range x {
		x[j] += m.noise[j] * r.Norm()
	}
	return x
}

// clip bounds every attribute of x to [lo, hi] in place.
func clip(x mat.Vector, lo, hi float64) {
	for j := range x {
		if x[j] < lo {
			x[j] = lo
		}
		if x[j] > hi {
			x[j] = hi
		}
	}
}

// Ionosphere generates the synthetic equivalent of the UCI Ionosphere data
// set: 351 records, 34 continuous radar-return attributes in [−1, 1], two
// classes ("good" 225, "bad" 126). Good returns are coherent — built from
// a few strong smooth latent factors, giving high inter-attribute
// correlation; bad returns are dominated by noise and include a
// heavy-tailed anomalous contaminant, reproducing the data set's character
// that makes condensation's noise-removal visible.
func Ionosphere(seed uint64) *dataset.Dataset {
	const d = 34
	r := rng.New(seed)
	ds := &dataset.Dataset{
		Name:       "ionosphere",
		Task:       dataset.Classification,
		ClassNames: []string{"good", "bad"},
	}
	for j := 0; j < d; j++ {
		ds.Attrs = append(ds.Attrs, fmt.Sprintf("pulse%02d", j))
	}

	// Smooth sinusoidal loadings model the pulse structure of coherent
	// radar returns: neighbouring attributes co-vary strongly.
	loading := func(freq, amp, phase float64) mat.Vector {
		v := make(mat.Vector, d)
		for j := range v {
			v[j] = amp * math.Sin(freq*float64(j)+phase)
		}
		return v
	}
	goodMean := make(mat.Vector, d)
	for j := range goodMean {
		goodMean[j] = 0.5 * math.Cos(0.18*float64(j))
	}
	good := factorModel{
		mean:     goodMean,
		loadings: []mat.Vector{loading(0.2, 0.25, 0), loading(0.45, 0.15, 1.3), loading(0.8, 0.1, 2.1)},
		noise:    constVec(d, 0.08),
	}
	bad := factorModel{
		mean:     constVec(d, 0.05),
		loadings: []mat.Vector{loading(0.6, 0.15, 0.7)},
		noise:    constVec(d, 0.35),
	}

	for i := 0; i < 225; i++ {
		x := good.draw(r)
		// ~6% anomalous good returns: spiky interference.
		if r.Bool(0.06) {
			spike := r.IntN(d)
			x[spike] += r.Uniform(-1.5, 1.5)
		}
		clip(x, -1, 1)
		ds.X = append(ds.X, x)
		ds.Labels = append(ds.Labels, 0)
	}
	for i := 0; i < 126; i++ {
		x := bad.draw(r)
		// Heavy-tailed contaminant: a sixth of bad returns are extreme.
		if r.Bool(0.17) {
			for j := range x {
				x[j] *= 2.5
			}
		}
		clip(x, -1, 1)
		ds.X = append(ds.X, x)
		ds.Labels = append(ds.Labels, 1)
	}
	return ds
}

// ecoliClass describes one Ecoli localization class.
type ecoliClass struct {
	name  string
	count int
	mean  mat.Vector
}

// Ecoli generates the synthetic equivalent of the UCI Ecoli data set: 336
// records, 7 attributes in [0, 1] (signal-sequence scores), 8 protein-
// localization classes with the original highly skewed class sizes (cp 143
// down to imL/imS at 2). Class means are placed to mimic the original
// geometry: cytoplasmic vs inner-membrane vs periplasmic classes separate
// mostly on the alm1/alm2 and gvh scores, with partial overlap.
func Ecoli(seed uint64) *dataset.Dataset {
	r := rng.New(seed)
	classes := []ecoliClass{
		{"cp", 143, mat.Vector{0.36, 0.40, 0.48, 0.50, 0.45, 0.33, 0.36}},
		{"im", 77, mat.Vector{0.45, 0.45, 0.48, 0.50, 0.51, 0.70, 0.71}},
		{"pp", 52, mat.Vector{0.61, 0.62, 0.48, 0.50, 0.53, 0.33, 0.34}},
		{"imU", 35, mat.Vector{0.49, 0.49, 0.48, 0.50, 0.55, 0.75, 0.57}},
		{"om", 20, mat.Vector{0.68, 0.55, 0.48, 0.50, 0.66, 0.42, 0.45}},
		{"omL", 5, mat.Vector{0.72, 0.57, 1.00, 0.50, 0.58, 0.44, 0.45}},
		{"imL", 2, mat.Vector{0.60, 0.50, 1.00, 0.75, 0.52, 0.70, 0.63}},
		{"imS", 2, mat.Vector{0.55, 0.46, 0.48, 0.50, 0.51, 0.74, 0.52}},
	}
	ds := &dataset.Dataset{
		Name:  "ecoli",
		Task:  dataset.Classification,
		Attrs: []string{"mcg", "gvh", "lip", "chg", "aac", "alm1", "alm2"},
	}
	// One shared "membrane affinity" factor couples alm1/alm2/gvh, giving
	// the inter-attribute correlation the paper's µ metric measures.
	load := mat.Vector{0.02, 0.04, 0, 0, 0.03, 0.08, 0.08}
	for label, cls := range classes {
		ds.ClassNames = append(ds.ClassNames, cls.name)
		model := factorModel{mean: cls.mean, loadings: []mat.Vector{load}, noise: constVec(7, 0.09)}
		for i := 0; i < cls.count; i++ {
			x := model.draw(r)
			// lip and chg are near-binary in the original; snap most mass.
			if x[2] < 0.74 {
				x[2] = 0.48
			}
			if x[3] < 0.62 {
				x[3] = 0.50
			}
			clip(x, 0, 1)
			ds.X = append(ds.X, x)
			ds.Labels = append(ds.Labels, label)
		}
	}
	return ds
}

// Pima generates the synthetic equivalent of the UCI Pima Indian Diabetes
// data set: 768 records, 8 clinical attributes, two classes (500 negative,
// 268 positive). Attribute scales match the original units (glucose around
// 110–140, BMI around 30–35, ...). A shared metabolic latent factor
// correlates glucose, BMI, insulin, and age. The original's well-known
// label noise — borderline patients with inconsistent outcomes — is
// reproduced by flipping a fraction of labels near the class boundary;
// this is the anomaly structure the paper credits dynamic condensation
// with cleaning up on this data set.
func Pima(seed uint64) *dataset.Dataset {
	r := rng.New(seed)
	ds := &dataset.Dataset{
		Name:       "pima",
		Task:       dataset.Classification,
		Attrs:      []string{"pregnancies", "glucose", "pressure", "triceps", "insulin", "bmi", "pedigree", "age"},
		ClassNames: []string{"negative", "positive"},
	}
	neg := factorModel{
		mean:     mat.Vector{3.3, 110, 68, 20, 69, 30.3, 0.43, 31.2},
		loadings: []mat.Vector{{0.8, 14, 4, 3, 48, 2.8, 0.06, 4.5}, {1.5, 0, 2, 1, 0, 0.5, 0, 7}},
		noise:    mat.Vector{2.5, 18, 14, 10, 60, 6, 0.25, 7},
	}
	pos := factorModel{
		mean:     mat.Vector{4.9, 141, 71, 22, 100, 35.1, 0.55, 37.1},
		loadings: []mat.Vector{{0.8, 16, 4, 3, 60, 3.2, 0.07, 4.5}, {1.8, 0, 2, 1, 0, 0.5, 0, 8}},
		noise:    mat.Vector{3.2, 22, 15, 11, 90, 6.5, 0.3, 9},
	}
	// Boundary between the class means along the most discriminative
	// attribute (glucose): used to decide which records are borderline.
	const glucoseBoundary = 125.0
	emit := func(m factorModel, label, count int) {
		for i := 0; i < count; i++ {
			x := m.draw(r)
			// Clinical floors: no negative counts or measurements.
			for j := range x {
				if x[j] < 0 {
					x[j] = 0
				}
			}
			x[7] = math.Max(x[7], 21) // adult cohort
			// Label noise: ~8% of borderline records carry the wrong
			// outcome, mimicking the original's anomalies.
			l := label
			if math.Abs(x[1]-glucoseBoundary) < 12 && r.Bool(0.08) {
				l = 1 - l
			}
			ds.X = append(ds.X, x)
			ds.Labels = append(ds.Labels, l)
		}
	}
	emit(neg, 0, 500)
	emit(pos, 1, 268)
	return ds
}

// Abalone generates the synthetic equivalent of the UCI Abalone data set:
// 4177 records, 7 continuous physical measurements, and the ring count
// (age proxy) as the regression target. A single latent size factor drives
// all measurements — the original's attributes are correlated above 0.9 —
// and rings grow with size subject to saturating biology plus noise, so
// "predict age within one year" behaves like the original task.
func Abalone(seed uint64) *dataset.Dataset {
	r := rng.New(seed)
	ds := &dataset.Dataset{
		Name:  "abalone",
		Task:  dataset.Regression,
		Attrs: []string{"length", "diameter", "height", "whole", "shucked", "viscera", "shell"},
	}
	for i := 0; i < 4177; i++ {
		// Size factor: right-skewed in (0, 1], peaking near 0.55 like the
		// original length distribution.
		s := math.Min(1, math.Max(0.05, 0.55+0.18*r.Norm()))
		length := s * (1 + 0.03*r.Norm())
		diameter := 0.80 * s * (1 + 0.04*r.Norm())
		height := 0.28 * s * (1 + 0.08*r.Norm())
		// Weights scale roughly with volume (s³).
		vol := s * s * s
		whole := 2.4 * vol * (1 + 0.10*r.Norm())
		shucked := 0.43 * whole * (1 + 0.08*r.Norm())
		viscera := 0.22 * whole * (1 + 0.10*r.Norm())
		shell := 0.28 * whole * (1 + 0.09*r.Norm())
		x := mat.Vector{length, diameter, height, whole, shucked, viscera, shell}
		for j := range x {
			if x[j] < 0.001 {
				x[j] = 0.001
			}
		}
		// Rings: saturating growth curve in size plus integer-ish noise,
		// spanning the original's 1–29 range with its mode near 9–10.
		rings := 3 + 18*math.Pow(s, 1.6) + 1.8*r.Norm()
		rings = math.Round(math.Min(29, math.Max(1, rings)))
		ds.X = append(ds.X, x)
		ds.Targets = append(ds.Targets, rings)
	}
	return ds
}

// TwoGaussians is a small controllable benchmark data set: two spherical
// Gaussian classes of the given size, separation (distance between means
// in units of the standard deviation), and dimension. Used by examples and
// tests that need a data set whose difficulty is a dial.
func TwoGaussians(seed uint64, perClass, dim int, separation float64) *dataset.Dataset {
	r := rng.New(seed)
	ds := &dataset.Dataset{
		Name:       "two-gaussians",
		Task:       dataset.Classification,
		ClassNames: []string{"a", "b"},
	}
	for j := 0; j < dim; j++ {
		ds.Attrs = append(ds.Attrs, fmt.Sprintf("x%d", j))
	}
	for c := 0; c < 2; c++ {
		shift := separation * float64(c) / math.Sqrt(float64(dim))
		for i := 0; i < perClass; i++ {
			x := make(mat.Vector, dim)
			for j := range x {
				x[j] = shift + r.Norm()
			}
			ds.X = append(ds.X, x)
			ds.Labels = append(ds.Labels, c)
		}
	}
	return ds
}

// ByName returns the named evaluation data set. Recognized names are
// "ionosphere", "ecoli", "pima", and "abalone".
func ByName(name string, seed uint64) (*dataset.Dataset, error) {
	switch name {
	case "ionosphere":
		return Ionosphere(seed), nil
	case "ecoli":
		return Ecoli(seed), nil
	case "pima":
		return Pima(seed), nil
	case "abalone":
		return Abalone(seed), nil
	default:
		return nil, fmt.Errorf("datagen: unknown data set %q (want ionosphere, ecoli, pima, or abalone)", name)
	}
}

// Names lists the four evaluation data sets in the paper's figure order.
func Names() []string { return []string{"ionosphere", "ecoli", "pima", "abalone"} }

func constVec(d int, v float64) mat.Vector {
	out := make(mat.Vector, d)
	for j := range out {
		out[j] = v
	}
	return out
}
