// Package tree implements a CART-style decision-tree classifier. It is
// the second "existing data mining algorithm" the experiment harness runs
// unmodified on condensation-anonymized data (the paper's core claim is
// that no problem-specific redesign is needed), and it is also the
// single-attribute-split family that the Agrawal–Srikant perturbation
// approach supports — so the harness can compare both anonymization
// routes on the classifier class where both are applicable.
package tree

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"condensation/internal/dataset"
	"condensation/internal/mat"
)

// Options tunes tree induction. The zero value uses sane defaults.
type Options struct {
	// MaxDepth bounds the tree depth (default 12).
	MaxDepth int
	// MinLeaf is the minimum number of records in a leaf (default 5).
	MinLeaf int
	// MinGain is the minimum Gini impurity decrease to accept a split
	// (default 1e-7).
	MinGain float64
}

func (o *Options) fill() {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 12
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 5
	}
	if o.MinGain <= 0 {
		o.MinGain = 1e-7
	}
}

// node is one tree node: either a leaf with a class, or an internal node
// with an axis-aligned threshold split.
type node struct {
	// leaf payload
	isLeaf bool
	class  int
	// internal payload
	attr        int
	threshold   float64
	left, right *node
}

// Classifier is a fitted decision tree.
type Classifier struct {
	root       *node
	dim        int
	numClasses int
	nodes      int
	depth      int
}

// Train fits a decision tree on a classification data set with greedy
// Gini-minimizing axis-aligned splits.
func Train(train *dataset.Dataset, opts Options) (*Classifier, error) {
	if train.Task != dataset.Classification {
		return nil, fmt.Errorf("tree: needs a classification data set, got %v", train.Task)
	}
	if err := train.Validate(); err != nil {
		return nil, fmt.Errorf("tree: training data: %w", err)
	}
	if train.Len() == 0 {
		return nil, errors.New("tree: empty training data")
	}
	opts.fill()
	c := &Classifier{dim: train.Dim(), numClasses: train.NumClasses()}
	idx := make([]int, train.Len())
	for i := range idx {
		idx[i] = i
	}
	c.root = c.build(train, idx, 0, opts)
	return c, nil
}

// build grows the subtree over the given record indices.
func (c *Classifier) build(ds *dataset.Dataset, idx []int, depth int, opts Options) *node {
	c.nodes++
	if depth > c.depth {
		c.depth = depth
	}
	counts := make([]int, c.numClasses)
	for _, i := range idx {
		counts[ds.Labels[i]]++
	}
	majority, best := 0, -1
	pure := true
	for cl, n := range counts {
		if n > best {
			majority, best = cl, n
		}
		if n > 0 && n != len(idx) {
			pure = false
		}
	}
	if pure || depth >= opts.MaxDepth || len(idx) < 2*opts.MinLeaf {
		return &node{isLeaf: true, class: majority}
	}

	attr, threshold, gain := bestSplit(ds, idx, counts, opts.MinLeaf)
	if attr < 0 || gain < opts.MinGain {
		return &node{isLeaf: true, class: majority}
	}
	var left, right []int
	for _, i := range idx {
		if ds.X[i][attr] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &node{isLeaf: true, class: majority}
	}
	return &node{
		attr:      attr,
		threshold: threshold,
		left:      c.build(ds, left, depth+1, opts),
		right:     c.build(ds, right, depth+1, opts),
	}
}

// bestSplit scans every attribute for the threshold minimizing the
// weighted child Gini impurity. It returns attr = −1 when no valid split
// exists.
func bestSplit(ds *dataset.Dataset, idx []int, parentCounts []int, minLeaf int) (attr int, threshold, gain float64) {
	n := float64(len(idx))
	parentGini := gini(parentCounts, len(idx))
	attr = -1

	numClasses := len(parentCounts)
	order := make([]int, len(idx))
	leftCounts := make([]int, numClasses)
	rightCounts := make([]int, numClasses)
	for a := 0; a < ds.Dim(); a++ {
		copy(order, idx)
		sort.Slice(order, func(x, y int) bool { return ds.X[order[x]][a] < ds.X[order[y]][a] })
		for i := range leftCounts {
			leftCounts[i] = 0
			rightCounts[i] = parentCounts[i]
		}
		for pos := 0; pos < len(order)-1; pos++ {
			label := ds.Labels[order[pos]]
			leftCounts[label]++
			rightCounts[label]--
			v, next := ds.X[order[pos]][a], ds.X[order[pos+1]][a]
			if v == next {
				continue // cannot split between equal values
			}
			nLeft := pos + 1
			nRight := len(order) - nLeft
			if nLeft < minLeaf || nRight < minLeaf {
				continue
			}
			g := (float64(nLeft)*gini(leftCounts, nLeft) + float64(nRight)*gini(rightCounts, nRight)) / n
			if improvement := parentGini - g; improvement > gain {
				attr, threshold, gain = a, (v+next)/2, improvement
			}
		}
	}
	return attr, threshold, gain
}

// gini returns the Gini impurity of a class count vector over n records.
func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	var sumSq float64
	for _, c := range counts {
		p := float64(c) / float64(n)
		sumSq += p * p
	}
	return 1 - sumSq
}

// Predict returns the class of x.
func (c *Classifier) Predict(x mat.Vector) (int, error) {
	if len(x) != c.dim {
		return 0, fmt.Errorf("tree: query dimension %d, want %d", len(x), c.dim)
	}
	if !x.IsFinite() {
		return 0, errors.New("tree: query has non-finite values")
	}
	nd := c.root
	for !nd.isLeaf {
		if x[nd.attr] <= nd.threshold {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.class, nil
}

// PredictAll classifies every record of a data set, in order.
func (c *Classifier) PredictAll(test *dataset.Dataset) ([]int, error) {
	out := make([]int, test.Len())
	for i, x := range test.X {
		l, err := c.Predict(x)
		if err != nil {
			return nil, fmt.Errorf("tree: record %d: %w", i, err)
		}
		out[i] = l
	}
	return out, nil
}

// Nodes returns the total node count of the fitted tree.
func (c *Classifier) Nodes() int { return c.nodes }

// Depth returns the depth of the fitted tree (root = depth 0).
func (c *Classifier) Depth() int { return c.depth }

// String renders the tree structure for debugging.
func (c *Classifier) String() string {
	var sb strings.Builder
	var walk func(nd *node, indent int)
	walk = func(nd *node, indent int) {
		pad := strings.Repeat("  ", indent)
		if nd.isLeaf {
			fmt.Fprintf(&sb, "%sleaf class=%d\n", pad, nd.class)
			return
		}
		fmt.Fprintf(&sb, "%sx[%d] <= %.6g\n", pad, nd.attr, nd.threshold)
		walk(nd.left, indent+1)
		walk(nd.right, indent+1)
	}
	walk(c.root, 0)
	return sb.String()
}

// Accuracy is a convenience scorer.
func (c *Classifier) Accuracy(test *dataset.Dataset) (float64, error) {
	preds, err := c.PredictAll(test)
	if err != nil {
		return 0, err
	}
	if len(preds) == 0 {
		return 0, errors.New("tree: empty test data")
	}
	correct := 0
	for i, p := range preds {
		if p == test.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(preds)), nil
}
