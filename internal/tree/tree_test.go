package tree

import (
	"math"
	"strings"
	"testing"

	"condensation/internal/datagen"
	"condensation/internal/dataset"
	"condensation/internal/mat"
	"condensation/internal/rng"
)

func separable(seed uint64, perClass int) *dataset.Dataset {
	r := rng.New(seed)
	ds := &dataset.Dataset{
		Task:       dataset.Classification,
		Attrs:      []string{"x", "y"},
		ClassNames: []string{"a", "b"},
	}
	for i := 0; i < perClass; i++ {
		ds.X = append(ds.X, mat.Vector{r.Norm(), r.Norm()})
		ds.Labels = append(ds.Labels, 0)
		ds.X = append(ds.X, mat.Vector{6 + r.Norm(), 6 + r.Norm()})
		ds.Labels = append(ds.Labels, 1)
	}
	return ds
}

// xorData is the classic problem a single split cannot solve but a depth-2
// tree can: class = (x > 0) XOR (y > 0).
func xorData(seed uint64, n int) *dataset.Dataset {
	r := rng.New(seed)
	ds := &dataset.Dataset{Task: dataset.Classification, Attrs: []string{"x", "y"}}
	for i := 0; i < n; i++ {
		x, y := r.Uniform(-1, 1), r.Uniform(-1, 1)
		label := 0
		if (x > 0) != (y > 0) {
			label = 1
		}
		ds.X = append(ds.X, mat.Vector{x, y})
		ds.Labels = append(ds.Labels, label)
	}
	return ds
}

func TestTrainSeparable(t *testing.T) {
	train := separable(1, 100)
	test := separable(2, 30)
	c, err := Train(train, Options{})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := c.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.99 {
		t.Errorf("accuracy %g on separable data", acc)
	}
}

func TestTrainXOR(t *testing.T) {
	train := xorData(3, 500)
	test := xorData(4, 200)
	c, err := Train(train, Options{})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := c.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("accuracy %g on XOR data, want ≥ 0.9 (needs depth ≥ 2)", acc)
	}
	if c.Depth() < 2 {
		t.Errorf("Depth = %d, want ≥ 2 for XOR", c.Depth())
	}
}

func TestMaxDepthRespected(t *testing.T) {
	train := xorData(5, 300)
	c, err := Train(train, Options{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Depth() > 1 {
		t.Errorf("Depth = %d with MaxDepth 1", c.Depth())
	}
}

func TestMinLeafLimitsNodes(t *testing.T) {
	train := xorData(6, 300)
	small, err := Train(train, Options{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Train(train, Options{MinLeaf: 50})
	if err != nil {
		t.Fatal(err)
	}
	if big.Nodes() >= small.Nodes() {
		t.Errorf("MinLeaf=50 produced %d nodes, MinLeaf=1 produced %d", big.Nodes(), small.Nodes())
	}
}

func TestPureDataIsSingleLeaf(t *testing.T) {
	ds := &dataset.Dataset{
		Task:   dataset.Classification,
		X:      []mat.Vector{{1}, {2}, {3}},
		Labels: []int{1, 1, 1},
	}
	c, err := Train(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes() != 1 || c.Depth() != 0 {
		t.Errorf("pure data: %d nodes, depth %d", c.Nodes(), c.Depth())
	}
	got, err := c.Predict(mat.Vector{99})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("Predict = %d", got)
	}
}

func TestConstantAttributesNoSplit(t *testing.T) {
	ds := &dataset.Dataset{
		Task:   dataset.Classification,
		X:      []mat.Vector{{1, 1}, {1, 1}, {1, 1}, {1, 1}},
		Labels: []int{0, 1, 0, 1},
	}
	c, err := Train(ds, Options{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes() != 1 {
		t.Errorf("constant attributes produced %d nodes", c.Nodes())
	}
}

func TestTrainErrors(t *testing.T) {
	reg := &dataset.Dataset{Task: dataset.Regression, X: []mat.Vector{{1}}, Targets: []float64{1}}
	if _, err := Train(reg, Options{}); err == nil {
		t.Error("regression data accepted")
	}
	empty := &dataset.Dataset{Task: dataset.Classification}
	if _, err := Train(empty, Options{}); err == nil {
		t.Error("empty data accepted")
	}
	bad := separable(7, 3)
	bad.Labels = bad.Labels[:2]
	if _, err := Train(bad, Options{}); err == nil {
		t.Error("invalid data accepted")
	}
}

func TestPredictErrors(t *testing.T) {
	c, err := Train(separable(8, 20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict(mat.Vector{1}); err == nil {
		t.Error("wrong dimension accepted")
	}
	if _, err := c.Predict(mat.Vector{1, math.NaN()}); err == nil {
		t.Error("NaN query accepted")
	}
}

func TestString(t *testing.T) {
	c, err := Train(separable(9, 30), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := c.String()
	if !strings.Contains(s, "leaf") {
		t.Errorf("String missing leaves:\n%s", s)
	}
}

func TestPredictAll(t *testing.T) {
	train := separable(10, 50)
	c, err := Train(train, Options{})
	if err != nil {
		t.Fatal(err)
	}
	preds, err := c.PredictAll(train)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != train.Len() {
		t.Fatalf("%d predictions", len(preds))
	}
}

// The core integration claim: an unmodified decision tree trained on the
// synthetic Pima data performs well above the majority baseline, so the
// condensation experiments on trees are meaningful.
func TestTreeOnPima(t *testing.T) {
	ds := datagen.Pima(11)
	train, test, err := ds.TrainTestSplit(0.75, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Train(train, Options{MaxDepth: 6, MinLeaf: 10})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := c.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.7 {
		t.Errorf("Pima tree accuracy %g, want ≥ 0.7", acc)
	}
}

func TestAccuracyEmptyTest(t *testing.T) {
	c, err := Train(separable(13, 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	empty := &dataset.Dataset{Task: dataset.Classification}
	if _, err := c.Accuracy(empty); err == nil {
		t.Error("empty test accepted")
	}
}
