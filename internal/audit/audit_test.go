package audit

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"condensation/internal/core"
	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/telemetry"
)

// cluster draws n points around center with the given spread.
func cluster(r *rng.Source, n, dim int, center, spread float64) []mat.Vector {
	out := make([]mat.Vector, n)
	for i := range out {
		v := make(mat.Vector, dim)
		for j := range v {
			v[j] = center + r.Uniform(-spread, spread)
		}
		out[i] = v
	}
	return out
}

func staticCondensation(t *testing.T, records []mat.Vector, k int) *core.Condensation {
	t.Helper()
	c, err := core.NewCondenser(k, core.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	cond, err := c.Static(records)
	if err != nil {
		t.Fatal(err)
	}
	return cond
}

func TestComputeEmpty(t *testing.T) {
	r, err := Compute(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Groups != 0 || r.Records != 0 || !r.KSatisfied || r.KViolations != 0 {
		t.Fatalf("empty report = %+v", r)
	}
	if _, err := json.Marshal(r); err != nil {
		t.Fatalf("empty report not serializable: %v", err)
	}
}

func TestComputeHealthy(t *testing.T) {
	src := rng.New(11)
	records := append(cluster(src, 60, 3, 0, 1), cluster(src, 60, 3, 50, 1)...)
	cond := staticCondensation(t, records, 5)

	rep, err := Compute(cond, Config{Original: records, SynthSeed: 3, Leftovers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != len(records) {
		t.Errorf("records = %d, want %d", rep.Records, len(records))
	}
	if rep.KViolations != 0 || !rep.KSatisfied {
		t.Errorf("healthy condensation reported %d k-violations", rep.KViolations)
	}
	if rep.MinGroupSize < 5 || rep.MaxGroupSize > 9 {
		t.Errorf("group sizes outside [k,2k-1]: min=%d max=%d", rep.MinGroupSize, rep.MaxGroupSize)
	}
	var histTotal int
	for _, b := range rep.GroupSizeHist {
		histTotal += b.Count
	}
	if histTotal != rep.Groups {
		t.Errorf("size histogram covers %d groups, want %d", histTotal, rep.Groups)
	}
	// Two tight, well-separated clusters: within-group scatter must be a
	// small fraction of total scatter.
	if rep.SSERatio <= 0 || rep.SSERatio > 0.1 {
		t.Errorf("sse_ratio = %v, want small positive", rep.SSERatio)
	}
	if rep.WithinSSE <= 0 || rep.TotalSSE <= rep.WithinSSE {
		t.Errorf("SSE inconsistent: within=%v total=%v", rep.WithinSSE, rep.TotalSSE)
	}
	if rep.DegenerateGroups != 0 {
		t.Errorf("unexpected degenerate groups: %d", rep.DegenerateGroups)
	}
	if rep.CondNumber.Min < 1 || rep.CondNumber.Max < rep.CondNumber.Min ||
		rep.CondNumber.Mean < rep.CondNumber.Min || rep.CondNumber.Mean > rep.CondNumber.Max {
		t.Errorf("condition-number summary inconsistent: %+v", rep.CondNumber)
	}
	if len(rep.CondNumber.Hist) == 0 {
		t.Error("condition-number histogram empty")
	}
	if rep.KS == nil {
		t.Fatal("KS block missing despite original sample")
	}
	if len(rep.KS.PerAttribute) != 3 {
		t.Fatalf("per-attribute KS has %d entries, want 3", len(rep.KS.PerAttribute))
	}
	for j, d := range rep.KS.PerAttribute {
		if d < 0 || d > 1 || math.IsNaN(d) {
			t.Errorf("KS[%d] = %v out of [0,1]", j, d)
		}
		// Synthesis preserves the marginals closely for uniform clusters.
		if d > 0.5 {
			t.Errorf("KS[%d] = %v, implausibly far", j, d)
		}
	}
	if rep.LeftoverRatio != 0 {
		t.Errorf("leftover_ratio = %v, want 0", rep.LeftoverRatio)
	}
}

// TestComputeDeterministic: the same condensation and config give the
// identical report (the KS synthesis uses only the audit's own seed).
func TestComputeDeterministic(t *testing.T) {
	src := rng.New(5)
	records := cluster(src, 40, 2, 0, 3)
	cond := staticCondensation(t, records, 4)
	cfg := Config{Original: records, SynthSeed: 99}
	a, err := Compute(cond, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(cond, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("audit not deterministic:\n%s\n%s", ja, jb)
	}
}

// TestComputeZeroVarianceGroup is the regression test for the degenerate
// case: all-identical records give a zero covariance matrix, which must be
// reported as a degenerate group — never NaN, ±Inf, or a panic.
func TestComputeZeroVarianceGroup(t *testing.T) {
	records := make([]mat.Vector, 12)
	for i := range records {
		records[i] = mat.Vector{1.5, -2.0}
	}
	cond := staticCondensation(t, records, 4)

	rep, err := Compute(cond, Config{Original: records, SynthSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DegenerateGroups != rep.Groups {
		t.Errorf("degenerate groups = %d, want all %d", rep.DegenerateGroups, rep.Groups)
	}
	if len(rep.CondNumber.Hist) != 0 {
		t.Errorf("degenerate-only condensation produced κ histogram %v", rep.CondNumber.Hist)
	}
	if rep.TotalSSE != 0 || rep.SSERatio != 0 {
		t.Errorf("zero-variance data: total_sse=%v sse_ratio=%v, want 0", rep.TotalSSE, rep.SSERatio)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report not serializable: %v", err)
	}
	if strings.Contains(string(data), "NaN") || strings.Contains(string(data), "Inf") {
		t.Fatalf("report leaked non-finite values: %s", data)
	}
}

// TestComputeKViolation: a condensation whose k is higher than the groups
// actually satisfy must report violations.
func TestComputeKViolation(t *testing.T) {
	src := rng.New(3)
	records := cluster(src, 30, 2, 0, 5)
	cond := staticCondensation(t, records, 5)
	// Merging with itself keeps group sizes but the audit against a
	// doubled-k condensation is awkward to build; instead check the
	// leftover accounting and violation count on a healthy build first.
	rep, err := Compute(cond, Config{Leftovers: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeftoverRecords != 10 {
		t.Errorf("leftover_records = %d", rep.LeftoverRecords)
	}
	want := 10.0 / float64(rep.Records+10)
	if math.Abs(rep.LeftoverRatio-want) > 1e-12 {
		t.Errorf("leftover_ratio = %v, want %v", rep.LeftoverRatio, want)
	}
}

func TestPublish(t *testing.T) {
	src := rng.New(8)
	records := cluster(src, 50, 2, 0, 2)
	cond := staticCondensation(t, records, 5)
	rep, err := Compute(cond, Config{Original: records, SynthSeed: 2})
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	rep.Publish(reg)
	rep.Publish(reg) // second pass: runs counter advances, gauges overwrite

	if got := reg.Counter(MetricRuns).Value(); got != 2 {
		t.Errorf("runs counter = %d, want 2", got)
	}
	if got := reg.Counter(MetricKViolations).Value(); got != 0 {
		t.Errorf("k-violations counter = %d, want 0", got)
	}
	if got := reg.Gauge(MetricGroups).Value(); got != float64(rep.Groups) {
		t.Errorf("groups gauge = %v, want %d", got, rep.Groups)
	}
	if got := reg.Gauge(MetricSSERatio).Value(); got != rep.SSERatio {
		t.Errorf("sse gauge = %v, want %v", got, rep.SSERatio)
	}
	if got := int(reg.Histogram(MetricGroupSize, nil).Count()); got != 2*rep.Groups {
		t.Errorf("group-size histogram count = %d, want %d", got, 2*rep.Groups)
	}
	if rep.KS == nil {
		t.Fatal("expected KS block")
	}
	if got := reg.Gauge(MetricKSMean).Value(); got != rep.KS.Mean {
		t.Errorf("ks mean gauge = %v, want %v", got, rep.KS.Mean)
	}
	if got := reg.Gauge(MetricKSDistance, "attr", "0").Value(); got != rep.KS.PerAttribute[0] {
		t.Errorf("ks attr gauge = %v, want %v", got, rep.KS.PerAttribute[0])
	}

	// Exposition includes the audit family.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{MetricRuns, MetricKViolations, MetricGroupSize, MetricCondNumber} {
		if !strings.Contains(b.String(), name) {
			t.Errorf("exposition missing %s", name)
		}
	}

	// Nil registry and nil report are safe.
	rep.Publish(nil)
	(*Report)(nil).Publish(reg)
}

func TestReservoir(t *testing.T) {
	rv := NewReservoir(8, 42)
	if rv.Seen() != 0 || len(rv.Sample()) != 0 {
		t.Fatalf("fresh reservoir not empty")
	}
	var fed []mat.Vector
	for i := 0; i < 100; i++ {
		fed = append(fed, mat.Vector{float64(i)})
	}
	rv.OfferAll(fed)
	if rv.Seen() != 100 {
		t.Errorf("seen = %d", rv.Seen())
	}
	s := rv.Sample()
	if len(s) != 8 {
		t.Fatalf("sample size = %d, want 8", len(s))
	}
	seen := map[float64]bool{}
	for _, x := range s {
		if x[0] < 0 || x[0] > 99 || seen[x[0]] {
			t.Fatalf("sample invalid or duplicated: %v", s)
		}
		seen[x[0]] = true
	}
	// Deterministic for a fixed seed and sequence.
	rv2 := NewReservoir(8, 42)
	rv2.OfferAll(fed)
	s2 := rv2.Sample()
	for i := range s {
		if s[i][0] != s2[i][0] {
			t.Fatalf("reservoir not deterministic: %v vs %v", s, s2)
		}
	}
	// Cloned on offer: mutating the input must not change the sample.
	rv3 := NewReservoir(2, 1)
	buf := mat.Vector{7}
	rv3.Offer(buf)
	buf[0] = 99
	if got := rv3.Sample()[0][0]; got != 7 {
		t.Errorf("reservoir retained aliased record: %v", got)
	}

	// Disabled and nil reservoirs no-op.
	var nilRv *Reservoir
	nilRv.Offer(mat.Vector{1})
	if nilRv.Sample() != nil || nilRv.Seen() != 0 {
		t.Error("nil reservoir reported state")
	}
	off := NewReservoir(0, 1)
	off.Offer(mat.Vector{1})
	if off.Sample() != nil || off.Seen() != 0 {
		t.Error("disabled reservoir retained records")
	}
}

// TestReservoirUniform: a coarse uniformity check — with many trials every
// position has a fair chance of being retained (Algorithm R property).
func TestReservoirUniform(t *testing.T) {
	counts := make([]int, 20)
	for trial := 0; trial < 400; trial++ {
		rv := NewReservoir(4, uint64(trial)+1)
		for i := 0; i < 20; i++ {
			rv.Offer(mat.Vector{float64(i)})
		}
		for _, x := range rv.Sample() {
			counts[int(x[0])]++
		}
	}
	// Expected retention per position: 400 * 4/20 = 80. Allow wide noise.
	for i, c := range counts {
		if c < 40 || c > 120 {
			t.Errorf("position %d retained %d times, want ~80", i, c)
		}
	}
}

func TestPublishShard(t *testing.T) {
	src := rng.New(9)
	records := cluster(src, 40, 2, 0, 2)
	cond := staticCondensation(t, records, 5)
	rep, err := Compute(cond, Config{SynthSeed: 2})
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	rep.PublishShard(reg, 3)
	if got := reg.Gauge(MetricGroups, "shard", "3").Value(); got != float64(rep.Groups) {
		t.Errorf("shard groups gauge = %v, want %d", got, rep.Groups)
	}
	if got := reg.Gauge(MetricRecords, "shard", "3").Value(); got != float64(rep.Records) {
		t.Errorf("shard records gauge = %v, want %d", got, rep.Records)
	}
	if got := reg.Gauge(MetricMinGroupSize, "shard", "3").Value(); got != float64(rep.MinGroupSize) {
		t.Errorf("shard min-group gauge = %v, want %d", got, rep.MinGroupSize)
	}
	if got := reg.Gauge(MetricLeftoverRatio, "shard", "3").Value(); got != rep.LeftoverRatio {
		t.Errorf("shard leftover gauge = %v, want %v", got, rep.LeftoverRatio)
	}
	if got := reg.Counter(MetricKViolations, "shard", "3").Value(); got != uint64(rep.KViolations) {
		t.Errorf("shard k-violations counter = %d, want %d", got, rep.KViolations)
	}

	// The per-shard series must not collide with (or overwrite) the merged
	// unlabeled series.
	rep.Publish(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), MetricGroups+`{shard="3"}`) {
		t.Errorf("exposition missing labeled shard series:\n%s", b.String())
	}
	if !strings.Contains(b.String(), MetricGroups+" ") {
		t.Errorf("exposition missing merged unlabeled series")
	}

	// Nil registry and nil report are no-ops.
	rep.PublishShard(nil, 0)
	(*Report)(nil).PublishShard(reg, 0)
}
