// Package audit computes paper-grounded anonymization-quality metrics from
// a condensation — the group-level measures the microaggregation
// literature evaluates anonymizers by (group-size distribution, k-invariant
// violations, within-group SSE information loss, covariance conditioning,
// marginal distance) — as a live, observe-only monitor.
//
// The auditor only ever reads deep-copied group statistics (for the
// dynamic engine, a snapshot taken under the server's read lock) and never
// touches the engine's random source, so auditing cannot change
// condensation or synthesis output.
package audit

import (
	"fmt"
	"math"
	"sort"

	"condensation/internal/core"
	"condensation/internal/mat"
	"condensation/internal/metrics"
	"condensation/internal/rng"
	"condensation/internal/telemetry"
)

// Config carries the optional inputs of an audit pass.
type Config struct {
	// Original is a sample of original (pre-anonymization) records. When
	// non-empty, the auditor synthesizes an anonymized sample from the
	// condensation and reports the per-attribute Kolmogorov–Smirnov
	// distance between the two marginals. The sample never leaves the
	// auditor; only the distances are published.
	Original []mat.Vector
	// SynthSeed seeds the private random source used for the KS synthesis
	// draw. It is independent of the engine's source, so auditing never
	// perturbs the served synthetic stream.
	SynthSeed uint64
	// Leftovers is the number of leftover records that were folded into
	// nearest groups instead of forming their own (from the engine's
	// condense_leftover_records_total counter).
	Leftovers int
}

// SizeBucket is one bar of the group-size histogram.
type SizeBucket struct {
	Size  int `json:"size"`
	Count int `json:"count"`
}

// DecadeBucket is one bar of the condition-number histogram: Count groups
// whose covariance condition number κ falls in [10^Decade, 10^(Decade+1)).
type DecadeBucket struct {
	Decade int `json:"decade"`
	Count  int `json:"count"`
}

// CondNumberStats summarizes the per-group covariance condition numbers
// κ = λ_max/λ_min over the non-degenerate groups.
type CondNumberStats struct {
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
	// Hist buckets κ by decimal decade; near-singular groups show up as
	// mass in the high decades before they become fully degenerate.
	Hist []DecadeBucket `json:"hist"`
}

// KSReport is the marginal-fidelity block, present only when the audit had
// an original sample to compare against.
type KSReport struct {
	// PerAttribute is the two-sample KS distance per attribute between the
	// original sample's marginal and the synthesized sample's marginal.
	PerAttribute []float64 `json:"per_attribute"`
	Mean         float64   `json:"mean"`
	// OriginalSample and SyntheticSample are the sample sizes compared.
	OriginalSample  int `json:"original_sample"`
	SyntheticSample int `json:"synthetic_sample"`
}

// Report is the result of one audit pass. All fields are derived from the
// retained group moments (and the optional original sample); no raw record
// ever appears in a report.
type Report struct {
	Dim     int `json:"dim"`
	K       int `json:"k"`
	Groups  int `json:"groups"`
	Records int `json:"records"`

	// KViolations counts groups breaking the paper's size invariant
	// k ≤ n(G) ≤ 2k−1. It must be 0 for a healthy engine.
	KViolations int  `json:"k_violations"`
	KSatisfied  bool `json:"k_satisfied"`

	MinGroupSize  int          `json:"min_group_size"`
	MaxGroupSize  int          `json:"max_group_size"`
	MeanGroupSize float64      `json:"mean_group_size"`
	GroupSizeHist []SizeBucket `json:"group_size_hist"`

	// WithinSSE is the within-group sum of squared errors Σ_G Σ_j n(G)·Var_G(j);
	// TotalSSE is the same quantity for all records pooled into one group.
	// Their ratio is the classic microaggregation information-loss score
	// SSE/SST in [0,1]: 0 means groups are internally homogeneous (no
	// information lost to condensation), 1 means grouping explains nothing.
	WithinSSE float64 `json:"within_sse"`
	TotalSSE  float64 `json:"total_sse"`
	SSERatio  float64 `json:"sse_ratio"`

	LeftoverRecords int     `json:"leftover_records"`
	LeftoverRatio   float64 `json:"leftover_ratio"`

	// DegenerateGroups counts groups whose covariance has a non-positive
	// smallest eigenvalue — including the all-identical-records case with a
	// zero covariance matrix — where a condition number is undefined and
	// uniform eigen-synthesis collapses onto a subspace.
	DegenerateGroups int             `json:"degenerate_groups"`
	CondNumber       CondNumberStats `json:"cond_number"`

	KS *KSReport `json:"ks,omitempty"`
}

// Compute runs one audit pass over a condensation. A nil or empty
// condensation yields an empty (but valid) report, so the monitor works
// before any record arrives. The condensation is only read.
func Compute(c *core.Condensation, cfg Config) (*Report, error) {
	r := &Report{KSatisfied: true, LeftoverRecords: cfg.Leftovers}
	if c == nil || c.NumGroups() == 0 {
		return r, nil
	}
	r.Dim = c.Dim()
	r.K = c.K()
	groups := c.Groups()
	r.Groups = len(groups)

	// Group sizes and the k-invariant k ≤ n ≤ 2k−1.
	sizeCount := make(map[int]int)
	r.MinGroupSize = groups[0].N()
	for _, g := range groups {
		n := g.N()
		r.Records += n
		sizeCount[n]++
		if n < r.MinGroupSize {
			r.MinGroupSize = n
		}
		if n > r.MaxGroupSize {
			r.MaxGroupSize = n
		}
		if n < r.K || n > 2*r.K-1 {
			r.KViolations++
		}
	}
	r.KSatisfied = r.KViolations == 0
	r.MeanGroupSize = float64(r.Records) / float64(r.Groups)
	sizes := make([]int, 0, len(sizeCount))
	for s := range sizeCount {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		r.GroupSizeHist = append(r.GroupSizeHist, SizeBucket{Size: s, Count: sizeCount[s]})
	}
	if r.Records > 0 {
		r.LeftoverRatio = float64(cfg.Leftovers) / float64(r.Records+cfg.Leftovers)
	}

	// Within-group SSE from the retained moments: n·Var_G(j) per attribute,
	// summed over groups; total SSE from the exact moment-merge of all
	// groups into one.
	pooled := groups[0].Clone()
	for _, g := range groups[1:] {
		if err := pooled.Merge(g); err != nil {
			return nil, fmt.Errorf("audit: pooling groups: %w", err)
		}
	}
	for _, g := range groups {
		sse, err := groupSSE(g)
		if err != nil {
			return nil, err
		}
		r.WithinSSE += sse
	}
	var err error
	r.TotalSSE, err = groupSSE(pooled)
	if err != nil {
		return nil, err
	}
	if r.TotalSSE > 0 {
		r.SSERatio = r.WithinSSE / r.TotalSSE
	}

	// Covariance conditioning. Eigenvalues come back clamped to ≥ 0 and
	// sorted descending; a non-positive smallest eigenvalue means the
	// condition number is undefined — the group is degenerate (the
	// all-identical-records zero-covariance case included), never NaN.
	var kappas []float64
	for _, g := range groups {
		eig, err := g.Eigen()
		if err != nil {
			return nil, fmt.Errorf("audit: group eigendecomposition: %w", err)
		}
		lmax := eig.Values[0]
		lmin := eig.Values[len(eig.Values)-1]
		if lmin <= 0 || lmax <= 0 {
			r.DegenerateGroups++
			continue
		}
		kappas = append(kappas, lmax/lmin)
	}
	if len(kappas) > 0 {
		decades := make(map[int]int)
		r.CondNumber.Min = kappas[0]
		for _, kap := range kappas {
			if kap < r.CondNumber.Min {
				r.CondNumber.Min = kap
			}
			if kap > r.CondNumber.Max {
				r.CondNumber.Max = kap
			}
			r.CondNumber.Mean += kap
			decades[int(math.Floor(math.Log10(kap)))]++
		}
		r.CondNumber.Mean /= float64(len(kappas))
		ds := make([]int, 0, len(decades))
		for d := range decades {
			ds = append(ds, d)
		}
		sort.Ints(ds)
		for _, d := range ds {
			r.CondNumber.Hist = append(r.CondNumber.Hist, DecadeBucket{Decade: d, Count: decades[d]})
		}
	}

	// Marginal fidelity, when an original sample is available. The
	// synthesis draw uses a private source seeded from cfg.SynthSeed — the
	// engine's stream is never advanced.
	if len(cfg.Original) > 0 {
		synth, err := c.Synthesize(rng.New(cfg.SynthSeed))
		if err != nil {
			return nil, fmt.Errorf("audit: synthesizing for KS: %w", err)
		}
		ks := &KSReport{
			PerAttribute:    make([]float64, r.Dim),
			OriginalSample:  len(cfg.Original),
			SyntheticSample: len(synth),
		}
		colA := make([]float64, len(cfg.Original))
		colB := make([]float64, len(synth))
		for j := 0; j < r.Dim; j++ {
			for i, x := range cfg.Original {
				if len(x) != r.Dim {
					return nil, fmt.Errorf("audit: original sample record %d has dimension %d, want %d", i, len(x), r.Dim)
				}
				colA[i] = x[j]
			}
			for i, x := range synth {
				colB[i] = x[j]
			}
			d, err := metrics.KolmogorovSmirnov(colA, colB)
			if err != nil {
				return nil, fmt.Errorf("audit: KS attribute %d: %w", j, err)
			}
			ks.PerAttribute[j] = d
			ks.Mean += d
		}
		ks.Mean /= float64(r.Dim)
		r.KS = ks
	}
	return r, nil
}

// groupSSE returns Σ_j n·Var(j) for one group — the group's total squared
// deviation from its centroid, computed exactly from the retained moments.
func groupSSE(g interface {
	Dim() int
	N() int
	Variance(int) (float64, error)
}) (float64, error) {
	var sse float64
	n := float64(g.N())
	for j := 0; j < g.Dim(); j++ {
		v, err := g.Variance(j)
		if err != nil {
			return 0, fmt.Errorf("audit: variance of attribute %d: %w", j, err)
		}
		sse += n * v
	}
	return sse, nil
}

// Metric names published by Report.Publish. The k-violation counter is the
// alerting surface: it only ever advances when an audit pass observes a
// group breaking k ≤ n ≤ 2k−1, so any increase is a contract breach.
const (
	MetricRuns             = "condense_audit_runs_total"
	MetricKViolations      = "condense_audit_k_violations_total"
	MetricGroups           = "condense_audit_groups"
	MetricRecords          = "condense_audit_records"
	MetricMinGroupSize     = "condense_audit_min_group_size"
	MetricMaxGroupSize     = "condense_audit_max_group_size"
	MetricMeanGroupSize    = "condense_audit_mean_group_size"
	MetricSSERatio         = "condense_audit_sse_ratio"
	MetricLeftoverRatio    = "condense_audit_leftover_ratio"
	MetricDegenerateGroups = "condense_audit_degenerate_groups"
	MetricKSMean           = "condense_audit_ks_mean"
	MetricKSDistance       = "condense_audit_ks_distance"
	MetricGroupSize        = "condense_audit_group_size"
	MetricCondNumber       = "condense_audit_cond_number"
)

// groupSizeBuckets spans the legal size band [k, 2k−1] with a bucket
// boundary just below k (so violations land in a distinct bucket) and one
// at 2k (so oversized groups do too).
func groupSizeBuckets(k int) []float64 {
	if k < 1 {
		k = 1
	}
	return []float64{
		float64(k) - 0.5,
		float64(k),
		math.Ceil(1.5 * float64(k)),
		float64(2*k - 1),
		float64(2 * k),
	}
}

// condNumberBuckets covers condition numbers by decade up to 1e12, past
// which a group is effectively singular for synthesis purposes.
var condNumberBuckets = []float64{1, 10, 100, 1e3, 1e4, 1e6, 1e8, 1e10, 1e12}

// Publish exports the report into a telemetry registry as the
// condense_audit_* family: gauges carry the latest pass's values,
// histograms accumulate the group-size and condition-number distributions
// across passes, and the k-violation counter advances by the number of
// violating groups observed. A nil registry is a no-op.
func (r *Report) Publish(reg *telemetry.Registry) {
	if reg == nil || r == nil {
		return
	}
	reg.Counter(MetricRuns).Inc()
	reg.Counter(MetricKViolations).Add(r.KViolations)
	reg.Gauge(MetricGroups).Set(float64(r.Groups))
	reg.Gauge(MetricRecords).Set(float64(r.Records))
	reg.Gauge(MetricMinGroupSize).Set(float64(r.MinGroupSize))
	reg.Gauge(MetricMaxGroupSize).Set(float64(r.MaxGroupSize))
	reg.Gauge(MetricMeanGroupSize).Set(r.MeanGroupSize)
	reg.Gauge(MetricSSERatio).Set(r.SSERatio)
	reg.Gauge(MetricLeftoverRatio).Set(r.LeftoverRatio)
	reg.Gauge(MetricDegenerateGroups).Set(float64(r.DegenerateGroups))
	sizeHist := reg.Histogram(MetricGroupSize, groupSizeBuckets(r.K))
	for _, b := range r.GroupSizeHist {
		for i := 0; i < b.Count; i++ {
			sizeHist.Observe(float64(b.Size))
		}
	}
	condHist := reg.Histogram(MetricCondNumber, condNumberBuckets)
	for _, b := range r.CondNumber.Hist {
		// One representative observation per group, placed inside its
		// decade; the exact κ values are in the JSON report.
		for i := 0; i < b.Count; i++ {
			condHist.Observe(math.Pow(10, float64(b.Decade)))
		}
	}
	if r.KS != nil {
		reg.Gauge(MetricKSMean).Set(r.KS.Mean)
		for j, d := range r.KS.PerAttribute {
			reg.Gauge(MetricKSDistance, "attr", fmt.Sprint(j)).Set(d)
		}
	}
}

// PublishShard exports one shard's slice of the report under shard="i"
// labels — the per-shard view the watchdog's imbalance rules and
// dashboards drill into when the merged gauges start moving. Only the
// privacy-critical subset is republished (k-minimum, leftover ratio,
// group/record counts, k-violation counter); distribution histograms and
// KS stay merged-only, matching how PR 6 labels engine series. Callers
// gate on NumShards ≥ 2 so single-shard deployments keep the exact
// unlabeled series set. A nil registry is a no-op.
func (r *Report) PublishShard(reg *telemetry.Registry, shard int) {
	if reg == nil || r == nil {
		return
	}
	s := fmt.Sprint(shard)
	reg.Counter(MetricKViolations, "shard", s).Add(r.KViolations)
	reg.Gauge(MetricGroups, "shard", s).Set(float64(r.Groups))
	reg.Gauge(MetricRecords, "shard", s).Set(float64(r.Records))
	reg.Gauge(MetricMinGroupSize, "shard", s).Set(float64(r.MinGroupSize))
	reg.Gauge(MetricLeftoverRatio, "shard", s).Set(r.LeftoverRatio)
}
