package audit

import (
	"sync"

	"condensation/internal/mat"
	"condensation/internal/rng"
)

// Reservoir keeps a uniform random sample of the records offered to it
// (Vitter's Algorithm R) so the auditor can compare original marginals
// against synthesized ones without the collector retaining its full input.
// The sample lives only inside the trusted collection boundary — reports
// publish KS distances computed from it, never the records themselves.
//
// The sampler uses its own deterministic source, so sampling never touches
// the engine's random stream, and a given seed + record sequence always
// retains the same sample. Safe for concurrent use.
type Reservoir struct {
	mu     sync.Mutex
	r      *rng.Source
	sample []mat.Vector
	seen   int
	cap    int
}

// NewReservoir returns a reservoir holding up to capacity records;
// capacity ≤ 0 disables the reservoir (Offer no-ops, Sample returns nil).
func NewReservoir(capacity int, seed uint64) *Reservoir {
	if capacity <= 0 {
		return &Reservoir{}
	}
	return &Reservoir{
		r:      rng.New(seed),
		sample: make([]mat.Vector, 0, capacity),
		cap:    capacity,
	}
}

// Offer presents one record to the sampler. The record is cloned before it
// is retained, so callers may reuse the backing slice. Nil-safe.
func (rv *Reservoir) Offer(x mat.Vector) {
	if rv == nil || rv.cap == 0 {
		return
	}
	rv.mu.Lock()
	defer rv.mu.Unlock()
	rv.seen++
	if len(rv.sample) < rv.cap {
		rv.sample = append(rv.sample, x.Clone())
		return
	}
	// Algorithm R: the t-th record replaces a random slot with
	// probability cap/t.
	if j := rv.r.IntN(rv.seen); j < rv.cap {
		rv.sample[j] = x.Clone()
	}
}

// OfferAll offers a batch of records in order.
func (rv *Reservoir) OfferAll(xs []mat.Vector) {
	for _, x := range xs {
		rv.Offer(x)
	}
}

// Sample returns a copy of the current sample (the vectors are shared but
// never mutated after retention). Nil-safe.
func (rv *Reservoir) Sample() []mat.Vector {
	if rv == nil || rv.cap == 0 {
		return nil
	}
	rv.mu.Lock()
	defer rv.mu.Unlock()
	out := make([]mat.Vector, len(rv.sample))
	copy(out, rv.sample)
	return out
}

// Seen returns the number of records offered so far. Nil-safe.
func (rv *Reservoir) Seen() int {
	if rv == nil || rv.cap == 0 {
		return 0
	}
	rv.mu.Lock()
	defer rv.mu.Unlock()
	return rv.seen
}
