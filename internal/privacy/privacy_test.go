package privacy

import (
	"math"
	"testing"

	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/stats"
)

func groupOf(t *testing.T, pts ...mat.Vector) *stats.Group {
	t.Helper()
	g, err := stats.FromRecords(pts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAuditGroups(t *testing.T) {
	groups := []*stats.Group{
		groupOf(t, mat.Vector{0, 0}, mat.Vector{1, 1}, mat.Vector{2, 2}),
		groupOf(t, mat.Vector{5, 5}, mat.Vector{6, 6}),
	}
	a, err := AuditGroups(groups, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Satisfied() || a.Violations != 0 {
		t.Errorf("audit %+v should be satisfied", a)
	}
	if a.MinSize != 2 || a.MaxSize != 3 || a.Records != 5 || a.Groups != 2 {
		t.Errorf("audit stats wrong: %+v", a)
	}
	if math.Abs(a.MeanSize-2.5) > 1e-12 {
		t.Errorf("MeanSize = %g", a.MeanSize)
	}

	a, err = AuditGroups(groups, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Satisfied() || a.Violations != 1 {
		t.Errorf("audit %+v should report one violation", a)
	}
}

func TestAuditGroupsErrors(t *testing.T) {
	if _, err := AuditGroups(nil, 2); err == nil {
		t.Error("empty groups accepted")
	}
	g := groupOf(t, mat.Vector{1})
	if _, err := AuditGroups([]*stats.Group{g}, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestExpectedReidentification(t *testing.T) {
	// Two groups of 4: probability 1/4.
	groups := []*stats.Group{}
	for g := 0; g < 2; g++ {
		pts := make([]mat.Vector, 4)
		for i := range pts {
			pts[i] = mat.Vector{float64(g*10 + i)}
		}
		groups = append(groups, groupOf(t, pts...))
	}
	p, err := ExpectedReidentification(groups)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.25) > 1e-12 {
		t.Errorf("ExpectedReidentification = %g, want 0.25", p)
	}
	if _, err := ExpectedReidentification(nil); err == nil {
		t.Error("empty groups accepted")
	}
}

func TestLinkageAttackPerfectLeak(t *testing.T) {
	// Synthetic records identical to the originals: the attack links
	// every original to its own group.
	orig := [][]mat.Vector{
		{{0, 0}, {0.1, 0}},
		{{10, 10}, {10.1, 10}},
	}
	rate, err := LinkageAttack(orig, orig)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 1 {
		t.Errorf("self-linkage rate = %g, want 1", rate)
	}
}

func TestLinkageAttackWellMixedIsNearBaseline(t *testing.T) {
	// All groups drawn from one distribution and synthesized as a single
	// shared blob: linkage cannot beat random by much.
	r := rng.New(1)
	const groups, perGroup = 10, 20
	orig := make([][]mat.Vector, groups)
	synth := make([][]mat.Vector, groups)
	sizes := make([]int, groups)
	for g := 0; g < groups; g++ {
		for i := 0; i < perGroup; i++ {
			orig[g] = append(orig[g], mat.Vector{r.Norm(), r.Norm()})
			synth[g] = append(synth[g], mat.Vector{r.Norm(), r.Norm()})
		}
		sizes[g] = perGroup
	}
	rate, err := LinkageAttack(orig, synth)
	if err != nil {
		t.Fatal(err)
	}
	base, err := RandomLinkageRate(sizes)
	if err != nil {
		t.Fatal(err)
	}
	if rate > base+0.15 {
		t.Errorf("linkage rate %g on unstructured data, baseline %g", rate, base)
	}
}

func TestLinkageAttackErrors(t *testing.T) {
	if _, err := LinkageAttack(nil, nil); err == nil {
		t.Error("empty groups accepted")
	}
	if _, err := LinkageAttack(make([][]mat.Vector, 2), make([][]mat.Vector, 3)); err == nil {
		t.Error("mismatched group counts accepted")
	}
	empty := make([][]mat.Vector, 1)
	if _, err := LinkageAttack(empty, empty); err == nil {
		t.Error("no synthetic records accepted")
	}
}

func TestRandomLinkageRate(t *testing.T) {
	rate, err := RandomLinkageRate([]int{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-0.5) > 1e-12 {
		t.Errorf("RandomLinkageRate([5 5]) = %g, want 0.5", rate)
	}
	rate, err = RandomLinkageRate([]int{10})
	if err != nil {
		t.Fatal(err)
	}
	if rate != 1 {
		t.Errorf("single group rate = %g, want 1", rate)
	}
	if _, err := RandomLinkageRate(nil); err == nil {
		t.Error("empty sizes accepted")
	}
	if _, err := RandomLinkageRate([]int{0}); err == nil {
		t.Error("zero size accepted")
	}
}

func TestGroupPrivacyVolume(t *testing.T) {
	// Uniform square of side a has eigenvalues a²/12 each, so
	// 2^h = a·a.
	r := rng.New(2)
	pts := make([]mat.Vector, 20000)
	for i := range pts {
		pts[i] = mat.Vector{r.Uniform(0, 2), r.Uniform(0, 4)}
	}
	g, err := stats.FromRecords(pts)
	if err != nil {
		t.Fatal(err)
	}
	vol, err := GroupPrivacyVolume(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vol-8) > 0.3 {
		t.Errorf("volume = %g, want ≈ 8 (2×4 box)", vol)
	}
}

func TestGroupPrivacyVolumeDegenerate(t *testing.T) {
	g := groupOf(t, mat.Vector{1, 1}, mat.Vector{1, 1})
	vol, err := GroupPrivacyVolume(g)
	if err != nil {
		t.Fatal(err)
	}
	if vol != 0 {
		t.Errorf("point-mass volume = %g, want 0", vol)
	}
}

func TestMeanLogPrivacyVolumeIncreasesWithK(t *testing.T) {
	// Larger groups over the same data spread wider, so the aggregate
	// privacy volume must grow with group size.
	r := rng.New(3)
	pts := make([]mat.Vector, 64)
	for i := range pts {
		pts[i] = mat.Vector{r.Norm(), r.Norm()}
	}
	makeGroups := func(size int) []*stats.Group {
		var gs []*stats.Group
		for i := 0; i+size <= len(pts); i += size {
			g, err := stats.FromRecords(pts[i : i+size])
			if err != nil {
				t.Fatal(err)
			}
			gs = append(gs, g)
		}
		return gs
	}
	small, err := MeanLogPrivacyVolume(makeGroups(4))
	if err != nil {
		t.Fatal(err)
	}
	large, err := MeanLogPrivacyVolume(makeGroups(16))
	if err != nil {
		t.Fatal(err)
	}
	if large <= small {
		t.Errorf("log volume did not grow with group size: %g (k=4) vs %g (k=16)", small, large)
	}
	if _, err := MeanLogPrivacyVolume(nil); err == nil {
		t.Error("empty groups accepted")
	}
}
