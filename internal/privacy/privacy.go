// Package privacy quantifies the privacy side of the condensation
// trade-off: auditing the k-indistinguishability guarantee, measuring an
// adversary's re-identification success with a nearest-neighbour linkage
// attack, and computing the entropy-based privacy volume of condensed
// groups in the style of the Agrawal–Aggarwal quantification framework.
package privacy

import (
	"errors"
	"fmt"
	"math"

	"condensation/internal/mat"
	"condensation/internal/stats"
)

// Audit summarizes the group-size distribution of a condensation against
// a required indistinguishability level k.
type Audit struct {
	// K is the required minimum group size.
	K int
	// Groups is the number of groups audited.
	Groups int
	// Records is the total record count across groups.
	Records int
	// MinSize and MaxSize bound the observed group sizes.
	MinSize, MaxSize int
	// MeanSize is the average group size.
	MeanSize float64
	// Violations counts groups smaller than K.
	Violations int
}

// Satisfied reports whether every group meets the indistinguishability
// level.
func (a Audit) Satisfied() bool { return a.Violations == 0 }

// AuditGroups checks the k-indistinguishability of a set of condensed
// groups: every record must be statistically indistinguishable from at
// least k−1 others, i.e. every group must hold at least k records.
func AuditGroups(groups []*stats.Group, k int) (Audit, error) {
	if len(groups) == 0 {
		return Audit{}, errors.New("privacy: no groups to audit")
	}
	if k < 1 {
		return Audit{}, fmt.Errorf("privacy: k = %d, must be ≥ 1", k)
	}
	a := Audit{K: k, Groups: len(groups), MinSize: groups[0].N(), MaxSize: groups[0].N()}
	for _, g := range groups {
		n := g.N()
		a.Records += n
		if n < a.MinSize {
			a.MinSize = n
		}
		if n > a.MaxSize {
			a.MaxSize = n
		}
		if n < k {
			a.Violations++
		}
	}
	a.MeanSize = float64(a.Records) / float64(a.Groups)
	return a, nil
}

// ExpectedReidentification returns the in-group re-identification
// probability: an adversary who has narrowed a target down to its group
// still faces n(G) indistinguishable candidates, so the per-record success
// probability is 1/n(G); the returned value is the record-weighted mean,
// which for uniform groups of size k equals 1/k.
func ExpectedReidentification(groups []*stats.Group) (float64, error) {
	if len(groups) == 0 {
		return 0, errors.New("privacy: no groups")
	}
	var sum float64
	var records int
	for i, g := range groups {
		if g.N() == 0 {
			return 0, fmt.Errorf("privacy: group %d is empty", i)
		}
		// Each of the n records contributes probability 1/n.
		sum += 1 // n · (1/n)
		records += g.N()
	}
	return sum / float64(records), nil
}

// LinkageAttack simulates a record-linkage adversary who holds the
// original records and the published anonymized records, and links each
// original record to its nearest anonymized record. The attack "succeeds"
// for a record when the linked anonymized record was synthesized from the
// group that actually contained the record — the finest attribution the
// published data supports. originals and synthetic are per-group slices
// with matching group order (as returned by the condensation pipeline).
//
// The returned success rate should be compared against RandomLinkageRate:
// a success rate near the random baseline means the synthesis leaks no
// linkage signal beyond group geometry itself.
func LinkageAttack(originalsByGroup, syntheticByGroup [][]mat.Vector) (successRate float64, err error) {
	if len(originalsByGroup) != len(syntheticByGroup) {
		return 0, fmt.Errorf("privacy: %d original groups vs %d synthetic groups",
			len(originalsByGroup), len(syntheticByGroup))
	}
	if len(originalsByGroup) == 0 {
		return 0, errors.New("privacy: no groups")
	}
	// Flatten synthetic records with their group id.
	type tagged struct {
		x     mat.Vector
		group int
	}
	var all []tagged
	for gi, pts := range syntheticByGroup {
		for _, x := range pts {
			all = append(all, tagged{x: x, group: gi})
		}
	}
	if len(all) == 0 {
		return 0, errors.New("privacy: no synthetic records")
	}
	var successes, total int
	for gi, origs := range originalsByGroup {
		for _, o := range origs {
			best, bestD := -1, math.Inf(1)
			for i := range all {
				if d := o.DistSq(all[i].x); d < bestD {
					best, bestD = i, d
				}
			}
			if all[best].group == gi {
				successes++
			}
			total++
		}
	}
	if total == 0 {
		return 0, errors.New("privacy: no original records")
	}
	return float64(successes) / float64(total), nil
}

// RandomLinkageRate returns the success rate a linkage adversary achieves
// by guessing uniformly at random among the synthetic records: the
// record-weighted expected fraction of synthetic records sharing the
// target's group.
func RandomLinkageRate(groupSizes []int) (float64, error) {
	if len(groupSizes) == 0 {
		return 0, errors.New("privacy: no groups")
	}
	var total int
	for i, n := range groupSizes {
		if n <= 0 {
			return 0, fmt.Errorf("privacy: group %d has size %d", i, n)
		}
		total += n
	}
	var rate float64
	for _, n := range groupSizes {
		p := float64(n) / float64(total) // probability a random guess lands in this group
		rate += float64(n) / float64(total) * p
	}
	return rate, nil
}

// GroupPrivacyVolume returns the entropy-based privacy measure 2^h(G) of a
// condensed group under the paper's locally-uniform synthesis model,
// following the Agrawal–Aggarwal quantification of privacy as
// 2^(differential entropy). The synthesized distribution is a product of
// uniforms of width √(12 λ_j) along the eigenvectors, so
//
//	2^h = Π_j √(12 λ_j)
//
// — the volume of the synthesis support. Larger volume means an adversary
// faces a wider region of indistinguishable possibilities. Degenerate
// groups (any λ_j = 0) have zero volume: along a collapsed direction the
// synthesis is deterministic.
func GroupPrivacyVolume(g *stats.Group) (float64, error) {
	eig, err := g.Eigen()
	if err != nil {
		return 0, err
	}
	vol := 1.0
	for _, lambda := range eig.Values {
		vol *= math.Sqrt(12 * lambda)
	}
	return vol, nil
}

// MeanLogPrivacyVolume returns the record-weighted mean of log2(volume)
// across groups — the aggregate differential-entropy privacy of a
// condensation. Groups with zero volume contribute −Inf, surfaced as
// such rather than hidden.
func MeanLogPrivacyVolume(groups []*stats.Group) (float64, error) {
	if len(groups) == 0 {
		return 0, errors.New("privacy: no groups")
	}
	var sum float64
	var records int
	for _, g := range groups {
		vol, err := GroupPrivacyVolume(g)
		if err != nil {
			return 0, err
		}
		sum += math.Log2(vol) * float64(g.N())
		records += g.N()
	}
	if records == 0 {
		return 0, errors.New("privacy: no records")
	}
	return sum / float64(records), nil
}
