package cluster

import (
	"math"
	"testing"

	"condensation/internal/mat"
	"condensation/internal/rng"
)

func blobs(seed uint64, perBlob int, centers []mat.Vector) []mat.Vector {
	r := rng.New(seed)
	var out []mat.Vector
	for _, c := range centers {
		for i := 0; i < perBlob; i++ {
			x := c.Clone()
			for j := range x {
				x[j] += 0.5 * r.Norm()
			}
			out = append(out, x)
		}
	}
	return out
}

func TestKMeansRecoversBlobs(t *testing.T) {
	truth := []mat.Vector{{0, 0}, {10, 0}, {0, 10}}
	recs := blobs(1, 50, truth)
	res, err := KMeans(recs, 3, rng.New(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 || len(res.Assign) != len(recs) {
		t.Fatalf("result shape wrong: %d centers, %d assignments", len(res.Centers), len(res.Assign))
	}
	dist, err := MatchCenters(truth, res.Centers)
	if err != nil {
		t.Fatal(err)
	}
	if dist > 0.5 {
		t.Errorf("mean center error %g, want < 0.5", dist)
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	recs := blobs(3, 40, []mat.Vector{{0, 0}, {8, 8}})
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 2, 4} {
		res, err := KMeans(recs, k, rng.New(4), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev+1e-9 {
			t.Errorf("k=%d: inertia %g exceeds k-1 value %g", k, res.Inertia, prev)
		}
		prev = res.Inertia
	}
}

func TestKMeansAssignmentsConsistent(t *testing.T) {
	recs := blobs(5, 30, []mat.Vector{{0, 0}, {9, 9}})
	res, err := KMeans(recs, 2, rng.New(6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range recs {
		a := res.Assign[i]
		da := x.DistSq(res.Centers[a])
		for c := range res.Centers {
			if x.DistSq(res.Centers[c]) < da-1e-9 {
				t.Fatalf("record %d assigned to non-nearest center", i)
			}
		}
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	recs := []mat.Vector{{0, 0}, {1, 1}, {2, 2}}
	res, err := KMeans(recs, 3, rng.New(7), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Errorf("k=n inertia %g, want 0", res.Inertia)
	}
}

func TestKMeansDuplicateRecords(t *testing.T) {
	recs := []mat.Vector{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err := KMeans(recs, 2, rng.New(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-12 {
		t.Errorf("duplicate-point inertia %g", res.Inertia)
	}
}

func TestKMeansErrors(t *testing.T) {
	recs := blobs(9, 5, []mat.Vector{{0, 0}})
	if _, err := KMeans(nil, 1, rng.New(1), Options{}); err == nil {
		t.Error("empty records accepted")
	}
	if _, err := KMeans(recs, 0, rng.New(1), Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(recs, 100, rng.New(1), Options{}); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := KMeans(recs, 1, nil, Options{}); err == nil {
		t.Error("nil source accepted")
	}
	ragged := []mat.Vector{{1, 2}, {3}}
	if _, err := KMeans(ragged, 1, rng.New(1), Options{}); err == nil {
		t.Error("ragged records accepted")
	}
	nan := []mat.Vector{{math.NaN()}}
	if _, err := KMeans(nan, 1, rng.New(1), Options{}); err == nil {
		t.Error("NaN records accepted")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	recs := blobs(10, 30, []mat.Vector{{0, 0}, {7, 7}})
	r1, err := KMeans(recs, 2, rng.New(11), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := KMeans(recs, 2, rng.New(11), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Inertia != r2.Inertia {
		t.Error("k-means is not deterministic for a fixed seed")
	}
}

func TestMatchCentersErrors(t *testing.T) {
	if _, err := MatchCenters(nil, nil); err == nil {
		t.Error("empty centers accepted")
	}
	if _, err := MatchCenters([]mat.Vector{{1}}, []mat.Vector{{1}, {2}}); err == nil {
		t.Error("mismatched counts accepted")
	}
}

func TestMatchCentersExact(t *testing.T) {
	a := []mat.Vector{{0, 0}, {5, 5}}
	b := []mat.Vector{{5, 5}, {0, 0}} // same set, different order
	d, err := MatchCenters(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("MatchCenters = %g, want 0", d)
	}
}
