// Package cluster provides k-means clustering, used to check the paper's
// closing remark that "it would be interesting to study other data mining
// problems as well": the experiment harness clusters original and
// anonymized data and compares the structures, demonstrating that
// condensed data supports unmodified clustering algorithms too.
package cluster

import (
	"errors"
	"fmt"
	"math"

	"condensation/internal/mat"
	"condensation/internal/rng"
)

// Result is the outcome of a k-means run.
type Result struct {
	// Centers holds the k cluster centroids.
	Centers []mat.Vector
	// Assign maps each input record to its cluster index.
	Assign []int
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// Options tunes the k-means run.
type Options struct {
	// MaxIter bounds the Lloyd iterations (default 100).
	MaxIter int
	// Tol stops iteration when no assignment changes (always applied);
	// additionally, when the relative inertia improvement falls below Tol
	// (default 1e-6).
	Tol float64
	// Restarts is the number of independent k-means++ initializations;
	// the lowest-inertia run wins (default 4). Lloyd's algorithm only
	// finds local optima, so a few restarts make results far more stable.
	Restarts int
}

func (o *Options) fill() {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.Restarts <= 0 {
		o.Restarts = 4
	}
}

// KMeans clusters the records into k clusters with Lloyd's algorithm,
// k-means++ seeding, and best-of-Restarts selection. It is deterministic
// given the random source.
func KMeans(records []mat.Vector, k int, r *rng.Source, opts Options) (*Result, error) {
	opts.fill()
	var best *Result
	for run := 0; run < opts.Restarts; run++ {
		res, err := kmeansOnce(records, k, r, opts)
		if err != nil {
			return nil, err
		}
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

// kmeansOnce runs one seeded Lloyd descent.
func kmeansOnce(records []mat.Vector, k int, r *rng.Source, opts Options) (*Result, error) {
	if len(records) == 0 {
		return nil, errors.New("cluster: no records")
	}
	if k < 1 {
		return nil, fmt.Errorf("cluster: k = %d, must be ≥ 1", k)
	}
	if k > len(records) {
		return nil, fmt.Errorf("cluster: k = %d exceeds %d records", k, len(records))
	}
	if r == nil {
		return nil, errors.New("cluster: nil random source")
	}
	d := len(records[0])
	for i, x := range records {
		if len(x) != d {
			return nil, fmt.Errorf("cluster: record %d has dimension %d, want %d", i, len(x), d)
		}
		if !x.IsFinite() {
			return nil, fmt.Errorf("cluster: record %d has non-finite values", i)
		}
	}
	opts.fill()

	centers := seedPlusPlus(records, k, r)
	assign := make([]int, len(records))
	counts := make([]int, k)
	prevInertia := math.Inf(1)
	res := &Result{}
	for iter := 0; iter < opts.MaxIter; iter++ {
		// Assignment step.
		changed := false
		var inertia float64
		for i, x := range records {
			best, bestD := 0, x.DistSq(centers[0])
			for c := 1; c < k; c++ {
				if dd := x.DistSq(centers[c]); dd < bestD {
					best, bestD = c, dd
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			inertia += bestD
		}
		res.Iterations = iter + 1
		res.Inertia = inertia

		converged := !changed ||
			(!math.IsInf(prevInertia, 1) && prevInertia-inertia <= opts.Tol*math.Max(1, prevInertia))
		prevInertia = inertia
		if converged {
			break
		}

		// Update step.
		for c := range centers {
			centers[c] = make(mat.Vector, d)
			counts[c] = 0
		}
		for i, x := range records {
			centers[assign[i]].AddScaled(1, x)
			counts[assign[i]]++
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random record — a standard
				// remedy that keeps exactly k clusters.
				centers[c] = records[r.IntN(len(records))].Clone()
				continue
			}
			centers[c] = centers[c].Scale(1 / float64(counts[c]))
		}
	}
	res.Centers = centers
	res.Assign = assign
	return res, nil
}

// seedPlusPlus picks initial centers by k-means++: each new center is
// drawn with probability proportional to its squared distance from the
// nearest existing center.
func seedPlusPlus(records []mat.Vector, k int, r *rng.Source) []mat.Vector {
	centers := make([]mat.Vector, 0, k)
	centers = append(centers, records[r.IntN(len(records))].Clone())
	dist := make([]float64, len(records))
	for len(centers) < k {
		var total float64
		for i, x := range records {
			d := x.DistSq(centers[0])
			for _, c := range centers[1:] {
				if dd := x.DistSq(c); dd < d {
					d = dd
				}
			}
			dist[i] = d
			total += d
		}
		if total == 0 {
			// All remaining mass sits on existing centers (duplicates);
			// any record works.
			centers = append(centers, records[r.IntN(len(records))].Clone())
			continue
		}
		centers = append(centers, records[r.Categorical(dist)].Clone())
	}
	return centers
}

// MatchCenters greedily pairs each center in a with its nearest unmatched
// center in b and returns the mean pairing distance — a simple measure of
// how well a clustering of anonymized data reproduces the clustering of
// the original data.
func MatchCenters(a, b []mat.Vector) (float64, error) {
	if len(a) == 0 || len(a) != len(b) {
		return 0, fmt.Errorf("cluster: cannot match %d centers with %d", len(a), len(b))
	}
	used := make([]bool, len(b))
	var total float64
	for _, ca := range a {
		best, bestD := -1, math.Inf(1)
		for j, cb := range b {
			if used[j] {
				continue
			}
			if d := ca.Dist(cb); d < bestD {
				best, bestD = j, d
			}
		}
		used[best] = true
		total += bestD
	}
	return total / float64(len(a)), nil
}
