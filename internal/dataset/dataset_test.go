package dataset

import (
	"math"
	"testing"

	"condensation/internal/mat"
	"condensation/internal/rng"
)

func sampleClassification() *Dataset {
	return &Dataset{
		Name:       "toy",
		Attrs:      []string{"a", "b"},
		Task:       Classification,
		X:          []mat.Vector{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {5, 5}, {5, 6}, {6, 5}, {6, 6}},
		Labels:     []int{0, 0, 0, 0, 1, 1, 1, 1},
		ClassNames: []string{"low", "high"},
	}
}

func sampleRegression() *Dataset {
	return &Dataset{
		Name:    "toyreg",
		Attrs:   []string{"a"},
		Task:    Regression,
		X:       []mat.Vector{{1}, {2}, {3}, {4}, {5}, {6}},
		Targets: []float64{2, 4, 6, 8, 10, 12},
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleClassification().Validate(); err != nil {
		t.Error(err)
	}
	if err := sampleRegression().Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	ds := sampleClassification()
	ds.X[3] = mat.Vector{1} // ragged
	if ds.Validate() == nil {
		t.Error("ragged records accepted")
	}

	ds = sampleClassification()
	ds.X[0][0] = math.NaN()
	if ds.Validate() == nil {
		t.Error("NaN accepted")
	}

	ds = sampleClassification()
	ds.Labels = ds.Labels[:3]
	if ds.Validate() == nil {
		t.Error("label count mismatch accepted")
	}

	ds = sampleClassification()
	ds.Labels[0] = -1
	if ds.Validate() == nil {
		t.Error("negative label accepted")
	}

	ds = sampleClassification()
	ds.Labels[0] = 5
	if ds.Validate() == nil {
		t.Error("out-of-range label accepted")
	}

	rg := sampleRegression()
	rg.Targets[0] = math.Inf(1)
	if rg.Validate() == nil {
		t.Error("Inf target accepted")
	}

	bad := sampleClassification()
	bad.Task = Task(9)
	if bad.Validate() == nil {
		t.Error("unknown task accepted")
	}
}

func TestTaskString(t *testing.T) {
	if Classification.String() != "classification" || Regression.String() != "regression" {
		t.Error("Task.String wrong")
	}
	if Task(7).String() == "" {
		t.Error("unknown task String empty")
	}
}

func TestCloneIndependence(t *testing.T) {
	ds := sampleClassification()
	c := ds.Clone()
	c.X[0][0] = 99
	c.Labels[0] = 1
	if ds.X[0][0] == 99 || ds.Labels[0] == 1 {
		t.Error("Clone aliases original")
	}
}

func TestSubset(t *testing.T) {
	ds := sampleClassification()
	sub, err := ds.Subset([]int{4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 || sub.Labels[0] != 1 || sub.Labels[1] != 0 {
		t.Errorf("Subset wrong: %v %v", sub.X, sub.Labels)
	}
	if _, err := ds.Subset([]int{99}); err == nil {
		t.Error("out-of-range subset index accepted")
	}
}

func TestSubsetRegression(t *testing.T) {
	ds := sampleRegression()
	sub, err := ds.Subset([]int{5})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Targets[0] != 12 {
		t.Errorf("Subset target = %g", sub.Targets[0])
	}
}

func TestShuffleKeepsAlignment(t *testing.T) {
	ds := sampleClassification()
	// Class is determined by whether x[0] < 3; shuffling must preserve it.
	ds.Shuffle(rng.New(3))
	for i, x := range ds.X {
		wantLabel := 0
		if x[0] >= 3 {
			wantLabel = 1
		}
		if ds.Labels[i] != wantLabel {
			t.Fatalf("record %d label %d desynchronized from features %v", i, ds.Labels[i], x)
		}
	}
}

func TestNumClassesAndCounts(t *testing.T) {
	ds := sampleClassification()
	if got := ds.NumClasses(); got != 2 {
		t.Errorf("NumClasses = %d", got)
	}
	counts := ds.ClassCounts()
	if counts[0] != 4 || counts[1] != 4 {
		t.Errorf("ClassCounts = %v", counts)
	}
	ds.ClassNames = nil
	if got := ds.NumClasses(); got != 2 {
		t.Errorf("NumClasses without names = %d", got)
	}
	if sampleRegression().NumClasses() != 0 {
		t.Error("regression NumClasses != 0")
	}
}

func TestTrainTestSplitStratified(t *testing.T) {
	ds := sampleClassification()
	train, test, err := ds.TrainTestSplit(0.75, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != ds.Len() {
		t.Fatalf("split sizes %d + %d != %d", train.Len(), test.Len(), ds.Len())
	}
	// Stratification: each side keeps both classes.
	for _, part := range []*Dataset{train, test} {
		counts := part.ClassCounts()
		if counts[0] == 0 || counts[1] == 0 {
			t.Errorf("split lost a class: %v", counts)
		}
	}
}

func TestTrainTestSplitRegression(t *testing.T) {
	ds := sampleRegression()
	train, test, err := ds.TrainTestSplit(0.5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 3 || test.Len() != 3 {
		t.Errorf("split sizes %d/%d, want 3/3", train.Len(), test.Len())
	}
}

func TestTrainTestSplitBadFraction(t *testing.T) {
	ds := sampleClassification()
	for _, frac := range []float64{0, 1, -0.5, 2} {
		if _, _, err := ds.TrainTestSplit(frac, rng.New(1)); err == nil {
			t.Errorf("fraction %g accepted", frac)
		}
	}
}

func TestTrainTestSplitTooSmall(t *testing.T) {
	ds := &Dataset{Task: Regression, X: []mat.Vector{{1}}, Targets: []float64{1}}
	if _, _, err := ds.TrainTestSplit(0.5, rng.New(1)); err == nil {
		t.Error("single-record split accepted")
	}
}

func TestKFold(t *testing.T) {
	ds := sampleClassification()
	folds, err := ds.KFold(4, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 4 {
		t.Fatalf("%d folds", len(folds))
	}
	totalTest := 0
	for _, f := range folds {
		totalTest += f.Test.Len()
		if f.Train.Len()+f.Test.Len() != ds.Len() {
			t.Errorf("fold sizes %d + %d != %d", f.Train.Len(), f.Test.Len(), ds.Len())
		}
	}
	if totalTest != ds.Len() {
		t.Errorf("test folds cover %d records, want %d", totalTest, ds.Len())
	}
}

func TestKFoldErrors(t *testing.T) {
	ds := sampleClassification()
	if _, err := ds.KFold(1, rng.New(1)); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := ds.KFold(100, rng.New(1)); err == nil {
		t.Error("k > n accepted")
	}
}

func TestAppend(t *testing.T) {
	ds := sampleClassification()
	if err := ds.Append(mat.Vector{2, 2}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 9 || ds.Labels[8] != 0 {
		t.Error("Append failed")
	}
	if err := ds.Append(mat.Vector{1}, 0, 0); err == nil {
		t.Error("dimension mismatch accepted")
	}
	rg := sampleRegression()
	if err := rg.Append(mat.Vector{7}, 0, 14); err != nil {
		t.Fatal(err)
	}
	if rg.Targets[len(rg.Targets)-1] != 14 {
		t.Error("regression Append target lost")
	}
}

func TestDimFallbacks(t *testing.T) {
	empty := &Dataset{}
	if empty.Dim() != 0 {
		t.Error("empty Dim != 0")
	}
	noAttrs := &Dataset{X: []mat.Vector{{1, 2, 3}}}
	if noAttrs.Dim() != 3 {
		t.Error("Dim from records failed")
	}
}
