package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTripClassification(t *testing.T) {
	ds := sampleClassification()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "toy", Classification)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() || got.Dim() != ds.Dim() {
		t.Fatalf("round trip %dx%d, want %dx%d", got.Len(), got.Dim(), ds.Len(), ds.Dim())
	}
	for i := range ds.X {
		if !got.X[i].Equal(ds.X[i], 0) {
			t.Errorf("record %d = %v, want %v", i, got.X[i], ds.X[i])
		}
		if got.ClassNames[got.Labels[i]] != ds.ClassNames[ds.Labels[i]] {
			t.Errorf("record %d label %q, want %q", i,
				got.ClassNames[got.Labels[i]], ds.ClassNames[ds.Labels[i]])
		}
	}
}

func TestCSVRoundTripRegression(t *testing.T) {
	ds := sampleRegression()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "toyreg", Regression)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Targets {
		if got.Targets[i] != ds.Targets[i] {
			t.Errorf("target %d = %g, want %g", i, got.Targets[i], ds.Targets[i])
		}
	}
}

func TestCSVNumericLabels(t *testing.T) {
	in := "a,b,class\n1,2,0\n3,4,1\n"
	ds, err := ReadCSV(strings.NewReader(in), "n", Classification)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Labels[0] != 0 || ds.Labels[1] != 1 {
		t.Errorf("Labels = %v", ds.Labels)
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
		task     Task
	}{
		{"empty", "", Classification},
		{"one column", "a\n1\n", Classification},
		{"bad float", "a,b,class\n1,x,0\n", Classification},
		{"ragged", "a,b,class\n1,2,0\n1,0\n", Classification},
		{"bad target", "a,target\n1,zzz\n", Regression},
	}
	for _, tc := range cases {
		if _, err := ReadCSV(strings.NewReader(tc.in), tc.name, tc.task); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestWriteCSVValidates(t *testing.T) {
	ds := sampleClassification()
	ds.Labels = ds.Labels[:2]
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err == nil {
		t.Error("invalid data set written")
	}
}

func TestWriteCSVSynthesizesHeader(t *testing.T) {
	ds := sampleRegression()
	ds.Attrs = nil
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "attr0,target") {
		t.Errorf("header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}
