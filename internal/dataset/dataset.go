// Package dataset provides the tabular-data container used throughout the
// condensation library, together with CSV serialization, feature scaling,
// and stratified splitting utilities.
//
// A Dataset holds numeric multi-dimensional records — the only data model
// the condensation approach operates on — plus either an integer class
// label per record (classification) or a float64 target per record
// (regression, used for the Abalone age-prediction experiment).
package dataset

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"condensation/internal/mat"
	"condensation/internal/rng"
)

// Task distinguishes classification data sets from regression data sets.
type Task int

const (
	// Classification marks data sets with an integer class label per record.
	Classification Task = iota
	// Regression marks data sets with a real-valued target per record.
	Regression
)

// String returns the task name.
func (t Task) String() string {
	switch t {
	case Classification:
		return "classification"
	case Regression:
		return "regression"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// Dataset is a set of numeric records with supervision. Exactly one of
// Labels (classification) or Targets (regression) is populated, according
// to Task.
type Dataset struct {
	// Name identifies the data set in reports.
	Name string
	// Attrs names the d attributes.
	Attrs []string
	// Task selects between Labels and Targets.
	Task Task
	// X holds the records; all rows share the dimensionality len(Attrs).
	X []mat.Vector
	// Labels holds one class index per record for classification tasks.
	Labels []int
	// ClassNames optionally names the classes; may be nil.
	ClassNames []string
	// Targets holds one real target per record for regression tasks.
	Targets []float64
}

// Len returns the number of records.
func (ds *Dataset) Len() int { return len(ds.X) }

// Dim returns the attribute dimensionality, or 0 for an empty data set
// with no declared attributes.
func (ds *Dataset) Dim() int {
	if len(ds.Attrs) > 0 {
		return len(ds.Attrs)
	}
	if len(ds.X) > 0 {
		return len(ds.X[0])
	}
	return 0
}

// Validate checks internal consistency: rectangular records, finite
// values, matching supervision length, and in-range labels.
func (ds *Dataset) Validate() error {
	d := ds.Dim()
	for i, x := range ds.X {
		if len(x) != d {
			return fmt.Errorf("dataset %q: record %d has dimension %d, want %d", ds.Name, i, len(x), d)
		}
		if !x.IsFinite() {
			return fmt.Errorf("dataset %q: record %d has non-finite values", ds.Name, i)
		}
	}
	switch ds.Task {
	case Classification:
		if len(ds.Labels) != len(ds.X) {
			return fmt.Errorf("dataset %q: %d labels for %d records", ds.Name, len(ds.Labels), len(ds.X))
		}
		for i, l := range ds.Labels {
			if l < 0 {
				return fmt.Errorf("dataset %q: negative label %d at record %d", ds.Name, l, i)
			}
			if ds.ClassNames != nil && l >= len(ds.ClassNames) {
				return fmt.Errorf("dataset %q: label %d at record %d out of range for %d classes",
					ds.Name, l, i, len(ds.ClassNames))
			}
		}
	case Regression:
		if len(ds.Targets) != len(ds.X) {
			return fmt.Errorf("dataset %q: %d targets for %d records", ds.Name, len(ds.Targets), len(ds.X))
		}
		for i, y := range ds.Targets {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				return fmt.Errorf("dataset %q: non-finite target at record %d", ds.Name, i)
			}
		}
	default:
		return fmt.Errorf("dataset %q: unknown task %d", ds.Name, int(ds.Task))
	}
	return nil
}

// Clone returns an independent deep copy.
func (ds *Dataset) Clone() *Dataset {
	out := &Dataset{Name: ds.Name, Task: ds.Task}
	out.Attrs = append([]string(nil), ds.Attrs...)
	out.ClassNames = append([]string(nil), ds.ClassNames...)
	out.X = make([]mat.Vector, len(ds.X))
	for i, x := range ds.X {
		out.X[i] = x.Clone()
	}
	out.Labels = append([]int(nil), ds.Labels...)
	out.Targets = append([]float64(nil), ds.Targets...)
	return out
}

// Subset returns a new data set containing the records at the given
// indices (deep-copied), in order.
func (ds *Dataset) Subset(idx []int) (*Dataset, error) {
	out := &Dataset{
		Name:       ds.Name,
		Attrs:      append([]string(nil), ds.Attrs...),
		ClassNames: append([]string(nil), ds.ClassNames...),
		Task:       ds.Task,
	}
	for _, i := range idx {
		if i < 0 || i >= len(ds.X) {
			return nil, fmt.Errorf("dataset %q: subset index %d out of range [0,%d)", ds.Name, i, len(ds.X))
		}
		out.X = append(out.X, ds.X[i].Clone())
		if ds.Task == Classification {
			out.Labels = append(out.Labels, ds.Labels[i])
		} else {
			out.Targets = append(out.Targets, ds.Targets[i])
		}
	}
	return out, nil
}

// Shuffle permutes the records (with their supervision) in place using the
// supplied random source.
func (ds *Dataset) Shuffle(r *rng.Source) {
	r.Shuffle(len(ds.X), func(i, j int) {
		ds.X[i], ds.X[j] = ds.X[j], ds.X[i]
		if ds.Task == Classification {
			ds.Labels[i], ds.Labels[j] = ds.Labels[j], ds.Labels[i]
		} else {
			ds.Targets[i], ds.Targets[j] = ds.Targets[j], ds.Targets[i]
		}
	})
}

// NumClasses returns the number of distinct classes: len(ClassNames) when
// set, otherwise max label + 1. It returns 0 for regression data sets.
func (ds *Dataset) NumClasses() int {
	if ds.Task != Classification {
		return 0
	}
	if len(ds.ClassNames) > 0 {
		return len(ds.ClassNames)
	}
	maxLabel := -1
	for _, l := range ds.Labels {
		if l > maxLabel {
			maxLabel = l
		}
	}
	return maxLabel + 1
}

// ClassCounts returns the number of records per class.
func (ds *Dataset) ClassCounts() []int {
	counts := make([]int, ds.NumClasses())
	for _, l := range ds.Labels {
		counts[l]++
	}
	return counts
}

// ByClass groups the record indices by class label.
func (ds *Dataset) ByClass() map[int][]int {
	out := make(map[int][]int)
	for i, l := range ds.Labels {
		out[l] = append(out[l], i)
	}
	return out
}

// TrainTestSplit splits the data set into a training part of the given
// fraction and a test part with the remainder. Classification splits are
// stratified so both parts retain the class proportions; regression splits
// are simple random splits. The data set itself is not modified.
func (ds *Dataset) TrainTestSplit(trainFrac float64, r *rng.Source) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset %q: train fraction %g outside (0,1)", ds.Name, trainFrac)
	}
	if ds.Len() < 2 {
		return nil, nil, fmt.Errorf("dataset %q: %d records is too few to split", ds.Name, ds.Len())
	}
	var trainIdx, testIdx []int
	if ds.Task == Classification {
		for _, members := range orderedClasses(ds.ByClass()) {
			members = append([]int(nil), members...)
			r.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
			cut := int(math.Round(trainFrac * float64(len(members))))
			// Keep at least one record on each side when the class allows it.
			if cut == 0 && len(members) > 1 {
				cut = 1
			}
			if cut == len(members) && len(members) > 1 {
				cut = len(members) - 1
			}
			trainIdx = append(trainIdx, members[:cut]...)
			testIdx = append(testIdx, members[cut:]...)
		}
	} else {
		perm := r.Perm(ds.Len())
		cut := int(math.Round(trainFrac * float64(ds.Len())))
		if cut == 0 {
			cut = 1
		}
		if cut == ds.Len() {
			cut = ds.Len() - 1
		}
		trainIdx, testIdx = perm[:cut], perm[cut:]
	}
	if train, err = ds.Subset(trainIdx); err != nil {
		return nil, nil, err
	}
	if test, err = ds.Subset(testIdx); err != nil {
		return nil, nil, err
	}
	return train, test, nil
}

// orderedClasses returns the class groups in ascending label order so that
// stratified splitting is deterministic given a seeded source.
func orderedClasses(byClass map[int][]int) [][]int {
	labels := make([]int, 0, len(byClass))
	for l := range byClass {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	out := make([][]int, 0, len(labels))
	for _, l := range labels {
		out = append(out, byClass[l])
	}
	return out
}

// Fold is one train/test partition of a k-fold cross-validation.
type Fold struct {
	Train *Dataset
	Test  *Dataset
}

// KFold partitions the data set into k cross-validation folds. For
// classification the folds are stratified.
func (ds *Dataset) KFold(k int, r *rng.Source) ([]Fold, error) {
	if k < 2 {
		return nil, fmt.Errorf("dataset %q: k-fold with k=%d", ds.Name, k)
	}
	if ds.Len() < k {
		return nil, fmt.Errorf("dataset %q: %d records for %d folds", ds.Name, ds.Len(), k)
	}
	assign := make([]int, ds.Len()) // record index → fold
	if ds.Task == Classification {
		for _, members := range orderedClasses(ds.ByClass()) {
			members = append([]int(nil), members...)
			r.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
			for pos, idx := range members {
				assign[idx] = pos % k
			}
		}
	} else {
		perm := r.Perm(ds.Len())
		for pos, idx := range perm {
			assign[idx] = pos % k
		}
	}
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		var trainIdx, testIdx []int
		for i, a := range assign {
			if a == f {
				testIdx = append(testIdx, i)
			} else {
				trainIdx = append(trainIdx, i)
			}
		}
		train, err := ds.Subset(trainIdx)
		if err != nil {
			return nil, err
		}
		test, err := ds.Subset(testIdx)
		if err != nil {
			return nil, err
		}
		folds[f] = Fold{Train: train, Test: test}
	}
	return folds, nil
}

// Append adds a record with its supervision. The vector is not copied.
func (ds *Dataset) Append(x mat.Vector, label int, target float64) error {
	if d := ds.Dim(); d > 0 && len(x) != d {
		return fmt.Errorf("dataset %q: appending record of dimension %d to %d-dimensional data", ds.Name, len(x), d)
	}
	ds.X = append(ds.X, x)
	if ds.Task == Classification {
		ds.Labels = append(ds.Labels, label)
	} else {
		ds.Targets = append(ds.Targets, target)
	}
	return nil
}

// ErrEmpty is returned by operations that need at least one record.
var ErrEmpty = errors.New("dataset: empty data set")

// Records returns the raw record slice (not copied).
func (ds *Dataset) Records() []mat.Vector { return ds.X }
