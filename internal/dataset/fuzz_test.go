package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary text to the CSV reader for both tasks: any
// accepted data set must validate and survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b,class\n1,2,x\n3,4,y\n", true)
	f.Add("a,target\n1,2\n", false)
	f.Add("", true)
	f.Add("a,b,class\n1,notanumber,x\n", true)
	f.Add("a,b,class\n1,2\n", true)

	f.Fuzz(func(t *testing.T, text string, classify bool) {
		task := Classification
		if !classify {
			task = Regression
		}
		ds, err := ReadCSV(strings.NewReader(text), "fuzz", task)
		if err != nil {
			return
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("accepted data set fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ds); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		again, err := ReadCSV(&buf, "fuzz2", task)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if again.Len() != ds.Len() || again.Dim() != ds.Dim() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				again.Len(), again.Dim(), ds.Len(), ds.Dim())
		}
	})
}
