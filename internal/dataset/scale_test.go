package dataset

import (
	"math"
	"testing"

	"condensation/internal/mat"
)

func TestFitZScore(t *testing.T) {
	ds := &Dataset{
		Task:    Regression,
		X:       []mat.Vector{{0, 10}, {2, 10}, {4, 10}},
		Targets: []float64{0, 0, 0},
	}
	s, err := FitZScore(ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(ds); err != nil {
		t.Fatal(err)
	}
	// First attribute: mean 2, std sqrt(8/3).
	var mean0 float64
	for _, x := range ds.X {
		mean0 += x[0]
	}
	if math.Abs(mean0) > 1e-12 {
		t.Errorf("z-scored mean = %g", mean0/3)
	}
	// Constant attribute must become constant 0, not NaN.
	for _, x := range ds.X {
		if x[1] != 0 {
			t.Errorf("constant attribute mapped to %g", x[1])
		}
	}
}

func TestFitMinMax(t *testing.T) {
	ds := &Dataset{
		Task:    Regression,
		X:       []mat.Vector{{-2, 7}, {0, 7}, {2, 7}},
		Targets: []float64{0, 0, 0},
	}
	s, err := FitMinMax(ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(ds); err != nil {
		t.Fatal(err)
	}
	if ds.X[0][0] != 0 || ds.X[2][0] != 1 || ds.X[1][0] != 0.5 {
		t.Errorf("min-max scaled: %v", ds.X)
	}
	for _, x := range ds.X {
		if x[1] != 0 {
			t.Errorf("constant attribute mapped to %g", x[1])
		}
	}
}

func TestScalerRoundTrip(t *testing.T) {
	ds := &Dataset{
		Task:    Regression,
		X:       []mat.Vector{{1, -5}, {3, 0}, {9, 5}},
		Targets: []float64{0, 0, 0},
	}
	s, err := FitZScore(ds)
	if err != nil {
		t.Fatal(err)
	}
	orig := mat.Vector{4, 2}
	scaled, err := s.Transform(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := s.Inverse(scaled)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(orig, 1e-12) {
		t.Errorf("round trip %v → %v → %v", orig, scaled, back)
	}
}

func TestScalerDimMismatch(t *testing.T) {
	ds := &Dataset{Task: Regression, X: []mat.Vector{{1, 2}}, Targets: []float64{0}}
	s, err := FitZScore(ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Transform(mat.Vector{1}); err == nil {
		t.Error("Transform dim mismatch accepted")
	}
	if _, err := s.Inverse(mat.Vector{1, 2, 3}); err == nil {
		t.Error("Inverse dim mismatch accepted")
	}
	if s.Dim() != 2 {
		t.Errorf("Dim = %d", s.Dim())
	}
}

func TestFitOnEmpty(t *testing.T) {
	empty := &Dataset{Task: Regression}
	if _, err := FitZScore(empty); err == nil {
		t.Error("FitZScore on empty accepted")
	}
	if _, err := FitMinMax(empty); err == nil {
		t.Error("FitMinMax on empty accepted")
	}
}
