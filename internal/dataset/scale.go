package dataset

import (
	"fmt"
	"math"

	"condensation/internal/mat"
)

// Scaler is a fitted per-attribute affine transform x' = (x - shift)/scale.
// Two constructions are provided: z-score standardization and min-max
// normalization to [0, 1]. Scaling matters for the condensation approach
// because both the nearest-neighbour grouping and the kNN classifier use
// Euclidean distance, which is dominated by large-range attributes when
// the data is left raw.
type Scaler struct {
	shift mat.Vector
	scale mat.Vector
}

// FitZScore fits a standardizing scaler (shift = mean, scale = stddev) on
// the records of ds. Attributes with zero variance get scale 1 so they map
// to a constant 0 rather than NaN.
func FitZScore(ds *Dataset) (*Scaler, error) {
	if ds.Len() == 0 {
		return nil, ErrEmpty
	}
	d := ds.Dim()
	mean := mat.NewVector(d)
	for _, x := range ds.X {
		mean.AddScaled(1, x)
	}
	n := float64(ds.Len())
	for j := range mean {
		mean[j] /= n
	}
	std := mat.NewVector(d)
	for _, x := range ds.X {
		for j := range std {
			dev := x[j] - mean[j]
			std[j] += dev * dev
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / n)
		if std[j] == 0 {
			std[j] = 1
		}
	}
	return &Scaler{shift: mean, scale: std}, nil
}

// FitMinMax fits a [0,1] range scaler. Constant attributes get scale 1.
func FitMinMax(ds *Dataset) (*Scaler, error) {
	if ds.Len() == 0 {
		return nil, ErrEmpty
	}
	d := ds.Dim()
	lo := ds.X[0].Clone()
	hi := ds.X[0].Clone()
	for _, x := range ds.X[1:] {
		for j := range lo {
			if x[j] < lo[j] {
				lo[j] = x[j]
			}
			if x[j] > hi[j] {
				hi[j] = x[j]
			}
		}
	}
	scale := mat.NewVector(d)
	for j := range scale {
		scale[j] = hi[j] - lo[j]
		if scale[j] == 0 {
			scale[j] = 1
		}
	}
	return &Scaler{shift: lo, scale: scale}, nil
}

// Dim returns the attribute dimensionality the scaler was fitted on.
func (s *Scaler) Dim() int { return len(s.shift) }

// Transform returns the scaled copy of x.
func (s *Scaler) Transform(x mat.Vector) (mat.Vector, error) {
	if len(x) != len(s.shift) {
		return nil, fmt.Errorf("dataset: scaler dimension %d, record dimension %d", len(s.shift), len(x))
	}
	out := make(mat.Vector, len(x))
	for j := range x {
		out[j] = (x[j] - s.shift[j]) / s.scale[j]
	}
	return out, nil
}

// Inverse returns the unscaled copy of x.
func (s *Scaler) Inverse(x mat.Vector) (mat.Vector, error) {
	if len(x) != len(s.shift) {
		return nil, fmt.Errorf("dataset: scaler dimension %d, record dimension %d", len(s.shift), len(x))
	}
	out := make(mat.Vector, len(x))
	for j := range x {
		out[j] = x[j]*s.scale[j] + s.shift[j]
	}
	return out, nil
}

// Apply scales every record of ds in place.
func (s *Scaler) Apply(ds *Dataset) error {
	for i, x := range ds.X {
		scaled, err := s.Transform(x)
		if err != nil {
			return fmt.Errorf("dataset: record %d: %w", i, err)
		}
		ds.X[i] = scaled
	}
	return nil
}
