package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"condensation/internal/mat"
)

// WriteCSV writes the data set with a header row. Attribute columns come
// first; the final column is the class label (classification) or the
// target value (regression).
func WriteCSV(w io.Writer, ds *Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := append([]string(nil), ds.Attrs...)
	if len(header) == 0 {
		for j := 0; j < ds.Dim(); j++ {
			header = append(header, fmt.Sprintf("attr%d", j))
		}
	}
	if ds.Task == Classification {
		header = append(header, "class")
	} else {
		header = append(header, "target")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	row := make([]string, ds.Dim()+1)
	for i, x := range ds.X {
		for j, v := range x {
			row[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if ds.Task == Classification {
			if ds.ClassNames != nil {
				row[len(row)-1] = ds.ClassNames[ds.Labels[i]]
			} else {
				row[len(row)-1] = strconv.Itoa(ds.Labels[i])
			}
		} else {
			row[len(row)-1] = strconv.FormatFloat(ds.Targets[i], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a data set written by WriteCSV (or any CSV with a header
// row, numeric attribute columns, and a final supervision column). For
// classification, non-numeric labels are interned into ClassNames in order
// of first appearance; numeric labels are parsed as class indices.
func ReadCSV(r io.Reader, name string, task Task) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for better messages
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("dataset: header has %d columns, want at least 2", len(header))
	}
	d := len(header) - 1
	ds := &Dataset{
		Name:  name,
		Attrs: append([]string(nil), header[:d]...),
		Task:  task,
	}
	classIndex := map[string]int{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		if len(rec) != d+1 {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(rec), d+1)
		}
		x := make(mat.Vector, d)
		for j := 0; j < d; j++ {
			x[j], err = strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d, column %q: %w", line, header[j], err)
			}
		}
		ds.X = append(ds.X, x)
		last := rec[d]
		if task == Classification {
			if idx, err := strconv.Atoi(last); err == nil && idx >= 0 {
				ds.Labels = append(ds.Labels, idx)
			} else {
				idx, ok := classIndex[last]
				if !ok {
					idx = len(classIndex)
					classIndex[last] = idx
					ds.ClassNames = append(ds.ClassNames, last)
				}
				ds.Labels = append(ds.Labels, idx)
			}
		} else {
			y, err := strconv.ParseFloat(last, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d, target: %w", line, err)
			}
			ds.Targets = append(ds.Targets, y)
		}
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}
