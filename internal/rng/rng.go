// Package rng provides a small deterministic pseudo-random number generator
// for the condensation library.
//
// Determinism matters here more than in most numerical code: anonymized
// data is *synthesized* from group statistics, so reproducing a published
// experiment requires that the same seed produce the same anonymized data
// set byte for byte. The package implements xoshiro256++ seeded through
// SplitMix64, with a Split operation that derives statistically independent
// child streams — used to give each condensation group, each data-set
// generator, and each experiment repetition its own stream without any
// cross-coupling when one component changes how much randomness it draws.
package rng

import (
	"fmt"
	"math"
)

// Source is a deterministic xoshiro256++ PRNG. It is not safe for
// concurrent use; derive per-goroutine sources with Split.
type Source struct {
	s [4]uint64

	// Spare variate cache for the Marsaglia polar method used by Norm.
	haveSpare bool
	spare     float64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is the recommended seeding procedure for the xoshiro family.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Any seed, including 0,
// yields a well-mixed non-degenerate state.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitMix64(&sm)
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new Source whose stream is statistically independent of
// the parent's subsequent output. The child state is derived by running the
// parent's next four outputs through SplitMix64, so parent and child never
// share state.
func (r *Source) Split() *Source {
	var child Source
	for i := range child.s {
		sm := r.Uint64()
		child.s[i] = splitMix64(&sm)
	}
	return &child
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (r *Source) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic(fmt.Sprintf("rng: Uniform bounds inverted [%g, %g)", lo, hi))
	}
	return lo + (hi-lo)*r.Float64()
}

// IntN returns a uniform int in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless bounded generation.
func (r *Source) IntN(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: IntN(%d), n must be > 0", n))
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Norm returns a standard normal variate. It uses the Marsaglia polar
// method with caching of the second variate.
func (r *Source) Norm() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// NormMeanStd returns a normal variate with the given mean and standard
// deviation. It panics on a negative standard deviation.
func (r *Source) NormMeanStd(mean, std float64) float64 {
	if std < 0 {
		panic(fmt.Sprintf("rng: negative standard deviation %g", std))
	}
	return mean + std*r.Norm()
}

// Exp returns an exponential variate with rate lambda (mean 1/lambda).
func (r *Source) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic(fmt.Sprintf("rng: Exp rate %g, must be > 0", lambda))
	}
	// 1-Float64() is in (0, 1], so the log never sees zero.
	return -math.Log(1-r.Float64()) / lambda
}

// Shuffle pseudo-randomizes the order of n elements using the supplied swap
// function (Fisher–Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		swap(i, j)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool { return r.Float64() < p }

// Categorical samples an index with probability proportional to weights.
// It panics if all weights are zero or any weight is negative.
func (r *Source) Categorical(weights []float64) int {
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("rng: Categorical weight[%d] = %g", i, w))
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Categorical weights sum to zero")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1 // floating-point edge: return the last nonzero index
}
