package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical outputs for different seeds", same)
	}
}

func TestZeroSeedIsNotDegenerate(t *testing.T) {
	r := New(0)
	var zeros int
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Errorf("seed 0 produced %d zero outputs in 100 draws", zeros)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", x)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(8)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %g, want ≈ 0.5", mean)
	}
}

func TestUniform(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		x := r.Uniform(-3, 5)
		if x < -3 || x >= 5 {
			t.Fatalf("Uniform(-3,5) = %g", x)
		}
	}
}

func TestUniformInvertedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted Uniform bounds did not panic")
		}
	}()
	New(1).Uniform(5, -3)
}

func TestIntNRangeAndCoverage(t *testing.T) {
	r := New(10)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		x := r.IntN(7)
		if x < 0 || x >= 7 {
			t.Fatalf("IntN(7) = %d", x)
		}
		seen[x] = true
	}
	if len(seen) != 7 {
		t.Errorf("IntN(7) covered only %d values in 1000 draws", len(seen))
	}
}

func TestIntNOne(t *testing.T) {
	r := New(11)
	for i := 0; i < 10; i++ {
		if x := r.IntN(1); x != 0 {
			t.Fatalf("IntN(1) = %d", x)
		}
	}
}

func TestIntNZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	New(1).IntN(0)
}

func TestIntNUniformity(t *testing.T) {
	r := New(12)
	const n, k = 60000, 6
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		counts[r.IntN(k)]++
	}
	want := float64(n) / k
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %g", i, c, want)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %g, want ≈ 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %g, want ≈ 1", variance)
	}
}

func TestNormMeanStd(t *testing.T) {
	r := New(14)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormMeanStd(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Errorf("NormMeanStd mean = %g, want ≈ 10", mean)
	}
}

func TestNormMeanStdNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative std did not panic")
		}
	}()
	New(1).NormMeanStd(0, -1)
}

func TestExpMean(t *testing.T) {
	r := New(15)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exp(2)
		if x < 0 {
			t.Fatalf("Exp produced negative %g", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %g, want ≈ 0.5", mean)
	}
}

func TestExpBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(20)
	child := parent.Split()
	// Child stream must not replicate the parent's subsequent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical outputs between parent and child", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	a, b := New(21), New(21)
	ca, cb := a.Split(), b.Split()
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestPerm(t *testing.T) {
	r := New(22)
	p := r.Perm(10)
	seen := make([]bool, 10)
	for _, x := range p {
		if x < 0 || x >= 10 || seen[x] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[x] = true
	}
}

func TestPermZero(t *testing.T) {
	if p := New(1).Perm(0); len(p) != 0 {
		t.Errorf("Perm(0) = %v", p)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
		r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		seen := make([]bool, len(xs))
		for _, x := range xs {
			if x < 0 || x >= len(xs) || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(23)
	const n = 100000
	var trues int
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			trues++
		}
	}
	frac := float64(trues) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %g", frac)
	}
}

func TestCategorical(t *testing.T) {
	r := New(24)
	const n = 90000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[r.Categorical([]float64{1, 2, 3})]++
	}
	wants := []float64{n / 6.0, n / 3.0, n / 2.0}
	for i, c := range counts {
		if math.Abs(float64(c)-wants[i]) > 6*math.Sqrt(wants[i]) {
			t.Errorf("Categorical bucket %d = %d, want ≈ %g", i, c, wants[i])
		}
	}
}

func TestCategoricalZeroWeightNeverChosen(t *testing.T) {
	r := New(25)
	for i := 0; i < 1000; i++ {
		if got := r.Categorical([]float64{0, 1, 0}); got != 1 {
			t.Fatalf("Categorical chose zero-weight index %d", got)
		}
	}
}

func TestCategoricalAllZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("all-zero Categorical did not panic")
		}
	}()
	New(1).Categorical([]float64{0, 0})
}

func TestCategoricalNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Categorical weight did not panic")
		}
	}()
	New(1).Categorical([]float64{1, -1})
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}
