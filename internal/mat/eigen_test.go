package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD builds a random symmetric positive semi-definite matrix AᵀA.
func randomSPD(r *rand.Rand, d int) *Matrix {
	a := New(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			a.Set(i, j, r.NormFloat64())
		}
	}
	return a.T().Mul(a)
}

func TestSymEigenDiagonal(t *testing.T) {
	c := Diagonal(Vector{1, 5, 3})
	e, err := SymEigen(c)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Values.Equal(Vector{5, 3, 1}, 1e-12) {
		t.Errorf("Values = %v, want [5 3 1]", e.Values)
	}
}

func TestSymEigen2x2Known(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1 with eigenvectors (1,1)/√2, (1,-1)/√2.
	c := FromRows([][]float64{{2, 1}, {1, 2}})
	e, err := SymEigen(c)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Values.Equal(Vector{3, 1}, 1e-12) {
		t.Fatalf("Values = %v, want [3 1]", e.Values)
	}
	v0 := e.Vector(0)
	s := 1 / math.Sqrt(2)
	if !v0.Equal(Vector{s, s}, 1e-10) && !v0.Equal(Vector{-s, -s}, 1e-10) {
		t.Errorf("first eigenvector = %v, want ±(1,1)/√2", v0)
	}
}

func TestSymEigenReconstruct(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, d := range []int{1, 2, 3, 5, 10, 34} {
		c := randomSPD(r, d)
		e, err := SymEigen(c)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		rec := e.Reconstruct()
		tol := 1e-9 * (1 + c.FrobeniusNorm())
		if !rec.Equal(c, tol) {
			t.Errorf("d=%d: PΛPᵀ != C (max err %g)", d, rec.Sub(c).FrobeniusNorm())
		}
	}
}

func TestSymEigenOrthonormal(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, d := range []int{2, 4, 8, 20} {
		c := randomSPD(r, d)
		e, err := SymEigen(c)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		ptp := e.Vectors.T().Mul(e.Vectors)
		if !ptp.Equal(Identity(d), 1e-9) {
			t.Errorf("d=%d: PᵀP != I", d)
		}
	}
}

func TestSymEigenSortedDescending(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	c := randomSPD(r, 12)
	e, err := SymEigen(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(e.Values); i++ {
		if e.Values[i] > e.Values[i-1]+1e-12 {
			t.Errorf("eigenvalues not sorted: λ[%d]=%g > λ[%d]=%g", i, e.Values[i], i-1, e.Values[i-1])
		}
	}
}

func TestSymEigenPSDNonNegative(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	c := randomSPD(r, 9)
	e, err := SymEigen(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range e.Values {
		if v < -1e-9*(1+c.FrobeniusNorm()) {
			t.Errorf("PSD matrix produced negative eigenvalue λ[%d] = %g", i, v)
		}
	}
}

func TestSymEigenZeroMatrix(t *testing.T) {
	e, err := SymEigen(New(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Values.Equal(Vector{0, 0, 0, 0}, 0) {
		t.Errorf("Values = %v, want zeros", e.Values)
	}
	if !e.Vectors.T().Mul(e.Vectors).Equal(Identity(4), 1e-12) {
		t.Error("eigenvectors of zero matrix not orthonormal")
	}
}

func TestSymEigenEmptyAndScalar(t *testing.T) {
	e, err := SymEigen(New(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if e.Dim() != 0 {
		t.Errorf("Dim = %d, want 0", e.Dim())
	}
	e, err = SymEigen(FromRows([][]float64{{-2.5}}))
	if err != nil {
		t.Fatal(err)
	}
	if e.Values[0] != -2.5 {
		t.Errorf("scalar eigenvalue = %g, want -2.5", e.Values[0])
	}
}

func TestSymEigenRejectsAsymmetric(t *testing.T) {
	c := FromRows([][]float64{{1, 2}, {5, 1}})
	if _, err := SymEigen(c); err == nil {
		t.Error("asymmetric matrix accepted")
	}
}

func TestSymEigenRejectsNonSquare(t *testing.T) {
	if _, err := SymEigen(New(2, 3)); err == nil {
		t.Error("non-square matrix accepted")
	}
}

func TestSymEigenRejectsNaN(t *testing.T) {
	c := New(2, 2)
	c.Set(0, 0, math.NaN())
	if _, err := SymEigen(c); err == nil {
		t.Error("NaN matrix accepted")
	}
}

func TestSymEigenRepeatedEigenvalues(t *testing.T) {
	// 3·I has a triple eigenvalue; any orthonormal basis is valid, but the
	// reconstruction must still hold.
	c := Identity(3).Scale(3)
	e, err := SymEigen(c)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Values.Equal(Vector{3, 3, 3}, 1e-12) {
		t.Errorf("Values = %v", e.Values)
	}
	if !e.Reconstruct().Equal(c, 1e-10) {
		t.Error("reconstruction failed for repeated eigenvalues")
	}
}

func TestSymEigenIndefinite(t *testing.T) {
	// [[0,1],[1,0]] has eigenvalues +1 and -1.
	c := FromRows([][]float64{{0, 1}, {1, 0}})
	e, err := SymEigen(c)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Values.Equal(Vector{1, -1}, 1e-12) {
		t.Errorf("Values = %v, want [1 -1]", e.Values)
	}
}

func TestSymEigenDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	c := randomSPD(r, 7)
	e1, err := SymEigen(c)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := SymEigen(c)
	if err != nil {
		t.Fatal(err)
	}
	if !e1.Values.Equal(e2.Values, 0) || !e1.Vectors.Equal(e2.Vectors, 0) {
		t.Error("SymEigen is not deterministic on identical input")
	}
}

func TestEigenClampPSD(t *testing.T) {
	e := Eigen{Values: Vector{2, -1e-14, -3}, Vectors: Identity(3)}
	e.ClampPSD()
	if !e.Values.Equal(Vector{2, 0, 0}, 0) {
		t.Errorf("ClampPSD = %v", e.Values)
	}
}

func TestSymEigenTraceInvariant(t *testing.T) {
	// The eigenvalue sum must equal the trace.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomSPD(r, 6)
		e, err := SymEigen(c)
		if err != nil {
			return false
		}
		return math.Abs(e.Values.Sum()-c.Trace()) <= 1e-8*(1+math.Abs(c.Trace()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSymEigenVectorSatisfiesDefinition(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	c := randomSPD(r, 8)
	e, err := SymEigen(c)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < e.Dim(); j++ {
		v := e.Vector(j)
		cv := c.MulVec(v)
		lv := v.Scale(e.Values[j])
		if !cv.Equal(lv, 1e-8*(1+c.FrobeniusNorm())) {
			t.Errorf("C·v != λ·v for eigenpair %d", j)
		}
	}
}

func BenchmarkSymEigen34(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	c := randomSPD(r, 34) // Ionosphere dimensionality
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SymEigen(c); err != nil {
			b.Fatal(err)
		}
	}
}
