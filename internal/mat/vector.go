// Package mat provides the small dense linear-algebra kernel used by the
// condensation library: vectors, row-major matrices, a cyclic-Jacobi
// symmetric eigendecomposition, and a Cholesky factorization.
//
// The package is self-contained (standard library only) and tuned for the
// shapes that arise in tabular anonymization: symmetric d×d covariance
// matrices with d up to a few hundred. Shape mismatches are programmer
// errors and panic; numerical failures (for example a non-positive-definite
// matrix handed to Cholesky) are reported as errors.
package mat

import (
	"fmt"
	"math"
)

// Vector is a dense column vector. It aliases the underlying slice, so
// callers that need an independent copy should use Clone.
type Vector []float64

// NewVector returns a zero vector of dimension d.
func NewVector(d int) Vector {
	if d < 0 {
		panic(fmt.Sprintf("mat: negative vector dimension %d", d))
	}
	return make(Vector, d)
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Dim returns the dimension of v.
func (v Vector) Dim() int { return len(v) }

// checkDim panics unless v and w have the same dimension.
func checkDim(op string, v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: %s dimension mismatch %d != %d", op, len(v), len(w)))
	}
}

// Add returns v + w as a new vector.
func (v Vector) Add(w Vector) Vector {
	checkDim("Add", v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w as a new vector.
func (v Vector) Sub(w Vector) Vector {
	checkDim("Sub", v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns c*v as a new vector.
func (v Vector) Scale(c float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// AddScaled adds c*w to v in place (the BLAS "axpy" operation) and returns v.
func (v Vector) AddScaled(c float64, w Vector) Vector {
	checkDim("AddScaled", v, w)
	for i := range v {
		v[i] += c * w[i]
	}
	return v
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) float64 {
	checkDim("Dot", v, w)
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between v and w.
func (v Vector) Dist(w Vector) float64 { return math.Sqrt(v.DistSq(w)) }

// DistSq returns the squared Euclidean distance between v and w. It is the
// preferred primitive for nearest-neighbour search, where the square root
// is unnecessary.
func (v Vector) DistSq(w Vector) float64 {
	checkDim("DistSq", v, w)
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return s
}

// Equal reports whether v and w have the same dimension and every pair of
// entries differs by at most tol.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every entry of v is finite (neither NaN nor Inf).
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Max returns the maximum entry of v. It panics on an empty vector.
func (v Vector) Max() float64 {
	if len(v) == 0 {
		panic("mat: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum entry of v. It panics on an empty vector.
func (v Vector) Min() float64 {
	if len(v) == 0 {
		panic("mat: Min of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of the entries of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of the entries of v, or 0 for an empty
// vector.
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Normalize scales v in place to unit Euclidean norm and returns v. A zero
// vector is left unchanged.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	for i := range v {
		v[i] /= n
	}
	return v
}
