package mat

import (
	"math"
	"strings"
	"testing"
)

func TestNewAndAtSet(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Errorf("At(1,2) = %g, want 7", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	m.At(2, 0)
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("FromRows wrong layout: %v", m)
	}
	empty := FromRows(nil)
	if empty.Rows() != 0 || empty.Cols() != 0 {
		t.Errorf("FromRows(nil) = %dx%d", empty.Rows(), empty.Cols())
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentityDiagonal(t *testing.T) {
	i3 := Identity(3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := 0.0
			if r == c {
				want = 1
			}
			if got := i3.At(r, c); got != want {
				t.Errorf("I(%d,%d) = %g, want %g", r, c, got, want)
			}
		}
	}
	d := Diagonal(Vector{2, 5})
	if d.At(0, 0) != 2 || d.At(1, 1) != 5 || d.At(0, 1) != 0 {
		t.Errorf("Diagonal wrong: %v", d)
	}
}

func TestRowColSetRowSetCol(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if got := m.Row(1); !got.Equal(Vector{3, 4}, 0) {
		t.Errorf("Row(1) = %v", got)
	}
	if got := m.Col(0); !got.Equal(Vector{1, 3}, 0) {
		t.Errorf("Col(0) = %v", got)
	}
	m.SetRow(0, Vector{9, 8})
	if m.At(0, 0) != 9 || m.At(0, 1) != 8 {
		t.Errorf("SetRow failed: %v", m)
	}
	m.SetCol(1, Vector{7, 6})
	if m.At(0, 1) != 7 || m.At(1, 1) != 6 {
		t.Errorf("SetCol failed: %v", m)
	}
}

func TestRowAliases(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	m.Row(0)[0] = 42
	if m.At(0, 0) != 42 {
		t.Error("Row should alias matrix storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases original")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("T shape = %dx%d", mt.Rows(), mt.Cols())
	}
	if mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Errorf("T wrong: %v", mt)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	if got := a.Add(b); !got.Equal(FromRows([][]float64{{5, 5}, {5, 5}}), 0) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); !got.Equal(FromRows([][]float64{{-3, -1}, {1, 3}}), 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); !got.Equal(FromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Errorf("Scale = %v", got)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !got.Equal(want, 1e-12) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul shape mismatch did not panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestMulIdentity(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if got := a.Mul(Identity(2)); !got.Equal(a, 0) {
		t.Errorf("A·I = %v", got)
	}
	if got := Identity(2).Mul(a); !got.Equal(a, 0) {
		t.Errorf("I·A = %v", got)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if got := a.MulVec(Vector{1, 1}); !got.Equal(Vector{3, 7}, 0) {
		t.Errorf("MulVec = %v", got)
	}
}

func TestMulVecT(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	want := a.T().MulVec(Vector{1, 1})
	if got := a.MulVecT(Vector{1, 1}); !got.Equal(want, 1e-12) {
		t.Errorf("MulVecT = %v, want %v", got, want)
	}
}

func TestOuter(t *testing.T) {
	o := Outer(Vector{1, 2}, Vector{3, 4})
	want := FromRows([][]float64{{3, 4}, {6, 8}})
	if !o.Equal(want, 0) {
		t.Errorf("Outer = %v", o)
	}
}

func TestTrace(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if got := a.Trace(); got != 5 {
		t.Errorf("Trace = %g, want 5", got)
	}
}

func TestTraceNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Trace of non-square did not panic")
		}
	}()
	New(2, 3).Trace()
}

func TestFrobeniusNorm(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 4}})
	if got := a.FrobeniusNorm(); got != 5 {
		t.Errorf("FrobeniusNorm = %g, want 5", got)
	}
}

func TestMaxAbsOffDiag(t *testing.T) {
	a := FromRows([][]float64{{9, -7}, {2, 9}})
	if got := a.MaxAbsOffDiag(); got != 7 {
		t.Errorf("MaxAbsOffDiag = %g, want 7", got)
	}
}

func TestIsSymmetricSymmetrize(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2.0000001, 1}})
	if a.IsSymmetric(1e-12) {
		t.Error("slightly asymmetric matrix reported symmetric at tight tol")
	}
	if !a.IsSymmetric(1e-3) {
		t.Error("nearly symmetric matrix rejected at loose tol")
	}
	a.Symmetrize()
	if !a.IsSymmetric(0) {
		t.Error("Symmetrize did not produce exact symmetry")
	}
	if New(2, 3).IsSymmetric(1) {
		t.Error("non-square matrix reported symmetric")
	}
}

func TestIsFiniteMatrix(t *testing.T) {
	a := New(2, 2)
	if !a.IsFinite() {
		t.Error("zero matrix reported non-finite")
	}
	a.Set(0, 1, math.NaN())
	if a.IsFinite() {
		t.Error("NaN matrix reported finite")
	}
}

func TestMatrixString(t *testing.T) {
	s := FromRows([][]float64{{1, 2}}).String()
	if !strings.Contains(s, "1") || !strings.Contains(s, "2") {
		t.Errorf("String() = %q", s)
	}
}

func TestEqualShapes(t *testing.T) {
	if New(1, 2).Equal(New(2, 1), 10) {
		t.Error("different shapes reported equal")
	}
}

// Property-style check on random matrices: (AB)ᵀ = BᵀAᵀ.
func TestMulTransposeIdentityProperty(t *testing.T) {
	a := FromRows([][]float64{{1, -2, 0.5}, {3, 4, -1}})
	b := FromRows([][]float64{{2, 0}, {1, -1}, {0.5, 3}})
	lhs := a.Mul(b).T()
	rhs := b.T().Mul(a.T())
	if !lhs.Equal(rhs, 1e-12) {
		t.Errorf("(AB)ᵀ = %v, BᵀAᵀ = %v", lhs, rhs)
	}
}
