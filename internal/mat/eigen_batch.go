package mat

import (
	"fmt"
	"sync"
	"time"

	"condensation/internal/par"
)

// SymEigenBatch eigendecomposes every matrix of cs, fanning the solves
// across at most workers goroutines (values < 1 mean one per CPU). Each
// worker chunk reuses one EigenScratch across its solves, so a batch of
// thousands of small per-group covariance matrices amortizes the Jacobi
// workspaces down to a handful of allocations total. out[i] is bit-identical
// to SymEigen(cs[i]) at any worker count — solves are independent and each
// writes only its own slot. The error returned is the one a sequential
// loop would surface: the lowest-index failure, wrapped with its index.
func SymEigenBatch(cs []*Matrix, workers int) ([]Eigen, error) {
	return SymEigenBatchObserved(cs, workers, 0, nil)
}

// SymEigenBatchObserved is SymEigenBatch with a sampled stage timer: when
// sampleEvery > 0 and observe != nil, every sampleEvery-th solve (by batch
// index, starting at 0) is wall-timed and observe is called with its
// duration in seconds. Sampling keeps the timer's overhead negligible on
// batches of thousands of sub-microsecond solves while still populating a
// latency histogram. observe is invoked from the calling goroutine after
// all solves complete, never concurrently, and never on error. The solves
// themselves are unaffected: timing is observe-only.
func SymEigenBatchObserved(cs []*Matrix, workers, sampleEvery int, observe func(seconds float64)) ([]Eigen, error) {
	out := make([]Eigen, len(cs))
	sampled := sampleEvery > 0 && observe != nil
	var mu sync.Mutex
	var samples []float64
	err := par.RunChunks(len(cs), par.Workers(workers), func(lo, hi int) error {
		var scratch EigenScratch
		var local []float64
		for i := lo; i < hi; i++ {
			var t0 time.Time
			timed := sampled && i%sampleEvery == 0
			if timed {
				t0 = time.Now()
			}
			e, err := SymEigenWith(cs[i], &scratch)
			if err != nil {
				return fmt.Errorf("mat: eigensolve of matrix %d: %w", i, err)
			}
			if timed {
				local = append(local, time.Since(t0).Seconds())
			}
			out[i] = e
		}
		if len(local) > 0 {
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, s := range samples {
		observe(s)
	}
	return out, nil
}
