package mat

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// New returns a zero matrix with the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative matrix shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows. The data is
// copied.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d entries, want %d", i, len(r), cols))
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Identity returns the d×d identity matrix.
func Identity(d int) *Matrix {
	m := New(d, d)
	for i := 0; i < d; i++ {
		m.data[i*d+i] = 1
	}
	return m
}

// Diagonal returns a square matrix with diag on its main diagonal.
func Diagonal(diag Vector) *Matrix {
	d := len(diag)
	m := New(d, d)
	for i, x := range diag {
		m.data[i*d+i] = x
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the (i, j) entry.
func (m *Matrix) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the (i, j) entry.
func (m *Matrix) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a vector that aliases the matrix storage.
func (m *Matrix) Row(i int) Vector {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	return Vector(m.data[i*m.cols : (i+1)*m.cols])
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v Vector) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow dimension mismatch %d != %d", len(v), m.cols))
	}
	copy(m.Row(i), v)
}

// SetCol copies v into column j.
func (m *Matrix) SetCol(j int, v Vector) {
	if len(v) != m.rows {
		panic(fmt.Sprintf("mat: SetCol dimension mismatch %d != %d", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Clone returns an independent deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Add returns m + b as a new matrix.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.checkSameShape("Add", b)
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] + b.data[i]
	}
	return out
}

// Sub returns m - b as a new matrix.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.checkSameShape("Sub", b)
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] - b.data[i]
	}
	return out
}

// Scale returns c*m as a new matrix.
func (m *Matrix) Scale(c float64) *Matrix {
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = c * m.data[i]
	}
	return out
}

func (m *Matrix) checkSameShape(op string, b *Matrix) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, m.rows, m.cols, b.rows, b.cols))
	}
}

// Mul returns the matrix product m·b as a new matrix.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, a := range mrow {
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v as a new vector.
func (m *Matrix) MulVec(v Vector) Vector {
	if m.cols != len(v) {
		panic(fmt.Sprintf("mat: MulVec shape mismatch %dx%d · %d", m.rows, m.cols, len(v)))
	}
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = Vector(m.data[i*m.cols : (i+1)*m.cols]).Dot(v)
	}
	return out
}

// MulVecT returns mᵀ·v without materializing the transpose.
func (m *Matrix) MulVecT(v Vector) Vector {
	if m.rows != len(v) {
		panic(fmt.Sprintf("mat: MulVecT shape mismatch %dx%d ᵀ· %d", m.rows, m.cols, len(v)))
	}
	out := make(Vector, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		vi := v[i]
		for j, x := range row {
			out[j] += vi * x
		}
	}
	return out
}

// Outer returns the outer product v·wᵀ.
func Outer(v, w Vector) *Matrix {
	out := New(len(v), len(w))
	for i, a := range v {
		row := out.data[i*out.cols : (i+1)*out.cols]
		for j, b := range w {
			row[j] = a * b
		}
	}
	return out
}

// Trace returns the sum of the diagonal entries of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.rows != m.cols {
		panic(fmt.Sprintf("mat: Trace of non-square %dx%d matrix", m.rows, m.cols))
	}
	var t float64
	for i := 0; i < m.rows; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, x := range m.data {
		s += x * x
	}
	return math.Sqrt(s)
}

// MaxAbsOffDiag returns the largest absolute off-diagonal entry of a square
// matrix, or 0 for a matrix of size < 2.
func (m *Matrix) MaxAbsOffDiag() float64 {
	if m.rows != m.cols {
		panic(fmt.Sprintf("mat: MaxAbsOffDiag of non-square %dx%d matrix", m.rows, m.cols))
	}
	var best float64
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if i == j {
				continue
			}
			if a := math.Abs(m.data[i*m.cols+j]); a > best {
				best = a
			}
		}
	}
	return best
}

// Equal reports whether m and b share a shape and every pair of entries
// differs by at most tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// IsSymmetric reports whether a square matrix is symmetric to within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.data[i*m.cols+j]-m.data[j*m.cols+i]) > tol {
				return false
			}
		}
	}
	return true
}

// Symmetrize replaces m in place with (m + mᵀ)/2 and returns m. It panics
// on a non-square matrix.
func (m *Matrix) Symmetrize() *Matrix {
	if m.rows != m.cols {
		panic(fmt.Sprintf("mat: Symmetrize of non-square %dx%d matrix", m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			avg := (m.data[i*m.cols+j] + m.data[j*m.cols+i]) / 2
			m.data[i*m.cols+j] = avg
			m.data[j*m.cols+i] = avg
		}
	}
	return m
}

// IsFinite reports whether every entry of m is finite.
func (m *Matrix) IsFinite() bool {
	for _, x := range m.data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// String renders the matrix with aligned columns, mainly for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "% .6g", m.data[i*m.cols+j])
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}
