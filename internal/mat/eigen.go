package mat

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition C = P Λ Pᵀ of a symmetric matrix:
// Values are the eigenvalues in non-increasing order and Vectors is the
// orthonormal matrix whose columns are the corresponding eigenvectors
// (column j of Vectors pairs with Values[j]).
type Eigen struct {
	Values  Vector
	Vectors *Matrix
}

// jacobiMaxSweeps bounds the number of cyclic Jacobi sweeps. Convergence is
// quadratic once rotations become small; 64 sweeps is far beyond what any
// well-conditioned covariance matrix needs and serves only as a safety rail
// against NaN-contaminated input (which is rejected up front anyway).
const jacobiMaxSweeps = 64

// ErrNotSymmetric is returned by SymEigen when the input matrix is not
// symmetric to within a small tolerance.
var ErrNotSymmetric = errors.New("mat: matrix is not symmetric")

// ErrNotFinite is returned when an input matrix contains NaN or Inf.
var ErrNotFinite = errors.New("mat: matrix has non-finite entries")

// SymEigen computes the full eigendecomposition of the symmetric matrix c
// using the cyclic Jacobi method with threshold sweeps. The input is not
// modified. Eigenvalues are returned in non-increasing order, matching the
// paper's convention λ₁ ≥ λ₂ ≥ … ≥ λ_d.
//
// Jacobi is chosen over Householder-tridiagonal + QL because it is simple,
// unconditionally stable, and delivers small eigenvalues (and therefore
// near-null eigenvectors, which matter for degenerate condensation groups)
// to high relative accuracy. For the d ≤ few-hundred covariance matrices of
// tabular anonymization its O(d³) sweeps are not a bottleneck.
func SymEigen(c *Matrix) (Eigen, error) {
	d := c.Rows()
	if c.Cols() != d {
		return Eigen{}, fmt.Errorf("mat: SymEigen of non-square %dx%d matrix", d, c.Cols())
	}
	if !c.IsFinite() {
		return Eigen{}, ErrNotFinite
	}
	// The symmetry tolerance scales with the magnitude of the matrix.
	symTol := 1e-8 * (1 + c.FrobeniusNorm())
	if !c.IsSymmetric(symTol) {
		return Eigen{}, ErrNotSymmetric
	}

	if d == 0 {
		return Eigen{Values: Vector{}, Vectors: New(0, 0)}, nil
	}

	a := c.Clone().Symmetrize() // work on an exactly symmetric copy
	p := Identity(d)

	if d == 1 {
		return Eigen{Values: Vector{a.At(0, 0)}, Vectors: p}, nil
	}

	off := func() float64 {
		var s float64
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				x := a.At(i, j)
				s += 2 * x * x
			}
		}
		return s
	}

	// Convergence threshold relative to the matrix scale.
	eps := 1e-14 * (1 + a.FrobeniusNorm())
	tol := eps * eps

	for sweep := 0; sweep < jacobiMaxSweeps && off() > tol; sweep++ {
		for i := 0; i < d-1; i++ {
			for j := i + 1; j < d; j++ {
				apq := a.At(i, j)
				if math.Abs(apq) <= eps/float64(d) {
					continue
				}
				app := a.At(i, i)
				aqq := a.At(j, j)
				// Rotation angle from the standard stable formulation.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e12 {
					t = 1 / (2 * theta)
				} else {
					t = math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				}
				cth := 1 / math.Sqrt(t*t+1)
				sth := t * cth

				rotate(a, i, j, cth, sth)
				rotateCols(p, i, j, cth, sth)
			}
		}
	}

	// Collect eigenpairs and sort by eigenvalue, descending.
	type pair struct {
		val float64
		col int
	}
	pairs := make([]pair, d)
	for j := 0; j < d; j++ {
		pairs[j] = pair{val: a.At(j, j), col: j}
	}
	sort.SliceStable(pairs, func(x, y int) bool { return pairs[x].val > pairs[y].val })

	values := make(Vector, d)
	vectors := New(d, d)
	for newCol, pr := range pairs {
		values[newCol] = pr.val
		vectors.SetCol(newCol, p.Col(pr.col))
	}
	canonicalizeSigns(vectors)
	return Eigen{Values: values, Vectors: vectors}, nil
}

// rotate applies the two-sided Jacobi rotation J(i,j,θ)ᵀ · a · J(i,j,θ) in
// place, exploiting symmetry.
func rotate(a *Matrix, p, q int, c, s float64) {
	d := a.Rows()
	app := a.At(p, p)
	aqq := a.At(q, q)
	apq := a.At(p, q)

	a.Set(p, p, c*c*app-2*s*c*apq+s*s*aqq)
	a.Set(q, q, s*s*app+2*s*c*apq+c*c*aqq)
	a.Set(p, q, 0)
	a.Set(q, p, 0)

	for k := 0; k < d; k++ {
		if k == p || k == q {
			continue
		}
		akp := a.At(k, p)
		akq := a.At(k, q)
		nkp := c*akp - s*akq
		nkq := s*akp + c*akq
		a.Set(k, p, nkp)
		a.Set(p, k, nkp)
		a.Set(k, q, nkq)
		a.Set(q, k, nkq)
	}
}

// rotateCols applies the rotation to columns p and q of the accumulating
// eigenvector matrix.
func rotateCols(m *Matrix, p, q int, c, s float64) {
	d := m.Rows()
	for k := 0; k < d; k++ {
		mkp := m.At(k, p)
		mkq := m.At(k, q)
		m.Set(k, p, c*mkp-s*mkq)
		m.Set(k, q, s*mkp+c*mkq)
	}
}

// canonicalizeSigns flips each eigenvector so that its largest-magnitude
// component is positive. Eigenvectors are only determined up to sign; a
// deterministic convention keeps decompositions reproducible across runs,
// which matters for seeded synthesis and for tests.
func canonicalizeSigns(vectors *Matrix) {
	d := vectors.Rows()
	for j := 0; j < vectors.Cols(); j++ {
		bestAbs, bestVal := -1.0, 0.0
		for i := 0; i < d; i++ {
			v := vectors.At(i, j)
			if a := math.Abs(v); a > bestAbs {
				bestAbs, bestVal = a, v
			}
		}
		if bestVal < 0 {
			for i := 0; i < d; i++ {
				vectors.Set(i, j, -vectors.At(i, j))
			}
		}
	}
}

// Reconstruct returns P Λ Pᵀ, the matrix represented by the decomposition.
func (e Eigen) Reconstruct() *Matrix {
	return e.Vectors.Mul(Diagonal(e.Values)).Mul(e.Vectors.T())
}

// ClampPSD floors negative eigenvalues at zero in place and returns the
// decomposition. Sample covariance round-trips through the paper's
// sum-of-products formulas can produce tiny negative eigenvalues; flooring
// them restores positive semi-definiteness before synthesis.
func (e Eigen) ClampPSD() Eigen {
	for i, v := range e.Values {
		if v < 0 {
			e.Values[i] = 0
		}
	}
	return e
}

// Vector returns eigenvector j as a fresh vector.
func (e Eigen) Vector(j int) Vector { return e.Vectors.Col(j) }

// Dim returns the dimension of the decomposed matrix.
func (e Eigen) Dim() int { return len(e.Values) }
