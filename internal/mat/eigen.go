package mat

import (
	"errors"
	"fmt"
	"math"
)

// Eigen holds the eigendecomposition C = P Λ Pᵀ of a symmetric matrix:
// Values are the eigenvalues in non-increasing order and Vectors is the
// orthonormal matrix whose columns are the corresponding eigenvectors
// (column j of Vectors pairs with Values[j]).
type Eigen struct {
	Values  Vector
	Vectors *Matrix
}

// jacobiMaxSweeps bounds the number of cyclic Jacobi sweeps. Convergence is
// quadratic once rotations become small; 64 sweeps is far beyond what any
// well-conditioned covariance matrix needs and serves only as a safety rail
// against NaN-contaminated input (which is rejected up front anyway).
const jacobiMaxSweeps = 64

// ErrNotSymmetric is returned by SymEigen when the input matrix is not
// symmetric to within a small tolerance.
var ErrNotSymmetric = errors.New("mat: matrix is not symmetric")

// ErrNotFinite is returned when an input matrix contains NaN or Inf.
var ErrNotFinite = errors.New("mat: matrix has non-finite entries")

// EigenScratch holds the reusable working storage of a SymEigenWith call:
// the symmetric working copy, the accumulating rotation matrix, and the
// eigenpair sort buffer. A zero value is ready to use; buffers grow to the
// largest dimension seen and are reused across calls. A scratch must not
// be shared by concurrent eigensolves — give each worker its own. Only the
// workspaces are reused: the Values and Vectors of every returned Eigen
// are freshly allocated, so results never alias the scratch and remain
// valid after later calls.
type EigenScratch struct {
	a     []float64 // symmetric working copy, d*d
	p     []float64 // accumulating eigenvector rotations, d*d
	pairs []eigPair // eigenpair sort buffer, d
}

// eigPair carries one diagonal value and its column through the descending
// stable sort that orders the eigenpairs.
type eigPair struct {
	val float64
	col int
}

// grow sizes the scratch for dimension d.
func (s *EigenScratch) grow(d int) {
	if cap(s.a) < d*d {
		s.a = make([]float64, d*d)
		s.p = make([]float64, d*d)
		s.pairs = make([]eigPair, d)
	}
	s.a = s.a[:d*d]
	s.p = s.p[:d*d]
	s.pairs = s.pairs[:d]
}

// SymEigen computes the full eigendecomposition of the symmetric matrix c
// using the cyclic Jacobi method with threshold sweeps. The input is not
// modified. Eigenvalues are returned in non-increasing order, matching the
// paper's convention λ₁ ≥ λ₂ ≥ … ≥ λ_d.
//
// Jacobi is chosen over Householder-tridiagonal + QL because it is simple,
// unconditionally stable, and delivers small eigenvalues (and therefore
// near-null eigenvectors, which matter for degenerate condensation groups)
// to high relative accuracy. For the d ≤ few-hundred covariance matrices of
// tabular anonymization its O(d³) sweeps are not a bottleneck.
func SymEigen(c *Matrix) (Eigen, error) {
	return SymEigenWith(c, nil)
}

// SymEigenWith is SymEigen drawing its working storage from s, so a caller
// performing many small eigensolves (per-group synthesis, split decisions)
// amortizes the workspace allocations across calls. A nil s allocates
// locally. The result is bit-identical to SymEigen: the same rotations in
// the same order on the same working copy, only the storage is reused.
func SymEigenWith(c *Matrix, s *EigenScratch) (Eigen, error) {
	d := c.Rows()
	if c.Cols() != d {
		return Eigen{}, fmt.Errorf("mat: SymEigen of non-square %dx%d matrix", d, c.Cols())
	}
	if !c.IsFinite() {
		return Eigen{}, ErrNotFinite
	}
	// The symmetry tolerance scales with the magnitude of the matrix.
	symTol := 1e-8 * (1 + c.FrobeniusNorm())
	if !c.IsSymmetric(symTol) {
		return Eigen{}, ErrNotSymmetric
	}

	if d == 0 {
		return Eigen{Values: Vector{}, Vectors: New(0, 0)}, nil
	}
	if d == 1 {
		// Fresh Identity, never scratch-backed: the result must outlive
		// the next call on the same scratch.
		return Eigen{Values: Vector{c.At(0, 0)}, Vectors: Identity(d)}, nil
	}

	if s == nil {
		s = &EigenScratch{}
	}
	s.grow(d)
	a, p := s.a, s.p

	// Work on an exactly symmetric copy (the same (a+aᵀ)/2 averaging as
	// Matrix.Symmetrize), accumulating rotations from the identity.
	copy(a, c.data)
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			avg := (a[i*d+j] + a[j*d+i]) / 2
			a[i*d+j] = avg
			a[j*d+i] = avg
		}
	}
	for i := range p {
		p[i] = 0
	}
	for i := 0; i < d; i++ {
		p[i*d+i] = 1
	}

	off := func() float64 {
		var s float64
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				x := a[i*d+j]
				s += 2 * x * x
			}
		}
		return s
	}
	frob := func() float64 {
		var s float64
		for _, x := range a {
			s += x * x
		}
		return math.Sqrt(s)
	}

	// Convergence threshold relative to the matrix scale.
	eps := 1e-14 * (1 + frob())
	tol := eps * eps

	for sweep := 0; sweep < jacobiMaxSweeps && off() > tol; sweep++ {
		for i := 0; i < d-1; i++ {
			for j := i + 1; j < d; j++ {
				apq := a[i*d+j]
				if math.Abs(apq) <= eps/float64(d) {
					continue
				}
				app := a[i*d+i]
				aqq := a[j*d+j]
				// Rotation angle from the standard stable formulation.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e12 {
					t = 1 / (2 * theta)
				} else {
					t = math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				}
				cth := 1 / math.Sqrt(t*t+1)
				sth := t * cth

				rotate(a, d, i, j, cth, sth)
				rotateCols(p, d, i, j, cth, sth)
			}
		}
	}

	// Collect eigenpairs and stable-sort by eigenvalue, descending. The
	// insertion sort is stable, so the column permutation — and with it
	// every output bit — matches the sort.SliceStable it replaces.
	pairs := s.pairs
	for j := 0; j < d; j++ {
		pairs[j] = eigPair{val: a[j*d+j], col: j}
	}
	for i := 1; i < d; i++ {
		pr := pairs[i]
		j := i
		for ; j > 0 && pairs[j-1].val < pr.val; j-- {
			pairs[j] = pairs[j-1]
		}
		pairs[j] = pr
	}

	values := make(Vector, d)
	vectors := New(d, d)
	for newCol, pr := range pairs {
		values[newCol] = pr.val
		for i := 0; i < d; i++ {
			vectors.data[i*d+newCol] = p[i*d+pr.col]
		}
	}
	canonicalizeSigns(vectors)
	return Eigen{Values: values, Vectors: vectors}, nil
}

// rotate applies the two-sided Jacobi rotation J(p,q,θ)ᵀ · a · J(p,q,θ) in
// place on the flat d×d working copy, exploiting symmetry.
func rotate(a []float64, d, p, q int, c, s float64) {
	app := a[p*d+p]
	aqq := a[q*d+q]
	apq := a[p*d+q]

	a[p*d+p] = c*c*app - 2*s*c*apq + s*s*aqq
	a[q*d+q] = s*s*app + 2*s*c*apq + c*c*aqq
	a[p*d+q] = 0
	a[q*d+p] = 0

	for k := 0; k < d; k++ {
		if k == p || k == q {
			continue
		}
		akp := a[k*d+p]
		akq := a[k*d+q]
		nkp := c*akp - s*akq
		nkq := s*akp + c*akq
		a[k*d+p] = nkp
		a[p*d+k] = nkp
		a[k*d+q] = nkq
		a[q*d+k] = nkq
	}
}

// rotateCols applies the rotation to columns p and q of the accumulating
// flat d×d eigenvector matrix.
func rotateCols(m []float64, d, p, q int, c, s float64) {
	for k := 0; k < d; k++ {
		mkp := m[k*d+p]
		mkq := m[k*d+q]
		m[k*d+p] = c*mkp - s*mkq
		m[k*d+q] = s*mkp + c*mkq
	}
}

// canonicalizeSigns flips each eigenvector so that its largest-magnitude
// component is positive. Eigenvectors are only determined up to sign; a
// deterministic convention keeps decompositions reproducible across runs,
// which matters for seeded synthesis and for tests.
func canonicalizeSigns(vectors *Matrix) {
	d := vectors.Rows()
	for j := 0; j < vectors.Cols(); j++ {
		bestAbs, bestVal := -1.0, 0.0
		for i := 0; i < d; i++ {
			v := vectors.At(i, j)
			if a := math.Abs(v); a > bestAbs {
				bestAbs, bestVal = a, v
			}
		}
		if bestVal < 0 {
			for i := 0; i < d; i++ {
				vectors.Set(i, j, -vectors.At(i, j))
			}
		}
	}
}

// Reconstruct returns P Λ Pᵀ, the matrix represented by the decomposition.
func (e Eigen) Reconstruct() *Matrix {
	return e.Vectors.Mul(Diagonal(e.Values)).Mul(e.Vectors.T())
}

// ClampPSD floors negative eigenvalues at zero in place and returns the
// decomposition. Sample covariance round-trips through the paper's
// sum-of-products formulas can produce tiny negative eigenvalues; flooring
// them restores positive semi-definiteness before synthesis.
func (e Eigen) ClampPSD() Eigen {
	for i, v := range e.Values {
		if v < 0 {
			e.Values[i] = 0
		}
	}
	return e
}

// Vector returns eigenvector j as a fresh vector.
func (e Eigen) Vector(j int) Vector { return e.Vectors.Col(j) }

// Dim returns the dimension of the decomposed matrix.
func (e Eigen) Dim() int { return len(e.Values) }
