package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the matrix has a
// non-positive pivot.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with c = L·Lᵀ for a
// symmetric positive-definite matrix. It is used by the Gaussian synthesis
// ablation (the paper's synthesis is uniform along eigenvectors; the
// Gaussian variant draws z ~ N(0, I) and returns mean + L·z).
func Cholesky(c *Matrix) (*Matrix, error) {
	d := c.Rows()
	if c.Cols() != d {
		return nil, fmt.Errorf("mat: Cholesky of non-square %dx%d matrix", d, c.Cols())
	}
	if !c.IsFinite() {
		return nil, ErrNotFinite
	}
	l := New(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j <= i; j++ {
			sum := c.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveLower solves L·x = b for lower-triangular L by forward substitution.
func SolveLower(l *Matrix, b Vector) (Vector, error) {
	d := l.Rows()
	if l.Cols() != d || len(b) != d {
		return nil, fmt.Errorf("mat: SolveLower shape mismatch %dx%d, b %d", l.Rows(), l.Cols(), len(b))
	}
	x := make(Vector, d)
	for i := 0; i < d; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * x[k]
		}
		piv := l.At(i, i)
		if piv == 0 {
			return nil, ErrNotPositiveDefinite
		}
		x[i] = sum / piv
	}
	return x, nil
}

// SolveUpper solves U·x = b for upper-triangular U by back substitution.
func SolveUpper(u *Matrix, b Vector) (Vector, error) {
	d := u.Rows()
	if u.Cols() != d || len(b) != d {
		return nil, fmt.Errorf("mat: SolveUpper shape mismatch %dx%d, b %d", u.Rows(), u.Cols(), len(b))
	}
	x := make(Vector, d)
	for i := d - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < d; k++ {
			sum -= u.At(i, k) * x[k]
		}
		piv := u.At(i, i)
		if piv == 0 {
			return nil, ErrNotPositiveDefinite
		}
		x[i] = sum / piv
	}
	return x, nil
}

// SolveSPD solves c·x = b for a symmetric positive-definite c via Cholesky.
func SolveSPD(c *Matrix, b Vector) (Vector, error) {
	l, err := Cholesky(c)
	if err != nil {
		return nil, err
	}
	y, err := SolveLower(l, b)
	if err != nil {
		return nil, err
	}
	return SolveUpper(l.T(), y)
}
