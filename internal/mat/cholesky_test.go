package mat

import (
	"math/rand"
	"testing"
)

func TestCholeskyKnown(t *testing.T) {
	c := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(c)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{2, 0}, {1, 1.4142135623730951}})
	if !l.Equal(want, 1e-12) {
		t.Errorf("L = %v, want %v", l, want)
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for _, d := range []int{1, 2, 5, 12} {
		c := randomSPD(r, d).Add(Identity(d).Scale(0.1)) // ensure strictly PD
		l, err := Cholesky(c)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !l.Mul(l.T()).Equal(c, 1e-9*(1+c.FrobeniusNorm())) {
			t.Errorf("d=%d: LLᵀ != C", d)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	c := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3 and -1
	if _, err := Cholesky(c); err == nil {
		t.Error("indefinite matrix accepted")
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	if _, err := Cholesky(New(2, 3)); err == nil {
		t.Error("non-square matrix accepted")
	}
}

func TestCholeskyRejectsZero(t *testing.T) {
	if _, err := Cholesky(New(2, 2)); err == nil {
		t.Error("zero (PSD, not PD) matrix accepted")
	}
}

func TestSolveLowerUpper(t *testing.T) {
	l := FromRows([][]float64{{2, 0}, {1, 3}})
	x, err := SolveLower(l, Vector{4, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(Vector{2, 8.0 / 3.0}, 1e-12) {
		t.Errorf("SolveLower = %v", x)
	}
	u := l.T()
	y, err := SolveUpper(u, Vector{7, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !u.MulVec(y).Equal(Vector{7, 3}, 1e-12) {
		t.Errorf("SolveUpper residual: U·y = %v", u.MulVec(y))
	}
}

func TestSolveSPD(t *testing.T) {
	c := FromRows([][]float64{{4, 2}, {2, 3}})
	b := Vector{10, 9}
	x, err := SolveSPD(c, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.MulVec(x).Equal(b, 1e-10) {
		t.Errorf("SolveSPD residual: C·x = %v, want %v", c.MulVec(x), b)
	}
}

func TestSolveSPDSingular(t *testing.T) {
	if _, err := SolveSPD(New(2, 2), Vector{1, 1}); err == nil {
		t.Error("singular solve accepted")
	}
}

func TestSolveShapeMismatch(t *testing.T) {
	if _, err := SolveLower(New(2, 2), Vector{1}); err == nil {
		t.Error("SolveLower shape mismatch accepted")
	}
	if _, err := SolveUpper(New(2, 2), Vector{1, 2, 3}); err == nil {
		t.Error("SolveUpper shape mismatch accepted")
	}
}
