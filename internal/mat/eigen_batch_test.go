package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// eigenBits flattens an Eigen into comparable uint64 bit patterns so
// equality checks are exact, not tolerance-based.
func eigenBits(e Eigen) []uint64 {
	var out []uint64
	for _, v := range e.Values {
		out = append(out, math.Float64bits(v))
	}
	d := e.Vectors.Rows()
	for i := 0; i < d; i++ {
		for _, v := range e.Vectors.Row(i) {
			out = append(out, math.Float64bits(v))
		}
	}
	return out
}

func eigenBitsEqual(a, b Eigen) bool {
	x, y := eigenBits(a), eigenBits(b)
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// TestSymEigenWithMatchesSymEigen reuses one scratch across solves of
// varying dimension — including the 0 and 1 early returns and repeated
// sizes — and demands bit-identical results to the scratch-free path, with
// earlier results unharmed by later calls on the same scratch.
func TestSymEigenWithMatchesSymEigen(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var s EigenScratch
	dims := []int{3, 8, 1, 5, 8, 0, 2, 8, 34, 4}
	var kept []Eigen
	var want []Eigen
	for _, d := range dims {
		c := randomSPD(r, d)
		ref, err := SymEigen(c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SymEigenWith(c, &s)
		if err != nil {
			t.Fatal(err)
		}
		if !eigenBitsEqual(got, ref) {
			t.Fatalf("dim %d: SymEigenWith diverged from SymEigen", d)
		}
		kept = append(kept, got)
		want = append(want, ref)
	}
	// Results must not alias the scratch: every earlier decomposition
	// still matches after the scratch served larger and smaller solves.
	for i := range kept {
		if !eigenBitsEqual(kept[i], want[i]) {
			t.Fatalf("solve %d (dim %d) was clobbered by later scratch reuse", i, dims[i])
		}
	}
}

// TestSymEigenBatchMatchesLoop is the batch contract: at every worker
// count the batch output is byte-identical to a sequential SymEigen loop.
func TestSymEigenBatchMatchesLoop(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	cs := make([]*Matrix, 137)
	want := make([]Eigen, len(cs))
	for i := range cs {
		cs[i] = randomSPD(r, 1+i%9)
		var err error
		want[i], err = SymEigen(cs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 5, 16} {
		got, err := SymEigenBatch(cs, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if !eigenBitsEqual(got[i], want[i]) {
				t.Fatalf("workers=%d: matrix %d diverged from looped SymEigen", workers, i)
			}
		}
	}
}

// TestSymEigenBatchObserved checks the sampled stage timer: one solve in
// sampleEvery is observed, sampling is observe-only (identical results),
// and no observation happens with a nil observe or zero stride.
func TestSymEigenBatchObserved(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	cs := make([]*Matrix, 200)
	for i := range cs {
		cs[i] = randomSPD(r, 6)
	}
	want, err := SymEigenBatch(cs, 1)
	if err != nil {
		t.Fatal(err)
	}
	var samples int
	got, err := SymEigenBatchObserved(cs, 3, 64, func(sec float64) {
		if sec < 0 {
			t.Errorf("negative sample %v", sec)
		}
		samples++
	})
	if err != nil {
		t.Fatal(err)
	}
	// Indices 0, 64, 128 are sampled out of 200.
	if wantSamples := (len(cs) + 63) / 64; samples != wantSamples {
		t.Errorf("observed %d samples, want %d", samples, wantSamples)
	}
	for i := range got {
		if !eigenBitsEqual(got[i], want[i]) {
			t.Fatalf("matrix %d: observed batch diverged from unobserved", i)
		}
	}
	if _, err := SymEigenBatchObserved(cs, 2, 0, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSymEigenBatchError checks the lowest-index failure surfaces with its
// index and the underlying sentinel intact.
func TestSymEigenBatchError(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	cs := make([]*Matrix, 40)
	for i := range cs {
		cs[i] = randomSPD(r, 4)
	}
	bad := New(4, 4)
	bad.Set(0, 1, 5) // asymmetric
	cs[17] = bad
	for _, workers := range []int{1, 8} {
		_, err := SymEigenBatch(cs, workers)
		if !errors.Is(err, ErrNotSymmetric) {
			t.Fatalf("workers=%d: err = %v, want ErrNotSymmetric", workers, err)
		}
	}
}

// BenchmarkSymEigenBatch is the batched per-group eigensolve cell: 800
// dim-8 covariance solves per op, the synthesis phase-2 shape at G=800.
func BenchmarkSymEigenBatch(b *testing.B) {
	r := rand.New(rand.NewSource(15))
	cs := make([]*Matrix, 800)
	for i := range cs {
		cs[i] = randomSPD(r, 8)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SymEigenBatch(cs, 0); err != nil {
			b.Fatal(err)
		}
	}
}
