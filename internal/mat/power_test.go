package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestTopEigenMatchesJacobi(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	for _, d := range []int{2, 5, 10, 34} {
		c := randomSPD(r, d)
		lambda, v, err := TopEigen(c, PowerOptions{})
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		full, err := SymEigen(c)
		if err != nil {
			t.Fatal(err)
		}
		tol := 1e-6 * (1 + full.Values[0])
		if math.Abs(lambda-full.Values[0]) > tol {
			t.Errorf("d=%d: λ = %g, Jacobi %g", d, lambda, full.Values[0])
		}
		if align := math.Abs(v.Dot(full.Vector(0))); align < 1-1e-6 {
			t.Errorf("d=%d: eigenvector alignment %g", d, align)
		}
	}
}

func TestTopEigenDiagonal(t *testing.T) {
	c := Diagonal(Vector{1, 9, 4})
	lambda, v, err := TopEigen(c, PowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-9) > 1e-9 {
		t.Errorf("λ = %g, want 9", lambda)
	}
	if math.Abs(v[1]) < 1-1e-6 {
		t.Errorf("v = %v, want ±e₂", v)
	}
}

func TestTopEigenZeroMatrix(t *testing.T) {
	lambda, v, err := TopEigen(New(3, 3), PowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lambda != 0 {
		t.Errorf("λ = %g, want 0", lambda)
	}
	if math.Abs(v.Norm()-1) > 1e-12 {
		t.Errorf("|v| = %g", v.Norm())
	}
}

func TestTopEigenErrors(t *testing.T) {
	if _, _, err := TopEigen(New(2, 3), PowerOptions{}); err == nil {
		t.Error("non-square accepted")
	}
	if _, _, err := TopEigen(New(0, 0), PowerOptions{}); err == nil {
		t.Error("empty accepted")
	}
	bad := New(2, 2)
	bad.Set(0, 0, math.NaN())
	if _, _, err := TopEigen(bad, PowerOptions{}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestTopEigenTiedEigenvaluesStillValid(t *testing.T) {
	// 5·I: every unit vector is an eigenvector; power iteration converges
	// immediately to the start vector with λ = 5.
	c := Identity(4).Scale(5)
	lambda, v, err := TopEigen(c, PowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-5) > 1e-9 {
		t.Errorf("λ = %g, want 5", lambda)
	}
	res := c.MulVec(v).Sub(v.Scale(lambda))
	if res.Norm() > 1e-9 {
		t.Errorf("residual %g", res.Norm())
	}
}

func TestTopEigenKMatchesJacobi(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	c := randomSPD(r, 8)
	full, err := SymEigen(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := TopEigenK(c, 3, PowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		tol := 1e-5 * (1 + full.Values[0])
		if math.Abs(got.Values[j]-full.Values[j]) > tol {
			t.Errorf("λ[%d] = %g, Jacobi %g", j, got.Values[j], full.Values[j])
		}
		if align := math.Abs(got.Vector(j).Dot(full.Vector(j))); align < 1-1e-4 {
			t.Errorf("eigenvector %d alignment %g", j, align)
		}
	}
}

func TestTopEigenKErrors(t *testing.T) {
	c := Identity(3)
	if _, err := TopEigenK(c, 0, PowerOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := TopEigenK(c, 4, PowerOptions{}); err == nil {
		t.Error("k>d accepted")
	}
}

func BenchmarkTopEigen34(b *testing.B) {
	r := rand.New(rand.NewSource(32))
	c := randomSPD(r, 34)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := TopEigen(c, PowerOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
