package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewVector(t *testing.T) {
	v := NewVector(3)
	if v.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", v.Dim())
	}
	for i, x := range v {
		if x != 0 {
			t.Errorf("v[%d] = %g, want 0", i, x)
		}
	}
}

func TestNewVectorNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewVector(-1) did not panic")
		}
	}()
	NewVector(-1)
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2, 3}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Errorf("Clone aliases original: v[0] = %g", v[0])
	}
}

func TestVectorAddSub(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Add(w); !got.Equal(Vector{5, 7, 9}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); !got.Equal(Vector{3, 3, 3}, 0) {
		t.Errorf("Sub = %v", got)
	}
}

func TestVectorDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched dims did not panic")
		}
	}()
	Vector{1}.Add(Vector{1, 2})
}

func TestVectorScale(t *testing.T) {
	v := Vector{1, -2, 0.5}
	if got := v.Scale(2); !got.Equal(Vector{2, -4, 1}, 0) {
		t.Errorf("Scale = %v", got)
	}
}

func TestVectorAddScaled(t *testing.T) {
	v := Vector{1, 1}
	v.AddScaled(3, Vector{2, -1})
	if !v.Equal(Vector{7, -2}, 0) {
		t.Errorf("AddScaled = %v", v)
	}
}

func TestVectorDotNorm(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Dot(v); got != 25 {
		t.Errorf("Dot = %g, want 25", got)
	}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %g, want 5", got)
	}
}

func TestVectorDist(t *testing.T) {
	v := Vector{0, 0}
	w := Vector{3, 4}
	if got := v.Dist(w); got != 5 {
		t.Errorf("Dist = %g, want 5", got)
	}
	if got := v.DistSq(w); got != 25 {
		t.Errorf("DistSq = %g, want 25", got)
	}
}

func TestVectorMinMaxSumMean(t *testing.T) {
	v := Vector{2, -1, 5, 0}
	if got := v.Min(); got != -1 {
		t.Errorf("Min = %g", got)
	}
	if got := v.Max(); got != 5 {
		t.Errorf("Max = %g", got)
	}
	if got := v.Sum(); got != 6 {
		t.Errorf("Sum = %g", got)
	}
	if got := v.Mean(); got != 1.5 {
		t.Errorf("Mean = %g", got)
	}
}

func TestVectorMeanEmpty(t *testing.T) {
	if got := (Vector{}).Mean(); got != 0 {
		t.Errorf("empty Mean = %g, want 0", got)
	}
}

func TestVectorMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Max of empty vector did not panic")
		}
	}()
	_ = Vector{}.Max()
}

func TestVectorNormalize(t *testing.T) {
	v := Vector{3, 4}
	v.Normalize()
	if math.Abs(v.Norm()-1) > 1e-15 {
		t.Errorf("Norm after Normalize = %g", v.Norm())
	}
	z := Vector{0, 0}
	z.Normalize() // must not divide by zero
	if !z.Equal(Vector{0, 0}, 0) {
		t.Errorf("Normalize(0) = %v", z)
	}
}

func TestVectorIsFinite(t *testing.T) {
	if !(Vector{1, 2}).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vector{1, math.NaN()}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if (Vector{math.Inf(1)}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestVectorEqualDifferentDims(t *testing.T) {
	if (Vector{1}).Equal(Vector{1, 2}, 1) {
		t.Error("vectors of different dims reported equal")
	}
}

// Property: the triangle inequality holds for Dist.
func TestVectorDistTriangleInequality(t *testing.T) {
	f := func(a, b, c [4]float64) bool {
		u, v, w := Vector(a[:]), Vector(b[:]), Vector(c[:])
		for _, x := range append(append(u.Clone(), v...), w...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip degenerate random cases
			}
		}
		return u.Dist(w) <= u.Dist(v)+v.Dist(w)+1e-6*(1+u.Dist(w))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dot is symmetric and bilinear in the first argument.
func TestVectorDotProperties(t *testing.T) {
	f := func(a, b [5]float64, c float64) bool {
		u, v := Vector(a[:]), Vector(b[:])
		if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e50 {
			return true
		}
		for _, x := range append(u.Clone(), v...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e50 {
				return true
			}
		}
		sym := math.Abs(u.Dot(v)-v.Dot(u)) <= 1e-9*(1+math.Abs(u.Dot(v)))
		lin := math.Abs(u.Scale(c).Dot(v)-c*u.Dot(v)) <= 1e-6*(1+math.Abs(c*u.Dot(v)))
		return sym && lin
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
