package mat

import (
	"errors"
	"fmt"
	"math"
)

// PowerOptions tunes the power-iteration eigensolver.
type PowerOptions struct {
	// MaxIter bounds the iterations per eigenpair (default 1000).
	MaxIter int
	// Tol is the convergence threshold on the eigenvector update norm
	// (default 1e-12).
	Tol float64
}

func (o *PowerOptions) fill() {
	if o.MaxIter <= 0 {
		o.MaxIter = 1000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
}

// ErrPowerNoConvergence is returned when power iteration fails to settle
// within MaxIter — typically when the top eigenvalues are (nearly) tied.
var ErrPowerNoConvergence = errors.New("mat: power iteration did not converge")

// TopEigen computes the dominant eigenpair of a symmetric positive
// semi-definite matrix by power iteration. The dynamic split procedure
// only needs the principal eigenvector, and for large d power iteration's
// O(d² · iters) beats the full Jacobi decomposition's O(d³ · sweeps); the
// Jacobi path remains the default because it also yields the remaining
// pairs the synthesis step needs.
func TopEigen(c *Matrix, opts PowerOptions) (value float64, vector Vector, err error) {
	d := c.Rows()
	if c.Cols() != d {
		return 0, nil, fmt.Errorf("mat: TopEigen of non-square %dx%d matrix", d, c.Cols())
	}
	if d == 0 {
		return 0, nil, errors.New("mat: TopEigen of empty matrix")
	}
	if !c.IsFinite() {
		return 0, nil, ErrNotFinite
	}
	opts.fill()

	// Deterministic start: a slightly uneven vector avoids landing exactly
	// orthogonal to the dominant eigenvector for typical inputs.
	v := make(Vector, d)
	for i := range v {
		v[i] = 1 + float64(i%7)*1e-3
	}
	v.Normalize()

	if c.FrobeniusNorm() == 0 {
		// Zero matrix: everything is an eigenvector with eigenvalue 0.
		return 0, v, nil
	}

	for iter := 0; iter < opts.MaxIter; iter++ {
		w := c.MulVec(v)
		n := w.Norm()
		if n == 0 {
			// v is in the null space; eigenvalue 0 along v.
			return 0, v, nil
		}
		for i := range w {
			w[i] /= n
		}
		// Fix sign for a monotone convergence test.
		if w.Dot(v) < 0 {
			for i := range w {
				w[i] = -w[i]
			}
		}
		delta := w.Sub(v).Norm()
		v = w
		if delta < opts.Tol {
			lambda := v.Dot(c.MulVec(v))
			canonicalizeVectorSign(v)
			return lambda, v, nil
		}
	}
	return 0, nil, ErrPowerNoConvergence
}

// TopEigenK computes the k largest eigenpairs of a symmetric PSD matrix by
// power iteration with Hotelling deflation: after each pair converges, its
// component is subtracted (C ← C − λ·v·vᵀ) and iteration repeats.
func TopEigenK(c *Matrix, k int, opts PowerOptions) (Eigen, error) {
	d := c.Rows()
	if k < 1 || k > d {
		return Eigen{}, fmt.Errorf("mat: TopEigenK k = %d for %dx%d matrix", k, d, d)
	}
	work := c.Clone().Symmetrize()
	values := make(Vector, k)
	vectors := New(d, k)
	for j := 0; j < k; j++ {
		lambda, v, err := TopEigen(work, opts)
		if err != nil {
			return Eigen{}, fmt.Errorf("mat: eigenpair %d: %w", j, err)
		}
		if lambda < 0 {
			lambda = 0 // PSD input: negative residue is round-off
		}
		values[j] = lambda
		vectors.SetCol(j, v)
		// Deflate.
		for r := 0; r < d; r++ {
			for cIdx := 0; cIdx < d; cIdx++ {
				work.Set(r, cIdx, work.At(r, cIdx)-lambda*v[r]*v[cIdx])
			}
		}
	}
	return Eigen{Values: values, Vectors: vectors}, nil
}

// canonicalizeVectorSign applies the same sign convention as the Jacobi
// path: the largest-magnitude component is made positive.
func canonicalizeVectorSign(v Vector) {
	bestAbs, bestVal := -1.0, 0.0
	for _, x := range v {
		if a := math.Abs(x); a > bestAbs {
			bestAbs, bestVal = a, x
		}
	}
	if bestVal < 0 {
		for i := range v {
			v[i] = -v[i]
		}
	}
}
