// Package par is the deterministic fan-out primitive behind the parallel
// evaluation engine: run n independent, index-addressed tasks on a bounded
// worker pool.
//
// Determinism is a two-sided contract. The caller guarantees that task i
// writes only to slot i of its output storage and draws randomness only
// from a stream pre-derived for that index, so the results are identical
// for every worker count. The package guarantees that the error returned
// is the one a sequential loop would have surfaced: the failure with the
// lowest index.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob to an effective worker count:
// values < 1 mean runtime.NumCPU().
func Workers(p int) int {
	if p < 1 {
		return runtime.NumCPU()
	}
	return p
}

// Run executes fn(0), ..., fn(n-1) on at most workers goroutines, handing
// out indices dynamically so heterogeneous task costs balance. With
// workers <= 1 it degenerates to the plain sequential loop (stopping at
// the first error); otherwise every task runs and the lowest-index error
// is returned, which is the same error the sequential loop reports.
func Run(n, workers int, fn func(i int) error) error {
	return RunProgress(n, workers, nil, fn)
}

// RunProgress is Run with a completion callback: after each task returns,
// progress is invoked with the cumulative number of completed tasks (in
// completion order, not index order). The callback runs on the worker
// goroutines, so it must be safe for concurrent use and cheap — it sits
// between tasks. A nil progress is Run exactly. Progress observation
// never changes which tasks run or what they compute; it exists so long
// fan-outs (experiment grids) can report structured progress instead of
// running silent.
func RunProgress(n, workers int, progress func(done int), fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
			if progress != nil {
				progress(i + 1)
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next, done atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
				if progress != nil {
					progress(int(done.Add(1)))
				}
			}
		}()
	}
	wg.Wait()
	return first(errs)
}

// RunChunks splits [0, n) into at most workers contiguous chunks and runs
// fn(lo, hi) for each on its own goroutine — for sweeps whose per-item
// cost is too small to schedule individually and whose workers carry
// per-chunk scratch state. With workers <= 1 it is fn(0, n).
func RunChunks(n, workers int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return fn(0, n)
	}
	chunk := (n + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	slot := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(slot, lo, hi int) {
			defer wg.Done()
			errs[slot] = fn(lo, hi)
		}(slot, lo, hi)
		slot++
	}
	wg.Wait()
	return first(errs)
}

// first returns the lowest-index non-nil error.
func first(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
