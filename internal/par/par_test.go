package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(4) != 4 {
		t.Error("explicit worker count not honoured")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("defaulted worker count below 1")
	}
}

func TestRunCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 57
		hits := make([]atomic.Int32, n)
		if err := Run(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := Run(20, workers, func(i int) error {
			if i == 7 || i == 13 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 7 failed" {
			t.Errorf("workers=%d: err = %v, want cell 7's", workers, err)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if err := Run(0, 8, func(int) error { return errors.New("must not run") }); err != nil {
		t.Error(err)
	}
}

func TestRunChunksPartition(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 64} {
		n := 41
		seen := make([]atomic.Int32, n)
		if err := RunChunks(n, workers, func(lo, hi int) error {
			if lo >= hi {
				return fmt.Errorf("empty chunk [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				seen[i].Add(1)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, got)
			}
		}
	}
}

func TestRunChunksError(t *testing.T) {
	err := RunChunks(10, 5, func(lo, hi int) error {
		if lo >= 4 {
			return fmt.Errorf("chunk at %d failed", lo)
		}
		return nil
	})
	if err == nil || err.Error() != "chunk at 4 failed" {
		t.Errorf("err = %v, want the lowest chunk's", err)
	}
}

func TestRunProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		var maxDone atomic.Int64
		err := RunProgress(20, workers, func(done int) {
			calls.Add(1)
			for {
				old := maxDone.Load()
				if int64(done) <= old || maxDone.CompareAndSwap(old, int64(done)) {
					break
				}
			}
		}, func(i int) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if calls.Load() != 20 {
			t.Errorf("workers=%d: %d progress calls, want 20", workers, calls.Load())
		}
		if maxDone.Load() != 20 {
			t.Errorf("workers=%d: max done = %d, want 20", workers, maxDone.Load())
		}
	}
}

func TestRunProgressSequentialStopsAtError(t *testing.T) {
	var last int
	err := RunProgress(10, 1, func(done int) { last = done }, func(i int) error {
		if i == 3 {
			return fmt.Errorf("task %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "task 3 failed" {
		t.Errorf("err = %v", err)
	}
	if last != 3 {
		t.Errorf("progress reached %d, want 3 (tasks before the failure)", last)
	}
}
