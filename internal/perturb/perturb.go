// Package perturb implements the additive-randomization baseline the paper
// argues against: the Agrawal–Srikant perturbation scheme (SIGMOD 2000)
// with Bayesian iterative distribution reconstruction, refined by the
// EM formulation of Agrawal & Aggarwal (PODS 2002).
//
// In this scheme each user adds independent noise y_i from a publicly
// known distribution to each value x_i, and the server sees only
// w_i = x_i + y_i. The server never recovers individual values; it
// reconstructs the aggregate distribution f_X of each dimension
// *independently*, which is precisely the property the condensation paper
// criticizes: all inter-attribute correlation is invisible to mining
// algorithms built on the reconstructed marginals.
package perturb

import (
	"errors"
	"fmt"
	"math"

	"condensation/internal/mat"
	"condensation/internal/rng"
)

// Noise identifies the perturbing distribution. The distribution is public
// knowledge; only its realization is secret.
type Noise int

const (
	// NoiseGaussian adds N(0, σ²) noise.
	NoiseGaussian Noise = iota
	// NoiseUniform adds Uniform(−γ, +γ) noise with γ = σ·√3 so the
	// variance matches the Gaussian of the same σ parameter.
	NoiseUniform
)

// String returns the noise-family name.
func (n Noise) String() string {
	switch n {
	case NoiseGaussian:
		return "gaussian"
	case NoiseUniform:
		return "uniform"
	default:
		return fmt.Sprintf("Noise(%d)", int(n))
	}
}

// Perturber adds independent per-dimension noise to records.
type Perturber struct {
	// Std is the noise standard deviation σ (same for every dimension;
	// records are expected to be standardized first).
	Std float64
	// Family selects the noise distribution.
	Family Noise
}

// Perturb returns noisy copies of the records: w = x + y with y drawn
// independently per value.
func (p Perturber) Perturb(records []mat.Vector, r *rng.Source) ([]mat.Vector, error) {
	if p.Std < 0 {
		return nil, fmt.Errorf("perturb: negative noise σ = %g", p.Std)
	}
	if r == nil {
		return nil, errors.New("perturb: nil random source")
	}
	out := make([]mat.Vector, len(records))
	gamma := p.Std * math.Sqrt(3)
	for i, x := range records {
		w := x.Clone()
		for j := range w {
			switch p.Family {
			case NoiseGaussian:
				w[j] += p.Std * r.Norm()
			case NoiseUniform:
				w[j] += r.Uniform(-gamma, gamma)
			default:
				return nil, fmt.Errorf("perturb: unknown noise family %d", int(p.Family))
			}
		}
		out[i] = w
	}
	return out, nil
}

// density evaluates the noise density f_Y at y.
func (p Perturber) density(y float64) float64 {
	switch p.Family {
	case NoiseGaussian:
		if p.Std == 0 {
			return 0 // handled by the σ=0 fast path in Reconstruct
		}
		z := y / p.Std
		return math.Exp(-z*z/2) / (p.Std * math.Sqrt(2*math.Pi))
	case NoiseUniform:
		gamma := p.Std * math.Sqrt(3)
		if gamma == 0 {
			return 0
		}
		if y >= -gamma && y <= gamma {
			return 1 / (2 * gamma)
		}
		return 0
	default:
		return 0
	}
}

// Histogram is a reconstructed one-dimensional distribution over
// equal-width bins spanning [Lo, Hi].
type Histogram struct {
	Lo, Hi float64
	// P holds the probability mass per bin; it sums to 1.
	P []float64
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.P) }

// Width returns the bin width.
func (h *Histogram) Width() float64 { return (h.Hi - h.Lo) / float64(len(h.P)) }

// Center returns the mid-point of bin b.
func (h *Histogram) Center(b int) float64 { return h.Lo + (float64(b)+0.5)*h.Width() }

// Density evaluates the reconstructed density at x (0 outside [Lo, Hi]).
func (h *Histogram) Density(x float64) float64 {
	if x < h.Lo || x > h.Hi || len(h.P) == 0 {
		return 0
	}
	b := int((x - h.Lo) / h.Width())
	if b >= len(h.P) {
		b = len(h.P) - 1
	}
	return h.P[b] / h.Width()
}

// Mean returns the mean of the reconstructed distribution.
func (h *Histogram) Mean() float64 {
	var m float64
	for b, p := range h.P {
		m += p * h.Center(b)
	}
	return m
}

// ReconstructOptions tunes the Bayesian reconstruction iteration.
type ReconstructOptions struct {
	// Bins is the histogram resolution (default 50).
	Bins int
	// MaxIter bounds the Bayes/EM iterations (default 200).
	MaxIter int
	// Tol stops iteration when the L1 change of the estimate falls below
	// it (default 1e-6).
	Tol float64
}

func (o *ReconstructOptions) fill() {
	if o.Bins <= 0 {
		o.Bins = 50
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
}

// Reconstruct estimates the original distribution f_X of one dimension
// from its perturbed values, using the Bayesian iterative procedure of
// Agrawal–Srikant; Agrawal & Aggarwal later showed this iteration is
// exactly EM for the discretized model, and that it converges. Starting
// from the uniform estimate f⁰, each round updates
//
//	f^{t+1}(a) = (1/n) Σ_i  f_Y(w_i − a)·f^t(a) / Σ_z f_Y(w_i − z)·f^t(z)
//
// over the histogram bins a.
func (p Perturber) Reconstruct(perturbed []float64, opts ReconstructOptions) (*Histogram, error) {
	if len(perturbed) == 0 {
		return nil, errors.New("perturb: no perturbed values")
	}
	opts.fill()

	lo, hi := perturbed[0], perturbed[0]
	for _, w := range perturbed {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, errors.New("perturb: non-finite perturbed value")
		}
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	// The support of X is within the support of W widened by the noise
	// spread; 3σ covers > 99.7% of Gaussian noise and the full uniform
	// support (γ = σ√3 < 3σ).
	pad := 3 * p.Std
	lo, hi = lo-pad, hi+pad
	if hi == lo {
		hi = lo + 1
	}
	h := &Histogram{Lo: lo, Hi: hi, P: make([]float64, opts.Bins)}
	for b := range h.P {
		h.P[b] = 1 / float64(opts.Bins)
	}
	if p.Std == 0 {
		// No noise: the histogram of the observed values is exact.
		for b := range h.P {
			h.P[b] = 0
		}
		for _, w := range perturbed {
			b := int((w - lo) / h.Width())
			if b >= len(h.P) {
				b = len(h.P) - 1
			}
			h.P[b] += 1 / float64(len(perturbed))
		}
		return h, nil
	}

	// Precompute f_Y(w_i − center_b) for all (i, b).
	n := len(perturbed)
	fy := make([][]float64, n)
	for i, w := range perturbed {
		fy[i] = make([]float64, opts.Bins)
		for b := range fy[i] {
			fy[i][b] = p.density(w - h.Center(b))
		}
	}

	next := make([]float64, opts.Bins)
	for iter := 0; iter < opts.MaxIter; iter++ {
		for b := range next {
			next[b] = 0
		}
		for i := 0; i < n; i++ {
			var denom float64
			for b, f := range h.P {
				denom += fy[i][b] * f
			}
			if denom == 0 {
				continue // observation unreachable under current estimate
			}
			for b, f := range h.P {
				next[b] += fy[i][b] * f / denom
			}
		}
		var total, delta float64
		for b := range next {
			next[b] /= float64(n)
			total += next[b]
		}
		if total > 0 {
			for b := range next {
				next[b] /= total
			}
		}
		for b := range next {
			delta += math.Abs(next[b] - h.P[b])
		}
		copy(h.P, next)
		if delta < opts.Tol {
			break
		}
	}
	return h, nil
}

// PrivacyInterval returns the Agrawal–Srikant interval privacy measure:
// the width of the interval that contains the true value with the given
// confidence (e.g. 0.95), given that the adversary sees the perturbed
// value. For Gaussian noise this is 2·z·σ with z the standard normal
// quantile; for uniform noise it is confidence·2γ.
func (p Perturber) PrivacyInterval(confidence float64) (float64, error) {
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("perturb: confidence %g outside (0,1)", confidence)
	}
	switch p.Family {
	case NoiseGaussian:
		return 2 * normalQuantile((1+confidence)/2) * p.Std, nil
	case NoiseUniform:
		return confidence * 2 * p.Std * math.Sqrt(3), nil
	default:
		return 0, fmt.Errorf("perturb: unknown noise family %d", int(p.Family))
	}
}

// normalQuantile returns Φ⁻¹(p) via the Acklam rational approximation,
// accurate to about 1e-9 over (0, 1).
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
