package perturb

import (
	"math"
	"testing"

	"condensation/internal/mat"
	"condensation/internal/rng"
)

func TestPerturbAddsNoiseOfRightScale(t *testing.T) {
	recs := make([]mat.Vector, 5000)
	for i := range recs {
		recs[i] = mat.Vector{1, 2}
	}
	for _, family := range []Noise{NoiseGaussian, NoiseUniform} {
		p := Perturber{Std: 2, Family: family}
		noisy, err := p.Perturb(recs, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		var sum, sumSq float64
		for _, w := range noisy {
			e := w[0] - 1
			sum += e
			sumSq += e * e
		}
		n := float64(len(noisy))
		mean := sum / n
		std := math.Sqrt(sumSq/n - mean*mean)
		if math.Abs(mean) > 0.1 {
			t.Errorf("%v: noise mean %g, want ≈ 0", family, mean)
		}
		if math.Abs(std-2) > 0.1 {
			t.Errorf("%v: noise std %g, want ≈ 2", family, std)
		}
	}
}

func TestPerturbLeavesOriginalsAlone(t *testing.T) {
	recs := []mat.Vector{{1, 2}, {3, 4}}
	p := Perturber{Std: 1, Family: NoiseGaussian}
	if _, err := p.Perturb(recs, rng.New(2)); err != nil {
		t.Fatal(err)
	}
	if !recs[0].Equal(mat.Vector{1, 2}, 0) {
		t.Error("Perturb mutated its input")
	}
}

func TestPerturbErrors(t *testing.T) {
	recs := []mat.Vector{{1}}
	if _, err := (Perturber{Std: -1}).Perturb(recs, rng.New(1)); err == nil {
		t.Error("negative σ accepted")
	}
	if _, err := (Perturber{Std: 1}).Perturb(recs, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := (Perturber{Std: 1, Family: Noise(9)}).Perturb(recs, rng.New(1)); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestReconstructBimodal(t *testing.T) {
	// Original X: half the mass at −5, half at +5. After Gaussian noise
	// with σ=1, reconstruction must recover two far-apart modes.
	r := rng.New(3)
	p := Perturber{Std: 1, Family: NoiseGaussian}
	var perturbed []float64
	for i := 0; i < 2000; i++ {
		x := -5.0
		if i%2 == 0 {
			x = 5
		}
		perturbed = append(perturbed, x+p.Std*r.Norm())
	}
	h, err := p.Reconstruct(perturbed, ReconstructOptions{Bins: 60, MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	var massNeg, massPos, massMid float64
	for b, pb := range h.P {
		c := h.Center(b)
		switch {
		case c < -3:
			massNeg += pb
		case c > 3:
			massPos += pb
		case c > -1.5 && c < 1.5:
			massMid += pb
		}
	}
	if massNeg < 0.35 || massPos < 0.35 {
		t.Errorf("modes not recovered: mass(−) = %.3f, mass(+) = %.3f", massNeg, massPos)
	}
	if massMid > 0.1 {
		t.Errorf("middle mass %.3f, want ≈ 0 (noise not deconvolved)", massMid)
	}
}

func TestReconstructMeanPreserved(t *testing.T) {
	r := rng.New(4)
	p := Perturber{Std: 0.5, Family: NoiseUniform}
	var perturbed []float64
	for i := 0; i < 3000; i++ {
		x := r.NormMeanStd(2, 1)
		noisy, err := p.Perturb([]mat.Vector{{x}}, r)
		if err != nil {
			t.Fatal(err)
		}
		perturbed = append(perturbed, noisy[0][0])
	}
	h, err := p.Reconstruct(perturbed, ReconstructOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Mean()-2) > 0.15 {
		t.Errorf("reconstructed mean %g, want ≈ 2", h.Mean())
	}
}

func TestReconstructZeroNoiseIsExactHistogram(t *testing.T) {
	p := Perturber{Std: 0, Family: NoiseGaussian}
	h, err := p.Reconstruct([]float64{0, 0, 1, 1, 1, 1}, ReconstructOptions{Bins: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.P[0]-1.0/3) > 1e-12 || math.Abs(h.P[1]-2.0/3) > 1e-12 {
		t.Errorf("σ=0 histogram = %v, want [1/3 2/3]", h.P)
	}
}

func TestReconstructErrors(t *testing.T) {
	p := Perturber{Std: 1, Family: NoiseGaussian}
	if _, err := p.Reconstruct(nil, ReconstructOptions{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := p.Reconstruct([]float64{math.NaN()}, ReconstructOptions{}); err == nil {
		t.Error("NaN input accepted")
	}
}

func TestReconstructMassSumsToOne(t *testing.T) {
	r := rng.New(5)
	p := Perturber{Std: 1, Family: NoiseGaussian}
	var perturbed []float64
	for i := 0; i < 500; i++ {
		perturbed = append(perturbed, r.Norm()+p.Std*r.Norm())
	}
	h, err := p.Reconstruct(perturbed, ReconstructOptions{Bins: 30})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, pb := range h.P {
		if pb < 0 {
			t.Fatalf("negative bin mass %g", pb)
		}
		total += pb
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("total mass %g, want 1", total)
	}
}

func TestHistogramDensityAndAccessors(t *testing.T) {
	h := &Histogram{Lo: 0, Hi: 10, P: []float64{0.5, 0.5}}
	if h.Bins() != 2 || h.Width() != 5 {
		t.Errorf("Bins=%d Width=%g", h.Bins(), h.Width())
	}
	if h.Center(0) != 2.5 || h.Center(1) != 7.5 {
		t.Errorf("Centers %g %g", h.Center(0), h.Center(1))
	}
	if h.Density(-1) != 0 || h.Density(11) != 0 {
		t.Error("out-of-range density nonzero")
	}
	if math.Abs(h.Density(3)-0.1) > 1e-12 {
		t.Errorf("Density(3) = %g, want 0.1", h.Density(3))
	}
	// The right edge belongs to the last bin.
	if math.Abs(h.Density(10)-0.1) > 1e-12 {
		t.Errorf("Density(10) = %g, want 0.1", h.Density(10))
	}
	if h.Mean() != 5 {
		t.Errorf("Mean = %g, want 5", h.Mean())
	}
}

func TestPrivacyInterval(t *testing.T) {
	g := Perturber{Std: 1, Family: NoiseGaussian}
	w, err := g.PrivacyInterval(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-2*1.959963985) > 1e-3 {
		t.Errorf("Gaussian 95%% interval %g, want ≈ 3.92", w)
	}
	u := Perturber{Std: 1, Family: NoiseUniform}
	w, err = u.PrivacyInterval(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-math.Sqrt(3)) > 1e-9 {
		t.Errorf("Uniform 50%% interval %g, want √3", w)
	}
	if _, err := g.PrivacyInterval(0); err == nil {
		t.Error("confidence 0 accepted")
	}
	if _, err := g.PrivacyInterval(1); err == nil {
		t.Error("confidence 1 accepted")
	}
	if _, err := (Perturber{Std: 1, Family: Noise(9)}).PrivacyInterval(0.5); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestNoiseString(t *testing.T) {
	if NoiseGaussian.String() != "gaussian" || NoiseUniform.String() != "uniform" {
		t.Error("Noise.String wrong")
	}
	if Noise(9).String() == "" {
		t.Error("unknown Noise String empty")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := map[float64]float64{0.5: 0, 0.975: 1.959963985, 0.025: -1.959963985, 0.999: 3.090232306}
	for p, want := range cases {
		if got := normalQuantile(p); math.Abs(got-want) > 1e-6 {
			t.Errorf("Φ⁻¹(%g) = %g, want %g", p, got, want)
		}
	}
	if !math.IsNaN(normalQuantile(0)) || !math.IsNaN(normalQuantile(1)) {
		t.Error("quantile at 0/1 not NaN")
	}
}
