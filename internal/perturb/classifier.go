package perturb

import (
	"errors"
	"fmt"
	"math"

	"condensation/internal/dataset"
	"condensation/internal/mat"
	"condensation/internal/rng"
)

// DistributionClassifier is the distribution-based classifier that the
// perturbation approach permits: because reconstruction recovers each
// dimension's distribution *independently* (per class), the only structure
// available is the product of per-dimension class-conditional densities —
// a naive-Bayes decision rule over reconstructed marginals. This is the
// faithful analogue of the single-attribute-split classifier of
// Agrawal–Srikant and the fundamental reason the condensation paper's
// nearest-neighbour classifier "cannot be effectively modified to work
// with the perturbation-based approach": no joint geometry survives.
type DistributionClassifier struct {
	priors []float64      // class priors from perturbed counts
	hists  [][]*Histogram // [class][dimension]
	dim    int
}

// TrainDistributionClassifier perturbs the training data with the given
// perturber and fits the classifier purely from the perturbed values — the
// server-side view of the Agrawal–Srikant protocol. The reconstruction
// options apply to every per-class, per-dimension reconstruction.
func TrainDistributionClassifier(train *dataset.Dataset, p Perturber, opts ReconstructOptions, r *rng.Source) (*DistributionClassifier, error) {
	if train.Task != dataset.Classification {
		return nil, fmt.Errorf("perturb: classifier needs classification data, got %v", train.Task)
	}
	if err := train.Validate(); err != nil {
		return nil, fmt.Errorf("perturb: training data: %w", err)
	}
	if train.Len() == 0 {
		return nil, errors.New("perturb: empty training data")
	}
	perturbed, err := p.Perturb(train.X, r)
	if err != nil {
		return nil, err
	}
	numClasses := train.NumClasses()
	d := train.Dim()
	c := &DistributionClassifier{
		priors: make([]float64, numClasses),
		hists:  make([][]*Histogram, numClasses),
		dim:    d,
	}
	byClass := make([][]mat.Vector, numClasses)
	for i, w := range perturbed {
		byClass[train.Labels[i]] = append(byClass[train.Labels[i]], w)
	}
	for label, ws := range byClass {
		c.priors[label] = float64(len(ws)) / float64(train.Len())
		if len(ws) == 0 {
			continue
		}
		c.hists[label] = make([]*Histogram, d)
		col := make([]float64, len(ws))
		for j := 0; j < d; j++ {
			for i, w := range ws {
				col[i] = w[j]
			}
			h, err := p.Reconstruct(col, opts)
			if err != nil {
				return nil, fmt.Errorf("perturb: class %d dimension %d: %w", label, j, err)
			}
			c.hists[label][j] = h
		}
	}
	return c, nil
}

// logDensityFloor bounds log-density contributions for values falling in
// zero-mass bins, playing the role of Laplace smoothing.
const logDensityFloor = -30

// Predict returns argmax over classes of
// log prior + Σ_j log f̂_j(x_j | class).
func (c *DistributionClassifier) Predict(x mat.Vector) (int, error) {
	if len(x) != c.dim {
		return 0, fmt.Errorf("perturb: query dimension %d, want %d", len(x), c.dim)
	}
	best, bestScore := -1, math.Inf(-1)
	for label, hists := range c.hists {
		if hists == nil || c.priors[label] == 0 {
			continue
		}
		score := math.Log(c.priors[label])
		for j, h := range hists {
			f := h.Density(x[j])
			if f <= 0 {
				score += logDensityFloor
			} else {
				score += math.Log(f)
			}
		}
		if score > bestScore {
			best, bestScore = label, score
		}
	}
	if best < 0 {
		return 0, errors.New("perturb: no trained classes")
	}
	return best, nil
}

// PredictAll classifies every record of a data set, in order.
func (c *DistributionClassifier) PredictAll(test *dataset.Dataset) ([]int, error) {
	out := make([]int, test.Len())
	for i, x := range test.X {
		l, err := c.Predict(x)
		if err != nil {
			return nil, fmt.Errorf("perturb: record %d: %w", i, err)
		}
		out[i] = l
	}
	return out, nil
}
