package perturb

import (
	"testing"

	"condensation/internal/dataset"
	"condensation/internal/mat"
	"condensation/internal/rng"
)

// axisSeparated builds a two-class problem separable on each axis
// independently — the regime where a marginals-only classifier works.
func axisSeparated(seed uint64, perClass int) *dataset.Dataset {
	r := rng.New(seed)
	ds := &dataset.Dataset{
		Name:       "axis",
		Task:       dataset.Classification,
		Attrs:      []string{"x", "y"},
		ClassNames: []string{"a", "b"},
	}
	for i := 0; i < perClass; i++ {
		ds.X = append(ds.X, mat.Vector{r.Norm(), r.Norm()})
		ds.Labels = append(ds.Labels, 0)
		ds.X = append(ds.X, mat.Vector{6 + r.Norm(), 6 + r.Norm()})
		ds.Labels = append(ds.Labels, 1)
	}
	return ds
}

// diagonalSeparated builds a two-class problem whose classes differ ONLY
// in the correlation between the attributes: identical marginals, so any
// marginals-only method is blind to the class.
func diagonalSeparated(seed uint64, perClass int) *dataset.Dataset {
	r := rng.New(seed)
	ds := &dataset.Dataset{
		Name:       "diag",
		Task:       dataset.Classification,
		Attrs:      []string{"x", "y"},
		ClassNames: []string{"pos", "neg"},
	}
	for i := 0; i < perClass; i++ {
		b := r.Norm()
		// Class 0: y ≈ +x. Class 1: y ≈ −x. Both marginals are N(0, 1).
		ds.X = append(ds.X, mat.Vector{b, b + 0.2*r.Norm()})
		ds.Labels = append(ds.Labels, 0)
		c := r.Norm()
		ds.X = append(ds.X, mat.Vector{c, -c + 0.2*r.Norm()})
		ds.Labels = append(ds.Labels, 1)
	}
	return ds
}

func TestDistributionClassifierSeparable(t *testing.T) {
	train := axisSeparated(1, 150)
	test := axisSeparated(2, 40)
	p := Perturber{Std: 1, Family: NoiseGaussian}
	c, err := TrainDistributionClassifier(train, p, ReconstructOptions{Bins: 40, MaxIter: 100}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	preds, err := c.PredictAll(test)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, pr := range preds {
		if pr == test.Labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(test.Len()); acc < 0.95 {
		t.Errorf("accuracy %.3f on axis-separable data, want ≥ 0.95", acc)
	}
}

// The structural weakness the condensation paper calls out: a classifier
// restricted to independently reconstructed marginals cannot see
// correlation-only class structure, no matter how small the noise.
func TestDistributionClassifierBlindToCorrelation(t *testing.T) {
	train := diagonalSeparated(4, 300)
	test := diagonalSeparated(5, 100)
	p := Perturber{Std: 0.1, Family: NoiseGaussian}
	c, err := TrainDistributionClassifier(train, p, ReconstructOptions{Bins: 40, MaxIter: 50}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	preds, err := c.PredictAll(test)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, pr := range preds {
		if pr == test.Labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc > 0.65 {
		t.Errorf("marginals-only classifier scored %.3f on correlation-only data; it should be near chance", acc)
	}
}

func TestDistributionClassifierErrors(t *testing.T) {
	reg := &dataset.Dataset{Task: dataset.Regression, X: []mat.Vector{{1}}, Targets: []float64{1}}
	p := Perturber{Std: 1, Family: NoiseGaussian}
	if _, err := TrainDistributionClassifier(reg, p, ReconstructOptions{}, rng.New(1)); err == nil {
		t.Error("regression data accepted")
	}
	empty := &dataset.Dataset{Task: dataset.Classification}
	if _, err := TrainDistributionClassifier(empty, p, ReconstructOptions{}, rng.New(1)); err == nil {
		t.Error("empty data accepted")
	}
	bad := axisSeparated(7, 3)
	bad.Labels = bad.Labels[:2]
	if _, err := TrainDistributionClassifier(bad, p, ReconstructOptions{}, rng.New(1)); err == nil {
		t.Error("invalid data accepted")
	}
	train := axisSeparated(8, 10)
	c, err := TrainDistributionClassifier(train, p, ReconstructOptions{Bins: 10, MaxIter: 5}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict(mat.Vector{1}); err == nil {
		t.Error("wrong query dimension accepted")
	}
}

func TestDistributionClassifierSkipsEmptyClasses(t *testing.T) {
	train := axisSeparated(9, 10)
	train.ClassNames = append(train.ClassNames, "ghost") // class 2 has no records
	p := Perturber{Std: 0.5, Family: NoiseGaussian}
	c, err := TrainDistributionClassifier(train, p, ReconstructOptions{Bins: 10, MaxIter: 5}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Predict(mat.Vector{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got == 2 {
		t.Error("ghost class predicted")
	}
}
