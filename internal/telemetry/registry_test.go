package telemetry

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("requests_total", "path", "/v1/records")
	c.Inc()
	c.Add(4)
	c.Add(-3) // negative deltas ignored: counters stay monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same series.
	if reg.Counter("requests_total", "path", "/v1/records") != c {
		t.Error("re-lookup returned a different counter")
	}

	g := reg.Gauge("in_flight")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %g, want 2", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("latency_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.02, 0.5, 2, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
	if got, want := h.Sum(), 0.005+0.01+0.02+0.5+2+100; got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
	// Raw (non-cumulative) bucket contents: le=0.01 holds 0.005 and 0.01
	// (le is inclusive), le=0.1 holds 0.02, le=1 holds 0.5, and 2 and 100
	// land in the explicit +Inf overflow slot at the end.
	want := []uint64{2, 1, 1, 2}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestHistogramObserveSince(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("d_seconds", nil)
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Errorf("count=%d sum=%g after ObserveSince", h.Count(), h.Sum())
	}
}

// TestPrometheusGolden pins the exact text exposition: family ordering,
// TYPE lines, label rendering, cumulative buckets, +Inf, _sum and _count.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "path", "/x", "code", "2xx").Add(7)
	reg.Counter("b_total", "path", "/y", "code", "4xx").Inc()
	reg.Gauge("c_gauge").Set(2.5)
	h := reg.Histogram("a_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.7)
	h.Observe(3)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE a_seconds histogram
a_seconds_bucket{le="0.1"} 2
a_seconds_bucket{le="1"} 3
a_seconds_bucket{le="+Inf"} 4
a_seconds_sum 3.8
a_seconds_count 4
# TYPE b_total counter
b_total{path="/x",code="2xx"} 7
b_total{path="/y",code="4xx"} 1
# TYPE c_gauge gauge
c_gauge 2.5
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total").Add(3)
	reg.Gauge("temp").Set(1.5)
	reg.Histogram("lat", []float64{1}).Observe(0.5)

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if decoded["hits_total"] != float64(3) {
		t.Errorf("hits_total = %v", decoded["hits_total"])
	}
	hist, ok := decoded["lat"].(map[string]interface{})
	if !ok || hist["count"] != float64(1) {
		t.Errorf("lat = %v", decoded["lat"])
	}
}

// TestNilSafety proves the disabled path: a nil registry hands out nil
// handles and every operation on them is a no-op.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total")
	g := reg.Gauge("x")
	h := reg.Histogram("x_seconds", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("no-op handles reported non-zero values")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry exposition: err=%v body=%q", err, buf.String())
	}
}

// TestKindConflict: re-registering a family under a different kind yields
// a safe nil handle instead of corrupting the exposition.
func TestKindConflict(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("m") == nil {
		t.Fatal("first registration failed")
	}
	if reg.Gauge("m") != nil {
		t.Error("conflicting kind handed out a live handle")
	}
}

// TestRegistryConcurrent hammers one registry from 16 goroutines — lookup,
// write, and export concurrently — and then checks the totals. Run under
// -race this is the data-race proof for the whole layer.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines, iters = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				reg.Counter("ops_total", "worker", "shared").Inc()
				reg.Gauge("depth").Set(float64(i))
				reg.Histogram("work_seconds", nil, "worker", "shared").Observe(float64(i) * 1e-6)
				if i%100 == 0 {
					var buf bytes.Buffer
					if err := reg.WritePrometheus(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("ops_total", "worker", "shared").Value(); got != goroutines*iters {
		t.Errorf("ops_total = %d, want %d", got, goroutines*iters)
	}
	if got := reg.Histogram("work_seconds", nil, "worker", "shared").Count(); got != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", got, goroutines*iters)
	}
}

// TestRegistryConcurrentFirstUse releases all goroutines from a barrier so
// they race on the one-time creation of each series. Lazily initializing
// handles outside the registry lock would lose increments here (two
// goroutines minting two handles for one series) and trip -race; handles
// must be allocated inside lookup while the mutex is held.
func TestRegistryConcurrentFirstUse(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			reg.Counter("first_total", "worker", "shared").Inc()
			reg.Gauge("first_depth").Add(1)
			reg.Histogram("first_seconds", nil, "worker", "shared").Observe(0.001)
		}()
	}
	close(start)
	wg.Wait()
	if got := reg.Counter("first_total", "worker", "shared").Value(); got != goroutines {
		t.Errorf("first_total = %d, want %d (increments lost to a duplicate handle?)", got, goroutines)
	}
	if got := reg.Gauge("first_depth").Value(); got != goroutines {
		t.Errorf("first_depth = %g, want %d", got, goroutines)
	}
	if got := reg.Histogram("first_seconds", nil, "worker", "shared").Count(); got != goroutines {
		t.Errorf("first_seconds count = %d, want %d", got, goroutines)
	}
}

// TestOddLabelsPanic: an odd number of label arguments is a call-site bug
// and must fail loudly instead of minting a differently-keyed series.
func TestOddLabelsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"live": func() { NewRegistry().Counter("x_total", "path") },
		"nil":  func() { var reg *Registry; reg.Gauge("x", "path") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s registry: odd label arguments did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hidden")
	log.Info("visible", "k", 1)
	if strings.Contains(buf.String(), "hidden") {
		t.Error("debug line emitted at info level")
	}
	var rec map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if rec["msg"] != "visible" || rec["k"] != float64(1) {
		t.Errorf("record = %v", rec)
	}

	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Error("bad format accepted")
	}

	off, err := NewLogger(&buf, "off", "text")
	if err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	off.Error("dropped")
	if buf.Len() != n {
		t.Error("off logger wrote output")
	}
}

func TestComponent(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&buf, nil))
	Component(log, "engine").Info("hello")
	if !strings.Contains(buf.String(), "component=engine") {
		t.Errorf("missing component attr: %q", buf.String())
	}
	if Component(nil, "engine") == nil {
		t.Error("nil parent returned nil logger")
	}
}
