package telemetry

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Severity orders the health states a watchdog rule (and the service as a
// whole) moves through: ok → degraded → failing. The overall state is the
// worst state of any rule.
type Severity int

const (
	SevOK Severity = iota
	SevDegraded
	SevFailing
)

// String returns the state name /healthz and /v1/health/rules report.
func (s Severity) String() string {
	switch s {
	case SevDegraded:
		return "degraded"
	case SevFailing:
		return "failing"
	default:
		return "ok"
	}
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses a severity name — the inverse of MarshalJSON, for
// clients (condense -watch) reading /v1/health/rules.
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"ok"`:
		*s = SevOK
	case `"degraded"`:
		*s = SevDegraded
	case `"failing"`:
		*s = SevFailing
	default:
		return fmt.Errorf("telemetry: unknown severity %s", b)
	}
	return nil
}

// Rule is one health check evaluated over the flight recorder's windows
// after every scrape. Eval must be a pure read of the recorder (and any
// private state the rule closure carries) — rules observe trends, they
// never change them.
type Rule struct {
	// Name labels the rule everywhere: rule states, slog transitions, and
	// the condense_alerts_total{rule=...} counter.
	Name string
	// Description says what the rule watches, for /v1/health/rules readers.
	Description string
	// Eval returns the rule's current severity and a human-readable detail
	// line explaining it.
	Eval func(rec *Recorder) (Severity, string)
}

// RuleStatus is one rule's public state in /v1/health/rules.
type RuleStatus struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	State       Severity `json:"state"`
	Detail      string   `json:"detail,omitempty"`
	// Since is when the rule entered its current state; LastTransition is
	// when it last changed state (zero until the first transition), and
	// Transitions counts changes since startup.
	Since          time.Time `json:"since"`
	LastTransition time.Time `json:"last_transition"`
	Transitions    int       `json:"transitions"`
	// Alerts counts escalations (transitions into a worse state) — the
	// value of condense_alerts_total{rule=Name}.
	Alerts uint64 `json:"alerts"`
}

// Watchdog metric names. The alert counter is the paging surface: it only
// advances when a rule escalates, so any increase marks a fresh incident;
// the state gauges mirror the current severities (0 ok, 1 degraded, 2
// failing) for dashboards.
const (
	MetricAlerts      = "condense_alerts_total"
	MetricHealthState = "condense_health_state"
	MetricRuleState   = "condense_health_rule_state"
	MetricEvaluations = "condense_health_evaluations_total"
)

// Watchdog evaluates a fixed rule set over the flight recorder after each
// scrape and maintains the per-rule state machine. State transitions are
// logged (Info back to ok, Warn into degraded, Error into failing),
// escalations advance condense_alerts_total{rule}, and the current
// severities are mirrored into state gauges. A nil *Watchdog is the
// disabled watchdog: State reports SevOK and every method no-ops.
type Watchdog struct {
	mu     sync.Mutex
	rules  []Rule
	status []RuleStatus
	log    *slog.Logger

	alerts     []*Counter
	ruleStates []*Gauge
	state      *Gauge
	evals      *Counter

	// jr, when set, receives one watchdog_transition event per rule state
	// change; genFn supplies the engine generation to stamp it with.
	jr    *Journal
	genFn func() uint64
}

// NewWatchdog builds a watchdog over the given rules, resolving its alert
// counters and state gauges from reg (nil reg disables the metrics, not
// the watchdog) and logging transitions to log (nil means silent). Every
// rule starts in SevOK, and its alert counter exists (at 0) immediately,
// so dashboards can join on the full rule set before anything goes wrong.
func NewWatchdog(reg *Registry, log *slog.Logger, rules ...Rule) *Watchdog {
	if log == nil {
		log = Nop()
	}
	now := time.Now()
	w := &Watchdog{
		rules: rules,
		log:   log,
		state: reg.Gauge(MetricHealthState),
		evals: reg.Counter(MetricEvaluations),
	}
	for _, r := range rules {
		w.status = append(w.status, RuleStatus{
			Name:        r.Name,
			Description: r.Description,
			State:       SevOK,
			Since:       now,
		})
		w.alerts = append(w.alerts, reg.Counter(MetricAlerts, "rule", r.Name))
		g := reg.Gauge(MetricRuleState, "rule", r.Name)
		g.Set(0)
		w.ruleStates = append(w.ruleStates, g)
	}
	w.state.Set(0)
	return w
}

// SetJournal attaches a lifecycle journal: every rule state transition is
// then also recorded as a watchdog_transition event, stamped with the
// generation gen reports at transition time (nil gen stamps 0), so health
// flaps line up with the group-lifecycle timeline. A nil journal disables.
// Observe-only, like the transition log lines.
func (w *Watchdog) SetJournal(j *Journal, gen func() uint64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.jr, w.genFn = j, gen
	w.mu.Unlock()
}

// Evaluate runs every rule against the recorder's current windows,
// applies state transitions, and returns the overall (worst) severity.
// It is what the scraper loop calls after each scrape.
func (w *Watchdog) Evaluate(rec *Recorder) Severity {
	if w == nil {
		return SevOK
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.evals.Inc()
	overall := SevOK
	now := time.Now()
	for i, r := range w.rules {
		sev, detail := r.Eval(rec)
		st := &w.status[i]
		st.Detail = detail
		if sev != st.State {
			from := st.State
			st.State = sev
			st.Since = now
			st.LastTransition = now
			st.Transitions++
			if sev > from {
				w.alerts[i].Inc()
				st.Alerts++
			}
			w.ruleStates[i].Set(float64(sev))
			level := slog.LevelInfo
			switch sev {
			case SevDegraded:
				level = slog.LevelWarn
			case SevFailing:
				level = slog.LevelError
			}
			w.log.Log(context.Background(), level, "health rule transition",
				slog.String("rule", r.Name),
				slog.String("from", from.String()),
				slog.String("to", sev.String()),
				slog.String("detail", detail))
			if w.jr != nil {
				var gen uint64
				if w.genFn != nil {
					gen = w.genFn()
				}
				w.jr.Record(JournalEvent{
					Type:       EventWatchdogTransition,
					Shard:      JournalShardNone,
					Generation: gen,
					Detail:     fmt.Sprintf("%s: %s → %s (%s)", r.Name, from, sev, detail),
				})
			}
		}
		if sev > overall {
			overall = sev
		}
	}
	w.state.Set(float64(overall))
	return overall
}

// State returns the overall severity: the worst current rule state. A nil
// or rule-less watchdog is SevOK.
func (w *Watchdog) State() Severity {
	if w == nil {
		return SevOK
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	overall := SevOK
	for i := range w.status {
		if w.status[i].State > overall {
			overall = w.status[i].State
		}
	}
	return overall
}

// Status returns the overall severity and a copy of every rule's state,
// in rule order.
func (w *Watchdog) Status() (Severity, []RuleStatus) {
	if w == nil {
		return SevOK, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	overall := SevOK
	out := make([]RuleStatus, len(w.status))
	copy(out, w.status)
	for _, st := range out {
		if st.State > overall {
			overall = st.State
		}
	}
	return overall, out
}

// CounterNonzeroRule builds a rule that fails as soon as the named
// counter's cumulative value is above zero in the latest window — the
// shape for invariant-violation counters (condense_audit_k_violations_total)
// where a single occurrence is already a contract breach.
func CounterNonzeroRule(name, series, description string) Rule {
	return Rule{
		Name:        name,
		Description: description,
		Eval: func(rec *Recorder) (Severity, string) {
			w, ok := rec.LastWindow()
			if !ok {
				return SevOK, "no windows recorded yet"
			}
			c, ok := w.Counters[series]
			if !ok {
				return SevOK, series + " not yet registered"
			}
			if c.Value > 0 {
				return SevFailing, fmt.Sprintf("%s = %d (must be 0)", series, c.Value)
			}
			return SevOK, series + " = 0"
		},
	}
}

// TrendRule builds a rule that degrades when a gauge is trending up: over
// the last window windows carrying the gauge, the mean of the newer half
// must exceed the mean of the older half by at least minRise AND sit at
// or above floor. The floor keeps noise below the interesting range from
// alerting; at least four carrying windows are required before the rule
// judges at all. A rise of 2·minRise (still above floor) is failing.
func TrendRule(name, series string, window int, minRise, floor float64, description string) Rule {
	return Rule{
		Name:        name,
		Description: description,
		Eval: func(rec *Recorder) (Severity, string) {
			var vals []float64
			for _, v := range rec.GaugeSeries(series, window) {
				if !math.IsNaN(v) {
					vals = append(vals, v)
				}
			}
			if len(vals) < 4 {
				return SevOK, fmt.Sprintf("%s: %d window(s) of data, need 4", series, len(vals))
			}
			half := len(vals) / 2
			older := mean(vals[:half])
			newer := mean(vals[half:])
			rise := newer - older
			detail := fmt.Sprintf("%s: %.4g → %.4g over %d windows (rise %.4g)",
				series, older, newer, len(vals), rise)
			if newer >= floor && rise >= 2*minRise {
				return SevFailing, detail
			}
			if newer >= floor && rise >= minRise {
				return SevDegraded, detail
			}
			return SevOK, detail
		},
	}
}

// LatencyRegressionRule builds a rule that compares a latency histogram's
// windowed p95 against a startup baseline: the median of the first
// baselineOf trafficked windows (windows whose CountDelta > 0) becomes
// the baseline, and the rule degrades when the two most recent trafficked
// windows both exceed factor × baseline (fails at 2·factor). Until the
// baseline is captured the rule reports ok.
func LatencyRegressionRule(name, series string, factor float64, description string) Rule {
	const baselineOf = 3
	var baseline []float64
	var fixed float64
	return Rule{
		Name:        name,
		Description: description,
		Eval: func(rec *Recorder) (Severity, string) {
			// The baseline is rebuilt from the earliest trafficked windows on
			// every evaluation until it has baselineOf samples, then frozen —
			// so a latency regression can never drag its own baseline up.
			qs := rec.QuantileSeries(series, 0.95, 0)
			var seen []float64
			for _, v := range qs {
				if !math.IsNaN(v) {
					seen = append(seen, v)
				}
			}
			if len(baseline) < baselineOf {
				if len(seen) > baselineOf {
					seen = seen[:baselineOf]
				}
				baseline = append(baseline[:0], seen...)
				if len(baseline) < baselineOf {
					return SevOK, fmt.Sprintf("%s: collecting baseline (%d/%d trafficked windows)",
						series, len(baseline), baselineOf)
				}
				fixed = median(baseline)
			}
			if len(seen) < 2 {
				return SevOK, series + ": no traffic yet"
			}
			a, b := seen[len(seen)-2], seen[len(seen)-1]
			detail := fmt.Sprintf("%s: p95 %.4gs/%.4gs vs baseline %.4gs (×%.1f allowed)",
				series, a, b, fixed, factor)
			if fixed > 0 && a > 2*factor*fixed && b > 2*factor*fixed {
				return SevFailing, detail
			}
			if fixed > 0 && a > factor*fixed && b > factor*fixed {
				return SevDegraded, detail
			}
			return SevOK, detail
		},
	}
}

// ImbalanceRule builds a rule over a labeled gauge family (e.g.
// condense_shard_records{shard="i"}): in the latest window it computes
// the max/mean ratio across the family's series and degrades at ratio ≥
// degrade, fails at ratio ≥ fail. Families with fewer than two series or
// less than minTotal summed mass report ok — a three-record stream on
// four shards is always "imbalanced" and never interesting.
func ImbalanceRule(name, family string, degrade, fail, minTotal float64, description string) Rule {
	return Rule{
		Name:        name,
		Description: description,
		Eval: func(rec *Recorder) (Severity, string) {
			w, ok := rec.LastWindow()
			if !ok {
				return SevOK, "no windows recorded yet"
			}
			var vals []float64
			var total, max float64
			for id, v := range w.Gauges {
				if !strings.HasPrefix(id, family+"{") {
					continue
				}
				f := float64(v)
				vals = append(vals, f)
				total += f
				if f > max {
					max = f
				}
			}
			if len(vals) < 2 {
				return SevOK, family + ": fewer than two series"
			}
			if total < minTotal {
				return SevOK, fmt.Sprintf("%s: total %.0f below judging floor %.0f", family, total, minTotal)
			}
			mean := total / float64(len(vals))
			ratio := max / mean
			detail := fmt.Sprintf("%s: max/mean = %.2f over %d series (degrade ≥ %.2f)",
				family, ratio, len(vals), degrade)
			if ratio >= fail {
				return SevFailing, detail
			}
			if ratio >= degrade {
				return SevDegraded, detail
			}
			return SevOK, detail
		},
	}
}

// mean averages a non-empty slice.
func mean(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// median returns the middle value of a non-empty slice (the lower middle
// for even lengths), without mutating the input.
func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}
