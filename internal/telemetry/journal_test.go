package telemetry

import (
	"fmt"
	"testing"
)

func TestJournalRecordAndOrder(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 5; i++ {
		j.Record(JournalEvent{Type: EventGroupCreated, Shard: i, Generation: uint64(i + 1)})
	}
	if j.Len() != 5 || j.Seq() != 5 || j.Dropped() != 0 {
		t.Fatalf("len=%d seq=%d dropped=%d, want 5/5/0", j.Len(), j.Seq(), j.Dropped())
	}
	events := j.Events(0)
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d (oldest first)", i, e.Seq, i+1)
		}
		if e.Shard != i {
			t.Fatalf("event %d has shard %d, want %d", i, e.Shard, i)
		}
		if e.Time.IsZero() {
			t.Fatalf("event %d has zero timestamp", i)
		}
	}
}

func TestJournalRingOverwrite(t *testing.T) {
	j := NewJournal(4)
	for i := 1; i <= 10; i++ {
		j.Record(JournalEvent{Type: EventSplit, Generation: uint64(i)})
	}
	if j.Len() != 4 {
		t.Fatalf("len=%d, want capacity 4", j.Len())
	}
	if j.Seq() != 10 {
		t.Fatalf("seq=%d, want 10", j.Seq())
	}
	if j.Dropped() != 6 {
		t.Fatalf("dropped=%d, want 6", j.Dropped())
	}
	events := j.Events(0)
	for i, e := range events {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (only the newest 4 survive)", i, e.Seq, want)
		}
	}
}

func TestJournalLastBound(t *testing.T) {
	j := NewJournal(16)
	for i := 1; i <= 9; i++ {
		j.Record(JournalEvent{Type: EventIndexRebuild})
	}
	got := j.Events(3)
	if len(got) != 3 {
		t.Fatalf("Events(3) returned %d events", len(got))
	}
	if got[0].Seq != 7 || got[2].Seq != 9 {
		t.Fatalf("Events(3) seqs = %d..%d, want 7..9", got[0].Seq, got[2].Seq)
	}
	if n := len(j.Events(100)); n != 9 {
		t.Fatalf("Events(100) returned %d events, want all 9", n)
	}
}

func TestJournalTypeFilter(t *testing.T) {
	j := NewJournal(32)
	kinds := []string{EventGroupCreated, EventSplit, EventGroupCreated, EventIndexRebuild, EventSplit}
	for _, k := range kinds {
		j.Record(JournalEvent{Type: k})
	}
	splits := j.Events(0, EventSplit)
	if len(splits) != 2 {
		t.Fatalf("got %d split events, want 2", len(splits))
	}
	for _, e := range splits {
		if e.Type != EventSplit {
			t.Fatalf("filtered result has type %q", e.Type)
		}
	}
	// last=N with a filter means "the N most recent OF those types",
	// still reported oldest first.
	one := j.Events(1, EventGroupCreated)
	if len(one) != 1 || one[0].Seq != 3 {
		t.Fatalf("Events(1, group_created) = %+v, want the seq-3 event", one)
	}
	both := j.Events(0, EventSplit, EventIndexRebuild)
	if len(both) != 3 {
		t.Fatalf("two-type filter returned %d events, want 3", len(both))
	}
	for i := 1; i < len(both); i++ {
		if both[i].Seq <= both[i-1].Seq {
			t.Fatalf("filtered events out of order: %d after %d", both[i].Seq, both[i-1].Seq)
		}
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record(JournalEvent{Type: EventSplit}) // must not panic
	if j.Events(0) != nil {
		t.Fatal("nil journal returned events")
	}
	if j.Len() != 0 || j.Seq() != 0 || j.Dropped() != 0 || j.Capacity() != 0 {
		t.Fatal("nil journal reported non-zero state")
	}
}

func TestJournalDefaultCapacity(t *testing.T) {
	j := NewJournal(0)
	if j.Capacity() != defaultJournalCapacity {
		t.Fatalf("NewJournal(0) capacity = %d, want default %d", j.Capacity(), defaultJournalCapacity)
	}
}

func TestJournalConcurrentRecord(t *testing.T) {
	j := NewJournal(64)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				j.Record(JournalEvent{Type: EventSplit, Shard: g})
				j.Events(5)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if j.Seq() != 400 {
		t.Fatalf("seq=%d after 400 concurrent records", j.Seq())
	}
	// Sequence numbers in the surviving window must be unique and dense.
	events := j.Events(0)
	seen := make(map[uint64]bool, len(events))
	for _, e := range events {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestWatchdogJournalTransitions(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("boom_total")
	wd := NewWatchdog(reg, nil,
		CounterNonzeroRule("boom", "boom_total", "test rule"))
	j := NewJournal(16)
	gen := uint64(7)
	wd.SetJournal(j, func() uint64 { return gen })

	rec := NewRecorder(reg, 8)
	rec.Scrape()
	wd.Evaluate(rec) // ok, no transition
	if j.Len() != 0 {
		t.Fatalf("healthy evaluate recorded %d events", j.Len())
	}
	c.Add(3)
	rec.Scrape()
	wd.Evaluate(rec) // ok -> failing
	events := j.Events(0, EventWatchdogTransition)
	if len(events) != 1 {
		t.Fatalf("got %d transition events, want 1: %+v", len(events), j.Events(0))
	}
	e := events[0]
	if e.Generation != 7 {
		t.Fatalf("transition event generation = %d, want 7", e.Generation)
	}
	if e.Shard != JournalShardNone {
		t.Fatalf("transition event shard = %d, want %d", e.Shard, JournalShardNone)
	}
	if e.Detail == "" {
		t.Fatal("transition event has no detail")
	}
}

func TestJournalEventDetailFormatting(t *testing.T) {
	// Guard the Detail contract: it is free text, but events must carry
	// their structured identity in fields, not only in Detail.
	j := NewJournal(4)
	j.Record(JournalEvent{
		Type: EventSplit, Shard: 2, Generation: 41,
		Group: 9, Parent: 9, Children: []uint64{12, 13},
		Detail: fmt.Sprintf("group reached %d records", 12),
	})
	e := j.Events(0)[0]
	if e.Parent != 9 || len(e.Children) != 2 || e.Children[1] != 13 {
		t.Fatalf("lineage fields not preserved: %+v", e)
	}
}
