package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"math"
	"strings"
	"testing"
)

// TestWriteJSONNonFinite: JSON cannot carry Inf/NaN, so the expvar-style
// export quotes them instead of emitting an invalid document.
func TestWriteJSONNonFinite(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("pos").Set(math.Inf(1))
	reg.Gauge("neg").Set(math.Inf(-1))
	reg.Gauge("nan").Set(math.NaN())
	reg.Gauge("plain", "shard", "a").Set(2.5)

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("non-finite gauges broke the JSON export: %v\n%s", err, buf.String())
	}
	if decoded["pos"] != "+Inf" {
		t.Errorf("pos = %v, want quoted +Inf", decoded["pos"])
	}
	if decoded["neg"] != "-Inf" {
		t.Errorf("neg = %v, want quoted -Inf", decoded["neg"])
	}
	if decoded["nan"] != "NaN" {
		t.Errorf("nan = %v, want quoted NaN", decoded["nan"])
	}
	if decoded[`plain{shard="a"}`] != 2.5 {
		t.Errorf("labeled gauge missing or wrong: %v", decoded)
	}
}

// TestWriteJSONEmpty: an empty registry still writes a valid document, and
// a nil registry writes nothing.
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("empty registry export invalid: %v\n%s", err, buf.String())
	}
	if len(decoded) != 0 {
		t.Errorf("empty registry exported %v", decoded)
	}

	var nilReg *Registry
	buf.Reset()
	if err := nilReg.WriteJSON(&buf); err != nil {
		t.Fatalf("nil registry WriteJSON: %v", err)
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil || len(decoded) != 0 {
		t.Errorf("nil registry export: err=%v body=%q", err, buf.String())
	}
}

// TestPrometheusNonFinite covers formatFloat's ±Inf branches through the
// text exposition.
func TestPrometheusNonFinite(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("up").Set(math.Inf(1))
	reg.Gauge("down").Set(math.Inf(-1))

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "up +Inf") {
		t.Errorf("missing +Inf sample:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "down -Inf") {
		t.Errorf("missing -Inf sample:\n%s", buf.String())
	}
}

// TestNewLoggerTextLevels exercises the text handler and the warn/error
// level parsing, including the "warning" and "none" aliases.
func TestNewLoggerTextLevels(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "warning", "text")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("shown")
	if strings.Contains(buf.String(), "hidden") {
		t.Error("info line emitted at warn level")
	}
	if !strings.Contains(buf.String(), "shown") {
		t.Errorf("warn line missing: %q", buf.String())
	}

	buf.Reset()
	log, err = NewLogger(&buf, "error", "")
	if err != nil {
		t.Fatal(err)
	}
	log.Warn("hidden")
	log.Error("boom")
	if strings.Contains(buf.String(), "hidden") || !strings.Contains(buf.String(), "boom") {
		t.Errorf("error-level filtering wrong: %q", buf.String())
	}

	buf.Reset()
	none, err := NewLogger(&buf, "none", "json")
	if err != nil {
		t.Fatal(err)
	}
	none.Error("dropped")
	if buf.Len() != 0 {
		t.Errorf("none logger wrote output: %q", buf.String())
	}
}

// TestNopLoggerChains: With/WithGroup chains on the no-op logger keep
// dropping records (covers nopHandler.Handle/WithAttrs/WithGroup).
func TestNopLoggerChains(t *testing.T) {
	log := Nop().With("k", "v").WithGroup("g")
	log.Error("dropped", "x", 1)
	if log.Enabled(nil, 12) { // well above slog.LevelError
		t.Error("nop logger reports enabled at any level")
	}
	// Handle is gated behind Enabled in the slog front end; drive it
	// directly to prove it is a safe no-op too.
	if err := (nopHandler{}).Handle(context.Background(), slog.Record{}); err != nil {
		t.Errorf("nopHandler.Handle returned %v", err)
	}
	if Component(Nop(), "engine") == nil {
		t.Error("Component on nop logger returned nil")
	}
	if Component(nil, "engine") != Nop() {
		t.Error("Component on nil parent should fall back to the nop logger")
	}
}
