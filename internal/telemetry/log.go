package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger writing to w at the given level
// ("debug", "info", "warn", "error", or "off") in the given format ("text"
// or "json"). "off" returns the no-op logger, so commands that default to
// quiet pay nothing for the wiring.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	case "off", "none":
		return Nop(), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn, error, or off)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
}

// Component derives a child logger tagged with the component name, so one
// process-wide logger fans out to per-subsystem loggers that share sinks
// and levels. A nil parent yields the no-op logger.
func Component(parent *slog.Logger, name string) *slog.Logger {
	if parent == nil {
		return Nop()
	}
	return parent.With(slog.String("component", name))
}

// nopHandler drops every record; it exists because slog has no disabled
// handler before Go 1.24 and this module targets 1.22.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

var nopLogger = slog.New(nopHandler{})

// Nop returns a logger that discards everything (always the same
// instance, so comparisons and With-chains stay cheap).
func Nop() *slog.Logger { return nopLogger }
