package telemetry

import (
	"sync"
	"time"
)

// Journal event types: the group-lifecycle and serving-layer moments worth
// explaining after the fact. Each names the state change that produced it,
// not the code path — the journal is the narrative the audit and watchdog
// numbers lack.
const (
	// EventGroupCreated marks a group founded from the stream (the very
	// first record of an empty condenser, or of an empty shard).
	EventGroupCreated = "group_created"
	// EventSplit marks a group reaching 2k records and splitting: the
	// parent id retires and two children are born (paper §3.2).
	EventSplit = "split"
	// EventIndexRebuild marks a centroid-router (re)build: the SearchAuto
	// scan→kd promotion, or an explicit backend/precision change.
	EventIndexRebuild = "index_rebuild"
	// EventSpecFallback marks a batch whose speculation windows re-routed
	// records live because their candidate group changed mid-window.
	EventSpecFallback = "spec_fallback"
	// EventCacheInvalidation marks the server's read cache dropping a
	// generation's prepared artifacts because the engine moved on.
	EventCacheInvalidation = "cache_invalidation"
	// EventWatchdogTransition marks a health rule changing state.
	EventWatchdogTransition = "watchdog_transition"
)

// JournalShardNone is the Shard stamp of events that are not tied to one
// engine shard (server read cache, watchdog).
const JournalShardNone = -1

// JournalEvent is one recorded lifecycle event. Seq and Time are stamped
// by Record; everything else is the emitter's.
type JournalEvent struct {
	// Seq is the journal-wide sequence number, monotone from 1 — the
	// cursor clients page with even after ring wraparound.
	Seq uint64 `json:"seq"`
	// Time is the wall-clock record time.
	Time time.Time `json:"time"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Shard is the engine shard the event happened on (0 for a standalone
	// Dynamic), or JournalShardNone for server-level events.
	Shard int `json:"shard"`
	// Generation is the engine mutation generation the event is tied to,
	// so journal entries line up with checkpoint ETags and /healthz.
	Generation uint64 `json:"generation"`
	// Group is the stable id of the group the event concerns, when any.
	Group uint64 `json:"group,omitempty"`
	// Parent and Children carry split lineage: the retiring parent id and
	// the two ids born from it.
	Parent   uint64   `json:"parent,omitempty"`
	Children []uint64 `json:"children,omitempty"`
	// Detail is a human-readable one-liner explaining the event.
	Detail string `json:"detail,omitempty"`
}

// Journal is a bounded ring of lifecycle events, the structured sibling of
// the Tracer: nil-safe (a nil *Journal no-ops every method, so a disabled
// journal costs one nil check per emission site), observe-only (nothing it
// records feeds back into condensation), and bounded (the ring keeps the
// most recent Capacity events; older ones are overwritten, never grown).
// Unlike the sampled tracer it records every event offered — lifecycle
// events are rare (splits, rebuilds, transitions), so completeness is
// affordable and is what makes lineage reconstruction trustworthy.
type Journal struct {
	mu      sync.Mutex
	ring    []JournalEvent
	next    int    // ring slot for the next event
	filled  int    // events currently held (≤ len(ring))
	seq     uint64 // events ever recorded; stamps JournalEvent.Seq
	dropped uint64 // events overwritten by newer ones
}

// defaultJournalCapacity bounds the ring when NewJournal is given a
// non-positive capacity.
const defaultJournalCapacity = 4096

// NewJournal returns a journal holding up to capacity events (capacity ≤ 0
// means the default 4096).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = defaultJournalCapacity
	}
	return &Journal{ring: make([]JournalEvent, capacity)}
}

// Record stamps ev with the next sequence number and the current time and
// commits it, overwriting the oldest event when the ring is full. Safe for
// concurrent callers; a nil journal discards the event.
func (j *Journal) Record(ev JournalEvent) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.seq++
	ev.Seq = j.seq
	ev.Time = time.Now()
	if j.filled == len(j.ring) {
		j.dropped++
	} else {
		j.filled++
	}
	j.ring[j.next] = ev
	j.next = (j.next + 1) % len(j.ring)
	j.mu.Unlock()
}

// Events returns up to last of the most recent buffered events in record
// order (oldest first). last ≤ 0 returns everything buffered. With types
// given, only events of those types count toward last — "the N most recent
// splits", not "the splits among the N most recent events". The returned
// slice is a copy and safe to retain.
func (j *Journal) Events(last int, types ...string) []JournalEvent {
	if j == nil {
		return nil
	}
	wanted := func(string) bool { return true }
	if len(types) > 0 {
		wanted = func(t string) bool {
			for _, w := range types {
				if t == w {
					return true
				}
			}
			return false
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []JournalEvent
	// Walk newest to oldest, collect matches up to last, then reverse.
	for i := 1; i <= j.filled; i++ {
		ev := j.ring[(j.next-i+len(j.ring))%len(j.ring)]
		if !wanted(ev.Type) {
			continue
		}
		out = append(out, ev)
		if last > 0 && len(out) == last {
			break
		}
	}
	for lo, hi := 0, len(out)-1; lo < hi; lo, hi = lo+1, hi-1 {
		out[lo], out[hi] = out[hi], out[lo]
	}
	return out
}

// Len returns the number of events currently buffered.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.filled
}

// Seq returns the number of events ever recorded — the Seq stamp of the
// newest event.
func (j *Journal) Seq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Dropped returns the number of events overwritten by newer ones.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Capacity returns the ring capacity (0 for a nil journal).
func (j *Journal) Capacity() int {
	if j == nil {
		return 0
	}
	return len(j.ring)
}
