// Package telemetry is the stdlib-only observability layer of the
// condensation stack: a metrics registry of atomic counters, gauges, and
// fixed-bucket histograms, exportable as Prometheus text exposition or
// expvar-style JSON, plus log/slog-based structured logging helpers.
//
// The design rule is that a disabled metric must cost ~nothing. Every
// handle type (*Counter, *Gauge, *Histogram) is nil-safe: calling a method
// on a nil handle is a no-op, and a nil *Registry hands out nil handles.
// Instrumented code therefore acquires its handles once — from whatever
// registry it was (or was not) given — and the hot path pays only a nil
// check when telemetry is off.
//
// Telemetry is observe-only by contract: nothing in this package feeds
// randomness or decisions back into the instrumented code, so enabling it
// can never change condensation output.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. No-op on a nil handle.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be non-negative; negative deltas are ignored to keep
// the counter monotone). No-op on a nil handle.
func (c *Counter) Add(n int) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(uint64(n))
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the current value
}

// Set replaces the value. No-op on a nil handle.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the value by delta. No-op on a nil handle.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets by upper bound, and
// tracks the observation sum and count — enough for rate, mean, and
// quantile-estimate queries in Prometheus.
type Histogram struct {
	upper   []float64       // ascending bucket upper bounds, +Inf excluded
	buckets []atomic.Uint64 // len(upper)+1; the last slot is the +Inf overflow
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DefBuckets are latency-oriented bucket bounds in seconds, spanning 50µs
// to 10s — wide enough for both per-group engine stages and HTTP requests.
var DefBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one observation. No-op on a nil handle.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Buckets are cumulative only at export time; each observation lands in
	// the first bucket whose upper bound admits it, or the explicit +Inf
	// overflow slot at the end. Export derives the +Inf sample and _count
	// from the bucket array alone, so concurrent Observes can never make
	// the cumulative series non-monotone.
	i := sort.SearchFloat64s(h.upper, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0. No-op on a nil handle.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// kind discriminates metric families for export.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered time series: a family name, an optional label
// set, and exactly one of the three handle types.
type metric struct {
	name   string
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics. The zero value is NOT ready to use — call
// NewRegistry. A nil *Registry is the disabled registry: it hands out nil
// handles and exports nothing.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric // keyed by name+labels
	kinds   map[string]kind    // family name -> kind
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]*metric),
		kinds:   make(map[string]kind),
	}
}

// renderLabels formats alternating key, value pairs as {k="v",...} in the
// given order. Callers must use one consistent order per series; the
// registry keys series by the rendered form. An odd number of arguments
// is a bug at the call site and panics rather than silently producing a
// differently-keyed series.
func renderLabels(kv []string) string {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd number of label arguments (%d): %q", len(kv), kv))
	}
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`=`)
		b.WriteString(strconv.Quote(kv[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

// lookup finds or creates the series for (name, labels), enforcing one
// kind per family. The handle (c/g/h) is allocated here, while r.mu is
// held, so handle pointers are immutable once the metric escapes the
// mutex — concurrent first use cannot mint duplicate handles or race
// with snapshot readers. It returns nil when the registry is nil or the
// family is already registered with a different kind — the caller then
// holds a nil handle, which is safe.
func (r *Registry) lookup(name string, k kind, kv []string, buckets []float64) *metric {
	if r == nil {
		renderLabels(kv) // still validate the call site when disabled
		return nil
	}
	labels := renderLabels(kv)
	id := name + labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.kinds[name]; ok && existing != k {
		return nil
	}
	if m, ok := r.metrics[id]; ok {
		return m
	}
	r.kinds[name] = k
	m := &metric{name: name, labels: labels}
	switch k {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		upper := append([]float64(nil), buckets...)
		sort.Float64s(upper)
		m.h = &Histogram{upper: upper, buckets: make([]atomic.Uint64, len(upper)+1)}
	}
	r.metrics[id] = m
	return m
}

// Counter returns the counter for name and the alternating key, value
// label pairs, creating it on first use. A nil registry returns a nil
// (no-op) handle.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	m := r.lookup(name, kindCounter, kv, nil)
	if m == nil {
		return nil
	}
	return m.c
}

// Gauge returns the gauge for name and labels, creating it on first use.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	m := r.lookup(name, kindGauge, kv, nil)
	if m == nil {
		return nil
	}
	return m.g
}

// Histogram returns the histogram for name and labels with the given
// ascending bucket upper bounds (nil means DefBuckets), creating it on
// first use. The bounds of the first creation win for the series.
func (r *Registry) Histogram(name string, buckets []float64, kv ...string) *Histogram {
	m := r.lookup(name, kindHistogram, kv, buckets)
	if m == nil {
		return nil
	}
	return m.h
}

// snapshot returns the registered series sorted by id, for deterministic
// export.
func (r *Registry) snapshot() []*metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if out[a].name != out[b].name {
			return out[a].name < out[b].name
		}
		return out[a].labels < out[b].labels
	})
	return out
}

// SeriesSnapshot is one series' point-in-time state, as captured by
// Registry.Snapshot. Exactly one of the three kind-specific views is
// meaningful, discriminated by Kind.
type SeriesSnapshot struct {
	// Name is the metric family name; Labels is the rendered {k="v",...}
	// block ("" for an unlabeled series). Name+Labels is the series id the
	// flight recorder keys windows by.
	Name   string
	Labels string
	// Kind is "counter", "gauge", or "histogram".
	Kind string
	// Value carries the counter or gauge value.
	Value float64
	// Count, Sum, Upper, and Buckets carry the histogram state. Count is
	// derived from the bucket array (like WritePrometheus's _count), so it
	// always equals the sum of Buckets even under concurrent Observes.
	// Upper is the ascending finite bucket bounds and is shared with the
	// registry — callers must not mutate it; Buckets is a fresh copy of
	// len(Upper)+1 counts, the last being the +Inf overflow slot.
	Count   uint64
	Sum     float64
	Upper   []float64
	Buckets []uint64
}

// ID returns the series identity the registry keys by: name plus the
// rendered label block.
func (s SeriesSnapshot) ID() string { return s.Name + s.Labels }

// Snapshot captures every registered series' current state, sorted by id
// for deterministic consumption. It is the structured twin of
// WritePrometheus, built for the flight recorder's periodic scrapes; a nil
// registry snapshots to nil.
func (r *Registry) Snapshot() []SeriesSnapshot {
	if r == nil {
		return nil
	}
	metrics := r.snapshot()
	out := make([]SeriesSnapshot, 0, len(metrics))
	for _, m := range metrics {
		s := SeriesSnapshot{Name: m.name, Labels: m.labels}
		switch {
		case m.c != nil:
			s.Kind = "counter"
			s.Value = float64(m.c.Value())
		case m.g != nil:
			s.Kind = "gauge"
			s.Value = m.g.Value()
		case m.h != nil:
			s.Kind = "histogram"
			s.Upper = m.h.upper
			s.Buckets = make([]uint64, len(m.h.buckets))
			for i := range m.h.buckets {
				s.Buckets[i] = m.h.buckets[i].Load()
				s.Count += s.Buckets[i]
			}
			s.Sum = m.h.Sum()
		}
		out = append(out, s)
	}
	return out
}

// formatFloat renders a float the way Prometheus clients do.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// mergeLabels splices an extra k="v" pair into an already rendered label
// block.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WritePrometheus writes the registry contents in the Prometheus text
// exposition format (version 0.0.4): one # TYPE line per family, counters
// and gauges as single samples, histograms as cumulative _bucket samples
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastFamily := ""
	for _, m := range r.snapshot() {
		if m.name != lastFamily {
			var k kind
			switch {
			case m.c != nil:
				k = kindCounter
			case m.g != nil:
				k = kindGauge
			default:
				k = kindHistogram
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, k)
			lastFamily = m.name
		}
		switch {
		case m.c != nil:
			fmt.Fprintf(&b, "%s%s %d\n", m.name, m.labels, m.c.Value())
		case m.g != nil:
			fmt.Fprintf(&b, "%s%s %s\n", m.name, m.labels, formatFloat(m.g.Value()))
		case m.h != nil:
			// +Inf and _count come from the bucket array itself (finite
			// cumulative sum plus the overflow slot), never from the separate
			// count atomic: a concurrent Observe between reads could otherwise
			// make +Inf momentarily smaller than a finite cumulative bucket.
			var cum uint64
			for i, ub := range m.h.upper {
				cum += m.h.buckets[i].Load()
				le := mergeLabels(m.labels, `le="`+formatFloat(ub)+`"`)
				fmt.Fprintf(&b, "%s_bucket%s %d\n", m.name, le, cum)
			}
			cum += m.h.buckets[len(m.h.upper)].Load()
			inf := mergeLabels(m.labels, `le="+Inf"`)
			fmt.Fprintf(&b, "%s_bucket%s %d\n", m.name, inf, cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", m.name, m.labels, formatFloat(m.h.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", m.name, m.labels, cum)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON writes the registry contents as an expvar-style JSON object:
// one key per series (name plus rendered labels), scalar values for
// counters and gauges, and {"count","sum","buckets"} objects for
// histograms. Keys are sorted, so the output is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{")
	for i, m := range r.snapshot() {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "\n%s: ", strconv.Quote(m.name+m.labels))
		switch {
		case m.c != nil:
			fmt.Fprintf(&b, "%d", m.c.Value())
		case m.g != nil:
			writeJSONFloat(&b, m.g.Value())
		case m.h != nil:
			fmt.Fprintf(&b, `{"count": %d, "sum": `, m.h.Count())
			writeJSONFloat(&b, m.h.Sum())
			b.WriteString(`, "buckets": {`)
			for j, ub := range m.h.upper {
				fmt.Fprintf(&b, "%s: %d, ", strconv.Quote(formatFloat(ub)), m.h.buckets[j].Load())
			}
			fmt.Fprintf(&b, `"+Inf": %d}}`, m.h.buckets[len(m.h.upper)].Load())
		}
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeJSONFloat renders a float as JSON, mapping non-finite values (which
// JSON cannot carry) to quoted strings.
func writeJSONFloat(b *strings.Builder, v float64) {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		fmt.Fprintf(b, "%s", strconv.Quote(formatFloat(v)))
		return
	}
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
}
