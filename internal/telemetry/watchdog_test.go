package telemetry

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
)

// wdFixture builds a registry, recorder, and a watchdog over the given
// rules, with a buffer capturing slog output.
func wdFixture(t *testing.T, rules ...Rule) (*Registry, *Recorder, *Watchdog, *bytes.Buffer) {
	t.Helper()
	reg := NewRegistry()
	rec := NewRecorder(reg, 32)
	var buf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	return reg, rec, NewWatchdog(reg, log, rules...), &buf
}

// TestWatchdogTransitions drives one rule ok → degraded → failing → ok and
// checks the state machine, alert counters, state gauges, and slog output
// at each step.
func TestWatchdogTransitions(t *testing.T) {
	sev := SevOK
	rule := Rule{
		Name:        "synthetic",
		Description: "test rule",
		Eval:        func(*Recorder) (Severity, string) { return sev, "driven by test" },
	}
	reg, rec, wd, buf := wdFixture(t, rule)

	if got := wd.Evaluate(rec); got != SevOK {
		t.Fatalf("initial Evaluate = %v, want ok", got)
	}
	if buf.Len() != 0 {
		t.Errorf("no-transition evaluation logged: %q", buf.String())
	}

	sev = SevDegraded
	if got := wd.Evaluate(rec); got != SevDegraded || wd.State() != SevDegraded {
		t.Fatalf("Evaluate/State = %v/%v, want degraded", got, wd.State())
	}
	logged := buf.String()
	if !strings.Contains(logged, "health rule transition") ||
		!strings.Contains(logged, "rule=synthetic") ||
		!strings.Contains(logged, "to=degraded") ||
		!strings.Contains(logged, "level=WARN") {
		t.Errorf("degraded transition log = %q, want WARN with rule/to fields", logged)
	}
	if got := reg.Counter(MetricAlerts, "rule", "synthetic").Value(); got != 1 {
		t.Errorf("alerts after escalation = %d, want 1", got)
	}

	// Re-evaluating in the same state must not re-alert or re-log.
	buf.Reset()
	wd.Evaluate(rec)
	if buf.Len() != 0 || reg.Counter(MetricAlerts, "rule", "synthetic").Value() != 1 {
		t.Errorf("steady-state evaluation alerted again (log %q)", buf.String())
	}

	sev = SevFailing
	buf.Reset()
	wd.Evaluate(rec)
	if !strings.Contains(buf.String(), "level=ERROR") {
		t.Errorf("failing transition log = %q, want ERROR", buf.String())
	}
	if got := reg.Counter(MetricAlerts, "rule", "synthetic").Value(); got != 2 {
		t.Errorf("alerts after second escalation = %d, want 2", got)
	}
	if got := reg.Gauge(MetricHealthState).Value(); got != 2 {
		t.Errorf("health state gauge = %g, want 2 (failing)", got)
	}

	// Recovery logs at Info and does NOT advance the alert counter.
	sev = SevOK
	buf.Reset()
	wd.Evaluate(rec)
	if !strings.Contains(buf.String(), "level=INFO") || !strings.Contains(buf.String(), "to=ok") {
		t.Errorf("recovery log = %q, want INFO to=ok", buf.String())
	}
	if got := reg.Counter(MetricAlerts, "rule", "synthetic").Value(); got != 2 {
		t.Errorf("alerts after recovery = %d, want still 2", got)
	}
	_, status := wd.Status()
	if len(status) != 1 || status[0].Transitions != 3 || status[0].Alerts != 2 {
		t.Errorf("status = %+v, want 3 transitions and 2 alerts", status)
	}
}

// TestWatchdogNil: the disabled watchdog must be safe everywhere.
func TestWatchdogNil(t *testing.T) {
	var wd *Watchdog
	if wd.Evaluate(nil) != SevOK || wd.State() != SevOK {
		t.Error("nil watchdog is not ok")
	}
	if sev, rules := wd.Status(); sev != SevOK || rules != nil {
		t.Error("nil watchdog Status is not empty/ok")
	}
}

func TestCounterNonzeroRule(t *testing.T) {
	reg, rec, wd, _ := wdFixture(t,
		CounterNonzeroRule("kviol", "bad_total", "k violations"))
	// No windows yet, then a window without the series: both ok.
	if wd.Evaluate(rec) != SevOK {
		t.Error("rule judged before any window existed")
	}
	rec.Scrape()
	if wd.Evaluate(rec) != SevOK {
		t.Error("rule judged an unregistered series")
	}
	c := reg.Counter("bad_total")
	rec.Scrape()
	if wd.Evaluate(rec) != SevOK {
		t.Error("zero counter flagged")
	}
	c.Inc()
	rec.Scrape()
	if got := wd.Evaluate(rec); got != SevFailing {
		t.Errorf("nonzero counter = %v, want failing", got)
	}
}

func TestTrendRule(t *testing.T) {
	reg, rec, wd, _ := wdFixture(t,
		TrendRule("drift", "ks_mean", 8, 0.10, 0.05, "ks drifting"))
	g := reg.Gauge("ks_mean")

	// Flat series below the floor: never alerts, even with enough windows.
	for i := 0; i < 6; i++ {
		g.Set(0.01)
		rec.Scrape()
	}
	if got := wd.Evaluate(rec); got != SevOK {
		t.Fatalf("flat low series = %v, want ok", got)
	}

	// A clear rise above the floor degrades.
	for _, v := range []float64{0.02, 0.02, 0.02, 0.02, 0.18, 0.18, 0.18, 0.18} {
		g.Set(v)
		rec.Scrape()
	}
	if got := wd.Evaluate(rec); got == SevOK {
		t.Fatalf("rising series above floor judged ok, want degraded or failing")
	}

	// Settled at the higher plateau: halves agree again, back to ok.
	for i := 0; i < 8; i++ {
		g.Set(0.18)
		rec.Scrape()
	}
	if got := wd.Evaluate(rec); got != SevOK {
		t.Errorf("plateaued series = %v, want ok (trend rule watches rises, not levels)", got)
	}
}

func TestTrendRuleNeedsFourWindows(t *testing.T) {
	reg, rec, wd, _ := wdFixture(t,
		TrendRule("drift", "ks_mean", 8, 0.01, 0, "ks drifting"))
	g := reg.Gauge("ks_mean")
	for i, v := range []float64{0, 1, 2} {
		g.Set(v)
		rec.Scrape()
		if got := wd.Evaluate(rec); got != SevOK {
			t.Errorf("window %d: rule judged %v with < 4 windows of data", i+1, got)
		}
	}
}

func TestLatencyRegressionRule(t *testing.T) {
	reg, rec, wd, _ := wdFixture(t,
		LatencyRegressionRule("lat", "req_seconds", 2, "latency regressed"))
	buckets := []float64{0.001, 0.01, 0.1, 1}
	h := reg.Histogram("req_seconds", buckets)

	observeWindow := func(v float64, n int) {
		for i := 0; i < n; i++ {
			h.Observe(v)
		}
		rec.Scrape()
	}

	// Three trafficked baseline windows around 1ms.
	for i := 0; i < 3; i++ {
		observeWindow(0.0005, 10)
		if got := wd.Evaluate(rec); got != SevOK {
			t.Fatalf("baseline window %d judged %v, want ok", i+1, got)
		}
	}
	// A single slow window is not a regression.
	observeWindow(0.5, 10)
	if got := wd.Evaluate(rec); got != SevOK {
		t.Fatalf("one slow window = %v, want ok (needs two consecutive)", got)
	}
	// Two consecutive slow windows are.
	observeWindow(0.5, 10)
	if got := wd.Evaluate(rec); got == SevOK {
		t.Fatalf("two consecutive slow windows judged ok, want degraded/failing")
	}
	// Recovery: two fast windows bring it back.
	observeWindow(0.0005, 10)
	observeWindow(0.0005, 10)
	if got := wd.Evaluate(rec); got != SevOK {
		t.Errorf("after recovery = %v, want ok", got)
	}
}

func TestImbalanceRule(t *testing.T) {
	// With two shards, max/mean is bounded by 2 (reached only when one
	// shard holds everything), so the thresholds sit below that.
	reg, rec, wd, _ := wdFixture(t,
		ImbalanceRule("imb", "shard_records", 1.5, 1.9, 100, "hot shard"))
	s0 := reg.Gauge("shard_records", "shard", "0")
	s1 := reg.Gauge("shard_records", "shard", "1")

	// Balanced load: ok.
	s0.Set(500)
	s1.Set(500)
	rec.Scrape()
	if got := wd.Evaluate(rec); got != SevOK {
		t.Fatalf("balanced shards = %v, want ok", got)
	}
	// Tiny totals never judged, however skewed.
	s0.Set(30)
	s1.Set(0)
	rec.Scrape()
	if got := wd.Evaluate(rec); got != SevOK {
		t.Fatalf("skew below judging floor = %v, want ok", got)
	}
	// A hot shard at 1.8× the mean degrades.
	s0.Set(900)
	s1.Set(100)
	rec.Scrape()
	if got := wd.Evaluate(rec); got != SevDegraded {
		t.Fatalf("max/mean 1.8 = %v, want degraded", got)
	}
	// Everything on one shard (ratio 2.0) fails.
	s0.Set(1000)
	s1.Set(0)
	rec.Scrape()
	if got := wd.Evaluate(rec); got != SevFailing {
		t.Errorf("total skew = %v, want failing", got)
	}
}
