package telemetry

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.SetSampling(1)
	ctx, sp := tr.Start(context.Background(), "noop")
	if sp != nil {
		t.Fatalf("nil tracer returned non-nil span")
	}
	if ctx != context.Background() {
		t.Fatalf("nil tracer modified context")
	}
	sp = tr.StartChild(nil, "noop")
	if sp != nil {
		t.Fatalf("nil tracer StartChild returned non-nil span")
	}
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 1)
	sp.End()
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events(0) != nil {
		t.Fatalf("nil tracer reported state")
	}
}

func TestTracerDisabledByDefault(t *testing.T) {
	tr := NewTracer(16, 0)
	for i := 0; i < 10; i++ {
		_, sp := tr.Start(context.Background(), "root")
		if sp != nil {
			t.Fatalf("sampleEvery=0 produced a span")
		}
		sp.End()
	}
	if tr.Len() != 0 {
		t.Fatalf("disabled tracer buffered %d spans", tr.Len())
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(64, 3)
	sampled := 0
	for i := 0; i < 9; i++ {
		_, sp := tr.Start(context.Background(), "root")
		if sp != nil {
			sampled++
		}
		sp.End()
	}
	if sampled != 3 {
		t.Fatalf("1-in-3 sampling over 9 starts recorded %d roots, want 3", sampled)
	}
	if tr.Len() != 3 {
		t.Fatalf("buffered %d spans, want 3", tr.Len())
	}

	tr.SetSampling(0)
	if _, sp := tr.Start(context.Background(), "root"); sp != nil {
		t.Fatalf("SetSampling(0) did not disable recording")
	}
	tr.SetSampling(1)
	if _, sp := tr.Start(context.Background(), "root"); sp == nil {
		t.Fatalf("SetSampling(1) did not record every root")
	}
}

func TestTracerParentChildPropagation(t *testing.T) {
	tr := NewTracer(16, 1)
	ctx, root := tr.Start(context.Background(), "root")
	if root == nil {
		t.Fatalf("root not sampled at 1-in-1")
	}
	ctx2, child := tr.Start(ctx, "child")
	if child == nil {
		t.Fatalf("child of sampled root not recorded")
	}
	_, grand := tr.Start(ctx2, "grandchild")
	grand.End()
	child.End()
	root.SetAttr("status", "ok")
	root.SetAttrInt("n", 7)
	root.End()

	evs := tr.Events(0)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	// Completion order: grandchild, child, root.
	g, c, r := evs[0], evs[1], evs[2]
	if r.Parent != 0 {
		t.Fatalf("root has parent %d", r.Parent)
	}
	if c.Parent != r.ID || g.Parent != c.ID {
		t.Fatalf("parent chain wrong: root=%d child.parent=%d grand.parent=%d child=%d",
			r.ID, c.Parent, g.Parent, c.ID)
	}
	if r.Track != r.ID || c.Track != r.ID || g.Track != r.ID {
		t.Fatalf("track not inherited from root: %d %d %d (root id %d)", r.Track, c.Track, g.Track, r.ID)
	}
	want := [][2]string{{"status", "ok"}, {"n", "7"}}
	if len(r.Attrs) != 2 || r.Attrs[0] != want[0] || r.Attrs[1] != want[1] {
		t.Fatalf("root attrs = %v, want %v", r.Attrs, want)
	}
}

func TestTracerChildAlwaysRecordedExplicitParent(t *testing.T) {
	tr := NewTracer(16, 1)
	root := tr.StartChild(nil, "root")
	if root == nil {
		t.Fatalf("root not sampled")
	}
	// Even if sampling is since disabled, a child of a live span records.
	tr.SetSampling(0)
	child := tr.StartChild(root, "child")
	if child == nil {
		t.Fatalf("explicit child of sampled root not recorded")
	}
	child.End()
	root.End()
	if tr.Len() != 2 {
		t.Fatalf("buffered %d, want 2", tr.Len())
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(4, 1)
	for i := 0; i < 10; i++ {
		sp := tr.StartChild(nil, "s")
		sp.SetAttrInt("i", i)
		sp.End()
	}
	if tr.Len() != 4 {
		t.Fatalf("ring holds %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", tr.Dropped())
	}
	evs := tr.Events(0)
	if evs[0].Attrs[0][1] != "6" || evs[3].Attrs[0][1] != "9" {
		t.Fatalf("ring kept wrong window: first=%v last=%v", evs[0].Attrs, evs[3].Attrs)
	}
	// last=N limits to the newest N.
	evs = tr.Events(2)
	if len(evs) != 2 || evs[0].Attrs[0][1] != "8" || evs[1].Attrs[0][1] != "9" {
		t.Fatalf("Events(2) returned wrong window: %v", evs)
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := NewTracer(0, 1)
	if len(tr.ring) != defaultTraceCapacity {
		t.Fatalf("default capacity = %d, want %d", len(tr.ring), defaultTraceCapacity)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(16, 1)
	ctx, root := tr.Start(context.Background(), "http /v1/records")
	_, child := tr.Start(ctx, "dynamic.add_batch")
	child.SetAttrInt("records", 100)
	child.End()
	root.SetAttr("status", "200")
	root.End()

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b, 0); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d trace events, want 2", len(doc.TraceEvents))
	}
	c, r := doc.TraceEvents[0], doc.TraceEvents[1]
	if c.Name != "dynamic.add_batch" || r.Name != "http /v1/records" {
		t.Fatalf("event names wrong: %q, %q", c.Name, r.Name)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Pid != 1 || ev.Cat != "condense" {
			t.Fatalf("event shape wrong: %+v", ev)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Fatalf("negative ts/dur: %+v", ev)
		}
	}
	if c.Tid != r.Tid {
		t.Fatalf("child tid %d != root tid %d", c.Tid, r.Tid)
	}
	if c.Args["records"] != "100" {
		t.Fatalf("child args = %v", c.Args)
	}
	if c.Args["parent"] == "" {
		t.Fatalf("child missing parent arg: %v", c.Args)
	}
	if r.Args["status"] != "200" {
		t.Fatalf("root args = %v", r.Args)
	}

	// Empty tracer still writes a valid document.
	empty := NewTracer(4, 0)
	b.Reset()
	if err := empty.WriteChromeTrace(&b, 0); err != nil {
		t.Fatalf("empty WriteChromeTrace: %v", err)
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("empty output invalid JSON: %v", err)
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer(1024, 1)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				ctx, root := tr.Start(context.Background(), "root")
				_, child := tr.Start(ctx, "child")
				child.End()
				root.End()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if tr.Len() != 800 {
		t.Fatalf("buffered %d spans, want 800", tr.Len())
	}
}
