package telemetry

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records lightweight execution spans into a bounded in-memory ring
// buffer, for export in the Chrome trace-event format (load the JSON into
// chrome://tracing or https://ui.perfetto.dev).
//
// The design rules mirror the metrics registry:
//
//   - Nil-safe and observe-only. Every method works on a nil *Tracer and a
//     nil *Span (they no-op), and nothing a span records ever feeds back
//     into the instrumented code, so enabling tracing can never change
//     condensation output.
//   - Sampled at the root. A span started with no parent (no span in the
//     context, nil parent) is recorded for one in every SampleEvery root
//     starts; the default SampleEvery of 0 disables tracing entirely.
//     Children of a sampled root are always recorded, so one sampled
//     request/record carries its whole sub-tree. A disabled or unsampled
//     start costs a nil check plus one atomic load — no clock read and no
//     allocation — which is what keeps the 0 allocs/record ingest hot path
//     intact when tracing is off.
//   - Bounded. The ring keeps the most recent Capacity completed spans;
//     older spans are overwritten, never grown.
type Tracer struct {
	epoch time.Time

	sampleEvery atomic.Int64
	starts      atomic.Uint64 // root-start counter driving the sampler
	ids         atomic.Uint64 // span id allocator (0 is reserved for "no parent")

	mu      sync.Mutex
	ring    []SpanEvent
	next    int    // ring slot for the next completed span
	filled  int    // completed spans currently held (≤ len(ring))
	total   uint64 // completed spans ever recorded
	dropped uint64 // completed spans overwritten by newer ones
}

// SpanEvent is one completed span as stored in the ring.
type SpanEvent struct {
	// Name is the span name, e.g. "dynamic.add_batch".
	Name string
	// ID, Parent, and Track identify the span, its parent (0 for roots),
	// and the root span of its tree (used as the Chrome "thread" id so one
	// sampled tree renders on one timeline row).
	ID, Parent, Track uint64
	// Start is the span's start offset from the tracer's epoch; Dur is its
	// wall-clock duration.
	Start, Dur time.Duration
	// Attrs are the key/value attributes set on the span, in set order.
	Attrs [][2]string
}

// Span is one in-flight traced operation. A nil *Span is the unsampled
// span: every method no-ops, so instrumentation sites never branch on
// whether tracing is enabled.
type Span struct {
	t      *Tracer
	name   string
	id     uint64
	parent uint64
	track  uint64
	start  time.Time
	attrs  [][2]string
}

// defaultTraceCapacity bounds the ring when NewTracer is given a
// non-positive capacity.
const defaultTraceCapacity = 4096

// NewTracer returns a tracer holding up to capacity completed spans
// (capacity ≤ 0 means the default 4096), sampling one in sampleEvery root
// spans. sampleEvery ≤ 0 disables recording entirely; 1 records every
// root.
func NewTracer(capacity, sampleEvery int) *Tracer {
	if capacity <= 0 {
		capacity = defaultTraceCapacity
	}
	t := &Tracer{
		epoch: time.Now(),
		ring:  make([]SpanEvent, capacity),
	}
	t.sampleEvery.Store(int64(sampleEvery))
	return t
}

// SetSampling replaces the root-sampling stride: one in every n root spans
// is recorded; n ≤ 0 disables recording. Safe to call while spans are in
// flight.
func (t *Tracer) SetSampling(n int) {
	if t == nil {
		return
	}
	t.sampleEvery.Store(int64(n))
}

// spanKey is the context key carrying the current *Span.
type spanKey struct{}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Start begins a span named name as a child of the span in ctx. With no
// span in ctx it is a root start, subject to 1-in-SampleEvery sampling.
// The returned context carries the new span for nested Start calls; when
// the start is not sampled (or the tracer is nil) the context is returned
// unchanged and the span is nil.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	sp := t.StartChild(FromContext(ctx), name)
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// StartChild begins a span named name under parent. A nil parent makes
// this a root start, subject to sampling; a non-nil parent is always
// recorded (its root already won the sampling draw). Callers that do not
// flow a context — per-record hot paths — use this form directly.
func (t *Tracer) StartChild(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	if parent == nil {
		every := t.sampleEvery.Load()
		if every <= 0 {
			return nil
		}
		if n := t.starts.Add(1); (n-1)%uint64(every) != 0 {
			return nil
		}
	}
	sp := &Span{t: t, name: name, id: t.ids.Add(1), start: time.Now()}
	if parent != nil {
		sp.parent = parent.id
		sp.track = parent.track
	} else {
		sp.track = sp.id
	}
	return sp
}

// SetAttr attaches a string attribute to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, [2]string{key, value})
}

// SetAttrInt attaches an integer attribute to the span.
func (s *Span) SetAttrInt(key string, value int) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, [2]string{key, strconv.Itoa(value)})
}

// End completes the span and commits it to the tracer's ring.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.t.record(SpanEvent{
		Name:   s.name,
		ID:     s.id,
		Parent: s.parent,
		Track:  s.track,
		Start:  s.start.Sub(s.t.epoch),
		Dur:    end.Sub(s.start),
		Attrs:  s.attrs,
	})
}

// record commits one completed span, overwriting the oldest when full.
func (t *Tracer) record(ev SpanEvent) {
	t.mu.Lock()
	if t.filled == len(t.ring) {
		t.dropped++
	} else {
		t.filled++
	}
	t.ring[t.next] = ev
	t.next = (t.next + 1) % len(t.ring)
	t.total++
	t.mu.Unlock()
}

// Len returns the number of completed spans currently buffered.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.filled
}

// Dropped returns the number of completed spans overwritten by newer ones
// since the tracer was created.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns up to last of the most recently completed spans in
// completion order (oldest first). last ≤ 0 returns everything buffered.
// The returned slice is a copy; SpanEvent values are safe to retain.
func (t *Tracer) Events(last int) []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.filled
	if last > 0 && last < n {
		n = last
	}
	out := make([]SpanEvent, n)
	// t.next is one past the newest; walk back n slots.
	start := (t.next - n + len(t.ring)) % len(t.ring)
	for i := 0; i < n; i++ {
		out[i] = t.ring[(start+i)%len(t.ring)]
	}
	return out
}

// WriteChromeTrace writes up to last buffered spans (≤ 0 for all) as a
// Chrome trace-event JSON object: one complete ("ph":"X") event per span,
// timestamps and durations in microseconds, the span tree id as the tid so
// each sampled tree gets its own timeline row, and span attributes under
// "args". The output loads directly into chrome://tracing or Perfetto.
func (t *Tracer) WriteChromeTrace(w io.Writer, last int) error {
	var b strings.Builder
	b.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	for i, ev := range t.Events(last) {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "\n{\"name\":%s,\"cat\":\"condense\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"id\":%d",
			strconv.Quote(ev.Name),
			float64(ev.Start)/float64(time.Microsecond),
			float64(ev.Dur)/float64(time.Microsecond),
			ev.Track, ev.ID)
		if len(ev.Attrs) > 0 || ev.Parent != 0 {
			b.WriteString(`,"args":{`)
			first := true
			if ev.Parent != 0 {
				fmt.Fprintf(&b, `"parent":"%d"`, ev.Parent)
				first = false
			}
			for _, kv := range ev.Attrs {
				if !first {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%s:%s", strconv.Quote(kv[0]), strconv.Quote(kv[1]))
				first = false
			}
			b.WriteByte('}')
		}
		b.WriteByte('}')
	}
	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
