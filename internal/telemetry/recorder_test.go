package telemetry

import (
	"context"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistogramQuantile pins the estimator's semantics on the edge cases
// the recorder meets in practice: no observations, everything in one
// bucket, and overflow mass past the last finite bound.
func TestHistogramQuantile(t *testing.T) {
	upper := []float64{1, 2, 4}
	tests := []struct {
		name    string
		upper   []float64
		buckets []uint64
		q       float64
		want    float64
	}{
		{"empty returns NaN", upper, []uint64{0, 0, 0, 0}, 0.95, math.NaN()},
		{"no bounds returns NaN", nil, []uint64{5}, 0.5, math.NaN()},
		{"bad quantile returns NaN", upper, []uint64{1, 0, 0, 0}, 1.5, math.NaN()},
		// All 10 observations in (1,2]: the median rank (5) sits halfway
		// through the bucket, interpolating to 1.5.
		{"single bucket interpolates", upper, []uint64{0, 10, 0, 0}, 0.5, 1.5},
		// First bucket interpolates from 0, not from -Inf.
		{"first bucket from zero", upper, []uint64{10, 0, 0, 0}, 0.5, 0.5},
		// Rank 3.8 of 4: 2 below 1, the rest in (2,4].
		{"across buckets", upper, []uint64{2, 0, 2, 0}, 0.95, 3.8},
		// The 95th-percentile rank lands in the +Inf overflow: the estimate
		// is clamped to the highest finite bound.
		{"overflow clamps to last bound", upper, []uint64{0, 0, 1, 9}, 0.95, 4},
		{"all overflow clamps", upper, []uint64{0, 0, 0, 7}, 0.5, 4},
	}
	for _, tt := range tests {
		got := histogramQuantile(tt.upper, tt.buckets, tt.q)
		if math.IsNaN(tt.want) {
			if !math.IsNaN(got) {
				t.Errorf("%s: got %g, want NaN", tt.name, got)
			}
			continue
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s: got %g, want %g", tt.name, got, tt.want)
		}
	}
}

func TestRegistrySnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total", "kind", "a").Add(3)
	reg.Gauge("depth").Set(2.5)
	h := reg.Histogram("lat_seconds", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)

	snap := reg.Snapshot()
	byID := make(map[string]SeriesSnapshot, len(snap))
	for _, s := range snap {
		byID[s.ID()] = s
	}
	c, ok := byID[`jobs_total{kind="a"}`]
	if !ok || c.Kind != "counter" || c.Value != 3 {
		t.Errorf("counter snapshot = %+v (found %v), want counter value 3", c, ok)
	}
	g := byID["depth"]
	if g.Kind != "gauge" || g.Value != 2.5 {
		t.Errorf("gauge snapshot = %+v, want gauge value 2.5", g)
	}
	hs := byID["lat_seconds"]
	if hs.Kind != "histogram" || hs.Count != 3 || hs.Sum != 101 {
		t.Errorf("histogram snapshot = %+v, want count 3 sum 101", hs)
	}
	wantBuckets := []uint64{1, 1, 1}
	if len(hs.Buckets) != 3 {
		t.Fatalf("histogram buckets = %v, want len 3 (2 finite + overflow)", hs.Buckets)
	}
	for i, b := range wantBuckets {
		if hs.Buckets[i] != b {
			t.Errorf("bucket[%d] = %d, want %d", i, hs.Buckets[i], b)
		}
	}
	// A nil registry snapshots to nothing.
	var nilReg *Registry
	if got := nilReg.Snapshot(); got != nil {
		t.Errorf("nil registry Snapshot = %v, want nil", got)
	}
}

func TestRecorderScrapeDeltas(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, 8)
	c := reg.Counter("work_total")
	g := reg.Gauge("level")
	h := reg.Histogram("lat", []float64{1, 2})

	c.Add(5)
	g.Set(7)
	h.Observe(0.5)
	w1 := rec.Scrape()
	if s := w1.Counters["work_total"]; s.Value != 5 || s.Delta != 5 {
		t.Errorf("window 1 counter = %+v, want value 5 delta 5", s)
	}
	if v := w1.Gauges["level"]; float64(v) != 7 {
		t.Errorf("window 1 gauge = %g, want 7", float64(v))
	}
	if s := w1.Histograms["lat"]; s.CountDelta != 1 || math.IsNaN(float64(s.P50)) {
		t.Errorf("window 1 histogram = %+v, want count delta 1 and a finite p50", s)
	}

	c.Add(2)
	g.Set(3)
	w2 := rec.Scrape()
	if s := w2.Counters["work_total"]; s.Value != 7 || s.Delta != 2 {
		t.Errorf("window 2 counter = %+v, want value 7 delta 2", s)
	}
	if v := w2.Gauges["level"]; float64(v) != 3 {
		t.Errorf("window 2 gauge = %g, want 3", float64(v))
	}
	// No observations this window: quantiles are NaN even though the
	// cumulative histogram is non-empty.
	if s := w2.Histograms["lat"]; s.CountDelta != 0 || !math.IsNaN(float64(s.P95)) {
		t.Errorf("window 2 histogram = %+v, want count delta 0 and NaN p95", s)
	}
	if w2.Seq != 2 || !w2.Start.Equal(w1.End) {
		t.Errorf("window 2 seq/start = %d/%v, want 2 starting at window 1's end %v",
			w2.Seq, w2.Start, w1.End)
	}
}

// TestRecorderRingWraparound fills the ring past capacity and checks that
// the oldest windows are evicted, the newest retained, in order.
func TestRecorderRingWraparound(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, 3)
	c := reg.Counter("ticks_total")
	for i := 0; i < 7; i++ {
		c.Inc()
		rec.Scrape()
	}
	if rec.Len() != 3 || rec.Seq() != 7 {
		t.Fatalf("Len/Seq = %d/%d, want 3/7", rec.Len(), rec.Seq())
	}
	ws := rec.Windows(0)
	if len(ws) != 3 {
		t.Fatalf("Windows(0) returned %d windows, want 3", len(ws))
	}
	for i, want := range []uint64{5, 6, 7} {
		if ws[i].Seq != want {
			t.Errorf("window[%d].Seq = %d, want %d (oldest-first after eviction)", i, ws[i].Seq, want)
		}
		if v := ws[i].Counters["ticks_total"].Value; v != want {
			t.Errorf("window[%d] counter value = %d, want %d", i, v, want)
		}
	}
	// last=2 trims from the old end.
	if ws := rec.Windows(2); len(ws) != 2 || ws[0].Seq != 6 {
		t.Errorf("Windows(2) = %d windows starting at seq %d, want 2 starting at 6", len(ws), ws[0].Seq)
	}
	if w, ok := rec.LastWindow(); !ok || w.Seq != 7 {
		t.Errorf("LastWindow = seq %d ok %v, want 7 true", w.Seq, ok)
	}
}

// TestRecorderConcurrentScrapeObserve mirrors TestRegistryConcurrentFirstUse
// with a scraper in the loop: metric writers and Scrape race under -race,
// and the final window must still account for every write.
func TestRecorderConcurrentScrapeObserve(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, 16)
	const goroutines = 8
	const perWorker = 200
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				reg.Counter("race_total", "worker", "shared").Inc()
				reg.Gauge("race_depth").Add(1)
				reg.Histogram("race_seconds", nil, "worker", "shared").Observe(0.001)
			}
		}()
	}
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for {
			select {
			case <-done:
				return
			default:
				rec.Scrape()
			}
		}
	}()
	close(start)
	go func() {
		// Stop the scraper once the writers drain.
		defer close(done)
		for reg.Counter("race_total", "worker", "shared").Value() < goroutines*perWorker {
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	w := rec.Scrape()
	const want = goroutines * perWorker
	if got := w.Counters[`race_total{worker="shared"}`].Value; got != want {
		t.Errorf("final counter value = %d, want %d", got, want)
	}
	if got := w.Histograms[`race_seconds{worker="shared"}`].Count; got != want {
		t.Errorf("final histogram count = %d, want %d", got, want)
	}
}

func TestRecorderCollectors(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, 4)
	calls := 0
	rec.AddCollector(func() {
		calls++
		reg.Gauge("derived").Set(float64(calls))
	})
	rec.AddCollector(nil) // must be ignored
	rec.Scrape()
	w := rec.Scrape()
	if calls != 2 {
		t.Errorf("collector ran %d times, want 2 (once per scrape)", calls)
	}
	if v := float64(w.Gauges["derived"]); v != 2 {
		t.Errorf("derived gauge in window = %g, want 2 (refreshed before the registry read)", v)
	}
}

func TestRecorderSeriesHelpers(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, 8)
	g := reg.Gauge("ratio")
	c := reg.Counter("events_total")
	h := reg.Histogram("lat", []float64{1, 2})

	g.Set(1)
	c.Add(10)
	rec.Scrape()
	g.Set(2)
	c.Add(5)
	h.Observe(1.5)
	rec.Scrape()

	if got := rec.GaugeSeries("ratio", 0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("GaugeSeries = %v, want [1 2]", got)
	}
	if got := rec.CounterDeltaSeries("events_total", 0); got[0] != 10 || got[1] != 5 {
		t.Errorf("CounterDeltaSeries = %v, want [10 5]", got)
	}
	q := rec.QuantileSeries("lat", 0.95, 0)
	if !math.IsNaN(q[0]) || math.IsNaN(q[1]) {
		t.Errorf("QuantileSeries = %v, want [NaN finite]", q)
	}
	if got := rec.GaugeSeries("missing", 0); !math.IsNaN(got[0]) || !math.IsNaN(got[1]) {
		t.Errorf("missing GaugeSeries = %v, want all NaN", got)
	}
	if got := rec.QuantileSeries("lat", 0.75, 0); !math.IsNaN(got[1]) {
		t.Errorf("unsupported quantile returned %v, want NaN", got[1])
	}
}

func TestFilterWindow(t *testing.T) {
	w := Window{
		Counters: map[string]CounterSample{
			"a_total":                 {Value: 1},
			`shardy{shard="0"}`:       {Value: 2},
			`shardy_other{shard="0"}`: {Value: 3},
		},
		Gauges:     map[string]JSONFloat{`shardy{shard="1"}`: 4, "b": 5},
		Histograms: map[string]HistogramSample{"lat": {Count: 6}},
	}
	got := FilterWindow(w, []string{"shardy", "lat"})
	if len(got.Counters) != 1 || got.Counters[`shardy{shard="0"}`].Value != 2 {
		t.Errorf("filtered counters = %v, want only the shardy family", got.Counters)
	}
	if len(got.Gauges) != 1 || got.Gauges[`shardy{shard="1"}`] != 4 {
		t.Errorf("filtered gauges = %v, want only shardy{shard=\"1\"}", got.Gauges)
	}
	if len(got.Histograms) != 1 {
		t.Errorf("filtered histograms = %v, want lat only", got.Histograms)
	}
}

func TestRecorderRun(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, 64)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := make(chan Window, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		rec.Run(ctx, time.Millisecond, func(w Window) { seen <- w })
	}()
	w1 := <-seen
	w2 := <-seen
	if w2.Seq != w1.Seq+1 {
		t.Errorf("after-callback windows out of order: %d then %d", w1.Seq, w2.Seq)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on context cancellation")
	}
}

// TestWindowJSON: windows must marshal even when quantiles are NaN
// (encoding/json rejects raw NaN), rendering them as null.
func TestWindowJSON(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, 2)
	reg.Histogram("lat", []float64{1}) // registered, never observed
	w := rec.Scrape()
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatalf("marshaling a window with NaN quantiles: %v", err)
	}
	var back map[string]interface{}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	hists := back["histograms"].(map[string]interface{})
	lat := hists["lat"].(map[string]interface{})
	if lat["p95"] != nil {
		t.Errorf("NaN p95 marshaled as %v, want null", lat["p95"])
	}
	// Typed round-trip: null must come back as NaN, not zero, so watch
	// clients can tell "no traffic" from "instant".
	var typed Window
	if err := json.Unmarshal(b, &typed); err != nil {
		t.Fatalf("typed round-trip: %v", err)
	}
	if got := typed.Histograms["lat"].P95; !math.IsNaN(float64(got)) {
		t.Errorf("null p95 unmarshaled as %v, want NaN", got)
	}
}

// TestRecorderNil: a nil recorder must be safely disabled everywhere the
// server and daemon touch it.
func TestRecorderNil(t *testing.T) {
	var rec *Recorder
	rec.AddCollector(func() {})
	if rec.Len() != 0 || rec.Capacity() != 0 || rec.Seq() != 0 {
		t.Error("nil recorder reports non-zero state")
	}
	if ws := rec.Windows(5); ws != nil {
		t.Errorf("nil recorder Windows = %v, want nil", ws)
	}
	if _, ok := rec.LastWindow(); ok {
		t.Error("nil recorder has a last window")
	}
}

// BenchmarkRecorderScrape measures one scrape over a registry shaped like
// a live condenserd's (a few dozen series including histograms) — the
// full per-interval cost the scraper goroutine pays, none of which lands
// on the ingest path.
func BenchmarkRecorderScrape(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 8; i++ {
		shard := string(rune('0' + i))
		reg.Counter("condense_stream_records_total", "shard", shard).Add(1000 * (i + 1))
		reg.Gauge("condense_groups", "shard", shard).Set(float64(40 * (i + 1)))
		h := reg.Histogram("condense_stage_seconds", nil, "stage", "route", "shard", shard)
		for j := 0; j < 100; j++ {
			h.Observe(float64(j) * 1e-4)
		}
	}
	reg.Histogram("http_request_seconds", nil, "path", "/v1/records").Observe(0.01)
	rec := NewRecorder(reg, 360)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Scrape()
	}
}
