package telemetry

import (
	"context"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Recorder is the flight recorder: a fixed-capacity ring of periodic
// registry scrapes. Each scrape produces one Window holding every
// counter's value and delta, every gauge's value, and every histogram's
// windowed count/sum deltas plus p50/p95/p99 estimated from the bucket
// counts that arrived during the window alone. The ring keeps the most
// recent Capacity windows; older ones are overwritten, never grown — so
// the recorder answers "how did this series move over the last N scrape
// intervals" with bounded memory, no external storage, and no work on any
// ingest hot path (scrapes run on whoever calls Scrape or Run, typically
// condenserd's scraper goroutine).
//
// Like the rest of the package, the recorder is observe-only: it reads
// the registry (and runs registered collectors, which may refresh gauges)
// but never feeds anything back into instrumented code, so enabling it
// cannot change condensation output.
type Recorder struct {
	reg *Registry

	mu         sync.Mutex
	collectors []func()
	ring       []Window
	next       int                 // ring slot for the next window
	filled     int                 // windows currently held (≤ len(ring))
	seq        uint64              // windows ever recorded
	prevC      map[string]uint64   // last counter values, for deltas
	prevH      map[string]histPrev // last histogram states, for deltas
	lastScrape time.Time
}

// histPrev is the per-histogram state remembered between scrapes.
type histPrev struct {
	count   uint64
	sum     float64
	buckets []uint64
}

// defaultRecorderCapacity bounds the ring when NewRecorder is given a
// non-positive capacity: 360 windows ≈ one hour at a 10s scrape cadence.
const defaultRecorderCapacity = 360

// NewRecorder returns a flight recorder over reg holding up to capacity
// windows (capacity ≤ 0 means the default 360).
func NewRecorder(reg *Registry, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = defaultRecorderCapacity
	}
	return &Recorder{
		reg:   reg,
		ring:  make([]Window, capacity),
		prevC: make(map[string]uint64),
		prevH: make(map[string]histPrev),
	}
}

// JSONFloat is a float64 that marshals non-finite values (which JSON
// cannot carry) as null instead of failing the whole encode. The recorder
// uses it for windowed quantiles, where NaN legitimately means "no
// observations this window".
type JSONFloat float64

// MarshalJSON implements json.Marshaler.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return []byte(strconv.FormatFloat(v, 'g', -1, 64)), nil
}

// UnmarshalJSON implements json.Unmarshaler: null round-trips back to NaN
// so clients (condense -watch) see "no observations", not a zero quantile.
func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = JSONFloat(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return err
	}
	*f = JSONFloat(v)
	return nil
}

// CounterSample is one counter's state in one window.
type CounterSample struct {
	// Value is the cumulative count at scrape time; Delta is the increase
	// since the previous scrape (the full value in the first window a
	// series appears in).
	Value uint64 `json:"value"`
	Delta uint64 `json:"delta"`
}

// HistogramSample is one histogram's state in one window. The quantiles
// are estimated from the observations that arrived during this window
// alone (bucket deltas, linear interpolation within a bucket, Prometheus
// histogram_quantile semantics) and are NaN when the window saw none.
type HistogramSample struct {
	Count      uint64    `json:"count"`
	CountDelta uint64    `json:"count_delta"`
	Sum        JSONFloat `json:"sum"`
	SumDelta   JSONFloat `json:"sum_delta"`
	P50        JSONFloat `json:"p50"`
	P95        JSONFloat `json:"p95"`
	P99        JSONFloat `json:"p99"`
}

// Window is one flight-recorder scrape: every registered series keyed by
// its id (family name plus rendered labels). The maps are frozen once the
// window is recorded — readers must not mutate them.
type Window struct {
	// Seq numbers windows from 1 in scrape order; Start and End bracket
	// the interval the deltas cover (Start is the previous scrape time, or
	// the recorder's first use).
	Seq        uint64                     `json:"seq"`
	Start      time.Time                  `json:"start"`
	End        time.Time                  `json:"end"`
	Counters   map[string]CounterSample   `json:"counters"`
	Gauges     map[string]JSONFloat       `json:"gauges"`
	Histograms map[string]HistogramSample `json:"histograms"`
}

// AddCollector registers a function run at the start of every scrape,
// before the registry is read — the hook for refreshing gauges that are
// derived from live state rather than updated inline (per-shard load
// gauges, uptime). Collectors run on the scraper goroutine, so their cost
// never lands on an ingest hot path.
func (r *Recorder) AddCollector(f func()) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, f)
	r.mu.Unlock()
}

// Scrape runs the collectors, snapshots the registry, computes this
// window's deltas and quantiles, commits the window to the ring, and
// returns it. Safe for concurrent use with metric writers; concurrent
// Scrape calls serialize.
func (r *Recorder) Scrape() Window {
	r.mu.Lock()
	collectors := r.collectors
	r.mu.Unlock()
	for _, f := range collectors {
		f()
	}
	snap := r.reg.Snapshot()
	now := time.Now()

	r.mu.Lock()
	defer r.mu.Unlock()
	start := r.lastScrape
	if start.IsZero() {
		start = now
	}
	r.lastScrape = now
	r.seq++
	w := Window{
		Seq:        r.seq,
		Start:      start,
		End:        now,
		Counters:   make(map[string]CounterSample),
		Gauges:     make(map[string]JSONFloat),
		Histograms: make(map[string]HistogramSample),
	}
	for _, s := range snap {
		id := s.ID()
		switch s.Kind {
		case "counter":
			v := uint64(s.Value)
			w.Counters[id] = CounterSample{Value: v, Delta: v - r.prevC[id]}
			r.prevC[id] = v
		case "gauge":
			w.Gauges[id] = JSONFloat(s.Value)
		case "histogram":
			prev := r.prevH[id]
			delta := make([]uint64, len(s.Buckets))
			for i, b := range s.Buckets {
				var p uint64
				if i < len(prev.buckets) {
					p = prev.buckets[i]
				}
				delta[i] = b - p
			}
			h := HistogramSample{
				Count:      s.Count,
				CountDelta: s.Count - prev.count,
				Sum:        JSONFloat(s.Sum),
				SumDelta:   JSONFloat(s.Sum - prev.sum),
				P50:        JSONFloat(histogramQuantile(s.Upper, delta, 0.50)),
				P95:        JSONFloat(histogramQuantile(s.Upper, delta, 0.95)),
				P99:        JSONFloat(histogramQuantile(s.Upper, delta, 0.99)),
			}
			w.Histograms[id] = h
			r.prevH[id] = histPrev{count: s.Count, sum: s.Sum, buckets: s.Buckets}
		}
	}
	if r.filled < len(r.ring) {
		r.filled++
	}
	r.ring[r.next] = w
	r.next = (r.next + 1) % len(r.ring)
	return w
}

// Run scrapes every interval until ctx is done, invoking after (when
// non-nil) with each completed window — the hook the health watchdog
// evaluates from. It blocks; callers run it on a dedicated goroutine.
func (r *Recorder) Run(ctx context.Context, every time.Duration, after func(Window)) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			w := r.Scrape()
			if after != nil {
				after(w)
			}
		}
	}
}

// Len returns the number of windows currently buffered.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.filled
}

// Capacity returns the ring capacity in windows.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// Seq returns the number of windows ever recorded (including evicted
// ones).
func (r *Recorder) Seq() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Windows returns up to last of the most recent windows, oldest first
// (last ≤ 0 returns everything buffered). The Window structs are copies
// but share their (frozen) maps with the ring.
func (r *Recorder) Windows(last int) []Window {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.filled
	if last > 0 && last < n {
		n = last
	}
	out := make([]Window, n)
	start := (r.next - n + len(r.ring)) % len(r.ring)
	for i := 0; i < n; i++ {
		out[i] = r.ring[(start+i)%len(r.ring)]
	}
	return out
}

// LastWindow returns the most recent window, if any.
func (r *Recorder) LastWindow() (Window, bool) {
	ws := r.Windows(1)
	if len(ws) == 0 {
		return Window{}, false
	}
	return ws[0], true
}

// GaugeSeries returns the gauge's value in each of the last n windows,
// oldest first, with NaN where the series was absent.
func (r *Recorder) GaugeSeries(series string, last int) []float64 {
	ws := r.Windows(last)
	out := make([]float64, len(ws))
	for i, w := range ws {
		v, ok := w.Gauges[series]
		if !ok {
			out[i] = math.NaN()
			continue
		}
		out[i] = float64(v)
	}
	return out
}

// CounterDeltaSeries returns the counter's per-window delta in each of
// the last n windows, oldest first, with NaN where the series was absent.
func (r *Recorder) CounterDeltaSeries(series string, last int) []float64 {
	ws := r.Windows(last)
	out := make([]float64, len(ws))
	for i, w := range ws {
		c, ok := w.Counters[series]
		if !ok {
			out[i] = math.NaN()
			continue
		}
		out[i] = float64(c.Delta)
	}
	return out
}

// QuantileSeries returns the histogram's windowed quantile (one of 0.5,
// 0.95, 0.99 — the quantiles the recorder precomputes) in each of the
// last n windows, oldest first. Windows where the series was absent or
// saw no observations carry NaN.
func (r *Recorder) QuantileSeries(series string, q float64, last int) []float64 {
	ws := r.Windows(last)
	out := make([]float64, len(ws))
	for i, w := range ws {
		h, ok := w.Histograms[series]
		if !ok {
			out[i] = math.NaN()
			continue
		}
		switch q {
		case 0.5:
			out[i] = float64(h.P50)
		case 0.95:
			out[i] = float64(h.P95)
		case 0.99:
			out[i] = float64(h.P99)
		default:
			out[i] = math.NaN()
		}
	}
	return out
}

// FilterWindow returns a copy of w restricted to the series matching any
// of the given selectors. A selector matches a series whose id equals it
// exactly, or whose family name equals it (i.e. the id is the selector
// followed by a {label} block) — so "condense_shard_records" selects the
// whole labeled family.
func FilterWindow(w Window, selectors []string) Window {
	match := func(id string) bool {
		for _, sel := range selectors {
			if id == sel || strings.HasPrefix(id, sel+"{") {
				return true
			}
		}
		return false
	}
	out := Window{
		Seq: w.Seq, Start: w.Start, End: w.End,
		Counters:   make(map[string]CounterSample),
		Gauges:     make(map[string]JSONFloat),
		Histograms: make(map[string]HistogramSample),
	}
	for id, c := range w.Counters {
		if match(id) {
			out.Counters[id] = c
		}
	}
	for id, g := range w.Gauges {
		if match(id) {
			out.Gauges[id] = g
		}
	}
	for id, h := range w.Histograms {
		if match(id) {
			out.Histograms[id] = h
		}
	}
	return out
}

// histogramQuantile estimates the q-quantile of the observations counted
// in buckets (len(upper)+1 counts, the last being the +Inf overflow),
// with Prometheus histogram_quantile semantics: the rank is located in
// the cumulative bucket counts and linearly interpolated inside its
// bucket, the first bucket interpolating from 0. A rank landing in the
// +Inf overflow returns the highest finite bound (the estimate cannot
// exceed what the buckets resolve); zero total observations return NaN.
func histogramQuantile(upper []float64, buckets []uint64, q float64) float64 {
	var total uint64
	for _, b := range buckets {
		total += b
	}
	if total == 0 || len(upper) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum float64
	for i, ub := range upper {
		prev := cum
		cum += float64(buckets[i])
		if cum >= rank {
			lo := 0.0
			if i > 0 {
				lo = upper[i-1]
			}
			if buckets[i] == 0 {
				return lo
			}
			return lo + (ub-lo)*(rank-prev)/float64(buckets[i])
		}
	}
	// The rank lies in the +Inf overflow mass.
	return upper[len(upper)-1]
}
