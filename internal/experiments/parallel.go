package experiments

import (
	"condensation/internal/par"
	"condensation/internal/rng"
)

// The experiment drivers in this package all share one loop shape: a grid
// of (group size × repetition) cells, each cell drawing its randomness
// from one root.Split() stream. The cells are mutually independent, so
// the engine pre-derives every cell's stream sequentially — in the exact
// order the sequential loop would have drawn them — and then executes the
// cells on a bounded worker pool, each writing its results into its own
// index of a results slice. The reduction back into table rows runs
// sequentially in cell order afterwards, so floating-point accumulation
// order is preserved and the output is bit-identical for every
// Parallelism setting. TestParallelEquivalence* prove this on every
// figure and study.

// presplit derives n child streams from root by calling Split in index
// order — the per-cell streams the sequential loop would have drawn.
func presplit(root *rng.Source, n int) []*rng.Source {
	out := make([]*rng.Source, n)
	for i := range out {
		out[i] = root.Split()
	}
	return out
}

// workers resolves the Config's evaluation parallelism (< 1 means
// runtime.NumCPU()).
func (c Config) workers() int { return par.Workers(c.Parallelism) }

// runCells fans n experiment cells out across the evaluation pool.
func (c Config) runCells(n int, fn func(i int) error) error {
	return par.Run(n, c.workers(), fn)
}
