package experiments

import (
	"log/slog"
	"time"

	"condensation/internal/par"
	"condensation/internal/rng"
)

// The experiment drivers in this package all share one loop shape: a grid
// of (group size × repetition) cells, each cell drawing its randomness
// from one root.Split() stream. The cells are mutually independent, so
// the engine pre-derives every cell's stream sequentially — in the exact
// order the sequential loop would have drawn them — and then executes the
// cells on a bounded worker pool, each writing its results into its own
// index of a results slice. The reduction back into table rows runs
// sequentially in cell order afterwards, so floating-point accumulation
// order is preserved and the output is bit-identical for every
// Parallelism setting. TestParallelEquivalence* prove this on every
// figure and study.

// presplit derives n child streams from root by calling Split in index
// order — the per-cell streams the sequential loop would have drawn.
func presplit(root *rng.Source, n int) []*rng.Source {
	out := make([]*rng.Source, n)
	for i := range out {
		out[i] = root.Split()
	}
	return out
}

// workers resolves the Config's evaluation parallelism (< 1 means
// runtime.NumCPU()).
func (c Config) workers() int { return par.Workers(c.Parallelism) }

// runCells fans n experiment cells out across the evaluation pool. With a
// Logger configured it reports structured progress as cells complete;
// progress is observe-only, so results stay bit-identical with logging on
// or off.
func (c Config) runCells(n int, fn func(i int) error) error {
	if c.Logger == nil {
		return par.Run(n, c.workers(), fn)
	}
	every := c.LogEvery
	if every < 1 {
		every = n / 10
		if every < 1 {
			every = 1
		}
	}
	start := time.Now()
	log := c.Logger
	return par.RunProgress(n, c.workers(), func(done int) {
		if done%every == 0 || done == n {
			log.Info("experiment progress",
				slog.Int("cells_done", done),
				slog.Int("cells_total", n),
				slog.Int("workers", c.workers()),
				slog.Duration("elapsed", time.Since(start).Round(time.Millisecond)))
		}
	}, fn)
}
