package experiments

import (
	"fmt"

	"condensation/internal/dataset"
	"condensation/internal/linreg"
	"condensation/internal/mat"
	"condensation/internal/rng"
)

// LinRegStudy is the regression counterpart of NaiveBayesStudy: ordinary
// least squares fitted on the raw records, directly from jointly condensed
// group statistics (moment-exact), and on synthesized anonymized records,
// scored by out-of-sample R². The first two columns must coincide.
func LinRegStudy(ds *dataset.Dataset, cfg Config) (*Table, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if ds.Task != dataset.Regression {
		return nil, fmt.Errorf("experiments: linear regression study needs regression data, got %v", ds.Task)
	}
	t := &Table{
		Title:   "Extension — OLS regression: records vs statistics-direct vs synthesized (R²)",
		Columns: []string{"k", "ols_original", "ols_from_stats", "ols_synthesized"},
	}
	root := rng.New(cfg.Seed)
	opts := linreg.Options{Ridge: 1e-9}
	reps := cfg.Repetitions
	type cell struct{ orig, direct, synth float64 }
	cells := make([]cell, len(cfg.GroupSizes)*reps)
	srcs := presplit(root, len(cells))
	err := cfg.runCells(len(cells), func(i int) error {
		k := cfg.GroupSizes[i/reps]
		r := srcs[i]
		train, test, err := ds.TrainTestSplit(cfg.TrainFraction, r)
		if err != nil {
			return err
		}
		mO, err := linreg.Train(train, opts)
		if err != nil {
			return err
		}
		r2O, err := mO.R2(test)
		if err != nil {
			return err
		}

		// Joint condensation: features ‖ target, once per k and rep.
		d := train.Dim()
		joint := make([]mat.Vector, train.Len())
		for i, x := range train.X {
			row := make(mat.Vector, d+1)
			copy(row, x)
			row[d] = train.Targets[i]
			joint[i] = row
		}
		condenser, err := cfg.condenser(k, r.Split())
		if err != nil {
			return err
		}
		cond, err := condenser.Static(joint)
		if err != nil {
			return err
		}
		mD, err := linreg.FromGroups(cond.Groups(), opts)
		if err != nil {
			return err
		}
		r2D, err := mD.R2(test)
		if err != nil {
			return err
		}

		pts, err := cond.Synthesize(r.Split())
		if err != nil {
			return err
		}
		anon := &dataset.Dataset{Task: dataset.Regression, Attrs: train.Attrs}
		for _, row := range pts {
			if err := anon.Append(row[:d].Clone(), 0, row[d]); err != nil {
				return err
			}
		}
		mS, err := linreg.Train(anon, opts)
		if err != nil {
			return err
		}
		r2S, err := mS.R2(test)
		if err != nil {
			return err
		}

		cells[i] = cell{orig: r2O, direct: r2D, synth: r2S}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range cfg.GroupSizes {
		var orig, direct, synth float64
		for rep := 0; rep < reps; rep++ {
			c := cells[ki*reps+rep]
			orig += c.orig
			direct += c.direct
			synth += c.synth
		}
		n := float64(reps)
		if err := t.AddRow(d(k), f(orig/n), f(direct/n), f(synth/n)); err != nil {
			return nil, err
		}
	}
	return t, nil
}
