package experiments

import (
	"fmt"

	"condensation/internal/assoc"
	"condensation/internal/core"
	"condensation/internal/dataset"
	"condensation/internal/discretize"
	"condensation/internal/rng"
	"condensation/internal/tree"
)

// TreeStudy runs the unmodified CART decision tree on original and on
// condensation-anonymized training data — a second classifier family
// supporting the paper's claim that condensed data needs no
// algorithm-specific redesign. The tree options mirror sensible defaults;
// both sides are scored on untouched test data.
func TreeStudy(ds *dataset.Dataset, cfg Config) (*Table, error) {
	cfg.fill()
	if ds.Task != dataset.Classification {
		return nil, fmt.Errorf("experiments: tree study needs classification data, got %v", ds.Task)
	}
	t := &Table{
		Title:   "Extension — unmodified decision tree on condensed data",
		Columns: []string{"k", "tree_original", "tree_static", "tree_dynamic"},
	}
	root := rng.New(cfg.Seed)
	treeOpts := tree.Options{MaxDepth: 8, MinLeaf: 5}
	for _, k := range cfg.GroupSizes {
		var orig, static, dynamic float64
		for rep := 0; rep < cfg.Repetitions; rep++ {
			r := root.Split()
			train, test, err := ds.TrainTestSplit(cfg.TrainFraction, r)
			if err != nil {
				return nil, err
			}
			o, err := treeAccuracy(train, test, treeOpts)
			if err != nil {
				return nil, err
			}
			orig += o
			for _, mode := range []core.Mode{core.ModeStatic, core.ModeDynamic} {
				anon, _, err := core.Anonymize(train, cfg.anonymizeConfig(k, mode), r.Split())
				if err != nil {
					return nil, err
				}
				acc, err := treeAccuracy(anon, test, treeOpts)
				if err != nil {
					return nil, err
				}
				if mode == core.ModeStatic {
					static += acc
				} else {
					dynamic += acc
				}
			}
		}
		reps := float64(cfg.Repetitions)
		if err := t.AddRow(d(k), f(orig/reps), f(static/reps), f(dynamic/reps)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func treeAccuracy(train, test *dataset.Dataset, opts tree.Options) (float64, error) {
	c, err := tree.Train(train, opts)
	if err != nil {
		return 0, err
	}
	return c.Accuracy(test)
}

// AssociationStudy mines association rules (equi-depth discretization +
// Apriori) from the original data and from its anonymized counterpart and
// reports how well the rule sets agree — the paper cites association-rule
// mining as a problem requiring bespoke redesign under perturbation,
// whereas here the standard pipeline runs unchanged on condensed records.
func AssociationStudy(ds *dataset.Dataset, bins int, minSupport, minConfidence float64, cfg Config) (*Table, error) {
	cfg.fill()
	if bins < 2 {
		return nil, fmt.Errorf("experiments: %d bins", bins)
	}
	t := &Table{
		Title: fmt.Sprintf("Extension — association rules on condensed data (bins=%d, sup≥%.2f, conf≥%.2f)",
			bins, minSupport, minConfidence),
		Columns: []string{"k", "rules_original", "rules_anonymized", "jaccard"},
	}
	root := rng.New(cfg.Seed)

	origRules, err := mineRules(ds, bins, minSupport, minConfidence)
	if err != nil {
		return nil, err
	}
	for _, k := range cfg.GroupSizes {
		var jaccard, anonCount float64
		for rep := 0; rep < cfg.Repetitions; rep++ {
			anon, _, err := core.Anonymize(ds, cfg.anonymizeConfig(k, core.ModeStatic), root.Split())
			if err != nil {
				return nil, err
			}
			anonRules, err := mineRules(anon, bins, minSupport, minConfidence)
			if err != nil {
				return nil, err
			}
			jaccard += assoc.RuleSetJaccard(origRules, anonRules)
			anonCount += float64(len(anonRules))
		}
		reps := float64(cfg.Repetitions)
		if err := t.AddRow(d(k), d(len(origRules)), f1(anonCount/reps), f(jaccard/reps)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// mineRules discretizes a data set's records and mines association rules.
// Discretization is refit per data set, matching how an analyst would
// treat the anonymized release as a standalone data set.
func mineRules(ds *dataset.Dataset, bins int, minSupport, minConfidence float64) ([]assoc.Rule, error) {
	dz, err := discretize.EquiDepth(ds.X, bins)
	if err != nil {
		return nil, err
	}
	txs, err := dz.ItemsAll(ds.X)
	if err != nil {
		return nil, err
	}
	freq, err := assoc.Apriori(txs, minSupport)
	if err != nil {
		return nil, err
	}
	return assoc.Rules(freq, minConfidence)
}
