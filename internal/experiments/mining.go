package experiments

import (
	"fmt"

	"condensation/internal/assoc"
	"condensation/internal/core"
	"condensation/internal/dataset"
	"condensation/internal/discretize"
	"condensation/internal/rng"
	"condensation/internal/tree"
)

// TreeStudy runs the unmodified CART decision tree on original and on
// condensation-anonymized training data — a second classifier family
// supporting the paper's claim that condensed data needs no
// algorithm-specific redesign. The tree options mirror sensible defaults;
// both sides are scored on untouched test data.
func TreeStudy(ds *dataset.Dataset, cfg Config) (*Table, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if ds.Task != dataset.Classification {
		return nil, fmt.Errorf("experiments: tree study needs classification data, got %v", ds.Task)
	}
	t := &Table{
		Title:   "Extension — unmodified decision tree on condensed data",
		Columns: []string{"k", "tree_original", "tree_static", "tree_dynamic"},
	}
	root := rng.New(cfg.Seed)
	treeOpts := tree.Options{MaxDepth: 8, MinLeaf: 5}
	reps := cfg.Repetitions
	type cell struct{ orig, static, dynamic float64 }
	cells := make([]cell, len(cfg.GroupSizes)*reps)
	srcs := presplit(root, len(cells))
	err := cfg.runCells(len(cells), func(i int) error {
		k := cfg.GroupSizes[i/reps]
		r := srcs[i]
		train, test, err := ds.TrainTestSplit(cfg.TrainFraction, r)
		if err != nil {
			return err
		}
		o, err := treeAccuracy(train, test, treeOpts)
		if err != nil {
			return err
		}
		cells[i].orig = o
		for _, mode := range []core.Mode{core.ModeStatic, core.ModeDynamic} {
			anon, _, err := core.Anonymize(train, cfg.anonymizeConfig(k, mode), r.Split())
			if err != nil {
				return err
			}
			acc, err := treeAccuracy(anon, test, treeOpts)
			if err != nil {
				return err
			}
			if mode == core.ModeStatic {
				cells[i].static = acc
			} else {
				cells[i].dynamic = acc
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range cfg.GroupSizes {
		var orig, static, dynamic float64
		for rep := 0; rep < reps; rep++ {
			c := cells[ki*reps+rep]
			orig += c.orig
			static += c.static
			dynamic += c.dynamic
		}
		n := float64(reps)
		if err := t.AddRow(d(k), f(orig/n), f(static/n), f(dynamic/n)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func treeAccuracy(train, test *dataset.Dataset, opts tree.Options) (float64, error) {
	c, err := tree.Train(train, opts)
	if err != nil {
		return 0, err
	}
	return c.Accuracy(test)
}

// AssociationStudy mines association rules (equi-depth discretization +
// Apriori) from the original data and from its anonymized counterpart and
// reports how well the rule sets agree — the paper cites association-rule
// mining as a problem requiring bespoke redesign under perturbation,
// whereas here the standard pipeline runs unchanged on condensed records.
func AssociationStudy(ds *dataset.Dataset, bins int, minSupport, minConfidence float64, cfg Config) (*Table, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if bins < 2 {
		return nil, fmt.Errorf("experiments: %d bins", bins)
	}
	t := &Table{
		Title: fmt.Sprintf("Extension — association rules on condensed data (bins=%d, sup≥%.2f, conf≥%.2f)",
			bins, minSupport, minConfidence),
		Columns: []string{"k", "rules_original", "rules_anonymized", "jaccard"},
	}
	root := rng.New(cfg.Seed)

	origRules, err := mineRules(ds, bins, minSupport, minConfidence)
	if err != nil {
		return nil, err
	}
	reps := cfg.Repetitions
	type cell struct{ jaccard, anonCount float64 }
	cells := make([]cell, len(cfg.GroupSizes)*reps)
	srcs := presplit(root, len(cells))
	err = cfg.runCells(len(cells), func(i int) error {
		k := cfg.GroupSizes[i/reps]
		anon, _, err := core.Anonymize(ds, cfg.anonymizeConfig(k, core.ModeStatic), srcs[i])
		if err != nil {
			return err
		}
		anonRules, err := mineRules(anon, bins, minSupport, minConfidence)
		if err != nil {
			return err
		}
		cells[i] = cell{jaccard: assoc.RuleSetJaccard(origRules, anonRules), anonCount: float64(len(anonRules))}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range cfg.GroupSizes {
		var jaccard, anonCount float64
		for rep := 0; rep < reps; rep++ {
			c := cells[ki*reps+rep]
			jaccard += c.jaccard
			anonCount += c.anonCount
		}
		n := float64(reps)
		if err := t.AddRow(d(k), d(len(origRules)), f1(anonCount/n), f(jaccard/n)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// mineRules discretizes a data set's records and mines association rules.
// Discretization is refit per data set, matching how an analyst would
// treat the anonymized release as a standalone data set.
func mineRules(ds *dataset.Dataset, bins int, minSupport, minConfidence float64) ([]assoc.Rule, error) {
	dz, err := discretize.EquiDepth(ds.X, bins)
	if err != nil {
		return nil, err
	}
	txs, err := dz.ItemsAll(ds.X)
	if err != nil {
		return nil, err
	}
	freq, err := assoc.Apriori(txs, minSupport)
	if err != nil {
		return nil, err
	}
	return assoc.Rules(freq, minConfidence)
}
