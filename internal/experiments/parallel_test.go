package experiments

import (
	"reflect"
	"strings"
	"testing"

	"condensation/internal/dataset"
)

// withPar returns the fast test config with an explicit parallelism.
func withPar(p int) Config {
	cfg := fastConfig()
	cfg.Parallelism = p
	return cfg
}

// figureData picks a small data set of the task the panel's data set
// implies (abalone is the regression panel).
func figureData(fig Figure) *dataset.Dataset {
	if fig.Dataset == "abalone" {
		return smallRegression(40)
	}
	return smallClassification(40)
}

// TestParallelEquivalenceFigures is the tentpole's determinism proof for
// the figure panels: every figure's table must be bit-identical between
// the sequential path (Parallelism=1), an oversubscribed pool
// (Parallelism=8 on any machine), and the NumCPU default (Parallelism=0).
func TestParallelEquivalenceFigures(t *testing.T) {
	for _, id := range FigureIDs() {
		fig, err := LookupFigure(id)
		if err != nil {
			t.Fatal(err)
		}
		ds := figureData(fig)
		seq, err := RunFigureOn(fig, ds, withPar(1))
		if err != nil {
			t.Fatalf("%s sequential: %v", id, err)
		}
		for _, p := range []int{0, 8} {
			got, err := RunFigureOn(fig, ds, withPar(p))
			if err != nil {
				t.Fatalf("%s parallelism %d: %v", id, p, err)
			}
			if !reflect.DeepEqual(seq, got) {
				t.Errorf("figure %s: parallelism %d table differs from sequential\nseq: %v\ngot: %v",
					id, p, seq.Rows, got.Rows)
			}
		}
	}
}

// TestParallelEquivalenceStudies extends the proof to every study and
// baseline driver in the package.
func TestParallelEquivalenceStudies(t *testing.T) {
	cls := smallClassification(42)
	reg := smallRegression(43)
	studies := []struct {
		name string
		run  func(cfg Config) (interface{}, error)
	}{
		{"SplitAxisAblation", func(cfg Config) (interface{}, error) { return SplitAxisAblation(cls, cfg) }},
		{"SynthesisAblation", func(cfg Config) (interface{}, error) { return SynthesisAblation(cls, cfg) }},
		{"LeftoverAblation", func(cfg Config) (interface{}, error) {
			cfg.GroupSizes = []int{7} // leaves leftovers
			return LeftoverAblation(cls, cfg)
		}},
		{"ClusteringStudy", func(cfg Config) (interface{}, error) { return ClusteringStudy(cls, 2, cfg) }},
		{"CompatibilityOnly", func(cfg Config) (interface{}, error) { return CompatibilityOnly(cls, cfg, 0) }},
		{"PerturbationComparison", func(cfg Config) (interface{}, error) {
			return PerturbationComparison(cls, []float64{0.5}, cfg)
		}},
		{"KAnonymityComparison", func(cfg Config) (interface{}, error) { return KAnonymityComparison(cls, cfg) }},
		{"AttackStudy", func(cfg Config) (interface{}, error) { return AttackStudy(cls, cfg) }},
		{"TreeStudy", func(cfg Config) (interface{}, error) { return TreeStudy(cls, cfg) }},
		{"AssociationStudy", func(cfg Config) (interface{}, error) {
			return AssociationStudy(cls, 3, 0.2, 0.6, cfg)
		}},
		{"ScalingStudy", func(cfg Config) (interface{}, error) { return ScalingStudy(5, []int{60, 120}, cfg) }},
		{"FidelityStudy", func(cfg Config) (interface{}, error) {
			cfg.GroupSizes = []int{10}
			return FidelityStudy("ecoli", cfg)
		}},
		{"NaiveBayesStudy", func(cfg Config) (interface{}, error) { return NaiveBayesStudy(cls, cfg) }},
		{"LinRegStudy", func(cfg Config) (interface{}, error) { return LinRegStudy(reg, cfg) }},
	}
	for _, s := range studies {
		seq, err := s.run(withPar(1))
		if err != nil {
			t.Fatalf("%s sequential: %v", s.name, err)
		}
		par, err := s.run(withPar(8))
		if err != nil {
			t.Fatalf("%s parallel: %v", s.name, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%s: parallel result differs from sequential\nseq: %+v\npar: %+v", s.name, seq, par)
		}
	}
}

// TestNegativeParallelismRejected pins the config contract: negative
// Parallelism is an explicit error, not a silent coercion like the other
// Config fields.
func TestNegativeParallelismRejected(t *testing.T) {
	cfg := fastConfig()
	cfg.Parallelism = -1
	if _, err := AccuracyCurve(smallClassification(44), cfg); err == nil || !strings.Contains(err.Error(), "Parallelism") {
		t.Errorf("AccuracyCurve with Parallelism=-1: err = %v, want Parallelism error", err)
	}
	if _, err := ScalingStudy(5, []int{60}, cfg); err == nil {
		t.Error("ScalingStudy accepted negative Parallelism")
	}
	if _, err := TreeStudy(smallClassification(44), cfg); err == nil {
		t.Error("TreeStudy accepted negative Parallelism")
	}
}

// TestParallelismZeroAndPositiveAccepted pins the documented defaulting:
// 0 (use NumCPU) and explicit worker counts both pass validation.
func TestParallelismZeroAndPositiveAccepted(t *testing.T) {
	for _, p := range []int{0, 1, 8} {
		cfg := withPar(p)
		if err := cfg.fill(); err != nil {
			t.Errorf("fill() with Parallelism=%d: %v", p, err)
		}
	}
}

// TestAccuracyCurveRace drives the full evaluation fan-out with an
// oversubscribed pool; `go test -race` (run in CI) turns any unsynchronized
// shared access in the cell workers into a failure.
func TestAccuracyCurveRace(t *testing.T) {
	if _, err := AccuracyCurve(smallClassification(45), withPar(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := CompatibilityCurve(smallClassification(45), withPar(8)); err != nil {
		t.Fatal(err)
	}
}
