package experiments

import (
	"errors"
	"fmt"
	"log/slog"

	"condensation/internal/core"
	"condensation/internal/dataset"
	"condensation/internal/knn"
	"condensation/internal/metrics"
	"condensation/internal/rng"
)

// Config tunes the figure-regeneration experiments.
type Config struct {
	// Seed makes the whole experiment deterministic.
	Seed uint64
	// GroupSizes is the x-axis of every figure: the indistinguishability
	// levels k to sweep. Defaults to the paper's visible range.
	GroupSizes []int
	// TrainFraction is the train/test split ratio. Values outside the
	// open interval (0, 1) — including the zero value — are silently
	// coerced to the default 0.75.
	TrainFraction float64
	// Repetitions averages each point over this many independent splits
	// and condensations, smoothing sampling noise. Values < 1 are
	// silently coerced to the default 3.
	Repetitions int
	// ClassifierK is the nearest-neighbour k (the paper's "class label of
	// the closest record"). Values < 1 are silently coerced to the
	// default 1.
	ClassifierK int
	// Tolerance is the regression hit tolerance (the paper's "within one
	// year" for Abalone). Values <= 0 are silently coerced to the
	// default 1.
	Tolerance float64
	// InitialFraction is passed through to dynamic condensation.
	InitialFraction float64
	// Options tunes the condensation itself (synthesis, split axis, ...).
	Options core.Options
	// Search selects the static neighbour-search backend (default auto).
	Search core.NeighborSearch
	// Parallelism bounds the worker goroutines of the whole evaluation
	// stack: the (k × repetitions) experiment cell pool, the k-NN
	// PredictAll sweep, per-group synthesis, and the static distance
	// sweep. 0 (the zero value) means runtime.NumCPU(); negative values
	// are rejected with an error rather than coerced, because a negative
	// count is always a caller bug. Results are bit-identical for every
	// setting.
	Parallelism int
	// Logger, when set, receives structured progress events as experiment
	// cells complete, so long runs are not silent. Logging is observe-only
	// and never changes results.
	Logger *slog.Logger
	// LogEvery is the progress cadence in completed cells; values < 1 mean
	// a tenth of the grid (at least 1). Ignored without a Logger.
	LogEvery int
}

// anonymizeConfig assembles the core anonymization config for one
// (k, mode) cell of a study.
func (c Config) anonymizeConfig(k int, mode core.Mode) core.AnonymizeConfig {
	return core.AnonymizeConfig{
		K:               k,
		Mode:            mode,
		Options:         c.Options,
		InitialFraction: c.InitialFraction,
		Search:          c.Search,
		Parallelism:     c.Parallelism,
	}
}

// condenser builds the Condenser facade for one k, drawing randomness
// from r so repetitions stay independent.
func (c Config) condenser(k int, r *rng.Source) (*core.Condenser, error) {
	return core.NewCondenser(k,
		core.WithRandomSource(r),
		core.WithOptions(c.Options),
		core.WithNeighborSearch(c.Search),
		core.WithParallelism(c.Parallelism))
}

// fill applies the documented defaults in place. Unlike the coerced
// fields, a negative Parallelism is rejected explicitly: it can only be a
// caller bug, and silently running sequentially would hide it.
func (c *Config) fill() error {
	if c.Parallelism < 0 {
		return fmt.Errorf("experiments: Parallelism = %d, must be ≥ 0 (0 means runtime.NumCPU())", c.Parallelism)
	}
	if len(c.GroupSizes) == 0 {
		c.GroupSizes = []int{2, 5, 10, 15, 20, 25, 30, 40, 50}
	}
	if c.TrainFraction <= 0 || c.TrainFraction >= 1 {
		c.TrainFraction = 0.75
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 3
	}
	if c.ClassifierK <= 0 {
		c.ClassifierK = 1
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1
	}
	return nil
}

// AccuracyPoint is one x-position of a figure's panel (a).
type AccuracyPoint struct {
	// K is the requested indistinguishability level.
	K int
	// AvgGroupSize is the achieved average group size (the paper's
	// x-coordinate).
	AvgGroupSize float64
	// Static, Dynamic, and Original are the three accuracy series.
	Static, Dynamic, Original float64
}

// CompatPoint is one x-position of a figure's panel (b).
type CompatPoint struct {
	// K is the requested indistinguishability level.
	K int
	// AvgGroupSize is the achieved average group size.
	AvgGroupSize float64
	// Static and Dynamic are the covariance compatibility µ series.
	Static, Dynamic float64
}

// AccuracyCurve reproduces a figure's panel (a): classifier accuracy as a
// function of the average condensation group size, with static
// condensation, dynamic condensation, and the no-perturbation original as
// the three series. The classifier is trained on (possibly anonymized)
// training data and always evaluated on untouched original test data.
func AccuracyCurve(ds *dataset.Dataset, cfg Config) ([]AccuracyPoint, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	root := rng.New(cfg.Seed)
	reps := cfg.Repetitions
	type cell struct{ orig, static, dynamic, avg float64 }
	cells := make([]cell, len(cfg.GroupSizes)*reps)
	srcs := presplit(root, len(cells))
	err := cfg.runCells(len(cells), func(i int) error {
		k := cfg.GroupSizes[i/reps]
		r := srcs[i]
		train, test, err := ds.TrainTestSplit(cfg.TrainFraction, r)
		if err != nil {
			return err
		}
		orig, err := evaluate(train, test, cfg)
		if err != nil {
			return err
		}
		staticAcc, _, err := anonymizeAndEvaluate(train, test, cfg, k, core.ModeStatic, r)
		if err != nil {
			return err
		}
		dynAcc, avg, err := anonymizeAndEvaluate(train, test, cfg, k, core.ModeDynamic, r)
		if err != nil {
			return err
		}
		cells[i] = cell{orig: orig, static: staticAcc, dynamic: dynAcc, avg: avg}
		return nil
	})
	if err != nil {
		return nil, err
	}
	points := make([]AccuracyPoint, 0, len(cfg.GroupSizes))
	for ki, k := range cfg.GroupSizes {
		point := AccuracyPoint{K: k}
		var avgSum float64
		for rep := 0; rep < reps; rep++ {
			c := cells[ki*reps+rep]
			point.Original += c.orig
			point.Static += c.static
			point.Dynamic += c.dynamic
			avgSum += c.avg
		}
		n := float64(reps)
		point.Original /= n
		point.Static /= n
		point.Dynamic /= n
		point.AvgGroupSize = avgSum / n
		points = append(points, point)
	}
	return points, nil
}

// anonymizeAndEvaluate condenses the training data at level k in the given
// mode and scores the resulting classifier on the original test data.
func anonymizeAndEvaluate(train, test *dataset.Dataset, cfg Config, k int, mode core.Mode, r *rng.Source) (acc, avgGroupSize float64, err error) {
	anon, report, err := core.Anonymize(train, cfg.anonymizeConfig(k, mode), r)
	if err != nil {
		return 0, 0, err
	}
	acc, err = evaluate(anon, test, cfg)
	if err != nil {
		return 0, 0, err
	}
	return acc, report.AvgGroupSize(), nil
}

// evaluate trains the paper's classifier (or regressor) on train and
// scores it on test: accuracy for classification, within-tolerance rate
// for regression. The scoring sweep inherits cfg.Parallelism; predictions
// are pure functions of the fitted model, so the parallel sweep changes
// nothing but wall-clock time.
func evaluate(train, test *dataset.Dataset, cfg Config) (float64, error) {
	switch train.Task {
	case dataset.Classification:
		clf, err := knn.NewClassifier(train, cfg.ClassifierK)
		if err != nil {
			return 0, err
		}
		clf.SetParallelism(cfg.Parallelism)
		preds, err := clf.PredictAll(test)
		if err != nil {
			return 0, err
		}
		return metrics.Accuracy(preds, test.Labels)
	case dataset.Regression:
		reg, err := knn.NewRegressor(train, cfg.ClassifierK)
		if err != nil {
			return 0, err
		}
		reg.SetParallelism(cfg.Parallelism)
		preds, err := reg.PredictAll(test)
		if err != nil {
			return 0, err
		}
		return metrics.WithinTolerance(preds, test.Targets, cfg.Tolerance)
	default:
		return 0, fmt.Errorf("experiments: unsupported task %v", train.Task)
	}
}

// CompatibilityCurve reproduces a figure's panel (b): the covariance
// compatibility coefficient µ between the original data set and its
// anonymized counterpart, for static and dynamic condensation, as a
// function of average group size. Per the paper, the comparison is over
// the whole data set's covariance structure.
func CompatibilityCurve(ds *dataset.Dataset, cfg Config) ([]CompatPoint, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	if ds.Len() == 0 {
		return nil, errors.New("experiments: empty data set")
	}
	root := rng.New(cfg.Seed)
	reps := cfg.Repetitions
	type cell struct{ static, dynamic, avg float64 }
	cells := make([]cell, len(cfg.GroupSizes)*reps)
	srcs := presplit(root, len(cells))
	err := cfg.runCells(len(cells), func(i int) error {
		k := cfg.GroupSizes[i/reps]
		r := srcs[i]
		muStatic, _, err := anonymizeAndCompare(ds, cfg, k, core.ModeStatic, r)
		if err != nil {
			return err
		}
		muDynamic, avg, err := anonymizeAndCompare(ds, cfg, k, core.ModeDynamic, r)
		if err != nil {
			return err
		}
		cells[i] = cell{static: muStatic, dynamic: muDynamic, avg: avg}
		return nil
	})
	if err != nil {
		return nil, err
	}
	points := make([]CompatPoint, 0, len(cfg.GroupSizes))
	for ki, k := range cfg.GroupSizes {
		point := CompatPoint{K: k}
		var avgSum float64
		for rep := 0; rep < reps; rep++ {
			c := cells[ki*reps+rep]
			point.Static += c.static
			point.Dynamic += c.dynamic
			avgSum += c.avg
		}
		n := float64(reps)
		point.Static /= n
		point.Dynamic /= n
		point.AvgGroupSize = avgSum / n
		points = append(points, point)
	}
	return points, nil
}

// anonymizeAndCompare anonymizes the full data set and computes µ between
// original and anonymized records.
func anonymizeAndCompare(ds *dataset.Dataset, cfg Config, k int, mode core.Mode, r *rng.Source) (mu, avgGroupSize float64, err error) {
	anon, report, err := core.Anonymize(ds, cfg.anonymizeConfig(k, mode), r)
	if err != nil {
		return 0, 0, err
	}
	mu, err = metrics.CovarianceCompatibility(ds.X, anon.X)
	if err != nil {
		return 0, 0, err
	}
	return mu, report.AvgGroupSize(), nil
}

// AccuracyTable renders an accuracy curve as a figure table.
func AccuracyTable(title string, points []AccuracyPoint) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"k", "avg_group_size", "static_accuracy", "dynamic_accuracy", "original_accuracy"},
	}
	for _, p := range points {
		// Row shapes are fixed here, so AddRow cannot fail.
		_ = t.AddRow(d(p.K), f1(p.AvgGroupSize), f(p.Static), f(p.Dynamic), f(p.Original))
	}
	return t
}

// CompatibilityTable renders a compatibility curve as a figure table.
func CompatibilityTable(title string, points []CompatPoint) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"k", "avg_group_size", "static_mu", "dynamic_mu"},
	}
	for _, p := range points {
		_ = t.AddRow(d(p.K), f1(p.AvgGroupSize), f(p.Static), f(p.Dynamic))
	}
	return t
}
