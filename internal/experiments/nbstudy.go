package experiments

import (
	"fmt"

	"condensation/internal/dataset"
	"condensation/internal/mat"
	"condensation/internal/nb"
	"condensation/internal/rng"
	"condensation/internal/stats"
)

// NaiveBayesStudy compares three ways of fitting the same Gaussian naive
// Bayes model under condensation:
//
//	original    — fitted on the raw training records (no privacy),
//	from-stats  — fitted *directly from the condensed group statistics*,
//	              no synthesis step (moment-exact: merging groups recovers
//	              the per-class moments the model needs),
//	synthesized — fitted on the anonymized records, the paper's standard
//	              "existing algorithm on regenerated data" route.
//
// The first two columns should agree to round-off at every k (the study's
// point); the third shows the extra noise synthesis adds for moment-based
// learners.
func NaiveBayesStudy(ds *dataset.Dataset, cfg Config) (*Table, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if ds.Task != dataset.Classification {
		return nil, fmt.Errorf("experiments: naive Bayes study needs classification data, got %v", ds.Task)
	}
	t := &Table{
		Title:   "Extension — Gaussian naive Bayes: records vs statistics-direct vs synthesized",
		Columns: []string{"k", "nb_original", "nb_from_stats", "nb_synthesized"},
	}
	root := rng.New(cfg.Seed)
	reps := cfg.Repetitions
	type cell struct{ orig, direct, synth float64 }
	cells := make([]cell, len(cfg.GroupSizes)*reps)
	srcs := presplit(root, len(cells))
	err := cfg.runCells(len(cells), func(i int) error {
		k := cfg.GroupSizes[i/reps]
		r := srcs[i]
		train, test, err := ds.TrainTestSplit(cfg.TrainFraction, r)
		if err != nil {
			return err
		}

		clfO, err := nb.Train(train)
		if err != nil {
			return err
		}
		accO, err := clfO.Accuracy(test)
		if err != nil {
			return err
		}

		// Condense per class once, in ascending label order so every class
		// receives the same r.Split() stream on every run (map iteration
		// order would shuffle the streams between runs); reuse for both
		// privacy paths.
		classGroups := make(map[int][]*stats.Group)
		anon := &dataset.Dataset{Task: dataset.Classification, Attrs: train.Attrs, ClassNames: train.ClassNames}
		byClass := train.ByClass()
		for label := 0; label < train.NumClasses(); label++ {
			idx := byClass[label]
			if len(idx) == 0 {
				continue
			}
			recs := make([]mat.Vector, len(idx))
			for i, ri := range idx {
				recs[i] = train.X[ri]
			}
			condenser, err := cfg.condenser(k, r.Split())
			if err != nil {
				return err
			}
			cond, err := condenser.Static(recs)
			if err != nil {
				return err
			}
			classGroups[label] = cond.Groups()
			pts, err := cond.Synthesize(r.Split())
			if err != nil {
				return err
			}
			for _, x := range pts {
				if err := anon.Append(x, label, 0); err != nil {
					return err
				}
			}
		}

		clfD, err := nb.FromGroups(train.NumClasses(), classGroups)
		if err != nil {
			return err
		}
		accD, err := clfD.Accuracy(test)
		if err != nil {
			return err
		}

		clfS, err := nb.Train(anon)
		if err != nil {
			return err
		}
		accS, err := clfS.Accuracy(test)
		if err != nil {
			return err
		}

		cells[i] = cell{orig: accO, direct: accD, synth: accS}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range cfg.GroupSizes {
		var orig, direct, synth float64
		for rep := 0; rep < reps; rep++ {
			c := cells[ki*reps+rep]
			orig += c.orig
			direct += c.direct
			synth += c.synth
		}
		n := float64(reps)
		if err := t.AddRow(d(k), f(orig/n), f(direct/n), f(synth/n)); err != nil {
			return nil, err
		}
	}
	return t, nil
}
