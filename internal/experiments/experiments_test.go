package experiments

import (
	"bytes"
	"strings"
	"testing"

	"condensation/internal/datagen"
	"condensation/internal/dataset"
	"condensation/internal/mat"
	"condensation/internal/rng"
)

// fastConfig keeps test experiments small.
func fastConfig() Config {
	return Config{Seed: 1, GroupSizes: []int{2, 5, 10}, Repetitions: 1}
}

func smallClassification(seed uint64) *dataset.Dataset {
	return datagen.TwoGaussians(seed, 60, 3, 6)
}

func smallRegression(seed uint64) *dataset.Dataset {
	r := rng.New(seed)
	ds := &dataset.Dataset{Name: "reg", Task: dataset.Regression, Attrs: []string{"x", "y"}}
	for i := 0; i < 120; i++ {
		x := r.Uniform(0, 10)
		ds.X = append(ds.X, mat.Vector{x, x + r.Norm()})
		ds.Targets = append(ds.Targets, x+r.NormMeanStd(0, 0.3))
	}
	return ds
}

func TestAccuracyCurveShape(t *testing.T) {
	points, err := AccuracyCurve(smallClassification(1), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points, want 3", len(points))
	}
	for _, p := range points {
		if p.AvgGroupSize < float64(p.K) {
			t.Errorf("k=%d: achieved group size %g < k", p.K, p.AvgGroupSize)
		}
		for name, acc := range map[string]float64{"static": p.Static, "dynamic": p.Dynamic, "original": p.Original} {
			if acc < 0 || acc > 1 {
				t.Errorf("k=%d: %s accuracy %g outside [0,1]", p.K, name, acc)
			}
		}
	}
}

func TestAccuracyCurveSeparableStaysHigh(t *testing.T) {
	// On well-separated classes, condensation must not destroy accuracy.
	points, err := AccuracyCurve(smallClassification(2), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Static < 0.85 {
			t.Errorf("k=%d: static accuracy %g on separable data", p.K, p.Static)
		}
		if p.Original < 0.9 {
			t.Errorf("original accuracy %g on separable data", p.Original)
		}
	}
}

func TestAccuracyCurveK1MatchesOriginal(t *testing.T) {
	// The paper's anchor: static condensation at group size 1 is the
	// original data, so the accuracies coincide exactly.
	cfg := fastConfig()
	cfg.GroupSizes = []int{1}
	points, err := AccuracyCurve(smallClassification(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Static != points[0].Original {
		t.Errorf("k=1 static %g != original %g", points[0].Static, points[0].Original)
	}
}

func TestAccuracyCurveRegression(t *testing.T) {
	points, err := AccuracyCurve(smallRegression(4), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Original <= 0.2 {
			t.Errorf("regression original within-tolerance %g too low", p.Original)
		}
	}
}

func TestCompatibilityCurve(t *testing.T) {
	points, err := CompatibilityCurve(smallClassification(5), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Static < 0.9 {
			t.Errorf("k=%d: static µ = %g, want > 0.9", p.K, p.Static)
		}
		if p.Dynamic < 0.5 {
			t.Errorf("k=%d: dynamic µ = %g, want > 0.5", p.K, p.Dynamic)
		}
		if p.Static > 1+1e-9 || p.Dynamic > 1+1e-9 {
			t.Errorf("k=%d: µ above 1", p.K)
		}
	}
}

func TestCurvesValidateInput(t *testing.T) {
	bad := smallClassification(6)
	bad.Labels = bad.Labels[:3]
	if _, err := AccuracyCurve(bad, fastConfig()); err == nil {
		t.Error("invalid data set accepted by AccuracyCurve")
	}
	if _, err := CompatibilityCurve(bad, fastConfig()); err == nil {
		t.Error("invalid data set accepted by CompatibilityCurve")
	}
}

func TestRunFigureOnBothPanels(t *testing.T) {
	ds := smallClassification(7)
	fig := Figure{ID: "test-a", Dataset: "toy", Panel: 'a', Caption: "test"}
	table, err := RunFigureOn(fig, ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Errorf("%d rows", len(table.Rows))
	}
	fig.Panel = 'b'
	table, err = RunFigureOn(fig, ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Columns) != 4 {
		t.Errorf("%d columns for panel b", len(table.Columns))
	}
	fig.Panel = 'z'
	if _, err := RunFigureOn(fig, ds, fastConfig()); err == nil {
		t.Error("unknown panel accepted")
	}
}

func TestLookupFigure(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != 8 {
		t.Fatalf("FigureIDs = %v, want 8 panels", ids)
	}
	for _, id := range ids {
		fig, err := LookupFigure(id)
		if err != nil {
			t.Fatal(err)
		}
		if fig.Panel != 'a' && fig.Panel != 'b' {
			t.Errorf("%s: panel %q", id, string(fig.Panel))
		}
	}
	if _, err := LookupFigure("99z"); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	table := &Table{Title: "T", Columns: []string{"a", "bb"}}
	if err := table.AddRow("1", "2"); err != nil {
		t.Fatal(err)
	}
	if err := table.AddRow("333", "4"); err != nil {
		t.Fatal(err)
	}
	if err := table.AddRow("only one"); err == nil {
		t.Error("short row accepted")
	}
	var text bytes.Buffer
	if err := table.Render(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "333") || !strings.Contains(text.String(), "T") {
		t.Errorf("Render output:\n%s", text.String())
	}
	var csv bytes.Buffer
	if err := table.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	want := "a,bb\n1,2\n333,4\n"
	if csv.String() != want {
		t.Errorf("CSV = %q, want %q", csv.String(), want)
	}
}

func TestSplitAxisAblation(t *testing.T) {
	table, err := SplitAxisAblation(smallClassification(8), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 || len(table.Columns) != 5 {
		t.Errorf("table shape %dx%d", len(table.Rows), len(table.Columns))
	}
}

func TestSynthesisAblation(t *testing.T) {
	table, err := SynthesisAblation(smallClassification(9), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Errorf("%d rows", len(table.Rows))
	}
}

func TestLeftoverAblation(t *testing.T) {
	cfg := fastConfig()
	cfg.GroupSizes = []int{7} // 60 per class / 7 leaves leftovers
	table, err := LeftoverAblation(smallClassification(10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 1 {
		t.Fatalf("%d rows", len(table.Rows))
	}
	// nearest-group policy must keep min size ≥ k; own-group must not.
	row := table.Rows[0]
	if row[1] < row[2] && row[1] != row[2] { // string compare is fine for single digits only; parse instead
		t.Logf("row: %v", row)
	}
}

func TestPerturbationComparison(t *testing.T) {
	cfg := fastConfig()
	table, err := PerturbationComparison(smallClassification(11), []float64{0.5}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 original + 1 perturbation + 3 condensation rows.
	if len(table.Rows) != 5 {
		t.Errorf("%d rows, want 5", len(table.Rows))
	}
	if _, err := PerturbationComparison(smallRegression(12), []float64{0.5}, cfg); err == nil {
		t.Error("regression data accepted")
	}
}

func TestKAnonymityComparison(t *testing.T) {
	table, err := KAnonymityComparison(smallClassification(13), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 || len(table.Columns) != 6 {
		t.Errorf("table shape %dx%d", len(table.Rows), len(table.Columns))
	}
	if _, err := KAnonymityComparison(smallRegression(14), fastConfig()); err == nil {
		t.Error("regression data accepted")
	}
}

func TestAttackStudy(t *testing.T) {
	table, err := AttackStudy(smallClassification(15), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("%d rows", len(table.Rows))
	}
}

func TestClusteringStudy(t *testing.T) {
	table, err := ClusteringStudy(smallClassification(16), 2, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("%d rows", len(table.Rows))
	}
}

func TestCompatibilityOnly(t *testing.T) {
	out, err := CompatibilityOnly(smallClassification(17), fastConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Errorf("%d entries", len(out))
	}
}

func TestKnnOnRecordsHelper(t *testing.T) {
	ds := smallClassification(18)
	train, test, err := ds.TrainTestSplit(0.7, rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := knnOnRecords(train, test, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("helper accuracy %g", acc)
	}
}

func TestTreeStudy(t *testing.T) {
	table, err := TreeStudy(smallClassification(20), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 || len(table.Columns) != 4 {
		t.Errorf("table shape %dx%d", len(table.Rows), len(table.Columns))
	}
	if _, err := TreeStudy(smallRegression(21), fastConfig()); err == nil {
		t.Error("regression data accepted")
	}
}

func TestAssociationStudy(t *testing.T) {
	table, err := AssociationStudy(smallClassification(22), 3, 0.2, 0.6, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("%d rows", len(table.Rows))
	}
	if _, err := AssociationStudy(smallClassification(23), 1, 0.2, 0.6, fastConfig()); err == nil {
		t.Error("1 bin accepted")
	}
}

func TestScalingStudy(t *testing.T) {
	cfg := fastConfig()
	table, err := ScalingStudy(5, []int{60, 120}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 || len(table.Columns) != 5 {
		t.Errorf("table shape %dx%d", len(table.Rows), len(table.Columns))
	}
	if _, err := ScalingStudy(0, nil, cfg); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ScalingStudy(5, []int{2}, cfg); err == nil {
		t.Error("tiny size accepted")
	}
}

func TestFidelityStudy(t *testing.T) {
	cfg := fastConfig()
	cfg.GroupSizes = []int{10}
	table, err := FidelityStudy("ecoli", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 1 || len(table.Columns) != 5 {
		t.Errorf("table shape %dx%d", len(table.Rows), len(table.Columns))
	}
	if _, err := FidelityStudy("bogus", cfg); err == nil {
		t.Error("unknown data set accepted")
	}
}

func TestNaiveBayesStudy(t *testing.T) {
	cfg := fastConfig()
	table, err := NaiveBayesStudy(smallClassification(24), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 || len(table.Columns) != 4 {
		t.Errorf("table shape %dx%d", len(table.Rows), len(table.Columns))
	}
	// The statistics-direct path must agree with the records path at
	// every k (moments are exact under condensation).
	for _, row := range table.Rows {
		if row[1] != row[2] {
			t.Errorf("k=%s: nb_original %s != nb_from_stats %s", row[0], row[1], row[2])
		}
	}
	if _, err := NaiveBayesStudy(smallRegression(25), cfg); err == nil {
		t.Error("regression data accepted")
	}
}

func TestLinRegStudy(t *testing.T) {
	cfg := fastConfig()
	table, err := LinRegStudy(smallRegression(26), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 || len(table.Columns) != 4 {
		t.Errorf("table shape %dx%d", len(table.Rows), len(table.Columns))
	}
	// Statistics-direct OLS equals records OLS at every k.
	for _, row := range table.Rows {
		if row[1] != row[2] {
			t.Errorf("k=%s: ols_original %s != ols_from_stats %s", row[0], row[1], row[2])
		}
	}
	if _, err := LinRegStudy(smallClassification(27), cfg); err == nil {
		t.Error("classification data accepted")
	}
}
