package experiments

import (
	"condensation/internal/core"
	"condensation/internal/dataset"
	"condensation/internal/metrics"
	"condensation/internal/rng"
)

// SplitAxisAblation quantifies the value of the paper's principal-axis
// split choice: dynamic condensation is run once with principal-axis
// splits and once with random-axis splits, reporting accuracy and µ per
// group size. Per the paper's argument, the principal axis minimizes child
// group variance and therefore preserves locality better.
func SplitAxisAblation(ds *dataset.Dataset, cfg Config) (*Table, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation — dynamic split axis: principal (paper) vs random",
		Columns: []string{"k", "principal_accuracy", "random_accuracy", "principal_mu", "random_mu"},
	}
	root := rng.New(cfg.Seed)
	reps := cfg.Repetitions
	type cell struct{ accP, accR, muP, muR float64 }
	cells := make([]cell, len(cfg.GroupSizes)*reps)
	srcs := presplit(root, len(cells))
	err := cfg.runCells(len(cells), func(i int) error {
		k := cfg.GroupSizes[i/reps]
		r := srcs[i]
		train, test, err := ds.TrainTestSplit(cfg.TrainFraction, r)
		if err != nil {
			return err
		}
		for _, axis := range []core.SplitAxis{core.SplitPrincipal, core.SplitRandom} {
			c := cfg
			c.Options.SplitAxis = axis
			acc, _, err := anonymizeAndEvaluate(train, test, c, k, core.ModeDynamic, r.Split())
			if err != nil {
				return err
			}
			mu, _, err := anonymizeAndCompare(ds, c, k, core.ModeDynamic, r.Split())
			if err != nil {
				return err
			}
			if axis == core.SplitPrincipal {
				cells[i].accP = acc
				cells[i].muP = mu
			} else {
				cells[i].accR = acc
				cells[i].muR = mu
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range cfg.GroupSizes {
		var accP, accR, muP, muR float64
		for rep := 0; rep < reps; rep++ {
			c := cells[ki*reps+rep]
			accP += c.accP
			accR += c.accR
			muP += c.muP
			muR += c.muR
		}
		n := float64(reps)
		if err := t.AddRow(d(k), f(accP/n), f(accR/n), f(muP/n), f(muR/n)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// SynthesisAblation compares the paper's uniform eigen-synthesis with the
// Gaussian variant on static condensation: both match the group's first
// two moments, so accuracy and µ should be close; the uniform variant's
// bounded support keeps synthesized points inside the group locality.
func SynthesisAblation(ds *dataset.Dataset, cfg Config) (*Table, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation — synthesis distribution: uniform (paper) vs gaussian",
		Columns: []string{"k", "uniform_accuracy", "gaussian_accuracy", "uniform_mu", "gaussian_mu"},
	}
	root := rng.New(cfg.Seed)
	reps := cfg.Repetitions
	type cell struct{ accU, accG, muU, muG float64 }
	cells := make([]cell, len(cfg.GroupSizes)*reps)
	srcs := presplit(root, len(cells))
	err := cfg.runCells(len(cells), func(i int) error {
		k := cfg.GroupSizes[i/reps]
		r := srcs[i]
		train, test, err := ds.TrainTestSplit(cfg.TrainFraction, r)
		if err != nil {
			return err
		}
		for _, synth := range []core.Synthesis{core.SynthesisUniform, core.SynthesisGaussian} {
			c := cfg
			c.Options.Synthesis = synth
			acc, _, err := anonymizeAndEvaluate(train, test, c, k, core.ModeStatic, r.Split())
			if err != nil {
				return err
			}
			mu, _, err := anonymizeAndCompare(ds, c, k, core.ModeStatic, r.Split())
			if err != nil {
				return err
			}
			if synth == core.SynthesisUniform {
				cells[i].accU = acc
				cells[i].muU = mu
			} else {
				cells[i].accG = acc
				cells[i].muG = mu
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range cfg.GroupSizes {
		var accU, accG, muU, muG float64
		for rep := 0; rep < reps; rep++ {
			c := cells[ki*reps+rep]
			accU += c.accU
			accG += c.accG
			muU += c.muU
			muG += c.muG
		}
		n := float64(reps)
		if err := t.AddRow(d(k), f(accU/n), f(accG/n), f(muU/n), f(muG/n)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// LeftoverAblation measures the cost of the paper's leftover policy
// (absorb stragglers into their nearest groups) against keeping them as an
// undersized group, which would break the k-indistinguishability promise.
// It reports the achieved minimum group size and accuracy for both.
func LeftoverAblation(ds *dataset.Dataset, cfg Config) (*Table, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation — static leftover policy: nearest-group (paper) vs own-group",
		Columns: []string{"k", "nearest_min_size", "own_min_size", "nearest_accuracy", "own_accuracy"},
	}
	root := rng.New(cfg.Seed)
	reps := cfg.Repetitions
	type cell struct {
		accN, accO float64
		minN, minO int
	}
	cells := make([]cell, len(cfg.GroupSizes)*reps)
	srcs := presplit(root, len(cells))
	err := cfg.runCells(len(cells), func(i int) error {
		k := cfg.GroupSizes[i/reps]
		r := srcs[i]
		train, test, err := ds.TrainTestSplit(cfg.TrainFraction, r)
		if err != nil {
			return err
		}
		for _, pol := range []core.Leftover{core.LeftoverNearestGroup, core.LeftoverOwnGroup} {
			c := cfg
			c.Options.Leftover = pol
			anon, report, err := core.Anonymize(train, c.anonymizeConfig(k, core.ModeStatic), r.Split())
			if err != nil {
				return err
			}
			acc, err := evaluate(anon, test, c)
			if err != nil {
				return err
			}
			minSize := minGroupSize(report)
			if pol == core.LeftoverNearestGroup {
				cells[i].accN = acc
				cells[i].minN = minSize
			} else {
				cells[i].accO = acc
				cells[i].minO = minSize
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range cfg.GroupSizes {
		var minN, minO int
		var accN, accO float64
		for rep := 0; rep < reps; rep++ {
			c := cells[ki*reps+rep]
			accN += c.accN
			accO += c.accO
			if rep == 0 || c.minN < minN {
				minN = c.minN
			}
			if rep == 0 || c.minO < minO {
				minO = c.minO
			}
		}
		n := float64(reps)
		if err := t.AddRow(d(k), d(minN), d(minO), f(accN/n), f(accO/n)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func minGroupSize(report *core.Report) int {
	min := 0
	for i, cr := range report.Classes {
		if i == 0 || cr.MinGroupSize < min {
			min = cr.MinGroupSize
		}
	}
	return min
}

// ClusteringStudy checks the paper's "other data mining problems" remark:
// k-means centers found on anonymized data are matched against centers
// found on the original data; the mean center displacement (normalized by
// the data spread) is reported per group size.
func ClusteringStudy(ds *dataset.Dataset, clusters int, cfg Config) (*Table, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Extension — k-means utility preservation on condensed data",
		Columns: []string{"k", "center_displacement", "inertia_original", "inertia_anonymized"},
	}
	root := rng.New(cfg.Seed)
	reps := cfg.Repetitions
	type cell struct{ disp, inOrig, inAnon float64 }
	cells := make([]cell, len(cfg.GroupSizes)*reps)
	srcs := presplit(root, len(cells))
	err := cfg.runCells(len(cells), func(i int) error {
		k := cfg.GroupSizes[i/reps]
		r := srcs[i]
		anon, _, err := core.Anonymize(ds, cfg.anonymizeConfig(k, core.ModeStatic), r.Split())
		if err != nil {
			return err
		}
		resOrig, err := clusterRecords(ds, clusters, r.Split())
		if err != nil {
			return err
		}
		resAnon, err := clusterRecords(anon, clusters, r.Split())
		if err != nil {
			return err
		}
		dsp, err := matchCenters(resOrig.Centers, resAnon.Centers)
		if err != nil {
			return err
		}
		cells[i] = cell{disp: dsp, inOrig: resOrig.Inertia, inAnon: resAnon.Inertia}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range cfg.GroupSizes {
		var disp, inOrig, inAnon float64
		for rep := 0; rep < reps; rep++ {
			c := cells[ki*reps+rep]
			disp += c.disp
			inOrig += c.inOrig
			inAnon += c.inAnon
		}
		n := float64(reps)
		if err := t.AddRow(d(k), f(disp/n), f(inOrig/n), f(inAnon/n)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// CompatibilityOnly computes µ for one mode across group sizes — used by
// benches that only need a single series.
func CompatibilityOnly(ds *dataset.Dataset, cfg Config, mode core.Mode) (map[int]float64, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	mus := make([]float64, len(cfg.GroupSizes))
	srcs := presplit(root, len(mus))
	err := cfg.runCells(len(mus), func(i int) error {
		mu, _, err := anonymizeAndCompare(ds, cfg, cfg.GroupSizes[i], mode, srcs[i])
		if err != nil {
			return err
		}
		mus[i] = mu
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[int]float64, len(cfg.GroupSizes))
	for i, k := range cfg.GroupSizes {
		out[k] = mus[i]
	}
	return out, nil
}

// muBetween is a convenience wrapper for µ between two record sets.
func muBetween(a, b *dataset.Dataset) (float64, error) {
	return metrics.CovarianceCompatibility(a.X, b.X)
}
