package experiments

import (
	"fmt"
	"sort"

	"condensation/internal/datagen"
	"condensation/internal/dataset"
)

// Figure identifies one panel of the paper's evaluation.
type Figure struct {
	// ID is the panel identifier, e.g. "5a".
	ID string
	// Dataset names the data set the panel evaluates.
	Dataset string
	// Panel is 'a' (accuracy) or 'b' (covariance compatibility).
	Panel byte
	// Caption summarizes what the paper's figure shows.
	Caption string
}

// figureIndex maps panel ids to the paper's figures: Figures 5–8 pair
// (a) classifier accuracy and (b) covariance compatibility over the
// Ionosphere, Ecoli, Pima Indian, and Abalone data sets.
var figureIndex = map[string]Figure{
	"5a": {"5a", "ionosphere", 'a', "Classifier accuracy vs average group size (Ionosphere)"},
	"5b": {"5b", "ionosphere", 'b', "Covariance compatibility vs average group size (Ionosphere)"},
	"6a": {"6a", "ecoli", 'a', "Classifier accuracy vs average group size (Ecoli)"},
	"6b": {"6b", "ecoli", 'b', "Covariance compatibility vs average group size (Ecoli)"},
	"7a": {"7a", "pima", 'a', "Classifier accuracy vs average group size (Pima Indian)"},
	"7b": {"7b", "pima", 'b', "Covariance compatibility vs average group size (Pima Indian)"},
	"8a": {"8a", "abalone", 'a', "Regression accuracy within one year vs average group size (Abalone)"},
	"8b": {"8b", "abalone", 'b', "Covariance compatibility vs average group size (Abalone)"},
}

// FigureIDs lists the known panel ids in order.
func FigureIDs() []string {
	ids := make([]string, 0, len(figureIndex))
	for id := range figureIndex {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// LookupFigure resolves a panel id.
func LookupFigure(id string) (Figure, error) {
	fig, ok := figureIndex[id]
	if !ok {
		return Figure{}, fmt.Errorf("experiments: unknown figure %q (known: %v)", id, FigureIDs())
	}
	return fig, nil
}

// RunFigure regenerates one panel of the paper's evaluation, generating
// the synthetic data set itself from cfg.Seed.
func RunFigure(id string, cfg Config) (*Table, error) {
	fig, err := LookupFigure(id)
	if err != nil {
		return nil, err
	}
	ds, err := datagen.ByName(fig.Dataset, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return RunFigureOn(fig, ds, cfg)
}

// RunFigureOn regenerates a panel against a caller-supplied data set
// (useful for tests that need smaller data).
func RunFigureOn(fig Figure, ds *dataset.Dataset, cfg Config) (*Table, error) {
	title := fmt.Sprintf("Figure %s — %s", fig.ID, fig.Caption)
	switch fig.Panel {
	case 'a':
		points, err := AccuracyCurve(ds, cfg)
		if err != nil {
			return nil, err
		}
		return AccuracyTable(title, points), nil
	case 'b':
		points, err := CompatibilityCurve(ds, cfg)
		if err != nil {
			return nil, err
		}
		return CompatibilityTable(title, points), nil
	default:
		return nil, fmt.Errorf("experiments: unknown panel %q", string(fig.Panel))
	}
}
