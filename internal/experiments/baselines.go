package experiments

import (
	"fmt"
	"math"

	"condensation/internal/cluster"
	"condensation/internal/core"
	"condensation/internal/dataset"
	"condensation/internal/kanon"
	"condensation/internal/knn"
	"condensation/internal/mat"
	"condensation/internal/metrics"
	"condensation/internal/perturb"
	"condensation/internal/privacy"
	"condensation/internal/rng"
)

// clusterRecords runs k-means over a data set's records.
func clusterRecords(ds *dataset.Dataset, k int, r *rng.Source) (*cluster.Result, error) {
	return cluster.KMeans(ds.X, k, r, cluster.Options{})
}

// matchCenters reports the mean displacement between matched center sets.
func matchCenters(a, b []mat.Vector) (float64, error) {
	return cluster.MatchCenters(a, b)
}

// PerturbationComparison contrasts condensation with the Agrawal–Srikant
// perturbation baseline. For each noise level σ it trains the
// distribution-based (marginals-only) classifier on perturbed data and
// measures µ between original and perturbed records; for each group size k
// it trains the unmodified nearest-neighbour classifier on condensed data.
// The table shows the paper's headline claim: at comparable privacy,
// condensation keeps both the classifier and the correlation structure
// intact, while the perturbation route is limited to marginals.
func PerturbationComparison(ds *dataset.Dataset, sigmas []float64, cfg Config) (*Table, error) {
	cfg.fill()
	if ds.Task != dataset.Classification {
		return nil, fmt.Errorf("experiments: perturbation comparison needs classification data, got %v", ds.Task)
	}
	t := &Table{
		Title:   "Baseline — condensation vs additive perturbation (Agrawal–Srikant)",
		Columns: []string{"method", "parameter", "accuracy", "mu", "privacy"},
	}
	root := rng.New(cfg.Seed)

	train, test, err := ds.TrainTestSplit(cfg.TrainFraction, root.Split())
	if err != nil {
		return nil, err
	}

	// Original-data reference row.
	origAcc, err := evaluate(train, test, cfg)
	if err != nil {
		return nil, err
	}
	if err := t.AddRow("original", "-", f(origAcc), f(1), "none"); err != nil {
		return nil, err
	}

	// Perturbation rows: σ is in units of per-dimension standard
	// deviations (data standardized internally for noise calibration).
	for _, sigma := range sigmas {
		r := root.Split()
		p := perturb.Perturber{Std: sigma * meanStd(train), Family: perturb.NoiseGaussian}
		clf, err := perturb.TrainDistributionClassifier(train, p, perturb.ReconstructOptions{}, r)
		if err != nil {
			return nil, err
		}
		preds, err := clf.PredictAll(test)
		if err != nil {
			return nil, err
		}
		acc, err := metrics.Accuracy(preds, test.Labels)
		if err != nil {
			return nil, err
		}
		noisy, err := p.Perturb(ds.X, root.Split())
		if err != nil {
			return nil, err
		}
		mu, err := metrics.CovarianceCompatibility(ds.X, noisy)
		if err != nil {
			return nil, err
		}
		interval, err := p.PrivacyInterval(0.95)
		if err != nil {
			return nil, err
		}
		if err := t.AddRow("perturbation", fmt.Sprintf("sigma=%.2f", sigma), f(acc), f(mu),
			fmt.Sprintf("95%%-interval=%.2f", interval)); err != nil {
			return nil, err
		}
	}

	// Condensation rows.
	for _, k := range cfg.GroupSizes {
		r := root.Split()
		acc, _, err := anonymizeAndEvaluate(train, test, cfg, k, core.ModeStatic, r)
		if err != nil {
			return nil, err
		}
		mu, _, err := anonymizeAndCompare(ds, cfg, k, core.ModeStatic, root.Split())
		if err != nil {
			return nil, err
		}
		if err := t.AddRow("condensation", fmt.Sprintf("k=%d", k), f(acc), f(mu),
			fmt.Sprintf("reident<=1/%d", k)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// meanStd returns the mean per-attribute standard deviation of a data set,
// used to express noise levels in natural data units.
func meanStd(ds *dataset.Dataset) float64 {
	if ds.Len() == 0 {
		return 1
	}
	d := ds.Dim()
	var total float64
	col := make([]float64, ds.Len())
	for j := 0; j < d; j++ {
		for i, x := range ds.X {
			col[i] = x[j]
		}
		total += stdDev(col)
	}
	return total / float64(d)
}

func stdDev(xs []float64) float64 {
	n := float64(len(xs))
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / n
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	if ss <= 0 {
		return 0
	}
	return math.Sqrt(ss / n)
}

// KAnonymityComparison contrasts condensation with a Mondrian-style
// multidimensional k-anonymity baseline at matched k: records are
// generalized to their equivalence-class centroid, the classifier is
// trained on the generalized data, and information loss is reported both
// as µ and as the normalized certainty penalty.
func KAnonymityComparison(ds *dataset.Dataset, cfg Config) (*Table, error) {
	cfg.fill()
	if ds.Task != dataset.Classification {
		return nil, fmt.Errorf("experiments: k-anonymity comparison needs classification data, got %v", ds.Task)
	}
	t := &Table{
		Title:   "Baseline — condensation vs Mondrian k-anonymity (matched k)",
		Columns: []string{"k", "condensation_accuracy", "mondrian_accuracy", "condensation_mu", "mondrian_mu", "mondrian_ncp"},
	}
	root := rng.New(cfg.Seed)
	train, test, err := ds.TrainTestSplit(cfg.TrainFraction, root.Split())
	if err != nil {
		return nil, err
	}
	for _, k := range cfg.GroupSizes {
		// Condensation side.
		condAcc, _, err := anonymizeAndEvaluate(train, test, cfg, k, core.ModeStatic, root.Split())
		if err != nil {
			return nil, err
		}
		condMu, _, err := anonymizeAndCompare(ds, cfg, k, core.ModeStatic, root.Split())
		if err != nil {
			return nil, err
		}
		// Mondrian side: partition per class (labels are public in this
		// comparison, mirroring the per-class condensation).
		genTrain := train.Clone()
		byClass := train.ByClass()
		var ncpWeighted float64
		for _, idx := range byClass {
			recs := make([]mat.Vector, len(idx))
			for i, ri := range idx {
				recs[i] = train.X[ri]
			}
			parts, err := kanon.Mondrian(recs, k)
			if err != nil {
				return nil, err
			}
			gen, err := kanon.Generalize(recs, parts)
			if err != nil {
				return nil, err
			}
			for i, ri := range idx {
				genTrain.X[ri] = gen[i]
			}
			ncp, err := kanon.NCP(recs, parts)
			if err != nil {
				return nil, err
			}
			ncpWeighted += ncp * float64(len(idx))
		}
		ncpWeighted /= float64(train.Len())
		mondAcc, err := evaluate(genTrain, test, cfg)
		if err != nil {
			return nil, err
		}
		mondMu, err := muBetween(train, genTrain)
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(d(k), f(condAcc), f(mondAcc), f(condMu), f(mondMu), f(ncpWeighted)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AttackStudy measures the nearest-neighbour linkage attack against
// condensed-and-synthesized data as a function of k, alongside the random
// baseline and the in-group re-identification bound 1/k.
func AttackStudy(ds *dataset.Dataset, cfg Config) (*Table, error) {
	cfg.fill()
	t := &Table{
		Title:   "Privacy — linkage attack success vs indistinguishability level",
		Columns: []string{"k", "attack_rate", "random_baseline", "in_group_bound"},
	}
	root := rng.New(cfg.Seed)
	for _, k := range cfg.GroupSizes {
		var attack, baseline, bound float64
		for rep := 0; rep < cfg.Repetitions; rep++ {
			r := root.Split()
			condenser, err := cfg.condenser(k, r)
			if err != nil {
				return nil, err
			}
			cond, members, err := condenser.StaticWithMembers(ds.X)
			if err != nil {
				return nil, err
			}
			synth, err := cond.SynthesizeGrouped(r)
			if err != nil {
				return nil, err
			}
			origByGroup := make([][]mat.Vector, len(members))
			sizes := make([]int, len(members))
			for gi, member := range members {
				for _, idx := range member {
					origByGroup[gi] = append(origByGroup[gi], ds.X[idx])
				}
				sizes[gi] = len(member)
			}
			rate, err := privacy.LinkageAttack(origByGroup, synth)
			if err != nil {
				return nil, err
			}
			rnd, err := privacy.RandomLinkageRate(sizes)
			if err != nil {
				return nil, err
			}
			groups := cond.Groups()
			reident, err := privacy.ExpectedReidentification(groups)
			if err != nil {
				return nil, err
			}
			attack += rate
			baseline += rnd
			bound += reident
		}
		reps := float64(cfg.Repetitions)
		if err := t.AddRow(d(k), f(attack/reps), f(baseline/reps), f(bound/reps)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// knnOnRecords is a tiny helper for tests: 1-NN accuracy of train vs test.
func knnOnRecords(train, test *dataset.Dataset, k int) (float64, error) {
	clf, err := knn.NewClassifier(train, k)
	if err != nil {
		return 0, err
	}
	preds, err := clf.PredictAll(test)
	if err != nil {
		return 0, err
	}
	return metrics.Accuracy(preds, test.Labels)
}
