package experiments

import (
	"fmt"
	"math"

	"condensation/internal/cluster"
	"condensation/internal/core"
	"condensation/internal/dataset"
	"condensation/internal/kanon"
	"condensation/internal/knn"
	"condensation/internal/mat"
	"condensation/internal/metrics"
	"condensation/internal/perturb"
	"condensation/internal/privacy"
	"condensation/internal/rng"
)

// clusterRecords runs k-means over a data set's records.
func clusterRecords(ds *dataset.Dataset, k int, r *rng.Source) (*cluster.Result, error) {
	return cluster.KMeans(ds.X, k, r, cluster.Options{})
}

// matchCenters reports the mean displacement between matched center sets.
func matchCenters(a, b []mat.Vector) (float64, error) {
	return cluster.MatchCenters(a, b)
}

// PerturbationComparison contrasts condensation with the Agrawal–Srikant
// perturbation baseline. For each noise level σ it trains the
// distribution-based (marginals-only) classifier on perturbed data and
// measures µ between original and perturbed records; for each group size k
// it trains the unmodified nearest-neighbour classifier on condensed data.
// The table shows the paper's headline claim: at comparable privacy,
// condensation keeps both the classifier and the correlation structure
// intact, while the perturbation route is limited to marginals.
func PerturbationComparison(ds *dataset.Dataset, sigmas []float64, cfg Config) (*Table, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if ds.Task != dataset.Classification {
		return nil, fmt.Errorf("experiments: perturbation comparison needs classification data, got %v", ds.Task)
	}
	t := &Table{
		Title:   "Baseline — condensation vs additive perturbation (Agrawal–Srikant)",
		Columns: []string{"method", "parameter", "accuracy", "mu", "privacy"},
	}
	root := rng.New(cfg.Seed)

	train, test, err := ds.TrainTestSplit(cfg.TrainFraction, root.Split())
	if err != nil {
		return nil, err
	}

	// Original-data reference row.
	origAcc, err := evaluate(train, test, cfg)
	if err != nil {
		return nil, err
	}
	if err := t.AddRow("original", "-", f(origAcc), f(1), "none"); err != nil {
		return nil, err
	}

	// Each σ row and each k row is one independent cell drawing two
	// pre-split streams, in the order the sequential loops consumed them.
	srcs := presplit(root, 2*(len(sigmas)+len(cfg.GroupSizes)))
	rows := make([][]string, len(sigmas)+len(cfg.GroupSizes))
	err = cfg.runCells(len(rows), func(i int) error {
		r1, r2 := srcs[2*i], srcs[2*i+1]
		if i < len(sigmas) {
			// Perturbation row: σ is in units of per-dimension standard
			// deviations (data standardized internally for noise
			// calibration).
			sigma := sigmas[i]
			p := perturb.Perturber{Std: sigma * meanStd(train), Family: perturb.NoiseGaussian}
			clf, err := perturb.TrainDistributionClassifier(train, p, perturb.ReconstructOptions{}, r1)
			if err != nil {
				return err
			}
			preds, err := clf.PredictAll(test)
			if err != nil {
				return err
			}
			acc, err := metrics.Accuracy(preds, test.Labels)
			if err != nil {
				return err
			}
			noisy, err := p.Perturb(ds.X, r2)
			if err != nil {
				return err
			}
			mu, err := metrics.CovarianceCompatibility(ds.X, noisy)
			if err != nil {
				return err
			}
			interval, err := p.PrivacyInterval(0.95)
			if err != nil {
				return err
			}
			rows[i] = []string{"perturbation", fmt.Sprintf("sigma=%.2f", sigma), f(acc), f(mu),
				fmt.Sprintf("95%%-interval=%.2f", interval)}
			return nil
		}
		// Condensation row.
		k := cfg.GroupSizes[i-len(sigmas)]
		acc, _, err := anonymizeAndEvaluate(train, test, cfg, k, core.ModeStatic, r1)
		if err != nil {
			return err
		}
		mu, _, err := anonymizeAndCompare(ds, cfg, k, core.ModeStatic, r2)
		if err != nil {
			return err
		}
		rows[i] = []string{"condensation", fmt.Sprintf("k=%d", k), f(acc), f(mu),
			fmt.Sprintf("reident<=1/%d", k)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// meanStd returns the mean per-attribute standard deviation of a data set,
// used to express noise levels in natural data units.
func meanStd(ds *dataset.Dataset) float64 {
	if ds.Len() == 0 {
		return 1
	}
	d := ds.Dim()
	var total float64
	col := make([]float64, ds.Len())
	for j := 0; j < d; j++ {
		for i, x := range ds.X {
			col[i] = x[j]
		}
		total += stdDev(col)
	}
	return total / float64(d)
}

func stdDev(xs []float64) float64 {
	n := float64(len(xs))
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / n
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	if ss <= 0 {
		return 0
	}
	return math.Sqrt(ss / n)
}

// KAnonymityComparison contrasts condensation with a Mondrian-style
// multidimensional k-anonymity baseline at matched k: records are
// generalized to their equivalence-class centroid, the classifier is
// trained on the generalized data, and information loss is reported both
// as µ and as the normalized certainty penalty.
func KAnonymityComparison(ds *dataset.Dataset, cfg Config) (*Table, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if ds.Task != dataset.Classification {
		return nil, fmt.Errorf("experiments: k-anonymity comparison needs classification data, got %v", ds.Task)
	}
	t := &Table{
		Title:   "Baseline — condensation vs Mondrian k-anonymity (matched k)",
		Columns: []string{"k", "condensation_accuracy", "mondrian_accuracy", "condensation_mu", "mondrian_mu", "mondrian_ncp"},
	}
	root := rng.New(cfg.Seed)
	train, test, err := ds.TrainTestSplit(cfg.TrainFraction, root.Split())
	if err != nil {
		return nil, err
	}
	// One cell per k, drawing two pre-split streams (evaluate, compare) in
	// the sequential order; the Mondrian side is deterministic.
	srcs := presplit(root, 2*len(cfg.GroupSizes))
	rows := make([][]string, len(cfg.GroupSizes))
	err = cfg.runCells(len(rows), func(i int) error {
		k := cfg.GroupSizes[i]
		// Condensation side.
		condAcc, _, err := anonymizeAndEvaluate(train, test, cfg, k, core.ModeStatic, srcs[2*i])
		if err != nil {
			return err
		}
		condMu, _, err := anonymizeAndCompare(ds, cfg, k, core.ModeStatic, srcs[2*i+1])
		if err != nil {
			return err
		}
		// Mondrian side: partition per class (labels are public in this
		// comparison, mirroring the per-class condensation). Classes are
		// visited in label order so the NCP accumulation order — and with
		// it the reported float — is deterministic.
		genTrain := train.Clone()
		byClass := train.ByClass()
		var ncpWeighted float64
		for label := 0; label < train.NumClasses(); label++ {
			idx := byClass[label]
			if len(idx) == 0 {
				continue
			}
			recs := make([]mat.Vector, len(idx))
			for i, ri := range idx {
				recs[i] = train.X[ri]
			}
			parts, err := kanon.Mondrian(recs, k)
			if err != nil {
				return err
			}
			gen, err := kanon.Generalize(recs, parts)
			if err != nil {
				return err
			}
			for i, ri := range idx {
				genTrain.X[ri] = gen[i]
			}
			ncp, err := kanon.NCP(recs, parts)
			if err != nil {
				return err
			}
			ncpWeighted += ncp * float64(len(idx))
		}
		ncpWeighted /= float64(train.Len())
		mondAcc, err := evaluate(genTrain, test, cfg)
		if err != nil {
			return err
		}
		mondMu, err := muBetween(train, genTrain)
		if err != nil {
			return err
		}
		rows[i] = []string{d(k), f(condAcc), f(mondAcc), f(condMu), f(mondMu), f(ncpWeighted)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AttackStudy measures the nearest-neighbour linkage attack against
// condensed-and-synthesized data as a function of k, alongside the random
// baseline and the in-group re-identification bound 1/k.
func AttackStudy(ds *dataset.Dataset, cfg Config) (*Table, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Privacy — linkage attack success vs indistinguishability level",
		Columns: []string{"k", "attack_rate", "random_baseline", "in_group_bound"},
	}
	root := rng.New(cfg.Seed)
	reps := cfg.Repetitions
	type cell struct{ attack, baseline, bound float64 }
	cells := make([]cell, len(cfg.GroupSizes)*reps)
	srcs := presplit(root, len(cells))
	err := cfg.runCells(len(cells), func(i int) error {
		k := cfg.GroupSizes[i/reps]
		r := srcs[i]
		condenser, err := cfg.condenser(k, r)
		if err != nil {
			return err
		}
		cond, members, err := condenser.StaticWithMembers(ds.X)
		if err != nil {
			return err
		}
		synth, err := cond.SynthesizeGrouped(r)
		if err != nil {
			return err
		}
		origByGroup := make([][]mat.Vector, len(members))
		sizes := make([]int, len(members))
		for gi, member := range members {
			for _, idx := range member {
				origByGroup[gi] = append(origByGroup[gi], ds.X[idx])
			}
			sizes[gi] = len(member)
		}
		rate, err := privacy.LinkageAttack(origByGroup, synth)
		if err != nil {
			return err
		}
		rnd, err := privacy.RandomLinkageRate(sizes)
		if err != nil {
			return err
		}
		groups := cond.Groups()
		reident, err := privacy.ExpectedReidentification(groups)
		if err != nil {
			return err
		}
		cells[i] = cell{attack: rate, baseline: rnd, bound: reident}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range cfg.GroupSizes {
		var attack, baseline, bound float64
		for rep := 0; rep < reps; rep++ {
			c := cells[ki*reps+rep]
			attack += c.attack
			baseline += c.baseline
			bound += c.bound
		}
		n := float64(reps)
		if err := t.AddRow(d(k), f(attack/n), f(baseline/n), f(bound/n)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// knnOnRecords is a tiny helper for tests: 1-NN accuracy of train vs test.
func knnOnRecords(train, test *dataset.Dataset, k int) (float64, error) {
	clf, err := knn.NewClassifier(train, k)
	if err != nil {
		return 0, err
	}
	preds, err := clf.PredictAll(test)
	if err != nil {
		return 0, err
	}
	return metrics.Accuracy(preds, test.Labels)
}
