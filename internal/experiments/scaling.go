package experiments

import (
	"fmt"

	"condensation/internal/core"
	"condensation/internal/datagen"
	"condensation/internal/metrics"
	"condensation/internal/rng"
)

// ScalingStudy checks the paper's data-set-size discussion: "when the
// overall data set size is large, it is more effectively possible to
// simultaneously achieve ... the robustness of larger group sizes as well
// as the effectiveness of using a small locality of the data ... whereas
// this cannot be achieved in a data set containing only 100 points."
// At a fixed group size k, the study sweeps the data-set size n (two
// Gaussian classes of controllable difficulty) and reports accuracy and µ:
// the gap to the original-data accuracy should close as n grows.
func ScalingStudy(k int, sizes []int, cfg Config) (*Table, error) {
	cfg.fill()
	if k < 1 {
		return nil, fmt.Errorf("experiments: scaling study with k = %d", k)
	}
	if len(sizes) == 0 {
		sizes = []int{100, 200, 500, 1000, 2000}
	}
	t := &Table{
		Title:   fmt.Sprintf("Scaling — fixed k=%d, growing data set size", k),
		Columns: []string{"n", "static_accuracy", "original_accuracy", "accuracy_gap", "static_mu"},
	}
	root := rng.New(cfg.Seed)
	for _, n := range sizes {
		if n < 4 {
			return nil, fmt.Errorf("experiments: scaling size %d too small", n)
		}
		var static, orig, mu float64
		for rep := 0; rep < cfg.Repetitions; rep++ {
			r := root.Split()
			// Moderate separation keeps the problem non-trivial at every n.
			ds := datagen.TwoGaussians(cfg.Seed+uint64(n)+uint64(rep), n/2, 6, 4)
			train, test, err := ds.TrainTestSplit(cfg.TrainFraction, r)
			if err != nil {
				return nil, err
			}
			o, err := evaluate(train, test, cfg)
			if err != nil {
				return nil, err
			}
			s, _, err := anonymizeAndEvaluate(train, test, cfg, k, core.ModeStatic, r)
			if err != nil {
				return nil, err
			}
			anon, _, err := core.Anonymize(ds, cfg.anonymizeConfig(k, core.ModeStatic), r.Split())
			if err != nil {
				return nil, err
			}
			m, err := metrics.CovarianceCompatibility(ds.X, anon.X)
			if err != nil {
				return nil, err
			}
			orig += o
			static += s
			mu += m
		}
		reps := float64(cfg.Repetitions)
		if err := t.AddRow(d(n), f(static/reps), f(orig/reps), f(orig/reps-static/reps), f(mu/reps)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// FidelityStudy reports marginal distributional fidelity (mean per-
// attribute Kolmogorov–Smirnov statistic between original and anonymized
// records) alongside µ, for both synthesis modes. The KS statistic sees
// shape differences the covariance cannot, which is exactly where the
// uniform-vs-Gaussian synthesis ablation shows up.
func FidelityStudy(dsName string, cfg Config) (*Table, error) {
	cfg.fill()
	ds, err := datagen.ByName(dsName, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fidelity — marginal KS and µ by synthesis mode (%s)", dsName),
		Columns: []string{"k", "uniform_ks", "gaussian_ks", "uniform_mu", "gaussian_mu"},
	}
	root := rng.New(cfg.Seed)
	for _, k := range cfg.GroupSizes {
		var ksU, ksG, muU, muG float64
		for rep := 0; rep < cfg.Repetitions; rep++ {
			for _, synth := range []core.Synthesis{core.SynthesisUniform, core.SynthesisGaussian} {
				c := cfg
				c.Options.Synthesis = synth
				anon, _, err := core.Anonymize(ds, c.anonymizeConfig(k, core.ModeStatic), root.Split())
				if err != nil {
					return nil, err
				}
				ks, err := metrics.MeanMarginalKS(ds.X, anon.X)
				if err != nil {
					return nil, err
				}
				mu, err := metrics.CovarianceCompatibility(ds.X, anon.X)
				if err != nil {
					return nil, err
				}
				if synth == core.SynthesisUniform {
					ksU += ks
					muU += mu
				} else {
					ksG += ks
					muG += mu
				}
			}
		}
		reps := float64(cfg.Repetitions)
		if err := t.AddRow(d(k), f(ksU/reps), f(ksG/reps), f(muU/reps), f(muG/reps)); err != nil {
			return nil, err
		}
	}
	return t, nil
}
