package experiments

import (
	"fmt"

	"condensation/internal/core"
	"condensation/internal/datagen"
	"condensation/internal/metrics"
	"condensation/internal/rng"
)

// ScalingStudy checks the paper's data-set-size discussion: "when the
// overall data set size is large, it is more effectively possible to
// simultaneously achieve ... the robustness of larger group sizes as well
// as the effectiveness of using a small locality of the data ... whereas
// this cannot be achieved in a data set containing only 100 points."
// At a fixed group size k, the study sweeps the data-set size n (two
// Gaussian classes of controllable difficulty) and reports accuracy and µ:
// the gap to the original-data accuracy should close as n grows.
func ScalingStudy(k int, sizes []int, cfg Config) (*Table, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("experiments: scaling study with k = %d", k)
	}
	if len(sizes) == 0 {
		sizes = []int{100, 200, 500, 1000, 2000}
	}
	for _, n := range sizes {
		if n < 4 {
			return nil, fmt.Errorf("experiments: scaling size %d too small", n)
		}
	}
	t := &Table{
		Title:   fmt.Sprintf("Scaling — fixed k=%d, growing data set size", k),
		Columns: []string{"n", "static_accuracy", "original_accuracy", "accuracy_gap", "static_mu"},
	}
	root := rng.New(cfg.Seed)
	reps := cfg.Repetitions
	type cell struct{ static, orig, mu float64 }
	cells := make([]cell, len(sizes)*reps)
	srcs := presplit(root, len(cells))
	err := cfg.runCells(len(cells), func(i int) error {
		n, rep := sizes[i/reps], i%reps
		r := srcs[i]
		// Moderate separation keeps the problem non-trivial at every n.
		ds := datagen.TwoGaussians(cfg.Seed+uint64(n)+uint64(rep), n/2, 6, 4)
		train, test, err := ds.TrainTestSplit(cfg.TrainFraction, r)
		if err != nil {
			return err
		}
		o, err := evaluate(train, test, cfg)
		if err != nil {
			return err
		}
		s, _, err := anonymizeAndEvaluate(train, test, cfg, k, core.ModeStatic, r)
		if err != nil {
			return err
		}
		anon, _, err := core.Anonymize(ds, cfg.anonymizeConfig(k, core.ModeStatic), r.Split())
		if err != nil {
			return err
		}
		m, err := metrics.CovarianceCompatibility(ds.X, anon.X)
		if err != nil {
			return err
		}
		cells[i] = cell{static: s, orig: o, mu: m}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ni, n := range sizes {
		var static, orig, mu float64
		for rep := 0; rep < reps; rep++ {
			c := cells[ni*reps+rep]
			static += c.static
			orig += c.orig
			mu += c.mu
		}
		rf := float64(reps)
		if err := t.AddRow(d(n), f(static/rf), f(orig/rf), f(orig/rf-static/rf), f(mu/rf)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// FidelityStudy reports marginal distributional fidelity (mean per-
// attribute Kolmogorov–Smirnov statistic between original and anonymized
// records) alongside µ, for both synthesis modes. The KS statistic sees
// shape differences the covariance cannot, which is exactly where the
// uniform-vs-Gaussian synthesis ablation shows up.
func FidelityStudy(dsName string, cfg Config) (*Table, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ds, err := datagen.ByName(dsName, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fidelity — marginal KS and µ by synthesis mode (%s)", dsName),
		Columns: []string{"k", "uniform_ks", "gaussian_ks", "uniform_mu", "gaussian_mu"},
	}
	root := rng.New(cfg.Seed)
	reps := cfg.Repetitions
	// The sequential loop drew one stream per (k, rep, synthesis) in that
	// nesting order; each cell is a (k, rep) pair holding both modes.
	type cell struct{ ksU, ksG, muU, muG float64 }
	cells := make([]cell, len(cfg.GroupSizes)*reps)
	srcs := presplit(root, 2*len(cells))
	err = cfg.runCells(len(cells), func(i int) error {
		k := cfg.GroupSizes[i/reps]
		for si, synth := range []core.Synthesis{core.SynthesisUniform, core.SynthesisGaussian} {
			c := cfg
			c.Options.Synthesis = synth
			anon, _, err := core.Anonymize(ds, c.anonymizeConfig(k, core.ModeStatic), srcs[2*i+si])
			if err != nil {
				return err
			}
			ks, err := metrics.MeanMarginalKS(ds.X, anon.X)
			if err != nil {
				return err
			}
			mu, err := metrics.CovarianceCompatibility(ds.X, anon.X)
			if err != nil {
				return err
			}
			if synth == core.SynthesisUniform {
				cells[i].ksU = ks
				cells[i].muU = mu
			} else {
				cells[i].ksG = ks
				cells[i].muG = mu
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range cfg.GroupSizes {
		var ksU, ksG, muU, muG float64
		for rep := 0; rep < reps; rep++ {
			c := cells[ki*reps+rep]
			ksU += c.ksU
			ksG += c.ksG
			muU += c.muU
			muG += c.muG
		}
		n := float64(reps)
		if err := t.AddRow(d(k), f(ksU/n), f(ksG/n), f(muU/n), f(muG/n)); err != nil {
			return nil, err
		}
	}
	return t, nil
}
