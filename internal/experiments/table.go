// Package experiments regenerates every figure of the paper's evaluation
// (Figures 5–8, panels (a) classification accuracy and (b) covariance
// compatibility, across the four data sets), plus the ablation and
// baseline studies described in DESIGN.md. The harness produces Table
// values that render as aligned text or CSV, so the same code backs the
// cmd/experiments binary and the bench suite.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a title, column headers, and
// string cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, which must match the column count.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("experiments: row with %d cells for %d columns", len(cells), len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table as RFC-4180-ish CSV (cells produced by this package
// never contain commas or quotes, so no escaping is needed).
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "%s\n", strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// f formats a float cell with 4 significant decimals.
func f(v float64) string { return fmt.Sprintf("%.4f", v) }

// d formats an int cell.
func d(v int) string { return fmt.Sprintf("%d", v) }

// f1 formats a float cell with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
