package core

import (
	"condensation/internal/telemetry"
)

// Engine metric names. The stage timers share one histogram family,
// discriminated by the "stage" label; the neighbor_search series adds a
// "backend" label naming the search implementation that produced the
// timing. See DESIGN.md §7 for the full metric table.
const (
	metricStageSeconds  = "condense_stage_seconds"
	metricGroupsFormed  = "condense_groups_formed_total"
	metricLeftovers     = "condense_leftover_records_total"
	metricSplitEvents   = "condense_split_events_total"
	metricStreamRecords = "condense_stream_records_total"
	metricGroups        = "condense_groups"

	// Read-path cache effectiveness, shared by the engine snapshot cache
	// (cache="snapshot") and the server's artifact memos (cache="synthesis",
	// "stats", "audit", "checkpoint"): a hit served previously materialized
	// state, a miss rebuilt it from the live groups.
	metricReadCacheHits   = "condense_read_cache_hits_total"
	metricReadCacheMisses = "condense_read_cache_misses_total"
)

// engineMetrics holds the pre-resolved handles the engine hot paths write
// to. The zero value is the disabled state: enabled is false, every handle
// is nil, and (because telemetry handles are nil-safe) every recording
// call is a no-op. Sites that time a stage guard the time.Now() calls
// behind enabled so the disabled path pays only a branch.
type engineMetrics struct {
	enabled bool

	search *telemetry.Histogram // stage=neighbor_search, backend=<impl>
	stats  *telemetry.Histogram // stage=group_stats: moment accumulation
	eigen  *telemetry.Histogram // stage=eigen: eigendecomposition
	synth  *telemetry.Histogram // stage=synthesis: point regeneration
	split  *telemetry.Histogram // stage=split: SplitGroupStatistics

	groupsFormed  *telemetry.Counter
	leftovers     *telemetry.Counter
	splitEvents   *telemetry.Counter
	streamRecords *telemetry.Counter
	groups        *telemetry.Gauge

	snapHits   *telemetry.Counter // cache=snapshot: Condensation reused cached clones
	snapMisses *telemetry.Counter // cache=snapshot: Condensation recloned groups
}

// newEngineMetrics resolves the engine handles from reg (nil reg means
// disabled). Extra label pairs, when given, are stamped onto every series
// — the sharded engine passes shard="i" so each shard's counters stay
// separable; a single-shard engine passes none and registers the exact
// unlabeled series. The neighbor_search series is registered separately
// via withSearchBackend because its backend label depends on the caller.
func newEngineMetrics(reg *telemetry.Registry, labels ...string) engineMetrics {
	if reg == nil {
		return engineMetrics{}
	}
	stage := func(name string) *telemetry.Histogram {
		return reg.Histogram(metricStageSeconds, nil, append([]string{"stage", name}, labels...)...)
	}
	return engineMetrics{
		enabled:       true,
		stats:         stage("group_stats"),
		eigen:         stage("eigen"),
		synth:         stage("synthesis"),
		split:         stage("split"),
		groupsFormed:  reg.Counter(metricGroupsFormed, labels...),
		leftovers:     reg.Counter(metricLeftovers, labels...),
		splitEvents:   reg.Counter(metricSplitEvents, labels...),
		streamRecords: reg.Counter(metricStreamRecords, labels...),
		groups:        reg.Gauge(metricGroups, labels...),
		snapHits:      reg.Counter(metricReadCacheHits, append([]string{"cache", "snapshot"}, labels...)...),
		snapMisses:    reg.Counter(metricReadCacheMisses, append([]string{"cache", "snapshot"}, labels...)...),
	}
}

// withSearchBackend attaches the neighbor_search stage series for the
// named backend ("quickselect", "scan-sort", "kdtree", or the dynamic
// engine's "centroid-scan"), carrying the same extra labels as the other
// engine series.
func (m *engineMetrics) withSearchBackend(reg *telemetry.Registry, backend string, labels ...string) {
	if reg == nil {
		return
	}
	m.search = reg.Histogram(metricStageSeconds, nil,
		append([]string{"stage", "neighbor_search", "backend", backend}, labels...)...)
}

// searchBackendLabel names the effective static backend for the metric
// label: SearchAuto resolves to the quickselect scan it actually runs.
func searchBackendLabel(s NeighborSearch) string {
	if s == SearchAuto {
		return SearchQuickselect.String()
	}
	return s.String()
}

// WithTelemetry attaches a metrics registry to the Condenser: every
// condensation it constructs (static, dynamic, or via Anonymize) records
// stage timings and group counters into reg. A nil registry (the default)
// disables telemetry; the engine then pays only dead branches. Telemetry
// is observe-only — it never feeds the rng or any decision, so output is
// bit-identical with it on or off.
func WithTelemetry(reg *telemetry.Registry) CondenserOption {
	return func(c *Condenser) { c.tel = reg }
}
