package core

import (
	"context"
	"errors"
	"fmt"

	"condensation/internal/dataset"
	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/telemetry"
)

// Condenser is the package's front door: one configured entry point for
// static condensation, dynamic stream maintenance, and data-set level
// anonymization. Build one with NewCondenser and functional options:
//
//	c, err := core.NewCondenser(25,
//		core.WithSeed(7),
//		core.WithSynthesis(core.SynthesisUniform),
//		core.WithNeighborSearch(core.SearchKDTree),
//		core.WithParallelism(8))
//	cond, err := c.Static(records)
//
// The zero configuration — NewCondenser(k) with no options — reproduces
// the paper exactly: uniform synthesis, principal-axis splits, leftovers
// merged into their nearest groups, seed 1, and the exact quickselect
// neighbour search (which forms the same groups as the paper's full
// scan-and-sort whenever pairwise distances are distinct).
//
// Unless WithRandomSource overrides it, every call derives a fresh rng
// stream from the configured seed, so calls are independently reproducible
// and a Condenser may be shared between goroutines.
type Condenser struct {
	k       int
	seed    uint64
	source  *rng.Source // optional caller-managed stream
	opts    Options
	search  searchConfig
	mode    Mode
	initial float64
	tel     *telemetry.Registry // nil means telemetry disabled
	trace   *telemetry.Tracer   // nil means tracing disabled
	journal *telemetry.Journal  // nil means lifecycle journal disabled
}

// CondenserOption configures a Condenser.
type CondenserOption func(*Condenser)

// WithSeed sets the seed from which each call's rng stream is derived
// (default 1).
func WithSeed(seed uint64) CondenserOption {
	return func(c *Condenser) { c.seed = seed; c.source = nil }
}

// WithRandomSource makes every call draw from the given shared stream
// instead of re-deriving one from the seed. This is for callers weaving
// condensation into a larger deterministic experiment (r.Split() chains);
// it makes the Condenser stateful and not safe for concurrent use.
func WithRandomSource(r *rng.Source) CondenserOption {
	return func(c *Condenser) { c.source = r }
}

// WithSynthesis selects the regeneration distribution (default uniform,
// the paper's choice).
func WithSynthesis(s Synthesis) CondenserOption {
	return func(c *Condenser) { c.opts.Synthesis = s }
}

// WithSplitAxis selects the dynamic split direction (default principal,
// the paper's choice).
func WithSplitAxis(a SplitAxis) CondenserOption {
	return func(c *Condenser) { c.opts.SplitAxis = a }
}

// WithLeftover selects the static leftover policy (default nearest group,
// the paper's choice).
func WithLeftover(l Leftover) CondenserOption {
	return func(c *Condenser) { c.opts.Leftover = l }
}

// WithOptions replaces the whole option block at once — a bridge for
// callers that already hold an Options value.
func WithOptions(o Options) CondenserOption {
	return func(c *Condenser) { c.opts = o }
}

// WithNeighborSearch selects the static neighbour-search backend
// (default SearchAuto: quickselect with a parallel distance sweep).
func WithNeighborSearch(s NeighborSearch) CondenserOption {
	return func(c *Condenser) { c.search.Search = s }
}

// WithParallelism bounds the worker goroutines of the static distance
// sweep; values < 1 (the default) mean runtime.NumCPU().
func WithParallelism(p int) CondenserOption {
	return func(c *Condenser) { c.search.Parallelism = p }
}

// WithIndexPrecision selects the dynamic routing index's arithmetic
// (default Float64). Float32 stores the pruning arena in single precision
// and re-verifies candidates in float64, so condensed output is
// bit-identical under either setting — this is a memory-bandwidth knob,
// not an accuracy trade.
func WithIndexPrecision(p IndexPrecision) CondenserOption {
	return func(c *Condenser) { c.search.Precision = p }
}

// WithMode selects the construction regime Anonymize uses (default
// static).
func WithMode(m Mode) CondenserOption {
	return func(c *Condenser) { c.mode = m }
}

// WithInitialFraction sets the fraction of records condensed statically up
// front in dynamic-mode Anonymize (default 0.25; values outside (0, 1]
// fall back to the default).
func WithInitialFraction(f float64) CondenserOption {
	return func(c *Condenser) { c.initial = f }
}

// WithTracer attaches a span tracer: static condensation, dynamic ingest,
// and synthesis then record sampled execution spans into its ring buffer.
// A nil tracer (the default) disables tracing. Tracing is observe-only —
// it never touches the rng stream, so output is bit-identical either way.
func WithTracer(tr *telemetry.Tracer) CondenserOption {
	return func(c *Condenser) { c.trace = tr }
}

// WithJournal attaches a group-lifecycle journal: dynamic engines built by
// this Condenser then record structured foundings, splits (with
// parent→child lineage), router rebuilds, and speculation fallbacks into
// its ring. A nil journal (the default) disables recording. Like the
// tracer, the journal is observe-only — it never touches the rng stream,
// so condensed output is bit-identical either way.
func WithJournal(j *telemetry.Journal) CondenserOption {
	return func(c *Condenser) { c.journal = j }
}

// NewCondenser builds a Condenser with indistinguishability level k. The
// zero configuration reproduces the paper; see the type documentation.
func NewCondenser(k int, opts ...CondenserOption) (*Condenser, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: indistinguishability level k = %d, must be ≥ 1", k)
	}
	c := &Condenser{k: k, seed: 1}
	for _, opt := range opts {
		opt(c)
	}
	if err := c.opts.validate(); err != nil {
		return nil, err
	}
	if err := c.search.validate(); err != nil {
		return nil, err
	}
	if c.mode != ModeStatic && c.mode != ModeDynamic {
		return nil, fmt.Errorf("core: unknown mode %d", int(c.mode))
	}
	return c, nil
}

// K returns the configured indistinguishability level.
func (c *Condenser) K() int { return c.k }

// Options returns the configured semantic options.
func (c *Condenser) Options() Options { return c.opts }

// rng returns the stream a call should draw from: the shared source when
// one was injected, otherwise a fresh stream derived from the seed.
func (c *Condenser) rng() *rng.Source {
	if c.source != nil {
		return c.source
	}
	return rng.New(c.seed)
}

// Static condenses the records into groups of at least k (Figure 1) using
// the configured neighbour-search backend and parallelism.
func (c *Condenser) Static(records []mat.Vector) (*Condensation, error) {
	return c.StaticContext(context.Background(), records)
}

// StaticContext is Static with a context: a span carried by ctx becomes
// the parent of the pipeline's trace spans (the context is not consulted
// for cancellation).
func (c *Condenser) StaticContext(ctx context.Context, records []mat.Vector) (*Condensation, error) {
	cond, _, err := staticCondense(ctx, records, c.k, c.rng(), c.opts, c.search, c.tel, c.trace)
	return cond, err
}

// StaticWithMembers is Static, additionally reporting which original
// records each group condensed — for privacy evaluation and tests only;
// membership must never leave the trusted collection boundary.
func (c *Condenser) StaticWithMembers(records []mat.Vector) (*Condensation, [][]int, error) {
	return staticCondense(context.Background(), records, c.k, c.rng(), c.opts, c.search, c.tel, c.trace)
}

// Dynamic returns an empty dynamic condenser (Figure 2) over records of
// the given dimensionality, for pure-stream deployments with no initial
// database. The Condenser's neighbour-search backend and parallelism
// configure the stream's centroid routing and AddBatch speculation.
func (c *Condenser) Dynamic(dim int) (*Dynamic, error) {
	d, err := NewDynamicEmpty(dim, c.k, c.opts, c.rng())
	if err != nil {
		return nil, err
	}
	d.setSearch(c.search)
	d.SetTelemetry(c.tel)
	d.SetTracer(c.trace)
	d.SetJournal(c.journal)
	return d, nil
}

// DynamicFrom returns a dynamic condenser seeded from an existing
// condensation — the paper's H = CreateCondensedGroups(k, D)
// initialization. The initial condensation's dimensionality is used; its k
// and options are superseded by the Condenser's.
func (c *Condenser) DynamicFrom(initial *Condensation) (*Dynamic, error) {
	if initial == nil {
		return nil, errors.New("core: nil initial condensation")
	}
	d, err := NewDynamic(initial, c.rng())
	if err != nil {
		return nil, err
	}
	d.k = c.k
	d.opts = c.opts
	d.setSearch(c.search)
	d.SetTelemetry(c.tel)
	d.SetTracer(c.trace)
	d.SetJournal(c.journal)
	return d, nil
}

// Bootstrap condenses an initial database statically and returns a
// dynamic condenser maintaining it — the paper's full dynamic setting in
// one call.
func (c *Condenser) Bootstrap(initial []mat.Vector) (*Dynamic, error) {
	r := c.rng()
	cond, _, err := staticCondense(context.Background(), initial, c.k, r, c.opts, c.search, c.tel, c.trace)
	if err != nil {
		return nil, err
	}
	d, err := NewDynamic(cond, r)
	if err != nil {
		return nil, err
	}
	d.setSearch(c.search)
	d.SetTelemetry(c.tel)
	d.SetTracer(c.trace)
	d.SetJournal(c.journal)
	return d, nil
}

// Anonymize produces a privacy-preserving replacement for ds using the
// configured mode, per-class for classification and jointly with the
// target for regression (Section 3.1).
func (c *Condenser) Anonymize(ds *dataset.Dataset) (*dataset.Dataset, *Report, error) {
	cfg := AnonymizeConfig{
		K:               c.k,
		Mode:            c.mode,
		Options:         c.opts,
		InitialFraction: c.initial,
		Search:          c.search.Search,
		Parallelism:     c.search.Parallelism,
		Telemetry:       c.tel,
		Tracer:          c.trace,
	}
	return Anonymize(ds, cfg, c.rng())
}
