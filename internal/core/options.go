// Package core implements the condensation approach to privacy-preserving
// data mining of Aggarwal & Yu: partitioning numeric records into condensed
// groups of at least k records, retaining only the per-group aggregate
// statistics (first-order sums, second-order sums, count), and regenerating
// anonymized records from those statistics by sampling uniformly along the
// eigenvectors of each group's covariance matrix.
//
// The package provides the static construction of Figure 1
// (CreateCondensedGroups), the dynamic stream maintenance of Figures 2–3
// (DynamicGroupMaintenance and SplitGroupStatistics), the anonymized-data
// synthesis of Section 2.1, and data-set level anonymization that condenses
// each class separately so that unmodified classifiers can run on the
// output (Section 3.1).
package core

import "fmt"

// Synthesis selects the distribution used to regenerate points along each
// eigenvector.
type Synthesis int

const (
	// SynthesisUniform draws each eigen-coordinate uniformly with variance
	// equal to the eigenvalue (range √(12λ)), as in the paper.
	SynthesisUniform Synthesis = iota
	// SynthesisGaussian draws each eigen-coordinate from N(0, λ). This is
	// an ablation: it matches the first two moments exactly but drops the
	// bounded-support locality argument of the paper.
	SynthesisGaussian
)

// String returns the synthesis-mode name.
func (s Synthesis) String() string {
	switch s {
	case SynthesisUniform:
		return "uniform"
	case SynthesisGaussian:
		return "gaussian"
	default:
		return fmt.Sprintf("Synthesis(%d)", int(s))
	}
}

// SplitAxis selects the eigenvector along which a full dynamic group is
// split.
type SplitAxis int

const (
	// SplitPrincipal splits along the eigenvector with the largest
	// eigenvalue — the paper's choice, minimizing child group variance.
	SplitPrincipal SplitAxis = iota
	// SplitRandom splits along a uniformly random eigenvector. This is an
	// ablation quantifying the value of the principal-axis choice.
	SplitRandom
)

// String returns the split-axis name.
func (s SplitAxis) String() string {
	switch s {
	case SplitPrincipal:
		return "principal"
	case SplitRandom:
		return "random"
	default:
		return fmt.Sprintf("SplitAxis(%d)", int(s))
	}
}

// Leftover selects what the static construction does with the final
// 1..k−1 records that cannot form a complete group.
type Leftover int

const (
	// LeftoverNearestGroup assigns each remaining record to the group with
	// the nearest centroid, as in the paper (some groups then exceed k).
	LeftoverNearestGroup Leftover = iota
	// LeftoverOwnGroup forms one undersized group from the remainder. This
	// violates the k-indistinguishability guarantee for those records and
	// exists only to measure the cost of the paper's policy (ablation).
	LeftoverOwnGroup
)

// String returns the leftover-policy name.
func (l Leftover) String() string {
	switch l {
	case LeftoverNearestGroup:
		return "nearest-group"
	case LeftoverOwnGroup:
		return "own-group"
	default:
		return fmt.Sprintf("Leftover(%d)", int(l))
	}
}

// Options tunes the condensation process. The zero value reproduces the
// paper exactly: uniform synthesis, principal-axis splits, leftovers merged
// into their nearest groups.
type Options struct {
	// Synthesis selects the regeneration distribution (default uniform).
	Synthesis Synthesis
	// SplitAxis selects the dynamic split direction (default principal).
	SplitAxis SplitAxis
	// Leftover selects the static leftover policy (default nearest group).
	Leftover Leftover
}

// validate rejects out-of-range option values.
func (o Options) validate() error {
	if o.Synthesis != SynthesisUniform && o.Synthesis != SynthesisGaussian {
		return fmt.Errorf("core: unknown synthesis mode %d", int(o.Synthesis))
	}
	if o.SplitAxis != SplitPrincipal && o.SplitAxis != SplitRandom {
		return fmt.Errorf("core: unknown split axis %d", int(o.SplitAxis))
	}
	if o.Leftover != LeftoverNearestGroup && o.Leftover != LeftoverOwnGroup {
		return fmt.Errorf("core: unknown leftover policy %d", int(o.Leftover))
	}
	return nil
}
