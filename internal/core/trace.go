package core

import "condensation/internal/telemetry"

// childSpan starts a child span only under an already-sampled parent.
// Unlike Tracer.StartChild, a nil parent yields nil rather than a fresh
// sampled root: interior pipeline stages (split, speculate, apply,
// leftover) only ever appear inside the tree of the operation that won the
// sampling draw, never as detached roots of their own.
func childSpan(tr *telemetry.Tracer, parent *telemetry.Span, name string) *telemetry.Span {
	if parent == nil {
		return nil
	}
	return tr.StartChild(parent, name)
}
