package core

import (
	"context"
	"fmt"
	"testing"

	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/stats"
)

// gaussianRecords returns n records of dimension d with i.i.d. standard
// normal attributes — pairwise distances are distinct almost surely, which
// is the regime where every neighbour-search backend must form identical
// groups.
func gaussianRecords(seed uint64, n, d int) []mat.Vector {
	r := rng.New(seed)
	out := make([]mat.Vector, n)
	for i := range out {
		v := make(mat.Vector, d)
		for j := range v {
			v[j] = r.Norm()
		}
		out[i] = v
	}
	return out
}

// groupKey renders a group's exact aggregate statistics for comparison.
func groupKey(g *stats.Group) string {
	return fmt.Sprintf("n=%d fs=%v sc=%v", g.N(), g.FirstOrderSums(), g.SecondOrderSums())
}

// TestSearchBackendEquivalence is the fast-path cross-check: under the
// same rng seed, the quickselect and kd-tree backends must produce groups
// with aggregate statistics identical (bit for bit — members are added in
// the same ascending-distance order) to the reference scan-sort path.
func TestSearchBackendEquivalence(t *testing.T) {
	for _, tc := range []struct {
		n, d, k int
	}{
		{60, 2, 5},
		{237, 3, 10}, // leftovers exercise the nearest-group fold-in
		{500, 4, 25}, // multiple kd-tree rebuilds
		{120, 8, 7},  // moderate dimension
		{40, 2, 40},  // one group swallows everything
		{35, 2, 50},  // fewer records than k: single undersized group
	} {
		records := gaussianRecords(uint64(tc.n)*31+uint64(tc.d), tc.n, tc.d)
		reference, refMembers, err := staticCondense(context.Background(), records, tc.k, rng.New(9), Options{},
			searchConfig{Search: SearchScanSort}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, search := range []NeighborSearch{SearchAuto, SearchQuickselect, SearchKDTree} {
			c, err := NewCondenser(tc.k, WithSeed(9), WithNeighborSearch(search))
			if err != nil {
				t.Fatal(err)
			}
			cond, members, err := c.StaticWithMembers(records)
			if err != nil {
				t.Fatalf("n=%d k=%d %v: %v", tc.n, tc.k, search, err)
			}
			if cond.NumGroups() != reference.NumGroups() {
				t.Fatalf("n=%d k=%d %v: %d groups, reference has %d",
					tc.n, tc.k, search, cond.NumGroups(), reference.NumGroups())
			}
			refGroups := reference.Groups()
			gotGroups := cond.Groups()
			for gi := range refGroups {
				want, got := groupKey(refGroups[gi]), groupKey(gotGroups[gi])
				if got != want {
					t.Errorf("n=%d k=%d %v group %d:\n got %s\nwant %s",
						tc.n, tc.k, search, gi, got, want)
				}
			}
			for gi := range refMembers {
				if len(members[gi]) != len(refMembers[gi]) {
					t.Errorf("n=%d k=%d %v group %d: %d members, reference %d",
						tc.n, tc.k, search, gi, len(members[gi]), len(refMembers[gi]))
					continue
				}
				for mi := range refMembers[gi] {
					if members[gi][mi] != refMembers[gi][mi] {
						t.Errorf("n=%d k=%d %v group %d member %d: %d, reference %d",
							tc.n, tc.k, search, gi, mi, members[gi][mi], refMembers[gi][mi])
						break
					}
				}
			}
		}
	}
}

// TestParallelSweepEquivalence forces the chunked parallel sweep (the
// cutoff normally hides it at test sizes is bypassed by record count) and
// checks it against the single-threaded sweep.
func TestParallelSweepEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("large record set")
	}
	records := gaussianRecords(77, parallelSweepCutoff+500, 3)
	serial, err := NewCondenser(40, WithSeed(3), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewCondenser(40, WithSeed(3), WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.Static(records)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parallel.Static(records)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumGroups() != want.NumGroups() {
		t.Fatalf("parallel sweep: %d groups, serial %d", got.NumGroups(), want.NumGroups())
	}
	wantGroups, gotGroups := want.Groups(), got.Groups()
	for gi := range wantGroups {
		if groupKey(gotGroups[gi]) != groupKey(wantGroups[gi]) {
			t.Fatalf("parallel sweep diverged at group %d", gi)
		}
	}
}

// TestCondenserDefaultsMatchDeprecatedAPI pins the compatibility contract:
// the zero-option facade with seed s equals the deprecated positional call
// with rng.New(s).
func TestCondenserDefaultsMatchDeprecatedAPI(t *testing.T) {
	records := gaussianRecords(5, 90, 3)
	c, err := NewCondenser(6, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	facade, err := c.Static(records)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := Static(records, 6, rng.New(42), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if facade.NumGroups() != legacy.NumGroups() {
		t.Fatalf("facade %d groups, legacy %d", facade.NumGroups(), legacy.NumGroups())
	}
	fg, lg := facade.Groups(), legacy.Groups()
	for gi := range fg {
		if groupKey(fg[gi]) != groupKey(lg[gi]) {
			t.Fatalf("facade diverged from legacy API at group %d", gi)
		}
	}
}

// TestCondenserSharedAcrossGoroutines exercises the documented concurrency
// contract (seed-configured Condensers are shareable) under -race.
func TestCondenserSharedAcrossGoroutines(t *testing.T) {
	records := gaussianRecords(6, 300, 3)
	c, err := NewCondenser(10, WithSeed(1), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	conds := make([]*Condensation, workers)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			cond, err := c.Static(records)
			conds[w] = cond
			errs <- err
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for w := 1; w < workers; w++ {
		if conds[w].NumGroups() != conds[0].NumGroups() {
			t.Fatalf("worker %d saw %d groups, worker 0 saw %d",
				w, conds[w].NumGroups(), conds[0].NumGroups())
		}
	}
}

func TestCondenserDynamic(t *testing.T) {
	c, err := NewCondenser(4, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := c.Dynamic(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := dyn.AddAll(gaussianRecords(8, 50, 2)); err != nil {
		t.Fatal(err)
	}
	cond := dyn.Condensation()
	if cond.TotalCount() != 50 || cond.K() != 4 {
		t.Errorf("dynamic condensation: %d records k=%d", cond.TotalCount(), cond.K())
	}

	// Bootstrap = static init + dynamic maintenance in one call.
	dyn2, err := c.Bootstrap(gaussianRecords(9, 40, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := dyn2.AddAll(gaussianRecords(10, 30, 2)); err != nil {
		t.Fatal(err)
	}
	if got := dyn2.Condensation().TotalCount(); got != 70 {
		t.Errorf("bootstrap total = %d, want 70", got)
	}
}

func TestCondenserValidation(t *testing.T) {
	if _, err := NewCondenser(0); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := NewCondenser(2, WithSynthesis(Synthesis(9))); err == nil {
		t.Error("bad synthesis accepted")
	}
	if _, err := NewCondenser(2, WithNeighborSearch(NeighborSearch(9))); err == nil {
		t.Error("bad search backend accepted")
	}
	if _, err := NewCondenser(2, WithMode(Mode(9))); err == nil {
		t.Error("bad mode accepted")
	}
	c, err := NewCondenser(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DynamicFrom(nil); err == nil {
		t.Error("nil initial condensation accepted")
	}
	if c.K() != 3 {
		t.Errorf("K = %d", c.K())
	}
}

func TestParseNeighborSearch(t *testing.T) {
	for _, s := range []NeighborSearch{SearchAuto, SearchScanSort, SearchQuickselect, SearchKDTree} {
		got, err := ParseNeighborSearch(s.String())
		if err != nil || got != s {
			t.Errorf("round-trip %v: got %v, err %v", s, got, err)
		}
	}
	if _, err := ParseNeighborSearch("bogus"); err == nil {
		t.Error("bogus backend accepted")
	}
}
