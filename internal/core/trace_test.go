package core

import (
	"bytes"
	"context"
	"testing"

	"condensation/internal/rng"
	"condensation/internal/telemetry"
)

// TestTracingObserveOnly proves the observe-only contract of the tracing
// layer: with a tracer attached and sampling every operation, static
// condensation, dynamic per-record ingest, batch ingest at several
// parallelism levels, and synthesis all produce bit-identical output to
// the untraced run — the tracer never touches the engine's rng stream or
// routing decisions.
func TestTracingObserveOnly(t *testing.T) {
	const k, dim = 5, 3
	stream := gaussianRecords(31, 900, dim)

	build := func(tr *telemetry.Tracer, parallelism int) *Dynamic {
		t.Helper()
		d, err := NewDynamicEmpty(dim, k, Options{}, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		d.SetParallelism(parallelism)
		d.SetTracer(tr)
		return d
	}

	// Reference: no tracer, sequential Add.
	ref := build(nil, 1)
	for _, x := range stream {
		if err := ref.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	want := dynamicFingerprint(t, ref)

	for _, par := range []int{1, 4} {
		// Traced per-record ingest, sampling every record.
		tr := telemetry.NewTracer(256, 1)
		d := build(tr, par)
		for _, x := range stream {
			if err := d.Add(x); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(want, dynamicFingerprint(t, d)) {
			t.Fatalf("traced Add(par=%d) diverged from untraced run", par)
		}
		if tr.Len() == 0 {
			t.Fatal("tracing at 1-in-1 recorded no spans")
		}

		// Traced batch ingest under a request-style parent span.
		tr = telemetry.NewTracer(256, 1)
		d = build(tr, par)
		ctx, root := tr.Start(context.Background(), "request")
		if err := d.AddBatchContext(ctx, stream); err != nil {
			t.Fatal(err)
		}
		root.End()
		if !bytes.Equal(want, dynamicFingerprint(t, d)) {
			t.Fatalf("traced AddBatch(par=%d) diverged from untraced run", par)
		}
		names := map[string]bool{}
		for _, ev := range tr.Events(0) {
			names[ev.Name] = true
		}
		for _, n := range []string{"dynamic.add_batch", "dynamic.speculate", "dynamic.apply", "dynamic.split"} {
			if !names[n] {
				t.Errorf("batch trace missing %q span (got %v)", n, names)
			}
		}
	}

	// Static pipeline: traced and untraced runs condense identically.
	records := gaussianRecords(41, 300, dim)
	plain, err := NewCondenser(k, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	wantCond, err := plain.Static(records)
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTracer(64, 1)
	traced, err := NewCondenser(k, WithSeed(3), WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	gotCond, err := traced.Static(records)
	if err != nil {
		t.Fatal(err)
	}
	wantSynth, err := wantCond.Synthesize(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	gotCond.SetTracer(tr)
	gotSynth, err := gotCond.Synthesize(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(wantSynth) != len(gotSynth) {
		t.Fatalf("synthesis sizes differ: %d vs %d", len(wantSynth), len(gotSynth))
	}
	for i := range wantSynth {
		for j := range wantSynth[i] {
			if wantSynth[i][j] != gotSynth[i][j] {
				t.Fatalf("traced synthesis diverged at record %d attr %d", i, j)
			}
		}
	}
	names := map[string]bool{}
	for _, ev := range tr.Events(0) {
		names[ev.Name] = true
	}
	for _, n := range []string{"static.condense", "static.groups", "synthesize"} {
		if !names[n] {
			t.Errorf("static trace missing %q span (got %v)", n, names)
		}
	}
}

// TestTracingDisabledNoSpans: the default nil tracer records nothing and
// ingest still works (the hot-path guard).
func TestTracingDisabledNoSpans(t *testing.T) {
	d, err := NewDynamicEmpty(2, 3, Options{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	d.SetTracer(nil)
	for _, x := range gaussianRecords(2, 50, 2) {
		if err := d.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	if d.TotalCount() != 50 {
		t.Fatalf("ingested %d records, want 50", d.TotalCount())
	}
}
