package core

import (
	"math"
	"sort"

	"condensation/internal/kernel"
	"condensation/internal/mat"
	"condensation/internal/stats"
)

// This file is the engine's explainability surface: per-group lifecycle
// diagnostics (GroupInfos, GroupByID) and the routing dry-run (Explain).
// Everything here is strictly read-only — no method mutates groups,
// centroids, routers, the rng stream, counters, or shared scratch — so the
// whole surface is safe under a read lock concurrent with other readers,
// and calling it any number of times leaves checkpoint bytes untouched.

// Explain outcomes: what ingesting the explained record would do.
const (
	// ExplainAbsorb: the record would be absorbed by the nearest group.
	ExplainAbsorb = "absorb"
	// ExplainSplit: absorbing the record would bring the nearest group to
	// 2k records and trigger the paper's split.
	ExplainSplit = "split"
	// ExplainFound: the engine (or the record's shard) holds no groups yet,
	// so the record would found the first one.
	ExplainFound = "found"
)

// explainDefaultTop is the candidate count Explain reports when the caller
// does not ask for a specific one.
const explainDefaultTop = 5

// GroupInfo is one group's lifecycle summary, computed from the retained
// moments and the observe-only birth annotations alone.
type GroupInfo struct {
	// ID is the group's stable engine-wide id (see Dynamic's id scheme).
	ID uint64 `json:"id"`
	// Shard is the engine shard holding the group.
	Shard int `json:"shard"`
	// Size is n(G), the number of condensed records.
	Size int `json:"size"`
	// BirthGeneration is the mutation generation the group was born at
	// (0 for groups seeded from an initial condensation or checkpoint).
	BirthGeneration uint64 `json:"birth_generation"`
	// Parent is the id of the split parent the group was born from, or 0
	// for founded and initial groups.
	Parent uint64 `json:"parent,omitempty"`
	// CentroidDrift is the Euclidean distance between the group's current
	// centroid and its centroid at birth — how far absorbed records have
	// dragged the group since it was created.
	CentroidDrift float64 `json:"centroid_drift"`
}

// GroupDetail extends GroupInfo with the group's centroids and covariance
// conditioning for the per-group diagnostics endpoint.
type GroupDetail struct {
	GroupInfo
	// Centroid is the group's current centroid Y(G).
	Centroid mat.Vector `json:"centroid"`
	// BirthCentroid is the centroid at the group's birth.
	BirthCentroid mat.Vector `json:"birth_centroid"`
	// CondNumber is the covariance condition number λmax/λmin, the same
	// convention the audit uses; 0 when Degenerate.
	CondNumber float64 `json:"condition_number,omitempty"`
	// Degenerate reports a covariance with a non-positive extreme
	// eigenvalue (singleton groups, collapsed attributes), for which the
	// condition number is undefined.
	Degenerate bool `json:"degenerate"`
}

// ExplainCandidate is one nearest-centroid candidate of a routing dry-run.
type ExplainCandidate struct {
	// ID is the candidate group's stable id.
	ID uint64 `json:"id"`
	// DistanceSq is the exact float64 squared Euclidean distance from the
	// explained record to the candidate's centroid — the quantity routing
	// minimizes.
	DistanceSq float64 `json:"distance_sq"`
	// Size is the candidate's current record count.
	Size int `json:"size"`
}

// Explanation is the result of a routing dry-run: where a record would go
// and what would happen to it, computed without ingesting it.
type Explanation struct {
	// Shard is the shard the record routes to (0 on a single Dynamic).
	Shard int `json:"shard"`
	// Generation is the mutation generation the dry-run observed; the
	// explanation is exact for this state.
	Generation uint64 `json:"generation"`
	// Groups is the group count of the routed shard.
	Groups int `json:"groups"`
	// Outcome is one of the Explain* constants.
	Outcome string `json:"outcome"`
	// Routed is the winning candidate — the exact lexicographic
	// (distance, id) minimum every router backend agrees on. Nil when the
	// outcome is ExplainFound.
	Routed *ExplainCandidate `json:"routed,omitempty"`
	// Candidates are the top-M nearest groups in exact (distance, id)
	// order; Candidates[0] equals *Routed.
	Candidates []ExplainCandidate `json:"candidates,omitempty"`
	// F32Active reports whether the float32 shadow index is routing
	// (SetIndexPrecision(Float32)).
	F32Active bool `json:"f32_active"`
	// F32Margin, when F32Active, is the |d32 − d64| error bound the shadow
	// index would use for this record: candidates within 2·margin of the
	// float32 minimum are re-verified in float64. A margin much smaller
	// than the gap between Candidates[0] and Candidates[1] explains why
	// float32 pruning is safe for this data scale.
	F32Margin float64 `json:"f32_margin,omitempty"`
}

// groupInfoAt summarizes group slot i. Read-only; caller holds the lock.
func (d *Dynamic) groupInfoAt(i int, g *stats.Group) GroupInfo {
	b := d.births[i]
	return GroupInfo{
		ID:              d.ids[i],
		Shard:           d.shardIndex,
		Size:            g.N(),
		BirthGeneration: b.gen,
		Parent:          b.parent,
		CentroidDrift:   d.centroids[i].Dist(b.centroid),
	}
}

// appendGroupInfos appends every group's summary to buf in slot order.
func (d *Dynamic) appendGroupInfos(buf []GroupInfo) []GroupInfo {
	for i, g := range d.groups {
		buf = append(buf, d.groupInfoAt(i, g))
	}
	return buf
}

// GroupInfos appends every live group's lifecycle summary to buf (resliced
// to zero length first) and returns it, in stable slot order. Like
// Condensation, it is a pure read: callers sharing the engine across
// goroutines need only a read lock.
func (d *Dynamic) GroupInfos(buf []GroupInfo) []GroupInfo {
	return d.appendGroupInfos(buf[:0])
}

// GroupByID returns the diagnostics detail of the live group with the
// given stable id. The lookup is a linear scan over the group slots —
// diagnostics cadence, not serving cadence. Pure read, like GroupInfos;
// the eigensolve uses fresh workspaces, never the engine's split scratch.
func (d *Dynamic) GroupByID(id uint64) (GroupDetail, bool) {
	for i := range d.ids {
		if d.ids[i] == id {
			return d.groupDetailAt(i), true
		}
	}
	return GroupDetail{}, false
}

// groupDetailAt builds the detail view of group slot i.
func (d *Dynamic) groupDetailAt(i int) GroupDetail {
	g := d.groups[i]
	det := GroupDetail{
		GroupInfo:     d.groupInfoAt(i, g),
		Centroid:      d.centroids[i].Clone(),
		BirthCentroid: d.births[i].centroid.Clone(),
	}
	eig, err := g.Eigen()
	if err != nil {
		det.Degenerate = true
		return det
	}
	// The audit's convention: eigenvalues sorted descending, condition
	// number defined only when both extremes are strictly positive.
	lmax := eig.Values[0]
	lmin := eig.Values[len(eig.Values)-1]
	if lmin <= 0 || lmax <= 0 {
		det.Degenerate = true
		return det
	}
	det.CondNumber = lmax / lmin
	return det
}

// Explain dry-runs routing one record: it reports the top candidate groups
// in the exact (squared distance, id) order every router backend produces,
// and the outcome ingesting the record would have — absorb, split (the
// nearest group sits at 2k−1), or found (no groups yet). top ≤ 0 asks for
// the default candidate count.
//
// The dry-run is strictly side-effect-free: it scans the engine's centroid
// cache directly instead of going through the router (whose sampled stage
// timing advances a counter), mutates nothing, and draws nothing from the
// rng stream — so checkpoint bytes and condensed output are bit-identical
// whether Explain was called or not. Callers sharing the engine across
// goroutines need only a read lock.
func (d *Dynamic) Explain(x mat.Vector, top int) (*Explanation, error) {
	if err := d.validateRecord(x); err != nil {
		return nil, err
	}
	if top <= 0 {
		top = explainDefaultTop
	}
	ex := &Explanation{Shard: d.shardIndex, Generation: d.lastMut, Groups: len(d.groups)}
	if r, ok := d.router.(*f32Router); ok {
		// Report the margin the shadow index would bound this query with —
		// computed against a local copy of the running maximum so the
		// dry-run never widens the router's own bound.
		ex.F32Active = true
		maxAbs := r.maxAbs
		for _, v := range x {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		ex.F32Margin = kernel.MarginF32(d.dim, maxAbs)
	}
	if len(d.groups) == 0 {
		ex.Outcome = ExplainFound
		return ex, nil
	}

	type slotDist struct {
		slot int
		d2   float64
	}
	order := make([]slotDist, len(d.centroids))
	for i, c := range d.centroids {
		order[i] = slotDist{slot: i, d2: x.DistSq(c)}
	}
	// The routers' lexicographic (squared distance, slot) minimum, extended
	// to a total order so Candidates[0] is exactly where Add would route.
	sort.Slice(order, func(a, b int) bool {
		if order[a].d2 != order[b].d2 {
			return order[a].d2 < order[b].d2
		}
		return order[a].slot < order[b].slot
	})
	if top > len(order) {
		top = len(order)
	}
	ex.Candidates = make([]ExplainCandidate, top)
	for i := 0; i < top; i++ {
		s := order[i]
		ex.Candidates[i] = ExplainCandidate{
			ID:         d.ids[s.slot],
			DistanceSq: s.d2,
			Size:       d.groups[s.slot].N(),
		}
	}
	routed := ex.Candidates[0]
	ex.Routed = &routed
	if d.groups[order[0].slot].N()+1 == 2*d.k {
		ex.Outcome = ExplainSplit
	} else {
		ex.Outcome = ExplainAbsorb
	}
	return ex, nil
}

// GroupInfos appends every shard's group summaries to buf (resliced to
// zero length first) in shard-then-slot order, each shard read under its
// own read lock.
func (s *Sharded) GroupInfos(buf []GroupInfo) []GroupInfo {
	buf = buf[:0]
	for _, sh := range s.shards {
		sh.mu.RLock()
		buf = sh.dyn.appendGroupInfos(buf)
		sh.mu.RUnlock()
	}
	return buf
}

// GroupByID returns the detail of the live group with the given id. The
// owning shard is recovered from the id's base bits, so only that shard's
// read lock is taken.
func (s *Sharded) GroupByID(id uint64) (GroupDetail, bool) {
	i := int(id >> groupIDShardShift)
	if i < 0 || i >= len(s.shards) {
		return GroupDetail{}, false
	}
	sh := s.shards[i]
	sh.mu.RLock()
	det, ok := sh.dyn.GroupByID(id)
	sh.mu.RUnlock()
	return det, ok
}

// Explain dry-runs routing one record: the record's shard is resolved by
// the same stable hash ingestion uses, and the dry-run runs under that
// shard's read lock — strictly side-effect-free, concurrent with ingest on
// every other shard.
func (s *Sharded) Explain(x mat.Vector, top int) (*Explanation, error) {
	if err := s.validateRecord(x); err != nil {
		return nil, err
	}
	sh := s.shards[s.shardOf(x)]
	sh.mu.RLock()
	ex, err := sh.dyn.Explain(x, top)
	sh.mu.RUnlock()
	return ex, err
}
