package core

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/stats"
)

// randomRecords draws n records in d dimensions with mixed scales.
func randomRecords(r *rng.Source, n, d int) []mat.Vector {
	out := make([]mat.Vector, n)
	for i := range out {
		x := make(mat.Vector, d)
		for j := range x {
			switch j % 3 {
			case 0:
				x[j] = r.Norm()
			case 1:
				x[j] = r.Uniform(-10, 10)
			default:
				x[j] = r.Exp(0.5)
			}
		}
		out[i] = x
	}
	return out
}

// Property: static condensation always covers every record exactly once
// and meets the indistinguishability level whenever the data allows it.
func TestStaticInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.IntN(120)
		d := 1 + r.IntN(5)
		k := 1 + r.IntN(15)
		recs := randomRecords(r, n, d)
		cond, err := Static(recs, k, r.Split(), Options{})
		if err != nil {
			return false
		}
		if cond.TotalCount() != n {
			return false
		}
		wantMin := k
		if n < k {
			wantMin = n // a single undersized group is the only option
		}
		return cond.MinGroupSize() >= wantMin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: dynamic maintenance never lets a group reach 2k and never
// loses a record, for arbitrary streams.
func TestDynamicInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		d := 1 + r.IntN(4)
		k := 1 + r.IntN(10)
		streamLen := 1 + r.IntN(200)
		dyn, err := NewDynamicEmpty(d, k, Options{}, r.Split())
		if err != nil {
			return false
		}
		for i := 0; i < streamLen; i++ {
			x := randomRecords(r, 1, d)[0]
			if err := dyn.Add(x); err != nil {
				return false
			}
		}
		snap := dyn.Condensation()
		if snap.TotalCount() != streamLen {
			return false
		}
		for _, g := range snap.Groups() {
			if g.N() >= 2*k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: under arbitrary interleavings of Add and AddBatch — random
// batch sizes, random routing backends, random speculation parallelism —
// a dynamic condenser bootstrapped from a static condensation keeps every
// group inside the paper's steady-state band k ≤ n(G) ≤ 2k−1 and never
// loses a record. (Splits interleave implicitly: any group reaching 2k is
// split on the spot, which is what makes the upper bound tight.)
func TestDynamicInterleavingInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		d := 1 + r.IntN(4)
		k := 2 + r.IntN(8)
		base := randomRecords(r, k+r.IntN(4*k), d)
		cond, err := Static(base, k, r.Split(), Options{})
		if err != nil {
			return false
		}
		dyn, err := NewDynamic(cond, r.Split())
		if err != nil {
			return false
		}
		backends := []NeighborSearch{SearchAuto, SearchScanSort, SearchKDTree}
		if err := dyn.SetNeighborSearch(backends[r.IntN(len(backends))]); err != nil {
			return false
		}
		dyn.SetParallelism(1 + r.IntN(8))
		total := len(base)
		for op := 0; op < 12; op++ {
			if r.Bool(0.5) {
				x := randomRecords(r, 1, d)[0]
				if err := dyn.Add(x); err != nil {
					return false
				}
				total++
			} else {
				batch := randomRecords(r, r.IntN(60), d)
				if err := dyn.AddBatch(batch); err != nil {
					return false
				}
				total += len(batch)
			}
		}
		if dyn.TotalCount() != total {
			return false
		}
		for _, g := range dyn.Condensation().Groups() {
			if g.N() < k || g.N() > 2*k-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: synthesized data preserves each group's mean within the
// standard error implied by the group's own spread, and the global moment
// sums are finite and of the right cardinality.
func TestSynthesisGroupMeanProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 30 + r.IntN(80)
		d := 1 + r.IntN(4)
		k := 5 + r.IntN(10)
		recs := randomRecords(r, n, d)
		cond, err := Static(recs, k, r.Split(), Options{})
		if err != nil {
			return false
		}
		grouped, err := cond.SynthesizeGrouped(r.Split())
		if err != nil {
			return false
		}
		for gi, g := range cond.Groups() {
			mean, err := g.Mean()
			if err != nil {
				return false
			}
			eig, err := g.Eigen()
			if err != nil {
				return false
			}
			synthMean := mat.NewVector(g.Dim())
			for _, x := range grouped[gi] {
				synthMean.AddScaled(1, x)
			}
			synthMean = synthMean.Scale(1 / float64(len(grouped[gi])))
			// The synthesized mean deviates by at most a few standard
			// errors; use a generous 6·σ/√n bound along the total spread.
			spread := math.Sqrt(eig.Values.Sum())
			bound := 6*spread/math.Sqrt(float64(g.N())) + 1e-9
			if synthMean.Dist(mean) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: splitting any 2k group preserves the total first-order sums
// exactly (mass balance) regardless of geometry.
func TestSplitMassBalanceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		d := 1 + r.IntN(5)
		k := 1 + r.IntN(12)
		g := stats.NewGroup(d)
		for _, x := range randomRecords(r, 2*k, d) {
			if err := g.Add(x); err != nil {
				return false
			}
		}
		m1, m2, err := SplitGroup(g, k, SplitPrincipal, nil)
		if err != nil {
			return false
		}
		total := m1.FirstOrderSums().Add(m2.FirstOrderSums())
		want := g.FirstOrderSums()
		scale := 1 + want.Norm()
		return total.Sub(want).Norm() <= 1e-8*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a checkpoint round trip is the identity on group structure for
// arbitrary condensations.
func TestPersistRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.IntN(60)
		d := 1 + r.IntN(4)
		k := 1 + r.IntN(8)
		recs := randomRecords(r, n, d)
		cond, err := Static(recs, k, r.Split(), Options{})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := cond.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadCondensation(&buf)
		if err != nil {
			return false
		}
		if got.NumGroups() != cond.NumGroups() || got.TotalCount() != cond.TotalCount() {
			return false
		}
		og, gg := cond.Groups(), got.Groups()
		for i := range og {
			if !og[i].FirstOrderSums().Equal(gg[i].FirstOrderSums(), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
