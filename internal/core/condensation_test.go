package core

import (
	"math"
	"testing"

	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/stats"
)

// correlatedRecords draws records with a strong known correlation between
// the two attributes.
func correlatedRecords(seed uint64, n int) []mat.Vector {
	r := rng.New(seed)
	out := make([]mat.Vector, n)
	for i := range out {
		base := r.Norm()
		out[i] = mat.Vector{3 * base, 3*base + 0.5*r.Norm()}
	}
	return out
}

func TestSynthesizeCountAndDim(t *testing.T) {
	recs := correlatedRecords(1, 60)
	cond, err := Static(recs, 6, rng.New(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	synth, err := cond.Synthesize(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(synth) != len(recs) {
		t.Fatalf("synthesized %d records, want %d", len(synth), len(recs))
	}
	for i, x := range synth {
		if len(x) != 2 || !x.IsFinite() {
			t.Fatalf("synthesized record %d invalid: %v", i, x)
		}
	}
}

func TestSynthesizeK1ReproducesOriginals(t *testing.T) {
	// With k=1 each group holds one record with zero covariance, so the
	// synthesized set equals the original set exactly (up to ordering).
	recs := correlatedRecords(4, 15)
	cond, err := Static(recs, 1, rng.New(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	synth, err := cond.Synthesize(rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range synth {
		found := false
		for _, o := range recs {
			if s.Equal(o, 1e-9) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("synthesized record %v matches no original", s)
		}
	}
}

func TestSynthesizePreservesGroupMoments(t *testing.T) {
	// Within a single large group, the synthesized sample's mean and
	// covariance must converge to the group statistics.
	recs := correlatedRecords(7, 40)
	g, err := stats.FromRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	// Build a condensation holding this one group, then synthesize many
	// replicas by re-seeding.
	cond := newCondensation(2, 40, Options{}, []*stats.Group{g})
	gMean, _ := g.Mean()
	gCov, _ := g.Covariance()

	agg := stats.NewGroup(2)
	for seed := uint64(0); seed < 200; seed++ {
		synth, err := cond.Synthesize(rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range synth {
			if err := agg.Add(x); err != nil {
				t.Fatal(err)
			}
		}
	}
	sMean, _ := agg.Mean()
	sCov, _ := agg.Covariance()
	if !sMean.Equal(gMean, 0.1) {
		t.Errorf("synthesized mean %v, want %v", sMean, gMean)
	}
	if !sCov.Equal(gCov, 0.35*(1+gCov.FrobeniusNorm())) {
		t.Errorf("synthesized covariance\n%v\nwant\n%v", sCov, gCov)
	}
}

func TestSynthesizeGaussianPreservesMoments(t *testing.T) {
	recs := correlatedRecords(8, 40)
	g, err := stats.FromRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	cond := newCondensation(2, 40, Options{Synthesis: SynthesisGaussian}, []*stats.Group{g})
	gMean, _ := g.Mean()

	agg := stats.NewGroup(2)
	for seed := uint64(0); seed < 100; seed++ {
		synth, err := cond.Synthesize(rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range synth {
			if err := agg.Add(x); err != nil {
				t.Fatal(err)
			}
		}
	}
	sMean, _ := agg.Mean()
	if !sMean.Equal(gMean, 0.15) {
		t.Errorf("gaussian synthesized mean %v, want %v", sMean, gMean)
	}
}

func TestSynthesizeUniformIsBounded(t *testing.T) {
	// Uniform synthesis has bounded support: every eigen-coordinate lies
	// within ±√(12λ)/2 of the centroid.
	recs := correlatedRecords(9, 30)
	g, err := stats.FromRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	cond := newCondensation(2, 30, Options{}, []*stats.Group{g})
	mean, _ := g.Mean()
	eig, _ := g.Eigen()

	synth, err := cond.Synthesize(rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range synth {
		dev := x.Sub(mean)
		for j := 0; j < 2; j++ {
			coord := dev.Dot(eig.Vector(j))
			bound := math.Sqrt(12*eig.Values[j])/2 + 1e-9
			if math.Abs(coord) > bound {
				t.Fatalf("eigen-coordinate %g exceeds uniform bound %g", coord, bound)
			}
		}
	}
}

func TestSynthesizeGroupedAlignment(t *testing.T) {
	recs := correlatedRecords(11, 24)
	cond, err := Static(recs, 4, rng.New(12), Options{})
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := cond.SynthesizeGrouped(rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if len(grouped) != cond.NumGroups() {
		t.Fatalf("%d grouped outputs for %d groups", len(grouped), cond.NumGroups())
	}
	for i, g := range cond.Groups() {
		if len(grouped[i]) != g.N() {
			t.Errorf("group %d: %d synthesized for %d condensed", i, len(grouped[i]), g.N())
		}
	}
}

func TestSynthesizeNilSource(t *testing.T) {
	cond, err := Static(correlatedRecords(14, 10), 2, rng.New(15), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cond.Synthesize(nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cond, err := Static(correlatedRecords(16, 20), 4, rng.New(17), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := cond.Synthesize(rng.New(18))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cond.Synthesize(rng.New(18))
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if !s1[i].Equal(s2[i], 0) {
			t.Fatal("synthesis is not deterministic for a fixed seed")
		}
	}
}

func TestOptionStrings(t *testing.T) {
	if SynthesisUniform.String() != "uniform" || SynthesisGaussian.String() != "gaussian" {
		t.Error("Synthesis.String wrong")
	}
	if SplitPrincipal.String() != "principal" || SplitRandom.String() != "random" {
		t.Error("SplitAxis.String wrong")
	}
	if LeftoverNearestGroup.String() != "nearest-group" || LeftoverOwnGroup.String() != "own-group" {
		t.Error("Leftover.String wrong")
	}
	if ModeStatic.String() != "static" || ModeDynamic.String() != "dynamic" {
		t.Error("Mode.String wrong")
	}
	for _, s := range []string{Synthesis(9).String(), SplitAxis(9).String(), Leftover(9).String(), Mode(9).String()} {
		if s == "" {
			t.Error("unknown enum String empty")
		}
	}
}

func TestMergeCondensations(t *testing.T) {
	a, err := Static(correlatedRecords(30, 20), 5, rng.New(31), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Static(correlatedRecords(32, 12), 3, rng.New(33), Options{})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.TotalCount() != 32 {
		t.Errorf("TotalCount = %d, want 32", merged.TotalCount())
	}
	if merged.NumGroups() != a.NumGroups()+b.NumGroups() {
		t.Errorf("NumGroups = %d", merged.NumGroups())
	}
	if merged.K() != 3 {
		t.Errorf("K = %d, want min(5,3) = 3", merged.K())
	}
	// The merge copies groups: mutating the merge must not leak back.
	if _, err := merged.Synthesize(rng.New(34)); err != nil {
		t.Fatal(err)
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
	a, err := Static(correlatedRecords(35, 10), 2, rng.New(36), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(a, nil); err == nil {
		t.Error("nil input accepted")
	}
	recs1D := []mat.Vector{{1}, {2}, {3}, {4}}
	b, err := Static(recs1D, 2, rng.New(37), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(a, b); err == nil {
		t.Error("dimension mismatch accepted")
	}
}
