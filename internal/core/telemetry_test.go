package core

import (
	"bytes"
	"strings"
	"testing"

	"condensation/internal/rng"
	"condensation/internal/telemetry"
)

// TestTelemetryObserveOnly is the determinism contract of the tentpole:
// enabling telemetry must not change a single synthesized byte, at any
// parallelism, in either construction regime.
func TestTelemetryObserveOnly(t *testing.T) {
	records := gaussianRecords(11, 300, 3)
	for _, par := range []int{1, 4} {
		plain, err := NewCondenser(10, WithSeed(3), WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		instrumented, err := NewCondenser(10, WithSeed(3), WithParallelism(par), WithTelemetry(reg))
		if err != nil {
			t.Fatal(err)
		}

		want, err := plain.Static(records)
		if err != nil {
			t.Fatal(err)
		}
		got, err := instrumented.Static(records)
		if err != nil {
			t.Fatal(err)
		}
		wantSynth, err := want.Synthesize(rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		gotSynth, err := got.Synthesize(rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		if len(wantSynth) != len(gotSynth) {
			t.Fatalf("par=%d: %d vs %d synthesized records", par, len(gotSynth), len(wantSynth))
		}
		for i := range wantSynth {
			for j := range wantSynth[i] {
				if wantSynth[i][j] != gotSynth[i][j] {
					t.Fatalf("par=%d: synthesis diverged at record %d attr %d", par, i, j)
				}
			}
		}
	}
}

// TestTelemetryStaticCounters checks the static engine's counters and
// stage timers line up with the condensation it produced.
func TestTelemetryStaticCounters(t *testing.T) {
	records := gaussianRecords(7, 103, 3) // 103 = 10 full groups of 10 + 3 leftovers
	reg := telemetry.NewRegistry()
	c, err := NewCondenser(10, WithSeed(2), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	cond, err := c.Static(records)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(metricGroupsFormed).Value(); got != uint64(cond.NumGroups()) {
		t.Errorf("groups_formed = %d, want %d", got, cond.NumGroups())
	}
	if got := reg.Counter(metricLeftovers).Value(); got != 3 {
		t.Errorf("leftover_records = %d, want 3", got)
	}
	search := reg.Histogram(metricStageSeconds, nil,
		"stage", "neighbor_search", "backend", "quickselect")
	if got := search.Count(); got != uint64(cond.NumGroups()) {
		t.Errorf("neighbor_search observations = %d, want %d", got, cond.NumGroups())
	}
	if _, err := cond.Synthesize(rng.New(1)); err != nil {
		t.Fatal(err)
	}
	// The eigen stage timer is sampled one solve in eigenSampleEvery
	// (by batch index, starting at 0), so 10 groups yield exactly one
	// observation.
	wantEigen := (cond.NumGroups() + eigenSampleEvery - 1) / eigenSampleEvery
	eigen := reg.Histogram(metricStageSeconds, nil, "stage", "eigen")
	if got := eigen.Count(); got != uint64(wantEigen) {
		t.Errorf("eigen observations = %d, want %d", got, wantEigen)
	}
}

// TestTelemetryDynamicCounters checks stream ingestion metrics: record
// counter, split events, and the live group gauge.
func TestTelemetryDynamicCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	c, err := NewCondenser(5, WithSeed(4), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := c.Dynamic(2)
	if err != nil {
		t.Fatal(err)
	}
	records := gaussianRecords(9, 80, 2)
	if err := dyn.AddAll(records); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(metricStreamRecords).Value(); got != 80 {
		t.Errorf("stream_records = %d, want 80", got)
	}
	splits := reg.Counter(metricSplitEvents).Value()
	if splits == 0 {
		t.Error("no split events recorded over 80 records at k=5")
	}
	if got, want := reg.Gauge(metricGroups).Value(), float64(dyn.NumGroups()); got != want {
		t.Errorf("groups gauge = %g, want %g", got, want)
	}
	// Every split is timed.
	split := reg.Histogram(metricStageSeconds, nil, "stage", "split")
	if got := split.Count(); got != splits {
		t.Errorf("split stage observations = %d, want %d", got, splits)
	}
	// The dynamic routing registers its own backend label.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `backend="centroid-scan"`) {
		t.Error("exposition missing centroid-scan neighbor_search series")
	}
}
