package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"condensation/internal/mat"
	"condensation/internal/telemetry"
)

func buildDynamic(t *testing.T, k, dim int, opts ...CondenserOption) *Dynamic {
	t.Helper()
	c, err := NewCondenser(k, append([]CondenserOption{WithSeed(5)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Dynamic(dim)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestGroupIDsStableAndUnique: every live group carries a distinct id,
// ids survive absorbs unchanged, and a split retires the parent id in
// favour of two fresh children that both name it as parent.
func TestGroupIDsStableAndUnique(t *testing.T) {
	const k, dim = 5, 3
	jr := telemetry.NewJournal(1024)
	d := buildDynamic(t, k, dim, WithJournal(jr))
	stream := gaussianRecords(17, 400, dim)
	for _, x := range stream {
		if err := d.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	infos := d.GroupInfos(nil)
	if len(infos) != d.NumGroups() {
		t.Fatalf("GroupInfos returned %d summaries for %d groups", len(infos), d.NumGroups())
	}
	seen := make(map[uint64]bool, len(infos))
	for _, gi := range infos {
		if gi.ID == 0 {
			t.Fatal("live group with id 0 (the no-parent sentinel)")
		}
		if seen[gi.ID] {
			t.Fatalf("duplicate group id %d", gi.ID)
		}
		seen[gi.ID] = true
		if gi.Shard != 0 {
			t.Fatalf("unsharded engine reported shard %d", gi.Shard)
		}
		if gi.Size < k {
			t.Fatalf("group %d reports size %d < k", gi.ID, gi.Size)
		}
	}

	// Every split event retired a parent that no longer exists and created
	// two children; surviving children must name a once-live parent.
	splits := jr.Events(0, telemetry.EventSplit)
	if len(splits) == 0 {
		t.Fatal("400 records with k=5 produced no split events")
	}
	for _, e := range splits {
		if e.Parent == 0 || len(e.Children) != 2 {
			t.Fatalf("split event without lineage: %+v", e)
		}
		if seen[e.Parent] {
			t.Fatalf("split parent %d is still live", e.Parent)
		}
	}
	created := jr.Events(0, telemetry.EventGroupCreated)
	if len(created) == 0 {
		t.Fatal("no group_created events recorded")
	}

	// The snapshot annotation mirrors the live ids in slot order.
	ids := d.Condensation().GroupIDs()
	if len(ids) != len(infos) {
		t.Fatalf("snapshot carries %d ids for %d groups", len(ids), len(infos))
	}
	for i, gi := range infos {
		if ids[i] != gi.ID {
			t.Fatalf("snapshot id[%d] = %d, live id = %d", i, ids[i], gi.ID)
		}
	}
}

// TestShardedGroupIDNoCollision: per-shard id bases keep ids disjoint
// across shards, the shard field matches the owner, and GroupByID
// round-trips through the id's base bits.
func TestShardedGroupIDNoCollision(t *testing.T) {
	const k, dim, shards = 5, 3, 4
	c, err := NewCondenser(k, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Sharded(dim, shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddBatch(gaussianRecords(23, 900, dim)); err != nil {
		t.Fatal(err)
	}
	infos := s.GroupInfos(nil)
	if len(infos) != s.NumGroups() {
		t.Fatalf("GroupInfos returned %d summaries for %d groups", len(infos), s.NumGroups())
	}
	seen := make(map[uint64]bool, len(infos))
	perShard := make(map[int]int)
	for _, gi := range infos {
		if seen[gi.ID] {
			t.Fatalf("duplicate group id %d across shards", gi.ID)
		}
		seen[gi.ID] = true
		if owner := int(gi.ID >> groupIDShardShift); owner != gi.Shard {
			t.Fatalf("id %d encodes shard %d but lives on shard %d", gi.ID, owner, gi.Shard)
		}
		perShard[gi.Shard]++

		det, ok := s.GroupByID(gi.ID)
		if !ok {
			t.Fatalf("GroupByID(%d) missed a live group", gi.ID)
		}
		if det.ID != gi.ID || det.Size != gi.Size {
			t.Fatalf("GroupByID(%d) = %+v, want summary %+v", gi.ID, det.GroupInfo, gi)
		}
		if len(det.Centroid) != dim || len(det.BirthCentroid) != dim {
			t.Fatalf("GroupByID(%d) centroids have wrong dimension", gi.ID)
		}
		if !det.Degenerate && det.CondNumber < 1 {
			t.Fatalf("group %d condition number %v < 1", gi.ID, det.CondNumber)
		}
	}
	if len(perShard) < 2 {
		t.Fatalf("stream landed on %d shard(s); routing hash broken?", len(perShard))
	}
	if _, ok := s.GroupByID(uint64(shards) << groupIDShardShift); ok {
		t.Fatal("GroupByID accepted an id for a shard that does not exist")
	}
	if _, ok := s.GroupByID(0); ok {
		t.Fatal("GroupByID accepted the 0 sentinel")
	}
}

// TestJournalObserveOnly: enabling the journal and id annotations must not
// change a single engine byte — same fingerprint, same checkpoint.
func TestJournalObserveOnly(t *testing.T) {
	const k, dim = 6, 4
	stream := gaussianRecords(11, 800, dim)
	ingest := func(t *testing.T, opts ...CondenserOption) *Dynamic {
		d := buildDynamic(t, k, dim, opts...)
		for _, x := range stream {
			if err := d.Add(x); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}
	off := ingest(t)
	on := ingest(t, WithJournal(telemetry.NewJournal(256)))
	if !bytes.Equal(dynamicFingerprint(t, off), dynamicFingerprint(t, on)) {
		t.Fatal("journal-on fingerprint differs from journal-off")
	}
	if !bytes.Equal(checkpointBytes(t, off), checkpointBytes(t, on)) {
		t.Fatal("journal-on checkpoint bytes differ from journal-off")
	}
}

// TestGroupIDsNotSerialized: ids are an observe-only annotation — they do
// not survive a checkpoint round-trip, and a restored engine re-allocates
// from scratch without colliding with itself.
func TestGroupIDsNotSerialized(t *testing.T) {
	const k, dim = 5, 3
	d := buildDynamic(t, k, dim)
	for _, x := range gaussianRecords(7, 300, dim) {
		if err := d.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := d.Condensation().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	cond, err := ReadCondensation(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if cond.GroupIDs() != nil {
		t.Fatal("restored condensation carries group ids")
	}
	c, err := NewCondenser(cond.K(), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := c.DynamicFrom(cond)
	if err != nil {
		t.Fatal(err)
	}
	infos := resumed.GroupInfos(nil)
	seen := make(map[uint64]bool, len(infos))
	for _, gi := range infos {
		if gi.ID == 0 || seen[gi.ID] {
			t.Fatalf("restored engine allocated bad id %d", gi.ID)
		}
		seen[gi.ID] = true
		if gi.BirthGeneration != 0 {
			t.Fatalf("restored group %d has birth generation %d, want 0", gi.ID, gi.BirthGeneration)
		}
		if gi.CentroidDrift != 0 {
			t.Fatalf("freshly restored group %d already drifted %v", gi.ID, gi.CentroidDrift)
		}
	}
}

// TestExplainMatchesRouting: for a spread of probe records, the dry-run's
// routed group must be exactly where Add sends the record, and the
// predicted outcome must match what actually happens.
func TestExplainMatchesRouting(t *testing.T) {
	const k, dim = 5, 3
	for _, precision := range []IndexPrecision{Float64, Float32} {
		t.Run(fmt.Sprintf("precision=%v", precision), func(t *testing.T) {
			d := buildDynamic(t, k, dim, WithIndexPrecision(precision))
			warm := gaussianRecords(31, 250, dim)
			probes := gaussianRecords(32, 60, dim)
			for _, x := range warm {
				if err := d.Add(x); err != nil {
					t.Fatal(err)
				}
			}
			for _, x := range probes {
				ex, err := d.Explain(x, 3)
				if err != nil {
					t.Fatal(err)
				}
				if ex.Generation != d.Generation() {
					t.Fatalf("explanation generation %d, engine at %d", ex.Generation, d.Generation())
				}
				if ex.F32Active != (precision == Float32) {
					t.Fatalf("F32Active = %v under precision %v", ex.F32Active, precision)
				}
				if ex.F32Active && ex.F32Margin <= 0 {
					t.Fatal("float32 dry-run reported no margin")
				}
				if ex.Routed == nil || len(ex.Candidates) == 0 {
					t.Fatalf("no routed candidate on a populated engine: %+v", ex)
				}
				if *ex.Routed != ex.Candidates[0] {
					t.Fatal("Routed differs from Candidates[0]")
				}
				for i := 1; i < len(ex.Candidates); i++ {
					if ex.Candidates[i].DistanceSq < ex.Candidates[i-1].DistanceSq {
						t.Fatal("candidates out of distance order")
					}
				}

				before, beforeID := d.NumGroups(), ex.Routed.ID
				if err := d.Add(x); err != nil {
					t.Fatal(err)
				}
				switch ex.Outcome {
				case ExplainAbsorb:
					if d.NumGroups() != before {
						t.Fatalf("predicted absorb, group count %d -> %d", before, d.NumGroups())
					}
					det, ok := d.GroupByID(beforeID)
					if !ok {
						t.Fatalf("predicted absorb into %d, but it is gone", beforeID)
					}
					if det.Size != ex.Routed.Size+1 {
						t.Fatalf("group %d grew %d -> %d, want +1", beforeID, ex.Routed.Size, det.Size)
					}
				case ExplainSplit:
					if d.NumGroups() != before+1 {
						t.Fatalf("predicted split, group count %d -> %d", before, d.NumGroups())
					}
					if _, ok := d.GroupByID(beforeID); ok {
						t.Fatalf("predicted split of %d, but it survived", beforeID)
					}
				default:
					t.Fatalf("unexpected outcome %q on a populated engine", ex.Outcome)
				}
			}
		})
	}
}

// TestExplainFoundOnEmpty: an empty engine explains every record as a
// founding ingest.
func TestExplainFoundOnEmpty(t *testing.T) {
	d := buildDynamic(t, 5, 3)
	ex, err := d.Explain(mat.Vector{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Outcome != ExplainFound || ex.Routed != nil || ex.Candidates != nil {
		t.Fatalf("empty engine explanation = %+v, want bare found", ex)
	}
	if _, err := d.Explain(mat.Vector{1, 2}, 0); err == nil {
		t.Fatal("Explain accepted a record of the wrong dimension")
	}
}

// TestExplainSideEffectFree: hammering Explain, GroupInfos, and GroupByID
// between checkpoint encodes must leave the bytes bit-identical — the
// acceptance criterion for the dry-run. The sharded variant runs the
// readers concurrently with ingest on the engine's own locks, so the race
// detector also proves the read-lock contract.
func TestExplainSideEffectFree(t *testing.T) {
	const k, dim = 5, 3
	t.Run("dynamic", func(t *testing.T) {
		d := buildDynamic(t, k, dim, WithIndexPrecision(Float32))
		for _, x := range gaussianRecords(41, 300, dim) {
			if err := d.Add(x); err != nil {
				t.Fatal(err)
			}
		}
		before := checkpointBytes(t, d)
		probes := gaussianRecords(42, 50, dim)
		for _, x := range probes {
			if _, err := d.Explain(x, 10); err != nil {
				t.Fatal(err)
			}
		}
		d.GroupInfos(nil)
		for _, gi := range d.GroupInfos(nil) {
			d.GroupByID(gi.ID)
		}
		if !bytes.Equal(before, checkpointBytes(t, d)) {
			t.Fatal("explainability reads changed checkpoint bytes")
		}
		// The rng stream is untouched too: ingest after the dry-runs must
		// match an engine that never explained anything.
		ref := buildDynamic(t, k, dim, WithIndexPrecision(Float32))
		for _, x := range gaussianRecords(41, 300, dim) {
			if err := ref.Add(x); err != nil {
				t.Fatal(err)
			}
		}
		for _, x := range probes {
			if err := d.Add(x); err != nil {
				t.Fatal(err)
			}
			if err := ref.Add(x); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(dynamicFingerprint(t, d), dynamicFingerprint(t, ref)) {
			t.Fatal("post-explain ingest diverged from the never-explained engine")
		}
	})
	t.Run("sharded-concurrent", func(t *testing.T) {
		c, err := NewCondenser(k, WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		s, err := c.Sharded(dim, 4)
		if err != nil {
			t.Fatal(err)
		}
		stream := gaussianRecords(51, 1200, dim)
		if err := s.AddBatch(stream[:400]); err != nil {
			t.Fatal(err)
		}
		probes := gaussianRecords(52, 200, dim)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for lo := 400; lo < len(stream); lo += 100 {
				if err := s.AddBatch(stream[lo : lo+100]); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for _, x := range probes {
				if _, err := s.Explain(x, 5); err != nil {
					t.Error(err)
					return
				}
				for _, gi := range s.GroupInfos(nil) {
					s.GroupByID(gi.ID)
				}
			}
		}()
		wg.Wait()
		// Same stream without any explain traffic: bit-identical state.
		c2, err := NewCondenser(k, WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := c2.Sharded(dim, 4)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(stream); lo += 100 {
			if err := ref.AddBatch(stream[lo : lo+100]); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(checkpointBytes(t, s), checkpointBytes(t, ref)) {
			t.Fatal("checkpoint bytes differ after concurrent explain traffic")
		}
	})
}

// TestGroupLineageDrift: a group's drift grows as it absorbs, and split
// children record their parent and a fresh birth centroid.
func TestGroupLineageDrift(t *testing.T) {
	const k, dim = 5, 2
	jr := telemetry.NewJournal(256)
	d := buildDynamic(t, k, dim, WithJournal(jr))
	for _, x := range gaussianRecords(61, 600, dim) {
		if err := d.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	infos := d.GroupInfos(nil)
	children := 0
	for _, gi := range infos {
		if gi.Parent != 0 {
			children++
			if gi.BirthGeneration == 0 {
				t.Fatalf("split child %d has birth generation 0", gi.ID)
			}
		}
		if gi.CentroidDrift < 0 {
			t.Fatalf("negative drift on group %d", gi.ID)
		}
	}
	if children == 0 {
		t.Fatal("600 records produced no split children")
	}
}
