package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/telemetry"
)

// checkpointBytes serializes an engine's merged snapshot — the exact
// byte-level fingerprint the reproducibility contract is stated over.
func checkpointBytes(t *testing.T, eng Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := eng.Condensation().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEngineInterfaceEquivalence is the compatibility contract of the
// sharded engine: a 1-shard Sharded is bit-identical to a Dynamic built
// from the same Condenser configuration — same groups, centroids, rng
// stream, and serialized snapshot — through both the Add loop and the
// batch path, from empty and from a static bootstrap.
func TestEngineInterfaceEquivalence(t *testing.T) {
	const k, dim = 6, 4
	stream := gaussianRecords(7, 900, dim)
	initial, err := Static(gaussianRecords(8, 120, dim), k, rng.New(9), Options{})
	if err != nil {
		t.Fatal(err)
	}

	build := func(t *testing.T, sharded, fromInitial bool) Engine {
		t.Helper()
		c, err := NewCondenser(k, WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		var eng Engine
		switch {
		case sharded && fromInitial:
			eng, err = c.ShardedFrom(initial, 1)
		case sharded:
			eng, err = c.Sharded(dim, 1)
		case fromInitial:
			eng, err = c.DynamicFrom(initial)
		default:
			eng, err = c.Dynamic(dim)
		}
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	for _, tc := range []struct {
		name        string
		fromInitial bool
		batch       bool
	}{
		{"empty/add", false, false},
		{"empty/batch", false, true},
		{"bootstrap/add", true, false},
		{"bootstrap/batch", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dyn := build(t, false, tc.fromInitial)
			shd := build(t, true, tc.fromInitial)
			for _, eng := range []Engine{dyn, shd} {
				var err error
				if tc.batch {
					err = eng.AddBatch(stream)
				} else {
					err = eng.AddAll(stream)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			if got, want := checkpointBytes(t, shd), checkpointBytes(t, dyn); !bytes.Equal(got, want) {
				t.Fatalf("1-shard Sharded snapshot differs from Dynamic (%d vs %d bytes)", len(got), len(want))
			}
			if shd.TotalCount() != dyn.TotalCount() || shd.NumGroups() != dyn.NumGroups() || shd.Splits() != dyn.Splits() {
				t.Fatalf("counters differ: sharded (n=%d g=%d s=%d) vs dynamic (n=%d g=%d s=%d)",
					shd.TotalCount(), shd.NumGroups(), shd.Splits(),
					dyn.TotalCount(), dyn.NumGroups(), dyn.Splits())
			}
			if shd.NumShards() != 1 || !shd.Synchronized() || dyn.Synchronized() {
				t.Fatal("capability methods disagree with the engines' contracts")
			}
		})
	}
}

// TestShardedMergedSnapshotDeterministic is the reproducibility contract
// at every shard count: the same seed, shard count, and stream produce a
// bit-identical merged snapshot — across independent engines, across
// speculation parallelism settings, and across the Add/AddBatch paths —
// and every shard independently upholds the paper's k ≤ n ≤ 2k−1 group
// size invariant.
func TestShardedMergedSnapshotDeterministic(t *testing.T) {
	const k, dim = 6, 4
	stream := gaussianRecords(11, 1600, dim)
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			build := func(t *testing.T) *Sharded {
				t.Helper()
				c, err := NewCondenser(k, WithSeed(3))
				if err != nil {
					t.Fatal(err)
				}
				s, err := c.Sharded(dim, shards)
				if err != nil {
					t.Fatal(err)
				}
				return s
			}

			a := build(t)
			a.SetParallelism(1)
			for lo := 0; lo < len(stream); lo += 128 {
				hi := lo + 128
				if hi > len(stream) {
					hi = len(stream)
				}
				if err := a.AddBatch(stream[lo:hi]); err != nil {
					t.Fatal(err)
				}
			}

			b := build(t)
			b.SetParallelism(8)
			if err := b.AddBatch(stream); err != nil {
				t.Fatal(err)
			}

			c := build(t)
			if err := c.AddAll(stream); err != nil {
				t.Fatal(err)
			}

			ref := checkpointBytes(t, a)
			if !bytes.Equal(ref, checkpointBytes(t, b)) {
				t.Fatal("merged snapshot differs across batch slicing/parallelism")
			}
			if !bytes.Equal(ref, checkpointBytes(t, c)) {
				t.Fatal("merged snapshot differs between AddBatch and Add loop")
			}
			// Snapshotting must be repeatable and observe-only.
			if !bytes.Equal(ref, checkpointBytes(t, a)) {
				t.Fatal("repeated snapshots of the same state differ")
			}

			total, groups := 0, 0
			for i := 0; i < a.NumShards(); i++ {
				shard := a.Shard(i)
				if shard.NumGroups() == 0 {
					t.Fatalf("shard %d received no records", i)
				}
				for j, g := range shard.Groups() {
					if n := g.N(); n < k || n > 2*k-1 {
						t.Fatalf("shard %d group %d holds %d records, outside [%d,%d]", i, j, n, k, 2*k-1)
					}
				}
				total += shard.TotalCount()
				groups += shard.NumGroups()
			}
			if total != len(stream) {
				t.Fatalf("shards condensed %d records in total, want %d", total, len(stream))
			}
			if got := a.TotalCount(); got != len(stream) {
				t.Fatalf("TotalCount = %d, want %d", got, len(stream))
			}
			if got := a.NumGroups(); got != groups {
				t.Fatalf("NumGroups = %d, want per-shard sum %d", got, groups)
			}
		})
	}
}

// TestShardedRoutingDeterministic pins the routing rule: the hash depends
// only on record values (and the optional routing attribute), so identical
// records route identically on independent engines, and records agreeing
// on the routing attribute always share a shard.
func TestShardedRoutingDeterministic(t *testing.T) {
	const dim = 5
	c, err := NewCondenser(4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Sharded(dim, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Sharded(dim, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range gaussianRecords(13, 200, dim) {
		if a.shardOf(x) != b.shardOf(x) {
			t.Fatal("identical records routed to different shards on independent engines")
		}
	}

	if err := a.SetRoutingAttribute(0); err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	for class := 0; class < 6; class++ {
		x := make(mat.Vector, dim)
		x[0] = float64(class)
		for j := 1; j < dim; j++ {
			x[j] = r.Norm()
		}
		want := a.shardOf(x)
		for trial := 0; trial < 20; trial++ {
			y := x.Clone()
			for j := 1; j < dim; j++ {
				y[j] = r.Norm()
			}
			if got := a.shardOf(y); got != want {
				t.Fatalf("class %d routed to shard %d and %d", class, want, got)
			}
		}
	}

	if err := a.SetRoutingAttribute(dim); err == nil {
		t.Fatal("routing attribute out of range accepted")
	}
	if err := a.Add(make(mat.Vector, dim)); err != nil {
		t.Fatal(err)
	}
	if err := a.SetRoutingAttribute(1); err == nil {
		t.Fatal("routing change after ingest accepted")
	}
}

// TestShardedValidation covers the construction and ingest error paths.
func TestShardedValidation(t *testing.T) {
	c, err := NewCondenser(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sharded(2, 0); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := c.ShardedFrom(nil, 2); err == nil {
		t.Fatal("nil initial condensation accepted")
	}
	s, err := c.Sharded(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(mat.Vector{1}); err == nil {
		t.Fatal("wrong-dimension record accepted")
	}
	if err := s.AddBatch([]mat.Vector{{1, 2}, {3}}); err == nil {
		t.Fatal("batch with wrong-dimension record accepted")
	}
	if s.TotalCount() != 0 {
		t.Fatal("rejected batch left records behind")
	}
	if err := s.AddBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestShardedFromDistributesGroups seeds a sharded engine from a static
// condensation and checks the round-robin deal: every initial group lands
// on a shard, none are lost or duplicated, and more shards than groups
// leaves the excess shards empty but serviceable.
func TestShardedFromDistributesGroups(t *testing.T) {
	const k, dim = 5, 3
	initial, err := Static(gaussianRecords(19, 60, dim), k, rng.New(21), Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCondenser(k, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, initial.NumGroups() + 3} {
		s, err := c.ShardedFrom(initial, shards)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.NumGroups(); got != initial.NumGroups() {
			t.Fatalf("%d shards: %d groups after seeding, want %d", shards, got, initial.NumGroups())
		}
		if got := s.TotalCount(); got != initial.TotalCount() {
			t.Fatalf("%d shards: %d records after seeding, want %d", shards, got, initial.TotalCount())
		}
		if err := s.AddAll(gaussianRecords(23, 40, dim)); err != nil {
			t.Fatalf("%d shards: ingest after seeding: %v", shards, err)
		}
	}
}

// TestShardedTelemetryLabels checks the metric contract: with N ≥ 2 every
// engine series carries a shard label per shard, while a single-shard
// engine registers the exact unlabeled series Dynamic does.
func TestShardedTelemetryLabels(t *testing.T) {
	const dim = 3
	c, err := NewCondenser(3, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	stream := gaussianRecords(29, 300, dim)

	expo := func(t *testing.T, shards int) string {
		t.Helper()
		reg := telemetry.NewRegistry()
		s, err := c.Sharded(dim, shards)
		if err != nil {
			t.Fatal(err)
		}
		s.SetTelemetry(reg)
		if err := s.AddBatch(stream); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	single := expo(t, 1)
	if !strings.Contains(single, "condense_stream_records_total 300") {
		t.Fatalf("single shard: unlabeled stream counter missing:\n%s", single)
	}
	if strings.Contains(single, `shard="`) {
		t.Fatal("single shard: unexpected shard label")
	}

	multi := expo(t, 4)
	for i := 0; i < 4; i++ {
		if !strings.Contains(multi, fmt.Sprintf(`condense_stream_records_total{shard="%d"}`, i)) {
			t.Fatalf("4 shards: stream counter for shard %d missing:\n%s", i, multi)
		}
		if !strings.Contains(multi, fmt.Sprintf(`condense_groups{shard="%d"}`, i)) {
			t.Fatalf("4 shards: group gauge for shard %d missing", i)
		}
	}
}

// TestDynamicTotalCountCached pins the cached running count against the
// ground truth (the sum over live group statistics) through founding,
// routing, splitting, batch ingest, and bootstrap seeding.
func TestDynamicTotalCountCached(t *testing.T) {
	const k, dim = 4, 3
	groundTruth := func(d *Dynamic) int {
		var n int
		for _, g := range d.groups {
			n += g.N()
		}
		return n
	}

	d, err := NewDynamicEmpty(dim, k, Options{}, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range gaussianRecords(33, 200, dim) {
		if err := d.Add(x); err != nil {
			t.Fatal(err)
		}
		if got, want := d.TotalCount(), groundTruth(d); got != want || want != i+1 {
			t.Fatalf("after %d adds: TotalCount = %d, groups hold %d", i+1, got, want)
		}
	}
	if got, want := d.Splits(), d.NumGroups()-1; got != want {
		t.Fatalf("Splits = %d, want %d (empty start: one split per extra group)", got, want)
	}
	if err := d.AddBatch(gaussianRecords(35, 300, dim)); err != nil {
		t.Fatal(err)
	}
	if got, want := d.TotalCount(), groundTruth(d); got != want || want != 500 {
		t.Fatalf("after batch: TotalCount = %d, groups hold %d, want 500", got, want)
	}

	initial, err := Static(gaussianRecords(37, 90, dim), k, rng.New(39), Options{})
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := NewDynamic(initial, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := seeded.TotalCount(), groundTruth(seeded); got != want || want != 90 {
		t.Fatalf("seeded: TotalCount = %d, groups hold %d, want 90", got, want)
	}
}

// TestShardCounts: the cheap per-shard accessor must agree with the full
// snapshots on both engine shapes, and its totals with the engine-wide
// counts.
func TestShardCounts(t *testing.T) {
	const k, dim, shards = 5, 3, 4
	stream := gaussianRecords(13, 900, dim)

	c, err := NewCondenser(k, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Sharded(dim, shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddBatch(stream); err != nil {
		t.Fatal(err)
	}
	var records, groups, splits int
	for i := 0; i < shards; i++ {
		r, g, sp := s.ShardCounts(i)
		cond := s.Shard(i)
		if r != cond.TotalCount() || g != cond.NumGroups() {
			t.Errorf("shard %d counts = (%d,%d), snapshot says (%d,%d)",
				i, r, g, cond.TotalCount(), cond.NumGroups())
		}
		records += r
		groups += g
		splits += sp
	}
	if records != s.TotalCount() || groups != s.NumGroups() || splits != s.Splits() {
		t.Errorf("summed shard counts = (%d,%d,%d), engine says (%d,%d,%d)",
			records, groups, splits, s.TotalCount(), s.NumGroups(), s.Splits())
	}

	d, err := c.Dynamic(dim)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddAll(stream[:100]); err != nil {
		t.Fatal(err)
	}
	r, g, sp := d.ShardCounts(0)
	if r != d.TotalCount() || g != d.NumGroups() || sp != d.Splits() {
		t.Errorf("dynamic ShardCounts = (%d,%d,%d), want (%d,%d,%d)",
			r, g, sp, d.TotalCount(), d.NumGroups(), d.Splits())
	}
	for name, f := range map[string]func(){
		"dynamic": func() { d.ShardCounts(1) },
		"sharded": func() { s.ShardCounts(shards) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: out-of-range ShardCounts did not panic", name)
				}
			}()
			f()
		}()
	}
}
