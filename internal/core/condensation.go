package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"condensation/internal/mat"
	"condensation/internal/par"
	"condensation/internal/rng"
	"condensation/internal/stats"
	"condensation/internal/telemetry"
)

// Condensation is the output of condensing a set of records: the set H of
// per-group aggregate statistics. It retains no raw records.
type Condensation struct {
	dim    int
	k      int
	opts   Options
	groups []*stats.Group
	// par bounds the worker goroutines Synthesize fans the groups across.
	// It is a performance knob, not a semantic option: synthesis output is
	// identical for every setting, so it lives outside Options (which is
	// serialized into checkpoints).
	par int
	// met records stage timings during synthesis. Like par it is
	// observe-only and lives outside Options; the zero value is disabled.
	met engineMetrics
	// tr records synthesis trace spans; nil disables tracing. Observe-only
	// like met.
	tr *telemetry.Tracer
	// groupIDs, when set, annotates groups[i] with its stable engine group
	// id (see Dynamic). Observe-only diagnostics metadata: it is not
	// serialized into checkpoints and never influences synthesis. Snapshots
	// taken from a static condensation (or restored from a checkpoint
	// before any engine wraps them) carry no ids.
	groupIDs []uint64
}

// newCondensation wraps a set of groups. The groups are owned by the
// Condensation afterwards.
func newCondensation(dim, k int, opts Options, groups []*stats.Group) *Condensation {
	return &Condensation{dim: dim, k: k, opts: opts, groups: groups}
}

// SetParallelism bounds the worker goroutines Synthesize and
// SynthesizeGrouped fan the groups across; values < 1 (the default) mean
// runtime.NumCPU(). Each group draws from its own pre-derived rng stream,
// so the synthesized records are bit-identical for every setting.
func (c *Condensation) SetParallelism(p int) { c.par = p }

// SetTelemetry attaches a metrics registry: Synthesize and
// SynthesizeGrouped then record per-group eigendecomposition and
// regeneration timings. A nil registry disables recording. Telemetry is
// observe-only; the synthesized records are bit-identical either way.
func (c *Condensation) SetTelemetry(reg *telemetry.Registry) { c.met = newEngineMetrics(reg) }

// SetTracer attaches a span tracer: SynthesizeGrouped then records a
// sampled span per synthesis pass. A nil tracer disables tracing. Like
// SetTelemetry it is observe-only; the synthesized records are
// bit-identical either way.
func (c *Condensation) SetTracer(tr *telemetry.Tracer) { c.tr = tr }

// Dim returns the attribute dimensionality.
func (c *Condensation) Dim() int { return c.dim }

// K returns the indistinguishability level the condensation was built with.
func (c *Condensation) K() int { return c.k }

// Options returns the options the condensation was built with.
func (c *Condensation) Options() Options { return c.opts }

// NumGroups returns the number of condensed groups.
func (c *Condensation) NumGroups() int { return len(c.groups) }

// TotalCount returns the total number of condensed records across groups.
func (c *Condensation) TotalCount() int {
	var n int
	for _, g := range c.groups {
		n += g.N()
	}
	return n
}

// AverageGroupSize returns the mean group size — the x-axis of every figure
// in the paper's evaluation. It returns 0 for an empty condensation.
func (c *Condensation) AverageGroupSize() float64 {
	if len(c.groups) == 0 {
		return 0
	}
	return float64(c.TotalCount()) / float64(len(c.groups))
}

// MinGroupSize returns the smallest group size, which is the effective
// indistinguishability level actually achieved. It returns 0 for an empty
// condensation.
func (c *Condensation) MinGroupSize() int {
	if len(c.groups) == 0 {
		return 0
	}
	min := c.groups[0].N()
	for _, g := range c.groups[1:] {
		if g.N() < min {
			min = g.N()
		}
	}
	return min
}

// Groups returns deep copies of the per-group statistics, so callers cannot
// corrupt the condensation.
func (c *Condensation) Groups() []*stats.Group {
	out := make([]*stats.Group, len(c.groups))
	for i, g := range c.groups {
		out[i] = g.Clone()
	}
	return out
}

// GroupIDs returns a copy of the stable engine group ids annotating the
// groups, aligned with Groups()/Centroids() order, or nil when the
// condensation was not snapshotted from an engine that assigns ids (static
// condensations, freshly restored checkpoints). The ids are observe-only
// lineage metadata — see Dynamic's id scheme.
func (c *Condensation) GroupIDs() []uint64 {
	if c.groupIDs == nil {
		return nil
	}
	return append([]uint64(nil), c.groupIDs...)
}

// Centroids returns the centroid of every group.
func (c *Condensation) Centroids() ([]mat.Vector, error) {
	out := make([]mat.Vector, len(c.groups))
	for i, g := range c.groups {
		m, err := g.Mean()
		if err != nil {
			return nil, fmt.Errorf("core: group %d: %w", i, err)
		}
		out[i] = m
	}
	return out, nil
}

// Synthesize regenerates an anonymized data set from the group statistics
// (Section 2.1 of the paper). For each group G it draws n(G) points
//
//	x = Y(G) + Σ_j c_j · e_j(G)
//
// where Y(G) is the group centroid, e_j are the eigenvectors of the group
// covariance, and each coordinate c_j is drawn independently with variance
// λ_j — uniformly on [−√(12λ_j)/2, +√(12λ_j)/2] in the paper's default
// mode, or as N(0, λ_j) in the Gaussian ablation mode. Negative
// eigenvalues from floating-point round-off are clamped to zero first.
//
// The i-th synthesized point belongs to the group reported at the same
// index by SynthesizeGrouped; Synthesize concatenates all groups in order.
func (c *Condensation) Synthesize(r *rng.Source) ([]mat.Vector, error) {
	grouped, err := c.SynthesizeGrouped(r)
	if err != nil {
		return nil, err
	}
	var out []mat.Vector
	for _, g := range grouped {
		out = append(out, g...)
	}
	return out, nil
}

// SynthesizeGrouped is Synthesize with the output kept per group.
//
// Each group draws from its own rng stream, derived from r by one Split()
// per group in group order before any worker starts. Group gi therefore
// synthesizes the same points whether the groups run sequentially or fan
// out across SetParallelism workers — the output depends only on r and
// the group statistics, never on scheduling.
func (c *Condensation) SynthesizeGrouped(r *rng.Source) ([][]mat.Vector, error) {
	if r == nil {
		return nil, errors.New("core: nil random source")
	}
	sp := c.tr.StartChild(nil, "synthesize")
	sp.SetAttrInt("groups", len(c.groups))
	defer sp.End()
	srcs := make([]*rng.Source, len(c.groups))
	for gi := range srcs {
		srcs[gi] = r.Split()
	}
	workers := par.Workers(c.par)

	// Phase 1: per-group means and covariance matrices, in parallel.
	means := make([]mat.Vector, len(c.groups))
	covs := make([]*mat.Matrix, len(c.groups))
	err := par.Run(len(c.groups), workers, func(gi int) error {
		mean, err := c.groups[gi].Mean()
		if err != nil {
			return fmt.Errorf("core: group %d: %w", gi, err)
		}
		cov, err := c.groups[gi].Covariance()
		if err != nil {
			return fmt.Errorf("core: group %d: %w", gi, err)
		}
		means[gi], covs[gi] = mean, cov
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: one batched eigensolve pass over every covariance, with the
	// Jacobi workspaces amortized per worker. The stage=eigen timer samples
	// one solve in eigenSampleEvery (like the routing timer) — observe-only,
	// so output is bit-identical with telemetry on or off.
	var observe func(seconds float64)
	if c.met.enabled {
		observe = c.met.eigen.Observe
	}
	eigs, err := mat.SymEigenBatchObserved(covs, workers, eigenSampleEvery, observe)
	if err != nil {
		return nil, fmt.Errorf("core: synthesize: %w", err)
	}

	// Phase 3: per-group point regeneration, each group drawing from its
	// own pre-split rng stream exactly as before.
	out := make([][]mat.Vector, len(c.groups))
	err = par.Run(len(c.groups), workers, func(gi int) error {
		pts, err := synthesizeGroup(c.groups[gi], means[gi], eigs[gi].ClampPSD(), c.opts.Synthesis, srcs[gi], c.met)
		if err != nil {
			return fmt.Errorf("core: group %d: %w", gi, err)
		}
		out[gi] = pts
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// eigenSampleEvery is the sampling stride of the stage=eigen timer during
// batched synthesis: one solve in 64 is wall-timed, so a batch of
// thousands of sub-microsecond eigensolves pays a handful of clock reads
// instead of two per solve, while the histogram still fills.
const eigenSampleEvery = 64

// synthesizeGroup draws n(G) anonymized points from one group's
// pre-decomposed statistics: mean is the group centroid and eig its
// PSD-clamped covariance eigendecomposition. All points of the group are
// carved from one flat slab, and each coordinate is produced as
// mean[row] + ⟨eigenvector-row, coord⟩ — the same single-accumulator
// in-order arithmetic as the mean.Clone()/AddScaled/MulVec chain it
// replaced (adding a zero-initialized clone's entry and scaling by 1 are
// exact), so the synthesized records are bit-identical.
func synthesizeGroup(g *stats.Group, mean mat.Vector, eig mat.Eigen, mode Synthesis, r *rng.Source, met engineMetrics) ([]mat.Vector, error) {
	var t0 time.Time
	if met.enabled {
		t0 = time.Now()
	}
	d := g.Dim()
	// Pre-compute the per-axis half-ranges (uniform) or standard
	// deviations (Gaussian).
	spread := make(mat.Vector, d)
	for j, lambda := range eig.Values {
		switch mode {
		case SynthesisUniform:
			spread[j] = math.Sqrt(12*lambda) / 2 // half of a = √(12λ)
		case SynthesisGaussian:
			spread[j] = math.Sqrt(lambda)
		default:
			return nil, fmt.Errorf("core: unknown synthesis mode %d", int(mode))
		}
	}
	n := g.N()
	pts := make([]mat.Vector, n)
	slab := make([]float64, n*d)
	coord := make(mat.Vector, d)
	vecRows := make([]mat.Vector, d)
	for row := range vecRows {
		vecRows[row] = eig.Vectors.Row(row)
	}
	for i := range pts {
		for j := range coord {
			switch mode {
			case SynthesisUniform:
				coord[j] = r.Uniform(-spread[j], spread[j])
			case SynthesisGaussian:
				coord[j] = spread[j] * r.Norm()
			}
		}
		// x = mean + P·coord (coord holds the eigenbasis coordinates).
		x := mat.Vector(slab[i*d : (i+1)*d])
		for row, vr := range vecRows {
			x[row] = mean[row] + vr.Dot(coord)
		}
		pts[i] = x
	}
	if met.enabled {
		met.synth.ObserveSince(t0)
	}
	return pts, nil
}

// Merge combines condensations produced independently (for example by
// separate collection servers over disjoint record partitions) into one:
// the union of their condensed groups. Every input must share the
// dimensionality; the result takes the *smallest* k among the inputs,
// since that is the weakest indistinguishability level any merged group
// is guaranteed to meet, and the options of the first input.
func Merge(conds ...*Condensation) (*Condensation, error) {
	if len(conds) == 0 {
		return nil, errors.New("core: nothing to merge")
	}
	dim := conds[0].dim
	k := conds[0].k
	var groups []*stats.Group
	for i, c := range conds {
		if c == nil {
			return nil, fmt.Errorf("core: merge input %d is nil", i)
		}
		if c.dim != dim {
			return nil, fmt.Errorf("core: merge input %d has dimension %d, want %d", i, c.dim, dim)
		}
		if c.k < k {
			k = c.k
		}
		groups = append(groups, c.Groups()...)
	}
	merged := newCondensation(dim, k, conds[0].opts, groups)
	merged.par = conds[0].par
	merged.met = conds[0].met
	return merged, nil
}
