package core

import (
	"context"
	"fmt"
	"time"

	"condensation/internal/kernel"
	"condensation/internal/mat"
	"condensation/internal/par"
	"condensation/internal/telemetry"
)

// batchScratch holds AddBatch's reusable buffers so steady-state batch
// ingestion allocates nothing per record: candidate routes from the
// speculation phase, and the apply phase's changed-group tracking — the
// changed-id list, a flat arena of the changed groups' live centroids
// (so the per-record fold is one contiguous kernel sweep), and the
// group → changed-row position map that replaces the old touched bitmap.
type batchScratch struct {
	cand        []int
	candD       []float64
	pos         []int32 // group id -> row in changed/changedFlat, -1 if unchanged
	changed     []int
	changedFlat []float64
}

// routes returns candidate/distance slices of length n, reusing backing
// storage across batches.
func (s *batchScratch) routes(n int) ([]int, []float64) {
	if cap(s.cand) < n {
		s.cand = make([]int, n)
		s.candD = make([]float64, n)
	}
	return s.cand[:n], s.candD[:n]
}

// posMap returns the group → changed-row map over n groups, all cleared
// to -1, reusing storage.
func (s *batchScratch) posMap(n int) []int32 {
	if cap(s.pos) < n {
		s.pos = make([]int32, n)
	}
	p := s.pos[:n]
	for i := range p {
		p[i] = -1
	}
	return p
}

// AddBatch ingests a batch of records, producing the exact condensation a
// sequential Add loop over the same records produces — bit-identical
// groups, centroids, and rng stream — but routing the batch in parallel.
// See AddBatchContext.
func (d *Dynamic) AddBatch(records []mat.Vector) error {
	return d.AddBatchContext(context.Background(), records)
}

// AddBatchContext is the dynamic engine's high-throughput ingest path. It
// alternates two phases over speculation windows of the batch:
//
//  1. Speculation (parallel, read-only): the window's records are routed
//     to their nearest centroids against the engine state frozen at the
//     window's start, chunked across SetParallelism workers. Each worker
//     writes disjoint slots, so the candidates are identical at every
//     worker count.
//  2. Apply (sequential, input order): each record is folded into its
//     group exactly as Add would. A record's speculated candidate is kept
//     only while the candidate group is untouched since speculation; the
//     true nearest is then the lexicographic minimum of the candidate and
//     the groups that changed during the window (moved centroids and
//     split-created groups), a set the loop tracks incrementally as a
//     flat centroid arena. A record whose candidate group itself changed
//     is re-routed against the live router.
//
// The apply phases perform the same group updates, in the same order,
// drawing from the same rng stream as a sequential Add loop, so the
// result is bit-identical by construction at any parallelism, window
// size, and routing backend (TestAddBatchEquivalence proves it byte for
// byte).
//
// Unlike AddAllContext, the whole batch is validated up front: a
// malformed record rejects the batch before any record is admitted.
// Cancellation is still checked between applies; records applied before
// cancellation stay condensed.
func (d *Dynamic) AddBatchContext(ctx context.Context, records []mat.Vector) error {
	for i, x := range records {
		if err := d.validateRecord(x); err != nil {
			return fmt.Errorf("core: batch record %d: %w", i, err)
		}
	}
	if len(records) == 0 {
		return nil
	}
	head := 0
	if len(d.groups) == 0 {
		// Found the first group sequentially; the remainder speculates
		// against it.
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: batch cancelled at record 0: %w", err)
		}
		if err := d.found(records[0]); err != nil {
			return fmt.Errorf("core: batch record 0: %w", err)
		}
		head = 1
	}
	batch := records[head:]
	if len(batch) == 0 {
		return nil
	}

	_, sp := d.tr.Start(ctx, "dynamic.add_batch")
	sp.SetAttrInt("records", len(records))
	defer sp.End()

	// The batch proceeds in speculation windows: each window of records is
	// routed in parallel against the engine state frozen at the window's
	// start, then applied sequentially in input order. A window's apply
	// keeps a record's speculated candidate only while the candidate group
	// is unchanged since the window started; the true nearest is then the
	// lexicographic minimum of the candidate and the groups changed during
	// the window — a set the loop tracks as a flat arena of live
	// centroids, so the fold is one contiguous kernel sweep. A record
	// whose candidate group itself changed is re-routed live. Every
	// record is therefore routed exactly as a sequential Add would route
	// it, at any window size — the window only bounds how large the
	// changed set can grow, keeping the fold O(window) instead of
	// O(batch).
	cand, candD := d.scratch.routes(len(batch))
	workers := par.Workers(d.search.Parallelism)
	br, hasBatchRouter := d.router.(batchRouter)
	specSpan := childSpan(d.tr, sp, "dynamic.speculate")
	specSpan.SetAttrInt("workers", workers)
	applySpan := childSpan(d.tr, sp, "dynamic.apply")
	pos := d.scratch.posMap(len(d.groups))
	changed := d.scratch.changed[:0]
	changedFlat := d.scratch.changedFlat[:0]
	applied := 0
	fallbacks := 0
	var searchDur time.Duration
	defer func() {
		// Splits may have grown the slices past their scratch capacity;
		// keep the grown backing arrays for the next batch.
		d.scratch.pos = pos
		d.scratch.changed = changed
		d.scratch.changedFlat = changedFlat
		if d.met.enabled {
			d.met.search.Observe(searchDur.Seconds())
		}
		d.met.streamRecords.Add(applied)
		applySpan.SetAttrInt("applied", applied)
		applySpan.End()
		specSpan.End()
		if d.jr != nil && fallbacks > 0 {
			// One event per batch, not per record: the count is the story.
			d.jr.Record(telemetry.JournalEvent{
				Type:       telemetry.EventSpecFallback,
				Shard:      d.shardIndex,
				Generation: d.lastMut,
				Detail:     fmt.Sprintf("%d of %d applied records re-routed live after their speculated group changed mid-window", fallbacks, applied),
			})
		}
	}()
	dim := d.dim
	for wlo := 0; wlo < len(batch); wlo += speculationWindow {
		whi := wlo + speculationWindow
		if whi > len(batch) {
			whi = len(batch)
		}
		window := batch[wlo:whi]
		wcand, wcandD := cand[wlo:whi], candD[wlo:whi]

		// Speculative routing against the state frozen at window start.
		// Workers only read centroids and write disjoint candidate slots.
		var t0 time.Time
		if d.met.enabled {
			t0 = time.Now()
		}
		_ = par.RunChunks(len(window), workers, func(lo, hi int) error {
			if hasBatchRouter {
				// Cache-blocked block-vs-block sweep: identical answers
				// to the per-record scan, one arena tile at a time.
				br.nearestBatch(window[lo:hi], wcand[lo:hi], wcandD[lo:hi])
				return nil
			}
			for i := lo; i < hi; i++ {
				wcand[i], wcandD[i] = d.router.nearest(window[i])
			}
			return nil
		})
		if d.met.enabled {
			searchDur += time.Since(t0)
		}
		d.routed += len(window)

		// Sequential apply in input order; the changed set restarts empty
		// because this window speculated against the current state.
		for _, g := range changed {
			pos[g] = -1
		}
		changed = changed[:0]
		changedFlat = changedFlat[:0]
		for i, x := range window {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("core: batch cancelled at record %d: %w", head+wlo+i, err)
			}
			best, bestD := wcand[i], wcandD[i]
			if pos[best] >= 0 {
				// The candidate group moved or split since speculation;
				// its stored distance is stale, so re-route live.
				best, _ = d.router.nearest(x)
				fallbacks++
			} else {
				// The candidate still holds the lexicographic minimum
				// over every unchanged group; only groups changed during
				// this window can beat it. The arena rows are the changed
				// groups' live centroids, so the fold matches the
				// reference gather scan.
				best, bestD = kernel.ArgminFlatIDs(x, changedFlat, changed, best, bestD)
			}
			before := len(d.groups)
			if err := d.ingest(best, x, applySpan); err != nil {
				return fmt.Errorf("core: batch record %d: %w", head+wlo+i, err)
			}
			applied++
			// Refresh (or admit) the ingested group's arena row with its
			// post-ingest centroid; on a split, centroids[best] is M1.
			if p := pos[best]; p >= 0 {
				copy(changedFlat[int(p)*dim:(int(p)+1)*dim], d.centroids[best])
			} else {
				pos[best] = int32(len(changed))
				changed = append(changed, best)
				changedFlat = append(changedFlat, d.centroids[best]...)
			}
			if len(d.groups) > before {
				// The split appended exactly one group, changed by
				// definition.
				g := len(d.groups) - 1
				pos = append(pos, int32(len(changed)))
				changed = append(changed, g)
				changedFlat = append(changedFlat, d.centroids[g]...)
			}
		}
	}
	return nil
}

// speculationWindow is how many records AddBatch routes per speculation
// pass. Smaller windows re-speculate against fresher state, which keeps
// the apply phase's changed-group fold short (it can never exceed the
// window size in distinct moved groups); larger windows amortize the
// fan-out overhead over more records. Either way the routing decisions —
// and thus the condensation — are identical: the window is purely a
// throughput knob. 256 records balances the two costs at the benchmark
// shapes (dim 8, hundreds of groups).
const speculationWindow = 256
