package core

import (
	"context"
	"fmt"
	"time"

	"condensation/internal/mat"
	"condensation/internal/par"
)

// batchScratch holds AddBatch's reusable buffers so steady-state batch
// ingestion allocates nothing per record: candidate routes from the
// speculation phase, the touched-group bitmap, and the changed-group list
// of the apply phase.
type batchScratch struct {
	cand    []int
	candD   []float64
	touched []bool
	changed []int
}

// routes returns candidate/distance slices of length n, reusing backing
// storage across batches.
func (s *batchScratch) routes(n int) ([]int, []float64) {
	if cap(s.cand) < n {
		s.cand = make([]int, n)
		s.candD = make([]float64, n)
	}
	return s.cand[:n], s.candD[:n]
}

// touchedSet returns a cleared bitmap over n groups, reusing storage.
func (s *batchScratch) touchedSet(n int) []bool {
	if cap(s.touched) < n {
		s.touched = make([]bool, n)
	}
	t := s.touched[:n]
	for i := range t {
		t[i] = false
	}
	return t
}

// AddBatch ingests a batch of records, producing the exact condensation a
// sequential Add loop over the same records produces — bit-identical
// groups, centroids, and rng stream — but routing the batch in parallel.
// See AddBatchContext.
func (d *Dynamic) AddBatch(records []mat.Vector) error {
	return d.AddBatchContext(context.Background(), records)
}

// AddBatchContext is the dynamic engine's high-throughput ingest path. It
// runs in two phases:
//
//  1. Speculation (parallel, read-only): every record is routed to its
//     nearest centroid against the frozen pre-batch state, chunked across
//     SetParallelism workers. Each worker writes disjoint slots, so the
//     candidates are identical at every worker count.
//  2. Apply (sequential, input order): each record is folded into its
//     group exactly as Add would. A record's speculated candidate is kept
//     only while the candidate group is untouched since speculation; the
//     true nearest is then the lexicographic minimum of the candidate and
//     the groups that changed during the batch (moved centroids and
//     split-created groups), a set the loop tracks incrementally. A
//     record whose candidate group itself changed is re-routed against
//     the live router.
//
// The apply phase performs the same group updates, in the same order,
// drawing from the same rng stream as a sequential Add loop, so the
// result is bit-identical by construction at any parallelism and with any
// routing backend (TestAddBatchEquivalence proves it byte for byte).
//
// Unlike AddAllContext, the whole batch is validated up front: a
// malformed record rejects the batch before any record is admitted.
// Cancellation is still checked between applies; records applied before
// cancellation stay condensed.
func (d *Dynamic) AddBatchContext(ctx context.Context, records []mat.Vector) error {
	for i, x := range records {
		if err := d.validateRecord(x); err != nil {
			return fmt.Errorf("core: batch record %d: %w", i, err)
		}
	}
	if len(records) == 0 {
		return nil
	}
	head := 0
	if len(d.groups) == 0 {
		// Found the first group sequentially; the remainder speculates
		// against it.
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: batch cancelled at record 0: %w", err)
		}
		if err := d.found(records[0]); err != nil {
			return fmt.Errorf("core: batch record 0: %w", err)
		}
		head = 1
	}
	batch := records[head:]
	if len(batch) == 0 {
		return nil
	}

	_, sp := d.tr.Start(ctx, "dynamic.add_batch")
	sp.SetAttrInt("records", len(records))
	defer sp.End()

	// Phase 1: speculative routing against the frozen pre-batch state.
	// Workers only read centroids and write disjoint candidate slots.
	cand, candD := d.scratch.routes(len(batch))
	workers := par.Workers(d.search.Parallelism)
	specSpan := childSpan(d.tr, sp, "dynamic.speculate")
	var t0 time.Time
	if d.met.enabled {
		t0 = time.Now()
	}
	_ = par.RunChunks(len(batch), workers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			cand[i], candD[i] = d.router.nearest(batch[i])
		}
		return nil
	})
	if d.met.enabled {
		d.met.search.ObserveSince(t0)
	}
	specSpan.SetAttrInt("workers", workers)
	specSpan.End()
	d.routed += len(batch)

	// Phase 2: sequential apply in input order.
	applySpan := childSpan(d.tr, sp, "dynamic.apply")
	touched := d.scratch.touchedSet(len(d.groups))
	changed := d.scratch.changed[:0]
	applied := 0
	defer func() {
		// Splits may have grown the slices past their scratch capacity;
		// keep the grown backing arrays for the next batch.
		d.scratch.touched = touched
		d.scratch.changed = changed
		d.met.streamRecords.Add(applied)
		applySpan.SetAttrInt("applied", applied)
		applySpan.End()
	}()
	for i, x := range batch {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: batch cancelled at record %d: %w", head+i, err)
		}
		best, bestD := cand[i], candD[i]
		if touched[best] {
			// The candidate group moved or split since speculation; its
			// stored distance is stale, so re-route against the live state.
			best, _ = d.router.nearest(x)
		} else {
			// The candidate still holds the lexicographic minimum over
			// every unchanged group; only groups changed during this batch
			// can beat it.
			for _, g := range changed {
				if dd := x.DistSq(d.centroids[g]); dd < bestD || (dd == bestD && g < best) {
					best, bestD = g, dd
				}
			}
		}
		before := len(d.groups)
		if err := d.ingest(best, x, applySpan); err != nil {
			return fmt.Errorf("core: batch record %d: %w", head+i, err)
		}
		applied++
		if !touched[best] {
			touched[best] = true
			changed = append(changed, best)
		}
		if len(d.groups) > before {
			// The split appended exactly one group, changed by definition.
			touched = append(touched, true)
			changed = append(changed, len(d.groups)-1)
		}
	}
	return nil
}
