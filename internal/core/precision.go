package core

import "fmt"

// IndexPrecision selects the arithmetic the dynamic engine's routing
// index stores and prunes with. It is a performance knob in the same
// sense as NeighborSearch: the condensed statistics are identical under
// every setting, because float32 pruning always re-verifies its final
// candidates in float64 (see f32Router) before a routing decision is
// made. Group moments, splits, and synthesis are float64 regardless.
type IndexPrecision int

const (
	// Float64 is the default: the routing index stores and compares
	// full-precision coordinates. This is the exact reference path,
	// byte-identical to prior releases.
	Float64 IndexPrecision = iota
	// Float32 stores a shadow float32 arena for the routing index and
	// runs the O(G·d) pruning sweep in single precision, halving the
	// sweep's memory traffic; the float64 answer is recovered exactly by
	// re-verifying every candidate within a proven safety margin.
	Float32
)

// String returns the precision name.
func (p IndexPrecision) String() string {
	switch p {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	default:
		return fmt.Sprintf("IndexPrecision(%d)", int(p))
	}
}

// ParseIndexPrecision converts a precision name (as printed by String)
// back to the enum, for command-line flags.
func ParseIndexPrecision(name string) (IndexPrecision, error) {
	switch name {
	case "float64", "f64":
		return Float64, nil
	case "float32", "f32":
		return Float32, nil
	default:
		return 0, fmt.Errorf("core: unknown index precision %q", name)
	}
}

func (p IndexPrecision) validate() error {
	switch p {
	case Float64, Float32:
		return nil
	default:
		return fmt.Errorf("core: unknown index precision %d", int(p))
	}
}
